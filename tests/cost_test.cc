#include "core/cost.h"

#include <gtest/gtest.h>

#include "core/faircap.h"
#include "core/greedy.h"
#include "test_data.h"

namespace faircap {
namespace {

Schema TestSchema() {
  return Schema::Create({
                            {"Role", AttrType::kCategorical,
                             AttrRole::kMutable},
                            {"Country", AttrType::kCategorical,
                             AttrRole::kMutable},
                            {"O", AttrType::kNumeric, AttrRole::kOutcome},
                        })
      .ValueOrDie();
}

TEST(CostModelTest, PrecedenceAtomOverAttributeOverDefault) {
  InterventionCostModel model(1.0);
  model.SetAttributeCost("Country", 50.0);
  model.SetAtomCost("Country", "us", 200.0);
  EXPECT_DOUBLE_EQ(model.AtomCost("Role", "frontend"), 1.0);     // default
  EXPECT_DOUBLE_EQ(model.AtomCost("Country", "india"), 50.0);    // attribute
  EXPECT_DOUBLE_EQ(model.AtomCost("Country", "us"), 200.0);      // atom
}

TEST(CostModelTest, PatternCostSumsAtoms) {
  InterventionCostModel model(1.0);
  model.SetAttributeCost("Country", 50.0);
  const Schema schema = TestSchema();
  const Pattern pattern({Predicate(0, CompareOp::kEq, Value("frontend")),
                         Predicate(1, CompareOp::kEq, Value("us"))});
  EXPECT_DOUBLE_EQ(model.PatternCost(pattern, schema), 51.0);
  EXPECT_DOUBLE_EQ(model.PatternCost(Pattern::Empty(), schema), 0.0);
}

TEST(CostModelTest, RuleTotalScalesWithSupport) {
  InterventionCostModel model(2.0);
  const Schema schema = TestSchema();
  PrescriptionRule rule;
  rule.intervention = Pattern({Predicate(0, CompareOp::kEq, Value("x"))});
  rule.support = 100;
  EXPECT_DOUBLE_EQ(model.RuleTotalCost(rule, schema), 200.0);
}

// ---------------------------------------------------------------------------
// Budgeted greedy.

Bitmap TestMask() {
  Bitmap mask(100);
  for (size_t i = 0; i < 20; ++i) mask.Set(i);
  return mask;
}

PrescriptionRule CoverRule(size_t begin, size_t end, double utility) {
  const Bitmap mask = TestMask();
  PrescriptionRule rule;
  rule.coverage = Bitmap(100);
  for (size_t i = begin; i < end; ++i) rule.coverage.Set(i);
  rule.coverage_protected = rule.coverage & mask;
  rule.support = rule.coverage.Count();
  rule.support_protected = rule.coverage_protected.Count();
  rule.utility = utility;
  rule.utility_protected = utility;
  rule.utility_nonprotected = utility;
  return rule;
}

TEST(BudgetedGreedyTest, NeverExceedsBudget) {
  const std::vector<PrescriptionRule> candidates = {
      CoverRule(0, 50, 10.0), CoverRule(50, 100, 10.0),
      CoverRule(0, 100, 12.0)};
  const std::vector<double> costs = {60.0, 60.0, 200.0};
  GreedyOptions options;
  options.budget = 130.0;
  options.min_marginal_gain = 0.0;
  const GreedyResult result =
      GreedySelect(candidates, TestMask(), FairnessConstraint::None(),
                   CoverageConstraint::None(), options, &costs);
  EXPECT_LE(result.total_cost, 130.0);
  // The two cheap rules fit (120) and together cover everything; the big
  // rule alone (200) never fits.
  EXPECT_EQ(result.selected.size(), 2u);
}

TEST(BudgetedGreedyTest, PrefersCostEffectiveRules) {
  // Equal utility and coverage; wildly different costs.
  const std::vector<PrescriptionRule> candidates = {
      CoverRule(0, 100, 10.0), CoverRule(0, 100, 10.0)};
  const std::vector<double> costs = {1000.0, 10.0};
  GreedyOptions options;
  options.budget = 1500.0;
  const GreedyResult result =
      GreedySelect(candidates, TestMask(), FairnessConstraint::None(),
                   CoverageConstraint::None(), options, &costs);
  ASSERT_FALSE(result.selected.empty());
  EXPECT_EQ(result.selected[0], 1u);
}

TEST(BudgetedGreedyTest, ZeroBudgetDisablesCostLogic) {
  const std::vector<PrescriptionRule> candidates = {CoverRule(0, 100, 10.0)};
  const std::vector<double> costs = {1e9};
  GreedyOptions options;  // budget = 0 -> unlimited
  const GreedyResult result =
      GreedySelect(candidates, TestMask(), FairnessConstraint::None(),
                   CoverageConstraint::None(), options, &costs);
  EXPECT_EQ(result.selected.size(), 1u);
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
}

TEST(BudgetedGreedyTest, EndToEndThroughFairCap) {
  const ToyData data = MakeToyData(3000);
  auto model = std::make_shared<InterventionCostModel>(1.0);
  // Make every T1 prescription prohibitively expensive.
  model->SetAttributeCost("T1", 1000.0);

  FairCapOptions options;
  options.apriori.min_support_fraction = 0.3;
  options.lattice.max_predicates = 1;
  options.num_threads = 1;
  options.cost_model = model;
  options.greedy.budget = 10000.0;  // ~3 rows of T1 prescriptions max

  const auto result =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options)
          ->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->total_cost, 10000.0);
  // Only cheap (T2) prescriptions are affordable at full coverage.
  for (const auto& rule : result->rules) {
    for (size_t attr : rule.intervention.Attributes()) {
      EXPECT_EQ(data.df.schema().attribute(attr).name, "T2")
          << rule.ToString(data.df.schema());
    }
  }
}

}  // namespace
}  // namespace faircap
