#include "mining/pattern.h"

#include <gtest/gtest.h>

namespace faircap {
namespace {

DataFrame Frame() {
  auto schema = Schema::Create({
      {"a", AttrType::kCategorical, AttrRole::kImmutable},
      {"b", AttrType::kCategorical, AttrRole::kImmutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  EXPECT_TRUE(df.AppendRow({Value("x"), Value("1")}).ok());
  EXPECT_TRUE(df.AppendRow({Value("x"), Value("2")}).ok());
  EXPECT_TRUE(df.AppendRow({Value("y"), Value("1")}).ok());
  EXPECT_TRUE(df.AppendRow({Value("y"), Value("2")}).ok());
  return df;
}

TEST(PatternTest, EmptyPatternCoversEverything) {
  const DataFrame df = Frame();
  EXPECT_EQ(Pattern::Empty().Evaluate(df).Count(), 4u);
  EXPECT_TRUE(Pattern::Empty().Matches(df, 0));
  EXPECT_EQ(Pattern::Empty().ToString(df.schema()), "TRUE");
}

TEST(PatternTest, ConjunctionIntersects) {
  const DataFrame df = Frame();
  const Pattern p({Predicate(0, CompareOp::kEq, Value("x")),
                   Predicate(1, CompareOp::kEq, Value("1"))});
  const Bitmap mask = p.Evaluate(df);
  EXPECT_EQ(mask.Count(), 1u);
  EXPECT_TRUE(mask.Get(0));
}

TEST(PatternTest, CanonicalizationSortsAndDedups) {
  const Predicate p0(0, CompareOp::kEq, Value("x"));
  const Predicate p1(1, CompareOp::kEq, Value("1"));
  const Pattern ab({p0, p1});
  const Pattern ba({p1, p0, p1});  // shuffled with duplicate
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.Key(), ba.Key());
  EXPECT_EQ(ba.size(), 2u);
}

TEST(PatternTest, WithAddsPredicate) {
  const Pattern p =
      Pattern().With(Predicate(0, CompareOp::kEq, Value("x")));
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.ConstrainsAttr(0));
  EXPECT_FALSE(p.ConstrainsAttr(1));
}

TEST(PatternTest, AndMergesPatterns) {
  const Pattern a({Predicate(0, CompareOp::kEq, Value("x"))});
  const Pattern b({Predicate(1, CompareOp::kEq, Value("1"))});
  const Pattern merged = a.And(b);
  EXPECT_EQ(merged.size(), 2u);
  const DataFrame df = Frame();
  EXPECT_EQ(merged.Evaluate(df).Count(), 1u);
}

TEST(PatternTest, AttributesDeduplicated) {
  const Pattern p({Predicate(1, CompareOp::kEq, Value("1")),
                   Predicate(0, CompareOp::kEq, Value("x")),
                   Predicate(1, CompareOp::kNe, Value("2"))});
  const auto attrs = p.Attributes();
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0], 0u);
  EXPECT_EQ(attrs[1], 1u);
}

TEST(PatternTest, ValidateChecksAllPredicates) {
  const DataFrame df = Frame();
  const Pattern good({Predicate(0, CompareOp::kEq, Value("x"))});
  EXPECT_TRUE(good.Validate(df).ok());
  const Pattern bad({Predicate(0, CompareOp::kEq, Value("x")),
                     Predicate(1, CompareOp::kLt, Value("1"))});
  EXPECT_FALSE(bad.Validate(df).ok());
}

TEST(PatternTest, ContradictoryPatternCoversNothing) {
  const DataFrame df = Frame();
  const Pattern p({Predicate(0, CompareOp::kEq, Value("x")),
                   Predicate(0, CompareOp::kEq, Value("y"))});
  EXPECT_EQ(p.Evaluate(df).Count(), 0u);
}

TEST(PatternTest, ToStringJoinsWithAnd) {
  const DataFrame df = Frame();
  const Pattern p({Predicate(0, CompareOp::kEq, Value("x")),
                   Predicate(1, CompareOp::kEq, Value("1"))});
  EXPECT_EQ(p.ToString(df.schema()), "a = x AND b = 1");
}

}  // namespace
}  // namespace faircap
