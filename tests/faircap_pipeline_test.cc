#include "core/faircap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_data.h"

namespace faircap {
namespace {

FairCapOptions FastOptions() {
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.2;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 1;
  options.num_threads = 1;
  options.greedy.max_rules = 10;
  return options;
}

TEST(FairCapTest, CreateValidatesInputs) {
  const ToyData data = MakeToyData(500);
  EXPECT_FALSE(FairCap::Create(nullptr, &data.dag, data.protected_pattern)
                   .ok());
  EXPECT_FALSE(FairCap::Create(&data.df, nullptr, data.protected_pattern)
                   .ok());
  // Protected pattern referencing the outcome is rejected.
  const size_t o = *data.df.schema().IndexOf("O");
  Pattern bad({Predicate(o, CompareOp::kGe, Value(0.0))});
  EXPECT_FALSE(FairCap::Create(&data.df, &data.dag, bad).ok());
}

TEST(FairCapTest, ProtectedMaskMatchesPattern) {
  const ToyData data = MakeToyData(2000);
  const auto solver = FairCap::Create(&data.df, &data.dag,
                                      data.protected_pattern, FastOptions());
  ASSERT_TRUE(solver.ok());
  const double fraction =
      static_cast<double>(solver->protected_mask().Count()) / 2000.0;
  EXPECT_NEAR(fraction, 0.2, 0.05);
}

TEST(FairCapTest, GroupingPatternsRespectApriori) {
  const ToyData data = MakeToyData(2000);
  const auto solver = FairCap::Create(&data.df, &data.dag,
                                      data.protected_pattern, FastOptions());
  ASSERT_TRUE(solver.ok());
  const auto groups = solver->MineGroupingPatterns();
  ASSERT_TRUE(groups.ok());
  EXPECT_FALSE(groups->empty());
  for (const auto& g : *groups) {
    EXPECT_GE(g.support, static_cast<size_t>(0.2 * 2000));
    // Grouping patterns use immutable attributes only.
    for (size_t attr : g.pattern.Attributes()) {
      EXPECT_EQ(data.df.schema().attribute(attr).role, AttrRole::kImmutable);
    }
  }
}

TEST(FairCapTest, UnconstrainedRunFindsUnfairHighUtilityTreatment) {
  const ToyData data = MakeToyData(4000);
  const auto solver = FairCap::Create(&data.df, &data.dag,
                                      data.protected_pattern, FastOptions());
  ASSERT_TRUE(solver.ok());
  const auto result = solver->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rules.empty());
  // The planted unfair treatment T1=b dominates: expect high overall
  // utility and a large protected/non-protected gap.
  EXPECT_GT(result->stats.exp_utility, 4.0);
  EXPECT_GT(result->stats.unfairness, 4.0);
  // Interventions only over mutable attributes.
  for (const auto& rule : result->rules) {
    for (size_t attr : rule.intervention.Attributes()) {
      EXPECT_EQ(data.df.schema().attribute(attr).role, AttrRole::kMutable);
    }
    EXPECT_GT(rule.utility, 0.0);
  }
}

TEST(FairCapTest, GroupSPFairnessReducesUnfairness) {
  const ToyData data = MakeToyData(4000);
  FairCapOptions unconstrained = FastOptions();
  FairCapOptions fair = FastOptions();
  fair.fairness = FairnessConstraint::GroupSP(2.0);

  const auto run_unconstrained =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern,
                      unconstrained)
          ->Run();
  const auto run_fair =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, fair)
          ->Run();
  ASSERT_TRUE(run_unconstrained.ok());
  ASSERT_TRUE(run_fair.ok());
  ASSERT_FALSE(run_fair->rules.empty());
  // Fairness costs utility but buys a smaller gap (the paper's headline).
  EXPECT_LT(std::abs(run_fair->stats.unfairness),
            std::abs(run_unconstrained->stats.unfairness));
  EXPECT_LE(run_fair->stats.exp_utility,
            run_unconstrained->stats.exp_utility + 1e-9);
  EXPECT_TRUE(run_fair->constraints_satisfied);
}

TEST(FairCapTest, IndividualSPFiltersUnfairTreatments) {
  const ToyData data = MakeToyData(4000);
  FairCapOptions options = FastOptions();
  options.fairness = FairnessConstraint::IndividualSP(2.0);
  const auto result =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options)
          ->Run();
  ASSERT_TRUE(result.ok());
  for (const auto& rule : result->rules) {
    EXPECT_LE(rule.FairnessGap(), 2.0) << rule.ToString(data.df.schema());
  }
}

TEST(FairCapTest, GroupCoverageConstraintMet) {
  const ToyData data = MakeToyData(3000);
  FairCapOptions options = FastOptions();
  options.coverage = CoverageConstraint::Group(0.5, 0.5);
  const auto result =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options)
          ->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.coverage_fraction, 0.5);
  EXPECT_GE(result->stats.coverage_protected_fraction, 0.5);
}

TEST(FairCapTest, RuleCoverageConstraintHoldsPerRule) {
  const ToyData data = MakeToyData(3000);
  FairCapOptions options = FastOptions();
  options.coverage = CoverageConstraint::Rule(0.3, 0.3);
  const auto result =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options)
          ->Run();
  ASSERT_TRUE(result.ok());
  const size_t n = data.df.num_rows();
  const size_t np = data.protected_pattern.Evaluate(data.df).Count();
  for (const auto& rule : result->rules) {
    EXPECT_GE(rule.support, static_cast<size_t>(0.3 * n));
    EXPECT_GE(rule.support_protected, static_cast<size_t>(0.3 * np));
  }
}

TEST(FairCapTest, NonCausalMutableAttributePruned) {
  // Add a mutable attribute with no path to the outcome; with pruning on
  // it must never appear in interventions.
  ToyData data = MakeToyData(2000);
  // Rebuild df with an extra noise column is heavy; instead check the
  // existing pruning API: all mutable attrs here reach O, so none pruned.
  const auto solver = FairCap::Create(&data.df, &data.dag,
                                      data.protected_pattern, FastOptions());
  ASSERT_TRUE(solver.ok());
  EXPECT_EQ(solver->mutable_attrs().size(), 2u);
}

TEST(FairCapTest, TimingsArePopulated) {
  const ToyData data = MakeToyData(2000);
  const auto result = FairCap::Create(&data.df, &data.dag,
                                      data.protected_pattern, FastOptions())
                          ->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->timings.group_mining_seconds, 0.0);
  EXPECT_GE(result->timings.treatment_mining_seconds, 0.0);
  EXPECT_GE(result->timings.selection_seconds, 0.0);
  EXPECT_GT(result->num_grouping_patterns, 0u);
  EXPECT_GT(result->num_treatment_evaluations, 0u);
}

TEST(FairCapTest, ParallelAndSequentialMiningAgree) {
  const ToyData data = MakeToyData(2000);
  FairCapOptions seq = FastOptions();
  seq.num_threads = 1;
  FairCapOptions par = FastOptions();
  par.num_threads = 4;
  const auto r1 =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, seq)
          ->Run();
  const auto r2 =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, par)
          ->Run();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->rules.size(), r2->rules.size());
  EXPECT_NEAR(r1->stats.exp_utility, r2->stats.exp_utility, 1e-9);
}

TEST(FairCapTest, CostRuleZeroUtilitiesOnEmptyCoverage) {
  const ToyData data = MakeToyData(1000);
  const auto solver = FairCap::Create(&data.df, &data.dag,
                                      data.protected_pattern, FastOptions());
  ASSERT_TRUE(solver.ok());
  const size_t group_attr = *data.df.schema().IndexOf("Group");
  const size_t t2_attr = *data.df.schema().IndexOf("T2");
  // Impossible grouping: Group = nonexistent.
  Pattern impossible(
      {Predicate(group_attr, CompareOp::kEq, Value("nope"))});
  Pattern intervention({Predicate(t2_attr, CompareOp::kEq, Value("y"))});
  const PrescriptionRule rule = solver->CostRule(impossible, intervention);
  EXPECT_EQ(rule.support, 0u);
  EXPECT_DOUBLE_EQ(rule.utility, 0.0);
  EXPECT_DOUBLE_EQ(rule.utility_protected, 0.0);
  EXPECT_DOUBLE_EQ(rule.utility_nonprotected, 0.0);
}

}  // namespace
}  // namespace faircap
