#include "core/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

namespace faircap {
namespace {

RulesetStats SampleStats() {
  RulesetStats stats;
  stats.num_rules = 7;
  stats.coverage_fraction = 0.9951;
  stats.coverage_protected_fraction = 0.5;
  stats.exp_utility = 32634.2;
  stats.exp_utility_nonprotected = 32626.98;
  stats.exp_utility_protected = 18432.66;
  stats.unfairness = 14194.32;
  return stats;
}

TEST(MetricsTest, HeaderHasAllColumns) {
  const std::string header = MetricsHeader();
  for (const char* col : {"setting", "#rules", "coverage", "cov-prot",
                          "exp-util", "util-nonpro", "util-pro",
                          "unfairness"}) {
    EXPECT_NE(header.find(col), std::string::npos) << col;
  }
  EXPECT_EQ(header.find("time"), std::string::npos);
  EXPECT_NE(MetricsHeader(true).find("time"), std::string::npos);
}

TEST(MetricsTest, RowRendersValues) {
  const SolutionRow row{"No constraints", SampleStats(), 1.5};
  const std::string text = MetricsRow(row, /*with_runtime=*/true);
  EXPECT_NE(text.find("No constraints"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("99.51%"), std::string::npos);
  EXPECT_NE(text.find("32634.20"), std::string::npos);
  EXPECT_NE(text.find("14194.32"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
}

TEST(MetricsTest, RuntimeOmittedWhenNegative) {
  const SolutionRow row{"x", SampleStats(), -1.0};
  const std::string text = MetricsRow(row, /*with_runtime=*/true);
  EXPECT_EQ(text.find("-1.0"), std::string::npos);
}

TEST(MetricsTest, TablePrintsTitleAndRows) {
  std::ostringstream os;
  PrintMetricsTable(os, "Table 4", {{"a", SampleStats(), -1.0},
                                    {"b", SampleStats(), -1.0}});
  const std::string text = os.str();
  EXPECT_NE(text.find("== Table 4 =="), std::string::npos);
  EXPECT_NE(text.find("\na"), std::string::npos);
  EXPECT_NE(text.find("\nb"), std::string::npos);
}

}  // namespace
}  // namespace faircap
