// End-to-end runs on the (downsampled) synthetic Stack Overflow and German
// datasets, checking the qualitative invariants the paper reports in
// Tables 4-6 rather than absolute numbers.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/causumx.h"
#include "causal/pc.h"
#include "core/faircap.h"
#include "data/german.h"
#include "data/stackoverflow.h"

namespace faircap {
namespace {

class StackOverflowIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StackOverflowConfig config;
    config.num_rows = 6000;  // downsampled for test speed
    auto result = MakeStackOverflow(config);
    ASSERT_TRUE(result.ok());
    data_ = new StackOverflowData(std::move(result).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static FairCapOptions Fast() {
    FairCapOptions options;
    options.apriori.min_support_fraction = 0.25;
    options.apriori.max_pattern_length = 1;
    options.lattice.max_predicates = 1;
    options.num_threads = 0;  // exercise the thread pool
    options.cate.min_group_size = 30;
    return options;
  }

  static StackOverflowData* data_;
};

StackOverflowData* StackOverflowIntegration::data_ = nullptr;

TEST_F(StackOverflowIntegration, UnconstrainedBeatsFairOnUtility) {
  FairCapOptions unconstrained = Fast();
  FairCapOptions fair = Fast();
  fair.fairness = FairnessConstraint::GroupSP(10000.0);

  const auto run_u = FairCap::Create(&data_->df, &data_->dag,
                                     data_->protected_pattern, unconstrained)
                         ->Run();
  const auto run_f =
      FairCap::Create(&data_->df, &data_->dag, data_->protected_pattern,
                      fair)
          ->Run();
  ASSERT_TRUE(run_u.ok());
  ASSERT_TRUE(run_f.ok());
  ASSERT_FALSE(run_u->rules.empty());
  ASSERT_FALSE(run_f->rules.empty());

  // Table 4 shape: no-constraint utility >= fair utility; fair unfairness
  // within epsilon; unconstrained gap exceeds it.
  EXPECT_GE(run_u->stats.exp_utility, run_f->stats.exp_utility - 1e-6);
  EXPECT_LE(std::abs(run_f->stats.unfairness), 10000.0 + 1e-6);
  EXPECT_GT(run_u->stats.unfairness, 5000.0);
}

TEST_F(StackOverflowIntegration, ProtectedGetsLessWithoutFairness) {
  const auto run = FairCap::Create(&data_->df, &data_->dag,
                                   data_->protected_pattern, Fast())
                       ->Run();
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->stats.exp_utility_nonprotected,
            run->stats.exp_utility_protected);
}

TEST_F(StackOverflowIntegration, CauSumXMatchesNoFairnessShape) {
  CauSumXOptions options;
  options.apriori.min_support_fraction = 0.25;
  options.apriori.max_pattern_length = 1;
  options.lattice.max_predicates = 1;
  options.cate.min_group_size = 30;
  options.coverage_theta = 0.5;
  const auto run =
      RunCauSumX(&data_->df, &data_->dag, data_->protected_pattern, options);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run->rules.empty());
  EXPECT_GT(run->stats.unfairness, 0.0);
  EXPECT_GE(run->stats.coverage_fraction, 0.5);
}

TEST_F(StackOverflowIntegration, SampledQualityComparable) {
  // Section 7.3: 25% sample gives comparable rule quality.
  Rng rng(77);
  const DataFrame sample = data_->df.SampleFraction(0.5, &rng);
  const auto full = FairCap::Create(&data_->df, &data_->dag,
                                    data_->protected_pattern, Fast())
                        ->Run();
  const auto sampled = FairCap::Create(&sample, &data_->dag,
                                       data_->protected_pattern, Fast())
                           ->Run();
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sampled.ok());
  ASSERT_FALSE(full->rules.empty());
  ASSERT_FALSE(sampled->rules.empty());
  EXPECT_NEAR(sampled->stats.exp_utility, full->stats.exp_utility,
              0.5 * full->stats.exp_utility);
}

TEST_F(StackOverflowIntegration, PcDagYieldsComparableUtility) {
  // Table 6: the PC-discovered DAG gives utilities in the same ballpark.
  PcOptions pc_options;
  pc_options.max_rows = 2000;
  pc_options.max_condition_size = 1;
  const auto pc_dag = RunPc(data_->df, pc_options);
  ASSERT_TRUE(pc_dag.ok()) << pc_dag.status().ToString();

  const auto original = FairCap::Create(&data_->df, &data_->dag,
                                        data_->protected_pattern, Fast())
                            ->Run();
  const auto with_pc = FairCap::Create(&data_->df, &*pc_dag,
                                       data_->protected_pattern, Fast())
                           ->Run();
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(with_pc.ok());
  ASSERT_FALSE(with_pc->rules.empty());
  EXPECT_GT(with_pc->stats.exp_utility, 0.0);
}

TEST(GermanIntegration, BglFairnessRaisesProtectedUtility) {
  auto data_result = MakeGerman();
  ASSERT_TRUE(data_result.ok());
  const GermanData data = std::move(data_result).ValueOrDie();

  FairCapOptions base;
  base.apriori.min_support_fraction = 0.3;
  base.apriori.max_pattern_length = 1;
  base.lattice.max_predicates = 2;
  base.num_threads = 1;
  base.cate.min_group_size = 10;

  FairCapOptions fair = base;
  fair.fairness = FairnessConstraint::GroupBGL(0.1);

  const auto run_u =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, base)
          ->Run();
  const auto run_f =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, fair)
          ->Run();
  ASSERT_TRUE(run_u.ok());
  ASSERT_TRUE(run_f.ok());
  ASSERT_FALSE(run_u->rules.empty());
  // Utilities on the binary outcome live in a plausible range.
  EXPECT_GT(run_u->stats.exp_utility, 0.0);
  EXPECT_LT(run_u->stats.exp_utility, 1.0);
  if (!run_f->rules.empty()) {
    EXPECT_GE(run_f->stats.exp_utility_protected, 0.0);
  }
}

TEST(GermanIntegration, RuleCoverageShrinksRulesetAndGap) {
  auto data_result = MakeGerman();
  ASSERT_TRUE(data_result.ok());
  const GermanData data = std::move(data_result).ValueOrDie();

  FairCapOptions base;
  base.apriori.min_support_fraction = 0.3;
  base.apriori.max_pattern_length = 1;
  base.lattice.max_predicates = 1;
  base.num_threads = 1;
  base.cate.min_group_size = 10;

  FairCapOptions rule_cov = base;
  rule_cov.coverage = CoverageConstraint::Rule(0.3, 0.3);

  const auto run_u =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, base)
          ->Run();
  const auto run_rc =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, rule_cov)
          ->Run();
  ASSERT_TRUE(run_u.ok());
  ASSERT_TRUE(run_rc.ok());
  // Rule coverage prunes candidates: never more rules than unconstrained.
  EXPECT_LE(run_rc->rules.size(), run_u->rules.size());
  for (const auto& rule : run_rc->rules) {
    EXPECT_GE(rule.support, static_cast<size_t>(0.3 * data.df.num_rows()));
  }
}

}  // namespace
}  // namespace faircap
