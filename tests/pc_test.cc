#include "causal/pc.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace faircap {
namespace {

// Chain X -> M -> Y with strong dependence along edges.
DataFrame MakeChain(size_t n, uint64_t seed) {
  auto schema = Schema::Create({
      {"X", AttrType::kCategorical, AttrRole::kImmutable},
      {"M", AttrType::kCategorical, AttrRole::kMutable},
      {"Y", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool x = rng.NextBernoulli(0.5);
    const bool m = rng.NextBernoulli(x ? 0.85 : 0.15);
    const double y = (m ? 4.0 : 0.0) + rng.NextGaussian(0.0, 1.0);
    EXPECT_TRUE(
        df.AppendRow({Value(x ? "1" : "0"), Value(m ? "1" : "0"), Value(y)})
            .ok());
  }
  return df;
}

TEST(PcTest, ChainSkeletonRecovered) {
  const DataFrame df = MakeChain(4000, 3);
  const auto dag = RunPc(df);
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  const size_t x = *dag->IndexOf("X");
  const size_t m = *dag->IndexOf("M");
  const size_t y = *dag->IndexOf("Y");
  // X-M and M-Y adjacent (in some orientation); X-Y not adjacent.
  EXPECT_TRUE(dag->HasEdge(x, m) || dag->HasEdge(m, x));
  EXPECT_TRUE(dag->HasEdge(m, y) || dag->HasEdge(y, m));
  EXPECT_FALSE(dag->HasEdge(x, y) || dag->HasEdge(y, x));
}

TEST(PcTest, OutcomeIsSink) {
  const DataFrame df = MakeChain(4000, 5);
  const auto dag = RunPc(df);
  ASSERT_TRUE(dag.ok());
  const size_t y = *dag->IndexOf("Y");
  EXPECT_TRUE(dag->Children(y).empty());
}

TEST(PcTest, IndependentVariablesNotConnected) {
  auto schema = Schema::Create({
      {"A", AttrType::kCategorical, AttrRole::kImmutable},
      {"B", AttrType::kCategorical, AttrRole::kImmutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(df.AppendRow({Value(rng.NextBernoulli(0.5) ? "1" : "0"),
                              Value(rng.NextBernoulli(0.5) ? "1" : "0")})
                    .ok());
  }
  const auto dag = RunPc(df);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->num_edges(), 0u);
}

TEST(PcTest, ColliderOriented) {
  // X -> C <- Y with *additive* parent effects: PC should recover the
  // v-structure exactly. (An XOR-style collider would be invisible to the
  // marginal tests — a known PC limitation.)
  auto schema = Schema::Create({
      {"X", AttrType::kCategorical, AttrRole::kImmutable},
      {"Y", AttrType::kCategorical, AttrRole::kImmutable},
      {"C", AttrType::kCategorical, AttrRole::kMutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(11);
  for (int i = 0; i < 6000; ++i) {
    const bool x = rng.NextBernoulli(0.5);
    const bool y = rng.NextBernoulli(0.5);
    const bool c =
        rng.NextBernoulli(0.15 + (x ? 0.3 : 0.0) + (y ? 0.4 : 0.0));
    ASSERT_TRUE(df.AppendRow({Value(x ? "1" : "0"), Value(y ? "1" : "0"),
                              Value(c ? "1" : "0")})
                    .ok());
  }
  const auto dag = RunPc(df);
  ASSERT_TRUE(dag.ok());
  const size_t x = *dag->IndexOf("X");
  const size_t y = *dag->IndexOf("Y");
  const size_t c = *dag->IndexOf("C");
  EXPECT_TRUE(dag->HasEdge(x, c));
  EXPECT_TRUE(dag->HasEdge(y, c));
  EXPECT_FALSE(dag->HasEdge(x, y) || dag->HasEdge(y, x));
}

TEST(PcTest, NumericVariablesAreBinned) {
  // Numeric M still detected as adjacent to its cause.
  auto schema = Schema::Create({
      {"X", AttrType::kCategorical, AttrRole::kImmutable},
      {"M", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    const bool x = rng.NextBernoulli(0.5);
    ASSERT_TRUE(df.AppendRow({Value(x ? "1" : "0"),
                              Value((x ? 3.0 : 0.0) +
                                    rng.NextGaussian(0.0, 1.0))})
                    .ok());
  }
  const auto dag = RunPc(df);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->num_edges(), 1u);
  EXPECT_TRUE(dag->HasEdge(*dag->IndexOf("X"), *dag->IndexOf("M")));
}

TEST(PcTest, MaxRowsSubsampling) {
  const DataFrame df = MakeChain(4000, 17);
  PcOptions options;
  options.max_rows = 1000;
  const auto dag = RunPc(df, options);
  ASSERT_TRUE(dag.ok());
  // Skeleton still recovered from the subsample.
  const size_t x = *dag->IndexOf("X");
  const size_t m = *dag->IndexOf("M");
  EXPECT_TRUE(dag->HasEdge(x, m) || dag->HasEdge(m, x));
}

TEST(PcTest, ConstantColumnsIgnored) {
  auto schema = Schema::Create({
      {"K", AttrType::kCategorical, AttrRole::kImmutable},
      {"X", AttrType::kCategorical, AttrRole::kImmutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(df.AppendRow({Value("const"),
                              Value(rng.NextBernoulli(0.5) ? "1" : "0")})
                    .ok());
  }
  const auto dag = RunPc(df);
  ASSERT_TRUE(dag.ok());
  // Constant column is dropped entirely.
  EXPECT_FALSE(dag->Contains("K"));
  EXPECT_TRUE(dag->Contains("X"));
}

}  // namespace
}  // namespace faircap
