// Observability layer (util/obs/): span tracer semantics — disabled-mode
// zero-event guarantee, nesting, thread attribution in the Chrome trace
// JSON — plus metrics-registry exactness under concurrent increments (the
// TSan leg runs this test), Reset-keeps-handles-valid, and the run-report
// schema floor: every v1 section and key must be present in the emitted
// JSON, and a real pipeline run must populate the same registry the
// report serializes (no bench-only shadow counters).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/faircap.h"
#include "util/obs/metrics.h"
#include "util/obs/run_report.h"
#include "util/obs/trace.h"
#include "util/random.h"

namespace faircap {
namespace {

// ---------------------------------------------------------------------------
// Tracer

TEST(TraceTest, DisabledTracerRecordsNothing) {
  obs::DisableTracing();
  obs::ClearTrace();
  {
    obs::TraceSpan outer("outer");
    obs::TraceSpan inner("inner", 7);
  }
  EXPECT_EQ(obs::TraceEventCount(), 0u);
  std::ostringstream out;
  obs::WriteChromeTrace(out);
  EXPECT_EQ(out.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST(TraceTest, EnableRecordsNestedSpans) {
  obs::EnableTracing();
  {
    obs::TraceSpan outer("outer");
    { obs::TraceSpan inner("inner", 3); }
    { obs::TraceSpan inner("inner", 4); }
  }
  obs::DisableTracing();
  EXPECT_EQ(obs::TraceEventCount(), 3u);
  std::ostringstream out;
  obs::WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":4}"), std::string::npos);
  obs::ClearTrace();
}

TEST(TraceTest, EnablementLatchedAtConstruction) {
  // A span that starts before EnableTracing records nothing even if
  // tracing turns on mid-span; a span that starts while enabled records
  // even if tracing turns off before its destructor.
  obs::DisableTracing();
  obs::ClearTrace();
  {
    obs::TraceSpan off_span("off");
    obs::EnableTracing();
  }
  EXPECT_EQ(obs::TraceEventCount(), 0u);
  {
    obs::TraceSpan on_span("on");
    obs::DisableTracing();
  }
  EXPECT_EQ(obs::TraceEventCount(), 1u);
  obs::ClearTrace();
}

TEST(TraceTest, ThreadAttribution) {
  obs::EnableTracing();
  std::thread worker([] {
    obs::SetThreadTraceName("obs-test-thread");
    obs::TraceSpan span("worker_span");
  });
  worker.join();
  { obs::TraceSpan span("main_span"); }
  obs::DisableTracing();
  std::ostringstream out;
  obs::WriteChromeTrace(out);
  const std::string json = out.str();
  // The worker's buffer survives its exit; its track carries the
  // registered name and its span, on a different tid from main's.
  EXPECT_NE(json.find("\"thread_name\",\"args\":{\"name\":\"obs-test-thread\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"main_span\""), std::string::npos);
  obs::ClearTrace();
}

TEST(TraceTest, EnableTracingStartsAFreshSession) {
  obs::EnableTracing();
  { obs::TraceSpan span("stale"); }
  obs::EnableTracing();  // drops the previous session's events
  { obs::TraceSpan span("fresh"); }
  obs::DisableTracing();
  std::ostringstream out;
  obs::WriteChromeTrace(out);
  EXPECT_EQ(out.str().find("\"name\":\"stale\""), std::string::npos);
  EXPECT_NE(out.str().find("\"name\":\"fresh\""), std::string::npos);
  obs::ClearTrace();
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsTest, CounterExactUnderConcurrentIncrements) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& counter = registry.GetCounter("obs_test.concurrent");
  const uint64_t before = counter.value();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve the handle on each thread too: must alias one counter.
      obs::Counter& c = registry.GetCounter("obs_test.concurrent");
      for (int i = 0; i < kIncrements; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            before + static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, HandlesStayValidAcrossReset) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& counter = registry.GetCounter("obs_test.reset");
  obs::Gauge& gauge = registry.GetGauge("obs_test.reset_gauge");
  counter.Add(41);
  gauge.Set(2.5);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  counter.Increment();  // the pre-Reset handle still writes the registry
  EXPECT_EQ(registry.CounterValue("obs_test.reset"), 1u);
  EXPECT_EQ(&registry.GetCounter("obs_test.reset"), &counter);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram& hist = registry.GetHistogram("obs_test.hist");
  registry.Reset();
  hist.Observe(0.5);  // bucket 0 (<= 1)
  hist.Observe(1.0);  // bucket 0
  hist.Observe(3.0);  // (2,4] -> bucket 2
  hist.Observe(4.0);  // bucket 2
  hist.Observe(100.0);  // (64,128] -> bucket 7
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 108.5);
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(2), 2u);
  EXPECT_EQ(hist.bucket(7), 1u);
}

TEST(MetricsTest, WriteJsonGroupsBySection) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  registry.GetCounter("obs_json.alpha").Add(3);
  registry.GetGauge("obs_json.beta").Set(1.5);
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"obs_json\":{"), std::string::npos);
  EXPECT_NE(json.find("\"alpha\":3"), std::string::npos);
  EXPECT_NE(json.find("\"beta\":1.5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Run report schema

TEST(RunReportTest, SchemaFloorAlwaysPresent) {
  // Even on a freshly Reset registry, the report carries the full v1 key
  // set — downstream parsers (CI validation, the bench harnesses) index
  // unconditionally.
  obs::MetricsRegistry::Global().Reset();
  std::ostringstream out;
  obs::WriteRunReport(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"schema\":\"faircap.run_report.v1\",", 0), 0u);
  for (const char* key :
       {"\"phase\":{", "\"scheduler\":{", "\"index_cache\":{",
        "\"engine_cache\":{", "\"ingest\":{", "\"simd\":{",
        "\"estimation\":{", "\"mining\":{"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing section " << key;
  }
  for (const char* key :
       {"\"group_mining_seconds\":", "\"treatment_mining_seconds\":",
        "\"selection_seconds\":", "\"ingest_seconds\":", "\"total_seconds\":",
        "\"workers\":", "\"submitted\":", "\"executed\":", "\"stolen\":",
        "\"helped\":", "\"instances\":", "\"hits\":", "\"misses\":",
        "\"evictions\":", "\"atom_evictions\":", "\"warm_atom_masks\":",
        "\"atom_bytes\":", "\"conjunction_bytes\":",
        "\"numeric_order_bytes\":", "\"rows\":", "\"bytes\":", "\"chunks\":",
        "\"segments\":", "\"runs\":", "\"level\":", "\"level_name\":",
        "\"legacy_calls\":", "\"batch_evals\":", "\"solve_regression\":",
        "\"solve_stratified\":", "\"solve_ipw_cells\":",
        "\"solve_ipw_rows\":", "\"lattice_evaluations\":",
        "\"pattern_tasks\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing key " << key;
  }
}

TEST(RunReportTest, SimdLevelNameMatchesGauge) {
  obs::EnsureStandardMetricsRegistered();
  std::ostringstream out;
  obs::WriteRunReport(out);
  const std::string json = out.str();
  // Whatever tier the gauge holds, the report names one of the known
  // tiers (or "unknown" before any kernel dispatch resolved).
  const bool named = json.find("\"level_name\":\"scalar\"") !=
                         std::string::npos ||
                     json.find("\"level_name\":\"avx2\"") !=
                         std::string::npos ||
                     json.find("\"level_name\":\"avx512\"") !=
                         std::string::npos ||
                     json.find("\"level_name\":\"unknown\"") !=
                         std::string::npos;
  EXPECT_TRUE(named);
}

// ---------------------------------------------------------------------------
// End to end: the pipeline populates the registry the report serializes.

struct TestData {
  DataFrame df;
  CausalDag dag;
  Pattern protected_pattern;
};

TestData MakeSmallSynthetic(size_t n, uint64_t seed) {
  auto schema = Schema::Create({
      {"Prot", AttrType::kCategorical, AttrRole::kImmutable},
      {"G", AttrType::kCategorical, AttrRole::kImmutable},
      {"Z", AttrType::kCategorical, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  const char* g_levels[] = {"g0", "g1"};
  const char* z_levels[] = {"a", "b"};
  for (size_t i = 0; i < n; ++i) {
    const bool prot = rng.NextBernoulli(0.3);
    const size_t g = rng.NextBounded(2);
    const size_t z = rng.NextBounded(2);
    const bool t = rng.NextBernoulli(0.3 + 0.2 * static_cast<double>(z));
    const double o = 2.0 + 3.0 * static_cast<double>(z) + (t ? 4.0 : 0.0) +
                     static_cast<double>(rng.NextBounded(3));
    const Status st = df.AppendRow({Value(prot ? "yes" : "no"),
                                    Value(g_levels[g]), Value(z_levels[z]),
                                    Value(t ? "yes" : "no"), Value(o)});
    EXPECT_TRUE(st.ok());
  }
  CausalDag dag = CausalDag::Create(
                      {"Prot", "G", "Z", "T", "O"},
                      {{"Z", "T"}, {"Z", "O"}, {"Prot", "O"}, {"T", "O"}})
                      .ValueOrDie();
  return {std::move(df), std::move(dag),
          Pattern().With(Predicate(0, CompareOp::kEq, Value("yes")))};
}

TEST(RunReportTest, PipelineRunPopulatesRegistry) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  TestData data = MakeSmallSynthetic(600, 17);
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.2;
  options.num_threads = 2;
  options.num_shards = 2;
  auto solver =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  auto result = solver->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Scheduler totals flush at scheduler teardown (inside the run).
  EXPECT_GE(registry.CounterValue("scheduler.instances"), 1u);
  EXPECT_GT(registry.CounterValue("scheduler.executed"), 0u);
  EXPECT_GT(registry.CounterValue("mining.pattern_tasks"), 0u);
  EXPECT_GT(registry.CounterValue("mining.lattice_evaluations"), 0u);
  EXPECT_GT(registry.CounterValue("estimation.batch_evals"), 0u);
  EXPECT_GT(registry.CounterValue("index_cache.misses"), 0u);
  EXPECT_GT(registry.CounterValue("engine_cache.misses"), 0u);
  EXPECT_GE(registry.GaugeValue("phase.total_seconds"),
            registry.GaugeValue("phase.treatment_mining_seconds"));
  EXPECT_GT(registry.GaugeValue("phase.total_seconds"), 0.0);
  // The counters the report serializes are the ones the library bumped.
  std::ostringstream out;
  obs::WriteRunReport(out);
  const std::string json = out.str();
  EXPECT_NE(
      json.find("\"pattern_tasks\":" +
                std::to_string(registry.CounterValue("mining.pattern_tasks"))),
      std::string::npos);
  // SchedulerStats: a multi-threaded run reports real workers.
  EXPECT_TRUE(result->scheduler.collected);
  EXPECT_FALSE(result->scheduler.inline_execution);
  EXPECT_EQ(result->scheduler.workers, 2u);
}

TEST(RunReportTest, InlineRunReportsInlineExecution) {
  TestData data = MakeSmallSynthetic(300, 23);
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.2;
  options.num_threads = 1;  // sequential: no scheduler is constructed
  auto solver =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  auto result = solver->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->scheduler.collected);
  EXPECT_TRUE(result->scheduler.inline_execution);
  EXPECT_EQ(result->scheduler.workers, 0u);
  EXPECT_EQ(result->scheduler.tasks, result->num_grouping_patterns);
  EXPECT_EQ(result->scheduler.stolen, 0u);
}

}  // namespace
}  // namespace faircap
