// PredicateIndex engine tests: the index-backed Predicate/Pattern
// evaluation must be bit-identical to the naive per-row scan on randomized
// dataframes (the property the whole shared-engine refactor rests on),
// masks must be memoized (stable references, cache hits), and any row
// mutation must invalidate the cache.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "dataframe/predicate_index.h"
#include "mining/pattern.h"
#include "util/obs/metrics.h"
#include "util/random.h"

namespace faircap {
namespace {

// Randomized table: a few categorical columns (varying cardinality), a few
// numeric ones, nulls sprinkled into both.
DataFrame RandomFrame(Rng* rng, size_t num_rows) {
  auto schema = Schema::Create({
      {"c0", AttrType::kCategorical, AttrRole::kImmutable},
      {"c1", AttrType::kCategorical, AttrRole::kImmutable},
      {"c2", AttrType::kCategorical, AttrRole::kMutable},
      {"n0", AttrType::kNumeric, AttrRole::kImmutable},
      {"n1", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  const std::vector<std::string> cats = {"a", "b", "c", "d", "e", "f"};
  for (size_t i = 0; i < num_rows; ++i) {
    auto cat = [&](size_t cardinality) {
      if (rng->NextBernoulli(0.05)) return Value::Null();
      return Value(cats[rng->NextBounded(cardinality)]);
    };
    auto num = [&] {
      if (rng->NextBernoulli(0.05)) return Value::Null();
      return Value(rng->NextUniform(-4.0, 4.0));
    };
    EXPECT_TRUE(df.AppendRow({cat(2), cat(4), cat(6), num(), num()}).ok());
  }
  return df;
}

// Random valid predicate: equality ops on categoricals (sometimes with a
// category no row carries), any op on numerics.
Predicate RandomPredicate(Rng* rng, const DataFrame& df) {
  const size_t attr = rng->NextBounded(df.num_columns());
  if (df.column(attr).type() == AttrType::kCategorical) {
    const CompareOp op =
        rng->NextBernoulli(0.5) ? CompareOp::kEq : CompareOp::kNe;
    const std::vector<std::string> pool = {"a", "b", "c", "d", "e", "f",
                                           "never-seen"};
    return Predicate(attr, op, Value(pool[rng->NextBounded(pool.size())]));
  }
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kGt, CompareOp::kLe, CompareOp::kGe};
  return Predicate(attr, ops[rng->NextBounded(6)],
                   Value(rng->NextUniform(-4.0, 4.0)));
}

class PredicateIndexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicateIndexProperty, IndexedEvaluationMatchesNaiveScan) {
  Rng rng(GetParam());
  const DataFrame df = RandomFrame(&rng, 100 + rng.NextBounded(400));
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Predicate> preds;
    const size_t len = rng.NextBounded(4);  // 0..3, empty pattern included
    for (size_t i = 0; i < len; ++i) preds.push_back(RandomPredicate(&rng, df));
    const Pattern pattern(std::move(preds));

    const Bitmap indexed = pattern.Evaluate(df);
    const Bitmap naive = pattern.EvaluateNaive(df);
    ASSERT_EQ(indexed.size(), naive.size());
    EXPECT_TRUE(indexed == naive)
        << "mismatch for pattern: " << pattern.ToString(df.schema());

    for (const Predicate& p : pattern.predicates()) {
      EXPECT_TRUE(p.Evaluate(df) == p.EvaluateNaive(df))
          << "mismatch for predicate: " << p.ToString(df.schema());
    }
  }
}

TEST_P(PredicateIndexProperty, CachedMasksAreStableReferences) {
  Rng rng(GetParam() + 17);
  const DataFrame df = RandomFrame(&rng, 200);
  const Predicate p = RandomPredicate(&rng, df);
  const Bitmap& m1 = p.EvaluateCached(df);
  const Bitmap& m2 = p.EvaluateCached(df);
  EXPECT_EQ(&m1, &m2);

  const Pattern pattern({RandomPredicate(&rng, df), RandomPredicate(&rng, df)});
  const Bitmap& c1 = pattern.EvaluateCached(df);
  const Bitmap& c2 = pattern.EvaluateCached(df);
  EXPECT_EQ(&c1, &c2);

  const PredicateIndex::CacheStats stats = df.predicate_index().GetStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.atom_masks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateIndexProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(PredicateIndexTest, RowMutationInvalidatesCache) {
  auto schema = Schema::Create({
      {"g", AttrType::kCategorical, AttrRole::kImmutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  ASSERT_TRUE(df.AppendRow({Value("x"), Value(1.0)}).ok());
  const Predicate p(0, CompareOp::kEq, Value("x"));
  EXPECT_EQ(p.Evaluate(df).Count(), 1u);
  EXPECT_EQ(p.Evaluate(df).size(), 1u);

  ASSERT_TRUE(df.AppendRow({Value("x"), Value(2.0)}).ok());
  const Bitmap after = p.Evaluate(df);
  EXPECT_EQ(after.size(), 2u);  // stale 1-row mask would fail here
  EXPECT_EQ(after.Count(), 2u);
  EXPECT_TRUE(after == p.EvaluateNaive(df));
}

TEST(PredicateIndexTest, CopiedFrameGetsIndependentIndex) {
  auto schema = Schema::Create({
      {"g", AttrType::kCategorical, AttrRole::kImmutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  ASSERT_TRUE(df.AppendRow({Value("x"), Value(1.0)}).ok());
  const Predicate p(0, CompareOp::kEq, Value("x"));
  const Bitmap& original_mask = p.EvaluateCached(df);

  DataFrame copy = df;
  ASSERT_TRUE(copy.AppendRow({Value("y"), Value(2.0)}).ok());
  EXPECT_EQ(p.Evaluate(copy).Count(), 1u);
  EXPECT_EQ(p.Evaluate(copy).size(), 2u);
  // The original's cache is untouched by the copy's mutation.
  EXPECT_EQ(&p.EvaluateCached(df), &original_mask);
  EXPECT_EQ(original_mask.size(), 1u);
}

TEST(PredicateIndexTest, MemoryBudgetEvictsColdConjunctions) {
  Rng rng(91);
  const DataFrame df = RandomFrame(&rng, 512);
  PredicateIndex& index = df.predicate_index();
  // Budget of two conjunction masks (512 bits = 64 bytes each).
  index.SetMemoryBudget(2 * 64);

  // Create many distinct 2-atom conjunctions; the cache must stay within
  // budget and keep evicting the cold tail.
  std::vector<Pattern> patterns;
  for (int t = 0; t < 12; ++t) {
    Pattern p({RandomPredicate(&rng, df), RandomPredicate(&rng, df)});
    if (p.predicates().size() < 2) continue;  // degenerate duplicate atoms
    patterns.push_back(std::move(p));
    patterns.back().Evaluate(df);
  }
  ASSERT_GT(patterns.size(), 4u);

  const auto stats = index.GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.conjunction_bytes, 2u * 64u);
  EXPECT_LE(stats.conjunction_masks, 2u);

  // Evicted conjunctions still evaluate correctly (recomposed from the
  // never-evicted atom masks).
  for (const Pattern& p : patterns) {
    EXPECT_TRUE(p.Evaluate(df) == p.EvaluateNaive(df))
        << p.ToString(df.schema());
  }
}

TEST(PredicateIndexTest, SharedMaskSurvivesEviction) {
  Rng rng(92);
  const DataFrame df = RandomFrame(&rng, 256);
  PredicateIndex& index = df.predicate_index();
  index.SetMemoryBudget(64);  // roughly one 256-bit mask

  Pattern held({Predicate(0, CompareOp::kEq, Value("a")),
                Predicate(3, CompareOp::kGt, Value(0.0))});
  const std::shared_ptr<const Bitmap> mask = held.EvaluateShared(df);
  const Bitmap expected = held.EvaluateNaive(df);
  ASSERT_TRUE(*mask == expected);

  // Flood the cache so the held conjunction is evicted.
  for (int t = 0; t < 10; ++t) {
    Pattern({RandomPredicate(&rng, df), RandomPredicate(&rng, df)})
        .Evaluate(df);
  }
  EXPECT_GT(index.GetStats().evictions, 0u);
  // The shared_ptr keeps the evicted mask alive and intact.
  EXPECT_TRUE(*mask == expected);
}

TEST(PredicateIndexTest, ShrinkingBudgetEvictsImmediately) {
  Rng rng(93);
  const DataFrame df = RandomFrame(&rng, 256);
  PredicateIndex& index = df.predicate_index();
  for (int t = 0; t < 8; ++t) {
    Pattern({RandomPredicate(&rng, df), RandomPredicate(&rng, df)})
        .Evaluate(df);
  }
  const auto before = index.GetStats();
  ASSERT_GT(before.conjunction_masks, 1u);
  index.SetMemoryBudget(1);  // smaller than any mask: keep only the MRU
  const auto after = index.GetStats();
  EXPECT_EQ(after.conjunction_masks, 1u);
  EXPECT_EQ(index.memory_budget(), 1u);
}

TEST(PredicateIndexTest, WarmStartedMasksServeHitsAndMatchScans) {
  auto schema = Schema::Create({
      {"g", AttrType::kCategorical, AttrRole::kImmutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(7);
  const std::vector<std::string> cats = {"x", "y", "z"};
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        df.AppendRow({Value(cats[rng.NextBounded(3)]), Value(1.0 * i)}).ok());
  }

  // Build the per-category masks externally (as ingest does) and install.
  // masks[i] must correspond to dictionary code i, not insertion order of
  // the test's category list.
  const Column& col = df.column(0);
  std::vector<Bitmap> masks;
  masks.reserve(col.num_categories());
  for (size_t code = 0; code < col.num_categories(); ++code) {
    masks.push_back(PredicateIndex::Scan(
        df, 0, CompareOp::kEq,
        Value(col.CategoryName(static_cast<int32_t>(code)))));
  }
  df.predicate_index().WarmStartCategoryMasks(df, 0, std::move(masks));

  const auto warm = df.predicate_index().GetStats();
  EXPECT_EQ(warm.warm_atom_masks, 3u);
  EXPECT_EQ(warm.atom_masks, 3u);
  EXPECT_EQ(warm.misses, 0u);

  for (const std::string& cat : cats) {
    const Predicate p(0, CompareOp::kEq, Value(cat));
    EXPECT_TRUE(p.Evaluate(df) == p.EvaluateNaive(df)) << cat;
  }
  const auto after = df.predicate_index().GetStats();
  EXPECT_EQ(after.misses, 0u);  // every category request was a warm hit
  EXPECT_GT(after.hits, 0u);
}

TEST(PredicateIndexTest, AtomTierEvictsLruLastAndRebuildsTransparently) {
  Rng rng(95);
  const DataFrame df = RandomFrame(&rng, 512);
  PredicateIndex& index = df.predicate_index();

  // Touch plenty of atoms and conjunctions with no budget.
  std::vector<Pattern> patterns;
  for (int t = 0; t < 16; ++t) {
    Pattern p({RandomPredicate(&rng, df), RandomPredicate(&rng, df)});
    patterns.push_back(p);
    p.Evaluate(df);
  }
  const auto before = index.GetStats();
  ASSERT_GT(before.atom_masks, 1u);
  ASSERT_GT(before.atom_bytes, 64u);

  // Budget below the atom working set: conjunctions must go first, then
  // atoms from the LRU tail (ids stay valid, masks rebuilt on demand).
  index.SetMemoryBudget(64);  // one 512-bit mask
  const auto squeezed = index.GetStats();
  EXPECT_GT(squeezed.atom_evictions, 0u);
  EXPECT_LE(squeezed.conjunction_masks, 1u);
  EXPECT_LE(squeezed.atom_bytes + squeezed.conjunction_bytes, 2u * 64u);

  // Every pattern still evaluates correctly through rescans/recompose.
  for (const Pattern& p : patterns) {
    EXPECT_TRUE(p.Evaluate(df) == p.EvaluateNaive(df))
        << p.ToString(df.schema());
  }
}

TEST(PredicateIndexTest, SharedAtomMaskSurvivesAtomEviction) {
  Rng rng(96);
  const DataFrame df = RandomFrame(&rng, 256);
  PredicateIndex& index = df.predicate_index();

  const Predicate held(0, CompareOp::kEq, Value("a"));
  const std::shared_ptr<const Bitmap> mask =
      index.AtomMaskShared(df, held.attr, held.op, held.value);
  const Bitmap expected = held.EvaluateNaive(df);
  ASSERT_TRUE(*mask == expected);

  // Squeeze the whole cache; the held atom is eventually LRU-tail.
  index.SetMemoryBudget(1);
  for (int t = 0; t < 12; ++t) {
    Pattern({RandomPredicate(&rng, df)}).Evaluate(df);
  }
  EXPECT_GT(index.GetStats().atom_evictions, 0u);
  // The shared_ptr keeps the evicted atom mask alive and intact, and a
  // re-request rebuilds an identical mask.
  EXPECT_TRUE(*mask == expected);
  EXPECT_TRUE(held.Evaluate(df) == expected);
}

TEST(PredicateIndexTest, ConjunctionKeysSurviveAtomEviction) {
  Rng rng(97);
  const DataFrame df = RandomFrame(&rng, 256);
  PredicateIndex& index = df.predicate_index();

  const Pattern pattern({Predicate(0, CompareOp::kEq, Value("a")),
                         Predicate(3, CompareOp::kGt, Value(0.0))});
  const Bitmap expected = pattern.EvaluateNaive(df);
  ASSERT_TRUE(pattern.Evaluate(df) == expected);

  // Evict the atoms (but not necessarily the conjunction): atom ids are
  // stable, so the cached conjunction still resolves under the same key
  // after its atoms were rebuilt.
  index.SetMemoryBudget(3 * 32);  // a few 256-bit masks
  for (int t = 0; t < 12; ++t) {
    Pattern({RandomPredicate(&rng, df)}).Evaluate(df);
  }
  ASSERT_GT(index.GetStats().atom_evictions, 0u);
  EXPECT_TRUE(pattern.Evaluate(df) == expected);
  EXPECT_TRUE(pattern.Evaluate(df) == expected);  // and again, via cache
}

TEST(PredicateIndexTest, WarmStartedAtomsAreBudgetAccounted) {
  auto schema = Schema::Create({
      {"g", AttrType::kCategorical, AttrRole::kImmutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(98);
  const std::vector<std::string> cats = {"x", "y", "z"};
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        df.AppendRow({Value(cats[rng.NextBounded(3)]), Value(1.0 * i)}).ok());
  }
  const Column& col = df.column(0);
  df.predicate_index().WarmStartCategoryMasks(
      df, 0, PredicateIndex::BuildCategoryMasks(df, 0));
  const auto warm = df.predicate_index().GetStats();
  ASSERT_EQ(warm.warm_atom_masks, 3u);
  ASSERT_GT(warm.atom_bytes, 0u);
  (void)col;

  // Shrinking the budget below the warm set evicts warm atoms LRU-last
  // (they are just atoms to the tier) and keeps the cache consistent.
  df.predicate_index().SetMemoryBudget(warm.atom_bytes - 1);
  const auto after = df.predicate_index().GetStats();
  EXPECT_GT(after.atom_evictions, 0u);
  EXPECT_LT(after.atom_bytes, warm.atom_bytes);
  for (const std::string& cat : cats) {
    const Predicate p(0, CompareOp::kEq, Value(cat));
    EXPECT_TRUE(p.Evaluate(df) == p.EvaluateNaive(df)) << cat;
  }
}

// The word-batched categorical scan (kEq, kNe, and out-of-dictionary
// values — the cold paths that used to compare int32 codes row by row)
// must match a naive per-row loop bit for bit, including null exclusion
// and sizes that are not multiples of 64.
TEST(PredicateIndexTest, CategoricalScanMatchesNaivePerRowLoop) {
  Rng rng(77);
  auto schema = Schema::Create({
      {"c", AttrType::kCategorical, AttrRole::kImmutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  const char* levels[] = {"a", "b", "c", "d", "e"};
  const size_t rows = 1000 + 37;  // exercise the partial tail word
  for (size_t i = 0; i < rows; ++i) {
    const bool null = rng.NextBernoulli(0.1);
    ASSERT_TRUE(df.AppendRow({null ? Value::Null()
                                   : Value(levels[rng.NextBounded(5)]),
                              Value(0.0)})
                    .ok());
  }
  const Column& col = df.column(0);
  const std::vector<std::string> probes = {"a", "c", "e", "zz", ""};
  for (const std::string& probe : probes) {
    for (const CompareOp op : {CompareOp::kEq, CompareOp::kNe}) {
      const Bitmap scanned = PredicateIndex::Scan(df, 0, op, Value(probe));
      Bitmap naive(rows);
      const Result<int32_t> code = col.CodeOf(probe);
      for (size_t r = 0; r < rows; ++r) {
        if (col.IsNull(r)) continue;
        const bool eq = code.ok() && col.code(r) == *code;
        if (op == CompareOp::kEq ? eq : !eq) naive.Set(r);
      }
      EXPECT_TRUE(scanned == naive)
          << "op " << CompareOpName(op) << " probe '" << probe << "'";
      // The cached atom path serves the identical mask.
      EXPECT_TRUE(df.predicate_index().AtomMask(df, 0, op, Value(probe)) ==
                  naive)
          << "atom op " << CompareOpName(op) << " probe '" << probe << "'";
    }
  }
}

// Numeric nulls are NaN cells; like categorical nulls they must be
// absent from every selection — including kNe (where raw IEEE comparison
// would admit them: NaN != x is true) and kLt (where the sorted-index
// range path must exclude them from the order entirely).
TEST(PredicateIndexTest, NumericNullsExcludedUnderEveryOperator) {
  auto schema = Schema::Create({
      {"n", AttrType::kNumeric, AttrRole::kImmutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  // Rows: 1.0, null, 3.0, null, 5.0.
  for (int i = 0; i < 5; ++i) {
    const bool null = i % 2 == 1;
    ASSERT_TRUE(
        df.AppendRow({null ? Value::Null() : Value(static_cast<double>(i + 1)),
                      Value(0.0)})
            .ok());
  }
  const PredicateIndex& index = df.predicate_index();
  struct Case {
    CompareOp op;
    double rhs;
    std::vector<size_t> expect;
  };
  const std::vector<Case> cases = {
      {CompareOp::kLt, 4.0, {0, 2}},   // nulls NOT "less than"
      {CompareOp::kLe, 3.0, {0, 2}},
      {CompareOp::kGt, 2.0, {2, 4}},
      {CompareOp::kGe, 3.0, {2, 4}},
      {CompareOp::kEq, 3.0, {2}},
      {CompareOp::kNe, 3.0, {0, 4}},   // nulls NOT "not equal" either
      {CompareOp::kNe, -99.0, {0, 2, 4}},
  };
  for (const Case& c : cases) {
    const Bitmap& mask = index.AtomMask(df, 0, c.op, Value(c.rhs));
    const Bitmap reference = PredicateIndex::Scan(df, 0, c.op, Value(c.rhs));
    EXPECT_TRUE(mask == reference)
        << CompareOpName(c.op) << " " << c.rhs << " diverges from Scan";
    ASSERT_EQ(mask.Count(), c.expect.size()) << CompareOpName(c.op);
    for (const size_t r : c.expect) {
      EXPECT_TRUE(mask.Get(r)) << CompareOpName(c.op) << " row " << r;
    }
    // Null rows (1, 3) never match.
    EXPECT_FALSE(mask.Get(1)) << CompareOpName(c.op);
    EXPECT_FALSE(mask.Get(3)) << CompareOpName(c.op);
  }
}

// The sorted-index range path must agree with the reference scan on ties,
// infinities, thresholds between values, and a NaN threshold — and build
// the per-column order exactly once however many thresholds are asked.
TEST(PredicateIndexTest, NumericRangeMasksMatchReferenceScan) {
  Rng rng(1234);
  auto schema = Schema::Create({
      {"n", AttrType::kNumeric, AttrRole::kImmutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  for (size_t i = 0; i < 3000; ++i) {
    // Heavy ties (quantized values) plus nulls.
    const bool null = rng.NextBernoulli(0.1);
    const double v = std::floor(rng.NextUniform(-8.0, 8.0) * 2.0) / 2.0;
    ASSERT_TRUE(df.AppendRow({null ? Value::Null() : Value(v), Value(0.0)})
                    .ok());
  }
  const PredicateIndex& index = df.predicate_index();
  std::vector<double> thresholds = {-8.0, -2.5, -2.25, 0.0, 0.5, 7.5, 8.0,
                                    -1e300, 1e300,
                                    std::numeric_limits<double>::infinity(),
                                    -std::numeric_limits<double>::infinity(),
                                    std::numeric_limits<double>::quiet_NaN()};
  for (int i = 0; i < 20; ++i) thresholds.push_back(rng.NextUniform(-9, 9));
  for (const CompareOp op :
       {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    for (const double rhs : thresholds) {
      const Bitmap& mask = index.AtomMask(df, 0, op, Value(rhs));
      const Bitmap reference = PredicateIndex::Scan(df, 0, op, Value(rhs));
      EXPECT_TRUE(mask == reference)
          << CompareOpName(op) << " " << rhs << ": index "
          << mask.Count() << " rows vs scan " << reference.Count();
    }
  }
  // One sorted order serves every threshold of the column.
  EXPECT_EQ(index.GetStats().numeric_orders, 1u);
  EXPECT_GT(index.GetStats().numeric_order_bytes, 0u);

  // The order is budget-accounted: shrinking the budget below its
  // footprint evicts it (behind the conjunction and atom tiers), and a
  // later range request transparently re-sorts — same masks either way.
  df.predicate_index().SetMemoryBudget(1);
  EXPECT_EQ(index.GetStats().numeric_orders, 0u);
  EXPECT_EQ(index.GetStats().numeric_order_bytes, 0u);
  df.predicate_index().SetMemoryBudget(0);
  const Bitmap& rebuilt = index.AtomMask(df, 0, CompareOp::kLt, Value(0.25));
  EXPECT_TRUE(rebuilt == PredicateIndex::Scan(df, 0, CompareOp::kLt,
                                              Value(0.25)));
  EXPECT_EQ(index.GetStats().numeric_orders, 1u);
}

TEST(PredicateIndexTest, WarmStartReinstallsBudgetEvictedMasks) {
  Rng rng(98);
  auto schema = Schema::Create({
      {"c", AttrType::kCategorical, AttrRole::kImmutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  const char* levels[] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        df.AppendRow({Value(levels[rng.NextBounded(4)]), Value(0.0)}).ok());
  }
  const PredicateIndex& index = df.predicate_index();
  (void)index.AtomMask(df, 0, CompareOp::kEq, Value("a"));  // batch build
  ASSERT_TRUE(index.CategoryMasksCached(df, 0));
  // Evict the atom masks (ids survive), then warm-start again: the masks
  // must be reinstalled into their existing slots, not silently dropped.
  df.predicate_index().SetMemoryBudget(1);
  df.predicate_index().SetMemoryBudget(0);
  ASSERT_FALSE(index.CategoryMasksCached(df, 0));
  index.WarmStartCategoryMasks(df, 0,
                               PredicateIndex::BuildCategoryMasks(df, 0));
  EXPECT_TRUE(index.CategoryMasksCached(df, 0));
  const Bitmap& mask = index.AtomMask(df, 0, CompareOp::kEq, Value("b"));
  EXPECT_TRUE(mask == PredicateIndex::Scan(df, 0, CompareOp::kEq,
                                           Value("b")));
}

TEST(PredicateIndexTest, CategoryMasksCachedReflectsWarmState) {
  Rng rng(99);
  auto schema = Schema::Create({
      {"c", AttrType::kCategorical, AttrRole::kImmutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  const char* levels[] = {"a", "b", "c"};
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        df.AppendRow({Value(levels[rng.NextBounded(3)]), Value(0.0)}).ok());
  }
  const PredicateIndex& index = df.predicate_index();
  EXPECT_FALSE(index.CategoryMasksCached(df, 0));
  // First equality touch batch-builds every sibling category.
  (void)index.AtomMask(df, 0, CompareOp::kEq, Value("a"));
  EXPECT_TRUE(index.CategoryMasksCached(df, 0));
  df.predicate_index().Clear();
  EXPECT_FALSE(index.CategoryMasksCached(df, 0));
}

TEST(PredicateIndexTest, EmptyPatternSelectsAllRows) {
  auto schema = Schema::Create({
      {"g", AttrType::kCategorical, AttrRole::kImmutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(df.AppendRow({Value("x"), Value(1.0 * i)}).ok());
  }
  EXPECT_EQ(Pattern::Empty().Evaluate(df).Count(), 5u);
  EXPECT_EQ(Pattern::Empty().EvaluateCached(df).Count(), 5u);
}

// Append path: AppendFrame must not throw warm masks away — they extend
// lazily by tail words on next touch (append.masks_extended) and the
// extended masks must be bit-identical to a naive scan of the grown
// table, for categorical equality, numeric ranges, and conjunctions.
TEST(PredicateIndexTest, AppendExtendsWarmMasksAndMatchesNaiveScan) {
  Rng rng(97);
  DataFrame df = RandomFrame(&rng, 300);
  std::vector<Pattern> patterns;
  for (int i = 0; i < 12; ++i) {
    std::vector<Predicate> preds;
    const size_t len = 1 + rng.NextBounded(3);
    for (size_t j = 0; j < len; ++j) {
      preds.push_back(RandomPredicate(&rng, df));
    }
    patterns.emplace_back(std::move(preds));
  }
  for (const Pattern& pattern : patterns) {
    (void)pattern.EvaluateCached(df);  // warm the masks pre-append
  }
  const uint64_t extended_before =
      obs::MetricsRegistry::Global().CounterValue("append.masks_extended");
  // Three appends of awkward sizes: sub-word, word-boundary-crossing,
  // and one that lands the row count exactly on a word boundary.
  const size_t deltas[] = {7, 100, 361};  // 300 -> 307 -> 407 -> 768
  for (const size_t delta_rows : deltas) {
    Rng delta_rng(delta_rows);
    const DataFrame delta = RandomFrame(&delta_rng, delta_rows);
    ASSERT_TRUE(df.AppendFrame(delta).ok());
    for (const Pattern& pattern : patterns) {
      const Bitmap& cached = pattern.EvaluateCached(df);
      ASSERT_EQ(cached.size(), df.num_rows());
      EXPECT_TRUE(cached == pattern.EvaluateNaive(df))
          << "rows=" << df.num_rows()
          << " pattern: " << pattern.ToString(df.schema());
    }
  }
  EXPECT_EQ(df.num_rows(), 768u);
  EXPECT_GT(
      obs::MetricsRegistry::Global().CounterValue("append.masks_extended"),
      extended_before);
}

TEST(PredicateIndexTest, AppendedFrameMatchesFreshFrameEvaluation) {
  // The lazily-extended index must agree with a cold index built over an
  // identical table assembled in one shot.
  Rng rng(98);
  const DataFrame full = RandomFrame(&rng, 500);
  std::vector<uint32_t> base_rows(440);
  for (size_t i = 0; i < 440; ++i) base_rows[i] = static_cast<uint32_t>(i);
  std::vector<uint32_t> delta_rows(60);
  for (size_t i = 0; i < 60; ++i) {
    delta_rows[i] = static_cast<uint32_t>(440 + i);
  }
  DataFrame grown = full.TakeRows(base_rows);
  Rng pred_rng(99);
  std::vector<Predicate> preds;
  for (int i = 0; i < 20; ++i) preds.push_back(RandomPredicate(&pred_rng, full));
  for (const Predicate& p : preds) (void)p.EvaluateCached(grown);
  ASSERT_TRUE(grown.AppendFrame(full.TakeRows(delta_rows)).ok());
  for (const Predicate& p : preds) {
    EXPECT_TRUE(p.EvaluateCached(grown) == p.Evaluate(full))
        << p.ToString(full.schema());
  }
}

}  // namespace
}  // namespace faircap
