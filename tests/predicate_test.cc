#include "mining/predicate.h"

#include <gtest/gtest.h>

namespace faircap {
namespace {

DataFrame Frame() {
  auto schema = Schema::Create({
      {"color", AttrType::kCategorical, AttrRole::kImmutable},
      {"size", AttrType::kNumeric, AttrRole::kImmutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  EXPECT_TRUE(df.AppendRow({Value("red"), Value(1.0)}).ok());
  EXPECT_TRUE(df.AppendRow({Value("blue"), Value(2.0)}).ok());
  EXPECT_TRUE(df.AppendRow({Value("red"), Value(3.0)}).ok());
  EXPECT_TRUE(df.AppendRow({Value::Null(), Value::Null()}).ok());
  return df;
}

TEST(PredicateTest, EqualityOnCategorical) {
  const DataFrame df = Frame();
  const Predicate p(0, CompareOp::kEq, Value("red"));
  EXPECT_TRUE(p.Validate(df).ok());
  const Bitmap mask = p.Evaluate(df);
  EXPECT_EQ(mask.Count(), 2u);
  EXPECT_TRUE(mask.Get(0));
  EXPECT_TRUE(mask.Get(2));
  EXPECT_TRUE(p.Matches(df, 0));
  EXPECT_FALSE(p.Matches(df, 1));
}

TEST(PredicateTest, InequalityOnCategoricalExcludesNulls) {
  const DataFrame df = Frame();
  const Predicate p(0, CompareOp::kNe, Value("red"));
  const Bitmap mask = p.Evaluate(df);
  EXPECT_EQ(mask.Count(), 1u);  // only "blue"; null row excluded
  EXPECT_TRUE(mask.Get(1));
}

TEST(PredicateTest, UnknownCategoryMatchesNothingUnderEq) {
  const DataFrame df = Frame();
  const Predicate p(0, CompareOp::kEq, Value("green"));
  EXPECT_EQ(p.Evaluate(df).Count(), 0u);
}

TEST(PredicateTest, UnknownCategoryMatchesAllNonNullUnderNe) {
  const DataFrame df = Frame();
  const Predicate p(0, CompareOp::kNe, Value("green"));
  EXPECT_EQ(p.Evaluate(df).Count(), 3u);
}

TEST(PredicateTest, OrderedOpsOnNumeric) {
  const DataFrame df = Frame();
  EXPECT_EQ(Predicate(1, CompareOp::kLt, Value(2.0)).Evaluate(df).Count(), 1u);
  EXPECT_EQ(Predicate(1, CompareOp::kLe, Value(2.0)).Evaluate(df).Count(), 2u);
  EXPECT_EQ(Predicate(1, CompareOp::kGt, Value(1.0)).Evaluate(df).Count(), 2u);
  EXPECT_EQ(Predicate(1, CompareOp::kGe, Value(1.0)).Evaluate(df).Count(), 3u);
  EXPECT_EQ(Predicate(1, CompareOp::kEq, Value(3.0)).Evaluate(df).Count(), 1u);
  EXPECT_EQ(Predicate(1, CompareOp::kNe, Value(3.0)).Evaluate(df).Count(), 2u);
}

TEST(PredicateTest, NullCellsNeverMatch) {
  const DataFrame df = Frame();
  EXPECT_FALSE(Predicate(1, CompareOp::kGe, Value(0.0)).Matches(df, 3));
  EXPECT_FALSE(Predicate(0, CompareOp::kNe, Value("red")).Matches(df, 3));
}

TEST(PredicateTest, ValidateRejectsBadShapes) {
  const DataFrame df = Frame();
  // Ordered op on categorical.
  EXPECT_FALSE(Predicate(0, CompareOp::kLt, Value("red")).Validate(df).ok());
  // Type mismatch.
  EXPECT_FALSE(Predicate(0, CompareOp::kEq, Value(1.0)).Validate(df).ok());
  EXPECT_FALSE(Predicate(1, CompareOp::kEq, Value("x")).Validate(df).ok());
  // Null constant.
  EXPECT_FALSE(Predicate(0, CompareOp::kEq, Value::Null()).Validate(df).ok());
  // Out-of-range attribute.
  EXPECT_FALSE(Predicate(9, CompareOp::kEq, Value("x")).Validate(df).ok());
}

TEST(PredicateTest, ToStringRendering) {
  const DataFrame df = Frame();
  EXPECT_EQ(Predicate(0, CompareOp::kEq, Value("red")).ToString(df.schema()),
            "color = red");
  EXPECT_EQ(Predicate(1, CompareOp::kGe, Value(2.0)).ToString(df.schema()),
            "size >= 2");
}

TEST(PredicateTest, OrderingIsDeterministic) {
  const Predicate a(0, CompareOp::kEq, Value("a"));
  const Predicate b(1, CompareOp::kEq, Value("a"));
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a == Predicate(0, CompareOp::kEq, Value("a")));
}

}  // namespace
}  // namespace faircap
