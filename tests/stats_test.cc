#include "causal/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace faircap {
namespace {

TEST(MomentsTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 2.0, 3.0}), 1.0);
  EXPECT_TRUE(std::isnan(Mean({})));
  EXPECT_TRUE(std::isnan(Variance({5.0})));
}

TEST(CorrelationTest, PerfectAndNone) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
  EXPECT_TRUE(std::isnan(PearsonCorrelation({1, 1, 1}, {1, 2, 3})));
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(GammaQTest, ChiSquareTailKnownValues) {
  // Chi-square upper tails: P(X^2_1 > 3.841) ~ 0.05.
  EXPECT_NEAR(ChiSquarePValue(3.841, 1), 0.05, 2e-3);
  EXPECT_NEAR(ChiSquarePValue(5.991, 2), 0.05, 2e-3);
  EXPECT_NEAR(ChiSquarePValue(0.0, 3), 1.0, 1e-12);
  EXPECT_NEAR(ChiSquarePValue(100.0, 1), 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(ChiSquarePValue(5.0, 0), 1.0);
}

TEST(ChiSquareIndependenceTest, IndependentTable) {
  // Perfectly proportional 2x2 table -> statistic 0.
  const IndependenceTest t = ChiSquareIndependence({20, 30, 40, 60}, 2, 2);
  ASSERT_TRUE(t.informative);
  EXPECT_NEAR(t.statistic, 0.0, 1e-9);
  EXPECT_NEAR(t.p_value, 1.0, 1e-9);
  EXPECT_EQ(t.dof, 1u);
}

TEST(ChiSquareIndependenceTest, DependentTable) {
  const IndependenceTest t = ChiSquareIndependence({50, 0, 0, 50}, 2, 2);
  ASSERT_TRUE(t.informative);
  EXPECT_GT(t.statistic, 50.0);
  EXPECT_LT(t.p_value, 1e-6);
}

TEST(ChiSquareIndependenceTest, DegenerateTablesUninformative) {
  // A row with no mass drops dof to 0.
  const IndependenceTest t = ChiSquareIndependence({10, 20, 0, 0}, 2, 2);
  EXPECT_FALSE(t.informative);
  EXPECT_FALSE(ChiSquareIndependence({}, 0, 0).informative);
}

TEST(ConditionalChiSquareTest, ConditionalIndependenceDetected) {
  // x and y both driven by stratum s; within each stratum independent.
  Rng rng(3);
  std::vector<int32_t> x, y;
  std::vector<int64_t> s;
  for (int i = 0; i < 4000; ++i) {
    const int64_t stratum = static_cast<int64_t>(rng.NextBounded(2));
    const double bias = stratum == 0 ? 0.2 : 0.8;
    x.push_back(rng.NextBernoulli(bias) ? 1 : 0);
    y.push_back(rng.NextBernoulli(bias) ? 1 : 0);
    s.push_back(stratum);
  }
  // Marginally dependent...
  const IndependenceTest marginal =
      ConditionalChiSquare(x, 2, y, 2, std::vector<int64_t>(x.size(), 0));
  ASSERT_TRUE(marginal.informative);
  EXPECT_LT(marginal.p_value, 0.01);
  // ...but conditionally independent.
  const IndependenceTest conditional = ConditionalChiSquare(x, 2, y, 2, s);
  ASSERT_TRUE(conditional.informative);
  EXPECT_GT(conditional.p_value, 0.01);
}

TEST(ConditionalChiSquareTest, SkipsNullCodes) {
  std::vector<int32_t> x = {0, 1, -1, 0, 1};
  std::vector<int32_t> y = {0, 1, 0, 0, 1};
  std::vector<int64_t> s(5, 0);
  const IndependenceTest t = ConditionalChiSquare(x, 2, y, 2, s);
  ASSERT_TRUE(t.informative);
  // Remaining 4 rows are perfectly correlated.
  EXPECT_LT(t.p_value, 0.2);
}

TEST(ConditionalChiSquareTest, MismatchedInputsUninformative) {
  EXPECT_FALSE(
      ConditionalChiSquare({0, 1}, 2, {0}, 2, {0, 0}).informative);
  EXPECT_FALSE(
      ConditionalChiSquare({0, 1}, 1, {0, 1}, 2, {0, 0}).informative);
}

TEST(FisherZTest, LargeSampleSmallCorrelation) {
  EXPECT_GT(FisherZPValue(0.01, 100, 0), 0.5);
  EXPECT_LT(FisherZPValue(0.5, 100, 0), 1e-4);
  // Too few samples: no power.
  EXPECT_DOUBLE_EQ(FisherZPValue(0.9, 4, 2), 1.0);
}

}  // namespace
}  // namespace faircap
