#include "core/greedy.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace faircap {
namespace {

// Rules over a 100-row universe; protected rows are 0..19 (20%).
Bitmap ProtectedMask() {
  Bitmap mask(100);
  for (size_t i = 0; i < 20; ++i) mask.Set(i);
  return mask;
}

PrescriptionRule MakeRule(size_t begin, size_t end, double utility,
                          double utility_p, double utility_np) {
  const Bitmap mask = ProtectedMask();
  PrescriptionRule rule;
  rule.coverage = Bitmap(100);
  for (size_t i = begin; i < end; ++i) rule.coverage.Set(i);
  rule.coverage_protected = rule.coverage & mask;
  rule.support = rule.coverage.Count();
  rule.support_protected = rule.coverage_protected.Count();
  rule.utility = utility;
  rule.utility_protected = utility_p;
  rule.utility_nonprotected = utility_np;
  return rule;
}

TEST(GreedyTest, EmptyCandidatesYieldEmptyResult) {
  const GreedyResult result =
      GreedySelect({}, ProtectedMask(), FairnessConstraint::None(),
                   CoverageConstraint::None());
  EXPECT_TRUE(result.selected.empty());
  EXPECT_TRUE(result.constraints_satisfied);
}

TEST(GreedyTest, PicksHighestUtilityFirst) {
  const std::vector<PrescriptionRule> candidates = {
      MakeRule(0, 100, 10.0, 10.0, 10.0),
      MakeRule(0, 100, 50.0, 50.0, 50.0),
  };
  const GreedyResult result =
      GreedySelect(candidates, ProtectedMask(), FairnessConstraint::None(),
                   CoverageConstraint::None());
  ASSERT_FALSE(result.selected.empty());
  EXPECT_EQ(result.selected[0], 1u);
}

TEST(GreedyTest, NegativeUtilityNeverSelected) {
  const std::vector<PrescriptionRule> candidates = {
      MakeRule(0, 100, -5.0, -5.0, -5.0)};
  const GreedyResult result =
      GreedySelect(candidates, ProtectedMask(), FairnessConstraint::None(),
                   CoverageConstraint::None());
  EXPECT_TRUE(result.selected.empty());
}

TEST(GreedyTest, MaxRulesCapRespected) {
  std::vector<PrescriptionRule> candidates;
  for (size_t i = 0; i < 30; ++i) {
    candidates.push_back(MakeRule(i * 3, i * 3 + 3, 10.0 + i, 10.0, 10.0));
  }
  GreedyOptions options;
  options.max_rules = 5;
  options.min_marginal_gain = 0.0;
  const GreedyResult result =
      GreedySelect(candidates, ProtectedMask(), FairnessConstraint::None(),
                   CoverageConstraint::None(), options);
  EXPECT_LE(result.selected.size(), 5u);
}

TEST(GreedyTest, RuleCoveragePreFiltersCandidates) {
  const std::vector<PrescriptionRule> candidates = {
      MakeRule(0, 5, 100.0, 100.0, 100.0),    // 5% coverage: fails 10%
      MakeRule(0, 60, 50.0, 50.0, 50.0),      // 60% coverage: passes
  };
  const GreedyResult result = GreedySelect(
      candidates, ProtectedMask(), FairnessConstraint::None(),
      CoverageConstraint::Rule(0.1, 0.1));
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0], 1u);
}

TEST(GreedyTest, IndividualFairnessPreFiltersCandidates) {
  const std::vector<PrescriptionRule> candidates = {
      MakeRule(0, 100, 100.0, 10.0, 100.0),  // gap 90: unfair
      MakeRule(0, 100, 40.0, 38.0, 42.0),    // gap 4: fair
  };
  const GreedyResult result = GreedySelect(
      candidates, ProtectedMask(), FairnessConstraint::IndividualSP(5.0),
      CoverageConstraint::None());
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0], 1u);
}

TEST(GreedyTest, CoverageConstraintDrivesSelectionUntilMet) {
  // Highest-utility rule covers only protected rows; meeting the group
  // coverage constraint requires adding the broad rule too.
  const std::vector<PrescriptionRule> candidates = {
      MakeRule(0, 20, 90.0, 90.0, 0.0),     // protected-only, high utility
      MakeRule(20, 100, 30.0, 0.0, 30.0),   // non-protected bulk
  };
  const GreedyResult result = GreedySelect(
      candidates, ProtectedMask(), FairnessConstraint::None(),
      CoverageConstraint::Group(0.9, 0.9));
  EXPECT_EQ(result.selected.size(), 2u);
  EXPECT_TRUE(result.stats.coverage_fraction >= 0.9);
  EXPECT_TRUE(result.constraints_satisfied);
}

TEST(GreedyTest, GroupFairnessSteeringAvoidsViolatingRule) {
  // Candidate 0 creates a large group gap; candidate 1 is fair with decent
  // utility. Under group SP(5) the solver must not end up violating.
  const std::vector<PrescriptionRule> candidates = {
      MakeRule(0, 100, 100.0, 20.0, 120.0),  // unfair (gap 100)
      MakeRule(0, 100, 60.0, 58.0, 61.0),    // fair (gap 3)
  };
  const GreedyResult result = GreedySelect(
      candidates, ProtectedMask(), FairnessConstraint::GroupSP(5.0),
      CoverageConstraint::None());
  ASSERT_FALSE(result.selected.empty());
  EXPECT_TRUE(result.constraints_satisfied)
      << "unfairness=" << result.stats.unfairness;
  EXPECT_LE(std::abs(result.stats.unfairness), 5.0);
}

TEST(GreedyTest, GroupBGLSatisfiedViaTrim) {
  const std::vector<PrescriptionRule> candidates = {
      MakeRule(0, 100, 100.0, 0.05, 120.0),  // starves protected
      MakeRule(0, 100, 50.0, 45.0, 52.0),    // protects them
  };
  const GreedyResult result = GreedySelect(
      candidates, ProtectedMask(), FairnessConstraint::GroupBGL(40.0),
      CoverageConstraint::None());
  ASSERT_FALSE(result.selected.empty());
  EXPECT_TRUE(result.constraints_satisfied);
  EXPECT_GE(result.stats.exp_utility_protected, 40.0);
}

TEST(GreedyTest, StatsMatchRecomputation) {
  const std::vector<PrescriptionRule> candidates = {
      MakeRule(0, 50, 10.0, 8.0, 12.0), MakeRule(50, 100, 20.0, 0.0, 20.0)};
  const GreedyResult result =
      GreedySelect(candidates, ProtectedMask(), FairnessConstraint::None(),
                   CoverageConstraint::None());
  const RulesetStats recomputed =
      ComputeRulesetStats(candidates, result.selected, ProtectedMask());
  EXPECT_DOUBLE_EQ(result.stats.exp_utility, recomputed.exp_utility);
  EXPECT_EQ(result.stats.covered, recomputed.covered);
}

TEST(GreedyTest, MarginalGainStoppingAvoidsRedundantRules) {
  // Second rule identical to the first: adds nothing, must not be picked.
  const std::vector<PrescriptionRule> candidates = {
      MakeRule(0, 100, 50.0, 50.0, 50.0),
      MakeRule(0, 100, 50.0, 50.0, 50.0),
  };
  GreedyOptions options;
  options.min_marginal_gain = 1e-6;
  const GreedyResult result =
      GreedySelect(candidates, ProtectedMask(), FairnessConstraint::None(),
                   CoverageConstraint::None(), options);
  EXPECT_EQ(result.selected.size(), 1u);
}

}  // namespace
}  // namespace faircap
