#include "causal/backdoor.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace faircap {
namespace {

// Confounded triangle: z -> t, z -> o, t -> o.
CausalDag Confounded() {
  return CausalDag::Create({"z", "t", "o"},
                           {{"z", "t"}, {"z", "o"}, {"t", "o"}})
      .ValueOrDie();
}

TEST(BackdoorTest, ConfounderIsValidAdjustment) {
  const CausalDag dag = Confounded();
  EXPECT_TRUE(IsValidBackdoorSet(dag, {1}, 2, {0}));
  // Empty set leaves the backdoor path t <- z -> o open.
  EXPECT_FALSE(IsValidBackdoorSet(dag, {1}, 2, {}));
}

TEST(BackdoorTest, DescendantOfTreatmentInvalid) {
  // t -> m -> o; conditioning on the mediator m is not a backdoor set.
  const CausalDag dag =
      CausalDag::Create({"t", "m", "o"}, {{"t", "m"}, {"m", "o"}})
          .ValueOrDie();
  EXPECT_FALSE(IsValidBackdoorSet(dag, {0}, 2, {1}));
  // No confounding at all: empty set is valid.
  EXPECT_TRUE(IsValidBackdoorSet(dag, {0}, 2, {}));
}

TEST(BackdoorTest, TreatmentOrOutcomeInSetInvalid) {
  const CausalDag dag = Confounded();
  EXPECT_FALSE(IsValidBackdoorSet(dag, {1}, 2, {1}));
  EXPECT_FALSE(IsValidBackdoorSet(dag, {1}, 2, {2}));
}

TEST(BackdoorTest, ParentAdjustmentSetIsParentsMinusTreatments) {
  const CausalDag dag = Confounded();
  const auto z = ParentAdjustmentSet(dag, {1}, 2);
  ASSERT_TRUE(z.ok());
  ASSERT_EQ(z->size(), 1u);
  EXPECT_EQ((*z)[0], 0u);
  EXPECT_TRUE(IsValidBackdoorSet(dag, {1}, 2, *z));
}

TEST(BackdoorTest, ParentSetAlwaysValidOnLargerGraph) {
  // Richer graph: u -> z -> t -> o, z -> o, u -> o, t2 with own parent.
  const CausalDag dag =
      CausalDag::Create({"u", "z", "t", "o", "p2", "t2"},
                        {{"u", "z"},
                         {"z", "t"},
                         {"t", "o"},
                         {"z", "o"},
                         {"u", "o"},
                         {"p2", "t2"},
                         {"t2", "o"},
                         {"p2", "o"}})
          .ValueOrDie();
  for (const std::vector<size_t>& treatments :
       {std::vector<size_t>{2}, std::vector<size_t>{5},
        std::vector<size_t>{2, 5}}) {
    const auto z = ParentAdjustmentSet(dag, treatments, 3);
    ASSERT_TRUE(z.ok());
    EXPECT_TRUE(IsValidBackdoorSet(dag, treatments, 3, *z));
  }
}

TEST(BackdoorTest, MultiTreatmentParentsMerged) {
  const CausalDag dag =
      CausalDag::Create({"z1", "z2", "t1", "t2", "o"},
                        {{"z1", "t1"}, {"z2", "t2"}, {"t1", "o"},
                         {"t2", "o"}, {"z1", "o"}, {"z2", "o"},
                         {"t1", "t2"}})
          .ValueOrDie();
  const auto z = ParentAdjustmentSet(dag, {2, 3}, 4);
  ASSERT_TRUE(z.ok());
  // t1 is a parent of t2 but is itself a treatment: excluded.
  EXPECT_EQ(z->size(), 2u);
  EXPECT_TRUE(std::find(z->begin(), z->end(), 2u) == z->end());
}

TEST(BackdoorTest, OutcomeParentOfTreatmentIsError) {
  const CausalDag dag =
      CausalDag::Create({"o", "t"}, {{"o", "t"}}).ValueOrDie();
  const auto z = ParentAdjustmentSet(dag, {1}, 0);
  EXPECT_EQ(z.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BackdoorTest, MinimalBackdoorSetShrinks) {
  // Two confounders but only z1 lies on a backdoor path:
  // z1 -> t, z1 -> o, z2 -> o only.
  const CausalDag dag =
      CausalDag::Create({"z1", "z2", "t", "o"},
                        {{"z1", "t"}, {"z1", "o"}, {"z2", "o"}, {"t", "o"}})
          .ValueOrDie();
  const auto minimal = MinimalBackdoorSet(dag, {2}, 3, {0, 1});
  ASSERT_TRUE(minimal.ok());
  ASSERT_EQ(minimal->size(), 1u);
  EXPECT_EQ((*minimal)[0], 0u);
}

TEST(BackdoorTest, MinimalRejectsInvalidStart) {
  const CausalDag dag = Confounded();
  const auto minimal = MinimalBackdoorSet(dag, {1}, 2, {});
  EXPECT_EQ(minimal.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace faircap
