#include "dataframe/dataframe.h"

#include <gtest/gtest.h>

#include <cmath>

namespace faircap {
namespace {

DataFrame SmallFrame() {
  auto schema = Schema::Create({
      {"city", AttrType::kCategorical, AttrRole::kImmutable},
      {"job", AttrType::kCategorical, AttrRole::kMutable},
      {"income", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  EXPECT_TRUE(df.AppendRow({Value("nyc"), Value("dev"), Value(100.0)}).ok());
  EXPECT_TRUE(df.AppendRow({Value("sf"), Value("dev"), Value(150.0)}).ok());
  EXPECT_TRUE(df.AppendRow({Value("nyc"), Value("qa"), Value(80.0)}).ok());
  EXPECT_TRUE(
      df.AppendRow({Value("sf"), Value::Null(), Value::Null()}).ok());
  return df;
}

TEST(DataFrameTest, BasicShapeAndAccess) {
  const DataFrame df = SmallFrame();
  EXPECT_EQ(df.num_rows(), 4u);
  EXPECT_EQ(df.num_columns(), 3u);
  EXPECT_EQ(df.GetValue(0, 0), Value("nyc"));
  EXPECT_EQ(df.GetValue(1, 2), Value(150.0));
  EXPECT_TRUE(df.GetValue(3, 1).is_null());
}

TEST(DataFrameTest, ColumnByName) {
  const DataFrame df = SmallFrame();
  const auto col = df.ColumnByName("income");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->type(), AttrType::kNumeric);
  EXPECT_FALSE(df.ColumnByName("bogus").ok());
}

TEST(DataFrameTest, AppendRowRejectsArityMismatch) {
  DataFrame df = SmallFrame();
  EXPECT_EQ(df.AppendRow({Value("x")}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(df.num_rows(), 4u);
}

TEST(DataFrameTest, AppendRowRejectsTypeMismatchWithoutPartialWrite) {
  DataFrame df = SmallFrame();
  // Second cell bad: no column may grow.
  EXPECT_FALSE(df.AppendRow({Value("la"), Value(3.0), Value(1.0)}).ok());
  EXPECT_EQ(df.num_rows(), 4u);
  for (size_t c = 0; c < df.num_columns(); ++c) {
    EXPECT_EQ(df.column(c).size(), 4u);
  }
}

TEST(DataFrameTest, CategoricalDictionaryEncoding) {
  const DataFrame df = SmallFrame();
  const Column& city = df.column(0);
  EXPECT_EQ(city.num_categories(), 2u);
  EXPECT_EQ(city.code(0), city.code(2));  // both nyc
  EXPECT_NE(city.code(0), city.code(1));
  EXPECT_EQ(city.CategoryName(city.code(1)), "sf");
  EXPECT_FALSE(city.CodeOf("tokyo").ok());
}

TEST(DataFrameTest, NullHandling) {
  const DataFrame df = SmallFrame();
  EXPECT_TRUE(df.column(1).IsNull(3));
  EXPECT_TRUE(df.column(2).IsNull(3));
  EXPECT_FALSE(df.column(0).IsNull(3));
}

TEST(DataFrameTest, MeanSkipsNulls) {
  const DataFrame df = SmallFrame();
  EXPECT_DOUBLE_EQ(df.Mean(2), (100.0 + 150.0 + 80.0) / 3.0);
}

TEST(DataFrameTest, MeanOverMask) {
  const DataFrame df = SmallFrame();
  Bitmap mask(df.num_rows());
  mask.Set(0);
  mask.Set(2);
  EXPECT_DOUBLE_EQ(df.Mean(2, mask), 90.0);
}

TEST(DataFrameTest, MeanOfEmptySelectionIsNaN) {
  const DataFrame df = SmallFrame();
  Bitmap mask(df.num_rows());
  EXPECT_TRUE(std::isnan(df.Mean(2, mask)));
}

TEST(DataFrameTest, TakePreservesSchemaAndDictionary) {
  const DataFrame df = SmallFrame();
  Bitmap mask(df.num_rows());
  mask.Set(1);
  mask.Set(3);
  const DataFrame sub = df.Take(mask);
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.GetValue(0, 0), Value("sf"));
  EXPECT_TRUE(sub.GetValue(1, 2).is_null());
  // Dictionary survives: codes of "nyc" still resolvable even if unused.
  EXPECT_TRUE(sub.column(0).CodeOf("nyc").ok());
}

TEST(DataFrameTest, SampleFraction) {
  const DataFrame df = SmallFrame();
  Rng rng(5);
  const DataFrame half = df.SampleFraction(0.5, &rng);
  EXPECT_EQ(half.num_rows(), 2u);
  const DataFrame all = df.SampleFraction(1.0, &rng);
  EXPECT_EQ(all.num_rows(), 4u);
  const DataFrame none = df.SampleFraction(0.0, &rng);
  EXPECT_EQ(none.num_rows(), 0u);
}

TEST(DataFrameTest, SetRoleRebuildsSchema) {
  DataFrame df = SmallFrame();
  ASSERT_TRUE(df.SetRole("job", AttrRole::kIgnored).ok());
  EXPECT_EQ(df.schema().attribute(1).role, AttrRole::kIgnored);
  // Cannot demote outcome to a second outcome elsewhere.
  EXPECT_FALSE(df.SetRole("city", AttrRole::kOutcome).ok());
}

TEST(DataFrameTest, AllRowsMask) {
  const DataFrame df = SmallFrame();
  EXPECT_EQ(df.AllRows().Count(), df.num_rows());
}

}  // namespace
}  // namespace faircap
