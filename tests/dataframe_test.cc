#include "dataframe/dataframe.h"

#include <gtest/gtest.h>

#include <cmath>

namespace faircap {
namespace {

DataFrame SmallFrame() {
  auto schema = Schema::Create({
      {"city", AttrType::kCategorical, AttrRole::kImmutable},
      {"job", AttrType::kCategorical, AttrRole::kMutable},
      {"income", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  EXPECT_TRUE(df.AppendRow({Value("nyc"), Value("dev"), Value(100.0)}).ok());
  EXPECT_TRUE(df.AppendRow({Value("sf"), Value("dev"), Value(150.0)}).ok());
  EXPECT_TRUE(df.AppendRow({Value("nyc"), Value("qa"), Value(80.0)}).ok());
  EXPECT_TRUE(
      df.AppendRow({Value("sf"), Value::Null(), Value::Null()}).ok());
  return df;
}

TEST(DataFrameTest, BasicShapeAndAccess) {
  const DataFrame df = SmallFrame();
  EXPECT_EQ(df.num_rows(), 4u);
  EXPECT_EQ(df.num_columns(), 3u);
  EXPECT_EQ(df.GetValue(0, 0), Value("nyc"));
  EXPECT_EQ(df.GetValue(1, 2), Value(150.0));
  EXPECT_TRUE(df.GetValue(3, 1).is_null());
}

TEST(DataFrameTest, ColumnByName) {
  const DataFrame df = SmallFrame();
  const auto col = df.ColumnByName("income");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->type(), AttrType::kNumeric);
  EXPECT_FALSE(df.ColumnByName("bogus").ok());
}

TEST(DataFrameTest, AppendRowRejectsArityMismatch) {
  DataFrame df = SmallFrame();
  EXPECT_EQ(df.AppendRow({Value("x")}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(df.num_rows(), 4u);
}

TEST(DataFrameTest, AppendRowRejectsTypeMismatchWithoutPartialWrite) {
  DataFrame df = SmallFrame();
  // Second cell bad: no column may grow.
  EXPECT_FALSE(df.AppendRow({Value("la"), Value(3.0), Value(1.0)}).ok());
  EXPECT_EQ(df.num_rows(), 4u);
  for (size_t c = 0; c < df.num_columns(); ++c) {
    EXPECT_EQ(df.column(c).size(), 4u);
  }
}

TEST(DataFrameTest, CategoricalDictionaryEncoding) {
  const DataFrame df = SmallFrame();
  const Column& city = df.column(0);
  EXPECT_EQ(city.num_categories(), 2u);
  EXPECT_EQ(city.code(0), city.code(2));  // both nyc
  EXPECT_NE(city.code(0), city.code(1));
  EXPECT_EQ(city.CategoryName(city.code(1)), "sf");
  EXPECT_FALSE(city.CodeOf("tokyo").ok());
}

TEST(DataFrameTest, NullHandling) {
  const DataFrame df = SmallFrame();
  EXPECT_TRUE(df.column(1).IsNull(3));
  EXPECT_TRUE(df.column(2).IsNull(3));
  EXPECT_FALSE(df.column(0).IsNull(3));
}

TEST(DataFrameTest, MeanSkipsNulls) {
  const DataFrame df = SmallFrame();
  EXPECT_DOUBLE_EQ(df.Mean(2), (100.0 + 150.0 + 80.0) / 3.0);
}

TEST(DataFrameTest, MeanOverMask) {
  const DataFrame df = SmallFrame();
  Bitmap mask(df.num_rows());
  mask.Set(0);
  mask.Set(2);
  EXPECT_DOUBLE_EQ(df.Mean(2, mask), 90.0);
}

TEST(DataFrameTest, MeanOfEmptySelectionIsNaN) {
  const DataFrame df = SmallFrame();
  Bitmap mask(df.num_rows());
  EXPECT_TRUE(std::isnan(df.Mean(2, mask)));
}

TEST(DataFrameTest, TakePreservesSchemaAndDictionary) {
  const DataFrame df = SmallFrame();
  Bitmap mask(df.num_rows());
  mask.Set(1);
  mask.Set(3);
  const DataFrame sub = df.Take(mask);
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.GetValue(0, 0), Value("sf"));
  EXPECT_TRUE(sub.GetValue(1, 2).is_null());
  // Dictionary survives: codes of "nyc" still resolvable even if unused.
  EXPECT_TRUE(sub.column(0).CodeOf("nyc").ok());
}

TEST(DataFrameTest, SampleFraction) {
  const DataFrame df = SmallFrame();
  Rng rng(5);
  const DataFrame half = df.SampleFraction(0.5, &rng);
  EXPECT_EQ(half.num_rows(), 2u);
  const DataFrame all = df.SampleFraction(1.0, &rng);
  EXPECT_EQ(all.num_rows(), 4u);
  const DataFrame none = df.SampleFraction(0.0, &rng);
  EXPECT_EQ(none.num_rows(), 0u);
}

TEST(DataFrameTest, SetRoleRebuildsSchema) {
  DataFrame df = SmallFrame();
  ASSERT_TRUE(df.SetRole("job", AttrRole::kIgnored).ok());
  EXPECT_EQ(df.schema().attribute(1).role, AttrRole::kIgnored);
  // Cannot demote outcome to a second outcome elsewhere.
  EXPECT_FALSE(df.SetRole("city", AttrRole::kOutcome).ok());
}

TEST(DataFrameTest, AllRowsMask) {
  const DataFrame df = SmallFrame();
  EXPECT_EQ(df.AllRows().Count(), df.num_rows());
}

TEST(DataFrameTest, AppendFrameConcatenatesAndBumpsGeneration) {
  DataFrame df = SmallFrame();
  const DataFrame delta = SmallFrame();
  const uint64_t gen_before = df.generation();
  ASSERT_TRUE(df.AppendFrame(delta).ok());
  EXPECT_EQ(df.num_rows(), 8u);
  EXPECT_GT(df.generation(), gen_before);
  // Appended rows read back exactly, nulls included.
  EXPECT_EQ(df.GetValue(4, 0), Value("nyc"));
  EXPECT_EQ(df.GetValue(5, 2), Value(150.0));
  EXPECT_TRUE(df.GetValue(7, 1).is_null());
  // Resident rows are untouched.
  EXPECT_EQ(df.GetValue(0, 0), Value("nyc"));
  EXPECT_EQ(df.GetValue(2, 1), Value("qa"));
}

TEST(DataFrameTest, AppendFrameMergesDictionariesInFirstAppearanceOrder) {
  DataFrame df = SmallFrame();  // city dictionary: {nyc, sf}
  auto schema = Schema::Create({
      {"city", AttrType::kCategorical, AttrRole::kImmutable},
      {"job", AttrType::kCategorical, AttrRole::kMutable},
      {"income", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame delta = DataFrame::Create(std::move(schema).ValueOrDie());
  // The delta's own dictionary leads with categories the resident table
  // has never seen, in a different order than the resident dictionary.
  ASSERT_TRUE(
      delta.AppendRow({Value("tokyo"), Value("qa"), Value(90.0)}).ok());
  ASSERT_TRUE(delta.AppendRow({Value("sf"), Value("ops"), Value(95.0)}).ok());
  ASSERT_TRUE(
      delta.AppendRow({Value("lisbon"), Value("dev"), Value(85.0)}).ok());
  ASSERT_TRUE(df.AppendFrame(delta).ok());
  // New categories intern after the resident ones, in first-appearance
  // order — exactly the codes a cold parse of the concatenation assigns.
  const Column& city = df.column(0);
  ASSERT_EQ(city.num_categories(), 4u);
  EXPECT_EQ(city.CategoryName(0), "nyc");
  EXPECT_EQ(city.CategoryName(1), "sf");
  EXPECT_EQ(city.CategoryName(2), "tokyo");
  EXPECT_EQ(city.CategoryName(3), "lisbon");
  EXPECT_EQ(df.GetValue(4, 0), Value("tokyo"));
  EXPECT_EQ(df.GetValue(5, 0), Value("sf"));
  EXPECT_EQ(df.GetValue(6, 0), Value("lisbon"));
  EXPECT_EQ(df.GetValue(5, 1), Value("ops"));
}

TEST(DataFrameTest, AppendFrameRejectsSchemaMismatch) {
  DataFrame df = SmallFrame();
  auto wrong_arity = Schema::Create({
      {"city", AttrType::kCategorical, AttrRole::kImmutable},
      {"income", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame delta1 = DataFrame::Create(std::move(wrong_arity).ValueOrDie());
  EXPECT_EQ(df.AppendFrame(delta1).code(), StatusCode::kInvalidArgument);
  auto wrong_type = Schema::Create({
      {"city", AttrType::kNumeric, AttrRole::kImmutable},
      {"job", AttrType::kCategorical, AttrRole::kMutable},
      {"income", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame delta2 = DataFrame::Create(std::move(wrong_type).ValueOrDie());
  EXPECT_EQ(df.AppendFrame(delta2).code(), StatusCode::kInvalidArgument);
  auto wrong_name = Schema::Create({
      {"town", AttrType::kCategorical, AttrRole::kImmutable},
      {"job", AttrType::kCategorical, AttrRole::kMutable},
      {"income", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame delta3 = DataFrame::Create(std::move(wrong_name).ValueOrDie());
  EXPECT_EQ(df.AppendFrame(delta3).code(), StatusCode::kInvalidArgument);
  // Failed appends leave the table untouched.
  EXPECT_EQ(df.num_rows(), 4u);
}

TEST(DataFrameTest, AppendFrameMatchesRowByRowReplay) {
  // AppendFrame(delta) must produce the exact table that appending the
  // delta's rows one by one would — same codes, same nulls, same values.
  DataFrame by_frame = SmallFrame();
  DataFrame by_row = SmallFrame();
  auto schema = Schema::Create({
      {"city", AttrType::kCategorical, AttrRole::kImmutable},
      {"job", AttrType::kCategorical, AttrRole::kMutable},
      {"income", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame delta = DataFrame::Create(std::move(schema).ValueOrDie());
  const std::vector<std::vector<Value>> rows = {
      {Value("sf"), Value("ops"), Value(70.0)},
      {Value("berlin"), Value::Null(), Value(60.0)},
      {Value::Null(), Value("dev"), Value::Null()},
  };
  for (const auto& row : rows) {
    ASSERT_TRUE(delta.AppendRow(row).ok());
    ASSERT_TRUE(by_row.AppendRow(row).ok());
  }
  ASSERT_TRUE(by_frame.AppendFrame(delta).ok());
  ASSERT_EQ(by_frame.num_rows(), by_row.num_rows());
  for (size_t r = 0; r < by_frame.num_rows(); ++r) {
    for (size_t c = 0; c < by_frame.num_columns(); ++c) {
      EXPECT_EQ(by_frame.GetValue(r, c), by_row.GetValue(r, c))
          << "row " << r << " col " << c;
    }
  }
}

}  // namespace
}  // namespace faircap
