// Randomized property tests over the graphical-identification stack:
// on random DAGs, the parent adjustment set always satisfies the backdoor
// criterion, minimal sets stay valid subsets, and d-separation is
// symmetric and monotone under the right conditions.

#include <gtest/gtest.h>

#include <algorithm>

#include "causal/backdoor.h"
#include "causal/d_separation.h"
#include "util/random.h"

namespace faircap {
namespace {

// Random DAG over n nodes: edge i -> j (i < j) with probability p.
CausalDag RandomDag(size_t n, double p, Rng* rng) {
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) {
    std::string name = "v";
    name += std::to_string(i);
    names.push_back(std::move(name));
  }
  std::vector<std::pair<std::string, std::string>> edges;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng->NextBernoulli(p)) edges.emplace_back(names[i], names[j]);
    }
  }
  return CausalDag::Create(std::move(names), edges).ValueOrDie();
}

class GraphProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphProperty, ParentAdjustmentSetAlwaysValid) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const CausalDag dag = RandomDag(8, 0.3, &rng);
    // Outcome: last node (most likely a sink-ish node by construction).
    const size_t o = 7;
    for (size_t t = 0; t < 7; ++t) {
      // Skip treatments with the outcome as a parent (ill-posed).
      const auto& parents = dag.Parents(t);
      if (std::find(parents.begin(), parents.end(), o) != parents.end()) {
        continue;
      }
      const auto z = ParentAdjustmentSet(dag, {t}, o);
      ASSERT_TRUE(z.ok());
      EXPECT_TRUE(IsValidBackdoorSet(dag, {t}, o, *z))
          << "dag=" << dag.ToString() << " t=" << t;
    }
  }
}

TEST_P(GraphProperty, MinimalBackdoorSetIsValidSubset) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 20; ++trial) {
    const CausalDag dag = RandomDag(8, 0.3, &rng);
    const size_t o = 7;
    for (size_t t = 0; t < 7; ++t) {
      const auto& parents = dag.Parents(t);
      if (std::find(parents.begin(), parents.end(), o) != parents.end()) {
        continue;
      }
      const auto z = ParentAdjustmentSet(dag, {t}, o);
      ASSERT_TRUE(z.ok());
      const auto minimal = MinimalBackdoorSet(dag, {t}, o, *z);
      ASSERT_TRUE(minimal.ok());
      EXPECT_LE(minimal->size(), z->size());
      EXPECT_TRUE(IsValidBackdoorSet(dag, {t}, o, *minimal));
      // Subset check.
      for (size_t v : *minimal) {
        EXPECT_NE(std::find(z->begin(), z->end(), v), z->end());
      }
    }
  }
}

TEST_P(GraphProperty, DSeparationIsSymmetric) {
  Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 30; ++trial) {
    const CausalDag dag = RandomDag(7, 0.3, &rng);
    const size_t x = rng.NextBounded(7);
    size_t y = rng.NextBounded(7);
    if (y == x) y = (y + 1) % 7;
    std::vector<size_t> z;
    for (size_t v = 0; v < 7; ++v) {
      if (v != x && v != y && rng.NextBernoulli(0.3)) z.push_back(v);
    }
    EXPECT_EQ(DSeparated(dag, x, y, z), DSeparated(dag, y, x, z));
  }
}

TEST_P(GraphProperty, AdjacentNodesNeverDSeparated) {
  Rng rng(GetParam() + 300);
  for (int trial = 0; trial < 20; ++trial) {
    const CausalDag dag = RandomDag(7, 0.4, &rng);
    for (size_t u = 0; u < 7; ++u) {
      for (size_t v : dag.Children(u)) {
        std::vector<size_t> z;
        for (size_t w = 0; w < 7; ++w) {
          if (w != u && w != v && rng.NextBernoulli(0.5)) z.push_back(w);
        }
        EXPECT_FALSE(DSeparated(dag, u, v, z));
      }
    }
  }
}

TEST_P(GraphProperty, TopologicalOrderConsistentOnRandomDags) {
  Rng rng(GetParam() + 400);
  for (int trial = 0; trial < 20; ++trial) {
    const CausalDag dag = RandomDag(10, 0.25, &rng);
    const auto order = dag.TopologicalOrder();
    ASSERT_EQ(order.size(), dag.num_nodes());
    std::vector<size_t> position(dag.num_nodes());
    for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    for (size_t u = 0; u < dag.num_nodes(); ++u) {
      for (size_t v : dag.Children(u)) {
        EXPECT_LT(position[u], position[v]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace faircap
