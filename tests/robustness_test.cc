// Failure-injection and degenerate-input tests: empty protected groups,
// null-heavy columns, constant attributes, missing mutable attributes,
// and the lattice-pruning ablation switch.

#include <gtest/gtest.h>

#include <cmath>

#include "core/faircap.h"
#include "mining/lattice.h"
#include "test_data.h"

namespace faircap {
namespace {

TEST(RobustnessTest, EmptyProtectedGroupStillRuns) {
  const ToyData data = MakeToyData(2000);
  const size_t prot = *data.df.schema().IndexOf("Prot");
  // A category that never occurs: protected group is empty.
  Pattern empty_protected(
      {Predicate(prot, CompareOp::kEq, Value("never-seen"))});
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.3;
  options.lattice.max_predicates = 1;
  options.num_threads = 1;
  auto solver = FairCap::Create(&data.df, &data.dag, empty_protected, options);
  ASSERT_TRUE(solver.ok());
  EXPECT_EQ(solver->protected_mask().Count(), 0u);
  const auto result = solver->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // With no protected individuals, protected utilities are all zero and
  // coverage-protected is trivially zero.
  EXPECT_EQ(result->stats.covered_protected, 0u);
  EXPECT_DOUBLE_EQ(result->stats.exp_utility_protected, 0.0);
}

TEST(RobustnessTest, WholePopulationProtectedStillRuns) {
  const ToyData data = MakeToyData(2000);
  const size_t prot = *data.df.schema().IndexOf("Prot");
  // Protected = everyone with a non-null Prot value (yes or no).
  Pattern all_protected({Predicate(prot, CompareOp::kNe, Value("zzz"))});
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.3;
  options.lattice.max_predicates = 1;
  options.num_threads = 1;
  auto solver = FairCap::Create(&data.df, &data.dag, all_protected, options);
  ASSERT_TRUE(solver.ok());
  EXPECT_EQ(solver->protected_mask().Count(), data.df.num_rows());
  const auto result = solver->Run();
  ASSERT_TRUE(result.ok());
  // Non-protected side is empty: its expected utility is zero by the
  // paper's convention.
  EXPECT_DOUBLE_EQ(result->stats.exp_utility_nonprotected, 0.0);
}

TEST(RobustnessTest, NullHeavyOutcomeRowsAreSkipped) {
  auto schema = Schema::Create({
      {"G", AttrType::kCategorical, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const bool t = rng.NextBernoulli(0.5);
    // Half the outcome values are null.
    Value outcome = rng.NextBernoulli(0.5)
                        ? Value::Null()
                        : Value(t ? 10.0 : 5.0);
    ASSERT_TRUE(df.AppendRow({Value("g"), Value(t ? "1" : "0"),
                              std::move(outcome)})
                    .ok());
  }
  const CausalDag dag =
      CausalDag::Create({"G", "T", "O"}, {{"T", "O"}}).ValueOrDie();
  const auto est = CateEstimator::Create(&df, &dag);
  ASSERT_TRUE(est.ok());
  const size_t t = *df.schema().IndexOf("T");
  const auto cate = est->Estimate(
      Pattern({Predicate(t, CompareOp::kEq, Value("1"))}), df.AllRows());
  ASSERT_TRUE(cate.ok()) << cate.status().ToString();
  EXPECT_NEAR(cate->cate, 5.0, 0.5);
  // Counted rows exclude the nulls.
  EXPECT_LT(cate->n_treated + cate->n_control, 400u);
}

TEST(RobustnessTest, NoMutableAttributesYieldsEmptyRuleset) {
  auto schema = Schema::Create({
      {"G", AttrType::kCategorical, AttrRole::kImmutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        df.AppendRow({Value(i % 2 == 0 ? "a" : "b"), Value(1.0 * i)}).ok());
  }
  const CausalDag dag =
      CausalDag::Create({"G", "O"}, {{"G", "O"}}).ValueOrDie();
  const size_t g = *df.schema().IndexOf("G");
  FairCapOptions options;
  options.num_threads = 1;
  auto solver = FairCap::Create(
      &df, &dag, Pattern({Predicate(g, CompareOp::kEq, Value("a"))}),
      options);
  ASSERT_TRUE(solver.ok());
  const auto result = solver->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rules.empty());
}

TEST(RobustnessTest, ConstantMutableAttributeProducesNoRules) {
  // A mutable attribute with a single category: treated or control side is
  // always empty, so no estimable treatment exists.
  auto schema = Schema::Create({
      {"G", AttrType::kCategorical, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(df.AppendRow({Value(i % 2 == 0 ? "x" : "y"),
                              Value("always"),
                              Value(rng.NextGaussian(0, 1))})
                    .ok());
  }
  const CausalDag dag =
      CausalDag::Create({"G", "T", "O"}, {{"T", "O"}}).ValueOrDie();
  const size_t g = *df.schema().IndexOf("G");
  FairCapOptions options;
  options.num_threads = 1;
  auto solver = FairCap::Create(
      &df, &dag, Pattern({Predicate(g, CompareOp::kEq, Value("x"))}),
      options);
  ASSERT_TRUE(solver.ok());
  const auto result = solver->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rules.empty());
}

TEST(RobustnessTest, LatticeAblationExploresMoreWithoutPruning) {
  const ToyData data = MakeToyData(1500);
  size_t evals_pruned = 0, evals_unpruned = 0;
  for (const bool prune : {true, false}) {
    TreatmentEvaluator eval =
        [&](const Pattern& p) -> std::optional<TreatmentEval> {
      TreatmentEval e;
      // Make exactly one atom negative so pruning bites.
      e.cate = p.ToString(data.df.schema()).find("T1 = a") !=
                       std::string::npos
                   ? -1.0
                   : 1.0;
      e.score = e.cate;
      return e;
    };
    LatticeOptions options;
    options.max_predicates = 2;
    options.require_positive_parents = prune;
    const std::vector<size_t> mutable_attrs =
        data.df.schema().IndicesWithRole(AttrRole::kMutable);
    const LatticeResult result = TraverseInterventionLattice(
        data.df, mutable_attrs, eval, options);
    (prune ? evals_pruned : evals_unpruned) = result.num_evaluated;
  }
  EXPECT_GT(evals_unpruned, evals_pruned);
}

TEST(RobustnessTest, ProtectedPatternOverMutableAttributeAllowed) {
  // Unusual but legal: protected group defined on a mutable attribute.
  const ToyData data = MakeToyData(1000);
  const size_t t2 = *data.df.schema().IndexOf("T2");
  FairCapOptions options;
  options.num_threads = 1;
  options.apriori.min_support_fraction = 0.4;
  options.lattice.max_predicates = 1;
  auto solver = FairCap::Create(
      &data.df, &data.dag,
      Pattern({Predicate(t2, CompareOp::kEq, Value("y"))}), options);
  ASSERT_TRUE(solver.ok());
  EXPECT_TRUE(solver->Run().ok());
}

}  // namespace
}  // namespace faircap
