#include "core/benefit.h"

#include <gtest/gtest.h>

namespace faircap {
namespace {

TEST(BenefitTest, NoFairnessIsUtility) {
  EXPECT_DOUBLE_EQ(
      RuleBenefit(42.0, 0.0, 100.0, FairnessConstraint::None()), 42.0);
}

TEST(BenefitTest, SPPenalizesGap) {
  const FairnessConstraint sp = FairnessConstraint::GroupSP(10.0);
  // Gap = 5 => utility / 6.
  EXPECT_DOUBLE_EQ(RuleBenefit(60.0, 5.0, 10.0, sp), 10.0);
  // No gap (protected ahead): benefit = utility.
  EXPECT_DOUBLE_EQ(RuleBenefit(60.0, 10.0, 5.0, sp), 60.0);
  // Equal utilities: denominator 1 => utility unchanged.
  EXPECT_DOUBLE_EQ(RuleBenefit(60.0, 7.0, 7.0, sp), 60.0);
}

TEST(BenefitTest, SPMonotoneInGap) {
  const FairnessConstraint sp = FairnessConstraint::IndividualSP(1.0);
  double previous = RuleBenefit(50.0, 10.0, 10.0, sp);
  for (double gap = 1.0; gap <= 40.0; gap += 1.0) {
    const double b = RuleBenefit(50.0, 10.0, 10.0 + gap, sp);
    EXPECT_LT(b, previous) << "gap " << gap;
    previous = b;
  }
}

TEST(BenefitTest, BGLPenalizesShortfall) {
  const FairnessConstraint bgl = FairnessConstraint::GroupBGL(0.5);
  // Protected utility above tau: benefit = utility.
  EXPECT_DOUBLE_EQ(RuleBenefit(0.8, 0.6, 0.9, bgl), 0.8);
  // Below tau: utility / (1 + tau - up) = 0.8 / 1.3.
  EXPECT_NEAR(RuleBenefit(0.8, 0.2, 0.9, bgl), 0.8 / 1.3, 1e-12);
  // Exactly at tau: denominator 1.
  EXPECT_DOUBLE_EQ(RuleBenefit(0.8, 0.5, 0.9, bgl), 0.8);
}

TEST(BenefitTest, BGLIgnoresNonProtected) {
  const FairnessConstraint bgl = FairnessConstraint::GroupBGL(0.5);
  EXPECT_DOUBLE_EQ(RuleBenefit(0.8, 0.6, 0.1, bgl),
                   RuleBenefit(0.8, 0.6, 100.0, bgl));
}

TEST(BenefitTest, RuleOverloadReadsFields) {
  PrescriptionRule rule;
  rule.utility = 60.0;
  rule.utility_protected = 5.0;
  rule.utility_nonprotected = 10.0;
  EXPECT_DOUBLE_EQ(RuleBenefit(rule, FairnessConstraint::GroupSP(1.0)), 10.0);
}

TEST(BenefitTest, FairRuleAlwaysScoresAtLeastUnfairOfSameUtility) {
  const FairnessConstraint sp = FairnessConstraint::GroupSP(5.0);
  const double fair = RuleBenefit(100.0, 50.0, 50.0, sp);
  const double unfair = RuleBenefit(100.0, 10.0, 90.0, sp);
  EXPECT_GT(fair, unfair);
}

}  // namespace
}  // namespace faircap
