// Incremental append + delta-aware re-mining equivalence: after any
// number of appended batches, an IncrementalSession's ruleset must be
// indistinguishable from a cold run over the concatenated table — for
// every shard count, bit-for-bit wherever the accumulated sums are exact
// in double (integer-valued data), and to shard-merge precision on
// continuous outcomes (the delta merge reassociates the final partial
// sum, exactly like a shard boundary). Also pins the refresh plumbing:
// partition extension vs rebuild stats, the new-category full-remine
// escape hatch, and the accum cache's cold/cached/delta paths at the
// engine level.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "causal/estimator.h"
#include "core/faircap.h"
#include "core/incremental.h"
#include "data/german.h"
#include "util/obs/metrics.h"
#include "util/random.h"

namespace faircap {
namespace {

uint64_t Counter(const std::string& name) {
  return obs::MetricsRegistry::Global().CounterValue(name);
}

struct TestData {
  DataFrame df;
  CausalDag dag;
  Pattern protected_pattern;
};

// Categorical-only confounders (plus the numeric outcome, which is never
// an adjustment attribute): confounder partitions copy-extend under
// appends and group-level reuse is sound. Integer-valued outcomes keep
// every sufficient-statistics sum exact in double, so the delta merge is
// associative and incremental estimates must be bit-for-bit cold. Nulls
// exercise the cell-(-1) and null-mask paths across the append boundary.
TestData MakeCategoricalSynthetic(size_t n, uint64_t seed,
                                  bool integer_outcome) {
  auto schema = Schema::Create({
      {"Prot", AttrType::kCategorical, AttrRole::kImmutable},
      {"G", AttrType::kCategorical, AttrRole::kImmutable},
      {"Zc", AttrType::kCategorical, AttrRole::kImmutable},
      {"T1", AttrType::kCategorical, AttrRole::kMutable},
      {"T2", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  const char* zc_levels[] = {"a", "b", "c"};
  const char* g_levels[] = {"g0", "g1", "g2"};
  for (size_t i = 0; i < n; ++i) {
    const bool prot = rng.NextBernoulli(0.3);
    const size_t g = rng.NextBounded(3);
    const size_t zc = rng.NextBounded(3);
    const bool zc_null = rng.NextBernoulli(0.06);
    const bool t1 = rng.NextBernoulli(0.25 + 0.15 * static_cast<double>(zc));
    const bool t2 = rng.NextBernoulli(0.5);
    double o = 5.0 + 3.0 * static_cast<double>(zc) +
               (t1 ? (prot ? 2.0 : 6.0) : 0.0) + (t2 ? 3.0 : 0.0) +
               static_cast<double>(rng.NextBounded(5));
    if (!integer_outcome) o += rng.NextDouble();
    const Status st = df.AppendRow(
        {Value(prot ? "yes" : "no"), Value(g_levels[g]),
         zc_null ? Value::Null() : Value(zc_levels[zc]),
         Value(t1 ? "yes" : "no"), Value(t2 ? "hi" : "lo"), Value(o)});
    EXPECT_TRUE(st.ok());
  }
  CausalDag dag = CausalDag::Create({"Prot", "G", "Zc", "T1", "T2", "O"},
                                    {{"Zc", "T1"},
                                     {"Zc", "O"},
                                     {"Prot", "O"},
                                     {"T1", "O"},
                                     {"T2", "O"}})
                      .ValueOrDie();
  Pattern protected_pattern({Predicate(0, CompareOp::kEq, Value("yes"))});
  return {std::move(df), std::move(dag), std::move(protected_pattern)};
}

// The sharded_mining_test workload: numeric confounder Zn forces the
// partition-rebuild path on every append (quantile edges shift) and
// gates group-level reuse off — the session must still match cold.
TestData MakeIntegerSynthetic(size_t n, uint64_t seed) {
  auto schema = Schema::Create({
      {"Prot", AttrType::kCategorical, AttrRole::kImmutable},
      {"G", AttrType::kCategorical, AttrRole::kImmutable},
      {"Zc", AttrType::kCategorical, AttrRole::kImmutable},
      {"Zn", AttrType::kNumeric, AttrRole::kImmutable},
      {"T1", AttrType::kCategorical, AttrRole::kMutable},
      {"T2", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  const char* zc_levels[] = {"a", "b", "c"};
  const char* g_levels[] = {"g0", "g1", "g2"};
  for (size_t i = 0; i < n; ++i) {
    const bool prot = rng.NextBernoulli(0.3);
    const size_t g = rng.NextBounded(3);
    const size_t zc = rng.NextBounded(3);
    const double zn = static_cast<double>(rng.NextBounded(9)) - 4.0;
    const bool zc_null = rng.NextBernoulli(0.06);
    const bool zn_null = rng.NextBernoulli(0.06);
    const bool t1 =
        rng.NextBernoulli(0.25 + 0.15 * static_cast<double>(zc) +
                          (zn > 0.0 ? 0.15 : 0.0));
    const bool t2 = rng.NextBernoulli(0.5);
    const double o = 5.0 + 3.0 * static_cast<double>(zc) + 2.0 * zn +
                     (t1 ? (prot ? 2.0 : 6.0) : 0.0) + (t2 ? 3.0 : 0.0) +
                     static_cast<double>(rng.NextBounded(5));
    const Status st = df.AppendRow(
        {Value(prot ? "yes" : "no"), Value(g_levels[g]),
         zc_null ? Value::Null() : Value(zc_levels[zc]),
         zn_null ? Value::Null() : Value(zn), Value(t1 ? "yes" : "no"),
         Value(t2 ? "hi" : "lo"), Value(o)});
    EXPECT_TRUE(st.ok());
  }
  CausalDag dag = CausalDag::Create({"Prot", "G", "Zc", "Zn", "T1", "T2", "O"},
                                    {{"Zc", "T1"},
                                     {"Zn", "T1"},
                                     {"Zc", "O"},
                                     {"Zn", "O"},
                                     {"Prot", "O"},
                                     {"T1", "O"},
                                     {"T2", "O"}})
                      .ValueOrDie();
  Pattern protected_pattern({Predicate(0, CompareOp::kEq, Value("yes"))});
  return {std::move(df), std::move(dag), std::move(protected_pattern)};
}

// First `k` rows as a fresh frame. TakeRows copies the full dictionaries,
// so a prefix and a prefix-plus-appended-deltas assign identical category
// codes — the cold reference sees the same encoded table.
DataFrame Prefix(const DataFrame& df, size_t k) {
  std::vector<uint32_t> rows(k);
  for (size_t i = 0; i < k; ++i) rows[i] = static_cast<uint32_t>(i);
  return df.TakeRows(rows);
}

DataFrame Slice(const DataFrame& df, size_t begin, size_t end) {
  std::vector<uint32_t> rows;
  rows.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) rows.push_back(static_cast<uint32_t>(i));
  return df.TakeRows(rows);
}

FairCapOptions PipelineOptions(size_t num_shards, size_t num_threads) {
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.25;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 2;
  options.fairness = FairnessConstraint::GroupSP(1e9);
  options.num_threads = num_threads;
  options.num_shards = num_shards;
  return options;
}

FairCapResult RunCold(const DataFrame& df, const CausalDag& dag,
                      const Pattern& protected_pattern,
                      const FairCapOptions& options) {
  auto solver = FairCap::Create(&df, &dag, protected_pattern, options);
  EXPECT_TRUE(solver.ok());
  auto result = solver->Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

void ExpectSameRuleset(const FairCapResult& warm, const FairCapResult& cold,
                       double tol, const std::string& label) {
  EXPECT_EQ(warm.num_grouping_patterns, cold.num_grouping_patterns) << label;
  EXPECT_EQ(warm.num_treatment_evaluations, cold.num_treatment_evaluations)
      << label;
  ASSERT_EQ(warm.rules.size(), cold.rules.size()) << label;
  for (size_t i = 0; i < warm.rules.size(); ++i) {
    const PrescriptionRule& a = warm.rules[i];
    const PrescriptionRule& b = cold.rules[i];
    const std::string tag = label + "/rule" + std::to_string(i);
    EXPECT_TRUE(a.grouping == b.grouping) << tag;
    EXPECT_TRUE(a.intervention == b.intervention) << tag;
    EXPECT_EQ(a.support, b.support) << tag;
    EXPECT_EQ(a.support_protected, b.support_protected) << tag;
    if (tol == 0.0) {
      EXPECT_EQ(a.utility, b.utility) << tag << " (bit-for-bit)";
      EXPECT_EQ(a.utility_protected, b.utility_protected) << tag;
      EXPECT_EQ(a.utility_nonprotected, b.utility_nonprotected) << tag;
    } else {
      EXPECT_NEAR(a.utility, b.utility,
                  tol * std::max(1.0, std::abs(b.utility)))
          << tag;
      EXPECT_NEAR(a.utility_protected, b.utility_protected,
                  tol * std::max(1.0, std::abs(b.utility_protected)))
          << tag;
      EXPECT_NEAR(a.utility_nonprotected, b.utility_nonprotected,
                  tol * std::max(1.0, std::abs(b.utility_nonprotected)))
          << tag;
    }
  }
}

// The core pin: base run, then `num_batches` Append+Run cycles, each
// compared against a cold FairCap over an independently built prefix
// frame (fresh index, fresh partitions, no incremental state).
void RunSessionSweep(const TestData& full, size_t batch_rows,
                     size_t num_batches, size_t num_shards,
                     size_t num_threads, double tol,
                     const std::string& label) {
  const size_t total = full.df.num_rows();
  const size_t base_rows = total - batch_rows * num_batches;
  const FairCapOptions options = PipelineOptions(num_shards, num_threads);
  auto session =
      IncrementalSession::Create(Prefix(full.df, base_rows), full.dag,
                                 full.protected_pattern, options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  for (size_t b = 0; b <= num_batches; ++b) {
    if (b > 0) {
      const size_t begin = base_rows + (b - 1) * batch_rows;
      const Status st = session->Append(Slice(full.df, begin,
                                              begin + batch_rows));
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    const size_t rows_now = base_rows + b * batch_rows;
    ASSERT_EQ(session->df().num_rows(), rows_now);
    auto warm = session->Run();
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    const DataFrame cold_df = Prefix(full.df, rows_now);
    const FairCapResult cold =
        RunCold(cold_df, full.dag, full.protected_pattern, options);
    ExpectSameRuleset(*warm, cold, tol,
                      label + "/rows" + std::to_string(rows_now));
  }
}

TEST(IncrementalTest, SessionMatchesColdBitForBitOnCategoricalIntegerData) {
  const TestData full =
      MakeCategoricalSynthetic(2500, 71, /*integer_outcome=*/true);
  const uint64_t delta_before = Counter("append.evals_delta");
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{7}, size_t{16}}) {
    RunSessionSweep(full, /*batch_rows=*/25, /*num_batches=*/3, shards,
                    /*num_threads=*/4, /*tol=*/0.0,
                    "cat-int/s" + std::to_string(shards));
  }
  // Categorical-only schema: stale accums take the delta-merge path.
  // (Group-level reuse does NOT fire here: a uniformly random delta puts
  // rows into every frequent group, changing every support — see
  // GroupReuseFiresWhenDeltaAvoidsGroups for the reuse pin.)
  EXPECT_GT(Counter("append.evals_delta"), delta_before);
}

TEST(IncrementalTest, GroupReuseFiresWhenDeltaAvoidsGroups) {
  // A skewed delta — every appended row lands in Prot=no, G=g0, Zc=a —
  // leaves the supports of groups over the other levels unchanged, so
  // their cached candidate rules are re-emitted without re-running the
  // intervention lattice, and the result still matches cold.
  const TestData base_data =
      MakeCategoricalSynthetic(2000, 81, /*integer_outcome=*/true);
  DataFrame delta = Prefix(base_data.df, 0);
  DataFrame cold_df = Prefix(base_data.df, 2000);
  Rng rng(82);
  for (size_t i = 0; i < 40; ++i) {
    const bool t1 = rng.NextBernoulli(0.4);
    const bool t2 = rng.NextBernoulli(0.5);
    const double o = 5.0 + (t1 ? 6.0 : 0.0) + (t2 ? 3.0 : 0.0) +
                     static_cast<double>(rng.NextBounded(5));
    const std::vector<Value> row{Value("no"),         Value("g0"),
                                 Value("a"),          Value(t1 ? "yes" : "no"),
                                 Value(t2 ? "hi" : "lo"), Value(o)};
    ASSERT_TRUE(delta.AppendRow(row).ok());
    ASSERT_TRUE(cold_df.AppendRow(row).ok());
  }
  const FairCapOptions options = PipelineOptions(2, 4);
  auto session =
      IncrementalSession::Create(Prefix(base_data.df, 2000), base_data.dag,
                                 base_data.protected_pattern, options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Run().ok());
  EXPECT_TRUE(session->state().GetCacheStats().group_reuse_sound);
  const uint64_t reused_before = Counter("append.patterns_reused");
  ASSERT_TRUE(session->Append(delta).ok());
  auto warm = session->Run();
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(Counter("append.patterns_reused"), reused_before);
  const FairCapResult cold =
      RunCold(cold_df, base_data.dag, base_data.protected_pattern, options);
  ExpectSameRuleset(*warm, cold, /*tol=*/0.0, "reuse");
}

TEST(IncrementalTest, SessionMatchesColdToMergePrecisionOnContinuousOutcome) {
  // Continuous outcomes on the delta-merge path: resident + delta partial
  // sums reassociate the final addition, exactly like one extra shard
  // boundary — pin to the sharded-mining tolerance.
  const TestData full =
      MakeCategoricalSynthetic(2500, 72, /*integer_outcome=*/false);
  for (const size_t shards : {size_t{1}, size_t{7}}) {
    RunSessionSweep(full, /*batch_rows=*/25, /*num_batches=*/2, shards,
                    /*num_threads=*/4, /*tol=*/1e-9,
                    "cat-fp/s" + std::to_string(shards));
  }
}

TEST(IncrementalTest, SessionMatchesColdWithNumericConfounderRebuilds) {
  // Numeric confounder: every append shifts quantile edges, partitions
  // rebuild cold (fresh lineage voids cached accums) and group reuse is
  // gated off — the warm run IS a cold run and must match bit-for-bit.
  const TestData full = MakeIntegerSynthetic(2500, 73);
  const uint64_t reused_before = Counter("append.patterns_reused");
  const uint64_t rebuilt_before = Counter("append.partitions_rebuilt");
  for (const size_t shards : {size_t{1}, size_t{7}}) {
    RunSessionSweep(full, /*batch_rows=*/25, /*num_batches=*/2, shards,
                    /*num_threads=*/4, /*tol=*/0.0,
                    "num/s" + std::to_string(shards));
  }
  EXPECT_EQ(Counter("append.patterns_reused"), reused_before);
  EXPECT_GT(Counter("append.partitions_rebuilt"), rebuilt_before);
}

TEST(IncrementalTest, SessionMatchesColdOnGerman) {
  GermanConfig config;
  config.num_rows = 1300;
  config.seed = 74;
  const auto german = MakeGerman(config);
  ASSERT_TRUE(german.ok());
  const TestData full{german->df, german->dag, german->protected_pattern};
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    RunSessionSweep(full, /*batch_rows=*/25, /*num_batches=*/2, shards,
                    /*num_threads=*/4, /*tol=*/1e-9,
                    "german/s" + std::to_string(shards));
  }
}

TEST(IncrementalTest, BackToBackAppendsThenSingleRunMatchesCold) {
  const TestData full =
      MakeCategoricalSynthetic(2000, 75, /*integer_outcome=*/true);
  const FairCapOptions options = PipelineOptions(/*num_shards=*/4,
                                                 /*num_threads=*/4);
  auto session = IncrementalSession::Create(
      Prefix(full.df, 1900), full.dag, full.protected_pattern, options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Run().ok());
  // Two appends with no Run in between: the second Run's delta paths must
  // cover both batches at once ([rows_covered, num_rows) spans them).
  ASSERT_TRUE(session->Append(Slice(full.df, 1900, 1950)).ok());
  ASSERT_TRUE(session->Append(Slice(full.df, 1950, 2000)).ok());
  auto warm = session->Run();
  ASSERT_TRUE(warm.ok());
  const FairCapResult cold =
      RunCold(full.df, full.dag, full.protected_pattern, options);
  ExpectSameRuleset(*warm, cold, /*tol=*/0.0, "backtoback");
}

TEST(IncrementalTest, NewCategoryInDeltaForcesFullRemineAndMatchesCold) {
  // Base table never sees Zc="c"; the delta introduces it. Cell
  // numbering, one-hot layouts and the atom set all change, so the
  // session must void every cache (append.full_remines) and the next run
  // must still match a cold run over the concatenated rows — built here
  // by replaying the same rows through AppendRow, which interns
  // categories in the same first-appearance order AppendFrame uses.
  auto make_frame = []() {
    auto schema = Schema::Create({
        {"Prot", AttrType::kCategorical, AttrRole::kImmutable},
        {"Zc", AttrType::kCategorical, AttrRole::kImmutable},
        {"T1", AttrType::kCategorical, AttrRole::kMutable},
        {"O", AttrType::kNumeric, AttrRole::kOutcome},
    });
    return DataFrame::Create(std::move(schema).ValueOrDie());
  };
  auto make_row = [](Rng& rng, bool allow_c) {
    const bool prot = rng.NextBernoulli(0.3);
    const size_t zc = rng.NextBounded(allow_c ? 3 : 2);
    const bool t1 = rng.NextBernoulli(0.4);
    const double o = 4.0 + 2.0 * static_cast<double>(zc) + (t1 ? 3.0 : 0.0) +
                     static_cast<double>(rng.NextBounded(4));
    const char* zc_levels[] = {"a", "b", "c"};
    return std::vector<Value>{Value(prot ? "yes" : "no"),
                              Value(zc_levels[zc]), Value(t1 ? "yes" : "no"),
                              Value(o)};
  };
  DataFrame base = make_frame();
  DataFrame delta = make_frame();
  DataFrame cold_df = make_frame();
  Rng rng(76);
  for (size_t i = 0; i < 900; ++i) {
    const auto row = make_row(rng, /*allow_c=*/false);
    ASSERT_TRUE(base.AppendRow(row).ok());
    ASSERT_TRUE(cold_df.AppendRow(row).ok());
  }
  bool saw_c = false;
  for (size_t i = 0; i < 60; ++i) {
    const auto row = make_row(rng, /*allow_c=*/true);
    saw_c = saw_c || row[1] == Value("c");
    ASSERT_TRUE(delta.AppendRow(row).ok());
    ASSERT_TRUE(cold_df.AppendRow(row).ok());
  }
  ASSERT_TRUE(saw_c);
  CausalDag dag = CausalDag::Create({"Prot", "Zc", "T1", "O"},
                                    {{"Zc", "T1"},
                                     {"Zc", "O"},
                                     {"Prot", "O"},
                                     {"T1", "O"}})
                      .ValueOrDie();
  Pattern protected_pattern({Predicate(0, CompareOp::kEq, Value("yes"))});
  const FairCapOptions options = PipelineOptions(2, 2);
  auto session = IncrementalSession::Create(std::move(base), dag,
                                            protected_pattern, options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Run().ok());
  EXPECT_GT(session->state().GetCacheStats().accum_entries, 0u);
  const uint64_t remines_before = Counter("append.full_remines");
  ASSERT_TRUE(session->Append(delta).ok());
  EXPECT_EQ(Counter("append.full_remines"), remines_before + 1);
  const IncrementalState::CacheStats stats = session->state().GetCacheStats();
  EXPECT_EQ(stats.accum_entries, 0u);
  EXPECT_EQ(stats.group_entries, 0u);
  auto warm = session->Run();
  ASSERT_TRUE(warm.ok());
  const FairCapResult cold = RunCold(cold_df, dag, protected_pattern, options);
  ExpectSameRuleset(*warm, cold, /*tol=*/0.0, "newcat");
}

TEST(IncrementalTest, NotifyAppendReportsExtensionVsRebuild) {
  {
    // Categorical-only adjustment sets: partitions copy-extend and their
    // engines refresh in place.
    TestData data = MakeCategoricalSynthetic(1550, 77, true);
    DataFrame df = Prefix(data.df, 1500);
    const DataFrame delta = Slice(data.df, 1500, 1550);
    auto solver = FairCap::Create(&df, &data.dag, data.protected_pattern,
                                  PipelineOptions(1, 2));
    ASSERT_TRUE(solver.ok());
    ASSERT_TRUE(solver->Run().ok());
    ASSERT_TRUE(df.AppendFrame(delta).ok());
    const CateEstimator::AppendRefreshStats stats = solver->NotifyAppend();
    EXPECT_GT(stats.partitions_extended, 0u);
    EXPECT_EQ(stats.partitions_rebuilt, 0u);
    EXPECT_GT(stats.engines_refreshed, 0u);
    EXPECT_EQ(stats.engines_dropped, 0u);
  }
  {
    // Numeric confounder Zn: its partitions cannot extend (quantile edges
    // shift) and are dropped for cold rebuild.
    TestData data = MakeIntegerSynthetic(1550, 78);
    DataFrame df = Prefix(data.df, 1500);
    const DataFrame delta = Slice(data.df, 1500, 1550);
    auto solver = FairCap::Create(&df, &data.dag, data.protected_pattern,
                                  PipelineOptions(1, 2));
    ASSERT_TRUE(solver.ok());
    ASSERT_TRUE(solver->Run().ok());
    ASSERT_TRUE(df.AppendFrame(delta).ok());
    const CateEstimator::AppendRefreshStats stats = solver->NotifyAppend();
    EXPECT_GT(stats.partitions_rebuilt + stats.engines_dropped, 0u);
  }
}

void ExpectSameEstimate(const Result<CateEstimate>& warm,
                        const Result<CateEstimate>& cold,
                        const std::string& label) {
  ASSERT_EQ(warm.ok(), cold.ok()) << label;
  if (!warm.ok()) return;
  EXPECT_EQ(warm->n_treated, cold->n_treated) << label;
  EXPECT_EQ(warm->n_control, cold->n_control) << label;
  EXPECT_EQ(warm->cate, cold->cate) << label << " (bit-for-bit)";
  EXPECT_EQ(warm->std_error, cold->std_error) << label;
}

TEST(IncrementalTest, EstimateWithCacheColdCachedAndDeltaPathsMatchOracle) {
  const TestData data =
      MakeCategoricalSynthetic(2000, 79, /*integer_outcome=*/true);
  DataFrame df = Prefix(data.df, 1900);
  const DataFrame delta = Slice(data.df, 1900, 2000);
  auto est = CateEstimator::Create(&df, &data.dag, CateOptions());
  ASSERT_TRUE(est.ok());
  const Pattern intervention({Predicate(3, CompareOp::kEq, Value("yes"))});
  const Pattern group_pattern({Predicate(1, CompareOp::kEq, Value("g0"))});
  IncrementalState state;
  state.Attach(df);

  Bitmap group = group_pattern.Evaluate(df);
  Bitmap prot = data.protected_pattern.Evaluate(df);
  const auto oracle_base =
      est->EstimateSubgroups(intervention, group, &prot, 5);
  ASSERT_TRUE(oracle_base.ok());

  // Cold fill, then a pure cache hit: both must equal the direct call.
  const uint64_t full_before = Counter("append.evals_full");
  const uint64_t cached_before = Counter("append.evals_cached");
  const uint64_t delta_before = Counter("append.evals_delta");
  for (int pass = 0; pass < 2; ++pass) {
    const auto got = state.EstimateWithCache(
        *est, "g", intervention, group, prot, /*want_subgroups=*/true, 5,
        /*skip_subgroups_unless_positive=*/false, nullptr, nullptr);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const std::string tag = "base/pass" + std::to_string(pass);
    ExpectSameEstimate(got->overall, oracle_base->overall, tag + "/overall");
    ExpectSameEstimate(got->protected_group, oracle_base->protected_group,
                       tag + "/protected");
    ExpectSameEstimate(got->nonprotected, oracle_base->nonprotected,
                       tag + "/nonprotected");
  }
  EXPECT_EQ(Counter("append.evals_full"), full_before + 1);
  EXPECT_EQ(Counter("append.evals_cached"), cached_before + 1);

  // Append, refresh, and take the delta-merge path: on integer data it
  // must be bit-for-bit equal to a cold estimator over an independently
  // built full frame.
  ASSERT_TRUE(df.AppendFrame(delta).ok());
  est->NotifyAppend();
  state.OnAppend(df);
  group = group_pattern.Evaluate(df);
  prot = data.protected_pattern.Evaluate(df);
  const auto got = state.EstimateWithCache(
      *est, "g", intervention, group, prot, /*want_subgroups=*/true, 5,
      /*skip_subgroups_unless_positive=*/false, nullptr, nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Counter("append.evals_delta"), delta_before + 1);

  const DataFrame cold_df = Prefix(data.df, 2000);
  const auto cold_est =
      CateEstimator::Create(&cold_df, &data.dag, CateOptions());
  ASSERT_TRUE(cold_est.ok());
  Bitmap cold_group = group_pattern.Evaluate(cold_df);
  Bitmap cold_prot = data.protected_pattern.Evaluate(cold_df);
  const auto oracle =
      cold_est->EstimateSubgroups(intervention, cold_group, &cold_prot, 5);
  ASSERT_TRUE(oracle.ok());
  ExpectSameEstimate(got->overall, oracle->overall, "delta/overall");
  ExpectSameEstimate(got->protected_group, oracle->protected_group,
                     "delta/protected");
  ExpectSameEstimate(got->nonprotected, oracle->nonprotected,
                     "delta/nonprotected");
}

}  // namespace
}  // namespace faircap
