#include "core/coverage.h"

#include <gtest/gtest.h>

#include "core/ruleset.h"

namespace faircap {
namespace {

PrescriptionRule RuleWithSupport(size_t support, size_t support_protected) {
  PrescriptionRule rule;
  rule.support = support;
  rule.support_protected = support_protected;
  return rule;
}

RulesetStats StatsWithCoverage(double fraction, double fraction_protected) {
  RulesetStats stats;
  stats.coverage_fraction = fraction;
  stats.coverage_protected_fraction = fraction_protected;
  return stats;
}

TEST(CoverageTest, NoneAlwaysSatisfied) {
  const CoverageConstraint none = CoverageConstraint::None();
  EXPECT_FALSE(none.active());
  EXPECT_TRUE(none.RuleSatisfies(RuleWithSupport(0, 0), 100, 10));
  EXPECT_TRUE(none.StatsSatisfy(StatsWithCoverage(0, 0)));
}

TEST(CoverageTest, RuleCoverageChecksEveryRule) {
  const CoverageConstraint c = CoverageConstraint::Rule(0.5, 0.3);
  // population 100, protected 10: need support >= 50 and protected >= 3.
  EXPECT_TRUE(c.RuleSatisfies(RuleWithSupport(50, 3), 100, 10));
  EXPECT_FALSE(c.RuleSatisfies(RuleWithSupport(49, 3), 100, 10));
  EXPECT_FALSE(c.RuleSatisfies(RuleWithSupport(50, 2), 100, 10));
  // Rule-kind does not constrain group stats.
  EXPECT_TRUE(c.StatsSatisfy(StatsWithCoverage(0.0, 0.0)));
}

TEST(CoverageTest, GroupCoverageChecksAggregate) {
  const CoverageConstraint c = CoverageConstraint::Group(0.5, 0.3);
  EXPECT_TRUE(c.StatsSatisfy(StatsWithCoverage(0.5, 0.3)));
  EXPECT_FALSE(c.StatsSatisfy(StatsWithCoverage(0.49, 0.3)));
  EXPECT_FALSE(c.StatsSatisfy(StatsWithCoverage(0.5, 0.29)));
  // Group-kind does not constrain individual rules.
  EXPECT_TRUE(c.RuleSatisfies(RuleWithSupport(0, 0), 100, 10));
}

TEST(CoverageTest, GroupShortfallAdds) {
  const CoverageConstraint c = CoverageConstraint::Group(0.5, 0.4);
  EXPECT_NEAR(c.GroupShortfall(StatsWithCoverage(0.3, 0.1)), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(c.GroupShortfall(StatsWithCoverage(0.9, 0.9)), 0.0);
}

TEST(CoverageTest, ZeroProtectedPopulationEdge) {
  const CoverageConstraint c = CoverageConstraint::Rule(0.1, 0.5);
  // With no protected individuals the protected requirement is 0 rows.
  EXPECT_TRUE(c.RuleSatisfies(RuleWithSupport(10, 0), 100, 0));
}

TEST(CoverageTest, ToString) {
  EXPECT_NE(CoverageConstraint::Group(0.5, 0.5).ToString().find("group"),
            std::string::npos);
  EXPECT_NE(CoverageConstraint::Rule(0.5, 0.5).ToString().find("rule"),
            std::string::npos);
}

}  // namespace
}  // namespace faircap
