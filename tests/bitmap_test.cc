#include "dataframe/bitmap.h"

#include <gtest/gtest.h>

namespace faircap {
namespace {

TEST(BitmapTest, StartsAllClear) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.AllZero());
}

TEST(BitmapTest, AllSetConstructorClearsPadding) {
  Bitmap b(70, /*value=*/true);
  EXPECT_EQ(b.Count(), 70u);
  // Complement must also be consistent with the logical size.
  EXPECT_EQ((~b).Count(), 0u);
}

TEST(BitmapTest, SetGetClear) {
  Bitmap b(128);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(127);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(63));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(127));
  EXPECT_FALSE(b.Get(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Get(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitmapTest, AndOrAndNot) {
  Bitmap a(10), b(10);
  a.Set(1);
  a.Set(2);
  a.Set(3);
  b.Set(2);
  b.Set(3);
  b.Set(4);
  EXPECT_EQ((a & b).Count(), 2u);
  EXPECT_EQ((a | b).Count(), 4u);
  Bitmap diff = a;
  diff.AndNot(b);
  EXPECT_EQ(diff.Count(), 1u);
  EXPECT_TRUE(diff.Get(1));
}

TEST(BitmapTest, AndCountMatchesMaterializedIntersection) {
  // Multiple words plus a partial tail word.
  Bitmap a(193), b(193);
  for (size_t i = 0; i < 193; i += 3) a.Set(i);
  for (size_t i = 0; i < 193; i += 5) b.Set(i);
  EXPECT_EQ(a.AndCount(b), (a & b).Count());
  EXPECT_EQ(b.AndCount(a), a.AndCount(b));
  EXPECT_EQ(a.AndCount(a), a.Count());

  Bitmap all(193, /*value=*/true);
  EXPECT_EQ(a.AndCount(all), a.Count());
  Bitmap none(193);
  EXPECT_EQ(a.AndCount(none), 0u);
  EXPECT_EQ(Bitmap(0).AndCount(Bitmap(0)), 0u);
}

TEST(BitmapTest, AndNotCountMatchesMaterializedDifference) {
  Bitmap a(130), b(130);
  for (size_t i = 0; i < 130; i += 2) a.Set(i);
  for (size_t i = 0; i < 130; i += 4) b.Set(i);
  Bitmap diff = a;
  diff.AndNot(b);
  EXPECT_EQ(a.AndNotCount(b), diff.Count());
  EXPECT_EQ(a.AndNotCount(a), 0u);
}

TEST(BitmapTest, ComplementWithinSize) {
  Bitmap a(10);
  a.Set(0);
  a.Set(9);
  const Bitmap c = ~a;
  EXPECT_EQ(c.Count(), 8u);
  EXPECT_FALSE(c.Get(0));
  EXPECT_TRUE(c.Get(5));
}

TEST(BitmapTest, EqualityAndCopies) {
  Bitmap a(65), b(65);
  a.Set(64);
  b.Set(64);
  EXPECT_TRUE(a == b);
  b.Set(0);
  EXPECT_FALSE(a == b);
}

TEST(BitmapTest, ToIndicesAscending) {
  Bitmap b(200);
  b.Set(199);
  b.Set(0);
  b.Set(77);
  const auto idx = b.ToIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 77u);
  EXPECT_EQ(idx[2], 199u);
}

TEST(BitmapTest, ForEachVisitsEachSetBitOnce) {
  Bitmap b(150);
  for (size_t i = 0; i < 150; i += 7) b.Set(i);
  size_t visits = 0;
  size_t last = 0;
  b.ForEach([&](size_t i) {
    EXPECT_TRUE(b.Get(i));
    EXPECT_TRUE(visits == 0 || i > last);
    last = i;
    ++visits;
  });
  EXPECT_EQ(visits, b.Count());
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap b(0);
  EXPECT_EQ(b.Count(), 0u);
  b.ForEach([](size_t) { FAIL() << "no bits to visit"; });
}

TEST(BitmapTest, ForEachAndSkipsBitsOutsideEither) {
  Bitmap a(130), b(130);
  a.Set(0);
  a.Set(64);
  a.Set(129);
  b.Set(64);
  b.Set(100);
  b.Set(129);
  std::vector<size_t> seen;
  a.ForEachAnd(b, [&](size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 64u);
  EXPECT_EQ(seen[1], 129u);
}

TEST(BitmapTest, OrWordsAtMergesDisjointShards) {
  // Simulate the shard merge: two word-aligned shards of a 150-bit
  // universe fold their local word buffers into one shared mask.
  Bitmap merged(150);
  const uint64_t shard0[2] = {1ULL << 3, 1ULL << 63};   // rows 3, 127
  const uint64_t shard1[1] = {~0ULL};                    // rows 128..191
  merged.OrWordsAt(0, shard0, 2);
  merged.OrWordsAt(2, shard1, 1);
  EXPECT_TRUE(merged.Get(3));
  EXPECT_TRUE(merged.Get(127));
  EXPECT_TRUE(merged.Get(128));
  EXPECT_TRUE(merged.Get(149));
  // Padding bits past size() must stay clear even though the source word
  // had them set.
  EXPECT_EQ(merged.Count(), 2u + (150u - 128u));
  EXPECT_EQ((~merged).Count(), 150u - merged.Count());
}

TEST(BitmapTest, OrWordsAtIsIdempotentOr) {
  Bitmap m(64);
  const uint64_t w = 0b1010;
  m.OrWordsAt(0, &w, 1);
  m.OrWordsAt(0, &w, 1);
  EXPECT_EQ(m.Count(), 2u);
}

// Word-level ops walk `other`'s words over *this*'s word count; a
// mismatched universe (exactly what a buggy shard view would produce)
// must be caught by the debug assertions instead of reading out of
// bounds. The statements are only executed when assertions are compiled
// in — in NDEBUG builds they would be real out-of-bounds reads (the bug
// the assertions exist to catch), so the test skips rather than letting
// EXPECT_DEBUG_DEATH run them to completion.
TEST(BitmapDeathTest, MismatchedSizesAreCaughtInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "assertions compiled out (NDEBUG)";
#else
  Bitmap big(256);
  Bitmap small(64);
  big.Set(200);
  small.Set(1);
  EXPECT_DEATH(big.ForEachAnd(small, [](size_t) {}), "num_bits_");
  EXPECT_DEATH((void)big.AndCount(small), "num_bits_");
  EXPECT_DEATH((void)big.AndNotCount(small), "num_bits_");
  EXPECT_DEATH((void)(big &= small), "num_bits_");
  EXPECT_DEATH((void)(big |= small), "num_bits_");
  EXPECT_DEATH((void)big.AndNot(small), "num_bits_");
#endif
}

TEST(BitmapDeathTest, OrWordsAtOutOfRangeIsCaughtInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "assertions compiled out (NDEBUG)";
#else
  Bitmap m(64);
  const uint64_t w = 1;
  EXPECT_DEATH(m.OrWordsAt(1, &w, 1), "words_");
#endif
}

}  // namespace
}  // namespace faircap
