#include "dataframe/bitmap.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "util/simd/simd.h"

namespace faircap {
namespace {

TEST(BitmapTest, StartsAllClear) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.AllZero());
}

TEST(BitmapTest, AllSetConstructorClearsPadding) {
  Bitmap b(70, /*value=*/true);
  EXPECT_EQ(b.Count(), 70u);
  // Complement must also be consistent with the logical size.
  EXPECT_EQ((~b).Count(), 0u);
}

TEST(BitmapTest, SetGetClear) {
  Bitmap b(128);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(127);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(63));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(127));
  EXPECT_FALSE(b.Get(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Get(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitmapTest, AndOrAndNot) {
  Bitmap a(10), b(10);
  a.Set(1);
  a.Set(2);
  a.Set(3);
  b.Set(2);
  b.Set(3);
  b.Set(4);
  EXPECT_EQ((a & b).Count(), 2u);
  EXPECT_EQ((a | b).Count(), 4u);
  Bitmap diff = a;
  diff.AndNot(b);
  EXPECT_EQ(diff.Count(), 1u);
  EXPECT_TRUE(diff.Get(1));
}

TEST(BitmapTest, AndCountMatchesMaterializedIntersection) {
  // Multiple words plus a partial tail word.
  Bitmap a(193), b(193);
  for (size_t i = 0; i < 193; i += 3) a.Set(i);
  for (size_t i = 0; i < 193; i += 5) b.Set(i);
  EXPECT_EQ(a.AndCount(b), (a & b).Count());
  EXPECT_EQ(b.AndCount(a), a.AndCount(b));
  EXPECT_EQ(a.AndCount(a), a.Count());

  Bitmap all(193, /*value=*/true);
  EXPECT_EQ(a.AndCount(all), a.Count());
  Bitmap none(193);
  EXPECT_EQ(a.AndCount(none), 0u);
  EXPECT_EQ(Bitmap(0).AndCount(Bitmap(0)), 0u);
}

TEST(BitmapTest, AndNotCountMatchesMaterializedDifference) {
  Bitmap a(130), b(130);
  for (size_t i = 0; i < 130; i += 2) a.Set(i);
  for (size_t i = 0; i < 130; i += 4) b.Set(i);
  Bitmap diff = a;
  diff.AndNot(b);
  EXPECT_EQ(a.AndNotCount(b), diff.Count());
  EXPECT_EQ(a.AndNotCount(a), 0u);
}

TEST(BitmapTest, ComplementWithinSize) {
  Bitmap a(10);
  a.Set(0);
  a.Set(9);
  const Bitmap c = ~a;
  EXPECT_EQ(c.Count(), 8u);
  EXPECT_FALSE(c.Get(0));
  EXPECT_TRUE(c.Get(5));
}

TEST(BitmapTest, EqualityAndCopies) {
  Bitmap a(65), b(65);
  a.Set(64);
  b.Set(64);
  EXPECT_TRUE(a == b);
  b.Set(0);
  EXPECT_FALSE(a == b);
}

TEST(BitmapTest, ToIndicesAscending) {
  Bitmap b(200);
  b.Set(199);
  b.Set(0);
  b.Set(77);
  const auto idx = b.ToIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 77u);
  EXPECT_EQ(idx[2], 199u);
}

TEST(BitmapTest, ForEachVisitsEachSetBitOnce) {
  Bitmap b(150);
  for (size_t i = 0; i < 150; i += 7) b.Set(i);
  size_t visits = 0;
  size_t last = 0;
  b.ForEach([&](size_t i) {
    EXPECT_TRUE(b.Get(i));
    EXPECT_TRUE(visits == 0 || i > last);
    last = i;
    ++visits;
  });
  EXPECT_EQ(visits, b.Count());
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap b(0);
  EXPECT_EQ(b.Count(), 0u);
  b.ForEach([](size_t) { FAIL() << "no bits to visit"; });
}

TEST(BitmapTest, ForEachAndSkipsBitsOutsideEither) {
  Bitmap a(130), b(130);
  a.Set(0);
  a.Set(64);
  a.Set(129);
  b.Set(64);
  b.Set(100);
  b.Set(129);
  std::vector<size_t> seen;
  a.ForEachAnd(b, [&](size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 64u);
  EXPECT_EQ(seen[1], 129u);
}

TEST(BitmapTest, OrWordsAtMergesDisjointShards) {
  // Simulate the shard merge: two word-aligned shards of a 150-bit
  // universe fold their local word buffers into one shared mask.
  Bitmap merged(150);
  const uint64_t shard0[2] = {1ULL << 3, 1ULL << 63};   // rows 3, 127
  const uint64_t shard1[1] = {~0ULL};                    // rows 128..191
  merged.OrWordsAt(0, shard0, 2);
  merged.OrWordsAt(2, shard1, 1);
  EXPECT_TRUE(merged.Get(3));
  EXPECT_TRUE(merged.Get(127));
  EXPECT_TRUE(merged.Get(128));
  EXPECT_TRUE(merged.Get(149));
  // Padding bits past size() must stay clear even though the source word
  // had them set.
  EXPECT_EQ(merged.Count(), 2u + (150u - 128u));
  EXPECT_EQ((~merged).Count(), 150u - merged.Count());
}

TEST(BitmapTest, OrWordsAtIsIdempotentOr) {
  Bitmap m(64);
  const uint64_t w = 0b1010;
  m.OrWordsAt(0, &w, 1);
  m.OrWordsAt(0, &w, 1);
  EXPECT_EQ(m.Count(), 2u);
}

// Word-level ops walk `other`'s words over *this*'s word count; a
// mismatched universe (exactly what a buggy shard view would produce)
// must be caught by the debug assertions instead of reading out of
// bounds. The statements are only executed when assertions are compiled
// in — in NDEBUG builds they would be real out-of-bounds reads (the bug
// the assertions exist to catch), so the test skips rather than letting
// EXPECT_DEBUG_DEATH run them to completion.
TEST(BitmapDeathTest, MismatchedSizesAreCaughtInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "assertions compiled out (NDEBUG)";
#else
  Bitmap big(256);
  Bitmap small(64);
  big.Set(200);
  small.Set(1);
  EXPECT_DEATH(big.ForEachAnd(small, [](size_t) {}), "num_bits_");
  EXPECT_DEATH((void)big.AndCount(small), "num_bits_");
  EXPECT_DEATH((void)big.AndNotCount(small), "num_bits_");
  EXPECT_DEATH((void)(big &= small), "num_bits_");
  EXPECT_DEATH((void)(big |= small), "num_bits_");
  EXPECT_DEATH((void)big.AndNot(small), "num_bits_");
#endif
}

TEST(BitmapDeathTest, OrWordsAtOutOfRangeIsCaughtInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "assertions compiled out (NDEBUG)";
#else
  Bitmap m(64);
  const uint64_t w = 1;
  EXPECT_DEATH(m.OrWordsAt(1, &w, 1), "words_");
#endif
}

// ---------------------------------------------------------------------
// ISA sweep: every SIMD tier this host supports must produce the exact
// counts and the bit-identical words of the scalar tier, across sizes
// that hit every tail shape (empty, sub-word, word-aligned, off-by-one
// around the vector block widths, and large-enough-to-vectorize).

Bitmap RandomBitmap(size_t bits, double density, std::mt19937_64* rng) {
  Bitmap b(bits);
  std::bernoulli_distribution coin(density);
  for (size_t i = 0; i < bits; ++i) {
    if (coin(*rng)) b.Set(i);
  }
  return b;
}

TEST(BitmapSimdSweepTest, AllTiersMatchScalarOnBitmapAlgebra) {
  const size_t kSizes[] = {0,   1,    63,   64,   65,    127,  128,
                           129, 1000, 1023, 1024, 16384, 100003};
  std::mt19937_64 rng(42);
  for (const size_t bits : kSizes) {
    // Random pairs plus the adversarial all-zero / all-one shapes.
    struct Pair {
      Bitmap a;
      Bitmap b;
    };
    std::vector<Pair> pairs;
    pairs.push_back({RandomBitmap(bits, 0.5, &rng),
                     RandomBitmap(bits, 0.5, &rng)});
    pairs.push_back({RandomBitmap(bits, 0.02, &rng),
                     RandomBitmap(bits, 0.98, &rng)});
    pairs.push_back({Bitmap(bits), Bitmap(bits, /*value=*/true)});
    pairs.push_back({Bitmap(bits, /*value=*/true),
                     Bitmap(bits, /*value=*/true)});
    for (const Pair& pair : pairs) {
      // Scalar reference.
      size_t ref_count, ref_and, ref_andnot;
      Bitmap ref_anded(0), ref_ored(0), ref_diffed(0);
      {
        simd::ScopedSimdLevel pin(simd::SimdLevel::kScalar);
        ref_count = pair.a.Count();
        ref_and = pair.a.AndCount(pair.b);
        ref_andnot = pair.a.AndNotCount(pair.b);
        ref_anded = pair.a;
        ref_anded &= pair.b;
        ref_ored = pair.a;
        ref_ored |= pair.b;
        ref_diffed = pair.a;
        ref_diffed.AndNot(pair.b);
      }
      for (const simd::SimdLevel level : simd::SupportedSimdLevels()) {
        simd::ScopedSimdLevel pin(level);
        const std::string tag = std::string(simd::SimdLevelName(level)) +
                                "/bits=" + std::to_string(bits);
        EXPECT_EQ(pair.a.Count(), ref_count) << tag;
        EXPECT_EQ(pair.a.AndCount(pair.b), ref_and) << tag;
        EXPECT_EQ(pair.a.AndNotCount(pair.b), ref_andnot) << tag;
        Bitmap anded = pair.a;
        anded &= pair.b;
        EXPECT_TRUE(anded == ref_anded) << tag;
        Bitmap ored = pair.a;
        ored |= pair.b;
        EXPECT_TRUE(ored == ref_ored) << tag;
        Bitmap diffed = pair.a;
        diffed.AndNot(pair.b);
        EXPECT_TRUE(diffed == ref_diffed) << tag;
        // Padding stays clear through every tier's in-place ops.
        EXPECT_EQ((~ored).Count(), bits - ored.Count()) << tag;
      }
    }
  }
}

TEST(BitmapSimdSweepTest, AllTiersMatchScalarOnCompareScanKernels) {
  const size_t kSizes[] = {1, 63, 64, 65, 127, 128, 1000, 4096, 100003};
  std::mt19937_64 rng(43);
  const int32_t kNull = -1;
  for (const size_t n : kSizes) {
    std::vector<int32_t> codes(n);
    std::vector<double> values(n);
    std::uniform_int_distribution<int32_t> code_dist(0, 4);
    std::uniform_real_distribution<double> val_dist(-2.0, 2.0);
    std::bernoulli_distribution null_coin(0.1);
    for (size_t i = 0; i < n; ++i) {
      codes[i] = null_coin(rng) ? kNull : code_dist(rng);
      values[i] = null_coin(rng) ? std::nan("") : val_dist(rng);
    }
    const size_t num_words = (n + 63) / 64;
    const simd::Kernels* scalar =
        simd::KernelsFor(simd::SimdLevel::kScalar);
    ASSERT_NE(scalar, nullptr);
    // Prefill outputs with garbage: the kernels must fully overwrite
    // every word, including clearing the padding bits past n.
    std::vector<uint64_t> ref(num_words), got(num_words);
    for (const simd::SimdLevel level : simd::SupportedSimdLevels()) {
      const simd::Kernels* kernels = simd::KernelsFor(level);
      ASSERT_NE(kernels, nullptr);
      const std::string tag = std::string(simd::SimdLevelName(level)) +
                              "/n=" + std::to_string(n);
      for (const int32_t code : {0, 2, -2}) {
        ref.assign(num_words, ~0ULL);
        got.assign(num_words, ~0ULL);
        scalar->mask_codes_eq(codes.data(), n, code, ref.data());
        kernels->mask_codes_eq(codes.data(), n, code, got.data());
        EXPECT_EQ(got, ref) << tag << " eq code=" << code;
        ref.assign(num_words, ~0ULL);
        got.assign(num_words, ~0ULL);
        scalar->mask_codes_ne(codes.data(), n, kNull, code, ref.data());
        kernels->mask_codes_ne(codes.data(), n, kNull, code, got.data());
        EXPECT_EQ(got, ref) << tag << " ne code=" << code;
      }
      for (const simd::Cmp op :
           {simd::Cmp::kEq, simd::Cmp::kNe, simd::Cmp::kLt, simd::Cmp::kLe,
            simd::Cmp::kGt, simd::Cmp::kGe}) {
        ref.assign(num_words, ~0ULL);
        got.assign(num_words, ~0ULL);
        scalar->mask_numeric_cmp(values.data(), n, op, 0.25, ref.data());
        kernels->mask_numeric_cmp(values.data(), n, op, 0.25, got.data());
        EXPECT_EQ(got, ref) << tag << " cmp op="
                            << static_cast<int>(op);
      }
    }
  }
}

TEST(BitmapSimdSweepTest, LevelKnobRoundTrips) {
  const simd::SimdLevel original = simd::ActiveSimdLevel();
  for (const simd::SimdLevel level : simd::SupportedSimdLevels()) {
    simd::ScopedSimdLevel pin(level);
    EXPECT_EQ(simd::ActiveSimdLevel(), level);
    EXPECT_EQ(&simd::ActiveKernels(), simd::KernelsFor(level));
  }
  EXPECT_EQ(simd::ActiveSimdLevel(), original);
  simd::SimdLevel parsed;
  EXPECT_TRUE(simd::ParseSimdLevel("avx2", &parsed));
  EXPECT_EQ(parsed, simd::SimdLevel::kAvx2);
  EXPECT_FALSE(simd::ParseSimdLevel("sse9", &parsed));
}

// Resize is the append-path primitive: a resident mask extends to cover
// delta rows. Growth must preserve every resident bit, leave the new
// tail clear, and keep the padding invariant (so Count/complement stay
// consistent) at every alignment: mid-word, word-boundary, and
// sub-word growth.
TEST(BitmapTest, ResizeGrowPreservesBitsAtEveryAlignment) {
  struct Case {
    size_t from;
    size_t to;
  };
  const Case cases[] = {
      {70, 100},   // mid-word -> mid-word, same word count
      {70, 129},   // mid-word across a word boundary
      {64, 128},   // exact word boundary to exact word boundary
      {70, 75},    // sub-word growth (delta < 64 rows)
      {63, 64},    // fills the last word exactly
      {0, 70},     // growth from empty
  };
  for (const Case& c : cases) {
    Bitmap b(c.from);
    for (size_t i = 0; i < c.from; i += 3) b.Set(i);
    const size_t count_before = b.Count();
    b.Resize(c.to);
    EXPECT_EQ(b.size(), c.to);
    EXPECT_EQ(b.Count(), count_before) << c.from << "->" << c.to;
    for (size_t i = 0; i < c.from; ++i) {
      EXPECT_EQ(b.Get(i), i % 3 == 0) << c.from << "->" << c.to << "@" << i;
    }
    for (size_t i = c.from; i < c.to; ++i) {
      EXPECT_FALSE(b.Get(i)) << c.from << "->" << c.to << "@" << i;
    }
    // Padding must be clear: the complement count is exact.
    EXPECT_EQ((~b).Count(), c.to - count_before) << c.from << "->" << c.to;
  }
}

TEST(BitmapTest, ResizeShrinkDropsTailAndKeepsPaddingClean) {
  Bitmap b(130, /*value=*/true);
  b.Resize(70);
  EXPECT_EQ(b.size(), 70u);
  EXPECT_EQ(b.Count(), 70u);
  EXPECT_EQ((~b).Count(), 0u);
  // Re-grow: the previously-set bits past the shrink must stay gone.
  b.Resize(130);
  EXPECT_EQ(b.Count(), 70u);
  for (size_t i = 70; i < 130; ++i) EXPECT_FALSE(b.Get(i));
}

// A mask grown in small increments (the lazy index-extension path) must
// be indistinguishable from one built at full size, under every SIMD
// tier: Count / AndCount / AndNotCount / word-level equality.
TEST(BitmapSimdSweepTest, IncrementalResizeMatchesFreshAcrossTiers) {
  std::mt19937_64 rng(1234);
  const size_t kFinal = 1000;
  Bitmap grown(320);
  Bitmap fresh(kFinal);
  std::vector<size_t> set_bits;
  auto fill_range = [&](Bitmap* b, size_t begin, size_t end, bool record) {
    for (size_t i = begin; i < end; ++i) {
      if (rng() % 2 == 0) {
        b->Set(i);
        if (record) set_bits.push_back(i);
      }
    }
  };
  std::vector<size_t> sizes = {320, 321, 384, 447, 512, 700, kFinal};
  size_t covered = 0;
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    fill_range(&grown, covered, sizes[i], /*record=*/true);
    covered = sizes[i];
    grown.Resize(sizes[i + 1]);
  }
  fill_range(&grown, covered, kFinal, /*record=*/true);
  for (const size_t bit : set_bits) fresh.Set(bit);
  Bitmap other(kFinal);
  fill_range(&other, 0, kFinal, /*record=*/false);
  for (const simd::SimdLevel level : simd::SupportedSimdLevels()) {
    simd::ScopedSimdLevel pin(level);
    const std::string tag = simd::SimdLevelName(level);
    EXPECT_EQ(grown.Count(), fresh.Count()) << tag;
    EXPECT_EQ(grown.AndCount(other), fresh.AndCount(other)) << tag;
    EXPECT_EQ(grown.AndNotCount(other), fresh.AndNotCount(other)) << tag;
    EXPECT_EQ((grown & other).Count(), (fresh & other).Count()) << tag;
  }
  ASSERT_EQ(grown.num_words(), fresh.num_words());
  for (size_t w = 0; w < grown.num_words(); ++w) {
    EXPECT_EQ(grown.words()[w], fresh.words()[w]) << "word " << w;
  }
}

}  // namespace
}  // namespace faircap
