#include "dataframe/bitmap.h"

#include <gtest/gtest.h>

namespace faircap {
namespace {

TEST(BitmapTest, StartsAllClear) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.AllZero());
}

TEST(BitmapTest, AllSetConstructorClearsPadding) {
  Bitmap b(70, /*value=*/true);
  EXPECT_EQ(b.Count(), 70u);
  // Complement must also be consistent with the logical size.
  EXPECT_EQ((~b).Count(), 0u);
}

TEST(BitmapTest, SetGetClear) {
  Bitmap b(128);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(127);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(63));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(127));
  EXPECT_FALSE(b.Get(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Get(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitmapTest, AndOrAndNot) {
  Bitmap a(10), b(10);
  a.Set(1);
  a.Set(2);
  a.Set(3);
  b.Set(2);
  b.Set(3);
  b.Set(4);
  EXPECT_EQ((a & b).Count(), 2u);
  EXPECT_EQ((a | b).Count(), 4u);
  Bitmap diff = a;
  diff.AndNot(b);
  EXPECT_EQ(diff.Count(), 1u);
  EXPECT_TRUE(diff.Get(1));
}

TEST(BitmapTest, AndCountMatchesMaterializedIntersection) {
  // Multiple words plus a partial tail word.
  Bitmap a(193), b(193);
  for (size_t i = 0; i < 193; i += 3) a.Set(i);
  for (size_t i = 0; i < 193; i += 5) b.Set(i);
  EXPECT_EQ(a.AndCount(b), (a & b).Count());
  EXPECT_EQ(b.AndCount(a), a.AndCount(b));
  EXPECT_EQ(a.AndCount(a), a.Count());

  Bitmap all(193, /*value=*/true);
  EXPECT_EQ(a.AndCount(all), a.Count());
  Bitmap none(193);
  EXPECT_EQ(a.AndCount(none), 0u);
  EXPECT_EQ(Bitmap(0).AndCount(Bitmap(0)), 0u);
}

TEST(BitmapTest, AndNotCountMatchesMaterializedDifference) {
  Bitmap a(130), b(130);
  for (size_t i = 0; i < 130; i += 2) a.Set(i);
  for (size_t i = 0; i < 130; i += 4) b.Set(i);
  Bitmap diff = a;
  diff.AndNot(b);
  EXPECT_EQ(a.AndNotCount(b), diff.Count());
  EXPECT_EQ(a.AndNotCount(a), 0u);
}

TEST(BitmapTest, ComplementWithinSize) {
  Bitmap a(10);
  a.Set(0);
  a.Set(9);
  const Bitmap c = ~a;
  EXPECT_EQ(c.Count(), 8u);
  EXPECT_FALSE(c.Get(0));
  EXPECT_TRUE(c.Get(5));
}

TEST(BitmapTest, EqualityAndCopies) {
  Bitmap a(65), b(65);
  a.Set(64);
  b.Set(64);
  EXPECT_TRUE(a == b);
  b.Set(0);
  EXPECT_FALSE(a == b);
}

TEST(BitmapTest, ToIndicesAscending) {
  Bitmap b(200);
  b.Set(199);
  b.Set(0);
  b.Set(77);
  const auto idx = b.ToIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 77u);
  EXPECT_EQ(idx[2], 199u);
}

TEST(BitmapTest, ForEachVisitsEachSetBitOnce) {
  Bitmap b(150);
  for (size_t i = 0; i < 150; i += 7) b.Set(i);
  size_t visits = 0;
  size_t last = 0;
  b.ForEach([&](size_t i) {
    EXPECT_TRUE(b.Get(i));
    EXPECT_TRUE(visits == 0 || i > last);
    last = i;
    ++visits;
  });
  EXPECT_EQ(visits, b.Count());
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap b(0);
  EXPECT_EQ(b.Count(), 0u);
  b.ForEach([](size_t) { FAIL() << "no bits to visit"; });
}

}  // namespace
}  // namespace faircap
