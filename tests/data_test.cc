#include <gtest/gtest.h>

#include <cmath>

#include "data/german.h"
#include "data/scm.h"
#include "data/stackoverflow.h"

namespace faircap {
namespace {

TEST(ScmTest, RejectsUnknownParentAndDuplicates) {
  Scm scm;
  ASSERT_TRUE(scm.AddCategoricalRoot("A", AttrRole::kImmutable, {"x", "y"},
                                     {1.0, 1.0})
                  .ok());
  EXPECT_EQ(scm.AddCategoricalRoot("A", AttrRole::kImmutable, {"x"}, {1.0})
                .code(),
            StatusCode::kAlreadyExists);
  ScmAttribute child;
  child.spec = {"B", AttrType::kCategorical, AttrRole::kMutable};
  child.parents = {"MISSING"};
  child.sampler = [](const ScmRow&, Rng&) { return Value("v"); };
  EXPECT_EQ(scm.Add(std::move(child)).code(), StatusCode::kNotFound);
}

TEST(ScmTest, GenerateIsDeterministicPerSeed) {
  Scm scm;
  ASSERT_TRUE(scm.AddCategoricalRoot("A", AttrRole::kImmutable, {"x", "y"},
                                     {1.0, 3.0})
                  .ok());
  const auto df1 = scm.Generate(100, 42);
  const auto df2 = scm.Generate(100, 42);
  const auto df3 = scm.Generate(100, 43);
  ASSERT_TRUE(df1.ok() && df2.ok() && df3.ok());
  size_t same12 = 0, same13 = 0;
  for (size_t r = 0; r < 100; ++r) {
    if (df1->GetValue(r, 0) == df2->GetValue(r, 0)) ++same12;
    if (df1->GetValue(r, 0) == df3->GetValue(r, 0)) ++same13;
  }
  EXPECT_EQ(same12, 100u);
  EXPECT_LT(same13, 100u);
}

TEST(ScmTest, DagMatchesParentDeclarations) {
  Scm scm;
  ASSERT_TRUE(scm.AddCategoricalRoot("A", AttrRole::kImmutable, {"x", "y"},
                                     {1.0, 1.0})
                  .ok());
  ScmAttribute b;
  b.spec = {"B", AttrType::kCategorical, AttrRole::kMutable};
  b.parents = {"A"};
  b.sampler = [](const ScmRow& row, Rng&) { return row.at("A"); };
  ASSERT_TRUE(scm.Add(std::move(b)).ok());
  const auto dag = scm.Dag();
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag->HasEdge(*dag->IndexOf("A"), *dag->IndexOf("B")));
  EXPECT_EQ(dag->num_edges(), 1u);
}

TEST(LayeredDagTest, VariantsHaveExpectedShape) {
  const auto schema = Schema::Create({
      {"i1", AttrType::kCategorical, AttrRole::kImmutable},
      {"i2", AttrType::kCategorical, AttrRole::kImmutable},
      {"m1", AttrType::kCategorical, AttrRole::kMutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  ASSERT_TRUE(schema.ok());

  const auto indep =
      MakeLayeredDag(*schema, DagVariant::kOneLayerIndependent);
  ASSERT_TRUE(indep.ok());
  EXPECT_EQ(indep->num_edges(), 3u);  // every non-outcome -> outcome

  const auto two_mutable =
      MakeLayeredDag(*schema, DagVariant::kTwoLayerMutable);
  ASSERT_TRUE(two_mutable.ok());
  // i1->m1, i2->m1, m1->o; immutables do NOT reach o directly.
  EXPECT_EQ(two_mutable->num_edges(), 3u);
  EXPECT_FALSE(two_mutable->HasEdge(*two_mutable->IndexOf("i1"),
                                    *two_mutable->IndexOf("o")));

  const auto two_layer = MakeLayeredDag(*schema, DagVariant::kTwoLayer);
  ASSERT_TRUE(two_layer.ok());
  // i1->m1, i2->m1, i1->o, i2->o, m1->o.
  EXPECT_EQ(two_layer->num_edges(), 5u);
  EXPECT_TRUE(two_layer->HasEdge(*two_layer->IndexOf("i1"),
                                 *two_layer->IndexOf("o")));
}

TEST(StackOverflowTest, ShapeAndProtectedFraction) {
  StackOverflowConfig config;
  config.num_rows = 5000;
  const auto data = MakeStackOverflow(config);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->df.num_rows(), 5000u);
  EXPECT_EQ(data->df.num_columns(), 21u);  // 20 attributes + Salary
  const double frac =
      static_cast<double>(
          data->protected_pattern.Evaluate(data->df).Count()) /
      5000.0;
  EXPECT_NEAR(frac, 0.215, 0.03);  // Table 3: 21.5%
}

TEST(StackOverflowTest, RolePartitionMatchesPaper) {
  const auto data = MakeStackOverflow({.num_rows = 100});
  ASSERT_TRUE(data.ok());
  const Schema& schema = data->df.schema();
  EXPECT_EQ(schema.IndicesWithRole(AttrRole::kImmutable).size(), 10u);
  EXPECT_EQ(schema.IndicesWithRole(AttrRole::kMutable).size(), 10u);
  EXPECT_TRUE(schema.OutcomeIndex().ok());
}

TEST(StackOverflowTest, DagIsAcyclicAndCoversAttributes) {
  const auto data = MakeStackOverflow({.num_rows = 100});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->dag.num_nodes(), data->df.num_columns());
  EXPECT_EQ(data->dag.TopologicalOrder().size(), data->dag.num_nodes());
  // Salary is a sink.
  EXPECT_TRUE(data->dag.Children(*data->dag.IndexOf("Salary")).empty());
}

TEST(StackOverflowTest, ProtectedGroupEarnsLess) {
  const auto data = MakeStackOverflow({.num_rows = 10000});
  ASSERT_TRUE(data.ok());
  const Bitmap prot = data->protected_pattern.Evaluate(data->df);
  Bitmap nonprot = data->df.AllRows();
  nonprot.AndNot(prot);
  const size_t salary = *data->df.schema().IndexOf("Salary");
  EXPECT_LT(data->df.Mean(salary, prot) + 20000.0,
            data->df.Mean(salary, nonprot));
}

TEST(StackOverflowTest, PlantedCsMajorEffectVisible) {
  // Raw difference (not CATE): CS majors earn materially more.
  const auto data = MakeStackOverflow({.num_rows = 10000});
  ASSERT_TRUE(data.ok());
  const size_t major = *data->df.schema().IndexOf("UndergradMajor");
  const size_t salary = *data->df.schema().IndexOf("Salary");
  const Bitmap cs =
      Pattern({Predicate(major, CompareOp::kEq, Value("cs"))})
          .Evaluate(data->df);
  Bitmap rest = data->df.AllRows();
  rest.AndNot(cs);
  EXPECT_GT(data->df.Mean(salary, cs), data->df.Mean(salary, rest) + 8000.0);
}

TEST(StackOverflowTest, DisconnectedAttributeHasNoPathToSalary) {
  const auto data = MakeStackOverflow({.num_rows = 100});
  ASSERT_TRUE(data.ok());
  const size_t db = *data->dag.IndexOf("DatabasesUsed");
  const size_t salary = *data->dag.IndexOf("Salary");
  EXPECT_FALSE(data->dag.HasDirectedPath(db, salary));
}

TEST(GermanTest, ShapeAndProtectedFraction) {
  const auto data = MakeGerman();
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->df.num_rows(), 1000u);
  EXPECT_EQ(data->df.num_columns(), 21u);  // 20 attributes + CreditRisk
  const double frac =
      static_cast<double>(
          data->protected_pattern.Evaluate(data->df).Count()) /
      1000.0;
  EXPECT_NEAR(frac, 0.092, 0.04);  // Table 3: 9.2%
}

TEST(GermanTest, RolePartitionMatchesPaper) {
  const auto data = MakeGerman();
  ASSERT_TRUE(data.ok());
  const Schema& schema = data->df.schema();
  EXPECT_EQ(schema.IndicesWithRole(AttrRole::kImmutable).size(), 5u);
  EXPECT_EQ(schema.IndicesWithRole(AttrRole::kMutable).size(), 15u);
}

TEST(GermanTest, OutcomeIsBinary) {
  const auto data = MakeGerman();
  ASSERT_TRUE(data.ok());
  const size_t risk = *data->df.schema().IndexOf("CreditRisk");
  const Column& col = data->df.column(risk);
  for (size_t r = 0; r < data->df.num_rows(); ++r) {
    const double v = col.numeric(r);
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
  const double rate = data->df.Mean(risk);
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.9);
}

TEST(GermanTest, CheckingBalanceEffectVisible) {
  GermanConfig config;
  config.num_rows = 5000;  // larger sample for a stable raw difference
  const auto data = MakeGerman(config);
  ASSERT_TRUE(data.ok());
  const size_t checking = *data->df.schema().IndexOf("CheckingBalance");
  const size_t risk = *data->df.schema().IndexOf("CreditRisk");
  const Bitmap high =
      Pattern({Predicate(checking, CompareOp::kEq, Value(">=200DM"))})
          .Evaluate(data->df);
  Bitmap rest = data->df.AllRows();
  rest.AndNot(high);
  EXPECT_GT(data->df.Mean(risk, high), data->df.Mean(risk, rest) + 0.1);
}

TEST(GermanTest, ProtectedAttenuationShowsUp) {
  GermanConfig config;
  config.num_rows = 20000;
  const auto data = MakeGerman(config);
  ASSERT_TRUE(data.ok());
  const Bitmap prot = data->protected_pattern.Evaluate(data->df);
  const size_t risk = *data->df.schema().IndexOf("CreditRisk");
  Bitmap nonprot = data->df.AllRows();
  nonprot.AndNot(prot);
  EXPECT_LT(data->df.Mean(risk, prot), data->df.Mean(risk, nonprot));
}

}  // namespace
}  // namespace faircap
