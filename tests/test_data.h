// Shared synthetic fixture for core/baseline/integration tests: a small
// prescription dataset with one fair and one unfair planted treatment.
//
//   Group (immutable, g1/g2)     -> T1, O
//   Prot  (immutable, yes/no)    -> O       (protected group: Prot = yes)
//   T1    (mutable, a/b)         -> O       (+10 non-protected, +2 protected)
//   T2    (mutable, x/y)         -> O       (+5 everyone — the fair option)
//
// Without fairness constraints the best treatment is T1=b (overall CATE
// ~8.4 but protected CATE ~2). Under SP fairness T2=y (gap ~0) wins.

#ifndef FAIRCAP_TESTS_TEST_DATA_H_
#define FAIRCAP_TESTS_TEST_DATA_H_

#include <utility>

#include "causal/dag.h"
#include "dataframe/dataframe.h"
#include "mining/pattern.h"
#include "util/random.h"

namespace faircap {

struct ToyData {
  DataFrame df;
  CausalDag dag;
  Pattern protected_pattern;
};

inline ToyData MakeToyData(size_t n = 3000, uint64_t seed = 123,
                           double protected_fraction = 0.2) {
  auto schema = Schema::Create({
      {"Group", AttrType::kCategorical, AttrRole::kImmutable},
      {"Prot", AttrType::kCategorical, AttrRole::kImmutable},
      {"T1", AttrType::kCategorical, AttrRole::kMutable},
      {"T2", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool g1 = rng.NextBernoulli(0.5);
    const bool prot = rng.NextBernoulli(protected_fraction);
    // Group confounds T1.
    const bool t1b = rng.NextBernoulli(g1 ? 0.6 : 0.4);
    const bool t2y = rng.NextBernoulli(0.5);
    double o = 20.0;
    if (g1) o += 4.0;          // group base difference
    if (prot) o -= 3.0;        // protected base penalty
    if (t1b) o += prot ? 2.0 : 10.0;  // unfair treatment
    if (t2y) o += 5.0;                // fair treatment
    o += rng.NextGaussian(0.0, 2.0);
    const Status st = df.AppendRow({Value(g1 ? "g1" : "g2"),
                                    Value(prot ? "yes" : "no"),
                                    Value(t1b ? "b" : "a"),
                                    Value(t2y ? "y" : "x"), Value(o)});
    (void)st;
  }
  CausalDag dag =
      CausalDag::Create({"Group", "Prot", "T1", "T2", "O"},
                        {{"Group", "T1"},
                         {"Group", "O"},
                         {"Prot", "O"},
                         {"T1", "O"},
                         {"T2", "O"}})
          .ValueOrDie();
  const size_t prot_attr = *df.schema().IndexOf("Prot");
  Pattern protected_pattern(
      {Predicate(prot_attr, CompareOp::kEq, Value("yes"))});
  return {std::move(df), std::move(dag), std::move(protected_pattern)};
}

}  // namespace faircap

#endif  // FAIRCAP_TESTS_TEST_DATA_H_
