#include "dataframe/schema.h"

#include <gtest/gtest.h>

namespace faircap {
namespace {

std::vector<AttributeSpec> BasicSpecs() {
  return {
      {"age", AttrType::kCategorical, AttrRole::kImmutable},
      {"role", AttrType::kCategorical, AttrRole::kMutable},
      {"salary", AttrType::kNumeric, AttrRole::kOutcome},
  };
}

TEST(SchemaTest, CreateAndLookup) {
  const auto schema = Schema::Create(BasicSpecs());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attributes(), 3u);
  EXPECT_EQ(*schema->IndexOf("role"), 1u);
  EXPECT_TRUE(schema->Contains("salary"));
  EXPECT_FALSE(schema->Contains("bogus"));
  EXPECT_FALSE(schema->IndexOf("bogus").ok());
}

TEST(SchemaTest, OutcomeIndex) {
  const auto schema = Schema::Create(BasicSpecs());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(*schema->OutcomeIndex(), 2u);
}

TEST(SchemaTest, MissingOutcomeIsNotFound) {
  const auto schema = Schema::Create(
      {{"a", AttrType::kCategorical, AttrRole::kImmutable}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->OutcomeIndex().status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RejectsDuplicateNames) {
  const auto schema = Schema::Create(
      {{"a", AttrType::kCategorical, AttrRole::kImmutable},
       {"a", AttrType::kCategorical, AttrRole::kMutable}});
  EXPECT_EQ(schema.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsEmptyName) {
  const auto schema =
      Schema::Create({{"", AttrType::kCategorical, AttrRole::kImmutable}});
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsMultipleOutcomes) {
  const auto schema = Schema::Create(
      {{"o1", AttrType::kNumeric, AttrRole::kOutcome},
       {"o2", AttrType::kNumeric, AttrRole::kOutcome}});
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsCategoricalOutcome) {
  const auto schema = Schema::Create(
      {{"o", AttrType::kCategorical, AttrRole::kOutcome}});
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, IndicesWithRole) {
  const auto schema = Schema::Create(BasicSpecs());
  ASSERT_TRUE(schema.ok());
  const auto immutable = schema->IndicesWithRole(AttrRole::kImmutable);
  ASSERT_EQ(immutable.size(), 1u);
  EXPECT_EQ(immutable[0], 0u);
  EXPECT_TRUE(schema->IndicesWithRole(AttrRole::kIgnored).empty());
}

}  // namespace
}  // namespace faircap
