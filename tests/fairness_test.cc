#include "core/fairness.h"

#include <gtest/gtest.h>

#include "core/ruleset.h"

namespace faircap {
namespace {

PrescriptionRule RuleWithUtilities(double u, double up, double unp) {
  PrescriptionRule rule;
  rule.utility = u;
  rule.utility_protected = up;
  rule.utility_nonprotected = unp;
  return rule;
}

RulesetStats StatsWith(double up, double unp) {
  RulesetStats stats;
  stats.exp_utility_protected = up;
  stats.exp_utility_nonprotected = unp;
  stats.unfairness = unp - up;
  return stats;
}

TEST(FairnessTest, NoneIsAlwaysSatisfied) {
  const FairnessConstraint none = FairnessConstraint::None();
  EXPECT_FALSE(none.active());
  EXPECT_TRUE(none.RuleSatisfies(RuleWithUtilities(1, -100, 100)));
  EXPECT_TRUE(none.StatsSatisfy(StatsWith(0, 1e9)));
  EXPECT_DOUBLE_EQ(none.GroupViolation(StatsWith(0, 1e9)), 0.0);
}

TEST(FairnessTest, IndividualSPBoundsTheGap) {
  const FairnessConstraint c = FairnessConstraint::IndividualSP(10.0);
  EXPECT_TRUE(c.individual());
  EXPECT_TRUE(c.RuleSatisfies(RuleWithUtilities(50, 45, 50)));
  EXPECT_TRUE(c.RuleSatisfies(RuleWithUtilities(50, 50, 40)));  // |gap|=10
  EXPECT_FALSE(c.RuleSatisfies(RuleWithUtilities(50, 30, 50)));
  // Individual constraints do not restrict group stats.
  EXPECT_TRUE(c.StatsSatisfy(StatsWith(0, 100)));
}

TEST(FairnessTest, GroupSPBoundsStatsGap) {
  const FairnessConstraint c = FairnessConstraint::GroupSP(10.0);
  EXPECT_TRUE(c.group());
  EXPECT_TRUE(c.StatsSatisfy(StatsWith(50, 55)));
  EXPECT_FALSE(c.StatsSatisfy(StatsWith(50, 65)));
  // Symmetric: protected ahead also counts.
  EXPECT_FALSE(c.StatsSatisfy(StatsWith(65, 50)));
  EXPECT_DOUBLE_EQ(c.GroupViolation(StatsWith(50, 65)), 5.0);
  // Group constraints do not restrict single rules.
  EXPECT_TRUE(c.RuleSatisfies(RuleWithUtilities(1, 0, 1000)));
}

TEST(FairnessTest, IndividualBGLRequiresMinimumProtectedUtility) {
  const FairnessConstraint c = FairnessConstraint::IndividualBGL(0.2);
  EXPECT_TRUE(c.RuleSatisfies(RuleWithUtilities(1.0, 0.25, 0.9)));
  EXPECT_TRUE(c.RuleSatisfies(RuleWithUtilities(1.0, 0.2, 0.9)));
  EXPECT_FALSE(c.RuleSatisfies(RuleWithUtilities(1.0, 0.1, 0.9)));
}

TEST(FairnessTest, GroupBGLRequiresMinimumProtectedStats) {
  const FairnessConstraint c = FairnessConstraint::GroupBGL(0.3);
  EXPECT_TRUE(c.StatsSatisfy(StatsWith(0.35, 0.9)));
  EXPECT_FALSE(c.StatsSatisfy(StatsWith(0.25, 0.9)));
  EXPECT_NEAR(c.GroupViolation(StatsWith(0.25, 0.9)), 0.05, 1e-12);
  // BGL ignores the non-protected side entirely.
  EXPECT_TRUE(c.StatsSatisfy(StatsWith(0.35, 1e9)));
}

TEST(FairnessTest, ToStringIsInformative) {
  EXPECT_NE(FairnessConstraint::GroupSP(10).ToString().find("group SP"),
            std::string::npos);
  EXPECT_NE(
      FairnessConstraint::IndividualBGL(0.5).ToString().find("individual"),
      std::string::npos);
  EXPECT_NE(FairnessConstraint::None().ToString().find("no fairness"),
            std::string::npos);
}

}  // namespace
}  // namespace faircap
