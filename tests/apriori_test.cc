#include "mining/apriori.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace faircap {
namespace {

DataFrame Frame() {
  auto schema = Schema::Create({
      {"a", AttrType::kCategorical, AttrRole::kImmutable},
      {"b", AttrType::kCategorical, AttrRole::kImmutable},
      {"c", AttrType::kCategorical, AttrRole::kImmutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  // 10 rows; a=x 60%, b=1 50%, (a=x ∧ b=1) 40%.
  const char* rows[][3] = {
      {"x", "1", "p"}, {"x", "1", "p"}, {"x", "1", "q"}, {"x", "1", "q"},
      {"x", "2", "p"}, {"x", "2", "q"}, {"y", "1", "p"}, {"y", "2", "q"},
      {"z", "2", "p"}, {"z", "2", "q"},
  };
  for (const auto& r : rows) {
    EXPECT_TRUE(
        df.AppendRow({Value(r[0]), Value(r[1]), Value(r[2])}).ok());
  }
  return df;
}

AprioriOptions Opts(double minsup, size_t maxlen) {
  AprioriOptions o;
  o.min_support_fraction = minsup;
  o.max_pattern_length = maxlen;
  return o;
}

TEST(AprioriTest, SingletonsRespectSupportThreshold) {
  const DataFrame df = Frame();
  const auto patterns = MineFrequentPatterns(df, {0, 1, 2}, Opts(0.55, 1));
  ASSERT_TRUE(patterns.ok());
  // Only a=x has support >= 5.5 -> 6.
  ASSERT_EQ(patterns->size(), 1u);
  EXPECT_EQ((*patterns)[0].support, 6u);
}

TEST(AprioriTest, PairsAreIntersections) {
  const DataFrame df = Frame();
  const auto patterns = MineFrequentPatterns(df, {0, 1}, Opts(0.4, 2));
  ASSERT_TRUE(patterns.ok());
  bool found_pair = false;
  for (const auto& fp : *patterns) {
    if (fp.pattern.size() == 2) {
      found_pair = true;
      EXPECT_EQ(fp.support, 4u);  // a=x ∧ b=1
      EXPECT_EQ(fp.coverage.Count(), 4u);
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(AprioriTest, SupportIsAntiMonotone) {
  const DataFrame df = Frame();
  const auto patterns = MineFrequentPatterns(df, {0, 1, 2}, Opts(0.1, 3));
  ASSERT_TRUE(patterns.ok());
  // Every returned pattern's support equals its coverage count, and any
  // extension has support <= its parent.
  for (const auto& fp : *patterns) {
    EXPECT_EQ(fp.support, fp.coverage.Count());
    EXPECT_GE(fp.support, 1u);  // 0.1 * 10
  }
  // Find support of a=x and of a=x ∧ b=1.
  size_t support_x = 0, support_x1 = 0;
  for (const auto& fp : *patterns) {
    if (fp.pattern.size() == 1 &&
        fp.pattern.predicates()[0].value == Value("x")) {
      support_x = fp.support;
    }
    if (fp.pattern.size() == 2 && fp.pattern.ConstrainsAttr(0) &&
        fp.pattern.ConstrainsAttr(1) &&
        fp.pattern.predicates()[0].value == Value("x") &&
        fp.pattern.predicates()[1].value == Value("1")) {
      support_x1 = fp.support;
    }
  }
  EXPECT_EQ(support_x, 6u);
  EXPECT_EQ(support_x1, 4u);
}

TEST(AprioriTest, OnePredicatePerAttribute) {
  const DataFrame df = Frame();
  const auto patterns = MineFrequentPatterns(df, {0, 1, 2}, Opts(0.0, 3));
  ASSERT_TRUE(patterns.ok());
  for (const auto& fp : *patterns) {
    const auto attrs = fp.pattern.Attributes();
    EXPECT_EQ(attrs.size(), fp.pattern.size())
        << fp.pattern.ToString(df.schema());
  }
}

TEST(AprioriTest, MaxLengthRespected) {
  const DataFrame df = Frame();
  const auto patterns = MineFrequentPatterns(df, {0, 1, 2}, Opts(0.0, 2));
  ASSERT_TRUE(patterns.ok());
  for (const auto& fp : *patterns) {
    EXPECT_LE(fp.pattern.size(), 2u);
  }
}

TEST(AprioriTest, IncludeEmptyPattern) {
  const DataFrame df = Frame();
  AprioriOptions o = Opts(0.5, 1);
  o.include_empty_pattern = true;
  const auto patterns = MineFrequentPatterns(df, {0}, o);
  ASSERT_TRUE(patterns.ok());
  ASSERT_FALSE(patterns->empty());
  EXPECT_TRUE((*patterns)[0].pattern.empty());
  EXPECT_EQ((*patterns)[0].support, df.num_rows());
}

TEST(AprioriTest, RejectsNumericAttributes) {
  auto schema = Schema::Create(
      {{"n", AttrType::kNumeric, AttrRole::kImmutable}});
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  ASSERT_TRUE(df.AppendRow({Value(1.0)}).ok());
  const auto patterns = MineFrequentPatterns(df, {0}, Opts(0.1, 1));
  EXPECT_EQ(patterns.status().code(), StatusCode::kInvalidArgument);
}

TEST(AprioriTest, RejectsBadThresholdAndRange) {
  const DataFrame df = Frame();
  EXPECT_FALSE(MineFrequentPatterns(df, {0}, Opts(1.5, 1)).ok());
  EXPECT_FALSE(MineFrequentPatterns(df, {17}, Opts(0.1, 1)).ok());
}

TEST(AprioriTest, EmptyFrameYieldsNothing) {
  auto schema = Schema::Create(
      {{"a", AttrType::kCategorical, AttrRole::kImmutable}});
  const DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  const auto patterns = MineFrequentPatterns(df, {0}, Opts(0.1, 2));
  ASSERT_TRUE(patterns.ok());
  EXPECT_TRUE(patterns->empty());
}

TEST(AprioriTest, ExhaustiveAgainstBruteForceOnRandomData) {
  // Property: Apriori finds exactly the frequent equality conjunctions.
  Rng rng(99);
  auto schema = Schema::Create({
      {"a", AttrType::kCategorical, AttrRole::kImmutable},
      {"b", AttrType::kCategorical, AttrRole::kImmutable},
      {"c", AttrType::kCategorical, AttrRole::kImmutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  const std::vector<std::string> cats = {"u", "v", "w"};
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(df.AppendRow({Value(cats[rng.NextBounded(3)]),
                              Value(cats[rng.NextBounded(3)]),
                              Value(cats[rng.NextBounded(2)])})
                    .ok());
  }
  const double minsup = 0.15;
  const auto mined = MineFrequentPatterns(df, {0, 1, 2}, Opts(minsup, 3));
  ASSERT_TRUE(mined.ok());
  std::set<std::string> mined_keys;
  for (const auto& fp : *mined) mined_keys.insert(fp.pattern.Key());

  // Brute-force all 1- and 2-predicate combos.
  const size_t need =
      static_cast<size_t>(std::ceil(minsup * df.num_rows()));
  size_t expected = 0;
  for (size_t attr_a = 0; attr_a < 3; ++attr_a) {
    for (const auto& va : cats) {
      const Pattern pa({Predicate(attr_a, CompareOp::kEq, Value(va))});
      const size_t sa = pa.Evaluate(df).Count();
      if (sa >= need && sa > 0) {
        ++expected;
        EXPECT_TRUE(mined_keys.count(pa.Key())) << pa.ToString(df.schema());
      }
      for (size_t attr_b = attr_a + 1; attr_b < 3; ++attr_b) {
        for (const auto& vb : cats) {
          const Pattern pab =
              pa.With(Predicate(attr_b, CompareOp::kEq, Value(vb)));
          const size_t sab = pab.Evaluate(df).Count();
          if (sab >= need && sab > 0) {
            ++expected;
            EXPECT_TRUE(mined_keys.count(pab.Key()))
                << pab.ToString(df.schema());
          }
        }
      }
    }
  }
  // Count mined patterns of size <= 2 and triples separately.
  size_t mined_up_to_2 = 0;
  for (const auto& fp : *mined) {
    if (fp.pattern.size() <= 2) ++mined_up_to_2;
  }
  EXPECT_EQ(mined_up_to_2, expected);
}

}  // namespace
}  // namespace faircap
