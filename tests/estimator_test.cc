#include "causal/estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace faircap {
namespace {

// Confounded dataset: Z ~ Bernoulli(0.5) as "hi"/"lo";
// T = "yes" w.p. 0.8 if Z=hi else 0.2; O = 10*[Z=hi] + effect*[T=yes] + eps.
// Naive mean difference is biased upward by the confounding (+~6.7);
// backdoor adjustment on Z recovers `effect`.
struct ConfoundedData {
  DataFrame df;
  CausalDag dag;
};

ConfoundedData MakeConfounded(double effect, size_t n, uint64_t seed) {
  auto schema = Schema::Create({
      {"Z", AttrType::kCategorical, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool z = rng.NextBernoulli(0.5);
    const bool t = rng.NextBernoulli(z ? 0.8 : 0.2);
    const double o = (z ? 10.0 : 0.0) + (t ? effect : 0.0) +
                     rng.NextGaussian(0.0, 1.0);
    EXPECT_TRUE(df.AppendRow({Value(z ? "hi" : "lo"),
                              Value(t ? "yes" : "no"), Value(o)})
                    .ok());
  }
  CausalDag dag = CausalDag::Create({"Z", "T", "O"},
                                    {{"Z", "T"}, {"Z", "O"}, {"T", "O"}})
                      .ValueOrDie();
  return {std::move(df), std::move(dag)};
}

Pattern TreatYes(const DataFrame& df) {
  const size_t t = *df.schema().IndexOf("T");
  return Pattern({Predicate(t, CompareOp::kEq, Value("yes"))});
}

TEST(EstimatorTest, RegressionRecoversEffectUnderConfounding) {
  const ConfoundedData data = MakeConfounded(3.0, 8000, 5);
  const auto est = CateEstimator::Create(&data.df, &data.dag);
  ASSERT_TRUE(est.ok());
  const auto cate = est->Estimate(TreatYes(data.df), data.df.AllRows());
  ASSERT_TRUE(cate.ok()) << cate.status().ToString();
  EXPECT_NEAR(cate->cate, 3.0, 0.15);
  EXPECT_GT(cate->n_treated, 1000u);
  EXPECT_GT(cate->n_control, 1000u);
  EXPECT_GT(cate->t_statistic(), 10.0);
}

TEST(EstimatorTest, StratifiedRecoversEffectUnderConfounding) {
  const ConfoundedData data = MakeConfounded(3.0, 8000, 5);
  CateOptions options;
  options.method = CateMethod::kStratified;
  const auto est = CateEstimator::Create(&data.df, &data.dag, options);
  ASSERT_TRUE(est.ok());
  const auto cate = est->Estimate(TreatYes(data.df), data.df.AllRows());
  ASSERT_TRUE(cate.ok()) << cate.status().ToString();
  EXPECT_NEAR(cate->cate, 3.0, 0.15);
}

TEST(EstimatorTest, NaiveDifferenceWouldBeBiased) {
  // Sanity-check the test construction itself: the unadjusted difference
  // of means must be far from the true effect.
  const ConfoundedData data = MakeConfounded(3.0, 8000, 5);
  const Bitmap treated = TreatYes(data.df).Evaluate(data.df);
  Bitmap control = data.df.AllRows();
  control.AndNot(treated);
  const size_t o = *data.df.schema().IndexOf("O");
  const double naive = data.df.Mean(o, treated) - data.df.Mean(o, control);
  EXPECT_GT(naive, 5.0);  // confounding inflates the difference
}

TEST(EstimatorTest, ZeroEffectEstimatesNearZero) {
  const ConfoundedData data = MakeConfounded(0.0, 8000, 11);
  const auto est = CateEstimator::Create(&data.df, &data.dag);
  ASSERT_TRUE(est.ok());
  const auto cate = est->Estimate(TreatYes(data.df), data.df.AllRows());
  ASSERT_TRUE(cate.ok());
  EXPECT_NEAR(cate->cate, 0.0, 0.12);
  EXPECT_LT(std::abs(cate->t_statistic()), 4.0);
}

TEST(EstimatorTest, SubgroupEstimation) {
  // Effect only within Z=hi subgroup when estimated there.
  const ConfoundedData data = MakeConfounded(3.0, 8000, 13);
  const auto est = CateEstimator::Create(&data.df, &data.dag);
  ASSERT_TRUE(est.ok());
  const size_t z = *data.df.schema().IndexOf("Z");
  const Bitmap hi =
      Pattern({Predicate(z, CompareOp::kEq, Value("hi"))}).Evaluate(data.df);
  const auto cate = est->Estimate(TreatYes(data.df), hi);
  ASSERT_TRUE(cate.ok());
  EXPECT_NEAR(cate->cate, 3.0, 0.2);
}

TEST(EstimatorTest, InsufficientOverlapFails) {
  const ConfoundedData data = MakeConfounded(3.0, 40, 17);
  CateOptions options;
  options.min_group_size = 30;  // 40 rows cannot give 30 treated + 30 control
  const auto est = CateEstimator::Create(&data.df, &data.dag, options);
  ASSERT_TRUE(est.ok());
  const auto cate = est->Estimate(TreatYes(data.df), data.df.AllRows());
  EXPECT_EQ(cate.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EstimatorTest, EmptyInterventionRejected) {
  const ConfoundedData data = MakeConfounded(1.0, 100, 19);
  const auto est = CateEstimator::Create(&data.df, &data.dag);
  ASSERT_TRUE(est.ok());
  const auto cate = est->Estimate(Pattern::Empty(), data.df.AllRows());
  EXPECT_EQ(cate.status().code(), StatusCode::kInvalidArgument);
}

TEST(EstimatorTest, AdjustmentSetIsTreatmentParents) {
  const ConfoundedData data = MakeConfounded(1.0, 100, 23);
  const auto est = CateEstimator::Create(&data.df, &data.dag);
  ASSERT_TRUE(est.ok());
  const auto attrs = est->AdjustmentAttrs(TreatYes(data.df));
  ASSERT_TRUE(attrs.ok());
  ASSERT_EQ(attrs->size(), 1u);
  EXPECT_EQ((*attrs)[0], *data.df.schema().IndexOf("Z"));
}

TEST(EstimatorTest, MissingOutcomeInDagRejectedAtCreate) {
  const ConfoundedData data = MakeConfounded(1.0, 50, 29);
  const CausalDag wrong_dag =
      CausalDag::Create({"Z", "T"}, {{"Z", "T"}}).ValueOrDie();
  const auto est = CateEstimator::Create(&data.df, &wrong_dag);
  EXPECT_FALSE(est.ok());
}

TEST(EstimatorTest, TreatedMaskIsCachedAndCorrect) {
  const ConfoundedData data = MakeConfounded(1.0, 500, 31);
  const auto est = CateEstimator::Create(&data.df, &data.dag);
  ASSERT_TRUE(est.ok());
  const Pattern p = TreatYes(data.df);
  const std::shared_ptr<const Bitmap> m1 = est->TreatedMask(p);
  const std::shared_ptr<const Bitmap> m2 = est->TreatedMask(p);
  EXPECT_EQ(m1.get(), m2.get());  // same cached object
  EXPECT_EQ(m1->Count(), p.Evaluate(data.df).Count());
}

TEST(EstimatorTest, MultiAttributeIntervention) {
  // Two treatments with additive effects: T1 adds 2, T2 adds 1.
  auto schema = Schema::Create({
      {"Z", AttrType::kCategorical, AttrRole::kImmutable},
      {"T1", AttrType::kCategorical, AttrRole::kMutable},
      {"T2", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(37);
  for (int i = 0; i < 8000; ++i) {
    const bool z = rng.NextBernoulli(0.5);
    const bool t1 = rng.NextBernoulli(z ? 0.7 : 0.3);
    const bool t2 = rng.NextBernoulli(0.5);
    const double o = (z ? 5.0 : 0.0) + (t1 ? 2.0 : 0.0) + (t2 ? 1.0 : 0.0) +
                     rng.NextGaussian(0.0, 1.0);
    ASSERT_TRUE(df.AppendRow({Value(z ? "hi" : "lo"),
                              Value(t1 ? "yes" : "no"),
                              Value(t2 ? "yes" : "no"), Value(o)})
                    .ok());
  }
  const CausalDag dag =
      CausalDag::Create({"Z", "T1", "T2", "O"},
                        {{"Z", "T1"}, {"Z", "O"}, {"T1", "O"}, {"T2", "O"}})
          .ValueOrDie();
  const auto est = CateEstimator::Create(&df, &dag);
  ASSERT_TRUE(est.ok());
  const size_t t1 = *df.schema().IndexOf("T1");
  const size_t t2 = *df.schema().IndexOf("T2");
  const Pattern both({Predicate(t1, CompareOp::kEq, Value("yes")),
                      Predicate(t2, CompareOp::kEq, Value("yes"))});
  const auto cate = est->Estimate(both, df.AllRows());
  ASSERT_TRUE(cate.ok()) << cate.status().ToString();
  // do(T1=yes, T2=yes) vs the mixed control population: the regression
  // contrast is between "both" and "not both", which averages over the
  // control's T1/T2 mix; expect between 1.5 and 3.
  EXPECT_GT(cate->cate, 1.2);
  EXPECT_LT(cate->cate, 3.2);
}

}  // namespace
}  // namespace faircap
