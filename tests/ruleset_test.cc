#include "core/ruleset.h"

#include <gtest/gtest.h>

namespace faircap {
namespace {

// Builds a rule over a 10-row universe covering [begin, end).
PrescriptionRule MakeRule(size_t begin, size_t end, double utility,
                          double utility_p, double utility_np,
                          const Bitmap& protected_mask) {
  PrescriptionRule rule;
  rule.coverage = Bitmap(protected_mask.size());
  for (size_t i = begin; i < end; ++i) rule.coverage.Set(i);
  rule.coverage_protected = rule.coverage & protected_mask;
  rule.support = rule.coverage.Count();
  rule.support_protected = rule.coverage_protected.Count();
  rule.utility = utility;
  rule.utility_protected = utility_p;
  rule.utility_nonprotected = utility_np;
  return rule;
}

// Protected rows: 0..4; non-protected: 5..9.
Bitmap ProtectedMask() {
  Bitmap mask(10);
  for (size_t i = 0; i < 5; ++i) mask.Set(i);
  return mask;
}

TEST(RulesetStatsTest, EmptyRuleset) {
  const Bitmap mask = ProtectedMask();
  const RulesetStats stats = ComputeRulesetStats({}, {}, mask);
  EXPECT_EQ(stats.num_rules, 0u);
  EXPECT_EQ(stats.covered, 0u);
  EXPECT_DOUBLE_EQ(stats.exp_utility, 0.0);
  EXPECT_DOUBLE_EQ(stats.exp_utility_protected, 0.0);
  EXPECT_DOUBLE_EQ(stats.unfairness, 0.0);
  EXPECT_EQ(stats.population, 10u);
  EXPECT_EQ(stats.population_protected, 5u);
}

TEST(RulesetStatsTest, SingleRuleFullCoverage) {
  const Bitmap mask = ProtectedMask();
  const std::vector<PrescriptionRule> rules = {
      MakeRule(0, 10, 100.0, 40.0, 120.0, mask)};
  const RulesetStats stats = ComputeRulesetStats(rules, mask);
  EXPECT_EQ(stats.num_rules, 1u);
  EXPECT_EQ(stats.covered, 10u);
  EXPECT_EQ(stats.covered_protected, 5u);
  EXPECT_DOUBLE_EQ(stats.coverage_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.coverage_protected_fraction, 1.0);
  // Eq. (5): 10 tuples * 100 / |D|=10.
  EXPECT_DOUBLE_EQ(stats.exp_utility, 100.0);
  // Protected tuples get utility_p; non-protected get utility_np.
  EXPECT_DOUBLE_EQ(stats.exp_utility_protected, 40.0);
  EXPECT_DOUBLE_EQ(stats.exp_utility_nonprotected, 120.0);
  EXPECT_DOUBLE_EQ(stats.unfairness, 80.0);
}

TEST(RulesetStatsTest, OverallUtilityNormalizedByPopulation) {
  // Rule covers half the rows: Eq. (5) divides by |D| not by coverage.
  const Bitmap mask = ProtectedMask();
  const std::vector<PrescriptionRule> rules = {
      MakeRule(0, 5, 100.0, 100.0, 100.0, mask)};
  const RulesetStats stats = ComputeRulesetStats(rules, mask);
  EXPECT_DOUBLE_EQ(stats.exp_utility, 50.0);  // 5 * 100 / 10
  // Protected normalization is by covered-protected count (all 5).
  EXPECT_DOUBLE_EQ(stats.exp_utility_protected, 100.0);
  // No non-protected tuples covered.
  EXPECT_DOUBLE_EQ(stats.exp_utility_nonprotected, 0.0);
}

TEST(RulesetStatsTest, OverlappingRulesMaxForOverallMinForProtected) {
  const Bitmap mask = ProtectedMask();
  // Two rules covering everything with different utilities.
  const std::vector<PrescriptionRule> rules = {
      MakeRule(0, 10, 100.0, 30.0, 110.0, mask),
      MakeRule(0, 10, 80.0, 60.0, 90.0, mask)};
  const RulesetStats stats = ComputeRulesetStats(rules, mask);
  // Overall: every tuple takes max(100, 80) = 100.
  EXPECT_DOUBLE_EQ(stats.exp_utility, 100.0);
  // Protected worst-case: min(30, 60) = 30.
  EXPECT_DOUBLE_EQ(stats.exp_utility_protected, 30.0);
  // Non-protected best-case: max(110, 90) = 110.
  EXPECT_DOUBLE_EQ(stats.exp_utility_nonprotected, 110.0);
  EXPECT_DOUBLE_EQ(stats.unfairness, 80.0);
}

TEST(RulesetStatsTest, DisjointRules) {
  const Bitmap mask = ProtectedMask();
  // One rule on protected half, one on non-protected half.
  const std::vector<PrescriptionRule> rules = {
      MakeRule(0, 5, 50.0, 50.0, 0.0, mask),
      MakeRule(5, 10, 70.0, 0.0, 70.0, mask)};
  const RulesetStats stats = ComputeRulesetStats(rules, mask);
  EXPECT_DOUBLE_EQ(stats.exp_utility, (5 * 50.0 + 5 * 70.0) / 10.0);
  EXPECT_DOUBLE_EQ(stats.exp_utility_protected, 50.0);
  EXPECT_DOUBLE_EQ(stats.exp_utility_nonprotected, 70.0);
  EXPECT_DOUBLE_EQ(stats.unfairness, 20.0);
}

TEST(RulesetStatsTest, SelectedSubsetOnly) {
  const Bitmap mask = ProtectedMask();
  const std::vector<PrescriptionRule> candidates = {
      MakeRule(0, 10, 100.0, 100.0, 100.0, mask),
      MakeRule(0, 10, 999.0, 999.0, 999.0, mask)};
  const RulesetStats stats = ComputeRulesetStats(candidates, {0}, mask);
  EXPECT_EQ(stats.num_rules, 1u);
  EXPECT_DOUBLE_EQ(stats.exp_utility, 100.0);
}

TEST(RulesetStatsTest, NegativeUnfairnessWhenProtectedDoBetter) {
  const Bitmap mask = ProtectedMask();
  const std::vector<PrescriptionRule> rules = {
      MakeRule(0, 10, 50.0, 80.0, 40.0, mask)};
  const RulesetStats stats = ComputeRulesetStats(rules, mask);
  EXPECT_DOUBLE_EQ(stats.unfairness, -40.0);
}

TEST(RulesetObjectiveTest, TradesSizeAgainstUtility) {
  RulesetStats small;
  small.num_rules = 1;
  small.exp_utility = 10.0;
  RulesetStats big;
  big.num_rules = 5;
  big.exp_utility = 12.0;
  // With a strong size penalty, the small set wins.
  EXPECT_GT(RulesetObjective(small, 10, 1.0, 1.0),
            RulesetObjective(big, 10, 1.0, 1.0));
  // With utility-only weighting, the big set wins.
  EXPECT_LT(RulesetObjective(small, 10, 0.0, 1.0),
            RulesetObjective(big, 10, 0.0, 1.0));
}

}  // namespace
}  // namespace faircap
