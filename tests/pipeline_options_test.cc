// Coverage for pipeline options not exercised elsewhere: keep-all-
// treatments candidate expansion, IPW as the pipeline estimator,
// discretized numeric grouping attributes feeding Apriori, and the
// DAG-pruning toggle.

#include <gtest/gtest.h>

#include "core/faircap.h"
#include "dataframe/discretize.h"
#include "mining/apriori.h"
#include "test_data.h"

namespace faircap {
namespace {

TEST(PipelineOptionsTest, KeepAllTreatmentsYieldsMoreCandidates) {
  const ToyData data = MakeToyData(3000);
  FairCapOptions best_only;
  best_only.apriori.min_support_fraction = 0.3;
  best_only.lattice.max_predicates = 1;
  best_only.num_threads = 1;
  FairCapOptions keep_all = best_only;
  keep_all.keep_all_treatments = true;

  auto solver_best =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, best_only);
  auto solver_all =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, keep_all);
  ASSERT_TRUE(solver_best.ok() && solver_all.ok());
  const auto groups = solver_best->MineGroupingPatterns();
  ASSERT_TRUE(groups.ok());
  const auto cand_best = solver_best->MineCandidateRules(*groups);
  const auto cand_all = solver_all->MineCandidateRules(*groups);
  ASSERT_TRUE(cand_best.ok() && cand_all.ok());
  EXPECT_GT(cand_all->size(), cand_best->size());
  // Best-only: at most one rule per grouping pattern.
  EXPECT_LE(cand_best->size(), groups->size());
}

TEST(PipelineOptionsTest, IpwEstimatorRunsThroughPipeline) {
  const ToyData data = MakeToyData(3000);
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.3;
  options.lattice.max_predicates = 1;
  options.num_threads = 1;
  options.cate.method = CateMethod::kIpw;
  const auto result =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options)
          ->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rules.empty());
  // The planted T1=b effect (~8.4 overall) should be visible via IPW too.
  EXPECT_GT(result->stats.exp_utility, 3.0);
}

TEST(PipelineOptionsTest, DiscretizedNumericGroupingAttribute) {
  // Numeric immutable attribute -> discretize -> it participates in
  // grouping patterns.
  auto schema = Schema::Create({
      {"age", AttrType::kNumeric, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame raw = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    const double age = rng.NextUniform(20.0, 60.0);
    const bool t = rng.NextBernoulli(0.5);
    const double o = age * 0.1 + (t ? 5.0 : 0.0) + rng.NextGaussian();
    ASSERT_TRUE(raw.AppendRow({Value(age), Value(t ? "1" : "0"), Value(o)})
                    .ok());
  }
  const auto binned_result = DiscretizeColumn(raw, "age");
  ASSERT_TRUE(binned_result.ok());
  const DataFrame df = std::move(binned_result).ValueOrDie();
  const CausalDag dag =
      CausalDag::Create({"age", "T", "O"}, {{"age", "O"}, {"T", "O"}})
          .ValueOrDie();
  const size_t t_attr = *df.schema().IndexOf("T");
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.2;
  options.lattice.max_predicates = 1;
  options.num_threads = 1;
  auto solver = FairCap::Create(
      &df, &dag, Pattern({Predicate(t_attr, CompareOp::kEq, Value("0"))}),
      options);
  ASSERT_TRUE(solver.ok());
  const auto groups = solver->MineGroupingPatterns();
  ASSERT_TRUE(groups.ok());
  bool age_pattern_found = false;
  const size_t age_attr = *df.schema().IndexOf("age");
  for (const auto& g : *groups) {
    if (g.pattern.ConstrainsAttr(age_attr)) age_pattern_found = true;
  }
  EXPECT_TRUE(age_pattern_found);
}

TEST(PipelineOptionsTest, DagPruningToggle) {
  // A mutable attribute disconnected from the outcome is pruned when the
  // toggle is on and kept when off.
  auto schema = Schema::Create({
      {"G", AttrType::kCategorical, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"Noise", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(df.AppendRow({Value("g"), Value(rng.NextBernoulli(0.5) ? "1" : "0"),
                              Value(rng.NextBernoulli(0.5) ? "a" : "b"),
                              Value(rng.NextGaussian())})
                    .ok());
  }
  const CausalDag dag =
      CausalDag::Create({"G", "T", "Noise", "O"}, {{"T", "O"}, {"G", "O"}})
          .ValueOrDie();
  const size_t g = *df.schema().IndexOf("G");
  const Pattern protected_pattern(
      {Predicate(g, CompareOp::kEq, Value("g"))});

  FairCapOptions pruned;
  pruned.num_threads = 1;
  FairCapOptions unpruned = pruned;
  unpruned.prune_non_causal_attrs = false;

  const auto s1 = FairCap::Create(&df, &dag, protected_pattern, pruned);
  const auto s2 = FairCap::Create(&df, &dag, protected_pattern, unpruned);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(s1->mutable_attrs().size(), 1u);  // only T
  EXPECT_EQ(s2->mutable_attrs().size(), 2u);  // T and Noise
}

TEST(PipelineOptionsTest, EngineMemoryBudgetIsAppliedAndObservable) {
  const ToyData data = MakeToyData(3000);
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.3;
  options.lattice.max_predicates = 1;
  options.num_threads = 1;
  // A budget far below any engine's footprint: every treatment evaluation
  // past the first must evict the previous engine, and the stats the CLI
  // prints must make that misconfiguration visible.
  options.engine_memory_budget = 1;

  auto solver =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
  ASSERT_TRUE(solver.ok());
  const auto result = solver->Run();
  ASSERT_TRUE(result.ok());
  const auto stats = solver->estimator().GetEngineStats();
  EXPECT_LE(stats.engines, 1u);
  EXPECT_GT(stats.misses, 1u);
  EXPECT_GT(stats.evictions, 0u);

  // Unbudgeted control: same pipeline, same ruleset, no evictions.
  options.engine_memory_budget = 0;
  auto unbudgeted =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
  ASSERT_TRUE(unbudgeted.ok());
  const auto unbudgeted_result = unbudgeted->Run();
  ASSERT_TRUE(unbudgeted_result.ok());
  EXPECT_EQ(unbudgeted->estimator().GetEngineStats().evictions, 0u);
  ASSERT_EQ(result->rules.size(), unbudgeted_result->rules.size());
  for (size_t i = 0; i < result->rules.size(); ++i) {
    EXPECT_TRUE(result->rules[i].intervention ==
                unbudgeted_result->rules[i].intervention);
    EXPECT_EQ(result->rules[i].utility, unbudgeted_result->rules[i].utility);
  }
}

}  // namespace
}  // namespace faircap
