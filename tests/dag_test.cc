#include "causal/dag.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace faircap {
namespace {

CausalDag Diamond() {
  // a -> b -> d, a -> c -> d
  return CausalDag::Create({"a", "b", "c", "d"},
                           {{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}})
      .ValueOrDie();
}

TEST(DagTest, CreateBasics) {
  const CausalDag dag = Diamond();
  EXPECT_EQ(dag.num_nodes(), 4u);
  EXPECT_EQ(dag.num_edges(), 4u);
  EXPECT_TRUE(dag.HasEdge(0, 1));
  EXPECT_FALSE(dag.HasEdge(1, 0));
  EXPECT_EQ(*dag.IndexOf("c"), 2u);
  EXPECT_FALSE(dag.IndexOf("zzz").ok());
}

TEST(DagTest, ParentsAndChildren) {
  const CausalDag dag = Diamond();
  const size_t d = *dag.IndexOf("d");
  EXPECT_EQ(dag.Parents(d).size(), 2u);
  EXPECT_EQ(dag.Children(*dag.IndexOf("a")).size(), 2u);
  EXPECT_TRUE(dag.Parents(*dag.IndexOf("a")).empty());
}

TEST(DagTest, RejectsCycles) {
  auto dag = CausalDag::Create({"a", "b"}, {{"a", "b"}, {"b", "a"}});
  EXPECT_EQ(dag.status().code(), StatusCode::kInvalidArgument);
}

TEST(DagTest, RejectsSelfLoop) {
  auto dag = CausalDag::Create({"a"}, {{"a", "a"}});
  EXPECT_EQ(dag.status().code(), StatusCode::kInvalidArgument);
}

TEST(DagTest, RejectsDuplicateEdgeAndUnknownNode) {
  auto dup = CausalDag::Create({"a", "b"}, {{"a", "b"}, {"a", "b"}});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  auto unknown = CausalDag::Create({"a"}, {{"a", "b"}});
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(DagTest, RejectsDuplicateNodeName) {
  auto dag = CausalDag::Create({"a", "a"}, {});
  EXPECT_EQ(dag.status().code(), StatusCode::kAlreadyExists);
}

TEST(DagTest, AddRemoveEdge) {
  CausalDag dag = Diamond();
  EXPECT_TRUE(dag.AddEdge("a", "d").ok());
  EXPECT_EQ(dag.num_edges(), 5u);
  // d -> a would close a cycle.
  EXPECT_FALSE(dag.AddEdge("d", "a").ok());
  EXPECT_TRUE(dag.RemoveEdge("a", "d").ok());
  EXPECT_FALSE(dag.RemoveEdge("a", "d").ok());
  EXPECT_EQ(dag.num_edges(), 4u);
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  const CausalDag dag = Diamond();
  const auto order = dag.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  std::vector<size_t> position(4);
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (size_t u = 0; u < 4; ++u) {
    for (size_t v : dag.Children(u)) {
      EXPECT_LT(position[u], position[v]);
    }
  }
}

TEST(DagTest, AncestorsAndDescendants) {
  const CausalDag dag = Diamond();
  const auto anc = dag.Ancestors(*dag.IndexOf("d"));
  EXPECT_EQ(anc.size(), 3u);
  const auto desc = dag.Descendants(*dag.IndexOf("a"));
  EXPECT_EQ(desc.size(), 3u);
  EXPECT_TRUE(dag.Ancestors(*dag.IndexOf("a")).empty());
  EXPECT_TRUE(dag.Descendants(*dag.IndexOf("d")).empty());
}

TEST(DagTest, DirectedPath) {
  const CausalDag dag = Diamond();
  EXPECT_TRUE(dag.HasDirectedPath(*dag.IndexOf("a"), *dag.IndexOf("d")));
  EXPECT_FALSE(dag.HasDirectedPath(*dag.IndexOf("b"), *dag.IndexOf("c")));
  EXPECT_FALSE(dag.HasDirectedPath(*dag.IndexOf("d"), *dag.IndexOf("a")));
}

TEST(DagTest, ToStringListsEdges) {
  const CausalDag dag =
      CausalDag::Create({"x", "y"}, {{"x", "y"}}).ValueOrDie();
  EXPECT_EQ(dag.ToString(), "x -> y");
}

}  // namespace
}  // namespace faircap
