// TaskScheduler correctness under stress: randomized nested task graphs
// (groups within groups, uneven task costs, tasks spawning into their
// own group), exception propagation out of Wait() across nesting levels,
// help-first waiting (an external thread's Wait executes tasks instead
// of blocking), and inline degradation with a null scheduler. These run
// under the TSan CI job — the scheduler is the one component every
// parallel phase of the pipeline now shares.

#include "util/task_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/random.h"

namespace faircap {
namespace {

TEST(TaskSchedulerTest, ParallelForCoversAllIndicesOnce) {
  TaskScheduler scheduler(4);
  std::vector<std::atomic<int>> hits(5000);
  scheduler.ParallelFor(5000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskSchedulerTest, NullSchedulerGroupRunsInline) {
  TaskGroup group(nullptr);
  int count = 0;
  group.Submit([&] { ++count; });
  EXPECT_EQ(count, 1);  // ran before Submit returned
  group.ParallelFor(10, [&](size_t) { ++count; });
  group.Wait();
  EXPECT_EQ(count, 11);
}

TEST(TaskSchedulerTest, UnevenTaskCostsAllComplete) {
  // One task 100x the cost of the rest: stealing must spread the small
  // ones across the remaining workers instead of queueing them behind
  // the big one.
  TaskScheduler scheduler(4);
  std::atomic<uint64_t> total{0};
  scheduler.ParallelFor(64, [&](size_t i) {
    const size_t spins = (i == 0) ? 2000000 : 20000;
    uint64_t x = i + 1;
    for (size_t k = 0; k < spins; ++k) x = x * 2862933555777941757ULL + 3037;
    total.fetch_add(x | 1);
  });
  EXPECT_NE(total.load(), 0u);
}

TEST(TaskSchedulerTest, ExceptionPropagatesFromWait) {
  TaskScheduler scheduler(2);
  TaskGroup group(&scheduler);
  for (int i = 0; i < 8; ++i) {
    group.Submit([i] {
      if (i == 5) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // The group is reusable after the error was delivered.
  std::atomic<int> ran{0};
  group.Submit([&] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskSchedulerTest, ExceptionCrossesNestingLevels) {
  // A throw three levels down must surface at the outermost Wait: each
  // level's ParallelFor rethrows into its parent task, whose scheduler
  // frame captures it for the next level up.
  TaskScheduler scheduler(4);
  auto nested = [&](auto&& self, size_t depth) -> void {
    TaskGroup group(&scheduler);
    group.ParallelFor(4, [&](size_t i) {
      if (depth == 0) {
        if (i == 3) throw std::runtime_error("deep failure");
        return;
      }
      self(self, depth - 1);
    });
  };
  // ParallelFor waits internally and rethrows.
  EXPECT_THROW(nested(nested, 2), std::runtime_error);
}

TEST(TaskSchedulerTest, ExternalWaitHelpsInsteadOfBlocking) {
  // A scheduler whose single worker is pinned by a long task: the
  // external thread's Wait must execute the remaining tasks itself.
  TaskScheduler scheduler(1);
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  TaskGroup pinned(&scheduler);
  pinned.Submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  TaskGroup group(&scheduler);
  for (int i = 0; i < 4; ++i) {
    group.Submit([&] { done.fetch_add(1); });
  }
  group.Wait();  // worker is busy: these four ran on this thread
  EXPECT_EQ(done.load(), 4);
  release.store(true);
  pinned.Wait();
  const TaskScheduler::Stats stats = scheduler.GetStats();
  EXPECT_GE(stats.helped, 4u);
}

TEST(TaskSchedulerTest, TasksCanSpawnIntoTheirOwnGroup) {
  TaskScheduler scheduler(2);
  TaskGroup group(&scheduler);
  std::atomic<int> count{0};
  std::function<void(int)> spawn = [&](int depth) {
    count.fetch_add(1);
    if (depth > 0) {
      group.Submit([&, depth] { spawn(depth - 1); });
      group.Submit([&, depth] { spawn(depth - 1); });
    }
  };
  group.Submit([&] { spawn(4); });
  group.Wait();
  EXPECT_EQ(count.load(), 31);  // 2^5 - 1 nodes of the binary spawn tree
}

// Randomized nested task graphs: arbitrary fan-out, nesting depth, and
// spin costs, across several seeds and worker counts. Every node must
// execute exactly once and the total must be deterministic in the graph
// (not the schedule).
TEST(TaskSchedulerTest, RandomizedNestedGraphsExecuteEveryNodeOnce) {
  for (const uint64_t seed : {7u, 19u, 83u}) {
    for (const size_t workers : {1u, 2u, 5u}) {
      TaskScheduler scheduler(workers);
      std::atomic<uint64_t> nodes{0};
      // Deterministic node budget per (seed): derive each subtree's
      // shape from its own Rng so the expected count is computable by a
      // sequential replay.
      std::function<uint64_t(uint64_t, size_t)> expect_nodes =
          [&](uint64_t node_seed, size_t depth) -> uint64_t {
        Rng rng(node_seed);
        uint64_t expected = 1;
        if (depth == 0) return expected;
        const size_t fanout = 1 + rng.NextBounded(4);
        for (size_t i = 0; i < fanout; ++i) {
          expected += expect_nodes(node_seed * 31 + i + 1, depth - 1);
        }
        return expected;
      };
      std::function<void(uint64_t, size_t)> run = [&](uint64_t node_seed,
                                                      size_t depth) {
        nodes.fetch_add(1);
        Rng rng(node_seed);
        if (depth == 0) return;
        const size_t fanout = 1 + rng.NextBounded(4);
        // Uneven spin before fanning out.
        uint64_t x = node_seed | 1;
        const size_t spins = 100 * (1 + rng.NextBounded(50));
        for (size_t k = 0; k < spins; ++k) {
          x = x * 2862933555777941757ULL + 3037;
        }
        if (x == 0) return;  // never taken; defeats dead-code elimination
        TaskGroup group(&scheduler);
        for (size_t i = 0; i < fanout; ++i) {
          group.Submit(
              [&, i, node_seed] { run(node_seed * 31 + i + 1, depth - 1); });
        }
        group.Wait();
      };
      run(seed, 4);
      EXPECT_EQ(nodes.load(), expect_nodes(seed, 4))
          << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(TaskSchedulerTest, StatsCountSubmittedAndExecuted) {
  TaskScheduler scheduler(2);
  scheduler.ParallelFor(100, [](size_t) {});
  const TaskScheduler::Stats stats = scheduler.GetStats();
  EXPECT_GT(stats.submitted, 0u);
  EXPECT_EQ(stats.submitted, stats.executed);
}

}  // namespace
}  // namespace faircap
