// Thread-safety analysis NEGATIVE fixture: reads and writes a GUARDED_BY
// field without holding its mutex, and calls a REQUIRES helper unlocked.
// Compiled at configure time by cmake/ThreadSafety.cmake under
// -Wthread-safety -Werror=thread-safety; it MUST FAIL to compile. If it
// ever builds, the analysis is not firing and the configure step aborts.

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // guarded-field write without mu_ — the analysis must flag
  }

  int GetLocked() const REQUIRES(mu_) { return value_; }

  int Get() const {
    return GetLocked();  // REQUIRES helper called without the lock
  }

 private:
  mutable faircap::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get();
}
