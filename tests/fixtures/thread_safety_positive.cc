// Thread-safety analysis POSITIVE fixture: correctly locked code using
// the full annotated sync vocabulary. Compiled at configure time by
// cmake/ThreadSafety.cmake under -Wthread-safety -Werror=thread-safety;
// it must build cleanly, proving the macros and wrappers are well-formed
// before the same flags are applied to the whole tree.

#include <deque>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace {

class Queue {
 public:
  void Push(int v) {
    faircap::MutexLock lock(mu_);
    items_.push_back(v);
    nonempty_.NotifyOne();
  }

  int BlockingPop() {
    faircap::MutexLock lock(mu_);
    while (items_.empty()) nonempty_.Wait(mu_);
    const int v = items_.front();
    items_.pop_front();
    return v;
  }

  bool TryPop(int* out) {
    if (!mu_.TryLock()) return false;
    bool ok = false;
    if (!items_.empty()) {
      *out = items_.front();
      items_.pop_front();
      ok = true;
    }
    mu_.Unlock();
    return ok;
  }

  size_t SizeLocked() const REQUIRES(mu_) { return items_.size(); }

  size_t Size() const {
    faircap::MutexLock lock(mu_);
    return SizeLocked();
  }

 private:
  mutable faircap::Mutex mu_;
  faircap::CondVar nonempty_;
  std::deque<int> items_ GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Queue q;
  q.Push(1);
  int v = 0;
  if (!q.TryPop(&v)) v = q.BlockingPop();
  return v == 1 && q.Size() == 0 ? 0 : 1;
}
