#include "causal/linear_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace faircap {
namespace {

TEST(SolveSpdTest, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] => x = [1.5, 2].
  const auto x = SolveSpd({4, 2, 2, 3}, 2, {10, 9});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.5, 1e-10);
  EXPECT_NEAR((*x)[1], 2.0, 1e-10);
}

TEST(SolveSpdTest, RejectsNonPositiveDefinite) {
  const auto x = SolveSpd({1, 2, 2, 1}, 2, {1, 1});
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SolveSpdTest, RejectsDimensionMismatch) {
  EXPECT_EQ(SolveSpd({1, 0, 0, 1}, 2, {1}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(InvertSpdTest, InverseTimesMatrixIsIdentity) {
  const std::vector<double> a = {4, 1, 1, 3};
  const auto inv = InvertSpd(a, 2);
  ASSERT_TRUE(inv.ok());
  // A * A^-1 = I.
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < 2; ++k) {
        sum += a[i * 2 + k] * (*inv)[k * 2 + j];
      }
      EXPECT_NEAR(sum, i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(OlsTest, RecoversExactLinearModel) {
  // y = 3 + 2*x, no noise.
  OlsAccumulator acc(2);
  for (double x = 0; x < 10; x += 1) {
    const double row[2] = {1.0, x};
    acc.AddRow(row, 3.0 + 2.0 * x);
  }
  const auto fit = acc.Solve(0.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->beta[0], 3.0, 1e-8);
  EXPECT_NEAR(fit->beta[1], 2.0, 1e-8);
  EXPECT_NEAR(fit->sigma2, 0.0, 1e-8);
}

TEST(OlsTest, RecoversNoisyModelWithinTolerance) {
  Rng rng(77);
  OlsAccumulator acc(3);
  for (int i = 0; i < 20000; ++i) {
    const double x1 = rng.NextGaussian();
    const double x2 = rng.NextGaussian();
    const double row[3] = {1.0, x1, x2};
    acc.AddRow(row, 1.0 - 4.0 * x1 + 0.5 * x2 + rng.NextGaussian(0.0, 0.3));
  }
  const auto fit = acc.Solve();
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->beta[0], 1.0, 0.02);
  EXPECT_NEAR(fit->beta[1], -4.0, 0.02);
  EXPECT_NEAR(fit->beta[2], 0.5, 0.02);
  EXPECT_NEAR(fit->sigma2, 0.09, 0.01);
  // Standard errors ~ 0.3 / sqrt(n).
  EXPECT_NEAR(fit->std_errors[1], 0.3 / std::sqrt(20000.0), 5e-4);
}

TEST(OlsTest, UnderdeterminedRejected) {
  OlsAccumulator acc(3);
  const double row[3] = {1.0, 2.0, 3.0};
  acc.AddRow(row, 1.0);
  EXPECT_EQ(acc.Solve().status().code(), StatusCode::kFailedPrecondition);
}

TEST(OlsTest, CollinearFeaturesNeedRidge) {
  // Exactly singular SPD system (rank 1) is rejected without ridge; the
  // OLS accumulator's equivalent collinear design solves once ridged.
  EXPECT_FALSE(SolveSpd({1, 2, 2, 4}, 2, {1, 2}).ok());
  OlsAccumulator acc(2);
  for (int i = 0; i < 10; ++i) {
    const double row[2] = {1.0, 1.0};  // perfectly collinear with intercept
    acc.AddRow(row, 2.0);
  }
  const auto fit = acc.Solve(1e-6);
  ASSERT_TRUE(fit.ok());
  // beta0 + beta1 ~ 2 under the ridge-regularized solution.
  EXPECT_NEAR(fit->beta[0] + fit->beta[1], 2.0, 1e-3);
}

}  // namespace
}  // namespace faircap
