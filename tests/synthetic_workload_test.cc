// Synthetic scale-workload generator tests: schema shape and knob
// semantics (protected prevalence, skew, planted positive effects,
// attenuation), determinism, and the 100k-row end-to-end FairCap pipeline
// on a streamed, warm-started, budget-capped table.

#include "ingest/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/faircap.h"
#include "dataframe/predicate_index.h"
#include "ingest/chunked_csv_reader.h"

namespace faircap {
namespace {

TEST(SyntheticWorkloadTest, SchemaShapeFollowsConfig) {
  SyntheticConfig config;
  config.num_rows = 500;
  config.num_immutable = 4;
  config.num_mutable = 2;
  config.categories_per_attr = 5;
  const auto data = MakeSynthetic(config);
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  const Schema& schema = data->df.schema();
  // Group + I1..I4 + M1..M2 + Outcome.
  EXPECT_EQ(schema.num_attributes(), 8u);
  EXPECT_EQ(schema.IndicesWithRole(AttrRole::kImmutable).size(), 5u);
  EXPECT_EQ(schema.IndicesWithRole(AttrRole::kMutable).size(), 2u);
  EXPECT_TRUE(schema.OutcomeIndex().ok());
  EXPECT_EQ(data->df.num_rows(), 500u);
  EXPECT_EQ(data->dag.num_nodes(), 8u);

  // Mutable attributes carry the configured cardinality.
  for (const size_t attr : schema.IndicesWithRole(AttrRole::kMutable)) {
    EXPECT_EQ(data->df.column(attr).num_categories(), 5u);
  }
}

TEST(SyntheticWorkloadTest, ProtectedFractionIsRespected) {
  for (const double fraction : {0.1, 0.35}) {
    SyntheticConfig config;
    config.num_rows = 4000;
    config.seed = 11;
    config.protected_fraction = fraction;
    const auto data = MakeSynthetic(config);
    ASSERT_TRUE(data.ok());
    const double observed =
        static_cast<double>(
            data->protected_pattern.Evaluate(data->df).Count()) /
        static_cast<double>(data->df.num_rows());
    EXPECT_NEAR(observed, fraction, 0.04) << "fraction " << fraction;
  }
}

TEST(SyntheticWorkloadTest, DeterministicForFixedSeed) {
  SyntheticConfig config;
  config.num_rows = 300;
  config.seed = 77;
  const auto a = MakeSynthetic(config);
  const auto b = MakeSynthetic(config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->df.num_rows(), b->df.num_rows());
  for (size_t c = 0; c < a->df.num_columns(); ++c) {
    for (size_t r = 0; r < a->df.num_rows(); ++r) {
      ASSERT_EQ(a->df.GetValue(r, c), b->df.GetValue(r, c))
          << "col " << c << " row " << r;
    }
  }

  config.seed = 78;
  const auto c = MakeSynthetic(config);
  ASSERT_TRUE(c.ok());
  size_t differing = 0;
  for (size_t r = 0; r < c->df.num_rows(); ++r) {
    differing += (a->df.GetValue(r, 0) != c->df.GetValue(r, 0));
  }
  EXPECT_GT(differing, 0u);  // a different seed draws different rows
}

// The planted treatment effects are positive and attenuated for the
// protected group: mean outcome at the top level of the last mutable
// attribute (the strongest effect) beats level 0, and the protected
// group's gap is smaller.
TEST(SyntheticWorkloadTest, PlantedEffectsAndAttenuation) {
  SyntheticConfig config;
  config.num_rows = 30000;
  config.seed = 9;
  config.protected_attenuation = 0.3;
  const auto data = MakeSynthetic(config);
  ASSERT_TRUE(data.ok());
  const Schema& schema = data->df.schema();
  const size_t outcome = schema.OutcomeIndex().ValueOrDie();
  const size_t m_last = schema.IndexOf("M3").ValueOrDie();
  const size_t cats = config.categories_per_attr;

  const Bitmap protected_mask = data->protected_pattern.Evaluate(data->df);
  auto mean_gap = [&](const Bitmap& group) {
    // Levels by name: dictionary codes follow first appearance, not
    // level order.
    const Predicate top(m_last, CompareOp::kEq,
                        Value("level_" + std::to_string(cats - 1)));
    const Predicate bottom(m_last, CompareOp::kEq, Value("level_0"));
    const double top_mean =
        data->df.Mean(outcome, top.Evaluate(data->df) & group);
    const double bottom_mean =
        data->df.Mean(outcome, bottom.Evaluate(data->df) & group);
    return top_mean - bottom_mean;
  };

  Bitmap nonprotected = data->df.AllRows();
  nonprotected.AndNot(protected_mask);
  const double gap_nonprotected = mean_gap(nonprotected);
  const double gap_protected = mean_gap(protected_mask);
  EXPECT_GT(gap_nonprotected, 0.0);
  EXPECT_GT(gap_protected, 0.0);
  EXPECT_LT(gap_protected, 0.7 * gap_nonprotected);
}

TEST(SyntheticWorkloadTest, ConfigValidation) {
  SyntheticConfig config;
  config.num_rows = 0;
  EXPECT_FALSE(MakeSynthetic(config).ok());
  config = {};
  config.categories_per_attr = 1;
  EXPECT_FALSE(MakeSynthetic(config).ok());
  config = {};
  config.num_mutable = 0;
  EXPECT_FALSE(MakeSynthetic(config).ok());
  config = {};
  config.protected_fraction = 0.0;
  EXPECT_FALSE(MakeSynthetic(config).ok());
  config = {};
  config.group_skew = 1.5;
  EXPECT_FALSE(MakeSynthetic(config).ok());
}

// End-to-end at scale: generate 100k rows, round-trip through the
// streaming columnar ingest (warm index), cap the index memory budget,
// and run the full FairCap pipeline. The planted positive effects must
// surface as at least one prescription rule.
TEST(SyntheticWorkloadTest, EndToEndPipelineOn100kRows) {
  SyntheticConfig config;
  config.num_rows = 100000;
  config.seed = 4;
  const auto data = MakeSynthetic(config);
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  const std::string path = testing::TempDir() + "/faircap_e2e_100k.csv";
  ASSERT_TRUE(WriteCsv(data->df, path).ok());
  IngestStats stats;
  auto streamed = StreamCsv(path, data->df.schema(), IngestOptions(), &stats);
  std::remove(path.c_str());
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_EQ(streamed->num_rows(), config.num_rows);
  EXPECT_GT(stats.warm_atom_masks, 0u);

  DataFrame df = std::move(streamed).ValueOrDie();
  df.predicate_index().SetMemoryBudget(4u << 20);  // 4 MiB conjunction cap

  FairCapOptions options;
  options.apriori.min_support_fraction = 0.3;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 1;
  options.num_threads = 2;
  auto solver =
      FairCap::Create(&df, &data->dag, data->protected_pattern, options);
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  const auto result = solver->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(result->num_grouping_patterns, 0u);
  EXPECT_FALSE(result->rules.empty());
  for (const auto& rule : result->rules) {
    EXPECT_GT(rule.utility, 0.0);
    EXPECT_GT(rule.support, 0u);
  }
  // The warm-started index did real work and stayed within budget.
  const auto index_stats = df.predicate_index().GetStats();
  EXPECT_GT(index_stats.hits, 0u);
  EXPECT_LE(index_stats.conjunction_bytes, 4u << 20);
}

}  // namespace
}  // namespace faircap
