// Runtime behavior of the annotated sync layer (util/sync.h) — the
// compile-time side (the analysis firing on Clang) is proven by the
// configure-time fixture self-check in cmake/ThreadSafety.cmake:
// tests/fixtures/thread_safety_negative.cc must FAIL to compile and
// tests/fixtures/thread_safety_positive.cc must pass, or configuration
// aborts. Here we pin the wrapper semantics the whole codebase now
// leans on: Mutex exclusion, MutexLock early release, CondVar wait /
// notify through the adopt-lock bridge, and WaitFor timeout behavior.

#include "util/sync.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/thread_annotations.h"

namespace faircap {
namespace {

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;  // guarded by mu by convention (local test state)
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhenHeldAndSucceedsWhenFree) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> locked{true};
  std::thread other([&] {
    // try_lock from another thread while held must fail...
    EXPECT_FALSE(mu.TryLock());
    locked.store(false);
  });
  other.join();
  EXPECT_FALSE(locked.load());
  mu.Unlock();
  // ...and succeed once released.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, ReleaseUnlocksEarly) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.Release();
    // The mutex must be free now, well before scope end.
    EXPECT_TRUE(mu.TryLock());
    mu.Unlock();
  }
  // Destructor after Release() must not double-unlock (UB would likely
  // abort or corrupt); acquiring again proves the mutex is healthy.
  MutexLock lock(mu);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  });
  {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  }
  waiter.join();
}

TEST(CondVarTest, WaitReacquiresTheMutex) {
  // After Wait returns, the caller must hold the mutex again: two waiters
  // mutating shared state inside their wait loops never race.
  Mutex mu;
  CondVar cv;
  int phase = 0;
  int observed_inside_wait_loop = 0;
  std::vector<std::thread> waiters;
  for (int t = 0; t < 4; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (phase == 0) cv.Wait(mu);
      // If Wait failed to re-lock, these increments would race.
      ++observed_inside_wait_loop;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    MutexLock lock(mu);
    phase = 1;
    cv.NotifyAll();
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(observed_inside_wait_loop, 4);
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto start = std::chrono::steady_clock::now();
  const std::cv_status status =
      cv.WaitFor(mu, std::chrono::milliseconds(5));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(status, std::cv_status::timeout);
  EXPECT_GE(elapsed, std::chrono::milliseconds(4));
}

TEST(CondVarTest, WaitForWakesBeforeTimeoutOnNotify) {
  Mutex mu;
  CondVar cv;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    MutexLock lock(mu);
    // Generous timeout: the notify below should arrive long before it.
    cv.WaitFor(mu, std::chrono::seconds(30));
    woke.store(true);
  });
  // Nudge until the waiter is actually inside WaitFor (spurious-wakeup
  // tolerant: notifying repeatedly is harmless).
  while (!woke.load()) {
    cv.NotifyAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  waiter.join();
  EXPECT_TRUE(woke.load());
}

// The annotation macros must be compilable in every position the
// codebase uses them, under Clang AND GCC (where they expand to
// nothing). This class is the vocabulary check; it needs no runtime
// assertions beyond construction.
class AnnotatedVocabulary {
 public:
  void Locked() REQUIRES(mu_) { ++value_; }
  void Excluded() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    Locked();
  }
  void Acquire() ACQUIRE(mu_) { mu_.Lock(); }
  void Release() RELEASE(mu_) { mu_.Unlock(); }
  bool TryAcquire() TRY_ACQUIRE(true, mu_) { return mu_.TryLock(); }
  int Unsafe() NO_THREAD_SAFETY_ANALYSIS { return value_; }

 private:
  Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotationsTest, VocabularyCompilesAndRuns) {
  AnnotatedVocabulary v;
  v.Excluded();
  v.Acquire();
  v.Locked();
  v.Release();
  ASSERT_TRUE(v.TryAcquire());
  v.Locked();
  v.Release();
  EXPECT_EQ(v.Unsafe(), 3);
}

}  // namespace
}  // namespace faircap
