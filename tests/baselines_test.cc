#include <gtest/gtest.h>

#include <cmath>

#include "baselines/adapters.h"
#include "baselines/brute_force.h"
#include "baselines/causumx.h"
#include "baselines/frl.h"
#include "baselines/ids.h"
#include "test_data.h"

namespace faircap {
namespace {

TEST(IdsTest, LearnsConfidentRules) {
  const ToyData data = MakeToyData(3000);
  IdsOptions options;
  options.apriori.min_support_fraction = 0.1;
  options.apriori.max_pattern_length = 2;
  const auto rules = FitIds(data.df, options);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_FALSE(rules->empty());
  for (const auto& rule : *rules) {
    EXPECT_GE(rule.confidence, options.min_confidence);
    EXPECT_EQ(rule.support, rule.coverage.Count());
    EXPECT_LE(rule.antecedent.size(), 2u);
  }
}

TEST(IdsTest, RespectsMaxRules) {
  const ToyData data = MakeToyData(2000);
  IdsOptions options;
  options.max_rules = 3;
  const auto rules = FitIds(data.df, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_LE(rules->size(), 3u);
}

TEST(IdsTest, FindsThePlantedAssociation) {
  // T1=b raises the outcome strongly, so some rule should reference it.
  const ToyData data = MakeToyData(3000);
  IdsOptions options;
  options.apriori.min_support_fraction = 0.1;
  const auto rules = FitIds(data.df, options);
  ASSERT_TRUE(rules.ok());
  bool references_t1 = false;
  const size_t t1 = *data.df.schema().IndexOf("T1");
  for (const auto& rule : *rules) {
    if (rule.antecedent.ConstrainsAttr(t1)) references_t1 = true;
  }
  EXPECT_TRUE(references_t1);
}

TEST(FrlTest, ProbabilitiesAreFalling) {
  const ToyData data = MakeToyData(3000);
  FrlOptions options;
  options.apriori.min_support_fraction = 0.1;
  const auto list = FitFrl(data.df, options);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  ASSERT_FALSE(list->empty());
  for (size_t i = 1; i < list->size(); ++i) {
    EXPECT_LE((*list)[i].probability, (*list)[i - 1].probability);
  }
}

TEST(FrlTest, FirstRuleHasHighestProbability) {
  const ToyData data = MakeToyData(3000);
  const auto list = FitFrl(data.df);
  ASSERT_TRUE(list.ok());
  ASSERT_FALSE(list->empty());
  // Top rule should beat the base rate.
  const size_t o = *data.df.schema().IndexOf("O");
  const double mean = data.df.Mean(o);
  size_t above = 0;
  const Column& col = data.df.column(o);
  for (size_t r = 0; r < data.df.num_rows(); ++r) {
    if (col.numeric(r) >= mean) ++above;
  }
  const double base_rate =
      static_cast<double>(above) / static_cast<double>(data.df.num_rows());
  EXPECT_GT((*list)[0].probability, base_rate);
}

TEST(FrlTest, MinNewCoverageRespected) {
  const ToyData data = MakeToyData(3000);
  FrlOptions options;
  options.min_new_coverage = 200;
  const auto list = FitFrl(data.df, options);
  ASSERT_TRUE(list.ok());
  for (const auto& rule : *list) {
    EXPECT_GE(rule.support, 200u);
  }
}

TEST(CauSumXTest, MatchesUnconstrainedFairCapBehaviour) {
  const ToyData data = MakeToyData(4000);
  CauSumXOptions options;
  options.apriori.min_support_fraction = 0.2;
  options.lattice.max_predicates = 1;
  options.num_threads = 1;
  options.coverage_theta = 0.5;
  const auto result =
      RunCauSumX(&data.df, &data.dag, data.protected_pattern, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rules.empty());
  // No fairness: picks the unfair high-utility treatment.
  EXPECT_GT(result->stats.unfairness, 4.0);
  EXPECT_GE(result->stats.coverage_fraction, 0.5);
}

TEST(BruteForceTest, FindsOptimumAndGreedyIsClose) {
  const ToyData data = MakeToyData(2000);
  // Hand-build a small candidate pool.
  Bitmap protected_mask = data.protected_pattern.Evaluate(data.df);
  std::vector<PrescriptionRule> candidates;
  for (size_t i = 0; i < 8; ++i) {
    PrescriptionRule rule;
    rule.coverage = Bitmap(data.df.num_rows());
    for (size_t r = i * 200; r < i * 200 + 400 && r < data.df.num_rows();
         ++r) {
      rule.coverage.Set(r);
    }
    rule.coverage_protected = rule.coverage & protected_mask;
    rule.support = rule.coverage.Count();
    rule.support_protected = rule.coverage_protected.Count();
    rule.utility = 5.0 + static_cast<double>(i);
    rule.utility_protected = rule.utility - 1.0;
    rule.utility_nonprotected = rule.utility + 1.0;
    candidates.push_back(std::move(rule));
  }
  BruteForceOptions bf_options;
  bf_options.lambda1 = 0.0;
  bf_options.lambda2 = 1.0;
  const auto brute =
      BruteForceSelect(candidates, protected_mask, FairnessConstraint::None(),
                       CoverageConstraint::None(), bf_options);
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(brute->found_valid);
  const GreedyResult greedy =
      GreedySelect(candidates, protected_mask, FairnessConstraint::None(),
                   CoverageConstraint::None());
  // Greedy achieves at least half the optimum (submodular guarantee is
  // 1-1/e for the utility term; be conservative).
  EXPECT_GE(greedy.stats.exp_utility, 0.5 * brute->stats.exp_utility);
}

TEST(BruteForceTest, RespectsConstraints) {
  Bitmap protected_mask(100);
  for (size_t i = 0; i < 20; ++i) protected_mask.Set(i);
  std::vector<PrescriptionRule> candidates;
  // One unfair but high-utility rule, one fair lower-utility rule.
  for (int i = 0; i < 2; ++i) {
    PrescriptionRule rule;
    rule.coverage = Bitmap(100, true);
    rule.coverage_protected = rule.coverage & protected_mask;
    rule.support = 100;
    rule.support_protected = 20;
    if (i == 0) {
      rule.utility = 100.0;
      rule.utility_protected = 10.0;
      rule.utility_nonprotected = 110.0;
    } else {
      rule.utility = 50.0;
      rule.utility_protected = 48.0;
      rule.utility_nonprotected = 51.0;
    }
    candidates.push_back(std::move(rule));
  }
  const auto result = BruteForceSelect(
      candidates, protected_mask, FairnessConstraint::GroupSP(5.0),
      CoverageConstraint::Group(0.5, 0.5));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found_valid);
  ASSERT_EQ(result->selected.size(), 1u);
  EXPECT_EQ(result->selected[0], 1u);  // only the fair rule is feasible
}

TEST(BruteForceTest, TooManyCandidatesRejected) {
  std::vector<PrescriptionRule> candidates(30);
  Bitmap mask(10);
  const auto result =
      BruteForceSelect(candidates, mask, FairnessConstraint::None(),
                       CoverageConstraint::None());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdaptersTest, ProjectPatternSplitsByRole) {
  const ToyData data = MakeToyData(500);
  const size_t group = *data.df.schema().IndexOf("Group");
  const size_t t1 = *data.df.schema().IndexOf("T1");
  const Pattern mixed({Predicate(group, CompareOp::kEq, Value("g1")),
                       Predicate(t1, CompareOp::kEq, Value("b"))});
  const Pattern grouping =
      ProjectPattern(mixed, data.df.schema(), AttrRole::kImmutable);
  const Pattern intervention =
      ProjectPattern(mixed, data.df.schema(), AttrRole::kMutable);
  ASSERT_EQ(grouping.size(), 1u);
  EXPECT_EQ(grouping.predicates()[0].attr, group);
  ASSERT_EQ(intervention.size(), 1u);
  EXPECT_EQ(intervention.predicates()[0].attr, t1);
}

TEST(AdaptersTest, IfClauseAsInterventionCostsRules) {
  const ToyData data = MakeToyData(3000);
  FairCapOptions options;
  options.num_threads = 1;
  const auto solver =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
  ASSERT_TRUE(solver.ok());
  const size_t t1 = *data.df.schema().IndexOf("T1");
  const size_t t2 = *data.df.schema().IndexOf("T2");
  const std::vector<Pattern> antecedents = {
      Pattern({Predicate(t1, CompareOp::kEq, Value("b"))}),
      Pattern({Predicate(t2, CompareOp::kEq, Value("y"))}),
      Pattern({Predicate(t2, CompareOp::kEq, Value("y"))}),  // duplicate
  };
  const auto rules = AdaptBaselineRules(
      *solver, antecedents, IfClauseTreatment::kAsInterventionPattern);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 2u);  // deduplicated
  for (const auto& rule : *rules) {
    EXPECT_TRUE(rule.grouping.empty());  // whole-dataset group
    EXPECT_GT(rule.utility, 0.0);
    EXPECT_EQ(rule.support, data.df.num_rows());
  }
}

TEST(AdaptersTest, IfClauseAsGroupingMinesInterventions) {
  const ToyData data = MakeToyData(3000);
  FairCapOptions options;
  options.num_threads = 1;
  options.lattice.max_predicates = 1;
  const auto solver =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
  ASSERT_TRUE(solver.ok());
  const size_t group = *data.df.schema().IndexOf("Group");
  const size_t t1 = *data.df.schema().IndexOf("T1");
  // Antecedent mixes immutable and mutable; only Group=g1 survives the
  // projection, then step 2 finds a treatment for that subgroup.
  const std::vector<Pattern> antecedents = {
      Pattern({Predicate(group, CompareOp::kEq, Value("g1")),
               Predicate(t1, CompareOp::kEq, Value("b"))})};
  const auto rules = AdaptBaselineRules(*solver, antecedents,
                                        IfClauseTreatment::kAsGroupingPattern);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  for (const auto& rule : *rules) {
    EXPECT_FALSE(rule.intervention.empty());
    EXPECT_GT(rule.utility, 0.0);
    // Grouping is the projected immutable part.
    for (size_t attr : rule.grouping.Attributes()) {
      EXPECT_EQ(data.df.schema().attribute(attr).role, AttrRole::kImmutable);
    }
  }
}

}  // namespace
}  // namespace faircap
