#include "causal/d_separation.h"

#include <gtest/gtest.h>

namespace faircap {
namespace {

// Classic structures.
TEST(DSeparationTest, Chain) {
  // x -> m -> y: dependent unconditionally, independent given m.
  const CausalDag dag =
      CausalDag::Create({"x", "m", "y"}, {{"x", "m"}, {"m", "y"}})
          .ValueOrDie();
  EXPECT_FALSE(DSeparated(dag, 0, 2, {}));
  EXPECT_TRUE(DSeparated(dag, 0, 2, {1}));
}

TEST(DSeparationTest, Fork) {
  // x <- z -> y: dependent unconditionally, independent given z.
  const CausalDag dag =
      CausalDag::Create({"z", "x", "y"}, {{"z", "x"}, {"z", "y"}})
          .ValueOrDie();
  EXPECT_FALSE(DSeparated(dag, 1, 2, {}));
  EXPECT_TRUE(DSeparated(dag, 1, 2, {0}));
}

TEST(DSeparationTest, Collider) {
  // x -> c <- y: independent unconditionally, dependent given c.
  const CausalDag dag =
      CausalDag::Create({"x", "y", "c"}, {{"x", "c"}, {"y", "c"}})
          .ValueOrDie();
  EXPECT_TRUE(DSeparated(dag, 0, 1, {}));
  EXPECT_FALSE(DSeparated(dag, 0, 1, {2}));
}

TEST(DSeparationTest, ColliderDescendantOpensPath) {
  // x -> c <- y, c -> d: conditioning on d also opens the collider.
  const CausalDag dag = CausalDag::Create(
                            {"x", "y", "c", "d"},
                            {{"x", "c"}, {"y", "c"}, {"c", "d"}})
                            .ValueOrDie();
  EXPECT_TRUE(DSeparated(dag, 0, 1, {}));
  EXPECT_FALSE(DSeparated(dag, 0, 1, {3}));
}

TEST(DSeparationTest, MDiagram) {
  // Classic M-structure: a -> x, a -> c, b -> c, b -> y.
  // x and y are marginally independent but dependent given c.
  const CausalDag dag =
      CausalDag::Create({"a", "b", "c", "x", "y"},
                        {{"a", "x"}, {"a", "c"}, {"b", "c"}, {"b", "y"}})
          .ValueOrDie();
  const size_t x = 3, y = 4, c = 2, a = 0;
  EXPECT_TRUE(DSeparated(dag, x, y, {}));
  EXPECT_FALSE(DSeparated(dag, x, y, {c}));
  // Conditioning additionally on a blocks the reopened path.
  EXPECT_TRUE(DSeparated(dag, x, y, {c, a}));
}

TEST(DSeparationTest, DisconnectedNodes) {
  const CausalDag dag = CausalDag::Create({"x", "y"}, {}).ValueOrDie();
  EXPECT_TRUE(DSeparated(dag, 0, 1, {}));
}

TEST(DSeparationTest, DirectEdgeNeverSeparable) {
  const CausalDag dag =
      CausalDag::Create({"x", "y", "z"}, {{"x", "y"}, {"z", "x"}, {"z", "y"}})
          .ValueOrDie();
  EXPECT_FALSE(DSeparated(dag, 0, 1, {}));
  EXPECT_FALSE(DSeparated(dag, 0, 1, {2}));
}

TEST(DSeparationTest, SetArguments) {
  // x1 -> m, x2 -> m, m -> y1, m -> y2.
  const CausalDag dag =
      CausalDag::Create({"x1", "x2", "m", "y1", "y2"},
                        {{"x1", "m"}, {"x2", "m"}, {"m", "y1"}, {"m", "y2"}})
          .ValueOrDie();
  EXPECT_FALSE(DSeparated(dag, {0, 1}, {3, 4}, {}));
  EXPECT_TRUE(DSeparated(dag, {0, 1}, {3, 4}, {2}));
}

TEST(DSeparationTest, LongChainBlockedAnywhere) {
  const CausalDag dag =
      CausalDag::Create({"a", "b", "c", "d", "e"},
                        {{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}})
          .ValueOrDie();
  EXPECT_FALSE(DSeparated(dag, 0, 4, {}));
  for (size_t mid = 1; mid <= 3; ++mid) {
    EXPECT_TRUE(DSeparated(dag, 0, 4, {mid})) << "blocking at " << mid;
  }
}

}  // namespace
}  // namespace faircap
