#include "mining/lattice.h"

#include <gtest/gtest.h>

#include <map>

namespace faircap {
namespace {

DataFrame Frame() {
  auto schema = Schema::Create({
      {"t1", AttrType::kCategorical, AttrRole::kMutable},
      {"t2", AttrType::kCategorical, AttrRole::kMutable},
      {"o", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  EXPECT_TRUE(df.AppendRow({Value("a"), Value("p"), Value(1.0)}).ok());
  EXPECT_TRUE(df.AppendRow({Value("b"), Value("q"), Value(2.0)}).ok());
  return df;
}

TEST(LatticeTest, EnumeratesAtomsForAllCategories) {
  const DataFrame df = Frame();
  const auto atoms = EnumerateInterventionAtoms(df, {0, 1});
  EXPECT_EQ(atoms.size(), 4u);  // a,b for t1; p,q for t2
}

TEST(LatticeTest, AtomsSkipNumericAttributes) {
  const DataFrame df = Frame();
  const auto atoms = EnumerateInterventionAtoms(df, {2});
  EXPECT_TRUE(atoms.empty());
}

TEST(LatticeTest, SelectsHighestScoreFeasible) {
  const DataFrame df = Frame();
  TreatmentEvaluator eval =
      [&df](const Pattern& p) -> std::optional<TreatmentEval> {
    TreatmentEval e;
    e.cate = 1.0;
    // Score favors t1=b.
    e.score = p.ToString(df.schema()).find("t1 = b") != std::string::npos
                  ? 10.0
                  : 1.0;
    e.feasible = true;
    return e;
  };
  LatticeOptions options;
  options.max_predicates = 1;
  const LatticeResult result =
      TraverseInterventionLattice(df, {0, 1}, eval, options);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.best->ToString(df.schema()), "t1 = b");
  EXPECT_DOUBLE_EQ(result.best_eval.score, 10.0);
  EXPECT_EQ(result.num_evaluated, 4u);
}

TEST(LatticeTest, InfeasibleTreatmentsNeverSelected) {
  const DataFrame df = Frame();
  TreatmentEvaluator eval =
      [](const Pattern&) -> std::optional<TreatmentEval> {
    TreatmentEval e;
    e.cate = 5.0;
    e.score = 5.0;
    e.feasible = false;
    return e;
  };
  const LatticeResult result = TraverseInterventionLattice(df, {0, 1}, eval);
  EXPECT_FALSE(result.best.has_value());
}

TEST(LatticeTest, NegativeCateNeverSelected) {
  const DataFrame df = Frame();
  TreatmentEvaluator eval =
      [](const Pattern&) -> std::optional<TreatmentEval> {
    TreatmentEval e;
    e.cate = -1.0;
    e.score = 100.0;
    e.feasible = true;
    return e;
  };
  const LatticeResult result = TraverseInterventionLattice(df, {0, 1}, eval);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_TRUE(result.positive.empty());
}

TEST(LatticeTest, ChildrenOnlyMaterializedWhenAllParentsPositive) {
  const DataFrame df = Frame();
  std::map<std::string, int> eval_counts;
  TreatmentEvaluator eval =
      [&](const Pattern& p) -> std::optional<TreatmentEval> {
    const std::string str = p.ToString(df.schema());
    ++eval_counts[str];
    TreatmentEval e;
    // t2 atoms have negative CATE; so no level-2 node containing t2 may be
    // evaluated.
    e.cate = str.find("t2") != std::string::npos ? -1.0 : 1.0;
    e.score = e.cate;
    e.feasible = true;
    return e;
  };
  LatticeOptions options;
  options.max_predicates = 2;
  const LatticeResult result =
      TraverseInterventionLattice(df, {0, 1}, eval, options);
  EXPECT_TRUE(result.best.has_value());
  for (const auto& [pattern_str, count] : eval_counts) {
    EXPECT_EQ(count, 1) << pattern_str << " evaluated more than once";
    // Level-2 patterns join across attributes; all contain "AND". None may
    // include a t2 predicate because those parents were negative.
    if (pattern_str.find(" AND ") != std::string::npos) {
      EXPECT_EQ(pattern_str.find("t2"), std::string::npos) << pattern_str;
    }
  }
}

TEST(LatticeTest, PairsCombineDistinctAttributesOnly) {
  const DataFrame df = Frame();
  size_t level2 = 0;
  TreatmentEvaluator eval =
      [&](const Pattern& p) -> std::optional<TreatmentEval> {
    if (p.size() == 2) {
      ++level2;
      EXPECT_EQ(p.Attributes().size(), 2u);
    }
    TreatmentEval e;
    e.cate = 1.0;
    e.score = 1.0;
    e.feasible = true;
    return e;
  };
  LatticeOptions options;
  options.max_predicates = 2;
  TraverseInterventionLattice(df, {0, 1}, eval, options);
  EXPECT_EQ(level2, 4u);  // {a,b} x {p,q}
}

TEST(LatticeTest, EvaluationCapRespected) {
  const DataFrame df = Frame();
  TreatmentEvaluator eval =
      [](const Pattern&) -> std::optional<TreatmentEval> {
    TreatmentEval e;
    e.cate = 1.0;
    e.score = 1.0;
    e.feasible = true;
    return e;
  };
  LatticeOptions options;
  options.max_predicates = 2;
  options.max_evaluations = 3;
  const LatticeResult result =
      TraverseInterventionLattice(df, {0, 1}, eval, options);
  EXPECT_EQ(result.num_evaluated, 3u);
}

TEST(LatticeTest, NulloptEvaluationsAreSkipped) {
  const DataFrame df = Frame();
  TreatmentEvaluator eval =
      [&df](const Pattern& p) -> std::optional<TreatmentEval> {
    if (p.ToString(df.schema()).find("t1") != std::string::npos) {
      return std::nullopt;  // unestimable
    }
    TreatmentEval e;
    e.cate = 2.0;
    e.score = 2.0;
    e.feasible = true;
    return e;
  };
  const LatticeResult result = TraverseInterventionLattice(df, {0, 1}, eval);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.best->Attributes()[0], 1u);
}

}  // namespace
}  // namespace faircap
