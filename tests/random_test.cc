#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace faircap {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextUniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(31);
  const auto perm = rng.Permutation(100);
  std::set<size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(37);
  EXPECT_TRUE(rng.Permutation(0).empty());
  const auto one = rng.Permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

}  // namespace
}  // namespace faircap
