#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace faircap {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(0, [&touched](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 3);  // 0 + 1 + 2
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, TasksCanSubmitWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

}  // namespace
}  // namespace faircap
