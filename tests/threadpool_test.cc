#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace faircap {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(0, [&touched](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 3);  // 0 + 1 + 2
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, TasksCanSubmitWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

// Regression: nested ParallelFor from inside a pool task used to
// deadlock silently (the fixed pool's Wait blocked a worker on work only
// that worker could run). The scheduler-backed adapter must execute the
// inner loops to completion — this is the pattern x shard task graph's
// exact shape.
TEST(ThreadPoolTest, NestedParallelForFromWorkerCompletes) {
  ThreadPool pool(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t outer) {
    pool.ParallelFor(kInner, [&](size_t inner) {
      hits[outer * kInner + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Three levels deep, on a single-worker pool (the degenerate case where
// the old pool could not even run the first inner loop).
TEST(ThreadPoolTest, DeeplyNestedParallelForOnOneWorker) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&](size_t) {
    pool.ParallelFor(3, [&](size_t) {
      pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });
    });
  });
  EXPECT_EQ(count.load(), 27);
}

// Regression: Wait() from inside a submitted task used to deadlock (the
// task waited for its own completion). It must now complete after every
// *other* pending task has finished.
TEST(ThreadPoolTest, WaitFromWorkerCompletes) {
  ThreadPool pool(2);
  std::atomic<int> others{0};
  std::atomic<bool> waited{false};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] { others.fetch_add(1); });
  }
  pool.Submit([&] {
    pool.Wait();  // must not deadlock on itself
    EXPECT_EQ(others.load(), 16);
    waited.store(true);
  });
  pool.Wait();
  EXPECT_TRUE(waited.load());
}

// A task submitting more work and then waiting for it — the old pool
// deadlocked the moment the submitting thread was a worker.
TEST(ThreadPoolTest, SubmitThenWaitFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 8);
    counter.fetch_add(100);
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 108);
}

}  // namespace
}  // namespace faircap
