// ShardPlan invariants and the sharded category-mask builder: shards must
// tile the row universe exactly, every boundary must sit at a multiple of
// 64 (the word-alignment the race-free OR merge leans on), and the
// sharded scan must reproduce the single-threaded build bit for bit for
// any shard count and pool size.

#include "mining/shard_plan.h"

#include <gtest/gtest.h>

#include "dataframe/dataframe.h"
#include "dataframe/predicate_index.h"
#include "util/random.h"
#include "util/task_scheduler.h"

namespace faircap {
namespace {

void ExpectValidPlan(const ShardPlan& plan, size_t num_rows,
                     size_t requested) {
  ASSERT_GE(plan.num_shards(), 1u);
  EXPECT_LE(plan.num_shards(), std::max<size_t>(1, requested));
  EXPECT_EQ(plan.num_rows(), num_rows);
  size_t word = 0;
  size_t row = 0;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    const ShardPlan::Shard& shard = plan.shard(s);
    // Contiguous tiling, word-aligned boundaries.
    EXPECT_EQ(shard.word_begin, word);
    EXPECT_EQ(shard.row_begin, row);
    EXPECT_EQ(shard.row_begin % 64, 0u);
    EXPECT_EQ(shard.row_begin, shard.word_begin * 64);
    EXPECT_GE(shard.word_end, shard.word_begin);
    EXPECT_LE(shard.row_end, num_rows);
    word = shard.word_end;
    row = shard.row_end;
  }
  EXPECT_EQ(word, (num_rows + 63) / 64);
  EXPECT_EQ(row, num_rows);
}

TEST(ShardPlanTest, TilesUniverseWordAligned) {
  for (const size_t rows : {0u, 1u, 63u, 64u, 65u, 1000u, 4096u, 100001u}) {
    for (const size_t shards : {1u, 2u, 3u, 7u, 16u, 1000u}) {
      SCOPED_TRACE("rows=" + std::to_string(rows) +
                   " shards=" + std::to_string(shards));
      ExpectValidPlan(ShardPlan::Create(rows, shards), rows, shards);
    }
  }
}

TEST(ShardPlanTest, ClampsShardCountToWords) {
  // 130 rows = 3 words: more shards than words must clamp, not create
  // empty shards.
  const ShardPlan plan = ShardPlan::Create(130, 64);
  EXPECT_EQ(plan.num_shards(), 3u);
  for (const auto& shard : plan.shards()) EXPECT_FALSE(shard.empty());
  // Zero requested shards is treated as one.
  EXPECT_EQ(ShardPlan::Create(130, 0).num_shards(), 1u);
}

TEST(ShardPlanTest, BalancesWordsWithinOne) {
  const ShardPlan plan = ShardPlan::Create(100000, 7);
  size_t min_words = SIZE_MAX, max_words = 0;
  for (const auto& shard : plan.shards()) {
    const size_t w = shard.word_end - shard.word_begin;
    min_words = std::min(min_words, w);
    max_words = std::max(max_words, w);
  }
  EXPECT_LE(max_words - min_words, 1u);
}

DataFrame MakeCategoricalFrame(size_t rows, uint64_t seed) {
  auto schema = Schema::Create({
      {"A", AttrType::kCategorical, AttrRole::kImmutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  const char* levels[] = {"x", "y", "z", "w"};
  for (size_t i = 0; i < rows; ++i) {
    const bool null = rng.NextBernoulli(0.05);
    const Status st = df.AppendRow(
        {null ? Value::Null() : Value(levels[rng.NextBounded(4)]),
         Value(static_cast<double>(i % 10))});
    EXPECT_TRUE(st.ok());
  }
  return df;
}

TEST(ShardPlanTest, ShardedCategoryMasksMatchSingleThreaded) {
  const DataFrame df = MakeCategoricalFrame(10000, 21);
  const std::vector<Bitmap> reference =
      PredicateIndex::BuildCategoryMasks(df, 0);
  TaskScheduler scheduler(4);
  for (const size_t shards : {1u, 2u, 7u, 64u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const ShardPlan plan = ShardPlan::Create(df.num_rows(), shards);
    // With and without a scheduler: the merge is the same word-level OR.
    const std::vector<Bitmap> pooled =
        BuildCategoryMasksSharded(df, 0, plan, &scheduler);
    const std::vector<Bitmap> inline_built =
        BuildCategoryMasksSharded(df, 0, plan, nullptr);
    ASSERT_EQ(pooled.size(), reference.size());
    ASSERT_EQ(inline_built.size(), reference.size());
    for (size_t c = 0; c < reference.size(); ++c) {
      EXPECT_TRUE(pooled[c] == reference[c]) << "category " << c;
      EXPECT_TRUE(inline_built[c] == reference[c]) << "category " << c;
    }
  }
}

TEST(ShardPlanTest, ShardedMasksOnEmptyAndTinyFrames) {
  // A universe smaller than one word: the plan degenerates to one shard
  // and the build must still match.
  const DataFrame tiny = MakeCategoricalFrame(17, 22);
  const ShardPlan plan = ShardPlan::Create(tiny.num_rows(), 8);
  EXPECT_EQ(plan.num_shards(), 1u);
  const std::vector<Bitmap> masks =
      BuildCategoryMasksSharded(tiny, 0, plan, nullptr);
  const std::vector<Bitmap> reference =
      PredicateIndex::BuildCategoryMasks(tiny, 0);
  ASSERT_EQ(masks.size(), reference.size());
  for (size_t c = 0; c < masks.size(); ++c) {
    EXPECT_TRUE(masks[c] == reference[c]);
  }
}

}  // namespace
}  // namespace faircap
