#include <gtest/gtest.h>

#include <cmath>

#include "causal/estimator.h"
#include "util/random.h"

namespace faircap {
namespace {

struct ConfoundedData {
  DataFrame df;
  CausalDag dag;
};

// Same confounded construction as estimator_test: Z -> T, Z -> O, T -> O.
ConfoundedData MakeConfounded(double effect, size_t n, uint64_t seed) {
  auto schema = Schema::Create({
      {"Z", AttrType::kCategorical, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool z = rng.NextBernoulli(0.5);
    const bool t = rng.NextBernoulli(z ? 0.8 : 0.2);
    const double o = (z ? 10.0 : 0.0) + (t ? effect : 0.0) +
                     rng.NextGaussian(0.0, 1.0);
    EXPECT_TRUE(df.AppendRow({Value(z ? "hi" : "lo"),
                              Value(t ? "yes" : "no"), Value(o)})
                    .ok());
  }
  CausalDag dag = CausalDag::Create({"Z", "T", "O"},
                                    {{"Z", "T"}, {"Z", "O"}, {"T", "O"}})
                      .ValueOrDie();
  return {std::move(df), std::move(dag)};
}

Pattern TreatYes(const DataFrame& df) {
  const size_t t = *df.schema().IndexOf("T");
  return Pattern({Predicate(t, CompareOp::kEq, Value("yes"))});
}

TEST(IpwTest, RecoversEffectUnderConfounding) {
  const ConfoundedData data = MakeConfounded(3.0, 10000, 41);
  CateOptions options;
  options.method = CateMethod::kIpw;
  const auto est = CateEstimator::Create(&data.df, &data.dag, options);
  ASSERT_TRUE(est.ok());
  const auto cate = est->Estimate(TreatYes(data.df), data.df.AllRows());
  ASSERT_TRUE(cate.ok()) << cate.status().ToString();
  EXPECT_NEAR(cate->cate, 3.0, 0.25);
  EXPECT_GT(cate->std_error, 0.0);
}

TEST(IpwTest, AgreesWithRegressionAcrossSeeds) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const ConfoundedData data = MakeConfounded(2.0, 8000, seed);
    CateOptions ipw_options;
    ipw_options.method = CateMethod::kIpw;
    const auto ipw = CateEstimator::Create(&data.df, &data.dag, ipw_options);
    const auto reg = CateEstimator::Create(&data.df, &data.dag);
    ASSERT_TRUE(ipw.ok() && reg.ok());
    const auto c_ipw = ipw->Estimate(TreatYes(data.df), data.df.AllRows());
    const auto c_reg = reg->Estimate(TreatYes(data.df), data.df.AllRows());
    ASSERT_TRUE(c_ipw.ok() && c_reg.ok());
    EXPECT_NEAR(c_ipw->cate, c_reg->cate, 0.3) << "seed " << seed;
  }
}

TEST(IpwTest, NoConfounderReducesToDifferenceOfMeans) {
  // Randomized treatment: propensity is flat, IPW ~ naive difference.
  auto schema = Schema::Create({
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const bool t = rng.NextBernoulli(0.5);
    ASSERT_TRUE(df.AppendRow({Value(t ? "1" : "0"),
                              Value((t ? 4.0 : 0.0) +
                                    rng.NextGaussian(0.0, 1.0))})
                    .ok());
  }
  const CausalDag dag =
      CausalDag::Create({"T", "O"}, {{"T", "O"}}).ValueOrDie();
  CateOptions options;
  options.method = CateMethod::kIpw;
  const auto est = CateEstimator::Create(&df, &dag, options);
  ASSERT_TRUE(est.ok());
  const size_t t = *df.schema().IndexOf("T");
  const Pattern treat_one({Predicate(t, CompareOp::kEq, Value("1"))});
  const auto cate = est->Estimate(treat_one, df.AllRows());
  ASSERT_TRUE(cate.ok());
  EXPECT_NEAR(cate->cate, 4.0, 0.15);
}

TEST(IpwTest, InsufficientOverlapFails) {
  const ConfoundedData data = MakeConfounded(1.0, 30, 7);
  CateOptions options;
  options.method = CateMethod::kIpw;
  options.min_group_size = 25;
  const auto est = CateEstimator::Create(&data.df, &data.dag, options);
  ASSERT_TRUE(est.ok());
  const auto cate = est->Estimate(TreatYes(data.df), data.df.AllRows());
  EXPECT_EQ(cate.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IpwTest, SubgroupEstimation) {
  const ConfoundedData data = MakeConfounded(3.0, 10000, 11);
  CateOptions options;
  options.method = CateMethod::kIpw;
  const auto est = CateEstimator::Create(&data.df, &data.dag, options);
  ASSERT_TRUE(est.ok());
  const size_t z = *data.df.schema().IndexOf("Z");
  const Bitmap lo =
      Pattern({Predicate(z, CompareOp::kEq, Value("lo"))}).Evaluate(data.df);
  const auto cate = est->Estimate(TreatYes(data.df), lo);
  ASSERT_TRUE(cate.ok());
  EXPECT_NEAR(cate->cate, 3.0, 0.3);
}

}  // namespace
}  // namespace faircap
