// Property tests pinning the CateStatsEngine batch path against the
// legacy per-call estimator: for every method (regression / stratified /
// IPW), every subgroup estimate served by EstimateSubgroups must match
// what three independent CateEstimator::Estimate calls produce —
// bit-for-bit for the stratified combine and the per-row IPW fallback,
// within tight tolerance where only floating-point summation order
// differs (regression normal equations, grouped IRLS).

#include "causal/cate_stats_engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "causal/estimator.h"
#include "data/german.h"
#include "ingest/synthetic.h"
#include "mining/shard_plan.h"
#include "util/obs/metrics.h"
#include "util/random.h"
#include "util/simd/simd.h"

namespace faircap {
namespace {

// Relative-or-absolute tolerances per method. Stratified and the IPW
// numeric-confounder fallback replay the legacy arithmetic exactly
// (tolerance 0 = bit-for-bit); regression re-sums the normal equations
// per cell, which pins the CATE within 1e-9 but lets the *standard
// error* drift more: its residual sum of squares is the cancellation
// y'y - beta'X'y of two huge near-equal sums, so an O(1e-16) relative
// reordering difference in the inputs is amplified by the cancellation
// ratio. The grouped IRLS converges to the same optimum from
// group-summed Newton steps (convergence noise ~1e-8 of an iterate).
struct Tolerances {
  double cate;
  double std_error;
};

Tolerances ToleranceFor(CateMethod method) {
  switch (method) {
    case CateMethod::kStratified:
      return {0.0, 0.0};
    case CateMethod::kRegression:
      return {1e-9, 1e-6};
    case CateMethod::kIpw:
      return {1e-7, 1e-6};
  }
  return {1e-9, 1e-6};
}

void ExpectSameEstimate(const Result<CateEstimate>& batch,
                        const Result<CateEstimate>& legacy, Tolerances tol,
                        const std::string& label) {
  ASSERT_EQ(batch.ok(), legacy.ok())
      << label << ": batch=" << (batch.ok() ? "ok" : batch.status().ToString())
      << " legacy="
      << (legacy.ok() ? "ok" : legacy.status().ToString());
  if (!batch.ok()) {
    EXPECT_EQ(batch.status().code(), legacy.status().code()) << label;
    return;
  }
  EXPECT_EQ(batch->n_treated, legacy->n_treated) << label;
  EXPECT_EQ(batch->n_control, legacy->n_control) << label;
  if (tol.cate == 0.0) {
    EXPECT_EQ(batch->cate, legacy->cate) << label << " (bit-for-bit)";
    EXPECT_EQ(batch->std_error, legacy->std_error) << label;
  } else {
    const double cate_tol = tol.cate * std::max(1.0, std::abs(legacy->cate));
    EXPECT_NEAR(batch->cate, legacy->cate, cate_tol) << label;
    const double se_tol = tol.std_error * std::max(1.0, legacy->std_error);
    EXPECT_NEAR(batch->std_error, legacy->std_error, se_tol) << label;
  }
}

// The pinning oracle: three legacy per-call estimates vs one batch pass.
void ExpectBatchMatchesLegacy(const CateEstimator& est,
                              const Pattern& intervention, const Bitmap& group,
                              const Bitmap& protected_mask, size_t min_sub,
                              const std::string& label) {
  const Tolerances tol = ToleranceFor(est.options().method);
  const Result<CateSubgroupEstimates> batch =
      est.EstimateSubgroups(intervention, group, &protected_mask, min_sub);
  ASSERT_TRUE(batch.ok()) << label << ": " << batch.status().ToString();

  ExpectSameEstimate(batch->overall, est.Estimate(intervention, group), tol,
                     label + "/overall");
  const Bitmap prot = group & protected_mask;
  ExpectSameEstimate(batch->protected_group,
                     est.Estimate(intervention, prot, min_sub), tol,
                     label + "/protected");
  Bitmap nonprot = group;
  nonprot.AndNot(protected_mask);
  ExpectSameEstimate(batch->nonprotected,
                     est.Estimate(intervention, nonprot, min_sub), tol,
                     label + "/nonprotected");
}

// Random subgroup bitmap with the given set-bit density.
Bitmap RandomGroup(size_t num_rows, double density, Rng* rng) {
  Bitmap group(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    if (rng->NextBernoulli(density)) group.Set(r);
  }
  return group;
}

// Random 1- or 2-predicate interventions over the mutable categorical
// attributes.
std::vector<Pattern> SampleInterventions(const DataFrame& df, size_t count,
                                         Rng* rng) {
  std::vector<size_t> mutables;
  for (size_t attr : df.schema().IndicesWithRole(AttrRole::kMutable)) {
    if (df.column(attr).type() == AttrType::kCategorical &&
        df.column(attr).num_categories() > 0) {
      mutables.push_back(attr);
    }
  }
  std::vector<Pattern> out;
  if (mutables.empty()) return out;
  auto random_predicate = [&](size_t attr) {
    const Column& col = df.column(attr);
    const int32_t code =
        static_cast<int32_t>(rng->NextBounded(col.num_categories()));
    return Predicate(attr, CompareOp::kEq, Value(col.CategoryName(code)));
  };
  for (size_t i = 0; i < count; ++i) {
    const size_t a = mutables[rng->NextBounded(mutables.size())];
    Pattern p({random_predicate(a)});
    if (mutables.size() > 1 && rng->NextBernoulli(0.5)) {
      const size_t b = mutables[rng->NextBounded(mutables.size())];
      if (b != a) p = p.With(random_predicate(b));
    }
    out.push_back(std::move(p));
  }
  return out;
}

void RunPropertySweep(const DataFrame& df, const CausalDag& dag,
                      const Pattern& protected_pattern, uint64_t seed,
                      const std::string& label) {
  const Bitmap protected_mask = protected_pattern.Evaluate(df);
  Rng rng(seed);
  const std::vector<Pattern> interventions = SampleInterventions(df, 4, &rng);
  ASSERT_FALSE(interventions.empty());
  for (const CateMethod method :
       {CateMethod::kRegression, CateMethod::kStratified, CateMethod::kIpw}) {
    CateOptions options;
    options.method = method;
    const auto est = CateEstimator::Create(&df, &dag, options);
    ASSERT_TRUE(est.ok());
    for (size_t i = 0; i < interventions.size(); ++i) {
      // Full population, a dense random subgroup, and a sparse one (the
      // sparse slice exercises min-arm failures on both paths).
      const Bitmap all = df.AllRows();
      const Bitmap dense = RandomGroup(df.num_rows(), 0.6, &rng);
      const Bitmap sparse = RandomGroup(df.num_rows(), 0.02, &rng);
      const std::string tag =
          label + "/m" + std::to_string(static_cast<int>(method)) + "/i" +
          std::to_string(i);
      ExpectBatchMatchesLegacy(*est, interventions[i], all, protected_mask,
                               /*min_sub=*/5, tag + "/all");
      ExpectBatchMatchesLegacy(*est, interventions[i], dense, protected_mask,
                               /*min_sub=*/5, tag + "/dense");
      ExpectBatchMatchesLegacy(*est, interventions[i], sparse, protected_mask,
                               /*min_sub=*/5, tag + "/sparse");
    }
  }
}

class CateStatsEngineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CateStatsEngineProperty, MatchesLegacyOnGerman) {
  GermanConfig config;
  config.num_rows = 1500;
  config.seed = GetParam();
  const auto data = MakeGerman(config);
  ASSERT_TRUE(data.ok());
  RunPropertySweep(data->df, data->dag, data->protected_pattern, GetParam(),
                   "german");
}

TEST_P(CateStatsEngineProperty, MatchesLegacyOnSynthetic) {
  SyntheticConfig config;
  config.num_rows = 4000;
  config.seed = GetParam();
  const auto data = MakeSynthetic(config);
  ASSERT_TRUE(data.ok());
  RunPropertySweep(data->df, data->dag, data->protected_pattern, GetParam(),
                   "synthetic");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CateStatsEngineProperty,
                         ::testing::Values(11u, 12u, 13u, 14u));

// Hand-built table covering the hard corners in one place: a numeric
// confounder (regression uses the raw values, stratification its
// quantile bins, IPW the per-row fallback), nulls in both confounders,
// a degenerate stratum with treated rows only, and a mutable attribute
// that the DAG does not know (empty adjustment set).
struct EdgeData {
  DataFrame df;
  CausalDag dag;
  Pattern protected_pattern;
};

EdgeData MakeEdgeData(size_t n, uint64_t seed) {
  auto schema = Schema::Create({
      {"Prot", AttrType::kCategorical, AttrRole::kImmutable},
      {"Zc", AttrType::kCategorical, AttrRole::kImmutable},
      {"Zn", AttrType::kNumeric, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"U", AttrType::kCategorical, AttrRole::kMutable},  // not in the DAG
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  const char* zc_levels[] = {"a", "b", "c"};
  for (size_t i = 0; i < n; ++i) {
    const bool prot = rng.NextBernoulli(0.3);
    const size_t zc = rng.NextBounded(3);
    const double zn = rng.NextGaussian(0.0, 2.0);
    const bool zc_null = rng.NextBernoulli(0.08);
    const bool zn_null = rng.NextBernoulli(0.08);
    // Stratum "c" is degenerate: always treated (positivity violation).
    const bool t = zc == 2 ? true
                          : rng.NextBernoulli(0.25 + 0.2 * zc +
                                              (zn > 0.0 ? 0.2 : 0.0));
    const bool u = rng.NextBernoulli(0.5);
    const double o = 5.0 + 3.0 * static_cast<double>(zc) + 1.5 * zn +
                     (t ? (prot ? 1.0 : 4.0) : 0.0) + (u ? 0.5 : 0.0) +
                     rng.NextGaussian(0.0, 1.0);
    const Status st = df.AppendRow(
        {Value(prot ? "yes" : "no"), zc_null ? Value::Null() : Value(zc_levels[zc]),
         zn_null ? Value::Null() : Value(zn), Value(t ? "yes" : "no"),
         Value(u ? "hi" : "lo"), Value(o)});
    EXPECT_TRUE(st.ok());
  }
  CausalDag dag = CausalDag::Create({"Prot", "Zc", "Zn", "T", "O"},
                                    {{"Zc", "T"},
                                     {"Zn", "T"},
                                     {"Zc", "O"},
                                     {"Zn", "O"},
                                     {"Prot", "O"},
                                     {"T", "O"}})
                      .ValueOrDie();
  Pattern protected_pattern(
      {Predicate(0, CompareOp::kEq, Value("yes"))});
  return {std::move(df), std::move(dag), std::move(protected_pattern)};
}

TEST(CateStatsEngineEdgeTest, NumericAndNullConfoundersMatchLegacy) {
  const EdgeData data = MakeEdgeData(3000, 77);
  RunPropertySweep(data.df, data.dag, data.protected_pattern, 77, "edge");
}

TEST(CateStatsEngineEdgeTest, EmptyAdjustmentSetMatchesLegacy) {
  const EdgeData data = MakeEdgeData(2000, 78);
  const Bitmap protected_mask = data.protected_pattern.Evaluate(data.df);
  // "U" is absent from the DAG: no confounders, single joint stratum.
  const size_t u = *data.df.schema().IndexOf("U");
  const Pattern intervention({Predicate(u, CompareOp::kEq, Value("hi"))});
  for (const CateMethod method :
       {CateMethod::kRegression, CateMethod::kStratified, CateMethod::kIpw}) {
    CateOptions options;
    options.method = method;
    const auto est = CateEstimator::Create(&data.df, &data.dag, options);
    ASSERT_TRUE(est.ok());
    ExpectBatchMatchesLegacy(*est, intervention, data.df.AllRows(),
                             protected_mask, 5,
                             "noadj/m" +
                                 std::to_string(static_cast<int>(method)));
  }
}

TEST(CateStatsEngineEdgeTest, MinArmFailuresMatchLegacy) {
  const EdgeData data = MakeEdgeData(800, 79);
  const Bitmap protected_mask = data.protected_pattern.Evaluate(data.df);
  const size_t t = *data.df.schema().IndexOf("T");
  const Pattern intervention({Predicate(t, CompareOp::kEq, Value("yes"))});
  Rng rng(79);
  // A 12-row group cannot satisfy the default floor of 10 per arm: both
  // paths must fail identically (FailedPrecondition).
  Bitmap tiny(data.df.num_rows());
  for (size_t i = 0; i < 12; ++i) {
    tiny.Set(rng.NextBounded(data.df.num_rows()));
  }
  for (const CateMethod method :
       {CateMethod::kRegression, CateMethod::kStratified, CateMethod::kIpw}) {
    CateOptions options;
    options.method = method;
    const auto est = CateEstimator::Create(&data.df, &data.dag, options);
    ASSERT_TRUE(est.ok());
    ExpectBatchMatchesLegacy(*est, intervention, tiny, protected_mask, 5,
                             "tiny/m" +
                                 std::to_string(static_cast<int>(method)));
  }
}

TEST(CateStatsEngineCacheTest, EnginesAreCachedPerTreatment) {
  const EdgeData data = MakeEdgeData(1000, 80);
  const auto est = CateEstimator::Create(&data.df, &data.dag);
  ASSERT_TRUE(est.ok());
  const size_t t = *data.df.schema().IndexOf("T");
  const Pattern intervention({Predicate(t, CompareOp::kEq, Value("yes"))});
  const Bitmap all = data.df.AllRows();
  const Bitmap prot = data.protected_pattern.Evaluate(data.df);

  ASSERT_TRUE(est->EstimateSubgroups(intervention, all, &prot, 5).ok());
  const auto first = est->GetEngineStats();
  EXPECT_EQ(first.engines, 1u);
  EXPECT_EQ(first.misses, 1u);
  EXPECT_EQ(first.partitions, 1u);
  EXPECT_GT(first.bytes, 0u);

  ASSERT_TRUE(est->EstimateSubgroups(intervention, all, &prot, 5).ok());
  const auto second = est->GetEngineStats();
  EXPECT_EQ(second.engines, 1u);
  EXPECT_EQ(second.misses, 1u);
  EXPECT_GE(second.hits, 1u);
}

TEST(CateStatsEngineCacheTest, PartitionsAreSharedAcrossSameAttrTreatments) {
  const EdgeData data = MakeEdgeData(1000, 81);
  const auto est = CateEstimator::Create(&data.df, &data.dag);
  ASSERT_TRUE(est.ok());
  const size_t t = *data.df.schema().IndexOf("T");
  const Bitmap all = data.df.AllRows();
  const Bitmap prot = data.protected_pattern.Evaluate(data.df);
  // T=yes and T=no share the treatment attribute, hence the adjustment
  // set, hence one confounder partition.
  (void)est->EstimateSubgroups(
      Pattern({Predicate(t, CompareOp::kEq, Value("yes"))}), all, &prot, 5);
  (void)est->EstimateSubgroups(
      Pattern({Predicate(t, CompareOp::kEq, Value("no"))}), all, &prot, 5);
  const auto stats = est->GetEngineStats();
  EXPECT_EQ(stats.engines, 2u);
  EXPECT_EQ(stats.partitions, 1u);
}

TEST(CateStatsEngineCacheTest, BudgetEvictsLruEnginesAndSharedPtrSurvives) {
  const EdgeData data = MakeEdgeData(1000, 82);
  auto est = CateEstimator::Create(&data.df, &data.dag);
  ASSERT_TRUE(est.ok());
  const size_t t = *data.df.schema().IndexOf("T");
  const size_t u = *data.df.schema().IndexOf("U");
  const Bitmap all = data.df.AllRows();

  const Pattern t_yes({Predicate(t, CompareOp::kEq, Value("yes"))});
  const auto held = est->EngineFor(t_yes);
  ASSERT_TRUE(held.ok());
  const Result<CateEstimate> before = (*held)->EstimateSubgroup(all, 10);

  // A 1-byte budget keeps only the most recently used engine.
  est->SetEngineMemoryBudget(1);
  for (const char* level : {"hi", "lo"}) {
    (void)est->EngineFor(Pattern({Predicate(u, CompareOp::kEq, Value(level))}));
  }
  const auto stats = est->GetEngineStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.engines, 1u);

  // The held engine still answers, identically, after eviction.
  const Result<CateEstimate> after = (*held)->EstimateSubgroup(all, 10);
  ASSERT_EQ(before.ok(), after.ok());
  if (before.ok()) {
    EXPECT_EQ(before->cate, after->cate);
  }
}

TEST(CateStatsEngineCacheTest, LegacyStratumIdsAreCachedAcrossCalls) {
  // The satellite fix: repeated legacy stratified Estimate calls for the
  // same treatment attributes must not recompute StratumIds (observable
  // indirectly: results stay identical and the calls get much cheaper;
  // here we just pin correctness of the cached path).
  const EdgeData data = MakeEdgeData(1500, 83);
  CateOptions options;
  options.method = CateMethod::kStratified;
  const auto est = CateEstimator::Create(&data.df, &data.dag, options);
  ASSERT_TRUE(est.ok());
  const size_t t = *data.df.schema().IndexOf("T");
  const Pattern intervention({Predicate(t, CompareOp::kEq, Value("yes"))});
  const Bitmap all = data.df.AllRows();
  const auto first = est->Estimate(intervention, all);
  const auto second = est->Estimate(intervention, all);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->cate, second->cate);
  EXPECT_EQ(first->std_error, second->std_error);
}

// ---------------------------------------------------------------------
// ISA sweep: every SIMD tier must produce BIT-IDENTICAL estimates — the
// accumulation kernels keep integer stats exact and perform float adds
// in the scalar association order, so there is no tolerance here, for
// any method, including the batch protected/non-protected split.

void ExpectSameBits(const Result<CateEstimate>& got,
                    const Result<CateEstimate>& ref,
                    const std::string& label) {
  ASSERT_EQ(got.ok(), ref.ok()) << label;
  if (!got.ok()) {
    EXPECT_EQ(got.status().code(), ref.status().code()) << label;
    return;
  }
  EXPECT_EQ(got->cate, ref->cate) << label;
  EXPECT_EQ(got->std_error, ref->std_error) << label;
  EXPECT_EQ(got->n_treated, ref->n_treated) << label;
  EXPECT_EQ(got->n_control, ref->n_control) << label;
}

TEST(CateStatsEngineSimdTest, EstimatesBitIdenticalAcrossIsaTiers) {
  const EdgeData data = MakeEdgeData(3000, 91);
  const Bitmap protected_mask = data.protected_pattern.Evaluate(data.df);
  const size_t t = *data.df.schema().IndexOf("T");
  const Pattern intervention({Predicate(t, CompareOp::kEq, Value("yes"))});
  Rng rng(91);
  const Bitmap dense = RandomGroup(data.df.num_rows(), 0.6, &rng);
  for (const CateMethod method :
       {CateMethod::kRegression, CateMethod::kStratified, CateMethod::kIpw}) {
    CateOptions options;
    options.method = method;
    const auto est = CateEstimator::Create(&data.df, &data.dag, options);
    ASSERT_TRUE(est.ok());
    // Scalar reference triple.
    Result<CateSubgroupEstimates> ref = Status::Internal("unset");
    {
      simd::ScopedSimdLevel pin(simd::SimdLevel::kScalar);
      ref = est->EstimateSubgroups(intervention, dense, &protected_mask, 5);
    }
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    for (const simd::SimdLevel level : simd::SupportedSimdLevels()) {
      simd::ScopedSimdLevel pin(level);
      const std::string tag =
          std::string(simd::SimdLevelName(level)) + "/m" +
          std::to_string(static_cast<int>(method));
      const Result<CateSubgroupEstimates> got =
          est->EstimateSubgroups(intervention, dense, &protected_mask, 5);
      ASSERT_TRUE(got.ok()) << tag;
      ExpectSameBits(got->overall, ref->overall, tag + "/overall");
      ExpectSameBits(got->protected_group, ref->protected_group,
                     tag + "/protected");
      ExpectSameBits(got->nonprotected, ref->nonprotected,
                     tag + "/nonprotected");
    }
  }
}

TEST(CateStatsEngineSimdTest, DenseGroupMatchesLegacyAtEveryTier) {
  // The all-rows group exercises the vector tiers' dense-word fast path
  // (every group word is ~0); pin it against the legacy oracle per tier.
  const EdgeData data = MakeEdgeData(1500, 92);
  for (const simd::SimdLevel level : simd::SupportedSimdLevels()) {
    simd::ScopedSimdLevel pin(level);
    RunPropertySweep(data.df, data.dag, data.protected_pattern, 92,
                     std::string("simd-") + simd::SimdLevelName(level));
  }
}

// ---------------------------------------------------------------------
// Integer fast path: on an integer-valued outcome column the engine
// accumulates {n, Σy, Σy²} in int64 and converts to double at solve
// time. Under the safe-row guard every legacy floating-point prefix
// partial is also exact, so the two representations must agree
// bit-for-bit — for every method, tier, and shard count.

void ExpectSameSubgroups(const CateSubgroupEstimates& got,
                         const CateSubgroupEstimates& ref,
                         const std::string& label) {
  ExpectSameBits(got.overall, ref.overall, label + "/overall");
  ExpectSameBits(got.protected_group, ref.protected_group,
                 label + "/protected");
  ExpectSameBits(got.nonprotected, ref.nonprotected, label + "/nonprotected");
}

TEST(CateStatsEngineIntPathTest, IntAndFpPathsBitIdenticalOnIntegerData) {
  SyntheticConfig config;
  config.num_rows = 4000;
  config.seed = 21;
  config.integer_outcome = true;
  const auto data = MakeSynthetic(config);
  ASSERT_TRUE(data.ok());
  const DataFrame& df = data->df;
  const Bitmap protected_mask = data->protected_pattern.Evaluate(df);
  Rng rng(21);
  const std::vector<Pattern> interventions = SampleInterventions(df, 2, &rng);
  ASSERT_FALSE(interventions.empty());
  const Bitmap dense = RandomGroup(df.num_rows(), 0.7, &rng);

  for (const CateMethod method :
       {CateMethod::kRegression, CateMethod::kStratified, CateMethod::kIpw}) {
    CateOptions int_opts;
    int_opts.method = method;
    CateOptions fp_opts = int_opts;
    fp_opts.disable_int_fast_path = true;  // pure-FP reference engine
    const auto int_est = CateEstimator::Create(&df, &data->dag, int_opts);
    const auto fp_est = CateEstimator::Create(&df, &data->dag, fp_opts);
    ASSERT_TRUE(int_est.ok());
    ASSERT_TRUE(fp_est.ok());
    for (const simd::SimdLevel level : simd::SupportedSimdLevels()) {
      simd::ScopedSimdLevel pin(level);
      for (const size_t shards : {size_t{1}, size_t{7}, size_t{16}}) {
        const ShardPlan plan = ShardPlan::Create(df.num_rows(), shards);
        for (size_t i = 0; i < interventions.size(); ++i) {
          const std::string tag =
              std::string("intpath/") + simd::SimdLevelName(level) + "/m" +
              std::to_string(static_cast<int>(method)) + "/s" +
              std::to_string(shards) + "/i" + std::to_string(i);
          const Result<CateSubgroupEstimates> got =
              int_est->EstimateSubgroups(
                  interventions[i], dense, &protected_mask, 5,
                  /*skip_subgroups_unless_positive=*/false, &plan, nullptr);
          const Result<CateSubgroupEstimates> ref =
              fp_est->EstimateSubgroups(
                  interventions[i], dense, &protected_mask, 5,
                  /*skip_subgroups_unless_positive=*/false, &plan, nullptr);
          ASSERT_TRUE(got.ok()) << tag;
          ASSERT_TRUE(ref.ok()) << tag;
          ExpectSameSubgroups(*got, *ref, tag);
        }
      }
      // And both agree with the legacy per-call oracle (method-specific
      // tolerances; stratified is bit-for-bit).
      ExpectBatchMatchesLegacy(*int_est, interventions[0], dense,
                               protected_mask, 5,
                               std::string("intpath-legacy/") +
                                   simd::SimdLevelName(level) + "/m" +
                                   std::to_string(static_cast<int>(method)));
    }
  }
}

// Near-limit magnitudes: |y| up to ~3e6 puts Σy² past 2^53 after ~1000
// rows, so a 4000-row group trips the overflow guard mid-range and the
// kernel must flush its exact int64 partials into the FP arrays and
// finish the pass on the FP path — with a result bit-identical to an
// engine that never used the integer path at all.
EdgeData MakeBigIntData(size_t n, uint64_t seed) {
  auto schema = Schema::Create({
      {"Prot", AttrType::kCategorical, AttrRole::kImmutable},
      {"Z", AttrType::kCategorical, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  const char* z_levels[] = {"a", "b", "c"};
  for (size_t i = 0; i < n; ++i) {
    const bool prot = rng.NextBernoulli(0.3);
    const size_t z = rng.NextBounded(3);
    const bool t = rng.NextBernoulli(0.3 + 0.15 * static_cast<double>(z));
    // Integer outcome in [-3e6, 3e6]: exactly representable, but squares
    // near 9e12 exhaust the 2^53 budget after ~1000 rows.
    const double o = static_cast<double>(
        static_cast<int64_t>(rng.NextBounded(6000001)) - 3000000);
    const Status st =
        df.AppendRow({Value(prot ? "yes" : "no"), Value(z_levels[z]),
                      Value(t ? "yes" : "no"), Value(o)});
    EXPECT_TRUE(st.ok());
  }
  CausalDag dag =
      CausalDag::Create({"Prot", "Z", "T", "O"},
                        {{"Z", "T"}, {"Z", "O"}, {"Prot", "O"}, {"T", "O"}})
          .ValueOrDie();
  Pattern protected_pattern({Predicate(0, CompareOp::kEq, Value("yes"))});
  return {std::move(df), std::move(dag), std::move(protected_pattern)};
}

TEST(CateStatsEngineIntPathTest, OverflowGuardFallsBackBitIdentically) {
  const EdgeData data = MakeBigIntData(4000, 101);
  const Bitmap protected_mask = data.protected_pattern.Evaluate(data.df);
  const size_t t = *data.df.schema().IndexOf("T");
  const Pattern intervention({Predicate(t, CompareOp::kEq, Value("yes"))});
  const Bitmap all = data.df.AllRows();
  const obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t fallbacks_before =
      reg.CounterValue("estimation.accumulate_int_fallbacks");
  const uint64_t rows_before = reg.CounterValue("simd.cate_accumulate_rows");

  for (const CateMethod method :
       {CateMethod::kRegression, CateMethod::kStratified, CateMethod::kIpw}) {
    CateOptions int_opts;
    int_opts.method = method;
    CateOptions fp_opts = int_opts;
    fp_opts.disable_int_fast_path = true;
    const auto int_est = CateEstimator::Create(&data.df, &data.dag, int_opts);
    const auto fp_est = CateEstimator::Create(&data.df, &data.dag, fp_opts);
    ASSERT_TRUE(int_est.ok());
    ASSERT_TRUE(fp_est.ok());
    for (const simd::SimdLevel level : simd::SupportedSimdLevels()) {
      simd::ScopedSimdLevel pin(level);
      const std::string tag = std::string("guard/") +
                              simd::SimdLevelName(level) + "/m" +
                              std::to_string(static_cast<int>(method));
      // Sharded too: at 7/16 shards each shard stays under the guard and
      // the int partials convert at merge time instead, which must still
      // replay the FP engine's merge bit-for-bit.
      for (const size_t shards : {size_t{1}, size_t{7}, size_t{16}}) {
        const ShardPlan plan = ShardPlan::Create(data.df.num_rows(), shards);
        const Result<CateSubgroupEstimates> got =
            int_est->EstimateSubgroups(
                intervention, all, &protected_mask, 5,
                /*skip_subgroups_unless_positive=*/false, &plan, nullptr);
        const Result<CateSubgroupEstimates> ref =
            fp_est->EstimateSubgroups(
                intervention, all, &protected_mask, 5,
                /*skip_subgroups_unless_positive=*/false, &plan, nullptr);
        ASSERT_TRUE(got.ok()) << tag;
        ASSERT_TRUE(ref.ok()) << tag;
        ExpectSameSubgroups(*got, *ref, tag + "/s" + std::to_string(shards));
      }
      // The single-shard pass exceeds safe_rows, so the guard must have
      // tripped at least once at this tier; legacy oracle still matches.
      ExpectBatchMatchesLegacy(*int_est, intervention, all, protected_mask,
                               5, tag + "/legacy");
    }
  }
  EXPECT_GT(reg.CounterValue("estimation.accumulate_int_fallbacks"),
            fallbacks_before);
  EXPECT_GT(reg.CounterValue("simd.cate_accumulate_rows"), rows_before);
}

// Regression test for the empty-arm guard: one-class inputs used to
// divide by a zero weight sum and return a NaN estimate.
TEST(HajekIpwTest, EmptyArmFailsInsteadOfNaN) {
  const size_t n = 6;
  const size_t p = 1;  // intercept-only propensity design
  const std::vector<double> design(n * p, 1.0);
  const std::vector<double> outcomes = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  for (const bool treated : {true, false}) {
    const std::vector<double> labels(n, treated ? 1.0 : 0.0);
    const std::vector<uint8_t> is_treated(n, treated ? 1 : 0);
    const Result<CateEstimate> result = HajekIpwFromRows(
        design, n, p, labels, outcomes, is_treated, /*propensity_clip=*/0.02);
    ASSERT_FALSE(result.ok()) << (treated ? "all-treated" : "all-control");
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(result.status().ToString().find("arms"), std::string::npos);
  }
}

}  // namespace
}  // namespace faircap
