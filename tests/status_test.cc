#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace faircap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad attr");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad attr");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad attr");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsThenPropagates() {
  FAIRCAP_RETURN_NOT_OK(Status::IOError("disk on fire"));
  return Status::OK();  // unreachable
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  const Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FAIRCAP_ASSIGN_OR_RETURN(const int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  const Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  const Result<int> err = Quarter(6);  // 6/2 = 3, odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace faircap
