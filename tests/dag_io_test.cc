#include "causal/dag_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace faircap {
namespace {

TEST(DagIoTest, ParseEdgesAndChains) {
  const auto dag = ParseDag("A -> B;\nB -> C -> D\n");
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  EXPECT_EQ(dag->num_nodes(), 4u);
  EXPECT_EQ(dag->num_edges(), 3u);
  EXPECT_TRUE(dag->HasEdge(*dag->IndexOf("A"), *dag->IndexOf("B")));
  EXPECT_TRUE(dag->HasEdge(*dag->IndexOf("C"), *dag->IndexOf("D")));
}

TEST(DagIoTest, CommentsAndBlankLinesIgnored) {
  const auto dag = ParseDag(
      "# a comment\n"
      "\n"
      "X -> Y  # trailing comment\n"
      "  ;;  \n");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->num_nodes(), 2u);
  EXPECT_EQ(dag->num_edges(), 1u);
}

TEST(DagIoTest, IsolatedNodeStatement) {
  const auto dag = ParseDag("Lonely;\nA -> B\n");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->num_nodes(), 3u);
  EXPECT_TRUE(dag->Contains("Lonely"));
  EXPECT_TRUE(dag->Parents(*dag->IndexOf("Lonely")).empty());
}

TEST(DagIoTest, SemicolonsSeparateStatementsOnOneLine) {
  const auto dag = ParseDag("A -> B; C -> D; A -> D");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->num_edges(), 3u);
}

TEST(DagIoTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseDag("A -> ;").ok());        // dangling arrow
  EXPECT_FALSE(ParseDag("-> B").ok());          // missing source
  EXPECT_FALSE(ParseDag("A B -> C").ok());      // whitespace in name
  EXPECT_FALSE(ParseDag("A -> A").ok());        // self-loop
  EXPECT_FALSE(ParseDag("A -> B; B -> A").ok());  // cycle
  EXPECT_FALSE(ParseDag("A -> B; A -> B").ok());  // duplicate edge
}

TEST(DagIoTest, RoundTripThroughText) {
  const auto original = ParseDag("A -> B; B -> C; Solo;");
  ASSERT_TRUE(original.ok());
  const std::string text = DagToText(*original);
  const auto reparsed = ParseDag(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed->num_nodes(), original->num_nodes());
  EXPECT_EQ(reparsed->num_edges(), original->num_edges());
  EXPECT_TRUE(reparsed->Contains("Solo"));
}

TEST(DagIoTest, ReadFromFile) {
  const std::string path = testing::TempDir() + "/faircap_dag_test.txt";
  {
    std::ofstream out(path);
    out << "U -> V\nV -> W\n";
  }
  const auto dag = ReadDagFile(path);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->num_edges(), 2u);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadDagFile("/nonexistent/dag.txt").ok());
}

}  // namespace
}  // namespace faircap
