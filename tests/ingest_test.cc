// Streaming ingest tests: the chunked columnar reader must produce a
// DataFrame bit-for-bit identical to the legacy row-by-row loader —
// schema, cell values, dictionary code assignment order, and predicate
// evaluation — across quoting/CRLF/null edge cases and arbitrary chunk
// boundaries; the warm-started PredicateIndex must serve masks identical
// to cold columnar scans; and the DatasetRepository front door must load
// built-ins, parameterized synthetics, and file-backed datasets.

#include "ingest/chunked_csv_reader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "causal/dag_io.h"
#include "dataframe/predicate_index.h"
#include "ingest/repository.h"
#include "ingest/synthetic.h"
#include "mining/pattern.h"
#include "util/task_scheduler.h"

namespace faircap {
namespace {

// Bit-for-bit table equality: schema, nulls, dictionary codes (not just
// string values — code order is what the index and Apriori key off), and
// numeric payloads.
void ExpectFramesIdentical(const DataFrame& a, const DataFrame& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    ASSERT_EQ(a.schema().attribute(c).name, b.schema().attribute(c).name);
    ASSERT_EQ(a.schema().attribute(c).type, b.schema().attribute(c).type);
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    if (ca.type() == AttrType::kCategorical) {
      ASSERT_EQ(ca.num_categories(), cb.num_categories()) << "column " << c;
      for (size_t code = 0; code < ca.num_categories(); ++code) {
        EXPECT_EQ(ca.CategoryName(static_cast<int32_t>(code)),
                  cb.CategoryName(static_cast<int32_t>(code)));
      }
    }
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (ca.type() == AttrType::kCategorical) {
        ASSERT_EQ(ca.code(r), cb.code(r)) << "col " << c << " row " << r;
      } else {
        const bool null_a = ca.IsNull(r);
        ASSERT_EQ(null_a, cb.IsNull(r)) << "col " << c << " row " << r;
        if (!null_a) {
          ASSERT_EQ(ca.numeric(r), cb.numeric(r))
              << "col " << c << " row " << r;
        }
      }
    }
  }
}

Schema TestSchema() {
  return Schema::Create({
                            {"name", AttrType::kCategorical,
                             AttrRole::kImmutable},
                            {"city", AttrType::kCategorical,
                             AttrRole::kImmutable},
                            {"score", AttrType::kNumeric, AttrRole::kOutcome},
                        })
      .ValueOrDie();
}

// Quoting, escapes, embedded delimiters and newlines, CRLF, nulls,
// trailing empty columns — everything both loaders must agree on.
const char kEdgeCaseCsv[] =
    "name,city,score\n"
    "alice,berlin,1.5\r\n"
    "\"smith, john\",\"a\nb\",2\n"
    "\"say \"\"hi\"\"\",paris,NA\n"
    "NA,,\r\n"
    "\r\n"
    "bob,tokyo,-3e2\n"
    "carol,berlin,";

TEST(IngestTest, StreamingMatchesLegacyOnEdgeCases) {
  const auto legacy = ParseCsv(kEdgeCaseCsv, TestSchema());
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  const auto streamed = StreamCsvFromString(kEdgeCaseCsv, TestSchema());
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ(streamed->num_rows(), 6u);
  ExpectFramesIdentical(*legacy, *streamed);
  // Spot-check the tricky cells directly.
  EXPECT_EQ(streamed->GetValue(1, 0), Value("smith, john"));
  EXPECT_EQ(streamed->GetValue(1, 1), Value("a\nb"));
  EXPECT_EQ(streamed->GetValue(2, 0), Value("say \"hi\""));
  EXPECT_TRUE(streamed->GetValue(2, 2).is_null());
  EXPECT_TRUE(streamed->GetValue(3, 0).is_null());
  EXPECT_TRUE(streamed->GetValue(3, 1).is_null());
  EXPECT_EQ(streamed->GetValue(4, 2), Value(-300.0));
  EXPECT_TRUE(streamed->GetValue(5, 2).is_null());  // trailing empty column
}

TEST(IngestTest, ChunkBoundariesNeverSplitSemantics) {
  // Force chunk boundaries at every offset: 1-byte chunks make each
  // record (and each quoted field) straddle many reads.
  for (const size_t chunk_bytes : {1u, 3u, 7u, 64u}) {
    IngestOptions options;
    options.chunk_bytes = chunk_bytes;
    const auto streamed =
        StreamCsvFromString(kEdgeCaseCsv, TestSchema(), options);
    ASSERT_TRUE(streamed.ok())
        << "chunk " << chunk_bytes << ": " << streamed.status().ToString();
    const auto legacy = ParseCsv(kEdgeCaseCsv, TestSchema());
    ASSERT_TRUE(legacy.ok());
    ExpectFramesIdentical(*legacy, *streamed);
  }
}

TEST(IngestTest, ErrorsMatchLegacySemantics) {
  // Dangling quote.
  EXPECT_EQ(StreamCsvFromString("name,city,score\n\"alice,b,1\n",
                                TestSchema())
                .status()
                .code(),
            StatusCode::kIOError);
  // Ragged row.
  EXPECT_EQ(StreamCsvFromString("name,city,score\nalice,b\n", TestSchema())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Non-numeric cell.
  EXPECT_EQ(StreamCsvFromString("name,city,score\nalice,b,abc\n",
                                TestSchema())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Header mismatch.
  EXPECT_EQ(StreamCsvFromString("wrong,city,score\nalice,b,1\n", TestSchema())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Empty input.
  EXPECT_EQ(StreamCsvFromString("", TestSchema()).status().code(),
            StatusCode::kIOError);
  // Missing file.
  EXPECT_EQ(StreamCsv("/nonexistent/path.csv", TestSchema()).status().code(),
            StatusCode::kIOError);
}

TEST(IngestTest, StreamingMatchesLegacyOnGeneratedWorkload) {
  SyntheticConfig config;
  config.num_rows = 800;
  config.seed = 21;
  const auto data = MakeSynthetic(config);
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  const std::string path = testing::TempDir() + "/faircap_ingest_test.csv";
  ASSERT_TRUE(WriteCsv(data->df, path).ok());

  const auto legacy = ReadCsv(path, data->df.schema());
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  IngestOptions options;
  options.chunk_bytes = 512;  // force many chunks
  IngestStats stats;
  const auto streamed = StreamCsv(path, data->df.schema(), options, &stats);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  std::remove(path.c_str());

  // (The generated frame itself differs from both: WriteCsv's %.6g
  // formatting rounds the numeric outcome. Streaming vs legacy — the
  // two readers of the same bytes — must agree exactly.)
  ExpectFramesIdentical(*legacy, *streamed);
  EXPECT_EQ(stats.rows, config.num_rows);
  EXPECT_GT(stats.chunks, 1u);
  EXPECT_GT(stats.bytes, 0u);

  // Predicate evaluation over the streamed (warm) table must equal both
  // the naive scan and the legacy (cold) table's evaluation.
  for (size_t attr = 0; attr < streamed->num_columns(); ++attr) {
    if (streamed->column(attr).type() != AttrType::kCategorical) continue;
    for (size_t code = 0; code < streamed->column(attr).num_categories();
         ++code) {
      const Predicate p(
          attr, CompareOp::kEq,
          Value(streamed->column(attr).CategoryName(
              static_cast<int32_t>(code))));
      const Bitmap streamed_mask = p.Evaluate(*streamed);
      EXPECT_TRUE(streamed_mask == p.EvaluateNaive(*streamed));
      EXPECT_TRUE(streamed_mask == p.Evaluate(*legacy));
    }
  }
  const Bitmap streamed_protected =
      data->protected_pattern.Evaluate(*streamed);
  EXPECT_TRUE(streamed_protected ==
              data->protected_pattern.Evaluate(legacy.ValueOrDie()));
}

TEST(IngestTest, WarmStartPopulatesIndexWithoutScans) {
  const auto streamed = StreamCsvFromString(kEdgeCaseCsv, TestSchema());
  ASSERT_TRUE(streamed.ok());
  const auto stats = streamed->predicate_index().GetStats();
  // Both categorical columns' categories got masks at ingest time.
  EXPECT_GT(stats.warm_atom_masks, 0u);
  EXPECT_EQ(stats.atom_masks, stats.warm_atom_masks);
  EXPECT_EQ(stats.misses, 0u);

  // A warm atom request is a pure cache hit and matches a cold scan.
  const Predicate p(0, CompareOp::kEq, Value("alice"));
  const Bitmap mask = p.Evaluate(*streamed);
  EXPECT_TRUE(mask ==
              PredicateIndex::Scan(*streamed, 0, CompareOp::kEq,
                                   Value("alice")));
  const auto after = streamed->predicate_index().GetStats();
  EXPECT_GT(after.hits, 0u);
  EXPECT_EQ(after.misses, 0u);
}

TEST(IngestTest, WarmStartCanBeDisabled) {
  IngestOptions options;
  options.warm_start_index = false;
  const auto streamed =
      StreamCsvFromString(kEdgeCaseCsv, TestSchema(), options);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed->predicate_index().GetStats().atom_masks, 0u);
}

// Chunk-parallel ingest must be bit-for-bit the sequential result —
// dictionary code order included — for every segment-boundary placement
// the record-aligned splitter can produce, on the nastiest input we have
// (quoted newlines, CRLF, nulls, trailing empty columns, no trailing
// newline).
TEST(IngestTest, ParallelMatchesSequentialOnEdgeCases) {
  const auto sequential = StreamCsvFromString(kEdgeCaseCsv, TestSchema());
  ASSERT_TRUE(sequential.ok());
  for (const size_t chunk_bytes : {1u, 3u, 16u, 64u, 4096u}) {
    IngestOptions options;
    options.chunk_bytes = chunk_bytes;  // target segment size
    options.num_threads = 3;
    IngestStats stats;
    const auto parallel =
        StreamCsvFromString(kEdgeCaseCsv, TestSchema(), options, &stats);
    ASSERT_TRUE(parallel.ok())
        << "chunk " << chunk_bytes << ": " << parallel.status().ToString();
    ExpectFramesIdentical(*sequential, *parallel);
  }
}

TEST(IngestTest, ParallelMatchesSequentialOnGeneratedWorkload) {
  SyntheticConfig config;
  config.num_rows = 2000;
  config.seed = 57;
  const auto data = MakeSynthetic(config);
  ASSERT_TRUE(data.ok());
  const std::string path = testing::TempDir() + "/faircap_par_ingest.csv";
  ASSERT_TRUE(WriteCsv(data->df, path).ok());

  const auto sequential = StreamCsv(path, data->df.schema());
  ASSERT_TRUE(sequential.ok());
  IngestOptions options;
  options.chunk_bytes = 2048;  // force many segments
  options.num_threads = 4;
  IngestStats stats;
  const auto parallel = StreamCsv(path, data->df.schema(), options, &stats);
  std::remove(path.c_str());
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectFramesIdentical(*sequential, *parallel);
  EXPECT_EQ(stats.rows, config.num_rows);
  EXPECT_GT(stats.chunks, 1u);       // actually segmented
  EXPECT_EQ(stats.parse_threads, 4u);

  // The warm-started index built off the merged columns must serve masks
  // identical to cold scans.
  for (size_t attr = 0; attr < parallel->num_columns(); ++attr) {
    if (parallel->column(attr).type() != AttrType::kCategorical) continue;
    for (size_t code = 0; code < parallel->column(attr).num_categories();
         ++code) {
      const Predicate p(attr, CompareOp::kEq,
                        Value(parallel->column(attr).CategoryName(
                            static_cast<int32_t>(code))));
      EXPECT_TRUE(p.Evaluate(*parallel) == p.EvaluateNaive(*parallel));
    }
  }
}

TEST(IngestTest, ParallelErrorsMatchSequentialSemantics) {
  IngestOptions options;
  options.num_threads = 3;
  options.chunk_bytes = 4;
  // Dangling quote / ragged row / bad numeric / empty input: the
  // parallel path re-drives failures through the sequential reader, so
  // codes (and messages) are the legacy ones.
  EXPECT_EQ(StreamCsvFromString("name,city,score\n\"alice,b,1\n",
                                TestSchema(), options)
                .status()
                .code(),
            StatusCode::kIOError);
  EXPECT_EQ(StreamCsvFromString("name,city,score\nalice,b\n", TestSchema(),
                                options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StreamCsvFromString("name,city,score\nalice,b,abc\nx,y,1\n",
                                TestSchema(), options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StreamCsvFromString("", TestSchema(), options).status().code(),
            StatusCode::kIOError);
}

TEST(IngestTest, ParallelRunsOnBorrowedScheduler) {
  TaskScheduler scheduler(3);
  IngestOptions options;
  options.scheduler = &scheduler;
  options.chunk_bytes = 16;
  IngestStats stats;
  const auto parallel =
      StreamCsvFromString(kEdgeCaseCsv, TestSchema(), options, &stats);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  const auto sequential = StreamCsvFromString(kEdgeCaseCsv, TestSchema());
  ASSERT_TRUE(sequential.ok());
  ExpectFramesIdentical(*sequential, *parallel);
  EXPECT_EQ(stats.parse_threads, 3u);
  EXPECT_GT(scheduler.GetStats().executed, 0u);
}

TEST(IngestTest, InferSchemaMatchesLegacyInference) {
  const std::string path = testing::TempDir() + "/faircap_ingest_infer.csv";
  {
    std::ofstream out(path);
    out << "a,b,c\nx,1,2.5\ny,2,NA\nz,3,7\n";
  }
  const auto legacy = ReadCsvInferSchema(path);
  ASSERT_TRUE(legacy.ok());
  const auto streamed = StreamCsvInferSchema(path);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  std::remove(path.c_str());
  ExpectFramesIdentical(*legacy, *streamed);
  EXPECT_EQ(streamed->schema().attribute(0).type, AttrType::kCategorical);
  EXPECT_EQ(streamed->schema().attribute(1).type, AttrType::kNumeric);
}

TEST(RepositoryTest, BuiltinsAreRegistered) {
  DatasetRepository repo;
  EXPECT_TRUE(repo.Contains("german"));
  EXPECT_TRUE(repo.Contains("stackoverflow"));
  EXPECT_TRUE(repo.Contains("synthetic"));
  EXPECT_TRUE(repo.Contains("file"));
  EXPECT_FALSE(repo.Contains("nope"));
  EXPECT_GE(repo.List().size(), 4u);
}

TEST(RepositoryTest, LoadsGermanWithRowOverride) {
  DatasetRequest request;
  request.name = "german";
  request.rows = 200;
  const auto dataset = DatasetRepository::Global().Load(request);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->name, "german");
  EXPECT_EQ(dataset->df.num_rows(), 200u);
  EXPECT_FALSE(dataset->protected_pattern.empty());
  EXPECT_GT(dataset->dag.num_nodes(), 0u);
}

TEST(RepositoryTest, LoadsParameterizedSynthetic) {
  DatasetRequest request;
  request.name = "synthetic";
  request.rows = 300;
  request.seed = 5;
  request.params["protected-fraction"] = "0.4";
  request.params["mutable"] = "2";
  const auto dataset = DatasetRepository::Global().Load(request);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->df.num_rows(), 300u);
  const size_t protected_rows =
      dataset->protected_pattern.Evaluate(dataset->df).Count();
  EXPECT_GT(protected_rows, 60u);   // ~120 expected
  EXPECT_LT(protected_rows, 180u);
}

TEST(RepositoryTest, UnknownNameAndBadParamsFail) {
  EXPECT_EQ(DatasetRepository::Global().Load("nope").status().code(),
            StatusCode::kNotFound);
  DatasetRequest request;
  request.name = "synthetic";
  request.params["protected-fraction"] = "banana";
  EXPECT_EQ(DatasetRepository::Global().Load(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RepositoryTest, AppendFromStringExtendsResidentTable) {
  auto schema = Schema::Create({
      {"city", AttrType::kCategorical, AttrRole::kImmutable},
      {"job", AttrType::kCategorical, AttrRole::kMutable},
      {"income", AttrType::kNumeric, AttrRole::kOutcome},
  });
  Dataset dataset;
  dataset.name = "inline";
  dataset.df = DataFrame::Create(std::move(schema).ValueOrDie());
  ASSERT_TRUE(
      dataset.df.AppendRow({Value("nyc"), Value("dev"), Value(100.0)}).ok());
  ASSERT_TRUE(
      dataset.df.AppendRow({Value("sf"), Value("qa"), Value(80.0)}).ok());
  const uint64_t gen_before = dataset.df.generation();

  // Delta parsed against the RESIDENT schema: the new city interns after
  // the resident categories, empty fields come in as nulls.
  DatasetRepository::AppendStats stats;
  const Status st = DatasetRepository::AppendFromString(
      &dataset, "city,job,income\nberlin,dev,120\nnyc,,\n", {}, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(dataset.df.num_rows(), 4u);
  EXPECT_EQ(stats.rows, 2u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(dataset.df.generation(), gen_before);
  EXPECT_EQ(dataset.df.GetValue(2, 0), Value("berlin"));
  EXPECT_EQ(dataset.df.GetValue(2, 2), Value(120.0));
  EXPECT_TRUE(dataset.df.GetValue(3, 1).is_null());
  EXPECT_EQ(dataset.df.column(0).CategoryName(2), "berlin");

  // A delta whose header does not match the resident schema fails
  // loudly and leaves the table untouched.
  EXPECT_FALSE(
      DatasetRepository::AppendFromString(&dataset, "city,job\nx,y\n").ok());
  EXPECT_EQ(dataset.df.num_rows(), 4u);
}

TEST(RepositoryTest, RegisterRejectsDuplicates) {
  DatasetRepository repo;
  const auto factory = [](const DatasetRequest&) -> Result<Dataset> {
    return Status::Internal("unused");
  };
  EXPECT_TRUE(repo.Register("custom", "a custom dataset", factory).ok());
  EXPECT_TRUE(repo.Contains("custom"));
  EXPECT_EQ(repo.Register("custom", "again", factory).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(repo.Register("german", "clash", factory).code(),
            StatusCode::kAlreadyExists);
}

TEST(RepositoryTest, FileDatasetLoadsThroughStreamingIngest) {
  // Generate a small dataset, persist CSV + DAG, reload via the "file"
  // factory, and check the round trip preserves rows and ground truth.
  SyntheticConfig config;
  config.num_rows = 250;
  config.seed = 3;
  const auto data = MakeSynthetic(config);
  ASSERT_TRUE(data.ok());

  const std::string csv_path = testing::TempDir() + "/faircap_repo_test.csv";
  const std::string dag_path = testing::TempDir() + "/faircap_repo_test.dag";
  ASSERT_TRUE(WriteCsv(data->df, csv_path).ok());
  {
    std::ofstream out(dag_path);
    out << DagToText(data->dag);
  }

  DatasetRequest request;
  request.name = "file";
  request.params["path"] = csv_path;
  request.params["dag"] = dag_path;
  request.params["outcome"] = "Outcome";
  request.params["mutable"] = "M1,M2,M3";
  request.params["protected"] = "Group=protected";
  const auto dataset = DatasetRepository::Global().Load(request);
  std::remove(csv_path.c_str());
  std::remove(dag_path.c_str());
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  EXPECT_EQ(dataset->df.num_rows(), 250u);
  EXPECT_EQ(dataset->df.schema()
                .attribute(dataset->df.schema().OutcomeIndex().ValueOrDie())
                .name,
            "Outcome");
  EXPECT_EQ(dataset->df.schema().IndicesWithRole(AttrRole::kMutable).size(),
            3u);
  EXPECT_TRUE(dataset->protected_pattern.Evaluate(dataset->df) ==
              data->protected_pattern.Evaluate(data->df));
  // The file path came in through streaming ingest: index starts warm.
  EXPECT_GT(dataset->df.predicate_index().GetStats().warm_atom_masks, 0u);

  // Missing params fail loudly.
  DatasetRequest incomplete;
  incomplete.name = "file";
  EXPECT_EQ(DatasetRepository::Global().Load(incomplete).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace faircap
