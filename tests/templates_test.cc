#include "core/templates.h"

#include <gtest/gtest.h>

namespace faircap {
namespace {

Schema TestSchema() {
  return Schema::Create({
                            {"AgeGroup", AttrType::kCategorical,
                             AttrRole::kImmutable},
                            {"Dependents", AttrType::kCategorical,
                             AttrRole::kImmutable},
                            {"Role", AttrType::kCategorical,
                             AttrRole::kMutable},
                            {"Hours", AttrType::kNumeric, AttrRole::kMutable},
                            {"Salary", AttrType::kNumeric,
                             AttrRole::kOutcome},
                        })
      .ValueOrDie();
}

PrescriptionRule ExampleRule() {
  PrescriptionRule rule;
  rule.grouping = Pattern({Predicate(0, CompareOp::kEq, Value("25-34")),
                           Predicate(1, CompareOp::kEq, Value("yes"))});
  rule.intervention =
      Pattern({Predicate(2, CompareOp::kEq, Value("frontend"))});
  rule.utility = 44009.0;
  rule.utility_protected = 13000.0;
  rule.utility_nonprotected = 46000.0;
  rule.support = 1090;
  return rule;
}

TEST(TemplatesTest, FullSentence) {
  TemplateOptions options;
  options.utility_unit = "$";
  const std::string text =
      RuleToNaturalLanguage(ExampleRule(), TestSchema(), options);
  EXPECT_NE(text.find("For individuals with AgeGroup 25-34 and Dependents "
                      "yes"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("set Role to frontend"), std::string::npos);
  EXPECT_NE(text.find("$44009"), std::string::npos);
  EXPECT_NE(text.find("protected $13000"), std::string::npos);
  EXPECT_NE(text.find("1090 individuals"), std::string::npos);
}

TEST(TemplatesTest, EmptyGroupingSaysForEveryone) {
  PrescriptionRule rule = ExampleRule();
  rule.grouping = Pattern::Empty();
  const std::string text = RuleToNaturalLanguage(rule, TestSchema());
  EXPECT_EQ(text.rfind("For everyone, ", 0), 0u) << text;
}

TEST(TemplatesTest, OrderedOpsRenderedAsPhrases) {
  PrescriptionRule rule;
  rule.grouping = Pattern({Predicate(0, CompareOp::kNe, Value("45+"))});
  rule.intervention = Pattern({Predicate(3, CompareOp::kGe, Value(9.0))});
  rule.utility = 1.0;
  const std::string text = RuleToNaturalLanguage(rule, TestSchema());
  EXPECT_NE(text.find("AgeGroup other than 45+"), std::string::npos) << text;
  EXPECT_NE(text.find("keep Hours at least 9"), std::string::npos) << text;
}

TEST(TemplatesTest, OptionsSuppressDetails) {
  TemplateOptions options;
  options.include_group_utilities = false;
  options.include_support = false;
  const std::string text =
      RuleToNaturalLanguage(ExampleRule(), TestSchema(), options);
  EXPECT_EQ(text.find("protected"), std::string::npos);
  EXPECT_EQ(text.find("individuals)"), std::string::npos);
}

TEST(TemplatesTest, RulesetIsNumberedList) {
  const std::vector<PrescriptionRule> rules = {ExampleRule(), ExampleRule()};
  const std::string text = RulesetToNaturalLanguage(rules, TestSchema());
  EXPECT_NE(text.find("1. For individuals"), std::string::npos);
  EXPECT_NE(text.find("2. For individuals"), std::string::npos);
}

}  // namespace
}  // namespace faircap
