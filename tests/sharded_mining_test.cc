// Shard-merge determinism for Step-2 mining: the sharded
// sufficient-statistics path must reproduce the unsharded oracle across
// shard counts {1, 2, 7, thread-count} — support and arm counts exactly
// for every shard count; estimates bit-for-bit wherever the accumulated
// sums are exact in double (integer-valued outcomes/confounders — the
// synthetic-with-nulls table below), and within tight tolerance on
// continuous data (german), where only floating-point summation order
// differs at shard boundaries. The full pipeline must select the same
// ruleset either way, and a fixed shard count must be bit-identical no
// matter how many threads execute it.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "causal/estimator.h"
#include "core/faircap.h"
#include "data/german.h"
#include "mining/shard_plan.h"
#include "util/random.h"
#include "util/task_scheduler.h"

namespace faircap {
namespace {

struct TestData {
  DataFrame df;
  CausalDag dag;
  Pattern protected_pattern;
};

// Synthetic-with-nulls: every numeric value is a small integer, so all
// sufficient-statistics sums ({n, Σy, Σy²}, numeric moments) are exact in
// double and the shard merge is associative — sharded estimates must be
// bit-for-bit equal to the unsharded pass. Nulls in both confounders and
// the grouping attribute exercise the cell-(-1) and null-mask paths.
TestData MakeIntegerSynthetic(size_t n, uint64_t seed) {
  auto schema = Schema::Create({
      {"Prot", AttrType::kCategorical, AttrRole::kImmutable},
      {"G", AttrType::kCategorical, AttrRole::kImmutable},
      {"Zc", AttrType::kCategorical, AttrRole::kImmutable},
      {"Zn", AttrType::kNumeric, AttrRole::kImmutable},
      {"T1", AttrType::kCategorical, AttrRole::kMutable},
      {"T2", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  const char* zc_levels[] = {"a", "b", "c"};
  const char* g_levels[] = {"g0", "g1", "g2"};
  for (size_t i = 0; i < n; ++i) {
    const bool prot = rng.NextBernoulli(0.3);
    const size_t g = rng.NextBounded(3);
    const size_t zc = rng.NextBounded(3);
    const double zn = static_cast<double>(rng.NextBounded(9)) - 4.0;
    const bool zc_null = rng.NextBernoulli(0.06);
    const bool zn_null = rng.NextBernoulli(0.06);
    const bool t1 =
        rng.NextBernoulli(0.25 + 0.15 * static_cast<double>(zc) +
                          (zn > 0.0 ? 0.15 : 0.0));
    const bool t2 = rng.NextBernoulli(0.5);
    const double o = 5.0 + 3.0 * static_cast<double>(zc) + 2.0 * zn +
                     (t1 ? (prot ? 2.0 : 6.0) : 0.0) + (t2 ? 3.0 : 0.0) +
                     static_cast<double>(rng.NextBounded(5));
    const Status st = df.AppendRow(
        {Value(prot ? "yes" : "no"), Value(g_levels[g]),
         zc_null ? Value::Null() : Value(zc_levels[zc]),
         zn_null ? Value::Null() : Value(zn), Value(t1 ? "yes" : "no"),
         Value(t2 ? "hi" : "lo"), Value(o)});
    EXPECT_TRUE(st.ok());
  }
  CausalDag dag = CausalDag::Create({"Prot", "G", "Zc", "Zn", "T1", "T2", "O"},
                                    {{"Zc", "T1"},
                                     {"Zn", "T1"},
                                     {"Zc", "O"},
                                     {"Zn", "O"},
                                     {"Prot", "O"},
                                     {"T1", "O"},
                                     {"T2", "O"}})
                      .ValueOrDie();
  Pattern protected_pattern({Predicate(0, CompareOp::kEq, Value("yes"))});
  return {std::move(df), std::move(dag), std::move(protected_pattern)};
}

void ExpectSameEstimate(const Result<CateEstimate>& sharded,
                        const Result<CateEstimate>& oracle, double tol,
                        const std::string& label) {
  ASSERT_EQ(sharded.ok(), oracle.ok())
      << label << ": sharded="
      << (sharded.ok() ? "ok" : sharded.status().ToString()) << " oracle="
      << (oracle.ok() ? "ok" : oracle.status().ToString());
  if (!sharded.ok()) return;
  // Integer statistics are exact for every shard count.
  EXPECT_EQ(sharded->n_treated, oracle->n_treated) << label;
  EXPECT_EQ(sharded->n_control, oracle->n_control) << label;
  if (tol == 0.0) {
    EXPECT_EQ(sharded->cate, oracle->cate) << label << " (bit-for-bit)";
    EXPECT_EQ(sharded->std_error, oracle->std_error) << label;
  } else {
    EXPECT_NEAR(sharded->cate, oracle->cate,
                tol * std::max(1.0, std::abs(oracle->cate)))
        << label;
    EXPECT_NEAR(sharded->std_error, oracle->std_error,
                1e-6 * std::max(1.0, oracle->std_error))
        << label;
  }
}

// Engine-level pin: sharded EstimateSubgroups vs the unsharded batch call
// for all three methods and all three subgroups.
void RunEngineSweep(const TestData& data, double tol, uint64_t seed,
                    const std::string& label) {
  const Bitmap protected_mask = data.protected_pattern.Evaluate(data.df);
  // First mutable categorical attribute, first category: present in every
  // dataset under test.
  size_t t_attr = SIZE_MAX;
  for (size_t attr : data.df.schema().IndicesWithRole(AttrRole::kMutable)) {
    if (data.df.column(attr).type() == AttrType::kCategorical &&
        data.df.column(attr).num_categories() > 0) {
      t_attr = attr;
      break;
    }
  }
  ASSERT_NE(t_attr, SIZE_MAX);
  const Pattern intervention({Predicate(
      t_attr, CompareOp::kEq, Value(data.df.column(t_attr).CategoryName(0)))});
  TaskScheduler scheduler(4);
  Rng rng(seed);
  Bitmap dense(data.df.num_rows());
  for (size_t r = 0; r < data.df.num_rows(); ++r) {
    if (rng.NextBernoulli(0.7)) dense.Set(r);
  }
  for (const CateMethod method :
       {CateMethod::kRegression, CateMethod::kStratified, CateMethod::kIpw}) {
    CateOptions options;
    options.method = method;
    const auto est = CateEstimator::Create(&data.df, &data.dag, options);
    ASSERT_TRUE(est.ok());
    for (const Bitmap* group : {&dense}) {
      const Result<CateSubgroupEstimates> oracle =
          est->EstimateSubgroups(intervention, *group, &protected_mask, 5);
      ASSERT_TRUE(oracle.ok());
      for (const size_t shards :
           {size_t{1}, size_t{2}, size_t{7}, size_t{16}}) {
        const ShardPlan plan = ShardPlan::Create(data.df.num_rows(), shards);
        const std::string tag = label + "/m" +
                                std::to_string(static_cast<int>(method)) +
                                "/s" + std::to_string(shards);
        // Scheduled and inline execution of the same plan must both
        // match: the merge order comes from the plan, not the scheduler.
        for (const bool scheduled : {false, true}) {
          TaskGroup shard_tasks(scheduled ? &scheduler : nullptr);
          const Result<CateSubgroupEstimates> sharded =
              est->EstimateSubgroups(intervention, *group, &protected_mask, 5,
                                     /*skip_subgroups_unless_positive=*/false,
                                     &plan, scheduled ? &shard_tasks : nullptr);
          ASSERT_TRUE(sharded.ok()) << tag;
          // A single-shard plan IS the unsharded pass: always bit-for-bit.
          const double want_tol = shards == 1 ? 0.0 : tol;
          ExpectSameEstimate(sharded->overall, oracle->overall, want_tol,
                             tag + "/overall");
          ExpectSameEstimate(sharded->protected_group, oracle->protected_group,
                             want_tol, tag + "/protected");
          ExpectSameEstimate(sharded->nonprotected, oracle->nonprotected,
                             want_tol, tag + "/nonprotected");
        }
      }
    }
  }
}

TEST(ShardedMiningTest, EngineShardedMatchesOracleBitForBitOnIntegerData) {
  // Integer-valued data: exact sums, so every shard count is bit-for-bit.
  RunEngineSweep(MakeIntegerSynthetic(6000, 31), /*tol=*/0.0, 31, "int");
}

TEST(ShardedMiningTest, EngineShardedMatchesOracleOnGerman) {
  GermanConfig config;
  config.num_rows = 2000;
  config.seed = 32;
  const auto german = MakeGerman(config);
  ASSERT_TRUE(german.ok());
  TestData data{german->df, german->dag, german->protected_pattern};
  // Continuous outcomes: shard boundaries reassociate the sums, so pin to
  // tight tolerance (counts stay exact inside ExpectSameEstimate).
  RunEngineSweep(data, /*tol=*/1e-9, 32, "german");
}

void ExpectSameRuleset(const FairCapResult& sharded,
                       const FairCapResult& oracle, double tol,
                       const std::string& label) {
  EXPECT_EQ(sharded.num_grouping_patterns, oracle.num_grouping_patterns)
      << label;
  ASSERT_EQ(sharded.rules.size(), oracle.rules.size()) << label;
  for (size_t i = 0; i < sharded.rules.size(); ++i) {
    const PrescriptionRule& a = sharded.rules[i];
    const PrescriptionRule& b = oracle.rules[i];
    const std::string tag = label + "/rule" + std::to_string(i);
    EXPECT_TRUE(a.grouping == b.grouping) << tag;
    EXPECT_TRUE(a.intervention == b.intervention) << tag;
    EXPECT_EQ(a.support, b.support) << tag;
    EXPECT_EQ(a.support_protected, b.support_protected) << tag;
    if (tol == 0.0) {
      EXPECT_EQ(a.utility, b.utility) << tag << " (bit-for-bit)";
      EXPECT_EQ(a.utility_protected, b.utility_protected) << tag;
      EXPECT_EQ(a.utility_nonprotected, b.utility_nonprotected) << tag;
    } else {
      EXPECT_NEAR(a.utility, b.utility,
                  tol * std::max(1.0, std::abs(b.utility)))
          << tag;
      EXPECT_NEAR(a.utility_protected, b.utility_protected,
                  tol * std::max(1.0, std::abs(b.utility_protected)))
          << tag;
      EXPECT_NEAR(a.utility_nonprotected, b.utility_nonprotected,
                  tol * std::max(1.0, std::abs(b.utility_nonprotected)))
          << tag;
    }
  }
}

FairCapResult RunPipeline(const TestData& data, size_t num_shards,
                          size_t num_threads) {
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.25;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 2;
  options.fairness = FairnessConstraint::GroupSP(1e9);
  options.num_threads = num_threads;
  options.num_shards = num_shards;
  auto solver =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
  EXPECT_TRUE(solver.ok());
  auto result = solver->Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(ShardedMiningTest, PipelineShardedMatchesOracleOnIntegerData) {
  const TestData data = MakeIntegerSynthetic(5000, 41);
  const FairCapResult oracle = RunPipeline(data, /*num_shards=*/1,
                                           /*num_threads=*/1);
  ASSERT_FALSE(oracle.rules.empty());
  for (const size_t shards : {size_t{2}, size_t{7}, size_t{0}}) {
    // num_shards=0 resolves to the thread count.
    const FairCapResult sharded = RunPipeline(data, shards,
                                              /*num_threads=*/4);
    ExpectSameRuleset(sharded, oracle, /*tol=*/0.0,
                      "int/s" + std::to_string(shards));
  }
}

TEST(ShardedMiningTest, PipelineShardedMatchesOracleOnGerman) {
  GermanConfig config;
  config.num_rows = 1500;
  config.seed = 42;
  const auto german = MakeGerman(config);
  ASSERT_TRUE(german.ok());
  const TestData data{german->df, german->dag, german->protected_pattern};
  const FairCapResult oracle = RunPipeline(data, 1, 1);
  ASSERT_FALSE(oracle.rules.empty());
  for (const size_t shards : {size_t{2}, size_t{7}}) {
    const FairCapResult sharded = RunPipeline(data, shards, 4);
    ExpectSameRuleset(sharded, oracle, /*tol=*/1e-9,
                      "german/s" + std::to_string(shards));
  }
}

TEST(ShardedMiningTest, FixedShardCountIsThreadCountDeterministic) {
  // For a fixed plan the merge order is fixed, so 1 thread vs 4 threads
  // must agree bit-for-bit even on continuous data.
  GermanConfig config;
  config.num_rows = 1500;
  config.seed = 43;
  const auto german = MakeGerman(config);
  ASSERT_TRUE(german.ok());
  const TestData data{german->df, german->dag, german->protected_pattern};
  const FairCapResult sequential = RunPipeline(data, /*num_shards=*/7,
                                               /*num_threads=*/1);
  const FairCapResult pooled = RunPipeline(data, /*num_shards=*/7,
                                           /*num_threads=*/4);
  ExpectSameRuleset(pooled, sequential, /*tol=*/0.0, "determinism");
}

}  // namespace
}  // namespace faircap
