#include "dataframe/discretize.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace faircap {
namespace {

DataFrame NumericFrame(size_t n, uint64_t seed) {
  auto schema = Schema::Create({
      {"age", AttrType::kNumeric, AttrRole::kImmutable},
      {"outcome", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(df.AppendRow({Value(rng.NextUniform(18.0, 70.0)),
                              Value(rng.NextGaussian())})
                    .ok());
  }
  return df;
}

TEST(DiscretizeTest, EqualFrequencyBinsAreBalanced) {
  const DataFrame df = NumericFrame(1000, 1);
  DiscretizeOptions options;
  options.num_bins = 4;
  const auto binned = DiscretizeColumn(df, "age", options);
  ASSERT_TRUE(binned.ok()) << binned.status().ToString();
  const size_t attr = *binned->schema().IndexOf("age");
  const Column& col = binned->column(attr);
  EXPECT_EQ(col.type(), AttrType::kCategorical);
  EXPECT_EQ(col.num_categories(), 4u);
  // Quantile bins: each holds ~25%.
  std::vector<size_t> counts(4, 0);
  for (size_t r = 0; r < binned->num_rows(); ++r) {
    ++counts[static_cast<size_t>(col.code(r))];
  }
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 250.0, 30.0);
  }
}

TEST(DiscretizeTest, RolePreservedAndOtherColumnsIntact) {
  const DataFrame df = NumericFrame(100, 2);
  const auto binned = DiscretizeColumn(df, "age");
  ASSERT_TRUE(binned.ok());
  EXPECT_EQ(binned->schema().attribute(0).role, AttrRole::kImmutable);
  EXPECT_EQ(binned->num_rows(), df.num_rows());
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(binned->GetValue(r, 1), df.GetValue(r, 1));
  }
}

TEST(DiscretizeTest, NullsStayNull) {
  auto schema = Schema::Create({
      {"x", AttrType::kNumeric, AttrRole::kImmutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  ASSERT_TRUE(df.AppendRow({Value(1.0)}).ok());
  ASSERT_TRUE(df.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(df.AppendRow({Value(2.0)}).ok());
  const auto binned = DiscretizeColumn(df, "x");
  ASSERT_TRUE(binned.ok());
  EXPECT_FALSE(binned->GetValue(0, 0).is_null());
  EXPECT_TRUE(binned->GetValue(1, 0).is_null());
}

TEST(DiscretizeTest, EqualWidthStrategy) {
  auto schema = Schema::Create({
      {"x", AttrType::kNumeric, AttrRole::kImmutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  for (double v : {0.0, 1.0, 5.0, 9.0, 10.0}) {
    ASSERT_TRUE(df.AppendRow({Value(v)}).ok());
  }
  DiscretizeOptions options;
  options.num_bins = 2;
  options.strategy = BinningStrategy::kEqualWidth;
  const auto binned = DiscretizeColumn(df, "x", options);
  ASSERT_TRUE(binned.ok());
  const Column& col = binned->column(0);
  // Boundary at 5: values {0,1} low bin, {5,9,10} high bin.
  EXPECT_EQ(col.code(0), col.code(1));
  EXPECT_EQ(col.code(2), col.code(4));
  EXPECT_NE(col.code(0), col.code(2));
}

TEST(DiscretizeTest, ConstantColumnCollapsesToOneBin) {
  auto schema = Schema::Create({
      {"x", AttrType::kNumeric, AttrRole::kImmutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(df.AppendRow({Value(7.0)}).ok());
  const auto binned = DiscretizeColumn(df, "x");
  ASSERT_TRUE(binned.ok());
  EXPECT_EQ(binned->column(0).num_categories(), 1u);
  EXPECT_EQ(binned->GetValue(0, 0), Value("all"));
}

TEST(DiscretizeTest, RejectsBadInputs) {
  const DataFrame df = NumericFrame(10, 3);
  EXPECT_FALSE(DiscretizeColumn(df, "missing").ok());
  EXPECT_FALSE(DiscretizeColumn(df, "outcome").ok());  // refuses outcome
  DiscretizeOptions zero_bins;
  zero_bins.num_bins = 0;
  EXPECT_FALSE(DiscretizeColumn(df, "age", zero_bins).ok());
  // Categorical input rejected.
  auto schema = Schema::Create({
      {"c", AttrType::kCategorical, AttrRole::kImmutable},
  });
  DataFrame cat = DataFrame::Create(std::move(schema).ValueOrDie());
  ASSERT_TRUE(cat.AppendRow({Value("x")}).ok());
  EXPECT_FALSE(DiscretizeColumn(cat, "c").ok());
}

}  // namespace
}  // namespace faircap
