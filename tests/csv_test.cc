#include "dataframe/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace faircap {
namespace {

Schema TestSchema() {
  return Schema::Create({
                            {"name", AttrType::kCategorical,
                             AttrRole::kImmutable},
                            {"score", AttrType::kNumeric, AttrRole::kOutcome},
                        })
      .ValueOrDie();
}

TEST(CsvTest, ParseBasic) {
  const auto df = ParseCsv("name,score\nalice,1.5\nbob,2\n", TestSchema());
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  EXPECT_EQ(df->num_rows(), 2u);
  EXPECT_EQ(df->GetValue(0, 0), Value("alice"));
  EXPECT_EQ(df->GetValue(1, 1), Value(2.0));
}

TEST(CsvTest, ParseQuotedFieldsAndEscapes) {
  const auto df = ParseCsv(
      "name,score\n\"smith, john\",1\n\"say \"\"hi\"\"\",2\n", TestSchema());
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  EXPECT_EQ(df->GetValue(0, 0), Value("smith, john"));
  EXPECT_EQ(df->GetValue(1, 0), Value("say \"hi\""));
}

TEST(CsvTest, NullTokensAndEmptyCells) {
  const auto df = ParseCsv("name,score\nNA,\nalice,3\n", TestSchema());
  ASSERT_TRUE(df.ok());
  EXPECT_TRUE(df->GetValue(0, 0).is_null());
  EXPECT_TRUE(df->GetValue(0, 1).is_null());
}

TEST(CsvTest, CrlfTolerated) {
  const auto df = ParseCsv("name,score\r\nalice,1\r\n", TestSchema());
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 1u);
  EXPECT_EQ(df->GetValue(0, 0), Value("alice"));
}

TEST(CsvTest, QuotedFieldMayContainRecordSeparators) {
  // A quoted field legally contains the delimiter, embedded newlines, and
  // CRLF sequences; only the terminating CR of the line ending is
  // stripped.
  const auto df = ParseCsv(
      "name,score\n\"line1\nline2\",1\r\n\"a,b\r\nc\",2\r\n", TestSchema());
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  ASSERT_EQ(df->num_rows(), 2u);
  EXPECT_EQ(df->GetValue(0, 0), Value("line1\nline2"));
  EXPECT_EQ(df->GetValue(1, 0), Value("a,b\r\nc"));
}

TEST(CsvTest, TrailingEmptyColumnIsNull) {
  const auto df =
      ParseCsv("name,score\nalice,\nbob,\r\n", TestSchema());
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  ASSERT_EQ(df->num_rows(), 2u);
  EXPECT_TRUE(df->GetValue(0, 1).is_null());
  EXPECT_TRUE(df->GetValue(1, 1).is_null());  // CRLF after the empty cell
}

TEST(CsvTest, CrOnlyBlankLineSkipped) {
  const auto df = ParseCsv("name,score\r\n\r\nalice,1\r\n", TestSchema());
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  EXPECT_EQ(df->num_rows(), 1u);
}

TEST(CsvTest, UnterminatedQuoteAcrossLinesRejected) {
  const auto df = ParseCsv("name,score\n\"open\nnever,1\n", TestSchema());
  EXPECT_EQ(df.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, HeaderMismatchRejected) {
  const auto df = ParseCsv("wrong,score\nalice,1\n", TestSchema());
  EXPECT_EQ(df.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RaggedRowRejected) {
  const auto df = ParseCsv("name,score\nalice\n", TestSchema());
  EXPECT_EQ(df.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, NonNumericCellRejected) {
  const auto df = ParseCsv("name,score\nalice,abc\n", TestSchema());
  EXPECT_EQ(df.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, DanglingQuoteRejected) {
  const auto df = ParseCsv("name,score\n\"alice,1\n", TestSchema());
  EXPECT_EQ(df.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, EmptyInputRejected) {
  const auto df = ParseCsv("", TestSchema());
  EXPECT_EQ(df.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, SchemaInference) {
  const auto df = ParseCsvInferSchema(
      "a,b,c\nx,1,2.5\ny,2,NA\nz,3,7\n");
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  EXPECT_EQ(df->schema().attribute(0).type, AttrType::kCategorical);
  EXPECT_EQ(df->schema().attribute(1).type, AttrType::kNumeric);
  EXPECT_EQ(df->schema().attribute(2).type, AttrType::kNumeric);
  EXPECT_TRUE(df->GetValue(1, 2).is_null());
}

TEST(CsvTest, InferenceMixedColumnFallsBackToCategorical) {
  const auto df = ParseCsvInferSchema("a\n1\nx\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->schema().attribute(0).type, AttrType::kCategorical);
}

TEST(CsvTest, WriteReadRoundTrip) {
  DataFrame df = DataFrame::Create(TestSchema());
  ASSERT_TRUE(df.AppendRow({Value("has,comma"), Value(1.5)}).ok());
  ASSERT_TRUE(df.AppendRow({Value::Null(), Value(2.0)}).ok());

  const std::string path = testing::TempDir() + "/faircap_csv_test.csv";
  ASSERT_TRUE(WriteCsv(df, path).ok());
  const auto loaded = ReadCsv(path, TestSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->GetValue(0, 0), Value("has,comma"));
  EXPECT_TRUE(loaded->GetValue(1, 0).is_null());
  EXPECT_EQ(loaded->GetValue(1, 1), Value(2.0));
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileIsIOError) {
  const auto df = ReadCsv("/nonexistent/path.csv", TestSchema());
  EXPECT_EQ(df.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace faircap
