#include "core/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "test_data.h"

namespace faircap {
namespace {

FairCapResult SmallResult(const ToyData& data) {
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.3;
  options.lattice.max_predicates = 1;
  options.num_threads = 1;
  auto solver =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
  return std::move(solver->Run()).ValueOrDie();
}

TEST(ReportTest, PatternJsonShape) {
  const ToyData data = MakeToyData(200);
  const size_t group = *data.df.schema().IndexOf("Group");
  const Pattern p({Predicate(group, CompareOp::kEq, Value("g1"))});
  EXPECT_EQ(PatternToJson(p, data.df.schema()),
            "[{\"attr\":\"Group\",\"op\":\"=\",\"value\":\"g1\"}]");
  EXPECT_EQ(PatternToJson(Pattern::Empty(), data.df.schema()), "[]");
}

TEST(ReportTest, NumericValuesUnquotedStringsEscaped) {
  auto schema = Schema::Create({
                                   {"x\"y", AttrType::kNumeric,
                                    AttrRole::kImmutable},
                               })
                    .ValueOrDie();
  const Pattern p({Predicate(0, CompareOp::kGe, Value(2.5))});
  const std::string json = PatternToJson(p, schema);
  EXPECT_NE(json.find("\"value\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("x\\\"y"), std::string::npos) << json;
}

TEST(ReportTest, ResultJsonContainsAllSections) {
  const ToyData data = MakeToyData(2000);
  const FairCapResult result = SmallResult(data);
  const std::string json = ResultToJson(result, data.df.schema());
  for (const char* key :
       {"\"stats\":", "\"timings\":", "\"rules\":", "\"exp_utility\":",
        "\"constraints_satisfied\":", "\"unfairness\":",
        "\"coverage_fraction\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Rule count in JSON matches the result.
  size_t count = 0;
  for (size_t pos = 0; (pos = json.find("\"grouping\":", pos)) !=
                       std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, result.rules.size());
}

TEST(ReportTest, BalancedBracesSmokeCheck) {
  const ToyData data = MakeToyData(1000);
  const std::string json = ResultToJson(SmallResult(data), data.df.schema());
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ReportTest, WriteToFile) {
  const ToyData data = MakeToyData(500);
  const FairCapResult result = SmallResult(data);
  const std::string path = testing::TempDir() + "/faircap_report.json";
  ASSERT_TRUE(WriteResultJson(result, data.df.schema(), path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, ResultToJson(result, data.df.schema()) + "\n");
  std::remove(path.c_str());
  EXPECT_FALSE(
      WriteResultJson(result, data.df.schema(), "/nonexistent/x.json").ok());
}

}  // namespace
}  // namespace faircap
