#include "util/string_util.h"

#include <gtest/gtest.h>

namespace faircap {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyStringYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ParseDoubleTest, ValidInputs) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-5", &v));
  EXPECT_EQ(v, -5);
  EXPECT_FALSE(ParseInt64("12.5", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("x", &v));
}

TEST(FormatDoubleTest, CompactRendering) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(22000.0), "22000");
}

}  // namespace
}  // namespace faircap
