#include "causal/logistic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace faircap {
namespace {

TEST(LogisticTest, RecoversPlantedCoefficients) {
  Rng rng(3);
  const size_t n = 20000, p = 3;
  std::vector<double> x(n * p), y(n);
  const double beta_true[3] = {-0.5, 1.5, -2.0};
  for (size_t r = 0; r < n; ++r) {
    x[r * p] = 1.0;
    x[r * p + 1] = rng.NextGaussian();
    x[r * p + 2] = rng.NextGaussian();
    double z = 0.0;
    for (size_t j = 0; j < p; ++j) z += beta_true[j] * x[r * p + j];
    y[r] = rng.NextBernoulli(1.0 / (1.0 + std::exp(-z))) ? 1.0 : 0.0;
  }
  const auto fit = FitLogistic(x, n, p, y);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_TRUE(fit->converged);
  for (size_t j = 0; j < p; ++j) {
    EXPECT_NEAR(fit->beta[j], beta_true[j], 0.1) << "coefficient " << j;
  }
}

TEST(LogisticTest, PredictMatchesSigmoid) {
  const std::vector<double> beta = {0.0, 1.0};
  const double x_mid[2] = {1.0, 0.0};
  EXPECT_NEAR(PredictLogistic(beta, x_mid), 0.5, 1e-12);
  const double x_pos[2] = {1.0, 10.0};
  EXPECT_GT(PredictLogistic(beta, x_pos), 0.99);
  const double x_neg[2] = {1.0, -10.0};
  EXPECT_LT(PredictLogistic(beta, x_neg), 0.01);
}

TEST(LogisticTest, SeparableDataStaysFiniteViaRidge) {
  // Perfectly separable: y = 1 iff x > 0; unregularized MLE diverges.
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    const double v = i < 50 ? -1.0 - i * 0.01 : 1.0 + i * 0.01;
    x.push_back(1.0);
    x.push_back(v);
    y.push_back(v > 0 ? 1.0 : 0.0);
  }
  const auto fit = FitLogistic(x, 100, 2, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(std::isfinite(fit->beta[0]));
  EXPECT_TRUE(std::isfinite(fit->beta[1]));
  EXPECT_GT(fit->beta[1], 1.0);  // still strongly positive
}

TEST(LogisticTest, DimensionMismatchRejected) {
  EXPECT_FALSE(FitLogistic({1.0, 2.0}, 1, 3, {1.0}).ok());
  EXPECT_FALSE(FitLogistic({1.0, 2.0}, 2, 1, {1.0}).ok());
}

TEST(LogisticTest, UnderdeterminedRejected) {
  EXPECT_EQ(FitLogistic({1.0, 2.0}, 1, 2, {1.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace faircap
