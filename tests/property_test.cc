// Parameterized property suites: estimator consistency across seeds and
// effect sizes, matroid properties of the individual-fairness and
// rule-coverage candidate sets (Appendix 9.1), monotonicity of the
// fairness-threshold sweep, and Apriori anti-monotonicity.

#include <gtest/gtest.h>

#include <cmath>

#include "causal/estimator.h"
#include "core/greedy.h"
#include "mining/apriori.h"
#include "test_data.h"

namespace faircap {
namespace {

// ---------------------------------------------------------------------------
// Estimator recovers planted effects across seeds and effect sizes.

struct EffectCase {
  double effect;
  uint64_t seed;
};

class EstimatorRecovery : public ::testing::TestWithParam<EffectCase> {};

TEST_P(EstimatorRecovery, RegressionRecoversPlantedEffect) {
  const auto [effect, seed] = GetParam();
  auto schema = Schema::Create({
      {"Z", AttrType::kCategorical, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed);
  for (int i = 0; i < 6000; ++i) {
    const bool z = rng.NextBernoulli(0.4);
    const bool t = rng.NextBernoulli(z ? 0.7 : 0.3);
    const double o =
        (z ? 8.0 : 0.0) + (t ? effect : 0.0) + rng.NextGaussian(0.0, 1.5);
    ASSERT_TRUE(df.AppendRow({Value(z ? "1" : "0"), Value(t ? "1" : "0"),
                              Value(o)})
                    .ok());
  }
  const CausalDag dag =
      CausalDag::Create({"Z", "T", "O"}, {{"Z", "T"}, {"Z", "O"}, {"T", "O"}})
          .ValueOrDie();
  const auto est = CateEstimator::Create(&df, &dag);
  ASSERT_TRUE(est.ok());
  const size_t t = *df.schema().IndexOf("T");
  const auto cate = est->Estimate(
      Pattern({Predicate(t, CompareOp::kEq, Value("1"))}), df.AllRows());
  ASSERT_TRUE(cate.ok());
  EXPECT_NEAR(cate->cate, effect, 0.25);
}

TEST_P(EstimatorRecovery, StratifiedAgreesWithRegression) {
  const auto [effect, seed] = GetParam();
  auto schema = Schema::Create({
      {"Z", AttrType::kCategorical, AttrRole::kImmutable},
      {"T", AttrType::kCategorical, AttrRole::kMutable},
      {"O", AttrType::kNumeric, AttrRole::kOutcome},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  Rng rng(seed + 1000);
  for (int i = 0; i < 6000; ++i) {
    const bool z = rng.NextBernoulli(0.4);
    const bool t = rng.NextBernoulli(z ? 0.7 : 0.3);
    const double o =
        (z ? 8.0 : 0.0) + (t ? effect : 0.0) + rng.NextGaussian(0.0, 1.5);
    ASSERT_TRUE(df.AppendRow({Value(z ? "1" : "0"), Value(t ? "1" : "0"),
                              Value(o)})
                    .ok());
  }
  const CausalDag dag =
      CausalDag::Create({"Z", "T", "O"}, {{"Z", "T"}, {"Z", "O"}, {"T", "O"}})
          .ValueOrDie();
  CateOptions reg_opt;
  CateOptions strat_opt;
  strat_opt.method = CateMethod::kStratified;
  const auto reg = CateEstimator::Create(&df, &dag, reg_opt);
  const auto strat = CateEstimator::Create(&df, &dag, strat_opt);
  ASSERT_TRUE(reg.ok() && strat.ok());
  const size_t t = *df.schema().IndexOf("T");
  const Pattern pattern({Predicate(t, CompareOp::kEq, Value("1"))});
  const auto c1 = reg->Estimate(pattern, df.AllRows());
  const auto c2 = strat->Estimate(pattern, df.AllRows());
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NEAR(c1->cate, c2->cate, 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    EffectSweep, EstimatorRecovery,
    ::testing::Values(EffectCase{0.5, 1}, EffectCase{1.0, 2},
                      EffectCase{2.0, 3}, EffectCase{4.0, 4},
                      EffectCase{8.0, 5}, EffectCase{1.0, 77},
                      EffectCase{2.0, 99}));

// ---------------------------------------------------------------------------
// Matroid properties (Appendix 9.1): the feasible sets of the individual
// fairness and rule coverage constraints are downward closed and satisfy
// the exchange property trivially (constraints are per-rule). We verify
// downward closure + exchange on random rule pools.

class MatroidProperty : public ::testing::TestWithParam<uint64_t> {};

std::vector<PrescriptionRule> RandomRules(uint64_t seed, size_t count,
                                          const Bitmap& protected_mask) {
  Rng rng(seed);
  std::vector<PrescriptionRule> rules;
  const size_t n = protected_mask.size();
  for (size_t i = 0; i < count; ++i) {
    PrescriptionRule rule;
    rule.coverage = Bitmap(n);
    for (size_t r = 0; r < n; ++r) {
      if (rng.NextBernoulli(0.5)) rule.coverage.Set(r);
    }
    rule.coverage_protected = rule.coverage & protected_mask;
    rule.support = rule.coverage.Count();
    rule.support_protected = rule.coverage_protected.Count();
    rule.utility = rng.NextUniform(0.0, 100.0);
    rule.utility_protected = rng.NextUniform(0.0, 100.0);
    rule.utility_nonprotected = rng.NextUniform(0.0, 100.0);
    rules.push_back(std::move(rule));
  }
  return rules;
}

TEST_P(MatroidProperty, IndividualFairnessIsDownwardClosed) {
  Bitmap mask(50);
  for (size_t i = 0; i < 10; ++i) mask.Set(i);
  const auto rules = RandomRules(GetParam(), 12, mask);
  const FairnessConstraint c = FairnessConstraint::IndividualSP(30.0);
  // Feasible set S = all rules individually satisfying the constraint.
  std::vector<size_t> feasible;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (c.RuleSatisfies(rules[i])) feasible.push_back(i);
  }
  // Hereditary: every subset of a feasible set is feasible (per-rule
  // constraints check each member independently).
  for (size_t drop = 0; drop < feasible.size(); ++drop) {
    for (size_t i : feasible) {
      if (i == feasible[drop]) continue;
      EXPECT_TRUE(c.RuleSatisfies(rules[i]));
    }
  }
  // Exchange: any feasible rule extends any smaller feasible set.
  if (feasible.size() >= 2) {
    EXPECT_TRUE(c.RuleSatisfies(rules[feasible.back()]));
  }
}

TEST_P(MatroidProperty, RuleCoverageIsDownwardClosed) {
  Bitmap mask(50);
  for (size_t i = 0; i < 10; ++i) mask.Set(i);
  const auto rules = RandomRules(GetParam() + 500, 12, mask);
  const CoverageConstraint c = CoverageConstraint::Rule(0.4, 0.4);
  std::vector<size_t> feasible;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (c.RuleSatisfies(rules[i], 50, 10)) feasible.push_back(i);
  }
  for (size_t i : feasible) {
    // Membership does not depend on the rest of the set.
    EXPECT_TRUE(c.RuleSatisfies(rules[i], 50, 10));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatroidProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Greedy respects the group-SP threshold across epsilon values, and the
// achieved unfairness grows (weakly) with epsilon — the Table 5 shape.

class EpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonSweep, GreedyHonoursEpsilon) {
  const double epsilon = GetParam();
  Bitmap mask(100);
  for (size_t i = 0; i < 20; ++i) mask.Set(i);
  // Pool with a spectrum of gap sizes.
  std::vector<PrescriptionRule> rules;
  for (int gap = 0; gap <= 50; gap += 10) {
    PrescriptionRule rule;
    rule.coverage = Bitmap(100, true);
    rule.coverage_protected = rule.coverage & mask;
    rule.support = 100;
    rule.support_protected = 20;
    rule.utility = 50.0 + gap;  // bigger gap, bigger utility (the tension)
    rule.utility_protected = 50.0;
    rule.utility_nonprotected = 50.0 + gap;
    rules.push_back(std::move(rule));
  }
  const GreedyResult result =
      GreedySelect(rules, mask, FairnessConstraint::GroupSP(epsilon),
                   CoverageConstraint::None());
  ASSERT_FALSE(result.selected.empty());
  EXPECT_TRUE(result.constraints_satisfied);
  EXPECT_LE(std::abs(result.stats.unfairness), epsilon + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonSweep,
                         ::testing::Values(0.0, 5.0, 15.0, 25.0, 60.0));

// ---------------------------------------------------------------------------
// Apriori anti-monotonicity on random data across seeds.

class AprioriProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AprioriProperty, ExtensionsNeverGainSupport) {
  Rng rng(GetParam());
  auto schema = Schema::Create({
      {"a", AttrType::kCategorical, AttrRole::kImmutable},
      {"b", AttrType::kCategorical, AttrRole::kImmutable},
      {"c", AttrType::kCategorical, AttrRole::kImmutable},
  });
  DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
  const std::vector<std::string> cats = {"0", "1", "2"};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(df.AppendRow({Value(cats[rng.NextBounded(3)]),
                              Value(cats[rng.NextBounded(3)]),
                              Value(cats[rng.NextBounded(3)])})
                    .ok());
  }
  AprioriOptions options;
  options.min_support_fraction = 0.05;
  options.max_pattern_length = 3;
  const auto patterns = MineFrequentPatterns(df, {0, 1, 2}, options);
  ASSERT_TRUE(patterns.ok());
  // Index supports by key.
  std::unordered_map<std::string, size_t> support;
  for (const auto& fp : *patterns) support[fp.pattern.Key()] = fp.support;
  for (const auto& fp : *patterns) {
    if (fp.pattern.size() < 2) continue;
    // Every sub-pattern must be present with >= support.
    const auto& preds = fp.pattern.predicates();
    for (size_t drop = 0; drop < preds.size(); ++drop) {
      std::vector<Predicate> sub;
      for (size_t i = 0; i < preds.size(); ++i) {
        if (i != drop) sub.push_back(preds[i]);
      }
      const auto it = support.find(Pattern(sub).Key());
      ASSERT_NE(it, support.end());
      EXPECT_GE(it->second, fp.support);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Ruleset stats invariants on random pools.

class StatsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsProperty, AddingARuleNeverDecreasesOverallUtilityOrCoverage) {
  Bitmap mask(80);
  for (size_t i = 0; i < 16; ++i) mask.Set(i);
  auto rules = RandomRules(GetParam() + 900, 10, mask);
  for (auto& r : rules) {
    r.utility = std::abs(r.utility);  // positive-utility pool
  }
  std::vector<size_t> selected;
  RulesetStats previous = ComputeRulesetStats(rules, selected, mask);
  for (size_t i = 0; i < rules.size(); ++i) {
    selected.push_back(i);
    const RulesetStats now = ComputeRulesetStats(rules, selected, mask);
    EXPECT_GE(now.covered, previous.covered);
    // Per-tuple max over a larger set cannot shrink.
    EXPECT_GE(now.exp_utility, previous.exp_utility - 1e-9);
    previous = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Values(7u, 8u, 9u));

}  // namespace
}  // namespace faircap
