// Table 4 (top): Stack Overflow with SP fairness. Nine FairCap constraint
// variants plus the IDS and FRL baselines with their IF clauses adapted
// as grouping or intervention patterns (Section 7.1).
//
//   $ bench_table4_so [--rows=N] [--threads=N] [--full]
//
// Default is a single-core-friendly 6000 rows; --full runs the paper's
// 38K rows.

#include <iostream>

#include "baselines/adapters.h"
#include "baselines/frl.h"
#include "baselines/ids.h"
#include "bench_util.h"
#include "core/greedy.h"
#include "data/stackoverflow.h"

using namespace faircap;
using namespace faircap::bench;

namespace {

FairCapOptions BaseOptions(const BenchFlags& flags) {
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.1;  // paper default tau
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 2;
  options.cate.min_group_size = 30;
  options.num_threads = flags.threads;
  return options;
}

// Adapts a baseline's antecedents both ways and appends two rows.
void RunBaselineAdapters(const std::string& label,
                         const std::vector<Pattern>& antecedents,
                         const StackOverflowData& data,
                         const FairCapOptions& options,
                         std::vector<SolutionRow>* rows) {
  auto solver = FairCap::Create(&data.df, &data.dag, data.protected_pattern,
                                options);
  if (!solver.ok()) {
    std::cerr << solver.status().ToString() << "\n";
    std::exit(1);
  }
  const Bitmap protected_mask = solver->protected_mask();
  for (const auto& [mode, suffix] :
       std::vector<std::pair<IfClauseTreatment, std::string>>{
           {IfClauseTreatment::kAsGroupingPattern,
            " (IF clause as grouping pattern)"},
           {IfClauseTreatment::kAsInterventionPattern,
            " (IF clause as intervention pattern)"}}) {
    StopWatch watch;
    auto rules = AdaptBaselineRules(*solver, antecedents, mode);
    if (!rules.ok()) {
      std::cerr << rules.status().ToString() << "\n";
      std::exit(1);
    }
    const GreedyResult greedy =
        GreedySelect(*rules, protected_mask, FairnessConstraint::None(),
                     CoverageConstraint::None());
    rows->push_back({label + suffix, greedy.stats, watch.ElapsedSeconds()});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  StackOverflowConfig config;
  config.num_rows = flags.rows > 0 ? flags.rows : (flags.full ? 38000 : 6000);
  auto data_result = MakeStackOverflow(config);
  if (!data_result.ok()) {
    std::cerr << data_result.status().ToString() << "\n";
    return 1;
  }
  const StackOverflowData data = std::move(data_result).ValueOrDie();
  std::cout << "Stack Overflow (synthetic), " << data.df.num_rows()
            << " rows; SP fairness epsilon=$10k, coverage theta=0.5\n\n";

  const FairCapOptions options = BaseOptions(flags);
  std::vector<SolutionRow> rows;
  for (const Setting& setting :
       PaperSettings(/*use_bgl=*/false, /*fairness_threshold=*/10000.0,
                     /*theta=*/0.5)) {
    rows.push_back(RunSetting(data.df, data.dag, data.protected_pattern,
                              setting, options));
  }

  // IDS baseline.
  {
    IdsOptions ids_options;
    ids_options.apriori.min_support_fraction = 0.1;
    ids_options.apriori.max_pattern_length = 2;
    ids_options.max_rules = 16;
    auto ids_rules = FitIds(data.df, ids_options);
    if (!ids_rules.ok()) {
      std::cerr << ids_rules.status().ToString() << "\n";
      return 1;
    }
    std::vector<Pattern> antecedents;
    for (const auto& rule : *ids_rules) antecedents.push_back(rule.antecedent);
    RunBaselineAdapters("IDS", antecedents, data, options, &rows);
  }
  // FRL baseline.
  {
    FrlOptions frl_options;
    frl_options.apriori.min_support_fraction = 0.1;
    frl_options.apriori.max_pattern_length = 2;
    frl_options.max_rules = 16;
    auto frl_rules = FitFrl(data.df, frl_options);
    if (!frl_rules.ok()) {
      std::cerr << frl_rules.status().ToString() << "\n";
      return 1;
    }
    std::vector<Pattern> antecedents;
    for (const auto& rule : *frl_rules) antecedents.push_back(rule.antecedent);
    RunBaselineAdapters("FRL", antecedents, data, options, &rows);
  }

  PrintMetricsTable(std::cout, "Table 4 (Stack Overflow, SP fairness)", rows,
                    /*with_runtime=*/true);
  std::cout << "Paper shape to check: the no-constraint variant maximizes "
               "exp-util AND unfairness;\nfairness variants keep "
               "|unfairness| <= $10k at a utility cost; rule coverage\n"
               "prunes hardest; baselines trail FairCap on utility.\n";
  return 0;
}
