// Table 5: fairness-threshold sweep on Stack Overflow. Group and
// individual SP with epsilon in {2.5K, 5K, 10K, 20K}. The paper's shape:
// unfairness and overall utility grow with epsilon; protected utility
// falls; group-SP solutions always respect the threshold.
//
//   $ bench_table5_fairness_threshold [--rows=N] [--threads=N]

#include <iostream>

#include "bench_util.h"
#include "data/stackoverflow.h"

using namespace faircap;
using namespace faircap::bench;

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  StackOverflowConfig config;
  config.num_rows = flags.rows > 0 ? flags.rows : (flags.full ? 38000 : 6000);
  auto data_result = MakeStackOverflow(config);
  if (!data_result.ok()) {
    std::cerr << data_result.status().ToString() << "\n";
    return 1;
  }
  const StackOverflowData data = std::move(data_result).ValueOrDie();
  std::cout << "Stack Overflow (synthetic), " << data.df.num_rows()
            << " rows; SP epsilon sweep\n\n";

  FairCapOptions options;
  options.apriori.min_support_fraction = 0.1;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 2;
  options.cate.min_group_size = 30;
  options.num_threads = flags.threads;

  const double epsilons[] = {2500.0, 5000.0, 10000.0, 20000.0};
  std::vector<SolutionRow> rows;
  for (const double epsilon : epsilons) {
    Setting setting{"Group SP (" + std::to_string(static_cast<int>(epsilon)) +
                        ")",
                    FairnessConstraint::GroupSP(epsilon),
                    CoverageConstraint::None()};
    rows.push_back(RunSetting(data.df, data.dag, data.protected_pattern,
                              setting, options));
  }
  for (const double epsilon : epsilons) {
    Setting setting{"Individual SP (" +
                        std::to_string(static_cast<int>(epsilon)) + ")",
                    FairnessConstraint::IndividualSP(epsilon),
                    CoverageConstraint::None()};
    rows.push_back(RunSetting(data.df, data.dag, data.protected_pattern,
                              setting, options));
  }

  PrintMetricsTable(std::cout, "Table 5 (SP threshold sweep, SO)", rows,
                    /*with_runtime=*/true);
  std::cout << "Paper shape to check: group-SP unfairness stays <= epsilon "
               "and grows with it;\noverall exp-util grows with epsilon; "
               "individual-SP rulesets can still show a large\naggregate "
               "gap (worst-case min/max semantics) even when every rule is "
               "individually fair.\n";
  return 0;
}
