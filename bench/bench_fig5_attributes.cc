// Figure 5: runtime as a function of the number of mutable and immutable
// attributes (Stack Overflow). Mutable attributes blow up the
// intervention lattice; immutable attributes blow up the grouping-pattern
// space — the paper reports a similar impact for both. IDS/FRL make no
// mutable/immutable distinction and grow only mildly.
//
//   $ bench_fig5_attributes [--rows=N] [--threads=N]

#include <cstdio>
#include <iostream>

#include "baselines/frl.h"
#include "baselines/ids.h"
#include "bench_util.h"
#include "data/stackoverflow.h"

using namespace faircap;
using namespace faircap::bench;

namespace {

// Restrict `df` to the first `n_immutable` immutable and `n_mutable`
// mutable attributes by marking the rest kIgnored. Ignored mutable attrs
// also leave the mining space because FairCap reads roles.
DataFrame RestrictAttrs(const DataFrame& df, size_t n_immutable,
                        size_t n_mutable) {
  DataFrame out = df;  // copy, then adjust roles
  size_t seen_immutable = 0, seen_mutable = 0;
  for (size_t i = 0; i < df.num_columns(); ++i) {
    const AttributeSpec& spec = df.schema().attribute(i);
    if (spec.role == AttrRole::kImmutable) {
      if (++seen_immutable > n_immutable) {
        const Status st = out.SetRole(spec.name, AttrRole::kIgnored);
        if (!st.ok()) std::exit(1);
      }
    } else if (spec.role == AttrRole::kMutable) {
      if (++seen_mutable > n_mutable) {
        const Status st = out.SetRole(spec.name, AttrRole::kIgnored);
        if (!st.ok()) std::exit(1);
      }
    }
  }
  return out;
}

double TimeSetting(const DataFrame& df, const StackOverflowData& data,
                   const Setting& setting, const FairCapOptions& options) {
  return RunSetting(df, data.dag, data.protected_pattern, setting, options)
      .runtime_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  StackOverflowConfig config;
  config.num_rows = flags.rows > 0 ? flags.rows : (flags.full ? 38000 : 4000);
  auto data_result = MakeStackOverflow(config);
  if (!data_result.ok()) {
    std::cerr << data_result.status().ToString() << "\n";
    return 1;
  }
  const StackOverflowData data = std::move(data_result).ValueOrDie();
  std::cout << "Figure 5: runtime vs attribute counts (Stack Overflow, "
            << data.df.num_rows() << " rows)\n\n";

  FairCapOptions options;
  options.apriori.min_support_fraction = 0.1;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 2;
  options.cate.min_group_size = 30;
  options.num_threads = flags.threads;

  const std::vector<Setting> settings = {
      {"No constraint", FairnessConstraint::None(),
       CoverageConstraint::None()},
      {"Group fairness", FairnessConstraint::GroupSP(10000.0),
       CoverageConstraint::None()},
      {"Indi fairness", FairnessConstraint::IndividualSP(10000.0),
       CoverageConstraint::None()},
  };

  // Sweep mutable attribute count with immutables fixed at 10.
  std::printf("-- varying mutable attributes (immutable fixed at 10) --\n");
  std::printf("%-20s", "series \\ #mutable");
  for (size_t m = 2; m <= 6; ++m) std::printf(" %7zu", m);
  std::printf("\n");
  for (const Setting& setting : settings) {
    std::printf("%-20s", setting.name.c_str());
    for (size_t m = 2; m <= 6; ++m) {
      const DataFrame restricted = RestrictAttrs(data.df, 10, m);
      std::printf(" %6.2fs", TimeSetting(restricted, data, setting, options));
    }
    std::printf("\n");
  }
  {
    std::printf("%-20s", "IDS");
    for (size_t m = 2; m <= 6; ++m) {
      const DataFrame restricted = RestrictAttrs(data.df, 10, m);
      StopWatch watch;
      IdsOptions ids_options;
      ids_options.apriori.min_support_fraction = 0.1;
      ids_options.apriori.max_pattern_length = 2;
      if (!FitIds(restricted, ids_options).ok()) return 1;
      std::printf(" %6.2fs", watch.ElapsedSeconds());
    }
    std::printf("\n%-20s", "FRL");
    for (size_t m = 2; m <= 6; ++m) {
      const DataFrame restricted = RestrictAttrs(data.df, 10, m);
      StopWatch watch;
      FrlOptions frl_options;
      frl_options.apriori.min_support_fraction = 0.1;
      frl_options.apriori.max_pattern_length = 2;
      if (!FitFrl(restricted, frl_options).ok()) return 1;
      std::printf(" %6.2fs", watch.ElapsedSeconds());
    }
    std::printf("\n");
  }

  // Sweep immutable attribute count with mutables fixed at 6.
  std::printf("\n-- varying immutable attributes (mutable fixed at 6) --\n");
  std::printf("%-20s", "series \\ #immutable");
  for (size_t i = 5; i <= 10; ++i) std::printf(" %7zu", i);
  std::printf("\n");
  for (const Setting& setting : settings) {
    std::printf("%-20s", setting.name.c_str());
    for (size_t i = 5; i <= 10; ++i) {
      const DataFrame restricted = RestrictAttrs(data.df, i, 6);
      std::printf(" %6.2fs", TimeSetting(restricted, data, setting, options));
    }
    std::printf("\n");
  }

  std::printf("\nPaper shape to check: runtime grows steeply in both "
              "attribute dimensions for\nFairCap (exponential pattern "
              "spaces), only mildly for IDS/FRL.\n");
  return 0;
}
