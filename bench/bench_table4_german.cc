// Table 4 (bottom): German Credit with BGL fairness. Nine FairCap
// constraint variants plus IDS and FRL adapters. The dataset is the
// paper's full size (1000 rows) by default.
//
//   $ bench_table4_german [--rows=N] [--threads=N]

#include <iostream>

#include "baselines/adapters.h"
#include "baselines/frl.h"
#include "baselines/ids.h"
#include "bench_util.h"
#include "core/greedy.h"
#include "data/german.h"

using namespace faircap;
using namespace faircap::bench;

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  GermanConfig config;
  if (flags.rows > 0) config.num_rows = flags.rows;
  auto data_result = MakeGerman(config);
  if (!data_result.ok()) {
    std::cerr << data_result.status().ToString() << "\n";
    return 1;
  }
  const GermanData data = std::move(data_result).ValueOrDie();
  std::cout << "German Credit (synthetic), " << data.df.num_rows()
            << " rows; BGL fairness tau=0.1, coverage theta=0.3\n\n";

  FairCapOptions options;
  options.apriori.min_support_fraction = 0.1;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 2;
  options.cate.min_group_size = 10;
  options.min_subgroup_arm = 3;  // 92 protected rows total
  options.num_threads = flags.threads;

  std::vector<SolutionRow> rows;
  for (const Setting& setting :
       PaperSettings(/*use_bgl=*/true, /*fairness_threshold=*/0.1,
                     /*theta=*/0.3)) {
    rows.push_back(RunSetting(data.df, data.dag, data.protected_pattern,
                              setting, options));
  }

  auto solver =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
  if (!solver.ok()) {
    std::cerr << solver.status().ToString() << "\n";
    return 1;
  }
  auto run_adapters = [&](const std::string& label,
                          const std::vector<Pattern>& antecedents) {
    for (const auto& [mode, suffix] :
         std::vector<std::pair<IfClauseTreatment, std::string>>{
             {IfClauseTreatment::kAsGroupingPattern,
              " (IF clause as grouping pattern)"},
             {IfClauseTreatment::kAsInterventionPattern,
              " (IF clause as intervention pattern)"}}) {
      StopWatch watch;
      auto rules = AdaptBaselineRules(*solver, antecedents, mode);
      if (!rules.ok()) {
        std::cerr << rules.status().ToString() << "\n";
        std::exit(1);
      }
      const GreedyResult greedy = GreedySelect(
          *rules, solver->protected_mask(), FairnessConstraint::None(),
          CoverageConstraint::None());
      rows.push_back({label + suffix, greedy.stats, watch.ElapsedSeconds()});
    }
  };

  {
    IdsOptions ids_options;
    ids_options.apriori.min_support_fraction = 0.1;
    ids_options.apriori.max_pattern_length = 2;
    auto ids_rules = FitIds(data.df, ids_options);
    if (!ids_rules.ok()) {
      std::cerr << ids_rules.status().ToString() << "\n";
      return 1;
    }
    std::vector<Pattern> antecedents;
    for (const auto& rule : *ids_rules) antecedents.push_back(rule.antecedent);
    run_adapters("IDS", antecedents);
  }
  {
    FrlOptions frl_options;
    frl_options.apriori.min_support_fraction = 0.1;
    frl_options.apriori.max_pattern_length = 2;
    frl_options.min_new_coverage = 25;
    auto frl_rules = FitFrl(data.df, frl_options);
    if (!frl_rules.ok()) {
      std::cerr << frl_rules.status().ToString() << "\n";
      return 1;
    }
    std::vector<Pattern> antecedents;
    for (const auto& rule : *frl_rules) antecedents.push_back(rule.antecedent);
    run_adapters("FRL", antecedents);
  }

  PrintMetricsTable(std::cout, "Table 4 (German Credit, BGL fairness)", rows,
                    /*with_runtime=*/true);
  std::cout << "Paper shape to check: utilities in [0.2, 0.5]; no-constraint "
               "maximizes utility and\nunfairness; BGL variants hold "
               "protected utility near/above tau=0.1; rule coverage\n"
               "yields the smallest rulesets and gaps.\n";
  return 0;
}
