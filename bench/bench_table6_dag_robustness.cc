// Table 6: robustness to the causal DAG. Five DAGs (original SCM DAG,
// 1-layer independent, 2-layer mutable, 2-layer, PC-discovered) on both
// datasets, with the paper's per-dataset constraint setting (SO: SP group
// fairness + group coverage; German: BGL group fairness + group coverage).
//
//   $ bench_table6_dag_robustness [--rows=N] [--threads=N]

#include <iostream>

#include "bench_util.h"
#include "causal/pc.h"
#include "data/german.h"
#include "data/scm.h"
#include "data/stackoverflow.h"

using namespace faircap;
using namespace faircap::bench;

namespace {

std::vector<std::pair<std::string, CausalDag>> DagVariants(
    const DataFrame& df, const CausalDag& original) {
  std::vector<std::pair<std::string, CausalDag>> dags;
  dags.emplace_back("Original causal DAG", original);
  for (const auto& [name, variant] :
       std::vector<std::pair<std::string, DagVariant>>{
           {"1-Layer Indep DAG", DagVariant::kOneLayerIndependent},
           {"2-Layer Mutable DAG", DagVariant::kTwoLayerMutable},
           {"2-Layer DAG", DagVariant::kTwoLayer}}) {
    auto dag = MakeLayeredDag(df.schema(), variant);
    if (!dag.ok()) {
      std::cerr << dag.status().ToString() << "\n";
      std::exit(1);
    }
    dags.emplace_back(name, std::move(dag).ValueOrDie());
  }
  PcOptions pc_options;
  pc_options.max_rows = 2000;
  pc_options.max_condition_size = 1;
  auto pc_dag = RunPc(df, pc_options);
  if (!pc_dag.ok()) {
    std::cerr << pc_dag.status().ToString() << "\n";
    std::exit(1);
  }
  dags.emplace_back("PC DAG", std::move(pc_dag).ValueOrDie());
  return dags;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);

  // ---- Stack Overflow: SP group fairness + group coverage ----
  {
    StackOverflowConfig config;
    config.num_rows =
        flags.rows > 0 ? flags.rows : (flags.full ? 38000 : 6000);
    auto data_result = MakeStackOverflow(config);
    if (!data_result.ok()) {
      std::cerr << data_result.status().ToString() << "\n";
      return 1;
    }
    const StackOverflowData data = std::move(data_result).ValueOrDie();

    FairCapOptions options;
    options.apriori.min_support_fraction = 0.1;
    options.apriori.max_pattern_length = 2;
    options.lattice.max_predicates = 2;
    options.cate.min_group_size = 30;
    options.num_threads = flags.threads;

    const Setting setting{"", FairnessConstraint::GroupSP(10000.0),
                          CoverageConstraint::Group(0.5, 0.5)};
    std::vector<SolutionRow> rows;
    for (const auto& [name, dag] : DagVariants(data.df, data.dag)) {
      Setting named = setting;
      named.name = name;
      rows.push_back(RunSetting(data.df, dag, data.protected_pattern, named,
                                options));
    }
    PrintMetricsTable(std::cout,
                      "Table 6 (SO, SP group fairness + group coverage)",
                      rows, /*with_runtime=*/true);
  }

  // ---- German: BGL group fairness + group coverage ----
  {
    GermanConfig config;
    auto data_result = MakeGerman(config);
    if (!data_result.ok()) {
      std::cerr << data_result.status().ToString() << "\n";
      return 1;
    }
    const GermanData data = std::move(data_result).ValueOrDie();

    FairCapOptions options;
    options.apriori.min_support_fraction = 0.1;
    options.apriori.max_pattern_length = 2;
    options.lattice.max_predicates = 2;
    options.cate.min_group_size = 10;
    options.min_subgroup_arm = 3;
    options.num_threads = flags.threads;

    const Setting setting{"", FairnessConstraint::GroupBGL(0.1),
                          CoverageConstraint::Group(0.3, 0.3)};
    std::vector<SolutionRow> rows;
    for (const auto& [name, dag] : DagVariants(data.df, data.dag)) {
      Setting named = setting;
      named.name = name;
      rows.push_back(RunSetting(data.df, dag, data.protected_pattern, named,
                                options));
    }
    PrintMetricsTable(std::cout,
                      "Table 6 (German, BGL group fairness + group coverage)",
                      rows, /*with_runtime=*/true);
  }

  std::cout << "Paper shape to check: SO utilities are robust across DAGs "
               "(similar exp-util);\nGerman shows more variability, with "
               "the original and PC DAGs strongest.\n";
  return 0;
}
