// Estimation-at-scale harness: legacy 3-call CATE evaluation (overall +
// protected + non-protected, each a full design-matrix/stratum pass) vs
// the batch sufficient-statistics engine (one pass + three small solves)
// on synthetic workloads, plus the end-to-end pipeline delta.
//
//   bench_estimator [--rows=N] [--full] [--threads=T] [--json=PATH]
//
// Default runs 100K rows (CI smoke uses --rows=20000); --full adds the
// 1M-row acceptance configuration, where the batch path must come out
// >= 2x the legacy 3-call path per treatment evaluation.
//
// --json switches to the batch-only per-ISA sweep: the same treatment
// evaluations through the batch engine at every SIMD kernel tier this
// host supports (the legacy path is skipped — at 1M rows on one core it
// dominates the runtime without informing the kernel comparison), and
// writes the per-tier record CI archives alongside BENCH_micro.json.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "causal/cate_stats_engine.h"
#include "core/faircap.h"
#include "ingest/synthetic.h"
#include "mining/lattice.h"
#include "util/obs/metrics.h"
#include "util/obs/run_report.h"
#include "util/simd/simd.h"
#include "util/timer.h"

using namespace faircap;

namespace {

struct MethodRow {
  const char* name;
  size_t evals = 0;
  double legacy_seconds = 0.0;
  double batch_seconds = 0.0;
  double speedup() const {
    return batch_seconds > 0.0 ? legacy_seconds / batch_seconds : 0.0;
  }
};

// One treatment evaluation the way Step-2 mining does it: overall CATE
// within the group plus the protected / non-protected subgroup CATEs.
void LegacyEvaluate(const CateEstimator& est, const Pattern& intervention,
                    const Bitmap& group, const Bitmap& protected_mask) {
  (void)est.Estimate(intervention, group);
  Bitmap prot = group & protected_mask;
  if (prot.Count() > 0) {
    (void)est.Estimate(intervention, prot, 5);
  }
  Bitmap nonprot = group;
  nonprot.AndNot(protected_mask);
  if (nonprot.Count() > 0) {
    (void)est.Estimate(intervention, nonprot, 5);
  }
}

int RunScale(size_t rows, size_t threads, bool run_ipw) {
  SyntheticConfig config;
  config.num_rows = rows;
  config.seed = 13;
  auto data = MakeSynthetic(config);
  if (!data.ok()) {
    std::cerr << "generate: " << data.status().ToString() << "\n";
    return 1;
  }
  const DataFrame& df = data->df;
  const Bitmap protected_mask = data->protected_pattern.Evaluate(df);

  // The treatments Step-2 would enumerate, evaluated against two groups
  // (the whole population and one immutable slice) so the per-treatment
  // engine amortizes across rules like it does in mining.
  const std::vector<size_t> mutables =
      df.schema().IndicesWithRole(AttrRole::kMutable);
  const std::vector<Predicate> atoms =
      EnumerateInterventionAtoms(df, mutables);
  std::vector<Pattern> interventions;
  for (const Predicate& atom : atoms) {
    interventions.push_back(Pattern({atom}));
  }
  std::vector<Bitmap> groups;
  groups.push_back(df.AllRows());
  const std::vector<size_t> immutables =
      df.schema().IndicesWithRole(AttrRole::kImmutable);
  for (size_t attr : immutables) {
    const Column& col = df.column(attr);
    if (col.type() == AttrType::kCategorical && col.num_categories() > 0) {
      groups.push_back(
          Pattern({Predicate(attr, CompareOp::kEq, Value(col.CategoryName(0)))})
              .Evaluate(df));
      break;
    }
  }

  std::printf("rows=%zu  treatments=%zu  groups=%zu\n", rows,
              interventions.size(), groups.size());
  std::printf("%-12s %10s %14s %14s %9s\n", "method", "evals", "legacy_us",
              "batch_us", "speedup");

  std::vector<std::pair<const char*, CateMethod>> methods = {
      {"regression", CateMethod::kRegression},
      {"stratified", CateMethod::kStratified},
  };
  if (run_ipw) methods.push_back({"ipw", CateMethod::kIpw});

  for (const auto& [name, method] : methods) {
    CateOptions options;
    options.method = method;
    MethodRow row;
    row.name = name;

    // Fresh estimators per path so neither benefits from the other's warm
    // caches; both share the DataFrame's PredicateIndex (treatment masks
    // are memoized for the whole table either way).
    auto legacy_est = CateEstimator::Create(&df, &data->dag, options);
    auto batch_est = CateEstimator::Create(&df, &data->dag, options);
    if (!legacy_est.ok() || !batch_est.ok()) {
      std::cerr << "estimator: " << legacy_est.status().ToString() << "\n";
      return 1;
    }

    StopWatch watch;
    for (const Pattern& intervention : interventions) {
      for (const Bitmap& group : groups) {
        LegacyEvaluate(*legacy_est, intervention, group, protected_mask);
        ++row.evals;
      }
    }
    row.legacy_seconds = watch.ElapsedSeconds();

    watch.Restart();
    for (const Pattern& intervention : interventions) {
      for (const Bitmap& group : groups) {
        (void)batch_est->EstimateSubgroups(intervention, group,
                                           &protected_mask, 5);
      }
    }
    row.batch_seconds = watch.ElapsedSeconds();

    std::printf("%-12s %10zu %14.1f %14.1f %8.1fx\n", row.name, row.evals,
                1e6 * row.legacy_seconds / static_cast<double>(row.evals),
                1e6 * row.batch_seconds / static_cast<double>(row.evals),
                row.speedup());
  }

  // End-to-end pipeline: the same FairCap configuration with the legacy
  // per-call estimator vs the batch engine (fairness active so every
  // treatment evaluation needs all three subgroup estimates).
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.3;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 1;
  options.fairness = FairnessConstraint::GroupSP(1e9);
  options.num_threads = threads;

  double pipe_seconds[2] = {0.0, 0.0};
  size_t pipe_rules[2] = {0, 0};
  for (int use_batch = 0; use_batch <= 1; ++use_batch) {
    options.use_batch_estimator = use_batch == 1;
    auto solver =
        FairCap::Create(&df, &data->dag, data->protected_pattern, options);
    if (!solver.ok()) {
      std::cerr << "pipeline: " << solver.status().ToString() << "\n";
      return 1;
    }
    auto result = solver->Run();
    if (!result.ok()) {
      std::cerr << "pipeline run: " << result.status().ToString() << "\n";
      return 1;
    }
    // Phase timing from the run report's registry gauge — the same
    // production number `faircap_cli run --metrics-json` serializes — so
    // the bench has no private stopwatch that could drift from it.
    pipe_seconds[use_batch] =
        obs::MetricsRegistry::Global().GaugeValue(obs::kPhaseTotal);
    pipe_rules[use_batch] = result->rules.size();
  }
  std::printf(
      "pipeline     legacy pipe_s=%.3f  batch pipe_s=%.3f  speedup=%.2fx  "
      "(rules %zu/%zu)\n\n",
      pipe_seconds[0], pipe_seconds[1],
      pipe_seconds[1] > 0.0 ? pipe_seconds[0] / pipe_seconds[1] : 0.0,
      pipe_rules[0], pipe_rules[1]);
  if (pipe_rules[0] != pipe_rules[1]) {
    std::cerr << "FAIL: legacy and batch pipelines selected different "
                 "ruleset sizes\n";
    return 1;
  }
  return 0;
}

// Dominant accumulation path during a bench pass, read from the public
// estimation.accumulate_path_* counter deltas (no bench-private
// instrumentation inside the engine).
std::string DominantPath(const uint64_t before[3]) {
  const obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t d_int =
      reg.CounterValue("estimation.accumulate_path_int") - before[0];
  const uint64_t d_fp =
      reg.CounterValue("estimation.accumulate_path_fp_staged") - before[1];
  const uint64_t d_sparse =
      reg.CounterValue("estimation.accumulate_path_sparse") - before[2];
  if (d_int >= d_fp && d_int >= d_sparse && d_int > 0) return "int-fast";
  if (d_fp >= d_sparse && d_fp > 0) return "fp-staged";
  return "sparse";
}

// Batch-only per-ISA sweep (--json): the same treatment x group
// evaluations through the batch engine under each supported SIMD tier,
// on both a real-valued and an integer-valued outcome so the sweep
// covers the fp-staged and exact int64 accumulation paths. One untimed
// warm-up pass per tier fills the engine/partition caches so tiers
// compare kernel throughput, not cache luck.
int RunSimdSweep(size_t rows, const std::string& json_path) {
  struct TierRow {
    std::string simd;
    std::string method;
    std::string outcome_dtype;
    std::string accumulate_path;
    size_t evals = 0;
    double us_per_eval = 0.0;
  };
  std::vector<TierRow> results;

  for (const bool integer_outcome : {false, true}) {
    SyntheticConfig config;
    config.num_rows = rows;
    config.seed = 13;
    config.integer_outcome = integer_outcome;
    auto data = MakeSynthetic(config);
    if (!data.ok()) {
      std::cerr << "generate: " << data.status().ToString() << "\n";
      return 1;
    }
    const DataFrame& df = data->df;
    const Bitmap protected_mask = data->protected_pattern.Evaluate(df);
    const std::vector<size_t> mutables =
        df.schema().IndicesWithRole(AttrRole::kMutable);
    const std::vector<Predicate> atoms =
        EnumerateInterventionAtoms(df, mutables);
    std::vector<Pattern> interventions;
    for (const Predicate& atom : atoms) {
      interventions.push_back(Pattern({atom}));
    }
    const Bitmap all = df.AllRows();
    const char* dtype = integer_outcome ? "integer" : "real";

    std::printf("rows=%zu  treatments=%zu  outcome=%s  (batch engine)\n",
                rows, interventions.size(), dtype);
    std::printf("%-12s %-8s %-8s %-10s %10s %14s\n", "method", "simd",
                "dtype", "path", "evals", "batch_us");
    for (const auto& [name, method] : std::vector<
             std::pair<const char*, CateMethod>>{
             {"regression", CateMethod::kRegression},
             {"stratified", CateMethod::kStratified}}) {
      CateOptions options;
      options.method = method;
      auto est = CateEstimator::Create(&df, &data->dag, options);
      if (!est.ok()) {
        std::cerr << "estimator: " << est.status().ToString() << "\n";
        return 1;
      }
      for (const simd::SimdLevel level : simd::SupportedSimdLevels()) {
        simd::ScopedSimdLevel pin(level);
        for (int timed = 0; timed <= 1; ++timed) {
          const obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
          const uint64_t path_before[3] = {
              reg.CounterValue("estimation.accumulate_path_int"),
              reg.CounterValue("estimation.accumulate_path_fp_staged"),
              reg.CounterValue("estimation.accumulate_path_sparse")};
          StopWatch watch;
          size_t evals = 0;
          for (const Pattern& intervention : interventions) {
            (void)est->EstimateSubgroups(intervention, all, &protected_mask,
                                         5);
            ++evals;
          }
          if (timed == 0) continue;  // warm-up pass
          TierRow row;
          row.simd = simd::SimdLevelName(level);
          row.method = name;
          row.outcome_dtype = dtype;
          row.accumulate_path = DominantPath(path_before);
          row.evals = evals;
          row.us_per_eval =
              1e6 * watch.ElapsedSeconds() / static_cast<double>(evals);
          std::printf("%-12s %-8s %-8s %-10s %10zu %14.1f\n", name,
                      row.simd.c_str(), dtype, row.accumulate_path.c_str(),
                      evals, row.us_per_eval);
          results.push_back(std::move(row));
        }
      }
    }
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot open '" << json_path << "' for writing\n";
    return 1;
  }
  out << "{\"bench\":\"estimator_simd\",\"rows\":" << rows
      << ",\"host_max_simd\":\""
      << simd::SimdLevelName(simd::MaxSupportedSimdLevel())
      << "\",\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const TierRow& r = results[i];
    out << (i == 0 ? "" : ",") << "{\"method\":\"" << r.method
        << "\",\"simd\":\"" << r.simd << "\",\"outcome_dtype\":\""
        << r.outcome_dtype << "\",\"accumulate_path\":\""
        << r.accumulate_path << "\",\"evals\":" << r.evals
        << ",\"us_per_eval\":" << r.us_per_eval << "}";
  }
  out << "]}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  std::vector<size_t> row_counts;
  if (flags.rows > 0) {
    row_counts.push_back(flags.rows);
  } else {
    row_counts.push_back(100000);
    if (flags.full) row_counts.push_back(1000000);
  }
  if (!json_path.empty()) {
    return RunSimdSweep(row_counts.back(), json_path);
  }
  for (size_t rows : row_counts) {
    // The legacy per-row IPW at 1M rows takes minutes per treatment;
    // keep the IPW comparison to the smaller configurations.
    const bool run_ipw = rows <= 200000;
    const int rc = RunScale(rows, flags.threads, run_ipw);
    if (rc != 0) return rc;
  }
  return 0;
}
