// Shared helpers for the table/figure reproduction harnesses: flag
// parsing, the nine constraint settings of the paper, and runners that
// produce SolutionRow entries.

#ifndef FAIRCAP_BENCH_BENCH_UTIL_H_
#define FAIRCAP_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/faircap.h"
#include "core/metrics.h"
#include "util/timer.h"

namespace faircap {
namespace bench {

/// --rows=N / --threads=N / --full command-line flags.
struct BenchFlags {
  size_t rows = 0;       ///< 0 = harness default
  size_t threads = 1;
  bool full = false;     ///< paper-scale run

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--rows=", 7) == 0) {
        flags.rows = static_cast<size_t>(std::atoll(argv[i] + 7));
      } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
        flags.threads = static_cast<size_t>(std::atoll(argv[i] + 10));
      } else if (std::strcmp(argv[i], "--full") == 0) {
        flags.full = true;
      }
    }
    return flags;
  }
};

/// One named constraint configuration.
struct Setting {
  std::string name;
  FairnessConstraint fairness;
  CoverageConstraint coverage;
};

/// The nine FairCap constraint settings of Table 4 / Figure 3.
/// `epsilon`/`tau` parameterize SP vs BGL fairness; `theta` the coverage
/// thresholds (the paper: SO -> SP $10k & theta 0.5; German -> BGL 0.1 &
/// theta 0.3).
inline std::vector<Setting> PaperSettings(bool use_bgl, double fairness_threshold,
                                          double theta) {
  const FairnessConstraint group_fair =
      use_bgl ? FairnessConstraint::GroupBGL(fairness_threshold)
              : FairnessConstraint::GroupSP(fairness_threshold);
  const FairnessConstraint indi_fair =
      use_bgl ? FairnessConstraint::IndividualBGL(fairness_threshold)
              : FairnessConstraint::IndividualSP(fairness_threshold);
  return {
      {"No constraints", FairnessConstraint::None(),
       CoverageConstraint::None()},
      {"Group coverage", FairnessConstraint::None(),
       CoverageConstraint::Group(theta, theta)},
      {"Rule coverage", FairnessConstraint::None(),
       CoverageConstraint::Rule(theta, theta)},
      {"Group fairness", group_fair, CoverageConstraint::None()},
      {"Individual fairness", indi_fair, CoverageConstraint::None()},
      {"Group coverage, Group fairness", group_fair,
       CoverageConstraint::Group(theta, theta)},
      {"Rule coverage, Group fairness", group_fair,
       CoverageConstraint::Rule(theta, theta)},
      {"Group coverage, Individual fairness", indi_fair,
       CoverageConstraint::Group(theta, theta)},
      {"Rule coverage, Individual fairness", indi_fair,
       CoverageConstraint::Rule(theta, theta)},
  };
}

/// Runs one FairCap configuration and returns the labeled metrics row.
/// Exits the process on error (bench harnesses are not recoverable).
inline SolutionRow RunSetting(const DataFrame& df, const CausalDag& dag,
                              const Pattern& protected_pattern,
                              const Setting& setting, FairCapOptions options,
                              FairCapResult* result_out = nullptr) {
  options.fairness = setting.fairness;
  options.coverage = setting.coverage;
  auto solver = FairCap::Create(&df, &dag, protected_pattern, options);
  if (!solver.ok()) {
    std::cerr << setting.name << ": " << solver.status().ToString() << "\n";
    std::exit(1);
  }
  auto result = solver->Run();
  if (!result.ok()) {
    std::cerr << setting.name << ": " << result.status().ToString() << "\n";
    std::exit(1);
  }
  SolutionRow row{setting.name, result->stats, result->timings.total()};
  if (result_out != nullptr) *result_out = std::move(result).ValueOrDie();
  return row;
}

}  // namespace bench
}  // namespace faircap

#endif  // FAIRCAP_BENCH_BENCH_UTIL_H_
