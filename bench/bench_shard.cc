// Sharded Step-2 mining harness: one hot grouping pattern (the full
// population) mined for treatments at several row-shard counts. Before
// row-universe sharding the per-pattern fan-out left exactly this shape —
// few grouping patterns, millions of rows — serialized on a single core;
// here the same mining pass runs with num_shards in {1, 2, 4, threads}
// and reports per-evaluation latency and row throughput per shard count,
// so the scaling trajectory is visible (and recordable as JSON for CI).
//
//   bench_shard [--rows=N] [--threads=T] [--full] [--json=PATH]
//
// Default 100K rows (CI smoke uses --rows=20000); --full adds the 1M-row
// acceptance configuration, where 4+ shards on 4+ cores must deliver
// >= 2x the single-shard mining throughput. Rulesets across shard counts
// are checked for equality (the determinism the tests pin).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/faircap.h"
#include "ingest/synthetic.h"
#include "util/timer.h"

using namespace faircap;

namespace {

struct ShardRow {
  size_t shards = 0;       // resolved shard count
  size_t evals = 0;
  size_t rules = 0;
  double mine_seconds = 0.0;
  double rows_per_second = 0.0;  // rows x evaluations / second
};

int RunScale(size_t rows, size_t threads, const std::string& json_path) {
  SyntheticConfig config;
  config.num_rows = rows;
  config.seed = 29;
  auto data = MakeSynthetic(config);
  if (!data.ok()) {
    std::cerr << "generate: " << data.status().ToString() << "\n";
    return 1;
  }
  const DataFrame& df = data->df;

  // The hot-pattern scenario: a single grouping pattern covering every
  // row. This is the worst case for per-pattern parallelism (one task)
  // and the best case for row sharding.
  std::vector<FrequentPattern> groups(1);
  groups[0].pattern = Pattern();
  groups[0].coverage = df.AllRows();
  groups[0].support = df.num_rows();

  FairCapOptions base;
  base.lattice.max_predicates = 1;
  base.fairness = FairnessConstraint::GroupSP(1e9);  // needs all 3 CATEs
  base.num_threads = threads;

  std::vector<size_t> shard_counts = {1, 2, 4};
  if (threads > 4) shard_counts.push_back(threads);

  std::printf("rows=%zu  threads=%zu  (single grouping pattern)\n", rows,
              threads);
  std::printf("%-8s %8s %12s %14s %14s %9s\n", "shards", "evals", "mine_s",
              "eval_us", "Mrows/s", "speedup");

  std::vector<ShardRow> results;
  std::vector<std::string> rulesets;
  for (const size_t shards : shard_counts) {
    FairCapOptions options = base;
    options.num_shards = shards;
    auto solver =
        FairCap::Create(&df, &data->dag, data->protected_pattern, options);
    if (!solver.ok()) {
      std::cerr << "solver: " << solver.status().ToString() << "\n";
      return 1;
    }
    ShardRow row;
    row.shards = shards;
    StopWatch watch;
    size_t evals = 0;
    auto candidates = solver->MineCandidateRules(groups, &evals);
    row.mine_seconds = watch.ElapsedSeconds();
    if (!candidates.ok()) {
      std::cerr << "mine: " << candidates.status().ToString() << "\n";
      return 1;
    }
    row.evals = evals;
    row.rules = candidates->size();
    row.rows_per_second =
        row.mine_seconds > 0.0
            ? static_cast<double>(rows) * static_cast<double>(evals) /
                  row.mine_seconds
            : 0.0;
    std::string ruleset;
    for (const auto& rule : *candidates) {
      ruleset += rule.ToString(df.schema());
      ruleset += '\n';
    }
    rulesets.push_back(std::move(ruleset));
    const double speedup = results.empty() || row.mine_seconds <= 0.0
                               ? 1.0
                               : results.front().mine_seconds /
                                     row.mine_seconds;
    std::printf("%-8zu %8zu %12.3f %14.1f %14.2f %8.2fx\n", shards, row.evals,
                row.mine_seconds,
                row.evals > 0
                    ? 1e6 * row.mine_seconds / static_cast<double>(row.evals)
                    : 0.0,
                row.rows_per_second / 1e6, speedup);
    results.push_back(row);
  }

  for (size_t i = 1; i < rulesets.size(); ++i) {
    if (rulesets[i] != rulesets[0]) {
      std::cerr << "FAIL: shard count " << shard_counts[i]
                << " selected a different candidate ruleset than unsharded\n";
      return 1;
    }
  }
  std::printf("rulesets identical across shard counts (%zu candidates)\n\n",
              results.front().rules);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open '" << json_path << "' for writing\n";
      return 1;
    }
    out << "{\"bench\":\"shard\",\"rows\":" << rows
        << ",\"threads\":" << threads << ",\"results\":[";
    for (size_t i = 0; i < results.size(); ++i) {
      const ShardRow& r = results[i];
      out << (i == 0 ? "" : ",") << "{\"shards\":" << r.shards
          << ",\"evals\":" << r.evals << ",\"mine_seconds\":" << r.mine_seconds
          << ",\"rows_per_second\":" << r.rows_per_second
          << ",\"rules\":" << r.rules << "}";
    }
    out << "]}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  std::string json_path;
  bool threads_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) threads_given = true;
  }
  size_t threads = flags.threads;
  if (!threads_given || threads == 0) {
    // Default to the hardware: sharding exists to saturate the cores. An
    // explicit --threads=1 is honored (measures per-shard dispatch
    // overhead on one core).
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 4 : hw;
  }
  std::vector<size_t> row_counts;
  if (flags.rows > 0) {
    row_counts.push_back(flags.rows);
  } else {
    row_counts.push_back(100000);
    if (flags.full) row_counts.push_back(1000000);
  }
  for (size_t i = 0; i < row_counts.size(); ++i) {
    // Only the last (largest) configuration writes the JSON record.
    const std::string path =
        i + 1 == row_counts.size() ? json_path : std::string();
    const int rc = RunScale(row_counts[i], threads, path);
    if (rc != 0) return rc;
  }
  return 0;
}
