// Scheduling harness: static-axis scheduling vs the work-stealing
// pattern x shard task graph on two Step-2 workload shapes.
//
//   * skewed   — one giant grouping pattern (the full population) plus a
//     tail of small per-category patterns. A static per-pattern fan-out
//     (num_shards=1) serializes the giant pattern on one worker while
//     the tail finishes early; the work-stealing graph shards the giant
//     pattern's evaluations across every idle worker. Acceptance: the
//     work-stealing configuration mines at least the static rows/s.
//   * balanced — only the small per-category patterns (near-equal cost).
//     Here the pattern axis alone is enough; the acceptance check is
//     plain multi-core speedup of the work-stealing graph over one
//     thread.
//
//   bench_schedule [--rows=N] [--threads=T] [--json=PATH]
//
// Default 100K rows (CI smoke uses --rows=20000 and archives the JSON
// record). Candidate rulesets are compared across configurations of the
// same workload — scheduling must never change *what* is mined, only how
// fast (shard counts differ between static and work-stealing, so
// utilities may differ by float-reassociation noise; rule identities may
// not).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/faircap.h"
#include "ingest/synthetic.h"
#include "util/obs/metrics.h"
#include "util/obs/run_report.h"
#include "util/timer.h"

using namespace faircap;

namespace {

struct Config {
  std::string workload;  // "skewed" | "balanced"
  std::string mode;      // "static" | "work-stealing"
  size_t threads = 0;
  size_t shards = 0;
};

struct Row {
  Config config;
  size_t evals = 0;
  size_t rules = 0;
  double mine_seconds = 0.0;
  double rows_per_second = 0.0;
  SchedulerStats scheduler;
  std::string ruleset;  // rule identities (grouping => intervention)
};

// Small per-category grouping patterns over the immutable attributes
// (every category of every immutable categorical attribute), the
// balanced tail of both workloads.
std::vector<FrequentPattern> SmallPatterns(const DataFrame& df) {
  std::vector<FrequentPattern> groups;
  for (size_t attr : df.schema().IndicesWithRole(AttrRole::kImmutable)) {
    const Column& col = df.column(attr);
    if (col.type() != AttrType::kCategorical) continue;
    for (size_t code = 0; code < col.num_categories(); ++code) {
      FrequentPattern fp;
      fp.pattern = Pattern({Predicate(
          attr, CompareOp::kEq,
          Value(col.CategoryName(static_cast<int32_t>(code))))});
      fp.coverage = fp.pattern.Evaluate(df);
      fp.support = fp.coverage.Count();
      if (fp.support > 0) groups.push_back(std::move(fp));
    }
  }
  return groups;
}

Row RunOne(const SyntheticData& data,
           const std::vector<FrequentPattern>& groups, const Config& config) {
  FairCapOptions options;
  options.lattice.max_predicates = 1;
  options.fairness = FairnessConstraint::GroupSP(1e9);  // needs all 3 CATEs
  options.num_threads = config.threads;
  options.num_shards = config.shards;
  auto solver =
      FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
  if (!solver.ok()) {
    std::fprintf(stderr, "solver: %s\n", solver.status().ToString().c_str());
    std::exit(1);
  }
  Row row;
  row.config = config;
  size_t evals = 0;
  auto candidates = solver->MineCandidateRules(groups, &evals, &row.scheduler);
  if (!candidates.ok()) {
    std::fprintf(stderr, "mine: %s\n", candidates.status().ToString().c_str());
    std::exit(1);
  }
  // Phase timing from the registry gauge MineCandidateRules sets — the
  // production number the run report serializes — instead of a private
  // stopwatch around the call. (JSON record keys are unchanged.)
  row.mine_seconds =
      obs::MetricsRegistry::Global().GaugeValue(obs::kPhaseTreatmentMining);
  row.evals = evals;
  row.rules = candidates->size();
  // Work processed: rows covered per evaluation, summed. (Every
  // evaluation's sufficient-statistics pass walks its pattern's coverage
  // words, so this is the throughput the scheduler actually moves.)
  row.rows_per_second =
      row.mine_seconds > 0.0
          ? static_cast<double>(data.df.num_rows()) *
                static_cast<double>(evals) / row.mine_seconds
          : 0.0;
  for (const auto& rule : *candidates) {
    row.ruleset += rule.grouping.ToString(data.df.schema());
    row.ruleset += " => ";
    row.ruleset += rule.intervention.ToString(data.df.schema());
    row.ruleset += '\n';
  }
  return row;
}

void PrintRow(const Row& row, double baseline_seconds) {
  const double speedup = row.mine_seconds > 0.0
                             ? baseline_seconds / row.mine_seconds
                             : 1.0;
  std::printf("%-9s %-14s %7zu %7zu %8zu %10.3f %12.2f %8.2fx %8zu %8zu\n",
              row.config.workload.c_str(), row.config.mode.c_str(),
              row.config.threads, row.config.shards, row.evals,
              row.mine_seconds, row.rows_per_second / 1e6, speedup,
              row.scheduler.stolen, row.scheduler.helped);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  std::string json_path;
  bool threads_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) threads_given = true;
  }
  const size_t rows = flags.rows > 0 ? flags.rows : 100000;
  size_t threads = flags.threads;
  if (!threads_given || threads == 0) {
    // Default to the hardware: the graph exists to saturate the cores.
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 4 : hw;
  }

  SyntheticConfig config;
  config.num_rows = rows;
  config.seed = 53;
  auto data = MakeSynthetic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n", data.status().ToString().c_str());
    return 1;
  }

  // Skewed: full population + the small tail. Balanced: the tail only.
  std::vector<FrequentPattern> balanced = SmallPatterns(data->df);
  std::vector<FrequentPattern> skewed;
  {
    FrequentPattern giant;
    giant.pattern = Pattern();
    giant.coverage = data->df.AllRows();
    giant.support = data->df.num_rows();
    skewed.push_back(std::move(giant));
    for (const FrequentPattern& fp : balanced) skewed.push_back(fp);
  }

  std::printf("rows=%zu threads=%zu skewed=%zu patterns balanced=%zu patterns\n",
              rows, threads, skewed.size(), balanced.size());
  std::printf("%-9s %-14s %7s %7s %8s %10s %12s %9s %8s %8s\n", "workload",
              "mode", "threads", "shards", "evals", "mine_s", "Mrows/s",
              "speedup", "stolen", "helped");

  // Skewed: static per-pattern fan-out vs the pattern x shard graph.
  const Row skew_static =
      RunOne(*data, skewed, {"skewed", "static", threads, 1});
  PrintRow(skew_static, skew_static.mine_seconds);
  const Row skew_ws =
      RunOne(*data, skewed, {"skewed", "work-stealing", threads, 0});
  PrintRow(skew_ws, skew_static.mine_seconds);

  // Balanced: one thread vs the full graph.
  const Row bal_seq = RunOne(*data, balanced, {"balanced", "static", 1, 1});
  PrintRow(bal_seq, bal_seq.mine_seconds);
  const Row bal_ws =
      RunOne(*data, balanced, {"balanced", "work-stealing", threads, 0});
  PrintRow(bal_ws, bal_seq.mine_seconds);

  // Scheduling must not change what is mined.
  int rc = 0;
  if (skew_ws.ruleset != skew_static.ruleset) {
    std::fprintf(stderr,
                 "FAIL: skewed work-stealing mined different rules than "
                 "static scheduling\n");
    rc = 1;
  }
  if (bal_ws.ruleset != bal_seq.ruleset) {
    std::fprintf(stderr,
                 "FAIL: balanced work-stealing mined different rules than "
                 "sequential\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("rulesets identical across scheduling modes\n");
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   json_path.c_str());
      return 1;
    }
    auto emit = [&](const Row& row, bool last) {
      out << "{\"workload\":\"" << row.config.workload << "\",\"mode\":\""
          << row.config.mode << "\",\"threads\":" << row.config.threads
          << ",\"shards\":" << row.config.shards
          << ",\"evals\":" << row.evals
          << ",\"mine_seconds\":" << row.mine_seconds
          << ",\"rows_per_second\":" << row.rows_per_second
          << ",\"stolen\":" << row.scheduler.stolen
          << ",\"helped\":" << row.scheduler.helped << "}" << (last ? "" : ",");
    };
    out << "{\"bench\":\"schedule\",\"rows\":" << rows
        << ",\"threads\":" << threads << ",\"results\":[";
    emit(skew_static, false);
    emit(skew_ws, false);
    emit(bal_seq, false);
    emit(bal_ws, true);
    out << "]}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return rc;
}
