// Ingest-at-scale harness: synthetic workload generation -> CSV on disk ->
// legacy row-by-row loader vs streaming columnar ingest (rows/sec and
// speedup), then the full FairCap pipeline on the streamed table with its
// warm-started, budget-capped PredicateIndex.
//
//   bench_ingest [--rows=N] [--full] [--threads=T] [--budget-mb=M]
//
// Default sweeps small row counts (CI smoke); --full runs the 1M-row
// acceptance configuration. The streaming path must come out >= 5x the
// legacy loader at 1M rows.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/faircap.h"
#include "dataframe/csv.h"
#include "dataframe/predicate_index.h"
#include "ingest/chunked_csv_reader.h"
#include "ingest/synthetic.h"
#include "util/timer.h"

using namespace faircap;

namespace {

std::string TempCsvPath() {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  return dir + "/faircap_bench_ingest.csv";
}

struct IngestRow {
  size_t rows = 0;
  double generate_seconds = 0.0;
  double legacy_seconds = 0.0;
  IngestStats stream;
  double pipeline_seconds = 0.0;
  size_t pipeline_rules = 0;
  PredicateIndex::CacheStats index;
};

int RunOne(size_t rows, size_t threads, size_t budget_bytes, IngestRow* out) {
  out->rows = rows;

  SyntheticConfig config;
  config.num_rows = rows;
  config.seed = 13;
  StopWatch watch;
  auto data = MakeSynthetic(config);
  if (!data.ok()) {
    std::cerr << "generate: " << data.status().ToString() << "\n";
    return 1;
  }
  out->generate_seconds = watch.ElapsedSeconds();

  const std::string path = TempCsvPath();
  const Status written = WriteCsv(data->df, path);
  if (!written.ok()) {
    std::cerr << "write: " << written.ToString() << "\n";
    return 1;
  }
  const Schema& schema = data->df.schema();

  // Interleaved repetitions, best-of-N per loader: the first pass of
  // either loader pays one-off page-fault and file-cache costs that are
  // not loader work, and interleaving cancels machine-load drift.
  constexpr int kReps = 3;
  out->legacy_seconds = 1e300;
  double stream_best = 1e300;
  Result<DataFrame> streamed = Status::Internal("unset");
  for (int rep = 0; rep < kReps; ++rep) {
    watch.Restart();
    auto legacy = ReadCsv(path, schema);
    if (!legacy.ok()) {
      std::cerr << "legacy read: " << legacy.status().ToString() << "\n";
      return 1;
    }
    out->legacy_seconds = std::min(out->legacy_seconds,
                                   watch.ElapsedSeconds());
    if (legacy->num_rows() != rows) {
      std::cerr << "legacy row count mismatch\n";
      return 1;
    }

    IngestStats stats;
    streamed = StreamCsv(path, schema, IngestOptions(), &stats);
    if (!streamed.ok()) {
      std::cerr << "stream read: " << streamed.status().ToString() << "\n";
      return 1;
    }
    if (streamed->num_rows() != rows) {
      std::cerr << "streamed row count mismatch\n";
      return 1;
    }
    if (stats.seconds < stream_best) {
      stream_best = stats.seconds;
      out->stream = stats;
    }
  }
  std::remove(path.c_str());

  // Full pipeline on the streamed table: warm index, byte budget.
  DataFrame df = std::move(streamed).ValueOrDie();
  df.predicate_index().SetMemoryBudget(budget_bytes);

  FairCapOptions options;
  options.apriori.min_support_fraction = 0.3;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 1;
  options.fairness = FairnessConstraint::GroupSP(1e9);
  options.num_threads = threads;
  auto solver = FairCap::Create(&df, &data->dag, data->protected_pattern,
                                options);
  if (!solver.ok()) {
    std::cerr << "pipeline: " << solver.status().ToString() << "\n";
    return 1;
  }
  watch.Restart();
  auto result = solver->Run();
  if (!result.ok()) {
    std::cerr << "pipeline: " << result.status().ToString() << "\n";
    return 1;
  }
  out->pipeline_seconds = watch.ElapsedSeconds();
  out->pipeline_rules = result->rules.size();
  out->index = df.predicate_index().GetStats();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  size_t budget_mb = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--budget-mb=", 12) == 0) {
      budget_mb = static_cast<size_t>(std::atoll(argv[i] + 12));
    }
  }

  std::vector<size_t> row_counts;
  if (flags.rows != 0) {
    row_counts = {flags.rows};
  } else if (flags.full) {
    row_counts = {100000, 1000000};
  } else {
    row_counts = {20000, 50000};
  }

  std::printf(
      "%9s %8s %9s %9s %11s %8s %9s %6s %9s %9s\n", "rows", "gen_s",
      "legacy_s", "stream_s", "stream_r/s", "speedup", "warm_mask",
      "rules", "pipe_s", "evicted");
  for (const size_t rows : row_counts) {
    IngestRow row;
    if (RunOne(rows, flags.threads, budget_mb * 1024 * 1024, &row) != 0) {
      return 1;
    }
    const double speedup = row.stream.seconds > 0.0
                               ? row.legacy_seconds / row.stream.seconds
                               : 0.0;
    std::printf("%9zu %8.2f %9.3f %9.3f %10.2fM %7.1fx %9zu %6zu %9.2f %9zu\n",
                row.rows, row.generate_seconds, row.legacy_seconds,
                row.stream.seconds, row.stream.RowsPerSecond() / 1e6, speedup,
                row.stream.warm_atom_masks, row.pipeline_rules,
                row.pipeline_seconds, row.index.evictions);
  }
  return 0;
}
