// Ablation studies for the design choices DESIGN.md calls out (beyond the
// paper's own tables):
//   (a) lattice positive-CATE pruning on/off — cost vs quality;
//   (b) benefit function on/off under a group-SP constraint — how much the
//       fairness-aware treatment scoring matters vs post-hoc filtering;
//   (c) regression vs stratified CATE estimation — agreement and cost;
//   (d) Apriori support threshold sweep (Section 7.3's last paragraph);
//   (e) sampling fractions — the Section 7.3 claim that 25% samples give
//       comparable rule quality.
//
//   $ bench_ablation [--rows=N] [--threads=N]

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "data/stackoverflow.h"
#include "util/random.h"

using namespace faircap;
using namespace faircap::bench;

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  StackOverflowConfig config;
  config.num_rows = flags.rows > 0 ? flags.rows : (flags.full ? 38000 : 6000);
  auto data_result = MakeStackOverflow(config);
  if (!data_result.ok()) {
    std::cerr << data_result.status().ToString() << "\n";
    return 1;
  }
  const StackOverflowData data = std::move(data_result).ValueOrDie();
  std::cout << "Ablations (Stack Overflow, " << data.df.num_rows()
            << " rows)\n\n";

  FairCapOptions base;
  base.apriori.min_support_fraction = 0.1;
  base.apriori.max_pattern_length = 2;
  base.lattice.max_predicates = 2;
  base.cate.min_group_size = 30;
  base.num_threads = flags.threads;

  // (a) lattice pruning.
  {
    std::vector<SolutionRow> rows;
    const Setting setting{"", FairnessConstraint::None(),
                          CoverageConstraint::None()};
    for (const bool prune : {true, false}) {
      FairCapOptions options = base;
      options.lattice.require_positive_parents = prune;
      Setting named = setting;
      named.name = prune ? "positive-CATE pruning ON (paper)"
                         : "positive-CATE pruning OFF";
      rows.push_back(RunSetting(data.df, data.dag, data.protected_pattern,
                                named, options));
    }
    PrintMetricsTable(std::cout, "(a) Lattice pruning ablation", rows,
                      /*with_runtime=*/true);
  }

  // (b) benefit function under group SP.
  {
    std::vector<SolutionRow> rows;
    for (const bool use_benefit : {true, false}) {
      FairCapOptions options = base;
      options.fairness = FairnessConstraint::GroupSP(10000.0);
      options.greedy.weight_benefit = use_benefit ? 1.0 : 0.0;
      Setting setting{use_benefit ? "benefit-aware scoring (paper)"
                                  : "benefit weight = 0 (greedy-only fairness)",
                      options.fairness, CoverageConstraint::None()};
      rows.push_back(RunSetting(data.df, data.dag, data.protected_pattern,
                                setting, options));
    }
    PrintMetricsTable(std::cout, "(b) Benefit-function ablation (group SP)",
                      rows, /*with_runtime=*/true);
  }

  // (c) estimator choice.
  {
    std::vector<SolutionRow> rows;
    for (const CateMethod method :
         {CateMethod::kRegression, CateMethod::kStratified}) {
      FairCapOptions options = base;
      options.cate.method = method;
      Setting setting{method == CateMethod::kRegression
                          ? "regression adjustment (default)"
                          : "stratified exact matching",
                      FairnessConstraint::None(), CoverageConstraint::None()};
      rows.push_back(RunSetting(data.df, data.dag, data.protected_pattern,
                                setting, options));
    }
    PrintMetricsTable(std::cout, "(c) CATE estimator ablation", rows,
                      /*with_runtime=*/true);
  }

  // (d) Apriori threshold sweep.
  {
    std::vector<SolutionRow> rows;
    for (const double tau : {0.05, 0.1, 0.2, 0.4}) {
      FairCapOptions options = base;
      options.apriori.min_support_fraction = tau;
      options.fairness = FairnessConstraint::GroupSP(10000.0);
      char label[64];
      std::snprintf(label, sizeof(label), "Apriori tau = %.2f", tau);
      Setting setting{label, options.fairness, CoverageConstraint::None()};
      rows.push_back(RunSetting(data.df, data.dag, data.protected_pattern,
                                setting, options));
    }
    PrintMetricsTable(std::cout, "(d) Apriori threshold sweep (group SP)",
                      rows, /*with_runtime=*/true);
    std::cout << "Expected: larger tau -> fewer grouping patterns, faster "
                 "runs, lower utility/fairness\n(the paper recommends "
                 "tau=0.1).\n\n";
  }

  // (e) sampling.
  {
    std::vector<SolutionRow> rows;
    Rng rng(9);
    for (const double fraction : {0.25, 0.5, 1.0}) {
      const DataFrame subset =
          fraction >= 1.0 ? data.df : data.df.SampleFraction(fraction, &rng);
      char label[64];
      std::snprintf(label, sizeof(label), "sample %.0f%% (%zu rows)",
                    100 * fraction, subset.num_rows());
      Setting setting{label, FairnessConstraint::None(),
                      CoverageConstraint::None()};
      rows.push_back(RunSetting(subset, data.dag, data.protected_pattern,
                                setting, base));
    }
    PrintMetricsTable(std::cout, "(e) Sampling ablation", rows,
                      /*with_runtime=*/true);
    std::cout << "Expected (Section 7.3): the 25% sample reaches comparable "
                 "expected utility at a\nfraction of the runtime.\n";
  }
  return 0;
}
