// Component microbenchmarks (google-benchmark): bitmap set algebra,
// pattern evaluation, Apriori mining, CATE estimation, ruleset statistics
// and greedy selection. These back the runtime claims of Section 7.3 at
// the component level.

#include <benchmark/benchmark.h>

#include "causal/estimator.h"
#include "core/greedy.h"
#include "data/stackoverflow.h"
#include "mining/apriori.h"

namespace faircap {
namespace {

const StackOverflowData& SharedData() {
  static const StackOverflowData* data = [] {
    StackOverflowConfig config;
    config.num_rows = 10000;
    auto result = MakeStackOverflow(config);
    return new StackOverflowData(std::move(result).ValueOrDie());
  }();
  return *data;
}

void BM_BitmapAnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Bitmap a(n), b(n);
  for (size_t i = 0; i < n; i += 3) a.Set(i);
  for (size_t i = 0; i < n; i += 5) b.Set(i);
  for (auto _ : state) {
    Bitmap c = a & b;
    benchmark::DoNotOptimize(c.Count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitmapAnd)->Arg(10000)->Arg(100000)->Arg(1000000);

Pattern SharedPattern(const StackOverflowData& data) {
  const size_t country = *data.df.schema().IndexOf("Country");
  const size_t age = *data.df.schema().IndexOf("AgeGroup");
  return Pattern({Predicate(country, CompareOp::kEq, Value("us")),
                  Predicate(age, CompareOp::kEq, Value("25-34"))});
}

// Naive per-row scan: what every pattern-evaluation call site did before
// the PredicateIndex engine.
void BM_PatternEvaluateNaive(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Pattern pattern = SharedPattern(data);
  for (auto _ : state) {
    Bitmap mask = pattern.EvaluateNaive(data.df);
    benchmark::DoNotOptimize(mask.Count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.df.num_rows()));
}
BENCHMARK(BM_PatternEvaluateNaive);

// The seed's evaluation strategy: a fresh columnar scan per predicate on
// every call (no memoization). This is the baseline the PredicateIndex
// speedup in CHANGES.md is measured against.
void BM_PatternEvaluateColumnarRescan(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Pattern pattern = SharedPattern(data);
  for (auto _ : state) {
    Bitmap mask = PredicateIndex::Scan(
        data.df, pattern.predicates()[0].attr, pattern.predicates()[0].op,
        pattern.predicates()[0].value);
    mask &= PredicateIndex::Scan(
        data.df, pattern.predicates()[1].attr, pattern.predicates()[1].op,
        pattern.predicates()[1].value);
    benchmark::DoNotOptimize(mask.Count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.df.num_rows()));
}
BENCHMARK(BM_PatternEvaluateColumnarRescan);

// Index-backed evaluation (the production path): after the first call the
// atom and conjunction masks are memoized, so repeated evaluation — the
// dominant access pattern in steps 2 and 3 — is a hash lookup plus a
// bitmap copy.
void BM_PatternEvaluateIndexed(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Pattern pattern = SharedPattern(data);
  for (auto _ : state) {
    Bitmap mask = pattern.Evaluate(data.df);
    benchmark::DoNotOptimize(mask.Count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.df.num_rows()));
}
BENCHMARK(BM_PatternEvaluateIndexed);

// Zero-copy variant used by TreatedMask and the mining hot loops.
void BM_PatternEvaluateCachedRef(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Pattern pattern = SharedPattern(data);
  for (auto _ : state) {
    const Bitmap& mask = pattern.EvaluateCached(data.df);
    benchmark::DoNotOptimize(mask.Count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.df.num_rows()));
}
BENCHMARK(BM_PatternEvaluateCachedRef);

void BM_Apriori(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const std::vector<size_t> immutable =
      data.df.schema().IndicesWithRole(AttrRole::kImmutable);
  AprioriOptions options;
  options.min_support_fraction = 0.1;
  options.max_pattern_length = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto patterns = MineFrequentPatterns(data.df, immutable, options);
    benchmark::DoNotOptimize(patterns->size());
  }
}
BENCHMARK(BM_Apriori)->Arg(1)->Arg(2)->Arg(3);

void BM_CateRegression(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const auto estimator = CateEstimator::Create(&data.df, &data.dag);
  const size_t major = *data.df.schema().IndexOf("UndergradMajor");
  const Pattern intervention(
      {Predicate(major, CompareOp::kEq, Value("cs"))});
  const Bitmap all = data.df.AllRows();
  for (auto _ : state) {
    auto estimate = estimator->Estimate(intervention, all);
    benchmark::DoNotOptimize(estimate.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.df.num_rows()));
}
BENCHMARK(BM_CateRegression);

void BM_CateStratified(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  CateOptions options;
  options.method = CateMethod::kStratified;
  const auto estimator = CateEstimator::Create(&data.df, &data.dag, options);
  const size_t major = *data.df.schema().IndexOf("UndergradMajor");
  const Pattern intervention(
      {Predicate(major, CompareOp::kEq, Value("cs"))});
  const Bitmap all = data.df.AllRows();
  for (auto _ : state) {
    auto estimate = estimator->Estimate(intervention, all);
    benchmark::DoNotOptimize(estimate.ok());
  }
}
BENCHMARK(BM_CateStratified);

void BM_RulesetStats(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Bitmap protected_mask = data.protected_pattern.Evaluate(data.df);
  // 20 synthetic rules with random-ish coverage windows.
  std::vector<PrescriptionRule> rules;
  const size_t n = data.df.num_rows();
  for (size_t i = 0; i < 20; ++i) {
    PrescriptionRule rule;
    rule.coverage = Bitmap(n);
    for (size_t r = i * 97 % n; r < n; r += 2 + i % 5) rule.coverage.Set(r);
    rule.coverage_protected = rule.coverage & protected_mask;
    rule.support = rule.coverage.Count();
    rule.support_protected = rule.coverage_protected.Count();
    rule.utility = 1000.0 + static_cast<double>(i);
    rule.utility_protected = 800.0;
    rule.utility_nonprotected = 1200.0;
    rules.push_back(std::move(rule));
  }
  for (auto _ : state) {
    const RulesetStats stats = ComputeRulesetStats(rules, protected_mask);
    benchmark::DoNotOptimize(stats.exp_utility);
  }
}
BENCHMARK(BM_RulesetStats);

void BM_GreedySelect(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Bitmap protected_mask = data.protected_pattern.Evaluate(data.df);
  std::vector<PrescriptionRule> rules;
  const size_t n = data.df.num_rows();
  for (size_t i = 0; i < 40; ++i) {
    PrescriptionRule rule;
    rule.coverage = Bitmap(n);
    for (size_t r = (i * 131) % n; r < n; r += 2 + i % 7) {
      rule.coverage.Set(r);
    }
    rule.coverage_protected = rule.coverage & protected_mask;
    rule.support = rule.coverage.Count();
    rule.support_protected = rule.coverage_protected.Count();
    rule.utility = 500.0 + 13.0 * static_cast<double>(i % 11);
    rule.utility_protected = rule.utility * 0.6;
    rule.utility_nonprotected = rule.utility * 1.1;
    rules.push_back(std::move(rule));
  }
  for (auto _ : state) {
    const GreedyResult result = GreedySelect(
        rules, protected_mask, FairnessConstraint::GroupSP(500.0),
        CoverageConstraint::Group(0.5, 0.5));
    benchmark::DoNotOptimize(result.stats.exp_utility);
  }
}
BENCHMARK(BM_GreedySelect);

}  // namespace
}  // namespace faircap

BENCHMARK_MAIN();
