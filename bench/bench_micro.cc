// Component microbenchmarks (google-benchmark): bitmap set algebra,
// pattern evaluation, Apriori mining, CATE estimation, ruleset statistics
// and greedy selection. These back the runtime claims of Section 7.3 at
// the component level.
//
//   bench_micro [google-benchmark flags]
//   bench_micro --simd-sweep [--json=PATH]
//
// --simd-sweep bypasses google-benchmark and times the runtime-dispatched
// SIMD kernel tiers directly — every kernel at every ISA level this host
// supports, on 1M-bit / 1M-row inputs — and (with --json) writes the
// per-tier throughput record CI archives as BENCH_micro.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "causal/cate_stats_engine.h"
#include "causal/estimator.h"
#include "core/greedy.h"
#include "data/stackoverflow.h"
#include "mining/apriori.h"
#include "util/simd/simd.h"

namespace faircap {
namespace {

const StackOverflowData& SharedData() {
  static const StackOverflowData* data = [] {
    StackOverflowConfig config;
    config.num_rows = 10000;
    auto result = MakeStackOverflow(config);
    return new StackOverflowData(std::move(result).ValueOrDie());
  }();
  return *data;
}

void BM_BitmapAnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Bitmap a(n), b(n);
  for (size_t i = 0; i < n; i += 3) a.Set(i);
  for (size_t i = 0; i < n; i += 5) b.Set(i);
  for (auto _ : state) {
    Bitmap c = a & b;
    benchmark::DoNotOptimize(c.Count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitmapAnd)->Arg(10000)->Arg(100000)->Arg(1000000);

Pattern SharedPattern(const StackOverflowData& data) {
  const size_t country = *data.df.schema().IndexOf("Country");
  const size_t age = *data.df.schema().IndexOf("AgeGroup");
  return Pattern({Predicate(country, CompareOp::kEq, Value("us")),
                  Predicate(age, CompareOp::kEq, Value("25-34"))});
}

// Naive per-row scan: what every pattern-evaluation call site did before
// the PredicateIndex engine.
void BM_PatternEvaluateNaive(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Pattern pattern = SharedPattern(data);
  for (auto _ : state) {
    Bitmap mask = pattern.EvaluateNaive(data.df);
    benchmark::DoNotOptimize(mask.Count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.df.num_rows()));
}
BENCHMARK(BM_PatternEvaluateNaive);

// The seed's evaluation strategy: a fresh columnar scan per predicate on
// every call (no memoization). This is the baseline the PredicateIndex
// speedup in CHANGES.md is measured against.
void BM_PatternEvaluateColumnarRescan(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Pattern pattern = SharedPattern(data);
  for (auto _ : state) {
    Bitmap mask = PredicateIndex::Scan(
        data.df, pattern.predicates()[0].attr, pattern.predicates()[0].op,
        pattern.predicates()[0].value);
    mask &= PredicateIndex::Scan(
        data.df, pattern.predicates()[1].attr, pattern.predicates()[1].op,
        pattern.predicates()[1].value);
    benchmark::DoNotOptimize(mask.Count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.df.num_rows()));
}
BENCHMARK(BM_PatternEvaluateColumnarRescan);

// Index-backed evaluation (the production path): after the first call the
// atom and conjunction masks are memoized, so repeated evaluation — the
// dominant access pattern in steps 2 and 3 — is a hash lookup plus a
// bitmap copy.
void BM_PatternEvaluateIndexed(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Pattern pattern = SharedPattern(data);
  for (auto _ : state) {
    Bitmap mask = pattern.Evaluate(data.df);
    benchmark::DoNotOptimize(mask.Count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.df.num_rows()));
}
BENCHMARK(BM_PatternEvaluateIndexed);

// Zero-copy variant used by TreatedMask and the mining hot loops.
void BM_PatternEvaluateCachedRef(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Pattern pattern = SharedPattern(data);
  for (auto _ : state) {
    const Bitmap& mask = pattern.EvaluateCached(data.df);
    benchmark::DoNotOptimize(mask.Count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.df.num_rows()));
}
BENCHMARK(BM_PatternEvaluateCachedRef);

void BM_Apriori(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const std::vector<size_t> immutable =
      data.df.schema().IndicesWithRole(AttrRole::kImmutable);
  AprioriOptions options;
  options.min_support_fraction = 0.1;
  options.max_pattern_length = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto patterns = MineFrequentPatterns(data.df, immutable, options);
    benchmark::DoNotOptimize(patterns->size());
  }
}
BENCHMARK(BM_Apriori)->Arg(1)->Arg(2)->Arg(3);

void BM_CateRegression(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const auto estimator = CateEstimator::Create(&data.df, &data.dag);
  const size_t major = *data.df.schema().IndexOf("UndergradMajor");
  const Pattern intervention(
      {Predicate(major, CompareOp::kEq, Value("cs"))});
  const Bitmap all = data.df.AllRows();
  for (auto _ : state) {
    auto estimate = estimator->Estimate(intervention, all);
    benchmark::DoNotOptimize(estimate.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.df.num_rows()));
}
BENCHMARK(BM_CateRegression);

void BM_CateStratified(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  CateOptions options;
  options.method = CateMethod::kStratified;
  const auto estimator = CateEstimator::Create(&data.df, &data.dag, options);
  const size_t major = *data.df.schema().IndexOf("UndergradMajor");
  const Pattern intervention(
      {Predicate(major, CompareOp::kEq, Value("cs"))});
  const Bitmap all = data.df.AllRows();
  for (auto _ : state) {
    auto estimate = estimator->Estimate(intervention, all);
    benchmark::DoNotOptimize(estimate.ok());
  }
}
BENCHMARK(BM_CateStratified);

void BM_RulesetStats(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Bitmap protected_mask = data.protected_pattern.Evaluate(data.df);
  // 20 synthetic rules with random-ish coverage windows.
  std::vector<PrescriptionRule> rules;
  const size_t n = data.df.num_rows();
  for (size_t i = 0; i < 20; ++i) {
    PrescriptionRule rule;
    rule.coverage = Bitmap(n);
    for (size_t r = i * 97 % n; r < n; r += 2 + i % 5) rule.coverage.Set(r);
    rule.coverage_protected = rule.coverage & protected_mask;
    rule.support = rule.coverage.Count();
    rule.support_protected = rule.coverage_protected.Count();
    rule.utility = 1000.0 + static_cast<double>(i);
    rule.utility_protected = 800.0;
    rule.utility_nonprotected = 1200.0;
    rules.push_back(std::move(rule));
  }
  for (auto _ : state) {
    const RulesetStats stats = ComputeRulesetStats(rules, protected_mask);
    benchmark::DoNotOptimize(stats.exp_utility);
  }
}
BENCHMARK(BM_RulesetStats);

void BM_GreedySelect(benchmark::State& state) {
  const StackOverflowData& data = SharedData();
  const Bitmap protected_mask = data.protected_pattern.Evaluate(data.df);
  std::vector<PrescriptionRule> rules;
  const size_t n = data.df.num_rows();
  for (size_t i = 0; i < 40; ++i) {
    PrescriptionRule rule;
    rule.coverage = Bitmap(n);
    for (size_t r = (i * 131) % n; r < n; r += 2 + i % 7) {
      rule.coverage.Set(r);
    }
    rule.coverage_protected = rule.coverage & protected_mask;
    rule.support = rule.coverage.Count();
    rule.support_protected = rule.coverage_protected.Count();
    rule.utility = 500.0 + 13.0 * static_cast<double>(i % 11);
    rule.utility_protected = rule.utility * 0.6;
    rule.utility_nonprotected = rule.utility * 1.1;
    rules.push_back(std::move(rule));
  }
  for (auto _ : state) {
    const GreedyResult result = GreedySelect(
        rules, protected_mask, FairnessConstraint::GroupSP(500.0),
        CoverageConstraint::Group(0.5, 0.5));
    benchmark::DoNotOptimize(result.stats.exp_utility);
  }
}
BENCHMARK(BM_GreedySelect);

// ---------------------------------------------------------------------
// SIMD kernel sweep (--simd-sweep): direct per-tier kernel timings.

struct KernelRecord {
  std::string kernel;
  std::string simd;
  size_t items;            // bits or rows per call
  double ns_per_call;
  double items_per_second;
};

/// Median-free steady-state timing: grow the iteration count until one
/// timed batch spans >= 50ms, then report per-call nanoseconds.
template <typename Fn>
double TimeNsPerCall(Fn&& fn) {
  fn();  // warm up (page in inputs, resolve dispatch)
  size_t iters = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (seconds >= 0.05) {
      return seconds * 1e9 / static_cast<double>(iters);
    }
    iters = seconds <= 0.0 ? iters * 16
                           : static_cast<size_t>(
                                 static_cast<double>(iters) * 0.08 / seconds) +
                                 1;
  }
}

void Record(std::vector<KernelRecord>* records, const std::string& kernel,
            simd::SimdLevel level, size_t items, double ns) {
  KernelRecord rec;
  rec.kernel = kernel;
  rec.simd = simd::SimdLevelName(level);
  rec.items = items;
  rec.ns_per_call = ns;
  rec.items_per_second = static_cast<double>(items) * 1e9 / ns;
  std::printf("  %-24s %-7s %12.0f ns/call  %10.2f Mitems/s\n",
              kernel.c_str(), rec.simd.c_str(), ns,
              rec.items_per_second / 1e6);
  records->push_back(std::move(rec));
}

int RunSimdKernelSweep(const std::string& json_path) {
  constexpr size_t kBits = 1'000'000;
  constexpr size_t kWords = (kBits + 63) / 64;
  constexpr size_t kCells = 24;
  std::mt19937_64 rng(7);

  // Bitmap word inputs (random half-density).
  std::vector<uint64_t> a(kWords), b(kWords);
  for (size_t i = 0; i < kWords; ++i) {
    a[i] = rng();
    b[i] = rng();
  }
  // Compare-scan inputs.
  std::vector<int32_t> codes(kBits);
  std::vector<double> values(kBits);
  std::uniform_int_distribution<int32_t> code_dist(-1, 4);
  std::uniform_real_distribution<double> val_dist(-2.0, 2.0);
  for (size_t i = 0; i < kBits; ++i) {
    codes[i] = code_dist(rng);
    values[i] = val_dist(rng);
  }
  std::vector<uint64_t> mask_out(kWords);
  // Accumulation inputs: dense group (every word full — the mining
  // all-rows shape) and a half-density group; random treated/protected.
  std::vector<uint64_t> group_dense(kWords, ~0ULL);
  group_dense.back() >>= (64 - kBits % 64) % 64;
  std::vector<uint64_t> group_sparse(kWords), treated(kWords), prot(kWords);
  for (size_t i = 0; i < kWords; ++i) {
    group_sparse[i] = rng() & rng();
    treated[i] = rng();
    prot[i] = rng();
  }
  std::vector<int32_t> cell_of_row(kBits);
  std::vector<double> outcome(kBits);
  std::vector<int64_t> outcome_i64(kBits);
  std::uniform_int_distribution<int32_t> cell_dist(-1, kCells - 1);
  std::uniform_int_distribution<int64_t> int_dist(-50, 50);
  for (size_t i = 0; i < kBits; ++i) {
    cell_of_row[i] = cell_dist(rng);
    outcome[i] = val_dist(rng);
    outcome_i64[i] = int_dist(rng);
  }
  // Stat arrays carry the two scratch slots the integer kernels' dense
  // loop steers excluded rows into (simd.h, CateSink).
  struct Sink {
    size_t rows = 0, n_treated = 0, n_control = 0;
    std::vector<uint32_t> n = std::vector<uint32_t>(2 * kCells + 2, 0);
    std::vector<double> sy = std::vector<double>(2 * kCells + 2, 0.0);
    std::vector<double> syy = std::vector<double>(2 * kCells + 2, 0.0);
    std::vector<int64_t> isy = std::vector<int64_t>(2 * kCells + 2, 0);
    std::vector<int64_t> isyy = std::vector<int64_t>(2 * kCells + 2, 0);
    simd::CateSink View() {
      simd::CateSink s;
      s.rows = &rows;
      s.n_treated = &n_treated;
      s.n_control = &n_control;
      s.n = n.data();
      s.sy = sy.data();
      s.syy = syy.data();
      s.isy = isy.data();
      s.isyy = isyy.data();
      return s;
    }
  };

  std::vector<KernelRecord> records;
  std::printf("simd kernel sweep: %zu bits, host max tier %s\n", kBits,
              simd::SimdLevelName(simd::MaxSupportedSimdLevel()));
  for (const simd::SimdLevel level : simd::SupportedSimdLevels()) {
    const simd::Kernels* k = simd::KernelsFor(level);
    Record(&records, "popcount", level, kBits,
           TimeNsPerCall([&] {
             benchmark::DoNotOptimize(k->popcount(a.data(), kWords));
           }));
    Record(&records, "and_count", level, kBits,
           TimeNsPerCall([&] {
             benchmark::DoNotOptimize(k->and_count(a.data(), b.data(), kWords));
           }));
    Record(&records, "andnot_count", level, kBits,
           TimeNsPerCall([&] {
             benchmark::DoNotOptimize(
                 k->andnot_count(a.data(), b.data(), kWords));
           }));
    // In-place ops are idempotent (x &= y twice = once), so steady-state
    // timing needs no per-call copy.
    Record(&records, "and_inplace", level, kBits,
           TimeNsPerCall([&] { k->and_inplace(a.data(), b.data(), kWords); }));
    Record(&records, "or_inplace", level, kBits,
           TimeNsPerCall([&] { k->or_inplace(a.data(), b.data(), kWords); }));
    Record(&records, "mask_codes_eq", level, kBits,
           TimeNsPerCall([&] {
             k->mask_codes_eq(codes.data(), kBits, 2, mask_out.data());
           }));
    Record(&records, "mask_numeric_cmp", level, kBits,
           TimeNsPerCall([&] {
             k->mask_numeric_cmp(values.data(), kBits, simd::Cmp::kLe, 0.25,
                                 mask_out.data());
           }));
    for (const bool dense : {true, false}) {
      simd::CateAccumArgs args;
      args.group_words = (dense ? group_dense : group_sparse).data();
      args.treated_words = treated.data();
      args.protected_words = prot.data();
      args.cell_of_row = cell_of_row.data();
      args.outcome = outcome.data();
      args.word_begin = 0;
      args.word_end = kWords;
      args.num_slots = 2 * kCells;
      Record(&records,
             dense ? "cate_accumulate_dense" : "cate_accumulate_sparse",
             level, kBits, TimeNsPerCall([&] {
               Sink overall, p, np;
               args.overall = overall.View();
               args.prot = p.View();
               args.nonprot = np.View();
               k->cate_accumulate(args);
               benchmark::DoNotOptimize(overall.rows);
             }));
      // The exact int64 fast path on the same masks with an
      // integer-valued outcome; the guard never trips at this magnitude.
      args.outcome_i64 = outcome_i64.data();
      args.safe_rows = ~uint64_t{0};
      Record(&records,
             dense ? "cate_accumulate_int_dense" : "cate_accumulate_int_sparse",
             level, kBits, TimeNsPerCall([&] {
               Sink overall, p, np;
               args.overall = overall.View();
               args.prot = p.View();
               args.nonprot = np.View();
               benchmark::DoNotOptimize(k->cate_accumulate_int(args));
               benchmark::DoNotOptimize(overall.rows);
             }));
    }
  }

  // The quantile-edge selection satellite: per-edge nth_element (the
  // production QuantileBinEdges) vs the full sort it replaced, on a
  // 1M-value column. Not a SIMD kernel; recorded once under "scalar".
  {
    auto schema = Schema::Create(
        {{"x", AttrType::kNumeric, AttrRole::kImmutable}});
    DataFrame df = DataFrame::Create(std::move(schema).ValueOrDie());
    std::uniform_real_distribution<double> dist(-1000.0, 1000.0);
    for (size_t i = 0; i < kBits; ++i) {
      (void)df.AppendRow({Value(dist(rng))});
    }
    const Column& col = df.column(0);
    Record(&records, "quantile_edges_nth_element", simd::SimdLevel::kScalar,
           kBits, TimeNsPerCall([&] {
             benchmark::DoNotOptimize(QuantileBinEdges(col, 4));
           }));
    Record(&records, "quantile_edges_full_sort", simd::SimdLevel::kScalar,
           kBits, TimeNsPerCall([&] {
             std::vector<double> vals;
             vals.reserve(col.size());
             for (size_t r = 0; r < col.size(); ++r) {
               if (!col.IsNull(r)) vals.push_back(col.numeric(r));
             }
             std::sort(vals.begin(), vals.end());
             std::vector<double> edges;
             for (size_t bin = 1; bin < 4 && !vals.empty(); ++bin) {
               edges.push_back(vals[vals.size() * bin / 4]);
             }
             benchmark::DoNotOptimize(edges);
           }));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   json_path.c_str());
      return 1;
    }
    out << "{\"bench\":\"micro_simd\",\"bits\":" << kBits
        << ",\"host_max_simd\":\""
        << simd::SimdLevelName(simd::MaxSupportedSimdLevel())
        << "\",\"kernels\":[";
    for (size_t i = 0; i < records.size(); ++i) {
      const KernelRecord& r = records[i];
      out << (i == 0 ? "" : ",") << "{\"kernel\":\"" << r.kernel
          << "\",\"simd\":\"" << r.simd << "\",\"items\":" << r.items
          << ",\"ns_per_call\":" << r.ns_per_call
          << ",\"items_per_second\":" << r.items_per_second << "}";
    }
    out << "]}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int RunSimdSweepMain(const std::string& json_path) {
  return RunSimdKernelSweep(json_path);
}

}  // namespace faircap

int main(int argc, char** argv) {
  std::string json_path;
  bool sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      sweep = true;
    } else if (std::strcmp(argv[i], "--simd-sweep") == 0) {
      sweep = true;
    }
  }
  if (sweep) return faircap::RunSimdSweepMain(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
