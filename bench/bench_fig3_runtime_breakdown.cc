// Figure 3: per-step runtime of the FairCap pipeline (group mining /
// treatment mining / greedy selection) across the nine constraint
// settings, on Stack Overflow.
//
//   $ bench_fig3_runtime_breakdown [--rows=N] [--threads=N]

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "data/stackoverflow.h"

using namespace faircap;
using namespace faircap::bench;

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  StackOverflowConfig config;
  config.num_rows = flags.rows > 0 ? flags.rows : (flags.full ? 38000 : 6000);
  auto data_result = MakeStackOverflow(config);
  if (!data_result.ok()) {
    std::cerr << data_result.status().ToString() << "\n";
    return 1;
  }
  const StackOverflowData data = std::move(data_result).ValueOrDie();
  std::cout << "Figure 3: runtime by step (Stack Overflow, "
            << data.df.num_rows() << " rows)\n\n";

  FairCapOptions options;
  options.apriori.min_support_fraction = 0.1;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 2;
  options.cate.min_group_size = 30;
  options.num_threads = flags.threads;

  std::printf("%-40s %14s %18s %16s %10s\n", "setting", "group-mining(s)",
              "treatment-mining(s)", "selection(s)", "total(s)");
  for (const Setting& setting :
       PaperSettings(/*use_bgl=*/false, 10000.0, 0.5)) {
    FairCapResult result;
    RunSetting(data.df, data.dag, data.protected_pattern, setting, options,
               &result);
    std::printf("%-40s %14.3f %18.3f %16.3f %10.3f\n", setting.name.c_str(),
                result.timings.group_mining_seconds,
                result.timings.treatment_mining_seconds,
                result.timings.selection_seconds, result.timings.total());
  }
  std::cout << "\nPaper shape to check: treatment mining (step 2) dominates "
               "every setting; group\nmining is negligible; rule-coverage "
               "settings are the fastest because infeasible\nrules prune "
               "early; the unconstrained setting is the slowest.\n";
  return 0;
}
