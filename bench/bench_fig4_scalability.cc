// Figure 4: runtime vs dataset size on Stack Overflow (25/50/75/100% of
// the rows) for the FairCap settings plus the IDS and FRL baselines.
// The paper reports near-linear growth for all settings.
//
//   $ bench_fig4_scalability [--rows=N] [--threads=N]

#include <cstdio>
#include <iostream>

#include "baselines/frl.h"
#include "baselines/ids.h"
#include "bench_util.h"
#include "data/stackoverflow.h"
#include "util/random.h"

using namespace faircap;
using namespace faircap::bench;

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  StackOverflowConfig config;
  config.num_rows = flags.rows > 0 ? flags.rows : (flags.full ? 38000 : 6000);
  auto data_result = MakeStackOverflow(config);
  if (!data_result.ok()) {
    std::cerr << data_result.status().ToString() << "\n";
    return 1;
  }
  const StackOverflowData data = std::move(data_result).ValueOrDie();
  std::cout << "Figure 4: runtime vs dataset fraction (Stack Overflow, 100% = "
            << data.df.num_rows() << " rows)\n\n";

  FairCapOptions options;
  options.apriori.min_support_fraction = 0.1;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 2;
  options.cate.min_group_size = 30;
  options.num_threads = flags.threads;

  // A representative subset of the paper's eleven series.
  const std::vector<Setting> settings = {
      {"No constraint", FairnessConstraint::None(),
       CoverageConstraint::None()},
      {"Rule coverage", FairnessConstraint::None(),
       CoverageConstraint::Rule(0.5, 0.5)},
      {"Group fairness", FairnessConstraint::GroupSP(10000.0),
       CoverageConstraint::None()},
      {"Individual fairness", FairnessConstraint::IndividualSP(10000.0),
       CoverageConstraint::None()},
  };

  std::printf("%-24s", "series \\ fraction");
  const double fractions[] = {0.25, 0.5, 0.75, 1.0};
  for (double f : fractions) std::printf(" %9.0f%%", 100 * f);
  std::printf("\n");

  Rng rng(4);
  std::vector<DataFrame> subsets;
  for (double f : fractions) {
    subsets.push_back(f >= 1.0 ? data.df : data.df.SampleFraction(f, &rng));
  }

  for (const Setting& setting : settings) {
    std::printf("%-24s", setting.name.c_str());
    for (const DataFrame& subset : subsets) {
      const SolutionRow row = RunSetting(subset, data.dag,
                                         data.protected_pattern, setting,
                                         options);
      std::printf(" %9.2fs", row.runtime_seconds);
    }
    std::printf("\n");
  }

  // Baselines (single timing per fraction; they ignore constraints).
  std::printf("%-24s", "IDS");
  for (const DataFrame& subset : subsets) {
    StopWatch watch;
    IdsOptions ids_options;
    ids_options.apriori.min_support_fraction = 0.1;
    ids_options.apriori.max_pattern_length = 2;
    auto rules = FitIds(subset, ids_options);
    if (!rules.ok()) {
      std::cerr << rules.status().ToString() << "\n";
      return 1;
    }
    std::printf(" %9.2fs", watch.ElapsedSeconds());
  }
  std::printf("\n%-24s", "FRL");
  for (const DataFrame& subset : subsets) {
    StopWatch watch;
    FrlOptions frl_options;
    frl_options.apriori.min_support_fraction = 0.1;
    frl_options.apriori.max_pattern_length = 2;
    auto rules = FitFrl(subset, frl_options);
    if (!rules.ok()) {
      std::cerr << rules.status().ToString() << "\n";
      return 1;
    }
    std::printf(" %9.2fs", watch.ElapsedSeconds());
  }
  std::printf("\n\nPaper shape to check: every series grows roughly linearly "
              "in the dataset fraction;\nrule coverage is the cheapest "
              "FairCap setting; the unconstrained setting costs the most.\n");
  return 0;
}
