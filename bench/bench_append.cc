// Incremental-append harness: the delta-fraction-vs-cost curve behind
// the "appending 1% of rows should cost ~1% of a cold run" contract.
// One synthetic table (integer outcomes, so incremental estimates are
// bit-for-bit comparable to cold) is split into a resident base plus a
// tail delta at several fractions; for each fraction an
// IncrementalSession runs warm over the base, then the timed section —
// Append(delta) + Run() — is compared against a cold FairCap wall over
// the full table. Every warm ruleset is checked against the cold one
// (supports and utilities exactly), so the speedup is never measured on
// a divergent answer.
//
//   bench_append [--rows=N] [--threads=T] [--full] [--json=PATH]
//
// Default 100K rows (CI smoke uses --rows=20000); --full runs the 1M-row
// acceptance configuration, where the 1% delta must land at <= 5% of the
// cold wall.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/incremental.h"
#include "ingest/synthetic.h"
#include "util/timer.h"

using namespace faircap;

namespace {

struct AppendRow {
  double fraction = 0.0;
  size_t delta_rows = 0;
  double append_seconds = 0.0;  // Append(delta) + warm Run()
  double ingest_seconds = 0.0;  // Append(delta) alone
  double ratio = 0.0;           // append_seconds / cold_seconds
  bool match = false;           // warm ruleset == cold ruleset
};

DataFrame Slice(const DataFrame& df, size_t begin, size_t end) {
  std::vector<uint32_t> rows;
  rows.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) rows.push_back(static_cast<uint32_t>(i));
  return df.TakeRows(rows);
}

bool SameRuleset(const FairCapResult& warm, const FairCapResult& cold) {
  if (warm.rules.size() != cold.rules.size()) return false;
  for (size_t i = 0; i < warm.rules.size(); ++i) {
    const PrescriptionRule& a = warm.rules[i];
    const PrescriptionRule& b = cold.rules[i];
    if (!(a.grouping == b.grouping) || !(a.intervention == b.intervention) ||
        a.support != b.support || a.utility != b.utility) {
      return false;
    }
  }
  return true;
}

int RunScale(size_t rows, size_t threads, const std::string& json_path) {
  SyntheticConfig config;
  config.num_rows = rows;
  config.seed = 33;
  // Integer outcomes keep the sufficient-statistics sums exact in double,
  // so warm-vs-cold equality below is exact, not approximate.
  config.integer_outcome = true;
  auto data = MakeSynthetic(config);
  if (!data.ok()) {
    std::cerr << "generate: " << data.status().ToString() << "\n";
    return 1;
  }

  FairCapOptions options;
  options.fairness = FairnessConstraint::GroupSP(1e9);
  options.num_threads = threads;

  // Cold wall: a fresh solver over the full table — new index, new
  // partitions, no caches. This is what every append ratio is against.
  double cold_seconds = 0.0;
  FairCapResult cold;
  {
    StopWatch watch;
    auto solver = FairCap::Create(&data->df, &data->dag,
                                  data->protected_pattern, options);
    if (!solver.ok()) {
      std::cerr << "cold solver: " << solver.status().ToString() << "\n";
      return 1;
    }
    auto result = solver->Run();
    if (!result.ok()) {
      std::cerr << "cold run: " << result.status().ToString() << "\n";
      return 1;
    }
    cold_seconds = watch.ElapsedSeconds();
    cold = std::move(result).ValueOrDie();
  }
  std::printf("rows=%zu  threads=%zu  cold_wall=%.3fs  rules=%zu\n", rows,
              threads, cold_seconds, cold.rules.size());
  std::printf("cold phases: mine=%.3fs treat=%.3fs select=%.3fs\n",
              cold.timings.group_mining_seconds,
              cold.timings.treatment_mining_seconds,
              cold.timings.selection_seconds);
  std::printf("%-10s %12s %12s %12s %10s %8s\n", "fraction", "delta_rows",
              "ingest_s", "append_s", "ratio", "match");

  const double fractions[] = {0.001, 0.01, 0.05};
  std::vector<AppendRow> results;
  for (const double fraction : fractions) {
    AppendRow row;
    row.fraction = fraction;
    row.delta_rows = static_cast<size_t>(
        fraction * static_cast<double>(rows));
    if (row.delta_rows == 0) row.delta_rows = 1;
    const size_t base_rows = rows - row.delta_rows;
    auto session = IncrementalSession::Create(
        Slice(data->df, 0, base_rows), data->dag, data->protected_pattern,
        options);
    if (!session.ok()) {
      std::cerr << "session: " << session.status().ToString() << "\n";
      return 1;
    }
    // Warm run over the resident base: fills index masks, partitions,
    // engines and the incremental caches. Not part of the timed section —
    // in the deployment story this run already happened.
    auto base_result = session->Run();
    if (!base_result.ok()) {
      std::cerr << "base run: " << base_result.status().ToString() << "\n";
      return 1;
    }
    const DataFrame delta = Slice(data->df, base_rows, rows);
    StopWatch watch;
    const Status append_status = session->Append(delta);
    const double ingest_seconds = watch.ElapsedSeconds();
    if (!append_status.ok()) {
      std::cerr << "append: " << append_status.ToString() << "\n";
      return 1;
    }
    auto warm = session->Run();
    row.append_seconds = watch.ElapsedSeconds();
    row.ingest_seconds = ingest_seconds;
    if (!warm.ok()) {
      std::cerr << "warm run: " << warm.status().ToString() << "\n";
      return 1;
    }
    row.ratio = cold_seconds > 0.0 ? row.append_seconds / cold_seconds : 0.0;
    row.match = SameRuleset(*warm, cold);
    std::printf("%-10.3f %12zu %12.3f %12.3f %9.1f%% %8s\n", fraction,
                row.delta_rows, row.ingest_seconds, row.append_seconds,
                100.0 * row.ratio, row.match ? "yes" : "NO");
    std::printf("           warm phases: mine=%.3fs treat=%.3fs select=%.3fs\n",
                warm->timings.group_mining_seconds,
                warm->timings.treatment_mining_seconds,
                warm->timings.selection_seconds);
    if (!row.match) {
      std::cerr << "FAIL: warm ruleset diverged from cold at fraction "
                << fraction << "\n";
      return 1;
    }
    results.push_back(row);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open '" << json_path << "' for writing\n";
      return 1;
    }
    out << "{\"bench\":\"append\",\"rows\":" << rows
        << ",\"threads\":" << threads << ",\"cold_seconds\":" << cold_seconds
        << ",\"results\":[";
    for (size_t i = 0; i < results.size(); ++i) {
      const AppendRow& r = results[i];
      out << (i == 0 ? "" : ",") << "{\"fraction\":" << r.fraction
          << ",\"delta_rows\":" << r.delta_rows
          << ",\"ingest_seconds\":" << r.ingest_seconds
          << ",\"append_seconds\":" << r.append_seconds
          << ",\"ratio\":" << r.ratio
          << ",\"match\":" << (r.match ? "true" : "false") << "}";
    }
    out << "]}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  std::string json_path;
  bool threads_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) threads_given = true;
  }
  size_t threads = flags.threads;
  if (!threads_given || threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 4 : hw;
  }
  size_t rows = flags.rows;
  if (rows == 0) rows = flags.full ? 1000000 : 100000;
  return RunScale(rows, threads, json_path);
}
