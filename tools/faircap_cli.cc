// faircap_cli: run FairCap end-to-end on a CSV + DAG file from the shell.
//
//   faircap_cli --data=survey.csv --dag=survey.dag --outcome=Salary
//               --mutable=Education,Role --protected="Gender=female"
//               [--fairness=group-sp|indi-sp|group-bgl|indi-bgl]
//               [--fairness-threshold=10000]
//               [--coverage=group|rule --theta=0.5 --theta-p=0.5]
//               [--min-support=0.1] [--max-rules=20] [--threads=0]
//               [--natural-language]
//
// The CSV schema is inferred; every attribute not named in --mutable and
// not the outcome is treated as immutable. The DAG file uses the
// "A -> B;" dialect of causal/dag_io.h. The protected group is a
// comma-separated conjunction of attr=value equalities.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "causal/dag_io.h"
#include "core/faircap.h"
#include "core/metrics.h"
#include "core/templates.h"
#include "dataframe/csv.h"
#include "util/string_util.h"

using namespace faircap;

namespace {

struct CliArgs {
  std::map<std::string, std::string> values;

  static CliArgs Parse(int argc, char** argv) {
    CliArgs args;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        args.values[arg] = "true";
      } else {
        args.values[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
    return args;
  }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values.count(key) != 0; }
};

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

void PrintUsage() {
  std::cout <<
      "usage: faircap_cli --data=FILE.csv --dag=FILE.dag --outcome=ATTR \\\n"
      "                   --mutable=A,B,C --protected=\"Attr=value[,Attr2=v2]\"\n"
      "optional:\n"
      "  --fairness=group-sp|indi-sp|group-bgl|indi-bgl\n"
      "  --fairness-threshold=X      (SP epsilon / BGL tau)\n"
      "  --coverage=group|rule --theta=0.5 --theta-p=0.5\n"
      "  --min-support=0.1 --max-rules=20 --max-intervention-predicates=2\n"
      "  --min-group-size=10 --min-subgroup-arm=5\n"
      "  --threads=0 --natural-language --unit=$\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::Parse(argc, argv);
  if (args.Has("help") || !args.Has("data") || !args.Has("dag") ||
      !args.Has("outcome") || !args.Has("protected")) {
    PrintUsage();
    return args.Has("help") ? 0 : 1;
  }

  // --- Data -----------------------------------------------------------
  auto df_result = ReadCsvInferSchema(args.Get("data"));
  if (!df_result.ok()) return Fail(df_result.status().ToString());
  DataFrame df = std::move(df_result).ValueOrDie();

  // Roles: outcome, mutable list, everything else immutable.
  Status st = df.SetRole(args.Get("outcome"), AttrRole::kOutcome);
  if (!st.ok()) return Fail(st.ToString());
  for (const std::string& name : Split(args.Get("mutable"), ',')) {
    const std::string trimmed = std::string(Trim(name));
    if (trimmed.empty()) continue;
    st = df.SetRole(trimmed, AttrRole::kMutable);
    if (!st.ok()) return Fail(st.ToString());
  }

  // --- DAG -------------------------------------------------------------
  auto dag_result = ReadDagFile(args.Get("dag"));
  if (!dag_result.ok()) return Fail(dag_result.status().ToString());
  const CausalDag dag = std::move(dag_result).ValueOrDie();

  // --- Protected pattern ------------------------------------------------
  std::vector<Predicate> predicates;
  for (const std::string& clause : Split(args.Get("protected"), ',')) {
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return Fail("malformed --protected clause '" + clause + "'");
    }
    const std::string attr = std::string(Trim(clause.substr(0, eq)));
    const std::string value = std::string(Trim(clause.substr(eq + 1)));
    const auto idx = df.schema().IndexOf(attr);
    if (!idx.ok()) return Fail(idx.status().ToString());
    predicates.emplace_back(*idx, CompareOp::kEq, Value(value));
  }
  const Pattern protected_pattern(std::move(predicates));

  // --- Options ----------------------------------------------------------
  FairCapOptions options;
  options.apriori.min_support_fraction = args.GetDouble("min-support", 0.1);
  options.lattice.max_predicates = static_cast<size_t>(
      args.GetDouble("max-intervention-predicates", 2));
  options.greedy.max_rules =
      static_cast<size_t>(args.GetDouble("max-rules", 20));
  options.num_threads = static_cast<size_t>(args.GetDouble("threads", 0));
  options.cate.min_group_size =
      static_cast<size_t>(args.GetDouble("min-group-size", 10));
  options.min_subgroup_arm = static_cast<size_t>(
      args.GetDouble("min-subgroup-arm", 5));

  const std::string fairness = args.Get("fairness");
  const double threshold = args.GetDouble("fairness-threshold", 0.0);
  if (fairness == "group-sp") {
    options.fairness = FairnessConstraint::GroupSP(threshold);
  } else if (fairness == "indi-sp") {
    options.fairness = FairnessConstraint::IndividualSP(threshold);
  } else if (fairness == "group-bgl") {
    options.fairness = FairnessConstraint::GroupBGL(threshold);
  } else if (fairness == "indi-bgl") {
    options.fairness = FairnessConstraint::IndividualBGL(threshold);
  } else if (!fairness.empty()) {
    return Fail("unknown --fairness '" + fairness + "'");
  }

  const std::string coverage = args.Get("coverage");
  const double theta = args.GetDouble("theta", 0.5);
  const double theta_p = args.GetDouble("theta-p", theta);
  if (coverage == "group") {
    options.coverage = CoverageConstraint::Group(theta, theta_p);
  } else if (coverage == "rule") {
    options.coverage = CoverageConstraint::Rule(theta, theta_p);
  } else if (!coverage.empty()) {
    return Fail("unknown --coverage '" + coverage + "'");
  }

  // --- Run ---------------------------------------------------------------
  auto solver = FairCap::Create(&df, &dag, protected_pattern, options);
  if (!solver.ok()) return Fail(solver.status().ToString());
  auto result = solver->Run();
  if (!result.ok()) return Fail(result.status().ToString());

  std::cout << "data: " << args.Get("data") << " (" << df.num_rows()
            << " rows)\nprotected group: " << args.Get("protected") << " ("
            << solver->protected_mask().Count() << " rows)\nconstraints: "
            << options.fairness.ToString() << "; "
            << options.coverage.ToString() << "\n\n";

  PrintMetricsTable(std::cout, "solution",
                    {{"FairCap", result->stats,
                      result->timings.total()}},
                    /*with_runtime=*/true);

  if (args.Has("natural-language")) {
    TemplateOptions nl;
    nl.utility_unit = args.Get("unit");
    std::cout << RulesetToNaturalLanguage(result->rules, df.schema(), nl);
  } else {
    for (const auto& rule : result->rules) {
      std::cout << "  - " << rule.ToString(df.schema()) << "\n";
    }
  }
  return 0;
}
