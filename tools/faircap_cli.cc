// faircap_cli: FairCap from the shell, in four verbs.
//
//   faircap_cli [run] --dataset=NAME [--rows=N] [--seed=S] [--set=k=v,...]
//   faircap_cli [run] --data=survey.csv --dag=survey.dag --outcome=Salary
//               --mutable=Education,Role --protected="Gender=female"
//               [--fairness=group-sp|indi-sp|group-bgl|indi-bgl]
//               [--fairness-threshold=10000]
//               [--coverage=group|rule --theta=0.5 --theta-p=0.5]
//               [--min-support=0.1] [--max-rules=20] [--threads=0]
//               [--index-budget-mb=64] [--natural-language]
//   faircap_cli gen --dataset=synthetic --rows=1000000 --out=data.csv
//               [--dag-out=data.dag] [--seed=S] [--set=k=v,...]
//   faircap_cli ingest --data=data.csv [--chunk-kb=1024] [--compare-legacy]
//   faircap_cli append --dataset=NAME (--delta=FILE.csv[,FILE2] |
//               --delta-fraction=0.01 --delta-batches=4) [--verify]
//   faircap_cli datasets
//
// Every dataset — the paper generators, the synthetic scale workload, and
// CSV+DAG files — loads through the DatasetRepository; file-backed data
// comes in via the streaming columnar ingest path, so the pipeline starts
// with a warm PredicateIndex. The protected group is a comma-separated
// conjunction of attr=value equalities; the DAG file uses the "A -> B;"
// dialect of causal/dag_io.h.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "causal/dag_io.h"
#include "core/faircap.h"
#include "core/incremental.h"
#include "core/metrics.h"
#include "core/templates.h"
#include "dataframe/csv.h"
#include "ingest/chunked_csv_reader.h"
#include "ingest/repository.h"
#include "util/logging.h"
#include "util/obs/metrics.h"
#include "util/obs/run_report.h"
#include "util/obs/trace.h"
#include "util/simd/simd.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace faircap;

namespace {

struct CliArgs {
  std::map<std::string, std::string> values;

  static CliArgs Parse(int argc, char** argv, int first) {
    CliArgs args;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        args.values[arg] = "true";
      } else {
        args.values[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
    return args;
  }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values.count(key) != 0; }
};

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

void PrintUsage() {
  std::cout <<
      "usage: faircap_cli [run] --dataset=NAME | --data=FILE.csv --dag=FILE.dag\n"
      "                   --outcome=ATTR --mutable=A,B,C\n"
      "                   --protected=\"Attr=value[,Attr2=v2]\"\n"
      "       faircap_cli gen --dataset=NAME --rows=N --out=FILE.csv\n"
      "                   [--dag-out=FILE.dag] [--seed=S] [--set=k=v,...]\n"
      "       faircap_cli ingest --data=FILE.csv [--chunk-kb=1024]\n"
      "                   [--compare-legacy]\n"
      "       faircap_cli append --dataset=NAME | --data/--dag/--outcome...\n"
      "                   (--delta=FILE.csv[,FILE2] |\n"
      "                    --delta-fraction=0.01 --delta-batches=4)\n"
      "                   [--verify] [run options]\n"
      "       faircap_cli datasets\n"
      "run options:\n"
      "  --rows=N --seed=S --set=k=v,...   (repository dataset knobs)\n"
      "  --fairness=group-sp|indi-sp|group-bgl|indi-bgl\n"
      "  --fairness-threshold=X      (SP epsilon / BGL tau)\n"
      "  --coverage=group|rule --theta=0.5 --theta-p=0.5\n"
      "  --min-support=0.1 --max-rules=20 --max-intervention-predicates=2\n"
      "  --min-group-size=10 --min-subgroup-arm=5 --index-budget-mb=0\n"
      "  --engine-budget-mb=0     (CATE engine cache cap; 0 = unlimited)\n"
      "  --threads=0              (work-stealing scheduler workers;\n"
      "                            0 = hardware, 1 = sequential)\n"
      "  --shards=0               (row shards per treatment evaluation;\n"
      "                            1 = unsharded oracle, 0 = match threads.\n"
      "                            Patterns and shards share the --threads\n"
      "                            workers as one task graph)\n"
      "  --natural-language --unit=$\n"
      "common options:\n"
      "  --simd=scalar|avx2|avx512   (pin the kernel ISA tier; default:\n"
      "                            best supported. Results are identical\n"
      "                            at every tier. FAIRCAP_SIMD env var\n"
      "                            does the same but clamps with a\n"
      "                            warning instead of failing)\n"
      "  --log-level=debug|info|warn|error   (stderr verbosity; default\n"
      "                            warn. FAIRCAP_LOG env var does the\n"
      "                            same; the flag wins)\n"
      "  --trace-json=FILE        (record spans; write a Chrome\n"
      "                            trace-event / Perfetto-loadable JSON\n"
      "                            timeline at exit. FAIRCAP_TRACE=FILE\n"
      "                            env var does the same)\n"
      "  --metrics-json=FILE      (write the machine-readable run report:\n"
      "                            per-phase wall times plus the full\n"
      "                            metrics registry — scheduler, caches,\n"
      "                            ingest, SIMD tier, estimation splits)\n"
      "ingest options:\n"
      "  --chunk-kb=1024 --threads=1   (parse threads; 0 = hardware)\n"
      "  --compare-legacy\n"
      "append options (incremental re-mining; takes all run options):\n"
      "  --delta=FILE.csv[,FILE2]  (delta CSVs parsed against the resident\n"
      "                            schema, appended batch by batch with a\n"
      "                            re-mine after each)\n"
      "  --delta-fraction=0.01 --delta-batches=4   (generated datasets:\n"
      "                            hold out F*rows per batch and append\n"
      "                            them back — the 1%-delta workload)\n"
      "  --verify                 (cold solver over the final table;\n"
      "                            fails on any ruleset mismatch)\n";
}

/// Repository request from the shared flags: --rows, --seed, and
/// --set=k=v[,k2=v2...] for generator-specific knobs.
DatasetRequest RequestFromArgs(const CliArgs& args, const std::string& name) {
  DatasetRequest request;
  request.name = name;
  request.rows = static_cast<size_t>(args.GetDouble("rows", 0));
  request.seed = static_cast<uint64_t>(args.GetDouble("seed", 0));
  for (const std::string& kv : Split(args.Get("set"), ',')) {
    if (std::string(Trim(kv)).empty()) continue;
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      request.params[std::string(Trim(kv))] = "true";
    } else {
      request.params[std::string(Trim(kv.substr(0, eq)))] =
          std::string(Trim(kv.substr(eq + 1)));
    }
  }
  return request;
}

/// Loads the run/gen dataset: either a named repository entry or a
/// CSV+DAG pair routed through the repository's "file" factory (streaming
/// ingest).
Result<Dataset> LoadFromArgs(const CliArgs& args) {
  if (args.Has("dataset")) {
    return DatasetRepository::Global().Load(
        RequestFromArgs(args, args.Get("dataset")));
  }
  if (!args.Has("data") || !args.Has("dag") || !args.Has("outcome")) {
    return Status::InvalidArgument(
        "need --dataset=NAME or --data/--dag/--outcome/--protected");
  }
  DatasetRequest request = RequestFromArgs(args, "file");
  request.params["path"] = args.Get("data");
  request.params["dag"] = args.Get("dag");
  request.params["outcome"] = args.Get("outcome");
  request.params["mutable"] = args.Get("mutable");
  request.params["protected"] = args.Get("protected");
  return DatasetRepository::Global().Load(request);
}

int RunDatasets() {
  std::cout << "registered datasets:\n";
  for (const auto& [name, description] : DatasetRepository::Global().List()) {
    std::cout << "  " << name << " — " << description << "\n";
  }
  return 0;
}

int RunGen(const CliArgs& args) {
  if (!args.Has("out")) return Fail("gen needs --out=FILE.csv");
  const std::string dataset = args.Get("dataset", "synthetic");
  auto loaded = DatasetRepository::Global().Load(
      RequestFromArgs(args, dataset));
  if (!loaded.ok()) return Fail(loaded.status().ToString());

  const std::string out_path = args.Get("out");
  const Status written = WriteCsv(loaded->df, out_path);
  if (!written.ok()) return Fail(written.ToString());

  std::string dag_path = args.Get("dag-out");
  if (dag_path.empty()) {
    // Replace the extension of the *filename* only; a dot in a directory
    // component ("./big", "data.v2/out") is not an extension.
    const size_t slash = out_path.rfind('/');
    const size_t dot = out_path.rfind('.');
    const bool has_ext =
        dot != std::string::npos && (slash == std::string::npos || dot > slash);
    dag_path = out_path.substr(0, has_ext ? dot : out_path.size()) + ".dag";
  }
  std::ofstream dag_out(dag_path);
  if (!dag_out) return Fail("cannot open '" + dag_path + "' for writing");
  dag_out << DagToText(loaded->dag);
  if (!dag_out) return Fail("write failed for '" + dag_path + "'");

  std::cout << "dataset: " << dataset << " (" << loaded->df.num_rows()
            << " rows, " << loaded->df.num_columns() << " columns)\n"
            << "csv: " << out_path << "\ndag: " << dag_path
            << "\nprotected: "
            << loaded->protected_pattern.ToString(loaded->df.schema()) << " ("
            << loaded->protected_pattern.Evaluate(loaded->df).Count()
            << " rows)\n";
  return 0;
}

int RunIngest(const CliArgs& args) {
  if (!args.Has("data")) return Fail("ingest needs --data=FILE.csv");
  const std::string path = args.Get("data");
  IngestOptions options;
  options.chunk_bytes = static_cast<size_t>(
      args.GetDouble("chunk-kb", 1024.0) * 1024.0);
  options.num_threads = static_cast<size_t>(args.GetDouble("threads", 1));

  IngestStats stats;
  auto df = StreamCsvInferSchema(path, options, &stats);
  if (!df.ok()) return Fail(df.status().ToString());

  const auto index_stats = df->predicate_index().GetStats();
  std::cout << "streamed " << stats.rows << " rows x " << df->num_columns()
            << " columns (" << stats.bytes << " bytes, " << stats.chunks
            << (stats.parse_threads > 1 ? " segments on " : " chunks on ")
            << stats.parse_threads << (stats.parse_threads > 1
                                           ? " threads"
                                           : " thread")
            << ") in " << FormatDouble(stats.seconds) << "s — "
            << FormatDouble(stats.RowsPerSecond() / 1e6)
            << "M rows/s\nwarm index: " << index_stats.warm_atom_masks
            << " category masks (" << index_stats.atom_bytes << " bytes)\n";

  if (args.Has("compare-legacy")) {
    StopWatch watch;
    auto legacy = ReadCsvInferSchema(path);
    if (!legacy.ok()) return Fail(legacy.status().ToString());
    const double legacy_seconds = watch.ElapsedSeconds();
    std::cout << "legacy loader: " << FormatDouble(legacy_seconds) << "s — "
              << FormatDouble(stats.seconds > 0.0
                                  ? legacy_seconds / stats.seconds
                                  : 0.0)
              << "x slower than streaming\n";
  }
  return 0;
}

/// Protected pattern from --protected clauses, or `fallback` (the dataset
/// ground truth) when the flag is absent.
Result<Pattern> ParseProtected(const CliArgs& args, const DataFrame& df,
                               Pattern fallback) {
  Pattern protected_pattern = std::move(fallback);
  if (args.Has("protected")) {
    std::vector<Predicate> predicates;
    for (const std::string& clause : Split(args.Get("protected"), ',')) {
      const size_t eq = clause.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("malformed --protected clause '" +
                                       clause + "'");
      }
      const std::string attr = std::string(Trim(clause.substr(0, eq)));
      const std::string value = std::string(Trim(clause.substr(eq + 1)));
      FAIRCAP_ASSIGN_OR_RETURN(const size_t idx, df.schema().IndexOf(attr));
      predicates.emplace_back(idx, CompareOp::kEq, Value(value));
    }
    protected_pattern = Pattern(std::move(predicates));
  }
  if (protected_pattern.empty()) {
    return Status::InvalidArgument(
        "no protected group: pass --protected=\"Attr=value\"");
  }
  return protected_pattern;
}

/// FairCapOptions from the shared run flags (used by `run` and `append`).
Result<FairCapOptions> OptionsFromArgs(const CliArgs& args) {
  FairCapOptions options;
  options.apriori.min_support_fraction = args.GetDouble("min-support", 0.1);
  options.lattice.max_predicates = static_cast<size_t>(
      args.GetDouble("max-intervention-predicates", 2));
  options.greedy.max_rules =
      static_cast<size_t>(args.GetDouble("max-rules", 20));
  options.num_threads = static_cast<size_t>(args.GetDouble("threads", 0));
  options.num_shards = static_cast<size_t>(args.GetDouble("shards", 0));
  options.cate.min_group_size =
      static_cast<size_t>(args.GetDouble("min-group-size", 10));
  options.min_subgroup_arm = static_cast<size_t>(
      args.GetDouble("min-subgroup-arm", 5));
  const double engine_budget_mb = args.GetDouble("engine-budget-mb", 0.0);
  if (engine_budget_mb > 0.0) {
    options.engine_memory_budget =
        static_cast<size_t>(engine_budget_mb * 1024.0 * 1024.0);
  }

  const std::string fairness = args.Get("fairness");
  const double threshold = args.GetDouble("fairness-threshold", 0.0);
  if (fairness == "group-sp") {
    options.fairness = FairnessConstraint::GroupSP(threshold);
  } else if (fairness == "indi-sp") {
    options.fairness = FairnessConstraint::IndividualSP(threshold);
  } else if (fairness == "group-bgl") {
    options.fairness = FairnessConstraint::GroupBGL(threshold);
  } else if (fairness == "indi-bgl") {
    options.fairness = FairnessConstraint::IndividualBGL(threshold);
  } else if (!fairness.empty()) {
    return Status::InvalidArgument("unknown --fairness '" + fairness + "'");
  }

  const std::string coverage = args.Get("coverage");
  const double theta = args.GetDouble("theta", 0.5);
  const double theta_p = args.GetDouble("theta-p", theta);
  if (coverage == "group") {
    options.coverage = CoverageConstraint::Group(theta, theta_p);
  } else if (coverage == "rule") {
    options.coverage = CoverageConstraint::Rule(theta, theta_p);
  } else if (!coverage.empty()) {
    return Status::InvalidArgument("unknown --coverage '" + coverage + "'");
  }
  return options;
}

int RunPipeline(const CliArgs& args) {
  if (args.Has("help")) {
    PrintUsage();
    return 0;
  }
  StopWatch load_watch;
  auto loaded = LoadFromArgs(args);
  if (!loaded.ok()) {
    PrintUsage();
    return Fail(loaded.status().ToString());
  }
  obs::MetricsRegistry::Global()
      .GetGauge(obs::kPhaseIngest)
      .Set(load_watch.ElapsedSeconds());
  DataFrame df = std::move(loaded->df);
  const CausalDag dag = std::move(loaded->dag);

  // --- Protected pattern: dataset ground truth, overridable. -----------
  auto parsed_protected =
      ParseProtected(args, df, std::move(loaded->protected_pattern));
  if (!parsed_protected.ok()) return Fail(parsed_protected.status().ToString());
  Pattern protected_pattern = std::move(parsed_protected).ValueOrDie();

  // --- Index memory budget ----------------------------------------------
  const double budget_mb = args.GetDouble("index-budget-mb", 0.0);
  if (budget_mb > 0.0) {
    df.predicate_index().SetMemoryBudget(
        static_cast<size_t>(budget_mb * 1024.0 * 1024.0));
  }

  // --- Options ----------------------------------------------------------
  auto parsed_options = OptionsFromArgs(args);
  if (!parsed_options.ok()) return Fail(parsed_options.status().ToString());
  FairCapOptions options = std::move(parsed_options).ValueOrDie();

  // --- Run ---------------------------------------------------------------
  auto solver = FairCap::Create(&df, &dag, protected_pattern, options);
  if (!solver.ok()) return Fail(solver.status().ToString());
  auto result = solver->Run();
  if (!result.ok()) return Fail(result.status().ToString());

  std::cout << "data: " << loaded->name << " (" << df.num_rows()
            << " rows)\nprotected group: "
            << protected_pattern.ToString(df.schema()) << " ("
            << solver->protected_mask().Count() << " rows)\nconstraints: "
            << options.fairness.ToString() << "; "
            << options.coverage.ToString() << "\n\n";

  PrintMetricsTable(std::cout, "solution",
                    {{"FairCap", result->stats,
                      result->timings.total()}},
                    /*with_runtime=*/true);

  if (result->scheduler.collected) {
    // Scheduler observability (stderr, --log-level=info): steals show
    // load balancing across the pattern x shard graph; helped counts
    // tasks a Wait()ing thread ran inline instead of blocking. Inline
    // runs (--threads=1) report as such rather than as missing stats.
    if (result->scheduler.inline_execution) {
      FAIRCAP_LOG(Info) << "scheduler: inline (no workers), "
                        << result->scheduler.tasks
                        << " pattern tasks on the calling thread";
    } else {
      FAIRCAP_LOG(Info) << "scheduler: " << result->scheduler.workers
                        << " workers, " << result->scheduler.tasks
                        << " tasks (" << result->scheduler.stolen
                        << " stolen, " << result->scheduler.helped
                        << " run by waiters)";
    }
  }

  if (args.Has("natural-language")) {
    TemplateOptions nl;
    nl.utility_unit = args.Get("unit");
    std::cout << RulesetToNaturalLanguage(result->rules, df.schema(), nl);
  } else {
    for (const auto& rule : result->rules) {
      std::cout << "  - " << rule.ToString(df.schema()) << "\n";
    }
  }
  {
    const auto index_stats = df.predicate_index().GetStats();
    FAIRCAP_LOG(Info) << "index: " << index_stats.atom_masks
                      << " atom masks, " << index_stats.conjunction_masks
                      << " conjunction masks ("
                      << index_stats.conjunction_bytes << " bytes held, "
                      << index_stats.evictions << " evicted)";
  }
  {
    // Surface engine-cache pressure: a budget far below the working set
    // shows up here as evictions (every re-request rebuilds an engine).
    const auto engine_stats = solver->estimator().GetEngineStats();
    FAIRCAP_LOG(Info) << "engine cache: " << engine_stats.engines
                      << " engines, " << engine_stats.partitions
                      << " partitions (" << engine_stats.bytes
                      << " bytes held), " << engine_stats.hits << " hits / "
                      << engine_stats.misses << " misses, "
                      << engine_stats.evictions << " evicted";
  }
  return 0;
}

/// Structural + numeric comparison of two rulesets. Patterns, supports
/// and rule counts must match exactly; utilities are compared to
/// `rel_tol` (integer-outcome runs come out bit-identical; continuous
/// outcomes reassociate FP sums across delta merges to shard-merge
/// precision). Returns true on match and reports the max relative
/// utility difference seen.
bool RulesetsMatch(const std::vector<PrescriptionRule>& a,
                   const std::vector<PrescriptionRule>& b,
                   const Schema& schema, double rel_tol,
                   double* max_rel_diff, std::string* mismatch) {
  *max_rel_diff = 0.0;
  if (a.size() != b.size()) {
    *mismatch = "rule count " + std::to_string(a.size()) + " vs " +
                std::to_string(b.size());
    return false;
  }
  const auto rel = [](double x, double y) {
    const double denom = std::max(std::abs(x), std::abs(y));
    return denom > 0.0 ? std::abs(x - y) / denom : 0.0;
  };
  for (size_t i = 0; i < a.size(); ++i) {
    const PrescriptionRule& ra = a[i];
    const PrescriptionRule& rb = b[i];
    if (ra.grouping.ToString(schema) != rb.grouping.ToString(schema) ||
        ra.intervention.ToString(schema) != rb.intervention.ToString(schema) ||
        ra.support != rb.support ||
        ra.support_protected != rb.support_protected) {
      *mismatch = "rule " + std::to_string(i) + " structure: [" +
                  ra.ToString(schema) + "] vs [" + rb.ToString(schema) + "]";
      return false;
    }
    for (const double d :
         {rel(ra.utility, rb.utility),
          rel(ra.utility_protected, rb.utility_protected),
          rel(ra.utility_nonprotected, rb.utility_nonprotected),
          rel(ra.benefit, rb.benefit)}) {
      *max_rel_diff = std::max(*max_rel_diff, d);
    }
  }
  if (*max_rel_diff > rel_tol) {
    *mismatch = "max relative utility difference " +
                FormatDouble(*max_rel_diff) + " exceeds " +
                FormatDouble(rel_tol);
    return false;
  }
  return true;
}

int RunAppend(const CliArgs& args) {
  auto loaded = LoadFromArgs(args);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const CausalDag dag_copy = loaded->dag;  // verify run borrows this one

  const bool use_files = args.Has("delta");
  const double delta_fraction = args.GetDouble("delta-fraction", 0.0);
  const size_t delta_batches =
      static_cast<size_t>(args.GetDouble("delta-batches", 1));
  if (!use_files && delta_fraction <= 0.0) {
    return Fail(
        "append needs --delta=FILE.csv[,FILE2] or --delta-fraction=F "
        "[--delta-batches=N]");
  }

  // Assemble base table + delta batches. File deltas are parsed against
  // the RESIDENT schema; generated datasets are split row-wise (the full
  // generation is the ground truth a cold run over everything would see).
  DataFrame base = std::move(loaded->df);
  std::vector<DataFrame> deltas;
  if (use_files) {
    for (const std::string& path : Split(args.Get("delta"), ',')) {
      if (std::string(Trim(path)).empty()) continue;
      DatasetRepository::AppendStats stats;
      auto delta = DatasetRepository::ParseDelta(
          base.schema(), std::string(Trim(path)), IngestOptions{}, &stats);
      if (!delta.ok()) return Fail(delta.status().ToString());
      FAIRCAP_LOG(Info) << "delta: " << path << " (" << stats.rows
                        << " rows, " << stats.bytes << " bytes, "
                        << FormatDouble(stats.seconds) << "s parse)";
      deltas.push_back(std::move(delta).ValueOrDie());
    }
    if (deltas.empty()) return Fail("--delta named no readable files");
  } else {
    const size_t total = base.num_rows();
    const size_t batch_rows =
        static_cast<size_t>(static_cast<double>(total) * delta_fraction);
    if (batch_rows == 0 || batch_rows * delta_batches >= total) {
      return Fail("--delta-fraction/--delta-batches leave no base rows");
    }
    const size_t base_rows = total - batch_rows * delta_batches;
    std::vector<uint32_t> ids(base_rows);
    for (size_t i = 0; i < base_rows; ++i) ids[i] = static_cast<uint32_t>(i);
    DataFrame split_base = base.TakeRows(ids);
    for (size_t b = 0; b < delta_batches; ++b) {
      ids.resize(batch_rows);
      for (size_t i = 0; i < batch_rows; ++i) {
        ids[i] = static_cast<uint32_t>(base_rows + b * batch_rows + i);
      }
      deltas.push_back(base.TakeRows(ids));
    }
    base = std::move(split_base);
  }

  auto parsed_protected =
      ParseProtected(args, base, std::move(loaded->protected_pattern));
  if (!parsed_protected.ok()) return Fail(parsed_protected.status().ToString());
  const Pattern protected_pattern = std::move(parsed_protected).ValueOrDie();
  auto parsed_options = OptionsFromArgs(args);
  if (!parsed_options.ok()) return Fail(parsed_options.status().ToString());
  const FairCapOptions options = std::move(parsed_options).ValueOrDie();

  auto session = IncrementalSession::Create(std::move(base), std::move(loaded->dag),
                                            protected_pattern, options);
  if (!session.ok()) return Fail(session.status().ToString());

  StopWatch watch;
  auto result = session->Run();
  if (!result.ok()) return Fail(result.status().ToString());
  const double base_seconds = watch.ElapsedSeconds();
  std::cout << "base run: " << session->df().num_rows() << " rows, "
            << result->rules.size() << " rules, "
            << FormatDouble(base_seconds) << "s\n";

  double append_seconds_total = 0.0;
  for (size_t b = 0; b < deltas.size(); ++b) {
    watch.Restart();
    const Status appended = session->Append(deltas[b]);
    if (!appended.ok()) return Fail(appended.ToString());
    {
      const obs::TraceSpan span("append_remine");
      result = session->Run();
    }
    if (!result.ok()) return Fail(result.status().ToString());
    const double seconds = watch.ElapsedSeconds();
    append_seconds_total += seconds;
    std::cout << "append " << (b + 1) << "/" << deltas.size() << ": +"
              << deltas[b].num_rows() << " rows -> "
              << session->df().num_rows() << " total, "
              << result->rules.size() << " rules, " << FormatDouble(seconds)
              << "s (" << FormatDouble(seconds / base_seconds)
              << "x base run)\n";
  }

  const auto cache = session->state().GetCacheStats();
  FAIRCAP_LOG(Info) << "incremental caches: " << cache.accum_entries
                    << " accum entries (" << cache.accum_bytes
                    << " bytes), " << cache.group_entries
                    << " group entries, group reuse "
                    << (cache.group_reuse_sound ? "sound" : "disabled");

  for (const auto& rule : result->rules) {
    std::cout << "  - " << rule.ToString(session->df().schema()) << "\n";
  }

  if (args.Has("verify")) {
    // Pinning oracle: a cold solver over the concatenated table with
    // fresh estimator/mining caches (the warm PredicateIndex is shared —
    // its masks are pinned equivalent by the index's own tests).
    FairCapOptions cold_options = options;
    cold_options.incremental_state = nullptr;
    watch.Restart();
    auto cold_solver = FairCap::Create(&session->df(), &dag_copy,
                                       protected_pattern, cold_options);
    if (!cold_solver.ok()) return Fail(cold_solver.status().ToString());
    auto cold = cold_solver->Run();
    if (!cold.ok()) return Fail(cold.status().ToString());
    const double cold_seconds = watch.ElapsedSeconds();
    double max_rel_diff = 0.0;
    std::string mismatch;
    const bool match =
        RulesetsMatch(result->rules, cold->rules, session->df().schema(),
                      /*rel_tol=*/1e-6, &max_rel_diff, &mismatch);
    std::cout << "verify: cold run " << FormatDouble(cold_seconds)
              << "s; incremental appends " << FormatDouble(append_seconds_total)
              << "s total ("
              << FormatDouble(append_seconds_total /
                              (cold_seconds * static_cast<double>(deltas.size())))
              << "x cold per batch); rulesets "
              << (match ? "MATCH" : "MISMATCH")
              << " (max rel diff " << FormatDouble(max_rel_diff) << ")\n";
    if (!match) return Fail("incremental/cold ruleset mismatch: " + mismatch);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string verb = "run";
  int first_flag = 1;
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    verb = argv[1];
    first_flag = 2;
  }
  const CliArgs args = CliArgs::Parse(argc, argv, first_flag);

  // Verbosity: FAIRCAP_LOG env first, explicit --log-level wins.
  InitLogLevelFromEnv();
  if (args.Has("log-level")) {
    LogLevel level;
    if (!ParseLogLevel(args.Get("log-level"), &level)) {
      return Fail("unknown --log-level '" + args.Get("log-level") +
                  "' (want debug|info|warn|error)");
    }
    SetLogLevel(level);
  }

  // Pin the SIMD kernel tier before any work runs (the first bitmap or
  // estimator call freezes throughput characteristics). Unlike the
  // FAIRCAP_SIMD env knob, which clamps with a warning, an explicit flag
  // asking for an unsupported tier is a hard error.
  if (args.Has("simd")) {
    simd::SimdLevel level;
    if (!simd::ParseSimdLevel(args.Get("simd"), &level)) {
      return Fail("unknown --simd value '" + args.Get("simd") +
                  "' (want scalar|avx2|avx512)");
    }
    const Status status = simd::SetSimdLevel(level);
    if (!status.ok()) return Fail(status.ToString());
  }

  // Span tracing: on for the whole verb when a destination is named
  // (--trace-json=FILE, or the FAIRCAP_TRACE=FILE env var), flushed once
  // after the verb finishes — by then the pipeline has destroyed (joined)
  // its scheduler, so no thread is still recording.
  std::string trace_path = args.Get("trace-json");
  if (trace_path.empty()) {
    // Read once at CLI startup on the main thread; no setenv in-process.
    const char* env = std::getenv("FAIRCAP_TRACE");  // NOLINT(concurrency-mt-unsafe)
    if (env != nullptr) trace_path = env;
  }
  if (trace_path == "true") {
    return Fail("--trace-json needs a file: --trace-json=FILE");
  }
  if (args.Get("metrics-json") == "true") {
    return Fail("--metrics-json needs a file: --metrics-json=FILE");
  }
  if (!trace_path.empty()) obs::EnableTracing();

  int rc;
  if (verb == "run") {
    rc = RunPipeline(args);
  } else if (verb == "gen") {
    rc = RunGen(args);
  } else if (verb == "ingest") {
    rc = RunIngest(args);
  } else if (verb == "append") {
    rc = RunAppend(args);
  } else if (verb == "datasets") {
    rc = RunDatasets();
  } else if (verb == "help") {
    PrintUsage();
    return 0;
  } else {
    PrintUsage();
    return Fail("unknown verb '" + verb + "'");
  }

  if (!trace_path.empty()) {
    obs::DisableTracing();
    const size_t events = obs::TraceEventCount();
    const Status written = obs::WriteChromeTraceFile(trace_path);
    if (!written.ok()) return Fail(written.ToString());
    FAIRCAP_LOG(Info) << "trace: " << trace_path << " (" << events
                      << " spans; load in ui.perfetto.dev)";
  }
  if (args.Has("metrics-json")) {
    const Status written = obs::WriteRunReportFile(args.Get("metrics-json"));
    if (!written.ok()) return Fail(written.ToString());
    FAIRCAP_LOG(Info) << "metrics: " << args.Get("metrics-json");
  }
  return rc;
}
