#!/usr/bin/env python3
"""clang-tidy driver for faircap's static-analysis CI leg.

Runs clang-tidy (config from the repo's .clang-tidy) over every first-party
translation unit in a build tree's compile_commands.json, then compares the
set of findings against the committed baseline (tools/tidy_baseline.json).
The gate fails on any finding not in the baseline; the baseline is committed
empty and is expected to stay empty — fix new findings or suppress them at
the site with NOLINT(check-name) plus a reason comment.

Caching: each TU's result is memoized under --cache-dir, keyed by a hash of
(clang-tidy version, .clang-tidy, compile command, file content, and the
content of every first-party header). CI restores the cache dir across runs
so an untouched TU costs one hash, not one clang-tidy invocation.

Exit codes: 0 clean (or clang-tidy unavailable and --require-binary not
set), 1 findings outside the baseline, 2 usage/environment error.
"""

import argparse
import hashlib
import json
import re
import shlex
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# path:line:col: severity: message [check-name]
FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s*"
    r"(?:warning|error):\s*(?P<message>.*?)\s*\[(?P<check>[\w.,-]+)\]$"
)


def first_party(path):
    try:
        rel = Path(path).resolve().relative_to(REPO_ROOT)
    except ValueError:
        return None
    top = rel.parts[0] if rel.parts else ""
    if top not in ("src", "tools", "tests", "bench"):
        return None
    if "lint_fixtures" in rel.parts or "fixtures" in rel.parts:
        return None
    return rel


def header_digest():
    """Hash every first-party header once; any header edit invalidates all TUs.

    Coarse but safe: per-TU include tracking would need -MD output plumbed
    through clang-tidy, and full runs are cheap enough after the first.
    """
    h = hashlib.sha256()
    for scope in ("src", "tools", "tests", "bench"):
        base = REPO_ROOT / scope
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in (".h", ".hpp") and p.is_file():
                h.update(str(p.relative_to(REPO_ROOT)).encode())
                h.update(p.read_bytes())
    return h.hexdigest()


def normalize(findings):
    """Canonical, line-number-free keys so small edits don't churn the set."""
    out = []
    for f in findings:
        out.append(
            {
                "path": f["path"],
                "check": f["check"],
                "message": f["message"],
            }
        )
    return out


def run_one(tidy, entry, config_hash, headers_hash, cache_dir):
    src = Path(entry["file"])
    rel = first_party(src)
    if rel is None:
        return None
    command = entry.get("command") or " ".join(
        shlex.quote(a) for a in entry.get("arguments", [])
    )
    key = hashlib.sha256()
    key.update(config_hash.encode())
    key.update(headers_hash.encode())
    key.update(command.encode())
    key.update(src.read_bytes())
    cache_file = cache_dir / (key.hexdigest() + ".json")
    if cache_file.exists():
        return json.loads(cache_file.read_text())

    proc = subprocess.run(
        [tidy, "-p", entry["directory"], "--quiet", str(src)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line.strip())
        if not m:
            continue
        fp = first_party(m.group("path"))
        if fp is None:
            continue
        findings.append(
            {
                "path": str(fp),
                "line": int(m.group("line")),
                "check": m.group("check"),
                "message": m.group("message"),
            }
        )
    # clang-tidy exits nonzero on warnings-as-errors; only surface runs
    # that produced no parseable findings AND a hard failure (bad flags,
    # missing header) so real breakage isn't cached as "clean".
    if proc.returncode != 0 and not findings:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"clang-tidy failed on {src} with no findings")
    cache_file.write_text(json.dumps(findings, indent=1))
    return findings


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--build-dir",
        default="build",
        help="build tree containing compile_commands.json (default: build)",
    )
    ap.add_argument(
        "--cache-dir",
        default=".tidy-cache",
        help="per-file result cache directory (default: .tidy-cache)",
    )
    ap.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "tools" / "tidy_baseline.json"),
        help="committed baseline of tolerated findings",
    )
    ap.add_argument(
        "--require-binary",
        action="store_true",
        help="fail (exit 2) instead of skipping when clang-tidy is missing",
    )
    ap.add_argument(
        "--clang-tidy", default="clang-tidy", help="clang-tidy binary to use"
    )
    args = ap.parse_args()

    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        if args.require_binary:
            print("run_clang_tidy: clang-tidy not found", file=sys.stderr)
            return 2
        print("run_clang_tidy: clang-tidy not found; skipping (local dev ok)")
        return 0

    db_path = Path(args.build_dir) / "compile_commands.json"
    if not db_path.exists():
        print(
            f"run_clang_tidy: {db_path} not found; configure with "
            "CMAKE_EXPORT_COMPILE_COMMANDS=ON first",
            file=sys.stderr,
        )
        return 2

    version = subprocess.run(
        [tidy, "--version"], capture_output=True, text=True
    ).stdout
    config = (REPO_ROOT / ".clang-tidy").read_text()
    config_hash = hashlib.sha256((version + config).encode()).hexdigest()
    headers_hash = header_digest()

    cache_dir = Path(args.cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)

    entries = json.loads(db_path.read_text())
    all_findings = []
    checked = 0
    for entry in entries:
        result = run_one(tidy, entry, config_hash, headers_hash, cache_dir)
        if result is None:
            continue
        checked += 1
        all_findings.extend(result)

    baseline_path = Path(args.baseline)
    baseline = (
        json.loads(baseline_path.read_text()) if baseline_path.exists() else []
    )
    baseline_keys = {json.dumps(f, sort_keys=True) for f in normalize(baseline)}
    new = [
        f
        for f in all_findings
        if json.dumps(
            {"path": f["path"], "check": f["check"], "message": f["message"]},
            sort_keys=True,
        )
        not in baseline_keys
    ]

    if new:
        print(f"run_clang_tidy: {len(new)} finding(s) not in baseline:")
        for f in sorted(new, key=lambda f: (f["path"], f["line"])):
            print(f"  {f['path']}:{f['line']}: [{f['check']}] {f['message']}")
        print(
            "Fix them or add NOLINT(check-name) with a reason; do not grow "
            "the baseline."
        )
        return 1
    print(f"run_clang_tidy: clean ({checked} TUs, cache: {cache_dir})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
