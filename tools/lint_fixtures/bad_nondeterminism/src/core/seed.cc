// BAD: rand() and wall-clock seeding in src/. Results depend on libc
// PRNG state and the time of day.
#include <cstdlib>
#include <ctime>

int FixtureNoise() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // must be flagged
  return std::rand();                                // must be flagged
}
