// GOOD: unordered containers used only for membership in ordering code —
// .count/.insert/.find/operator[] never depend on iteration order.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::vector<std::string> FixtureSelect(
    const std::vector<std::string>& candidates,
    const std::unordered_set<std::string>& seen) {
  std::unordered_map<std::string, int> counts;
  std::vector<std::string> out;
  for (const std::string& c : candidates) {  // ordered input: fine
    if (seen.count(c) != 0) continue;        // membership: fine
    if (counts.find(c) == counts.end()) out.push_back(c);
    ++counts[c];                             // operator[]: fine
  }
  return out;
}
