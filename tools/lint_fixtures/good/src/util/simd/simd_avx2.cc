// GOOD: integer kernels and FP *compares* only — patterns the rules must
// NOT flag. String/comment mentions of banned tokens ("rand(", "time(s)")
// must also pass, pinning the lint's literal stripping.
#include <immintrin.h>

#include <cstdint>

// A comment mentioning rand() and time() — stripped before matching.
static const char* kLabel = "      time(s) rand() sum += 1.0";

uint64_t FixtureMaskCompare(const double* data, int n, double threshold) {
  uint64_t bits = 0;
  const __m256d rhs = _mm256_set1_pd(threshold);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(data + i);
    const __m256d m = _mm256_cmp_pd(v, rhs, _CMP_LT_OQ);  // compare: fine
    bits |= static_cast<uint64_t>(_mm256_movemask_pd(m)) << i;
  }
  for (; i < n; ++i) {
    if (data[i] < threshold) bits |= uint64_t{1} << i;  // int accumulate: fine
  }
  return kLabel != nullptr ? bits : 0;
}
