// Vector TU body is irrelevant to the fp-contract rule (it parses the
// CMakeLists); integer-only so no other rule fires.
int FixtureKernel(const int* data, int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += data[i];
  return acc;
}
