// BAD: floating-point accumulation inside a vector TU. Vector-width FP
// adds (and per-lane compound sums) round differently than the scalar
// tier's row-order loop, breaking bit-identity. FP math belongs in the
// shared scalar core (simd_kernels_core.h).

double FixtureAccumulate(const double* data, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += data[i];  // compound FP accumulation — must be flagged
  }
  return sum;
}
