// Same violation as bad_fp_accumulate, but carrying the explicit
// suppression marker — the lint must honor it (and CI reviewers must see
// it in the diff).
double FixtureAllowedAccumulate(const double* data, int n) {
  // Justification (fixture): pretend this sum is order-insensitive.
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += data[i];  // determinism:allow(fp-accumulate)
  }
  return sum;
}
