// Banned token with the suppression marker — must pass.
#include <ctime>

long FixtureAllowedClock() {
  // Justification (fixture): pretend wall-clock is display-only here.
  return time(nullptr);  // determinism:allow(nondeterminism)
}
