// BAD: iterating an unordered_map in result-ordering code. The
// iteration order is implementation- and run-dependent, so any output
// assembled this way changes between runs/platforms.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> FixtureSelectRules(
    const std::unordered_map<std::string, double>& scores) {
  std::unordered_map<std::string, double> filtered = scores;
  std::vector<std::string> out;
  for (const auto& [name, score] : filtered) {  // must be flagged
    if (score > 0.0) out.push_back(name);
  }
  return out;
}
