#!/usr/bin/env python3
"""Static determinism lint for the FairCap tree.

The repo's determinism contract — rulesets and estimates bit-identical
across SIMD tiers, shard counts, and thread counts — is enforced
dynamically by pinning tests, which only sample configurations. This
lint checks the *static* preconditions those tests rely on, so a
regression fails CI on the line that introduced it instead of on
whichever pinning combination happens to exercise it:

  fp-contract      Every SIMD vector TU (per-file -m<isa> flags in
                   src/util/CMakeLists.txt) must pin -ffp-contract=off.
                   -mavx512f implies -mfma; default contraction would
                   fuse mul+add chains into FMAs and break scalar/vector
                   bit-identity (the PR 8 regression).

  fp-accumulate    No floating-point accumulation inside vector kernel
                   TUs (src/util/simd/simd_<isa>.cc): FP adds must stay
                   in the shared scalar core (core::AddRow and the
                   staged-flush paths in simd_kernels_core.h) so every
                   tier sums in the same order with the same rounding.
                   FP *compare* intrinsics are fine.

  unordered-iter   No iteration over unordered containers in
                   result-ordering code (mining selection, merge order,
                   estimation solves). Iteration order of
                   std::unordered_* is implementation- and run-dependent;
                   membership tests (.count/.find/.insert/[]) are fine.

  nondeterminism   No banned nondeterminism sources in src/ or tools/:
                   rand()/srand()/random()/drand48(), std::random_device,
                   std::default_random_engine, wall-clock time() /
                   gettimeofday() / system_clock, or getpid()-style seed
                   material. Seeded engines (util/random.h's xoshiro,
                   explicitly-seeded std engines) and steady_clock timing
                   are allowed.

Suppression: append `// determinism:allow(<rule>)` to the offending line
with a justification comment nearby. The lint treats it like NOLINT —
visible, greppable, reviewed.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
Run `tools/lint_determinism.py --self-test` to check the lint against
its known-bad/known-good fixtures (tools/lint_fixtures/); CI runs both.
"""

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# --------------------------------------------------------------------------
# Source preprocessing


def strip_comments_and_strings(text):
    """Blanks out comments, string literals, and char literals, keeping
    line structure intact so findings carry real line numbers. Suppression
    markers (determinism:allow) survive via the caller keeping raw lines.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":  # unterminated (raw strings not used in src/)
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


ALLOW_RE = re.compile(r"//\s*determinism:allow\((?P<rule>[a-z-]+)\)")


def allowed(raw_line, rule):
    m = ALLOW_RE.search(raw_line)
    return m is not None and m.group("rule") == rule


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        rel = self.path
        try:
            rel = self.path.relative_to(REPO_ROOT)
        except ValueError:
            pass
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Rule 1: fp-contract — vector TUs must pin -ffp-contract=off in CMake.

SET_VAR_RE = re.compile(r'set\(\s*(\w+)\s+"([^"]*)"')
SRC_PROPS_RE = re.compile(
    r"set_source_files_properties\(\s*(\S+)\s+PROPERTIES\s+"
    r'COMPILE_OPTIONS\s+"([^"]*)"\s*\)',
    re.DOTALL,
)


def check_fp_contract(root):
    findings = []
    vector_tus = sorted(root.glob("src/**/simd/simd_*.cc"))
    vector_tus = [p for p in vector_tus if p.name != "simd.cc"]
    # Dispatch TU (simd.cc) has no -march flags and no kernels; only the
    # per-ISA TUs are in scope.
    pinned = {}
    for cml in sorted(root.glob("src/**/CMakeLists.txt")):
        text = cml.read_text(encoding="utf-8")
        variables = dict(SET_VAR_RE.findall(text))
        for match in SRC_PROPS_RE.finditer(text):
            source, options = match.groups()
            # Expand one level of ${VAR} indirection (FAIRCAP_AVX512_FLAGS).
            options = re.sub(
                r"\$\{(\w+)\}", lambda m: variables.get(m.group(1), ""), options
            )
            line = text[: match.start()].count("\n") + 1
            pinned[(cml.parent / source).resolve()] = (
                cml,
                line,
                options,
            )
    for tu in vector_tus:
        entry = pinned.get(tu.resolve())
        if entry is None:
            findings.append(
                Finding(
                    "fp-contract",
                    tu,
                    1,
                    "SIMD vector TU has no per-file COMPILE_OPTIONS in its "
                    "CMakeLists.txt; it must pin -ffp-contract=off "
                    "alongside its -m<isa> flags",
                )
            )
            continue
        cml, line, options = entry
        if "-ffp-contract=off" not in options.split(";"):
            findings.append(
                Finding(
                    "fp-contract",
                    cml,
                    line,
                    f"COMPILE_OPTIONS for {tu.name} ({options!r}) is missing "
                    "-ffp-contract=off; FMA contraction breaks cross-tier "
                    "bit-identity",
                )
            )
    return findings


# --------------------------------------------------------------------------
# Rule 2: fp-accumulate — no FP accumulation in vector kernel TUs.

FP_ARITH_INTRINSIC_RE = re.compile(
    r"_mm\d*_(?:mask[z]?_)?"
    r"(?:add|sub|mul|div|fmadd|fmsub|fnmadd|fnmsub|hadd|hsub|dp|"
    r"reduce_add|reduce_mul)_(?:round_)?(?:pd|ps|sd|ss|ph)\b"
)
FP_DECL_RE = re.compile(r"\b(?:double|float|__m\d+[d]?\b(?![i]))\s+(\w+)")
COMPOUND_RE = re.compile(r"\b([A-Za-z_]\w*)\s*[+\-*/]=")
FP_LITERAL_RHS_RE = re.compile(r"[+\-*/]=\s*[^;=]*\d\.\d")


def check_fp_accumulate(root):
    findings = []
    vector_tus = sorted(root.glob("src/**/simd/simd_*.cc"))
    vector_tus = [p for p in vector_tus if p.name != "simd.cc"]
    for tu in vector_tus:
        raw = tu.read_text(encoding="utf-8")
        stripped = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        lines = stripped.splitlines()
        # FP-typed locals/params declared anywhere in the TU (double, float,
        # or FP vector registers — __m256d etc.; __m256i is integer).
        fp_names = set(FP_DECL_RE.findall(stripped))
        for lineno, (code, rawline) in enumerate(zip(lines, raw_lines), 1):
            if FP_ARITH_INTRINSIC_RE.search(code):
                if not allowed(rawline, "fp-accumulate"):
                    findings.append(
                        Finding(
                            "fp-accumulate",
                            tu,
                            lineno,
                            "FP arithmetic intrinsic in a vector TU; FP math "
                            "belongs in the shared scalar core "
                            "(simd_kernels_core.h) so all tiers round "
                            "identically",
                        )
                    )
                continue
            for m in COMPOUND_RE.finditer(code):
                name = m.group(1)
                if name in fp_names and not allowed(rawline, "fp-accumulate"):
                    findings.append(
                        Finding(
                            "fp-accumulate",
                            tu,
                            lineno,
                            f"compound FP accumulation on '{name}' in a "
                            "vector TU; route sums through core::AddRow / "
                            "the staged-flush paths",
                        )
                    )
                    break
            else:
                if FP_LITERAL_RHS_RE.search(code) and not allowed(
                    rawline, "fp-accumulate"
                ):
                    findings.append(
                        Finding(
                            "fp-accumulate",
                            tu,
                            lineno,
                            "compound assignment with an FP literal in a "
                            "vector TU",
                        )
                    )
    return findings


# --------------------------------------------------------------------------
# Rule 3: unordered-iter — no unordered-container iteration in
# result-ordering code.

# Files whose output order feeds user-visible results: mining selection,
# greedy/merge order, ruleset assembly, estimation solve order. Extend
# this list when a new subsystem starts producing ordered output.
ORDERING_FILES = [
    "src/mining/lattice.cc",
    "src/mining/apriori.cc",
    "src/core/faircap.cc",
    "src/core/greedy.cc",
    "src/core/ruleset.cc",
    "src/causal/cate_stats_engine.cc",
    "src/causal/estimator.cc",
]

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*&?\s*(\w+)\s*[;={(]"
)
RANGE_FOR_RE = re.compile(r"for\s*\([^;)]*:\s*&?\s*(\w+)\s*\)")
# Only begin(): iteration always needs it, while a bare end() is the
# find(x) == c.end() membership idiom, which is order-insensitive.
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*c?begin\s*\(")
INLINE_UNORDERED_FOR_RE = re.compile(r"for\s*\([^)]*:\s*[^)]*unordered_")


def check_unordered_iteration(root):
    findings = []
    for rel in ORDERING_FILES:
        path = root / rel
        if not path.exists():
            continue
        raw = path.read_text(encoding="utf-8")
        stripped = strip_comments_and_strings(raw)
        unordered_names = set(UNORDERED_DECL_RE.findall(stripped))
        raw_lines = raw.splitlines()
        for lineno, (code, rawline) in enumerate(
            zip(stripped.splitlines(), raw_lines), 1
        ):
            hits = set()
            for m in RANGE_FOR_RE.finditer(code):
                if m.group(1) in unordered_names:
                    hits.add(m.group(1))
            for m in BEGIN_CALL_RE.finditer(code):
                if m.group(1) in unordered_names:
                    hits.add(m.group(1))
            if INLINE_UNORDERED_FOR_RE.search(code):
                hits.add("<inline unordered container>")
            for name in sorted(hits):
                if allowed(rawline, "unordered-iter"):
                    continue
                findings.append(
                    Finding(
                        "unordered-iter",
                        path,
                        lineno,
                        f"iteration over unordered container '{name}' in "
                        "result-ordering code; iterate a sorted copy or an "
                        "ordered container instead",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# Rule 4: nondeterminism — banned randomness/clock sources in src/, tools/.

BANNED_TOKENS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:])random\s*\("), "random()"),
    (re.compile(r"\b[dlm]rand48\s*\("), "*rand48()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"(?<![\w:.])time\s*\("), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bsystem_clock\b"), "wall-clock system_clock"),
    (re.compile(r"\bgetpid\s*\("), "getpid()"),
]

NONDET_SCOPES = ["src", "tools"]
CPP_SUFFIXES = {".cc", ".h", ".cpp", ".hpp", ".cxx"}


def check_nondeterminism(root):
    findings = []
    for scope in NONDET_SCOPES:
        base = root / scope
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CPP_SUFFIXES or not path.is_file():
                continue
            # The lint's own known-bad fixtures are intentionally dirty.
            if "lint_fixtures" in path.relative_to(root).parts:
                continue
            raw = path.read_text(encoding="utf-8")
            stripped = strip_comments_and_strings(raw)
            raw_lines = raw.splitlines()
            for lineno, (code, rawline) in enumerate(
                zip(stripped.splitlines(), raw_lines), 1
            ):
                for token_re, label in BANNED_TOKENS:
                    if token_re.search(code) and not allowed(
                        rawline, "nondeterminism"
                    ):
                        findings.append(
                            Finding(
                                "nondeterminism",
                                path,
                                lineno,
                                f"banned nondeterminism source {label}; use "
                                "the seeded faircap::Rng (util/random.h) or "
                                "steady_clock timing",
                            )
                        )
    return findings


ALL_RULES = {
    "fp-contract": check_fp_contract,
    "fp-accumulate": check_fp_accumulate,
    "unordered-iter": check_unordered_iteration,
    "nondeterminism": check_nondeterminism,
}


def run_lint(root, rules=None):
    findings = []
    for name, check in ALL_RULES.items():
        if rules and name not in rules:
            continue
        findings.extend(check(root))
    return findings


# --------------------------------------------------------------------------
# Self-test: each known-bad fixture tree must trigger exactly its rule;
# the known-good tree must be clean.


def self_test():
    fixtures = REPO_ROOT / "tools" / "lint_fixtures"
    failures = []
    expect = {
        "bad_fp_contract": "fp-contract",
        "bad_fp_accumulate": "fp-accumulate",
        "bad_unordered_iter": "unordered-iter",
        "bad_nondeterminism": "nondeterminism",
    }
    for tree, rule in sorted(expect.items()):
        root = fixtures / tree
        if not root.is_dir():
            failures.append(f"{tree}: fixture tree missing")
            continue
        findings = run_lint(root)
        hit_rules = {f.rule for f in findings}
        if rule not in hit_rules:
            failures.append(
                f"{tree}: expected a {rule} finding, got "
                f"{[str(f) for f in findings] or 'none'}"
            )
        extra = hit_rules - {rule}
        if extra:
            failures.append(
                f"{tree}: unexpected extra findings from rules {sorted(extra)}"
            )
    good = fixtures / "good"
    findings = run_lint(good)
    if findings:
        failures.append(
            "good: expected a clean pass, got "
            + "; ".join(str(f) for f in findings)
        )
    # The suppression escape must work: the allow tree trips the same
    # patterns as the bad trees but carries determinism:allow markers.
    allow_tree = fixtures / "allowed"
    findings = run_lint(allow_tree)
    if findings:
        failures.append(
            "allowed: determinism:allow suppression ignored — "
            + "; ".join(str(f) for f in findings)
        )
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test OK ({len(expect)} bad trees, good tree, allow tree)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=REPO_ROOT,
        help="tree to lint (default: the repo root)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        choices=sorted(ALL_RULES),
        help="run only the given rule(s); default all",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check the lint against its fixtures and exit",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    findings = run_lint(args.root.resolve(), rules=args.rule)
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\n{len(findings)} determinism finding(s). Fix them or append "
            "'// determinism:allow(<rule>)' with a justification.",
            file=sys.stderr,
        )
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
