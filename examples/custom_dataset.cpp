// Bring-your-own-data walkthrough: write a CSV, load it with schema
// inference, assign causal roles, declare a DAG, and mine a fair ruleset.
// This is the path an adopter with their own table would follow.
//
//   $ ./custom_dataset

#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/faircap.h"
#include "dataframe/csv.h"
#include "util/random.h"

using namespace faircap;

namespace {

// Synthesize a small marketing dataset and save it as CSV, standing in for
// the user's own file.
std::string WriteSampleCsv() {
  const std::string path = "custom_dataset_sample.csv";
  std::ofstream out(path);
  out << "segment,region,channel,discount,spend\n";
  Rng rng(2024);
  for (int i = 0; i < 4000; ++i) {
    const bool premium = rng.NextBernoulli(0.3);
    const bool rural = rng.NextBernoulli(0.25);
    const bool email = rng.NextBernoulli(premium ? 0.6 : 0.4);
    const bool discount = rng.NextBernoulli(0.5);
    double spend = premium ? 90.0 : 50.0;
    if (email) spend += rural ? 4.0 : 12.0;  // channel works less in rural
    if (discount) spend += 8.0;
    spend += rng.NextGaussian(0.0, 5.0);
    out << (premium ? "premium" : "basic") << ','
        << (rural ? "rural" : "urban") << ',' << (email ? "email" : "ads")
        << ',' << (discount ? "yes" : "no") << ',' << spend << "\n";
  }
  return path;
}

}  // namespace

int main() {
  const std::string path = WriteSampleCsv();

  // 1. Load with schema inference (numeric columns auto-detected).
  auto df_result = ReadCsvInferSchema(path);
  if (!df_result.ok()) {
    std::cerr << df_result.status().ToString() << "\n";
    return 1;
  }
  DataFrame df = std::move(df_result).ValueOrDie();

  // 2. Assign causal roles: who we are (immutable), what we can act on
  //    (mutable), and what we want to move (outcome).
  for (const auto& [name, role] :
       std::vector<std::pair<std::string, AttrRole>>{
           {"segment", AttrRole::kImmutable},
           {"region", AttrRole::kImmutable},
           {"channel", AttrRole::kMutable},
           {"discount", AttrRole::kMutable},
           {"spend", AttrRole::kOutcome}}) {
    const Status st = df.SetRole(name, role);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }

  // 3. Declare the causal DAG (or run PC — see dag_robustness example).
  auto dag_result = CausalDag::Create(
      {"segment", "region", "channel", "discount", "spend"},
      {{"segment", "channel"},
       {"segment", "spend"},
       {"region", "spend"},
       {"channel", "spend"},
       {"discount", "spend"}});
  const CausalDag dag = std::move(dag_result).ValueOrDie();

  // 4. Protected group: rural customers; require comparable gains.
  const size_t region = *df.schema().IndexOf("region");
  const Pattern protected_pattern(
      {Predicate(region, CompareOp::kEq, Value("rural"))});

  FairCapOptions options;
  options.apriori.min_support_fraction = 0.2;
  options.fairness = FairnessConstraint::GroupSP(5.0);
  options.coverage = CoverageConstraint::Group(0.6, 0.6);
  options.num_threads = 1;

  auto solver = FairCap::Create(&df, &dag, protected_pattern, options);
  if (!solver.ok()) {
    std::cerr << solver.status().ToString() << "\n";
    return 1;
  }
  auto result = solver->Run();
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Loaded " << df.num_rows() << " rows from " << path << "\n";
  std::cout << "Selected " << result->rules.size()
            << " rules (coverage "
            << 100.0 * result->stats.coverage_fraction << "%, gap $"
            << result->stats.unfairness << "):\n";
  for (const auto& rule : result->rules) {
    std::cout << "  - " << rule.ToString(df.schema()) << "\n";
  }
  std::remove(path.c_str());
  return 0;
}
