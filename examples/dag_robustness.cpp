// DAG-robustness walkthrough (Section 7.2.1 / Table 6): run FairCap with
// the ground-truth DAG, three simplified layered DAGs, and a DAG
// discovered from data by the PC algorithm, and compare the resulting
// rulesets.
//
//   $ ./dag_robustness

#include <iostream>

#include "causal/pc.h"
#include "core/faircap.h"
#include "core/metrics.h"
#include "data/scm.h"
#include "data/stackoverflow.h"

using namespace faircap;

int main() {
  StackOverflowConfig config;
  config.num_rows = 6000;
  auto data_result = MakeStackOverflow(config);
  if (!data_result.ok()) {
    std::cerr << data_result.status().ToString() << "\n";
    return 1;
  }
  const StackOverflowData data = std::move(data_result).ValueOrDie();

  FairCapOptions options;
  options.apriori.min_support_fraction = 0.2;
  options.apriori.max_pattern_length = 1;
  options.lattice.max_predicates = 1;
  options.cate.min_group_size = 30;
  options.fairness = FairnessConstraint::GroupSP(10000.0);
  options.coverage = CoverageConstraint::Group(0.5, 0.5);
  options.num_threads = 1;

  std::vector<std::pair<std::string, CausalDag>> dags;
  dags.emplace_back("Original causal DAG", data.dag);
  for (const auto& [name, variant] :
       std::vector<std::pair<std::string, DagVariant>>{
           {"1-layer independent DAG", DagVariant::kOneLayerIndependent},
           {"2-layer mutable DAG", DagVariant::kTwoLayerMutable},
           {"2-layer DAG", DagVariant::kTwoLayer}}) {
    auto dag = MakeLayeredDag(data.df.schema(), variant);
    if (!dag.ok()) {
      std::cerr << dag.status().ToString() << "\n";
      return 1;
    }
    dags.emplace_back(name, std::move(dag).ValueOrDie());
  }
  PcOptions pc_options;
  pc_options.max_rows = 2000;
  pc_options.max_condition_size = 1;
  auto pc_dag = RunPc(data.df, pc_options);
  if (!pc_dag.ok()) {
    std::cerr << pc_dag.status().ToString() << "\n";
    return 1;
  }
  std::cout << "PC discovered " << pc_dag->num_edges() << " edges over "
            << pc_dag->num_nodes() << " variables\n\n";
  dags.emplace_back("PC DAG", std::move(pc_dag).ValueOrDie());

  std::vector<SolutionRow> rows;
  for (const auto& [name, dag] : dags) {
    auto solver =
        FairCap::Create(&data.df, &dag, data.protected_pattern, options);
    if (!solver.ok()) {
      std::cerr << name << ": " << solver.status().ToString() << "\n";
      continue;
    }
    auto result = solver->Run();
    if (!result.ok()) {
      std::cerr << name << ": " << result.status().ToString() << "\n";
      continue;
    }
    rows.push_back({name, result->stats, result->timings.total()});
  }
  PrintMetricsTable(std::cout, "DAG robustness (cf. Table 6, SO)", rows,
                    /*with_runtime=*/true);
  std::cout << "Expected shape: utilities stay in the same ballpark across "
               "DAG choices\n(the paper reports robustness on SO).\n";
  return 0;
}
