// Case study on the synthetic Stack Overflow dataset (Section 6 of the
// paper): compare rulesets chosen under different fairness / coverage
// constraints and print example rules in natural language.
//
//   $ ./salary_study [--rows=N]

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/faircap.h"
#include "core/metrics.h"
#include "data/stackoverflow.h"

using namespace faircap;

namespace {

size_t ParseRows(int argc, char** argv, size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      return static_cast<size_t>(std::atoll(argv[i] + 7));
    }
  }
  return fallback;
}

FairCapOptions BaseOptions() {
  FairCapOptions options;
  options.apriori.min_support_fraction = 0.1;
  options.apriori.max_pattern_length = 2;
  options.lattice.max_predicates = 2;
  options.cate.min_group_size = 30;
  options.num_threads = 1;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  StackOverflowConfig config;
  config.num_rows = ParseRows(argc, argv, 8000);
  auto data_result = MakeStackOverflow(config);
  if (!data_result.ok()) {
    std::cerr << data_result.status().ToString() << "\n";
    return 1;
  }
  const StackOverflowData data = std::move(data_result).ValueOrDie();
  std::cout << "Synthetic Stack Overflow survey: " << data.df.num_rows()
            << " rows, protected group = low-GDP countries ("
            << data.protected_pattern.Evaluate(data.df).Count()
            << " respondents)\n\n";

  struct Variant {
    const char* name;
    FairnessConstraint fairness;
    CoverageConstraint coverage;
  };
  // The paper's default thresholds: coverage 0.5, SP epsilon $10k.
  const Variant variants[] = {
      {"No constraints", FairnessConstraint::None(),
       CoverageConstraint::None()},
      {"Group SP fairness ($10k)", FairnessConstraint::GroupSP(10000.0),
       CoverageConstraint::None()},
      {"Individual SP fairness ($10k)",
       FairnessConstraint::IndividualSP(10000.0), CoverageConstraint::None()},
      {"Group coverage (50%) + group SP", FairnessConstraint::GroupSP(10000.0),
       CoverageConstraint::Group(0.5, 0.5)},
  };

  std::vector<SolutionRow> rows;
  for (const Variant& variant : variants) {
    FairCapOptions options = BaseOptions();
    options.fairness = variant.fairness;
    options.coverage = variant.coverage;
    auto solver =
        FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
    if (!solver.ok()) {
      std::cerr << solver.status().ToString() << "\n";
      return 1;
    }
    auto result = solver->Run();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    rows.push_back({variant.name, result->stats, result->timings.total()});

    std::cout << "--- " << variant.name << " ---\n";
    size_t shown = 0;
    for (const auto& rule : result->rules) {
      if (shown++ >= 3) break;  // 3 example rules, as in the case study
      std::cout << "  " << rule.ToString(data.df.schema()) << "\n";
    }
    std::cout << "\n";
  }

  PrintMetricsTable(std::cout, "Case study summary (cf. Table 4, SO)", rows,
                    /*with_runtime=*/true);
  return 0;
}
