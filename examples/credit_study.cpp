// Case study on the synthetic German Credit dataset with bounded-group-
// loss (BGL) fairness (Section 6 of the paper, bottom of Table 4). The
// outcome is binary (good credit risk), so utilities are probability
// gains in [0, 1].
//
//   $ ./credit_study

#include <iostream>

#include "core/faircap.h"
#include "core/metrics.h"
#include "data/german.h"

using namespace faircap;

int main() {
  auto data_result = MakeGerman();
  if (!data_result.ok()) {
    std::cerr << data_result.status().ToString() << "\n";
    return 1;
  }
  const GermanData data = std::move(data_result).ValueOrDie();
  std::cout << "Synthetic German Credit: " << data.df.num_rows()
            << " rows, protected group = single females ("
            << data.protected_pattern.Evaluate(data.df).Count()
            << " applicants)\n\n";

  FairCapOptions base;
  base.apriori.min_support_fraction = 0.1;
  base.apriori.max_pattern_length = 2;
  base.lattice.max_predicates = 2;
  base.cate.min_group_size = 10;
  base.num_threads = 1;

  struct Variant {
    const char* name;
    FairnessConstraint fairness;
    CoverageConstraint coverage;
  };
  // German defaults from the paper: coverage 30%, BGL tau 0.1.
  const Variant variants[] = {
      {"No constraints", FairnessConstraint::None(),
       CoverageConstraint::None()},
      {"Group BGL (tau=0.1)", FairnessConstraint::GroupBGL(0.1),
       CoverageConstraint::None()},
      {"Individual BGL (tau=0.1)", FairnessConstraint::IndividualBGL(0.1),
       CoverageConstraint::None()},
      {"Rule coverage (30%) + group BGL", FairnessConstraint::GroupBGL(0.1),
       CoverageConstraint::Rule(0.3, 0.3)},
  };

  std::vector<SolutionRow> rows;
  for (const Variant& variant : variants) {
    FairCapOptions options = base;
    options.fairness = variant.fairness;
    options.coverage = variant.coverage;
    auto solver =
        FairCap::Create(&data.df, &data.dag, data.protected_pattern, options);
    if (!solver.ok()) {
      std::cerr << solver.status().ToString() << "\n";
      return 1;
    }
    auto result = solver->Run();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    rows.push_back({variant.name, result->stats, result->timings.total()});

    std::cout << "--- " << variant.name << " ---\n";
    size_t shown = 0;
    for (const auto& rule : result->rules) {
      if (shown++ >= 3) break;
      std::cout << "  " << rule.ToString(data.df.schema()) << "\n";
    }
    std::cout << "\n";
  }

  PrintMetricsTable(std::cout, "Case study summary (cf. Table 4, German)",
                    rows, /*with_runtime=*/true);
  std::cout << "Utilities are probability gains on the binary credit-risk "
               "outcome; compare the\nBGL rows' protected utility against "
               "tau=0.1 and the unconstrained row's gap.\n";
  return 0;
}
