// Quickstart: the smallest end-to-end FairCap run.
//
// Builds a tiny in-memory dataset (education/role -> income with a gender
// pay-gap planted), declares the causal DAG, marks the protected group,
// and asks FairCap for a fair prescription ruleset.
//
//   $ ./quickstart

#include <iostream>

#include "core/faircap.h"
#include "util/random.h"

using namespace faircap;

int main() {
  // 1. Schema: immutable demographics, mutable (actionable) attributes,
  //    and a numeric outcome.
  auto schema_result = Schema::Create({
      {"Gender", AttrType::kCategorical, AttrRole::kImmutable},
      {"AgeGroup", AttrType::kCategorical, AttrRole::kImmutable},
      {"Education", AttrType::kCategorical, AttrRole::kMutable},
      {"Role", AttrType::kCategorical, AttrRole::kMutable},
      {"Income", AttrType::kNumeric, AttrRole::kOutcome},
  });
  if (!schema_result.ok()) {
    std::cerr << schema_result.status().ToString() << "\n";
    return 1;
  }
  DataFrame df = DataFrame::Create(std::move(schema_result).ValueOrDie());

  // 2. Synthesize observational data. A degree is worth +20k (but only
  //    +8k for women — the planted disparity), a senior role +15k.
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const bool female = rng.NextBernoulli(0.4);
    const bool young = rng.NextBernoulli(0.5);
    const bool degree = rng.NextBernoulli(young ? 0.5 : 0.35);
    const bool senior = rng.NextBernoulli(degree ? 0.45 : 0.2);
    double income = 40000.0;
    if (degree) income += female ? 8000.0 : 20000.0;
    if (senior) income += 15000.0;
    if (!young) income += 5000.0;
    income += rng.NextGaussian(0.0, 4000.0);
    const Status st = df.AppendRow({Value(female ? "female" : "male"),
                                    Value(young ? "18-35" : "36+"),
                                    Value(degree ? "degree" : "none"),
                                    Value(senior ? "senior" : "junior"),
                                    Value(income)});
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }

  // 3. Causal DAG (domain knowledge): age affects education; education
  //    affects role; education, role and age affect income.
  auto dag_result = CausalDag::Create(
      {"Gender", "AgeGroup", "Education", "Role", "Income"},
      {{"AgeGroup", "Education"},
       {"Education", "Role"},
       {"Education", "Income"},
       {"Role", "Income"},
       {"AgeGroup", "Income"},
       {"Gender", "Income"}});
  if (!dag_result.ok()) {
    std::cerr << dag_result.status().ToString() << "\n";
    return 1;
  }
  const CausalDag dag = std::move(dag_result).ValueOrDie();

  // 4. Protected group: women.
  const size_t gender = *df.schema().IndexOf("Gender");
  const Pattern protected_pattern(
      {Predicate(gender, CompareOp::kEq, Value("female"))});

  // 5. Solve twice: unconstrained vs. group statistical parity.
  for (const bool fair : {false, true}) {
    FairCapOptions options;
    options.apriori.min_support_fraction = 0.2;
    options.num_threads = 1;
    if (fair) options.fairness = FairnessConstraint::GroupSP(4000.0);

    auto solver = FairCap::Create(&df, &dag, protected_pattern, options);
    if (!solver.ok()) {
      std::cerr << solver.status().ToString() << "\n";
      return 1;
    }
    auto result = solver->Run();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }

    std::cout << (fair ? "\n=== With group-SP fairness (epsilon=$4k) ==="
                       : "=== No fairness constraint ===")
              << "\n";
    std::cout << "rules: " << result->rules.size()
              << "  coverage: " << 100.0 * result->stats.coverage_fraction
              << "%  expected utility: $" << result->stats.exp_utility
              << "\n  protected: $" << result->stats.exp_utility_protected
              << "  non-protected: $"
              << result->stats.exp_utility_nonprotected
              << "  unfairness: $" << result->stats.unfairness << "\n";
    for (const auto& rule : result->rules) {
      std::cout << "  - " << rule.ToString(df.schema()) << "\n";
    }
  }
  std::cout << "\nNote how the fairness constraint steers selection away "
               "from the degree-based rule\n(worth $20k to men but $8k to "
               "women) toward equitable prescriptions.\n";
  return 0;
}
