#include "data/stackoverflow.h"

#include <algorithm>
#include <cmath>

namespace faircap {

namespace {

// Category of an already-sampled attribute.
const std::string& Cat(const ScmRow& row, const std::string& name) {
  return row.at(name).str();
}

// Weighted pick keyed on a parent's category, with a fallback row.
struct WeightTable {
  std::vector<std::string> categories;
  std::vector<std::pair<std::string, std::vector<double>>> by_parent;
  std::vector<double> fallback;

  Value Sample(const std::string& parent_value, Rng& rng) const {
    for (const auto& [key, weights] : by_parent) {
      if (key == parent_value) {
        return Value(categories[rng.NextCategorical(weights)]);
      }
    }
    return Value(categories[rng.NextCategorical(fallback)]);
  }
};

const std::vector<std::string> kLowGdpCountries = {
    "india", "brazil", "nigeria", "pakistan", "other_low"};

bool IsLowGdp(const std::string& country) {
  return std::find(kLowGdpCountries.begin(), kLowGdpCountries.end(),
                   country) != kLowGdpCountries.end();
}

double CountryBase(const std::string& country) {
  if (country == "us") return 70000.0;
  if (country == "canada") return 55000.0;
  if (country == "uk") return 52000.0;
  if (country == "germany") return 50000.0;
  if (country == "other_high") return 45000.0;
  if (country == "india") return 10000.0;
  if (country == "brazil") return 12000.0;
  if (country == "nigeria") return 7000.0;
  if (country == "pakistan") return 7000.0;
  return 9000.0;  // other_low
}

}  // namespace

Result<Scm> MakeStackOverflowScm(const StackOverflowConfig& config) {
  Scm scm;

  // ---------------- Immutable attributes ----------------
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "Gender", AttrRole::kImmutable, {"male", "female", "nonbinary"},
      {0.65, 0.30, 0.05}));
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "Ethnicity", AttrRole::kImmutable,
      {"white", "south_asian", "east_asian", "black", "hispanic", "other"},
      {0.55, 0.15, 0.10, 0.08, 0.08, 0.04}));
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "AgeGroup", AttrRole::kImmutable, {"18-24", "25-34", "35-44", "45+"},
      {0.20, 0.40, 0.25, 0.15}));
  // Low-GDP mass: 0.09+0.04+0.03+0.025+0.03 = 0.215 (Table 3: 21.5%).
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "Country", AttrRole::kImmutable,
      {"us", "germany", "uk", "canada", "other_high", "india", "brazil",
       "nigeria", "pakistan", "other_low"},
      {0.27, 0.11, 0.09, 0.07, 0.245, 0.09, 0.04, 0.03, 0.025, 0.03}));

  {
    ScmAttribute gdp;
    gdp.spec = {"GdpGroup", AttrType::kCategorical, AttrRole::kImmutable};
    gdp.parents = {"Country"};
    gdp.sampler = [](const ScmRow& row, Rng&) {
      return Value(IsLowGdp(Cat(row, "Country")) ? "low" : "high");
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(gdp)));
  }
  {
    ScmAttribute dependents;
    dependents.spec = {"Dependents", AttrType::kCategorical,
                       AttrRole::kImmutable};
    dependents.parents = {"AgeGroup"};
    dependents.sampler = [](const ScmRow& row, Rng& rng) {
      const std::string& age = Cat(row, "AgeGroup");
      double p = 0.10;
      if (age == "25-34") p = 0.35;
      else if (age == "35-44") p = 0.55;
      else if (age == "45+") p = 0.60;
      return Value(rng.NextBernoulli(p) ? "yes" : "no");
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(dependents)));
  }
  {
    ScmAttribute years;
    years.spec = {"YearsCoding", AttrType::kCategorical, AttrRole::kImmutable};
    years.parents = {"AgeGroup"};
    years.sampler = [](const ScmRow& row, Rng& rng) {
      static const WeightTable table = {
          {"0-2", "3-5", "6-8", "9+"},
          {{"18-24", {0.55, 0.35, 0.09, 0.01}},
           {"25-34", {0.15, 0.35, 0.30, 0.20}},
           {"35-44", {0.05, 0.15, 0.30, 0.50}},
           {"45+", {0.03, 0.07, 0.20, 0.70}}},
          {0.25, 0.25, 0.25, 0.25}};
      return table.Sample(Cat(row, "AgeGroup"), rng);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(years)));
  }
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "ParentsEducation", AttrRole::kImmutable,
      {"primary", "secondary", "tertiary"}, {0.20, 0.45, 0.35}));
  {
    ScmAttribute student;
    student.spec = {"Student", AttrType::kCategorical, AttrRole::kImmutable};
    student.parents = {"AgeGroup"};
    student.sampler = [](const ScmRow& row, Rng& rng) {
      const std::string& age = Cat(row, "AgeGroup");
      double p = 0.02;
      if (age == "18-24") p = 0.50;
      else if (age == "25-34") p = 0.12;
      else if (age == "35-44") p = 0.04;
      return Value(rng.NextBernoulli(p) ? "yes" : "no");
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(student)));
  }
  {
    // Reporting rates differ by country; no causal path to salary. This is
    // the planted spurious correlation the IDS/FRL baselines pick up
    // ("US and straight => high salary", Section 7.2).
    ScmAttribute orientation;
    orientation.spec = {"SexualOrientation", AttrType::kCategorical,
                        AttrRole::kImmutable};
    orientation.parents = {"Country"};
    orientation.sampler = [](const ScmRow& row, Rng& rng) {
      const bool low = IsLowGdp(Cat(row, "Country"));
      const double p_straight = low ? 0.97 : 0.88;
      return Value(rng.NextBernoulli(p_straight) ? "straight" : "other");
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(orientation)));
  }

  // ---------------- Mutable attributes ----------------
  {
    ScmAttribute education;
    education.spec = {"Education", AttrType::kCategorical, AttrRole::kMutable};
    education.parents = {"AgeGroup", "ParentsEducation", "Country", "Gender",
                         "Student"};
    education.sampler = [](const ScmRow& row, Rng& rng) {
      // Base odds shifted by parents' education, age, and country wealth.
      double none = 0.30, bachelors = 0.45, masters = 0.20, phd = 0.05;
      const std::string& parents = Cat(row, "ParentsEducation");
      if (parents == "tertiary") {
        none -= 0.12; masters += 0.08; phd += 0.04;
      } else if (parents == "primary") {
        none += 0.12; masters -= 0.08; phd -= 0.04;
      }
      if (Cat(row, "AgeGroup") == "18-24") {
        none += 0.25; masters -= 0.12; phd -= 0.04;
      }
      if (IsLowGdp(Cat(row, "Country"))) {
        none += 0.08; phd -= 0.02;
      }
      if (Cat(row, "Student") == "yes") none += 0.15;
      auto clamp = [](double v) { return std::max(v, 0.01); };
      return Value(std::vector<std::string>{
          "none", "bachelors", "masters",
          "phd"}[rng.NextCategorical({clamp(none), clamp(bachelors),
                                      clamp(masters), clamp(phd)})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(education)));
  }
  {
    ScmAttribute role;
    role.spec = {"Role", AttrType::kCategorical, AttrRole::kMutable};
    role.parents = {"Education", "AgeGroup", "Gender", "Ethnicity"};
    role.sampler = [](const ScmRow& row, Rng& rng) {
      double backend = 0.22, frontend = 0.15, fullstack = 0.22,
             data_scientist = 0.08, qa = 0.08, devops = 0.10, manager = 0.07,
             intern = 0.08;
      const std::string& education = Cat(row, "Education");
      if (education == "phd") {
        data_scientist += 0.20; intern -= 0.04; qa -= 0.04;
      } else if (education == "none") {
        data_scientist -= 0.05; frontend += 0.05;
      }
      if (Cat(row, "AgeGroup") == "18-24") {
        intern += 0.15; manager -= 0.05;
      } else if (Cat(row, "AgeGroup") == "45+") {
        manager += 0.12; intern -= 0.06;
      }
      if (Cat(row, "Gender") == "female") {
        qa += 0.04; frontend += 0.04; backend -= 0.05;
      }
      auto clamp = [](double v) { return std::max(v, 0.01); };
      static const std::vector<std::string> kRoles = {
          "backend",  "frontend", "fullstack", "data_scientist",
          "qa",       "devops",   "manager",   "intern"};
      return Value(kRoles[rng.NextCategorical(
          {clamp(backend), clamp(frontend), clamp(fullstack),
           clamp(data_scientist), clamp(qa), clamp(devops), clamp(manager),
           clamp(intern)})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(role)));
  }
  {
    ScmAttribute major;
    major.spec = {"UndergradMajor", AttrType::kCategorical,
                  AttrRole::kMutable};
    major.parents = {"Education", "Student"};
    major.sampler = [](const ScmRow& row, Rng& rng) {
      if (Cat(row, "Education") == "none" && Cat(row, "Student") == "no") {
        // Mostly no degree -> no major.
        if (rng.NextBernoulli(0.7)) return Value("none");
      }
      static const std::vector<std::string> kMajors = {
          "cs", "other_eng", "business", "arts", "none"};
      return Value(
          kMajors[rng.NextCategorical({0.42, 0.25, 0.12, 0.09, 0.12})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(major)));
  }
  {
    ScmAttribute hours;
    hours.spec = {"HoursComputer", AttrType::kCategorical, AttrRole::kMutable};
    hours.parents = {"Role"};
    hours.sampler = [](const ScmRow& row, Rng& rng) {
      static const WeightTable table = {
          {"<5", "5-8", "9-12", ">12"},
          {{"manager", {0.25, 0.50, 0.20, 0.05}},
           {"intern", {0.30, 0.45, 0.20, 0.05}},
           {"backend", {0.05, 0.40, 0.40, 0.15}},
           {"devops", {0.05, 0.40, 0.40, 0.15}}},
          {0.10, 0.45, 0.33, 0.12}};
      return table.Sample(Cat(row, "Role"), rng);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(hours)));
  }
  {
    ScmAttribute remote;
    remote.spec = {"RemoteWork", AttrType::kCategorical, AttrRole::kMutable};
    remote.parents = {"Country"};
    remote.sampler = [](const ScmRow& row, Rng& rng) {
      const bool low = IsLowGdp(Cat(row, "Country"));
      static const std::vector<std::string> kModes = {"remote", "hybrid",
                                                      "office"};
      if (low) return Value(kModes[rng.NextCategorical({0.20, 0.25, 0.55})]);
      return Value(kModes[rng.NextCategorical({0.35, 0.40, 0.25})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(remote)));
  }
  {
    ScmAttribute langs;
    langs.spec = {"LanguagesCount", AttrType::kCategorical,
                  AttrRole::kMutable};
    langs.parents = {"YearsCoding"};
    langs.sampler = [](const ScmRow& row, Rng& rng) {
      static const WeightTable table = {
          {"1-2", "3-5", "6+"},
          {{"0-2", {0.60, 0.35, 0.05}},
           {"3-5", {0.35, 0.50, 0.15}},
           {"6-8", {0.20, 0.55, 0.25}},
           {"9+", {0.12, 0.50, 0.38}}},
          {0.3, 0.5, 0.2}};
      return table.Sample(Cat(row, "YearsCoding"), rng);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(langs)));
  }
  {
    ScmAttribute open_source;
    open_source.spec = {"OpenSource", AttrType::kCategorical,
                        AttrRole::kMutable};
    open_source.parents = {"Student"};
    open_source.sampler = [](const ScmRow& row, Rng& rng) {
      const double p = Cat(row, "Student") == "yes" ? 0.45 : 0.30;
      return Value(rng.NextBernoulli(p) ? "yes" : "no");
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(open_source)));
  }
  {
    ScmAttribute company;
    company.spec = {"CompanySize", AttrType::kCategorical, AttrRole::kMutable};
    company.parents = {"Country"};
    company.sampler = [](const ScmRow& row, Rng& rng) {
      const bool low = IsLowGdp(Cat(row, "Country"));
      static const std::vector<std::string> kSizes = {"small", "medium",
                                                      "large"};
      if (low) return Value(kSizes[rng.NextCategorical({0.45, 0.35, 0.20})]);
      return Value(kSizes[rng.NextCategorical({0.30, 0.35, 0.35})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(company)));
  }
  {
    ScmAttribute certs;
    certs.spec = {"Certifications", AttrType::kCategorical,
                  AttrRole::kMutable};
    certs.parents = {"Education"};
    certs.sampler = [](const ScmRow& row, Rng& rng) {
      const double p = Cat(row, "Education") == "none" ? 0.35 : 0.25;
      return Value(rng.NextBernoulli(p) ? "yes" : "no");
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(certs)));
  }
  // Deliberately disconnected from Salary: exercises the optimization that
  // prunes mutable attributes with no causal path to the outcome.
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "DatabasesUsed", AttrRole::kMutable, {"sql", "nosql", "both", "none"},
      {0.4, 0.15, 0.35, 0.1}));

  // ---------------- Outcome ----------------
  {
    ScmAttribute salary;
    salary.spec = {"Salary", AttrType::kNumeric, AttrRole::kOutcome};
    salary.parents = {"Country",     "AgeGroup",       "YearsCoding",
                      "Dependents",  "Education",      "Role",
                      "UndergradMajor", "HoursComputer", "RemoteWork",
                      "LanguagesCount", "OpenSource",   "CompanySize",
                      "Certifications"};
    const double attenuation = config.protected_attenuation;
    const double noise = config.noise_stddev;
    salary.sampler = [attenuation, noise](const ScmRow& row, Rng& rng) {
      const std::string& country = Cat(row, "Country");
      const bool low_gdp = IsLowGdp(country);
      const double mult = low_gdp ? attenuation : 1.0;

      double effects = 0.0;
      const std::string& age = Cat(row, "AgeGroup");
      if (age == "25-34") effects += 8000.0;
      else if (age == "35-44") effects += 14000.0;
      else if (age == "45+") effects += 16000.0;

      const std::string& years = Cat(row, "YearsCoding");
      if (years == "3-5") effects += 4000.0;
      else if (years == "6-8") effects += 9000.0;
      else if (years == "9+") effects += 14000.0;

      const std::string& education = Cat(row, "Education");
      if (education == "bachelors") effects += 15000.0;
      else if (education == "masters") effects += 20000.0;
      else if (education == "phd") effects += 25000.0;

      const std::string& major = Cat(row, "UndergradMajor");
      if (major == "cs") effects += 22000.0;
      else if (major == "other_eng") effects += 8000.0;
      else if (major == "business") effects += 4000.0;

      const std::string& role = Cat(row, "Role");
      if (role == "backend") effects += 25000.0;
      else if (role == "fullstack") effects += 22000.0;
      else if (role == "data_scientist") effects += 30000.0;
      else if (role == "devops") effects += 24000.0;
      else if (role == "manager") effects += 28000.0;
      else if (role == "qa") effects += 8000.0;
      else if (role == "frontend") {
        effects += 10000.0;
        // The paper's headline rule: front-end work pays off strongly for
        // 25-34-year-olds with dependents (CATE ~ $44K overall).
        if (age == "25-34" && Cat(row, "Dependents") == "yes") {
          effects += 38000.0;
        }
      }

      const std::string& hours = Cat(row, "HoursComputer");
      if (hours == "5-8") effects += 8000.0;
      else if (hours == "9-12") effects += 18000.0;
      else if (hours == ">12") effects += 12000.0;

      const std::string& remote = Cat(row, "RemoteWork");
      if (remote == "remote") effects += 6000.0;
      else if (remote == "hybrid") effects += 3000.0;

      const std::string& langs = Cat(row, "LanguagesCount");
      if (langs == "3-5") effects += 3000.0;
      else if (langs == "6+") effects += 5000.0;

      const std::string& company = Cat(row, "CompanySize");
      if (company == "medium") effects += 4000.0;
      else if (company == "large") effects += 8000.0;

      if (Cat(row, "OpenSource") == "yes") effects += 2000.0;
      if (Cat(row, "Certifications") == "yes") effects += 1500.0;

      const double salary_value = 15000.0 + CountryBase(country) +
                                  mult * effects +
                                  rng.NextGaussian(0.0, noise);
      return Value(std::max(1000.0, salary_value));
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(salary)));
  }
  return scm;
}

Result<StackOverflowData> MakeStackOverflow(
    const StackOverflowConfig& config) {
  FAIRCAP_ASSIGN_OR_RETURN(const Scm scm, MakeStackOverflowScm(config));
  FAIRCAP_ASSIGN_OR_RETURN(DataFrame df,
                           scm.Generate(config.num_rows, config.seed));
  FAIRCAP_ASSIGN_OR_RETURN(CausalDag dag, scm.Dag());
  FAIRCAP_ASSIGN_OR_RETURN(const size_t gdp_attr,
                           df.schema().IndexOf("GdpGroup"));
  Pattern protected_pattern(
      {Predicate(gdp_attr, CompareOp::kEq, Value("low"))});
  StackOverflowData data{std::move(df), std::move(dag),
                         std::move(protected_pattern)};
  return data;
}

}  // namespace faircap
