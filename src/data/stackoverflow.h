// Synthetic Stack Overflow developer-survey dataset (substitute for the
// 2021 survey used in the paper; see DESIGN.md §2). 38K rows, 20
// attributes + salary outcome, protected group = respondents from low-GDP
// countries (≈21.5% of rows). Effects are planted with the magnitudes the
// paper reports (CS major ≈ $22K, front-end for 25-34-with-dependents
// ≈ $44K overall) and attenuated for the protected group so the fairness
// phenomena of Tables 4-6 reproduce.

#ifndef FAIRCAP_DATA_STACKOVERFLOW_H_
#define FAIRCAP_DATA_STACKOVERFLOW_H_

#include "data/scm.h"
#include "mining/pattern.h"

namespace faircap {

/// Knobs for the generator.
struct StackOverflowConfig {
  size_t num_rows = 38000;
  uint64_t seed = 42;
  /// Multiplier applied to treatment effects for low-GDP respondents
  /// (1.0 = no disparity).
  double protected_attenuation = 0.4;
  /// Salary noise standard deviation (dollars).
  double noise_stddev = 9000.0;
};

/// A generated dataset with its ground truth.
struct StackOverflowData {
  DataFrame df;
  CausalDag dag;                ///< the SCM's true DAG ("original causal DAG")
  Pattern protected_pattern;    ///< GdpGroup = low
};

/// Builds the SCM (useful for inspecting the ground truth in tests).
Result<Scm> MakeStackOverflowScm(const StackOverflowConfig& config = {});

/// Generates the dataset, DAG, and protected pattern.
Result<StackOverflowData> MakeStackOverflow(
    const StackOverflowConfig& config = {});

}  // namespace faircap

#endif  // FAIRCAP_DATA_STACKOVERFLOW_H_
