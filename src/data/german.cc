#include "data/german.h"

#include <algorithm>
#include <cmath>

namespace faircap {

namespace {

const std::string& Cat(const ScmRow& row, const std::string& name) {
  return row.at(name).str();
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Result<Scm> MakeGermanScm(const GermanConfig& config) {
  Scm scm;

  // ---------------- Immutable attributes (5) ----------------
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "Gender", AttrRole::kImmutable, {"male", "female"}, {0.69, 0.31}));
  {
    ScmAttribute status;
    status.spec = {"PersonalStatus", AttrType::kCategorical,
                   AttrRole::kImmutable};
    status.parents = {"Gender"};
    status.sampler = [](const ScmRow& row, Rng& rng) {
      static const std::vector<std::string> kStatuses = {"single", "married",
                                                         "divorced"};
      // P(female) * P(single | female) = 0.31 * 0.30 = 9.3% protected.
      if (Cat(row, "Gender") == "female") {
        return Value(kStatuses[rng.NextCategorical({0.30, 0.55, 0.15})]);
      }
      return Value(kStatuses[rng.NextCategorical({0.45, 0.45, 0.10})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(status)));
  }
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "AgeGroup", AttrRole::kImmutable, {"19-25", "26-40", "41-60", "60+"},
      {0.20, 0.45, 0.27, 0.08}));
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "ForeignWorker", AttrRole::kImmutable, {"yes", "no"}, {0.10, 0.90}));
  {
    ScmAttribute dependents;
    dependents.spec = {"Dependents", AttrType::kCategorical,
                       AttrRole::kImmutable};
    dependents.parents = {"AgeGroup", "PersonalStatus"};
    dependents.sampler = [](const ScmRow& row, Rng& rng) {
      double p = 0.2;
      if (Cat(row, "PersonalStatus") == "married") p = 0.55;
      if (Cat(row, "AgeGroup") == "19-25") p *= 0.5;
      return Value(rng.NextBernoulli(p) ? "1+" : "0");
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(dependents)));
  }

  // ---------------- Mutable attributes (15) ----------------
  {
    ScmAttribute job;
    job.spec = {"Job", AttrType::kCategorical, AttrRole::kMutable};
    job.parents = {"AgeGroup", "Gender"};
    job.sampler = [](const ScmRow& row, Rng& rng) {
      static const std::vector<std::string> kJobs = {"unskilled", "skilled",
                                                     "management"};
      double unskilled = 0.25, skilled = 0.60, management = 0.15;
      if (Cat(row, "AgeGroup") == "19-25") {
        unskilled += 0.15;
        management -= 0.08;
      }
      if (Cat(row, "Gender") == "female") management -= 0.04;
      auto clamp = [](double v) { return std::max(v, 0.02); };
      return Value(kJobs[rng.NextCategorical(
          {clamp(unskilled), clamp(skilled), clamp(management)})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(job)));
  }
  {
    ScmAttribute employment;
    employment.spec = {"EmploymentDuration", AttrType::kCategorical,
                       AttrRole::kMutable};
    employment.parents = {"AgeGroup"};
    employment.sampler = [](const ScmRow& row, Rng& rng) {
      static const std::vector<std::string> kDurations = {"<1y", "1-4y",
                                                          ">4y"};
      if (Cat(row, "AgeGroup") == "19-25") {
        return Value(kDurations[rng.NextCategorical({0.5, 0.4, 0.1})]);
      }
      return Value(kDurations[rng.NextCategorical({0.15, 0.40, 0.45})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(employment)));
  }
  {
    ScmAttribute checking;
    checking.spec = {"CheckingBalance", AttrType::kCategorical,
                     AttrRole::kMutable};
    checking.parents = {"Job", "EmploymentDuration"};
    checking.sampler = [](const ScmRow& row, Rng& rng) {
      static const std::vector<std::string> kLevels = {"none", "<200DM",
                                                       ">=200DM"};
      double none = 0.40, low = 0.35, high = 0.25;
      if (Cat(row, "Job") == "management") {
        none -= 0.15;
        high += 0.15;
      }
      if (Cat(row, "EmploymentDuration") == ">4y") {
        none -= 0.08;
        high += 0.08;
      }
      auto clamp = [](double v) { return std::max(v, 0.02); };
      return Value(
          kLevels[rng.NextCategorical({clamp(none), clamp(low), clamp(high)})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(checking)));
  }
  {
    ScmAttribute savings;
    savings.spec = {"SavingsBalance", AttrType::kCategorical,
                    AttrRole::kMutable};
    savings.parents = {"Job"};
    savings.sampler = [](const ScmRow& row, Rng& rng) {
      static const std::vector<std::string> kLevels = {"low", "medium",
                                                       "high"};
      if (Cat(row, "Job") == "management") {
        return Value(kLevels[rng.NextCategorical({0.35, 0.35, 0.30})]);
      }
      return Value(kLevels[rng.NextCategorical({0.60, 0.27, 0.13})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(savings)));
  }
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "CreditHistory", AttrRole::kMutable, {"bad", "ok", "good"},
      {0.20, 0.50, 0.30}));
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "Purpose", AttrRole::kMutable,
      {"new_car", "used_car", "furniture", "education", "business", "other"},
      {0.22, 0.12, 0.28, 0.08, 0.18, 0.12}));
  {
    ScmAttribute housing;
    housing.spec = {"Housing", AttrType::kCategorical, AttrRole::kMutable};
    housing.parents = {"AgeGroup", "Job"};
    housing.sampler = [](const ScmRow& row, Rng& rng) {
      static const std::vector<std::string> kKinds = {"rent", "own", "free"};
      double rent = 0.45, own = 0.40, free = 0.15;
      if (Cat(row, "AgeGroup") == "19-25") {
        rent += 0.20;
        own -= 0.20;
      }
      if (Cat(row, "Job") == "management") {
        own += 0.15;
        rent -= 0.10;
      }
      auto clamp = [](double v) { return std::max(v, 0.02); };
      return Value(
          kKinds[rng.NextCategorical({clamp(rent), clamp(own), clamp(free)})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(housing)));
  }
  {
    ScmAttribute property;
    property.spec = {"Property", AttrType::kCategorical, AttrRole::kMutable};
    property.parents = {"Housing"};
    property.sampler = [](const ScmRow& row, Rng& rng) {
      static const std::vector<std::string> kKinds = {"none", "car",
                                                      "real_estate"};
      if (Cat(row, "Housing") == "own") {
        return Value(kKinds[rng.NextCategorical({0.15, 0.35, 0.50})]);
      }
      return Value(kKinds[rng.NextCategorical({0.45, 0.40, 0.15})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(property)));
  }
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "InstallmentRate", AttrRole::kMutable, {"low", "medium", "high"},
      {0.30, 0.40, 0.30}));
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "OtherDebtors", AttrRole::kMutable, {"none", "co-applicant",
                                           "guarantor"},
      {0.85, 0.08, 0.07}));
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "ExistingCredits", AttrRole::kMutable, {"1", "2", "3+"},
      {0.60, 0.30, 0.10}));
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "Telephone", AttrRole::kMutable, {"yes", "no"}, {0.40, 0.60}));
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "ResidenceDuration", AttrRole::kMutable, {"<1y", "1-4y", ">4y"},
      {0.15, 0.45, 0.40}));
  {
    ScmAttribute amount;
    amount.spec = {"CreditAmountBand", AttrType::kCategorical,
                   AttrRole::kMutable};
    amount.parents = {"Purpose"};
    amount.sampler = [](const ScmRow& row, Rng& rng) {
      static const std::vector<std::string> kBands = {"small", "medium",
                                                      "large"};
      if (Cat(row, "Purpose") == "business") {
        return Value(kBands[rng.NextCategorical({0.15, 0.40, 0.45})]);
      }
      return Value(kBands[rng.NextCategorical({0.40, 0.40, 0.20})]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(amount)));
  }
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      "OtherInstallmentPlans", AttrRole::kMutable, {"none", "bank", "stores"},
      {0.80, 0.12, 0.08}));

  // ---------------- Outcome ----------------
  {
    ScmAttribute risk;
    risk.spec = {"CreditRisk", AttrType::kNumeric, AttrRole::kOutcome};
    risk.parents = {"Gender",          "PersonalStatus",  "AgeGroup",
                    "CheckingBalance", "SavingsBalance",  "CreditHistory",
                    "Purpose",         "Housing",         "Job",
                    "EmploymentDuration", "Property",     "InstallmentRate",
                    "CreditAmountBand"};
    const double attenuation = config.protected_attenuation;
    risk.sampler = [attenuation](const ScmRow& row, Rng& rng) {
      const bool is_protected = Cat(row, "Gender") == "female" &&
                                Cat(row, "PersonalStatus") == "single";
      const double mult = is_protected ? attenuation : 1.0;

      // Contributions of the *mutable* attributes (attenuated for the
      // protected group — the planted disparity).
      double mutable_score = 0.0;
      const std::string& checking = Cat(row, "CheckingBalance");
      if (checking == ">=200DM") mutable_score += 1.6;
      else if (checking == "<200DM") mutable_score += 0.4;

      const std::string& savings = Cat(row, "SavingsBalance");
      if (savings == "medium") mutable_score += 0.35;
      else if (savings == "high") mutable_score += 0.7;

      const std::string& history = Cat(row, "CreditHistory");
      if (history == "good") mutable_score += 0.5;
      else if (history == "bad") mutable_score -= 0.7;

      const std::string& purpose = Cat(row, "Purpose");
      if (purpose == "furniture") mutable_score += 0.25;
      else if (purpose == "used_car") mutable_score += 0.35;
      else if (purpose == "education") mutable_score -= 0.15;

      if (Cat(row, "Housing") == "own") mutable_score += 0.9;

      const std::string& job = Cat(row, "Job");
      if (job == "skilled") mutable_score += 0.7;
      else if (job == "management") mutable_score += 0.9;

      if (Cat(row, "EmploymentDuration") == ">4y") mutable_score += 0.35;
      else if (Cat(row, "EmploymentDuration") == "<1y") mutable_score -= 0.2;

      if (Cat(row, "Property") == "real_estate") mutable_score += 0.3;
      if (Cat(row, "InstallmentRate") == "high") mutable_score -= 0.25;
      if (Cat(row, "CreditAmountBand") == "large") mutable_score -= 0.3;

      // Immutable contributions (not attenuated).
      double base = -1.3;
      const std::string& age = Cat(row, "AgeGroup");
      if (age == "19-25") base -= 0.3;
      else if (age == "41-60") base += 0.15;
      else if (age == "60+") base += 0.2;

      const double p = Sigmoid(base + mult * mutable_score);
      return Value(rng.NextBernoulli(p) ? 1.0 : 0.0);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(risk)));
  }
  return scm;
}

Result<GermanData> MakeGerman(const GermanConfig& config) {
  FAIRCAP_ASSIGN_OR_RETURN(const Scm scm, MakeGermanScm(config));
  FAIRCAP_ASSIGN_OR_RETURN(DataFrame df,
                           scm.Generate(config.num_rows, config.seed));
  FAIRCAP_ASSIGN_OR_RETURN(CausalDag dag, scm.Dag());
  FAIRCAP_ASSIGN_OR_RETURN(const size_t gender_attr,
                           df.schema().IndexOf("Gender"));
  FAIRCAP_ASSIGN_OR_RETURN(const size_t status_attr,
                           df.schema().IndexOf("PersonalStatus"));
  Pattern protected_pattern(
      {Predicate(gender_attr, CompareOp::kEq, Value("female")),
       Predicate(status_attr, CompareOp::kEq, Value("single"))});
  GermanData data{std::move(df), std::move(dag),
                  std::move(protected_pattern)};
  return data;
}

}  // namespace faircap
