// Structural causal model (SCM) driven data synthesis. The paper evaluates
// on the Stack Overflow survey and German Credit; neither ships here, so
// the generators in this directory sample from hand-built SCMs whose DAGs
// and effect sizes are calibrated to the paper (see DESIGN.md §2).
// The Scm class is the shared machinery: attributes are added in
// topological order with explicit parents and a sampling function; it
// produces both the DataFrame and the ground-truth CausalDag.

#ifndef FAIRCAP_DATA_SCM_H_
#define FAIRCAP_DATA_SCM_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "causal/dag.h"
#include "dataframe/dataframe.h"
#include "util/random.h"
#include "util/result.h"

namespace faircap {

/// Values of all already-sampled attributes of the row being generated.
using ScmRow = std::unordered_map<std::string, Value>;

/// Sampling function: parents' values (plus every earlier attribute) in
/// `row`, randomness from `rng`; returns this attribute's value.
using ScmSampler = std::function<Value(const ScmRow& row, Rng& rng)>;

/// One endogenous variable of the SCM.
struct ScmAttribute {
  AttributeSpec spec;
  std::vector<std::string> parents;  ///< must already be in the SCM
  ScmSampler sampler;
};

/// A structural causal model that can synthesize datasets.
class Scm {
 public:
  /// Adds an attribute; parents must have been added before (this keeps
  /// insertion order a valid topological order).
  Status Add(ScmAttribute attribute);

  /// Convenience: categorical root sampled from fixed weights.
  Status AddCategoricalRoot(const std::string& name, AttrRole role,
                            std::vector<std::string> categories,
                            std::vector<double> weights);

  /// Samples `num_rows` rows.
  Result<DataFrame> Generate(size_t num_rows, uint64_t seed) const;

  /// Ground-truth DAG (edges parent -> child).
  Result<CausalDag> Dag() const;

  Result<Schema> BuildSchema() const;

 private:
  std::vector<ScmAttribute> attributes_;
  std::unordered_map<std::string, size_t> index_;
};

/// DAG variants for the robustness study (Table 6), built from schema
/// roles alone:
enum class DagVariant {
  kOneLayerIndependent,  ///< every attribute -> outcome, nothing else
  kTwoLayerMutable,      ///< immutable -> each mutable; mutable -> outcome
  kTwoLayer,             ///< immutable -> mutable and -> outcome; mutable -> outcome
};

/// Builds the requested layered DAG over `schema`'s non-ignored attributes.
Result<CausalDag> MakeLayeredDag(const Schema& schema, DagVariant variant);

}  // namespace faircap

#endif  // FAIRCAP_DATA_SCM_H_
