#include "data/scm.h"

namespace faircap {

Status Scm::Add(ScmAttribute attribute) {
  if (index_.count(attribute.spec.name) != 0) {
    return Status::AlreadyExists("attribute '" + attribute.spec.name +
                                 "' already in SCM");
  }
  for (const std::string& parent : attribute.parents) {
    if (index_.count(parent) == 0) {
      return Status::NotFound("parent '" + parent + "' of '" +
                              attribute.spec.name +
                              "' must be added before its children");
    }
  }
  if (!attribute.sampler) {
    return Status::InvalidArgument("attribute '" + attribute.spec.name +
                                   "' has no sampler");
  }
  index_.emplace(attribute.spec.name, attributes_.size());
  attributes_.push_back(std::move(attribute));
  return Status::OK();
}

Status Scm::AddCategoricalRoot(const std::string& name, AttrRole role,
                               std::vector<std::string> categories,
                               std::vector<double> weights) {
  if (categories.size() != weights.size() || categories.empty()) {
    return Status::InvalidArgument(
        "categories and weights must be non-empty and equal-length");
  }
  ScmAttribute attr;
  attr.spec = {name, AttrType::kCategorical, role};
  attr.sampler = [categories = std::move(categories),
                  weights = std::move(weights)](const ScmRow&, Rng& rng) {
    return Value(categories[rng.NextCategorical(weights)]);
  };
  return Add(std::move(attr));
}

Result<Schema> Scm::BuildSchema() const {
  std::vector<AttributeSpec> specs;
  specs.reserve(attributes_.size());
  for (const ScmAttribute& attr : attributes_) specs.push_back(attr.spec);
  return Schema::Create(std::move(specs));
}

Result<DataFrame> Scm::Generate(size_t num_rows, uint64_t seed) const {
  FAIRCAP_ASSIGN_OR_RETURN(Schema schema, BuildSchema());
  DataFrame df = DataFrame::Create(std::move(schema));
  df.Reserve(num_rows);
  Rng rng(seed);
  ScmRow row;
  std::vector<Value> values(attributes_.size());
  for (size_t r = 0; r < num_rows; ++r) {
    row.clear();
    for (size_t a = 0; a < attributes_.size(); ++a) {
      Value v = attributes_[a].sampler(row, rng);
      row.emplace(attributes_[a].spec.name, v);
      values[a] = std::move(v);
    }
    FAIRCAP_RETURN_NOT_OK(df.AppendRow(values));
  }
  return df;
}

Result<CausalDag> Scm::Dag() const {
  std::vector<std::string> names;
  std::vector<std::pair<std::string, std::string>> edges;
  names.reserve(attributes_.size());
  for (const ScmAttribute& attr : attributes_) {
    names.push_back(attr.spec.name);
    for (const std::string& parent : attr.parents) {
      edges.emplace_back(parent, attr.spec.name);
    }
  }
  return CausalDag::Create(std::move(names), edges);
}

Result<CausalDag> MakeLayeredDag(const Schema& schema, DagVariant variant) {
  FAIRCAP_ASSIGN_OR_RETURN(const size_t outcome, schema.OutcomeIndex());
  const std::string& outcome_name = schema.attribute(outcome).name;
  std::vector<std::string> names;
  std::vector<std::string> immutable;
  std::vector<std::string> mutables;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    const AttributeSpec& spec = schema.attribute(i);
    if (spec.role == AttrRole::kIgnored) continue;
    names.push_back(spec.name);
    if (spec.role == AttrRole::kImmutable) immutable.push_back(spec.name);
    if (spec.role == AttrRole::kMutable) mutables.push_back(spec.name);
  }
  std::vector<std::pair<std::string, std::string>> edges;
  switch (variant) {
    case DagVariant::kOneLayerIndependent:
      for (const std::string& name : names) {
        if (name != outcome_name) edges.emplace_back(name, outcome_name);
      }
      break;
    case DagVariant::kTwoLayerMutable:
      // Immutable attributes confound the mutable ones but do not reach
      // the outcome directly.
      for (const std::string& i : immutable) {
        for (const std::string& m : mutables) edges.emplace_back(i, m);
      }
      for (const std::string& m : mutables) {
        edges.emplace_back(m, outcome_name);
      }
      break;
    case DagVariant::kTwoLayer:
      for (const std::string& i : immutable) {
        for (const std::string& m : mutables) edges.emplace_back(i, m);
        edges.emplace_back(i, outcome_name);
      }
      for (const std::string& m : mutables) {
        edges.emplace_back(m, outcome_name);
      }
      break;
  }
  return CausalDag::Create(std::move(names), edges);
}

}  // namespace faircap
