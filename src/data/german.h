// Synthetic German Credit dataset (substitute for the UCI dataset used in
// the paper; see DESIGN.md §2). 1000 rows, 20 attributes + binary credit
// outcome, protected group = single females (≈9.2% of rows). Mutable
// financial attributes (checking balance, savings, housing, job skill, …)
// carry planted effects on the probability of a good credit score, with a
// protected-group attenuation so the BGL-fairness phenomena of Table 4
// reproduce.

#ifndef FAIRCAP_DATA_GERMAN_H_
#define FAIRCAP_DATA_GERMAN_H_

#include "data/scm.h"
#include "mining/pattern.h"

namespace faircap {

/// Knobs for the generator.
struct GermanConfig {
  size_t num_rows = 1000;
  uint64_t seed = 7;
  /// Multiplier applied to mutable-attribute effects for single females
  /// (1.0 = no disparity).
  double protected_attenuation = 0.5;
};

/// A generated dataset with its ground truth.
struct GermanData {
  DataFrame df;
  CausalDag dag;
  Pattern protected_pattern;  ///< Gender = female AND PersonalStatus = single
};

/// Builds the SCM.
Result<Scm> MakeGermanScm(const GermanConfig& config = {});

/// Generates the dataset, DAG, and protected pattern.
Result<GermanData> MakeGerman(const GermanConfig& config = {});

}  // namespace faircap

#endif  // FAIRCAP_DATA_GERMAN_H_
