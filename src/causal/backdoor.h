// Backdoor adjustment-set identification (Pearl 2009, Section 3 of the
// paper). A set Z satisfies the backdoor criterion relative to (T, O) if
// (1) no member of Z is a descendant of any treatment node, and (2) Z
// blocks every path from T to O that starts with an edge into T.

#ifndef FAIRCAP_CAUSAL_BACKDOOR_H_
#define FAIRCAP_CAUSAL_BACKDOOR_H_

#include <vector>

#include "causal/dag.h"
#include "util/result.h"

namespace faircap {

/// True iff `z` satisfies the backdoor criterion for treatments `t` and
/// outcome `o` in `dag`.
bool IsValidBackdoorSet(const CausalDag& dag, const std::vector<size_t>& t,
                        size_t o, const std::vector<size_t>& z);

/// Default adjustment set: the union of the treatments' parents, excluding
/// treatments themselves and the outcome. Parents of T always satisfy the
/// backdoor criterion, so this set is valid whenever it excludes `o`
/// (returns an error if `o` is a parent of a treatment, which would make
/// the effect ill-defined).
Result<std::vector<size_t>> ParentAdjustmentSet(const CausalDag& dag,
                                                const std::vector<size_t>& t,
                                                size_t o);

/// Greedily shrinks `z` while it remains a valid backdoor set; result is a
/// minimal (not necessarily minimum) valid subset. Errors if `z` itself is
/// not valid.
Result<std::vector<size_t>> MinimalBackdoorSet(const CausalDag& dag,
                                               const std::vector<size_t>& t,
                                               size_t o,
                                               std::vector<size_t> z);

}  // namespace faircap

#endif  // FAIRCAP_CAUSAL_BACKDOOR_H_
