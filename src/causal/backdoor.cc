#include "causal/backdoor.h"

#include <algorithm>

#include "causal/d_separation.h"

namespace faircap {

namespace {

// The "proper backdoor graph": remove all edges leaving treatment nodes,
// so the only T-O paths left are backdoor paths. Z is a valid backdoor
// set iff it d-separates T and O in this graph (and contains no
// descendant of T in the original graph).
CausalDag BackdoorGraph(const CausalDag& dag, const std::vector<size_t>& t) {
  std::vector<std::pair<std::string, std::string>> edges;
  std::vector<bool> is_treatment(dag.num_nodes(), false);
  for (size_t v : t) is_treatment[v] = true;
  for (size_t u = 0; u < dag.num_nodes(); ++u) {
    if (is_treatment[u]) continue;  // drop edges out of T
    for (size_t v : dag.Children(u)) {
      edges.emplace_back(dag.name(u), dag.name(v));
    }
  }
  Result<CausalDag> result = CausalDag::Create(dag.node_names(), edges);
  // Removing edges from a DAG cannot create cycles.
  return std::move(result).ValueOrDie();
}

}  // namespace

bool IsValidBackdoorSet(const CausalDag& dag, const std::vector<size_t>& t,
                        size_t o, const std::vector<size_t>& z) {
  // Condition (1): no member of Z is a descendant of a treatment.
  std::vector<bool> descendant(dag.num_nodes(), false);
  for (size_t treatment : t) {
    for (size_t d : dag.Descendants(treatment)) descendant[d] = true;
  }
  for (size_t v : z) {
    if (descendant[v]) return false;
    if (v == o) return false;
    if (std::find(t.begin(), t.end(), v) != t.end()) return false;
  }
  // Condition (2): Z blocks all backdoor paths.
  const CausalDag backdoor_graph = BackdoorGraph(dag, t);
  return DSeparated(backdoor_graph, t, {o}, z);
}

Result<std::vector<size_t>> ParentAdjustmentSet(const CausalDag& dag,
                                                const std::vector<size_t>& t,
                                                size_t o) {
  std::vector<bool> in_t(dag.num_nodes(), false);
  for (size_t v : t) in_t[v] = true;
  std::vector<size_t> z;
  for (size_t treatment : t) {
    for (size_t p : dag.Parents(treatment)) {
      if (p == o) {
        return Status::FailedPrecondition(
            "outcome '" + dag.name(o) + "' is a direct cause of treatment '" +
            dag.name(treatment) + "'; effect of T on O is ill-posed");
      }
      if (!in_t[p]) z.push_back(p);
    }
  }
  std::sort(z.begin(), z.end());
  z.erase(std::unique(z.begin(), z.end()), z.end());
  return z;
}

Result<std::vector<size_t>> MinimalBackdoorSet(const CausalDag& dag,
                                               const std::vector<size_t>& t,
                                               size_t o,
                                               std::vector<size_t> z) {
  if (!IsValidBackdoorSet(dag, t, o, z)) {
    return Status::InvalidArgument("initial set is not a valid backdoor set");
  }
  // Greedy elimination: drop variables one at a time while validity holds.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < z.size(); ++i) {
      std::vector<size_t> candidate;
      candidate.reserve(z.size() - 1);
      for (size_t j = 0; j < z.size(); ++j) {
        if (j != i) candidate.push_back(z[j]);
      }
      if (IsValidBackdoorSet(dag, t, o, candidate)) {
        z = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return z;
}

}  // namespace faircap
