// Ordinary least squares via streaming normal equations. The regression
// CATE estimator fits O ~ alpha + beta*T + gamma'Z and reads the treatment
// effect off beta, so all we need is a small, dependency-free SPD solver.

#ifndef FAIRCAP_CAUSAL_LINEAR_MODEL_H_
#define FAIRCAP_CAUSAL_LINEAR_MODEL_H_

#include <vector>

#include "util/result.h"

namespace faircap {

/// Fitted OLS model.
struct OlsFit {
  std::vector<double> beta;        ///< coefficients, length p
  std::vector<double> std_errors;  ///< standard errors, length p
  double sigma2 = 0.0;             ///< residual variance estimate
  size_t n = 0;                    ///< rows used
};

/// Solves A x = b for symmetric positive definite A (row-major p x p) via
/// Cholesky. Fails when A is not positive definite.
Result<std::vector<double>> SolveSpd(std::vector<double> a, size_t p,
                                     std::vector<double> b);

/// Inverts a symmetric positive definite matrix (row-major p x p).
Result<std::vector<double>> InvertSpd(std::vector<double> a, size_t p);

/// Solves the ridge-stabilized normal equations from sufficient statistics
/// alone: `xtx` is X'X with at least the upper triangle filled (i <= j;
/// the lower triangle is ignored), `xty` is X'y, `yty` is y'y, `n` the row
/// count behind the sums. This is the shared back half of OlsAccumulator
/// and of the CATE sufficient-statistics engine, which assembles X'X from
/// per-stratum accumulations instead of design rows.
Result<OlsFit> SolveNormalEquations(const std::vector<double>& xtx,
                                    const std::vector<double>& xty,
                                    double yty, size_t n, size_t p,
                                    double ridge = 1e-8);

/// Accumulates X'X, X'y, y'y row by row, then solves the (ridge-stabilized)
/// normal equations. Design rows never need to be materialized together.
class OlsAccumulator {
 public:
  explicit OlsAccumulator(size_t p);

  size_t num_features() const { return p_; }
  size_t num_rows() const { return n_; }

  /// Adds one design row `x` (length p) with response `y`.
  void AddRow(const double* x, double y);

  /// Solves (X'X + ridge*I) beta = X'y and computes standard errors.
  /// Fails when fewer rows than features or a singular system.
  Result<OlsFit> Solve(double ridge = 1e-8) const;

 private:
  size_t p_;
  size_t n_ = 0;
  std::vector<double> xtx_;  // p x p, row-major (upper kept in sync)
  std::vector<double> xty_;  // p
  double yty_ = 0.0;
};

}  // namespace faircap

#endif  // FAIRCAP_CAUSAL_LINEAR_MODEL_H_
