#include "causal/estimator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "causal/backdoor.h"
#include "causal/cate_stats_engine.h"
#include "causal/linear_model.h"
#include "util/logging.h"
#include "util/obs/metrics.h"

namespace faircap {

namespace {

// Canonical cache key for an adjustment attr list (keys the stratum-id
// and confounder-partition caches).
std::string AdjustmentKey(const std::vector<size_t>& adjustment) {
  std::string key;
  for (size_t a : adjustment) {
    key += std::to_string(a);
    key += ',';
  }
  return key;
}

// Registry mirrors of the per-estimator engine-cache stats, bumped at the
// same sites under the same mutex (see dataframe/predicate_index.cc for
// the pattern). engine_cache.bytes tracks the most recently mutated
// estimator instance.
struct EngineCacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Gauge& bytes;
};

EngineCacheMetrics& EngineMetrics() {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  static EngineCacheMetrics* metrics = new EngineCacheMetrics{
      r.GetCounter("engine_cache.hits"),
      r.GetCounter("engine_cache.misses"),
      r.GetCounter("engine_cache.evictions"),
      r.GetGauge("engine_cache.bytes"),
  };
  return *metrics;
}

// Append-refresh counters (run-report "append.*" family).
struct AppendMetrics {
  obs::Counter& partitions_extended;
  obs::Counter& partitions_rebuilt;
  obs::Counter& engines_extended;
  obs::Counter& engines_rebuilt;
};

AppendMetrics& AppendRefreshMetrics() {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  static AppendMetrics* metrics = new AppendMetrics{
      r.GetCounter("append.partitions_extended"),
      r.GetCounter("append.partitions_rebuilt"),
      r.GetCounter("append.engines_extended"),
      r.GetCounter("append.engines_rebuilt"),
  };
  return *metrics;
}

}  // namespace

Result<CateEstimator> CateEstimator::Create(const DataFrame* df,
                                            const CausalDag* dag,
                                            CateOptions options) {
  if (df == nullptr || dag == nullptr) {
    return Status::InvalidArgument("df and dag must be non-null");
  }
  FAIRCAP_ASSIGN_OR_RETURN(const size_t outcome_attr,
                           df->schema().OutcomeIndex());
  const std::string& outcome_name = df->schema().attribute(outcome_attr).name;
  FAIRCAP_ASSIGN_OR_RETURN(const size_t outcome_node,
                           dag->IndexOf(outcome_name));
  return CateEstimator(df, dag, options, outcome_attr, outcome_node);
}

CateEstimator::CateEstimator(const DataFrame* df, const CausalDag* dag,
                             CateOptions options, size_t outcome_attr,
                             size_t outcome_node)
    : df_(df),
      dag_(dag),
      options_(options),
      outcome_attr_(outcome_attr),
      outcome_node_(outcome_node),
      mu_(new Mutex) {}

Result<std::vector<size_t>> CateEstimator::AdjustmentAttrs(
    const Pattern& intervention) const {
  const std::vector<size_t> treatment_attrs = intervention.Attributes();
  std::string key;
  for (size_t a : treatment_attrs) {
    key += std::to_string(a);
    key += ',';
  }
  {
    MutexLock lock(*mu_);
    const auto it = adjustment_cache_.find(key);
    if (it != adjustment_cache_.end()) return it->second;
  }

  // Map treatment attributes to DAG nodes (attributes absent from the DAG
  // contribute no backdoor paths).
  std::vector<size_t> treatment_nodes;
  for (size_t attr : treatment_attrs) {
    const std::string& name = df_->schema().attribute(attr).name;
    const Result<size_t> node = dag_->IndexOf(name);
    if (node.ok()) treatment_nodes.push_back(*node);
  }
  std::vector<size_t> adjustment_attrs;
  if (!treatment_nodes.empty()) {
    FAIRCAP_ASSIGN_OR_RETURN(
        const std::vector<size_t> z_nodes,
        ParentAdjustmentSet(*dag_, treatment_nodes, outcome_node_));
    for (size_t node : z_nodes) {
      const Result<size_t> attr = df_->schema().IndexOf(dag_->name(node));
      // DAG nodes without a backing column (latent) cannot be adjusted for.
      if (attr.ok() && *attr != outcome_attr_) {
        adjustment_attrs.push_back(*attr);
      }
    }
    std::sort(adjustment_attrs.begin(), adjustment_attrs.end());
  }
  {
    MutexLock lock(*mu_);
    adjustment_cache_.emplace(key, adjustment_attrs);
  }
  return adjustment_attrs;
}

std::shared_ptr<const Bitmap> CateEstimator::TreatedMask(
    const Pattern& intervention) const {
  return intervention.EvaluateShared(*df_);
}

Result<CateEstimate> CateEstimator::Estimate(const Pattern& intervention,
                                             const Bitmap& group) const {
  return Estimate(intervention, group, /*min_group_size=*/0);
}

Result<CateEstimate> CateEstimator::Estimate(const Pattern& intervention,
                                             const Bitmap& group,
                                             size_t min_group_size) const {
  if (intervention.empty()) {
    return Status::InvalidArgument("intervention pattern must be non-empty");
  }
  if (min_group_size == 0) min_group_size = options_.min_group_size;
  FAIRCAP_RETURN_NOT_OK(intervention.Validate(*df_));
  FAIRCAP_ASSIGN_OR_RETURN(const std::vector<size_t> adjustment,
                           AdjustmentAttrs(intervention));
  const std::shared_ptr<const Bitmap> treated_mask = TreatedMask(intervention);
  const Bitmap& treated = *treated_mask;
  static obs::Counter& legacy_calls =
      obs::MetricsRegistry::Global().GetCounter("estimation.legacy_calls");
  legacy_calls.Increment();
  switch (options_.method) {
    case CateMethod::kRegression:
      return EstimateRegression(treated, group, adjustment, min_group_size);
    case CateMethod::kStratified:
      return EstimateStratified(treated, group, adjustment, min_group_size);
    case CateMethod::kIpw:
      return EstimateIpw(treated, group, adjustment, min_group_size);
  }
  return Status::Internal("unknown CATE method");
}

Result<CateEstimate> CateEstimator::EstimateRegression(
    const Bitmap& treated, const Bitmap& group,
    const std::vector<size_t>& adjustment, size_t min_group_size) const {
  // Design: [intercept, T, one-hot(Z_cat levels 1..k-1)..., Z_num...].
  struct Feature {
    size_t attr;
    bool categorical;
    int32_t code;  // the level this column indicates (categorical)
  };
  std::vector<Feature> features;
  for (size_t attr : adjustment) {
    const Column& col = df_->column(attr);
    if (col.type() == AttrType::kCategorical) {
      // Drop the first level as the reference category.
      for (size_t code = 1; code < col.num_categories(); ++code) {
        features.push_back({attr, true, static_cast<int32_t>(code)});
      }
    } else {
      features.push_back({attr, false, 0});
    }
  }
  const size_t p = 2 + features.size();
  OlsAccumulator acc(p);
  const Column& outcome = df_->column(outcome_attr_);
  std::vector<double> row(p);
  size_t n_treated = 0, n_control = 0;
  group.ForEach([&](size_t r) {
    if (outcome.IsNull(r)) return;
    row[0] = 1.0;
    const bool is_treated = treated.Get(r);
    row[1] = is_treated ? 1.0 : 0.0;
    for (size_t f = 0; f < features.size(); ++f) {
      const Feature& feat = features[f];
      const Column& col = df_->column(feat.attr);
      if (col.IsNull(r)) {
        // Null confounders: treat as the reference level / zero.
        row[2 + f] = 0.0;
        continue;
      }
      if (feat.categorical) {
        row[2 + f] = col.code(r) == feat.code ? 1.0 : 0.0;
      } else {
        row[2 + f] = col.numeric(r);
      }
    }
    acc.AddRow(row.data(), outcome.numeric(r));
    if (is_treated) ++n_treated; else ++n_control;
  });

  if (n_treated < min_group_size || n_control < min_group_size) {
    return Status::FailedPrecondition(
        "insufficient overlap: " + std::to_string(n_treated) + " treated / " +
        std::to_string(n_control) + " control rows");
  }
  FAIRCAP_ASSIGN_OR_RETURN(const OlsFit fit, acc.Solve(options_.ridge));
  CateEstimate est;
  est.cate = fit.beta[1];
  est.std_error = fit.std_errors[1];
  est.n_treated = n_treated;
  est.n_control = n_control;
  return est;
}

std::vector<int64_t> CateEstimator::StratumIds(
    const std::vector<size_t>& adjustment) const {
  const size_t n = df_->num_rows();
  std::vector<int64_t> ids(n, 0);
  // Precompute quantile bin edges for numeric confounders (shared with
  // the ConfounderPartition build so the two can never drift).
  std::vector<std::vector<double>> edges(adjustment.size());
  for (size_t a = 0; a < adjustment.size(); ++a) {
    const Column& col = df_->column(adjustment[a]);
    if (col.type() != AttrType::kNumeric) continue;
    edges[a] = QuantileBinEdges(
        col, std::max<size_t>(1, options_.numeric_confounder_bins));
  }
  for (size_t r = 0; r < n; ++r) {
    int64_t id = 0;
    for (size_t a = 0; a < adjustment.size(); ++a) {
      const Column& col = df_->column(adjustment[a]);
      int64_t cell;
      if (col.IsNull(r)) {
        ids[r] = -1;
        break;
      }
      if (col.type() == AttrType::kCategorical) {
        cell = col.code(r);
        id = id * static_cast<int64_t>(col.num_categories() + 1) + cell;
      } else {
        const auto& e = edges[a];
        cell = static_cast<int64_t>(
            std::upper_bound(e.begin(), e.end(), col.numeric(r)) - e.begin());
        id = id * static_cast<int64_t>(e.size() + 2) + cell;
      }
    }
    if (ids[r] != -1) ids[r] = id;
  }
  return ids;
}

std::shared_ptr<const std::vector<int64_t>> CateEstimator::StratumIdsCached(
    const std::vector<size_t>& adjustment) const {
  const std::string key = AdjustmentKey(adjustment);
  {
    MutexLock lock(*mu_);
    const auto it = stratum_cache_.find(key);
    if (it != stratum_cache_.end()) return it->second;
  }
  // Compute outside the lock (deterministic: a racing duplicate is
  // identical, and the first insertion wins).
  auto ids = std::make_shared<const std::vector<int64_t>>(
      StratumIds(adjustment));
  MutexLock lock(*mu_);
  const auto [it, inserted] = stratum_cache_.emplace(key, std::move(ids));
  return it->second;
}

Result<CateEstimate> CateEstimator::EstimateStratified(
    const Bitmap& treated, const Bitmap& group,
    const std::vector<size_t>& adjustment, size_t min_group_size) const {
  const std::shared_ptr<const std::vector<int64_t>> strata_ptr =
      StratumIdsCached(adjustment);
  const std::vector<int64_t>& strata = *strata_ptr;
  struct Arm {
    size_t n = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
  };
  struct Cell {
    Arm treated;
    Arm control;
  };
  std::map<int64_t, Cell> cells;
  const Column& outcome = df_->column(outcome_attr_);
  group.ForEach([&](size_t r) {
    if (outcome.IsNull(r) || strata[r] < 0) return;
    Cell& cell = cells[strata[r]];
    Arm& arm = treated.Get(r) ? cell.treated : cell.control;
    const double y = outcome.numeric(r);
    ++arm.n;
    arm.sum += y;
    arm.sum_sq += y * y;
  });

  double weighted_effect = 0.0;
  double weighted_var = 0.0;
  size_t n_used = 0, n_treated = 0, n_control = 0;
  for (const auto& [stratum, cell] : cells) {
    if (cell.treated.n < options_.min_stratum_arm ||
        cell.control.n < options_.min_stratum_arm) {
      continue;  // no overlap in this stratum (positivity violation)
    }
    const size_t n_s = cell.treated.n + cell.control.n;
    const double m1 = cell.treated.sum / static_cast<double>(cell.treated.n);
    const double m0 = cell.control.sum / static_cast<double>(cell.control.n);
    weighted_effect += static_cast<double>(n_s) * (m1 - m0);
    // Within-arm variances for the standard error (0 when n=1).
    auto arm_var = [](const Arm& arm) {
      if (arm.n < 2) return 0.0;
      const double mean = arm.sum / static_cast<double>(arm.n);
      return std::max(0.0, (arm.sum_sq - arm.sum * mean) /
                               static_cast<double>(arm.n - 1));
    };
    const double v1 = arm_var(cell.treated) / static_cast<double>(cell.treated.n);
    const double v0 = arm_var(cell.control) / static_cast<double>(cell.control.n);
    weighted_var += static_cast<double>(n_s) * static_cast<double>(n_s) *
                    (v1 + v0);
    n_used += n_s;
    n_treated += cell.treated.n;
    n_control += cell.control.n;
  }
  if (n_treated < min_group_size || n_control < min_group_size) {
    return Status::FailedPrecondition(
        "insufficient overlap after stratification: " +
        std::to_string(n_treated) + " treated / " +
        std::to_string(n_control) + " control rows");
  }
  CateEstimate est;
  est.cate = weighted_effect / static_cast<double>(n_used);
  est.std_error =
      std::sqrt(weighted_var) / static_cast<double>(n_used);
  est.n_treated = n_treated;
  est.n_control = n_control;
  return est;
}


Result<CateEstimate> CateEstimator::EstimateIpw(
    const Bitmap& treated, const Bitmap& group,
    const std::vector<size_t>& adjustment, size_t min_group_size) const {
  // Propensity design: [intercept, one-hot(Z_cat levels 1..k-1), Z_num].
  struct Feature {
    size_t attr;
    bool categorical;
    int32_t code;
  };
  std::vector<Feature> features;
  for (size_t attr : adjustment) {
    const Column& col = df_->column(attr);
    if (col.type() == AttrType::kCategorical) {
      for (size_t code = 1; code < col.num_categories(); ++code) {
        features.push_back({attr, true, static_cast<int32_t>(code)});
      }
    } else {
      features.push_back({attr, false, 0});
    }
  }
  const size_t p = 1 + features.size();

  const Column& outcome = df_->column(outcome_attr_);
  std::vector<double> design;
  std::vector<double> labels;
  std::vector<double> outcomes;
  std::vector<uint8_t> is_treated_row;
  group.ForEach([&](size_t r) {
    if (outcome.IsNull(r)) return;
    design.push_back(1.0);
    for (const Feature& feat : features) {
      const Column& col = df_->column(feat.attr);
      if (col.IsNull(r)) {
        design.push_back(0.0);
      } else if (feat.categorical) {
        design.push_back(col.code(r) == feat.code ? 1.0 : 0.0);
      } else {
        design.push_back(col.numeric(r));
      }
    }
    const bool t = treated.Get(r);
    labels.push_back(t ? 1.0 : 0.0);
    outcomes.push_back(outcome.numeric(r));
    is_treated_row.push_back(t ? 1 : 0);
  });
  const size_t n = labels.size();
  size_t n_treated = 0;
  for (uint8_t t : is_treated_row) n_treated += t;
  const size_t n_control = n - n_treated;
  if (n_treated < min_group_size || n_control < min_group_size) {
    return Status::FailedPrecondition(
        "insufficient overlap: " + std::to_string(n_treated) + " treated / " +
        std::to_string(n_control) + " control rows");
  }

  // Fit + clipped Hajek weighting via the one shared implementation (the
  // sufficient-statistics engine's per-row fallback calls it too).
  return HajekIpwFromRows(design, n, p, labels, outcomes, is_treated_row,
                          options_.propensity_clip);
}

std::shared_ptr<const ConfounderPartition> CateEstimator::PartitionFor(
    const std::vector<size_t>& adjustment) const {
  const std::string key = AdjustmentKey(adjustment);
  {
    MutexLock lock(*mu_);
    const auto it = partitions_.find(key);
    if (it != partitions_.end()) {
      if (auto alive = it->second.lock()) {
        // A partition pinned alive by an un-refreshed engine may lag the
        // table after an append; never serve it — rebuild instead.
        if (alive->rows_covered() == df_->num_rows()) return alive;
      }
    }
  }
  // Build outside the lock; a racing duplicate build is identical and the
  // first insertion wins.
  std::shared_ptr<const ConfounderPartition> built =
      ConfounderPartition::Build(*df_, outcome_attr_, adjustment, options_);
  MutexLock lock(*mu_);
  auto& slot = partitions_[key];
  if (auto alive = slot.lock()) {
    if (alive->rows_covered() == df_->num_rows()) return alive;
  }
  slot = built;
  return built;
}

size_t CateEstimator::EngineBytesLocked() const {
  // Per-engine bytes include the treated mask each engine pins; the
  // (shared) partitions are counted once each below.
  size_t bytes = 0;
  for (const auto& [key, entry] : engines_) bytes += entry.engine->bytes();
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    if (auto alive = it->second.lock()) {
      bytes += alive->bytes();
      ++it;
    } else {
      it = partitions_.erase(it);  // expired: prune while we are here
    }
  }
  return bytes;
}

void CateEstimator::EnforceEngineBudgetLocked() const {
  if (engine_budget_ == 0) return;
  // Never evict the most-recently-touched engine: the caller that just
  // inserted (or hit) it is still using it. Partition bytes fall out
  // automatically once the last engine holding a partition is dropped.
  while (engine_lru_.size() > 1 && EngineBytesLocked() > engine_budget_) {
    const auto it = engines_.find(engine_lru_.back());
    engines_.erase(it);
    engine_lru_.pop_back();
    ++engine_evictions_;
    EngineMetrics().evictions.Increment();
  }
}

Result<std::shared_ptr<const CateStatsEngine>> CateEstimator::EngineFor(
    const Pattern& intervention) const {
  if (intervention.empty()) {
    return Status::InvalidArgument("intervention pattern must be non-empty");
  }
  FAIRCAP_RETURN_NOT_OK(intervention.Validate(*df_));
  const std::string key = intervention.Key();
  const auto is_current = [this](const CateStatsEngine& e) {
    return e.treated().size() == df_->num_rows() &&
           e.partition().rows_covered() == df_->num_rows();
  };
  {
    MutexLock lock(*mu_);
    const auto it = engines_.find(key);
    if (it != engines_.end()) {
      if (is_current(*it->second.engine)) {
        ++engine_hits_;
        EngineMetrics().hits.Increment();
        engine_lru_.splice(engine_lru_.begin(), engine_lru_,
                           it->second.lru_pos);
        return it->second.engine;
      }
      // Stale after an append (the eager NotifyAppend refresh missed it,
      // e.g. it was evicted and re-inserted by a racing builder between
      // snapshot and swap): a stale engine must never be served, so the
      // hit becomes a miss and the entry is rebuilt below.
      engine_lru_.erase(it->second.lru_pos);
      engines_.erase(it);
      AppendRefreshMetrics().engines_rebuilt.Increment();
    }
  }
  FAIRCAP_ASSIGN_OR_RETURN(const std::vector<size_t> adjustment,
                           AdjustmentAttrs(intervention));
  std::shared_ptr<const ConfounderPartition> partition =
      PartitionFor(adjustment);
  std::shared_ptr<const Bitmap> treated = TreatedMask(intervention);
  auto engine = std::make_shared<const CateStatsEngine>(
      df_, options_, adjustment, std::move(treated), std::move(partition));

  MutexLock lock(*mu_);
  const auto it = engines_.find(key);
  if (it != engines_.end() && is_current(*it->second.engine)) {
    // A racing builder landed first; keep its engine canonical.
    ++engine_hits_;
    EngineMetrics().hits.Increment();
    engine_lru_.splice(engine_lru_.begin(), engine_lru_, it->second.lru_pos);
    return it->second.engine;
  }
  if (it != engines_.end()) {
    // Racing entry is itself stale — supersede it with ours.
    engine_lru_.erase(it->second.lru_pos);
    engines_.erase(it);
  }
  ++engine_misses_;
  EngineMetrics().misses.Increment();
  engine_lru_.push_front(key);
  engines_.emplace(key, EngineEntry{engine, engine_lru_.begin(), intervention});
  EnforceEngineBudgetLocked();
  EngineMetrics().bytes.Set(static_cast<double>(EngineBytesLocked()));
  // Serve-point invariant: whatever path produced it, the engine handed
  // out must cover the table as it is now.
  FAIRCAP_CHECK(is_current(*engine));
  return engine;
}

Result<CateSubgroupEstimates> CateEstimator::EstimateSubgroups(
    const Pattern& intervention, const Bitmap& group,
    const Bitmap* protected_mask, size_t min_subgroup_size,
    bool skip_subgroups_unless_positive) const {
  return EstimateSubgroups(intervention, group, protected_mask,
                           min_subgroup_size, skip_subgroups_unless_positive,
                           /*plan=*/nullptr, /*tasks=*/nullptr);
}

Result<CateSubgroupEstimates> CateEstimator::EstimateSubgroups(
    const Pattern& intervention, const Bitmap& group,
    const Bitmap* protected_mask, size_t min_subgroup_size,
    bool skip_subgroups_unless_positive, const ShardPlan* plan,
    TaskGroup* tasks) const {
  static obs::Counter& batch_evals =
      obs::MetricsRegistry::Global().GetCounter("estimation.batch_evals");
  batch_evals.Increment();
  FAIRCAP_ASSIGN_OR_RETURN(
      const std::shared_ptr<const CateStatsEngine> engine,
      EngineFor(intervention));
  const size_t min_sub = min_subgroup_size != 0 ? min_subgroup_size
                                                : options_.min_group_size;
  return engine->EstimateSubgroups(group, protected_mask,
                                   options_.min_group_size, min_sub,
                                   skip_subgroups_unless_positive, plan, tasks);
}

CateEstimator::AppendRefreshStats CateEstimator::NotifyAppend() {
  AppendRefreshStats stats;
  const size_t num_rows = df_->num_rows();

  // Snapshot the cached state under the lock; the heavy work (partition
  // extension, treated-mask re-evaluation through the index, engine
  // construction) runs outside mu_ like every other build path here.
  std::vector<std::pair<std::string, EngineEntry>> resident;
  std::vector<std::pair<std::string, std::shared_ptr<const ConfounderPartition>>>
      live_parts;
  {
    MutexLock lock(*mu_);
    // Per-row stratum ids are stale and cheap to rebuild; drop them.
    // Adjustment sets depend only on schema + DAG and survive.
    stratum_cache_.clear();
    resident.reserve(engines_.size());
    for (const auto& [key, entry] : engines_) {
      resident.emplace_back(key, entry);
    }
    for (auto it = partitions_.begin(); it != partitions_.end();) {
      if (auto alive = it->second.lock()) {
        live_parts.emplace_back(it->first, std::move(alive));
        ++it;
      } else {
        it = partitions_.erase(it);
      }
    }
  }

  // Extend each live partition once — it is shared by every engine over
  // the same adjustment set, so the delta-intern cost is paid per
  // adjustment key, not per treatment. Extension happens in place: the
  // session Append contract guarantees no queries are in flight, and the
  // ExtendFor copy (O(N) per-row arrays per adjustment set) was the
  // dominant cost of a small append at scale.
  std::unordered_map<const ConfounderPartition*,
                     std::shared_ptr<const ConfounderPartition>>
      extended;
  std::vector<std::string> dead_slots;
  for (const auto& [key, part] : live_parts) {
    if (part->rows_covered() == num_rows) {
      extended.emplace(part.get(), part);
      continue;
    }
    auto* mut = const_cast<ConfounderPartition*>(part.get());
    if (mut->ExtendInPlace(*df_)) {
      ++stats.partitions_extended;
      AppendRefreshMetrics().partitions_extended.Increment();
      extended.emplace(part.get(), part);
    } else {
      // Numeric confounders (quantile edges shift) or new categories:
      // drop the partition and every engine on it; cold rebuild on next
      // use.
      ++stats.partitions_rebuilt;
      AppendRefreshMetrics().partitions_rebuilt.Increment();
      dead_slots.push_back(key);
    }
  }

  // Rebuild each cached engine onto its (extended) partition and the
  // re-evaluated treated mask — the index serves the mask extended by
  // whole delta words, so this costs delta work, not table work.
  std::vector<std::pair<std::string, std::shared_ptr<const CateStatsEngine>>>
      rebuilt;
  std::vector<std::string> dropped;
  for (const auto& [key, entry] : resident) {
    if (entry.engine->treated().size() == num_rows &&
        entry.engine->partition().rows_covered() == num_rows) {
      continue;  // already current (e.g. a zero-row append)
    }
    const auto it = extended.find(&entry.engine->partition());
    if (it == extended.end()) {
      dropped.push_back(key);
      continue;
    }
    std::shared_ptr<const Bitmap> treated = TreatedMask(entry.pattern);
    rebuilt.emplace_back(
        key, std::make_shared<const CateStatsEngine>(
                 df_, options_, entry.engine->adjustment(), std::move(treated),
                 it->second));
  }

  MutexLock lock(*mu_);
  for (auto& [key, engine] : rebuilt) {
    const auto it = engines_.find(key);
    if (it == engines_.end()) continue;  // evicted since the snapshot
    it->second.engine = std::move(engine);
    ++stats.engines_refreshed;
    AppendRefreshMetrics().engines_extended.Increment();
  }
  for (const std::string& key : dropped) {
    const auto it = engines_.find(key);
    if (it == engines_.end()) continue;
    engine_lru_.erase(it->second.lru_pos);
    engines_.erase(it);
    ++stats.engines_dropped;
    AppendRefreshMetrics().engines_rebuilt.Increment();
  }
  for (const std::string& key : dead_slots) partitions_.erase(key);
  EngineMetrics().bytes.Set(static_cast<double>(EngineBytesLocked()));
  return stats;
}

void CateEstimator::SetEngineMemoryBudget(size_t max_bytes) {
  MutexLock lock(*mu_);
  engine_budget_ = max_bytes;
  EnforceEngineBudgetLocked();
}

CateEstimator::EngineCacheStats CateEstimator::GetEngineStats() const {
  MutexLock lock(*mu_);
  EngineCacheStats stats;
  stats.engines = engines_.size();
  stats.bytes = EngineBytesLocked();  // also prunes expired partitions
  stats.partitions = partitions_.size();
  stats.hits = engine_hits_;
  stats.misses = engine_misses_;
  stats.evictions = engine_evictions_;
  return stats;
}

}  // namespace faircap
