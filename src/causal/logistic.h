// L2-regularized logistic regression via iteratively reweighted least
// squares (IRLS). Used to model treatment propensities P(T=1 | Z) for the
// inverse-propensity-weighting CATE estimator.

#ifndef FAIRCAP_CAUSAL_LOGISTIC_H_
#define FAIRCAP_CAUSAL_LOGISTIC_H_

#include <vector>

#include "util/result.h"

namespace faircap {

/// Fitted logistic model.
struct LogisticFit {
  std::vector<double> beta;  ///< coefficients, length p
  size_t iterations = 0;
  bool converged = false;
};

/// Options for the IRLS solver.
struct LogisticOptions {
  size_t max_iterations = 50;
  double tolerance = 1e-8;   ///< max |delta beta| convergence criterion
  double ridge = 1e-6;       ///< L2 penalty (also stabilizes separation)
};

/// Fits P(y=1 | x) = sigmoid(beta'x) on row-major X (n x p) and binary y.
Result<LogisticFit> FitLogistic(const std::vector<double>& x, size_t n,
                                size_t p, const std::vector<double>& y,
                                const LogisticOptions& options = {});

/// Grouped-data variant: `x` holds g distinct design rows (row-major,
/// g x p), group i standing for `trials[i]` observations of which
/// `successes[i]` have y=1. Mathematically identical to FitLogistic on the
/// expanded per-row data (the Newton matrices are the same sums, taken one
/// group instead of one row at a time), so when confounders are all
/// categorical the propensity model can be fit from per-stratum counts
/// alone — no design matrix over the rows.
Result<LogisticFit> FitLogisticGrouped(const std::vector<double>& x, size_t g,
                                       size_t p,
                                       const std::vector<double>& trials,
                                       const std::vector<double>& successes,
                                       const LogisticOptions& options = {});

/// sigmoid(beta'x) for one design row.
double PredictLogistic(const std::vector<double>& beta, const double* x);

}  // namespace faircap

#endif  // FAIRCAP_CAUSAL_LOGISTIC_H_
