#include "causal/dag.h"

#include <algorithm>
#include <queue>

namespace faircap {

Result<CausalDag> CausalDag::Create(
    std::vector<std::string> node_names,
    const std::vector<std::pair<std::string, std::string>>& edges) {
  CausalDag dag;
  for (size_t i = 0; i < node_names.size(); ++i) {
    if (node_names[i].empty()) {
      return Status::InvalidArgument("node name must be non-empty");
    }
    if (dag.index_.count(node_names[i]) != 0) {
      return Status::AlreadyExists("duplicate node name '" + node_names[i] +
                                   "'");
    }
    dag.index_.emplace(node_names[i], i);
  }
  dag.names_ = std::move(node_names);
  dag.parents_.resize(dag.names_.size());
  dag.children_.resize(dag.names_.size());
  for (const auto& [from, to] : edges) {
    FAIRCAP_RETURN_NOT_OK(dag.AddEdge(from, to));
  }
  return dag;
}

Result<size_t> CausalDag::IndexOf(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown DAG node '" + name + "'");
  }
  return it->second;
}

bool CausalDag::HasEdge(size_t from, size_t to) const {
  const auto& ch = children_[from];
  return std::find(ch.begin(), ch.end(), to) != ch.end();
}

Status CausalDag::AddEdge(const std::string& from, const std::string& to) {
  FAIRCAP_ASSIGN_OR_RETURN(const size_t u, IndexOf(from));
  FAIRCAP_ASSIGN_OR_RETURN(const size_t v, IndexOf(to));
  if (u == v) {
    return Status::InvalidArgument("self-loop on '" + from + "'");
  }
  if (HasEdge(u, v)) {
    return Status::AlreadyExists("edge " + from + " -> " + to +
                                 " already exists");
  }
  if (WouldCreateCycle(u, v)) {
    return Status::InvalidArgument("edge " + from + " -> " + to +
                                   " would create a cycle");
  }
  children_[u].push_back(v);
  parents_[v].push_back(u);
  ++num_edges_;
  return Status::OK();
}

Status CausalDag::RemoveEdge(const std::string& from, const std::string& to) {
  FAIRCAP_ASSIGN_OR_RETURN(const size_t u, IndexOf(from));
  FAIRCAP_ASSIGN_OR_RETURN(const size_t v, IndexOf(to));
  auto& ch = children_[u];
  const auto it = std::find(ch.begin(), ch.end(), v);
  if (it == ch.end()) {
    return Status::NotFound("edge " + from + " -> " + to + " not found");
  }
  ch.erase(it);
  auto& pa = parents_[v];
  pa.erase(std::find(pa.begin(), pa.end(), u));
  --num_edges_;
  return Status::OK();
}

std::vector<size_t> CausalDag::TopologicalOrder() const {
  std::vector<size_t> in_degree(num_nodes());
  for (size_t v = 0; v < num_nodes(); ++v) in_degree[v] = parents_[v].size();
  // Min-heap keyed on node index keeps the order deterministic.
  std::priority_queue<size_t, std::vector<size_t>, std::greater<size_t>> ready;
  for (size_t v = 0; v < num_nodes(); ++v) {
    if (in_degree[v] == 0) ready.push(v);
  }
  std::vector<size_t> order;
  order.reserve(num_nodes());
  while (!ready.empty()) {
    const size_t v = ready.top();
    ready.pop();
    order.push_back(v);
    for (size_t c : children_[v]) {
      if (--in_degree[c] == 0) ready.push(c);
    }
  }
  return order;
}

namespace {

void CollectReachable(const std::vector<std::vector<size_t>>& adjacency,
                      size_t start, std::vector<bool>* visited) {
  std::vector<size_t> stack = {start};
  while (!stack.empty()) {
    const size_t v = stack.back();
    stack.pop_back();
    for (size_t next : adjacency[v]) {
      if (!(*visited)[next]) {
        (*visited)[next] = true;
        stack.push_back(next);
      }
    }
  }
}

}  // namespace

std::vector<size_t> CausalDag::Ancestors(size_t v) const {
  std::vector<bool> visited(num_nodes(), false);
  CollectReachable(parents_, v, &visited);
  std::vector<size_t> out;
  for (size_t u = 0; u < num_nodes(); ++u) {
    if (visited[u] && u != v) out.push_back(u);
  }
  return out;
}

std::vector<size_t> CausalDag::Descendants(size_t v) const {
  std::vector<bool> visited(num_nodes(), false);
  CollectReachable(children_, v, &visited);
  std::vector<size_t> out;
  for (size_t u = 0; u < num_nodes(); ++u) {
    if (visited[u] && u != v) out.push_back(u);
  }
  return out;
}

bool CausalDag::HasDirectedPath(size_t from, size_t to) const {
  std::vector<bool> visited(num_nodes(), false);
  CollectReachable(children_, from, &visited);
  return visited[to];
}

bool CausalDag::WouldCreateCycle(size_t from, size_t to) const {
  // Adding from -> to creates a cycle iff `from` is reachable from `to`.
  return from == to || HasDirectedPath(to, from);
}

std::string CausalDag::ToString() const {
  std::string out;
  for (size_t u = 0; u < num_nodes(); ++u) {
    for (size_t v : children_[u]) {
      if (!out.empty()) out += "; ";
      out += names_[u] + " -> " + names_[v];
    }
  }
  return out;
}

}  // namespace faircap
