// PC causal discovery (Spirtes, Glymour & Scheines 2001), used to build
// the "PC DAG" variant of the robustness study (Table 6). Skeleton search
// with conditional-independence tests, v-structure orientation, Meek
// rules, and a deterministic completion that orients leftover edges
// toward the outcome (the outcome is treated as a sink — nothing in these
// datasets is caused by the outcome).

#ifndef FAIRCAP_CAUSAL_PC_H_
#define FAIRCAP_CAUSAL_PC_H_

#include <string>
#include <vector>

#include "causal/dag.h"
#include "dataframe/dataframe.h"
#include "util/result.h"

namespace faircap {

/// Tuning knobs for PC.
struct PcOptions {
  /// CI-test significance level: p > alpha => independent => remove edge.
  double alpha = 0.01;
  /// Maximum conditioning-set size.
  size_t max_condition_size = 2;
  /// Quantile bins used to discretize numeric attributes for the
  /// chi-square CI test.
  size_t numeric_bins = 4;
  /// Rows subsampled for the CI tests (0 = use all rows). PC is
  /// test-count-bound; sampling keeps Table 6 runs fast.
  size_t max_rows = 0;
};

/// Runs PC over all non-ignored attributes of `df` and returns a DAG whose
/// node names are the attribute names. The outcome attribute (if any) is
/// constrained to be a sink.
Result<CausalDag> RunPc(const DataFrame& df, const PcOptions& options = {});

}  // namespace faircap

#endif  // FAIRCAP_CAUSAL_PC_H_
