#include "causal/dag_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace faircap {

Result<CausalDag> ParseDag(const std::string& text) {
  std::vector<std::string> names;
  std::vector<std::pair<std::string, std::string>> edges;
  auto note_name = [&names](const std::string& name) {
    for (const std::string& existing : names) {
      if (existing == name) return;
    }
    names.push_back(name);
  };

  // Statements are separated by newlines or semicolons; '#' starts a
  // comment running to end of line.
  std::string cleaned;
  bool in_comment = false;
  for (char c : text) {
    if (c == '#') in_comment = true;
    if (c == '\n') {
      in_comment = false;
      cleaned += ';';
      continue;
    }
    if (!in_comment) cleaned += c;
  }

  for (const std::string& raw : Split(cleaned, ';')) {
    const std::string statement = std::string(Trim(raw));
    if (statement.empty()) continue;
    // Split on "->" into a chain of node names.
    std::vector<std::string> chain;
    size_t pos = 0;
    while (true) {
      const size_t arrow = statement.find("->", pos);
      if (arrow == std::string::npos) {
        chain.emplace_back(Trim(statement.substr(pos)));
        break;
      }
      chain.emplace_back(Trim(statement.substr(pos, arrow - pos)));
      pos = arrow + 2;
    }
    for (const std::string& name : chain) {
      if (name.empty()) {
        return Status::InvalidArgument("malformed DAG statement: '" +
                                       statement + "'");
      }
      if (name.find_first_of(" \t") != std::string::npos) {
        return Status::InvalidArgument("node name contains whitespace: '" +
                                       name + "'");
      }
      note_name(name);
    }
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      edges.emplace_back(chain[i], chain[i + 1]);
    }
  }
  return CausalDag::Create(std::move(names), edges);
}

Result<CausalDag> ReadDagFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream content;
  content << in.rdbuf();
  return ParseDag(content.str());
}

std::string DagToText(const CausalDag& dag) {
  std::string out;
  std::vector<bool> mentioned(dag.num_nodes(), false);
  for (size_t u = 0; u < dag.num_nodes(); ++u) {
    for (size_t v : dag.Children(u)) {
      out += dag.name(u) + " -> " + dag.name(v) + ";\n";
      mentioned[u] = mentioned[v] = true;
    }
  }
  for (size_t v = 0; v < dag.num_nodes(); ++v) {
    if (!mentioned[v]) out += dag.name(v) + ";\n";
  }
  return out;
}

}  // namespace faircap
