// CateStatsEngine: per-treatment sufficient-statistics engine behind the
// batch CATE API. Step-2 mining scores every candidate treatment three
// times — overall, protected, and non-protected CATE — and the legacy
// per-call estimator redoes the full design-matrix / stratum pass over the
// table each time. But for all three estimation methods the estimate for
// ANY subgroup is a function of per-joint-confounder-stratum, per-arm
// sufficient statistics:
//
//   * stratified:  per-(stratum, arm) {n, Σy, Σy²} reproduce the exact
//     matching estimator bit for bit;
//   * regression:  within a stratum the one-hot confounder block of the
//     design row is constant, so X'X / X'y / y'y assemble from the same
//     cell stats (plus small per-cell numeric-confounder moments);
//   * IPW:         the propensity design is also cell-constant when the
//     confounders are categorical, so the logistic fit runs on grouped
//     per-cell counts and the Hajek sums come from the cell stats.
//
// The engine therefore partitions the table ONCE per adjustment set into
// joint-confounder cells (ConfounderPartition, shared across treatments
// with the same treatment attributes) and holds the treated mask via
// shared ownership from the PredicateIndex. Any subgroup bitmap — rule
// coverage, protected, non-protected — is answered by slicing: one
// word-at-a-time pass ANDs the group mask against the partition,
// accumulates the cell stats, and solves the small per-subgroup systems
// instead of rebuilding design matrices. The batch entry point answers
// the overall / protected / non-protected triple from a single pass by
// splitting the accumulation on the protected bit, so the non-protected
// bitmap is never materialized at all.

#ifndef FAIRCAP_CAUSAL_CATE_STATS_ENGINE_H_
#define FAIRCAP_CAUSAL_CATE_STATS_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "causal/estimator.h"
#include "dataframe/dataframe.h"
#include "util/result.h"

namespace faircap {

class ShardPlan;    // mining/shard_plan.h
class TaskGroup;    // util/task_scheduler.h

/// Quantile bin edges for a numeric confounder (the stratified method's
/// binning). Shared by the legacy estimator's StratumIds and the
/// partition build so the two can never drift.
std::vector<double> QuantileBinEdges(const Column& col, size_t bins);

/// Hajek (self-normalized) IPW from materialized per-row propensity
/// design rows: fits the logistic propensity model, clips, and assembles
/// the weighted means and their linearized variance. The single shared
/// implementation behind the legacy per-call IPW estimator and the
/// engine's numeric-confounder fallback — the two must stay bit-for-bit
/// identical for the pinning tests to mean anything.
Result<CateEstimate> HajekIpwFromRows(const std::vector<double>& design,
                                      size_t n, size_t p,
                                      const std::vector<double>& labels,
                                      const std::vector<double>& outcomes,
                                      const std::vector<uint8_t>& is_treated_row,
                                      double propensity_clip);

/// Immutable partition of a table's rows into joint-confounder cells for
/// one adjustment set: rows agreeing on every categorical confounder code,
/// every numeric confounder quantile bin, and every confounder null flag
/// share a cell. Depends only on (table, outcome, adjustment set, binning
/// options) — NOT on the treatment — so all treatments over the same
/// attributes share one partition via shared_ptr.
class ConfounderPartition {
 public:
  /// One regression design feature (mirrors the legacy enumeration:
  /// categorical levels 1..k-1 one-hot, numeric attrs one column each).
  struct Feature {
    size_t attr;
    bool categorical;
    int32_t code;
  };

  struct Cell {
    /// The legacy stratified-estimator joint stratum id; -1 when any
    /// confounder is null in this cell (such rows are excluded from
    /// stratification but kept, zero-featured, by regression and IPW).
    int64_t stratum_id = -1;
    /// Design feature indices that are 1 for every row of this cell
    /// (ascending). Numeric features are per-row, not per-cell.
    std::vector<uint32_t> onehot;
  };

  static std::shared_ptr<const ConfounderPartition> Build(
      const DataFrame& df, size_t outcome_attr,
      const std::vector<size_t>& adjustment, const CateOptions& options);

  /// Copy-extends `base` (built over a prefix of `df`'s rows) to cover all
  /// of `df` after an append, producing exactly the partition Build would
  /// return over the concatenated table: delta rows are interned into the
  /// same cell table (new cells appended in first-appearance order, the
  /// order a cold build would discover them), the outcome caches grow, and
  /// the integer-outcome status / overflow budget are re-derived from the
  /// combined value range. Returns nullptr when the partition is NOT
  /// extendable and must be rebuilt cold: any numeric confounder (its
  /// quantile edges shift with the new rows) or a categorical confounder
  /// that gained categories (the radix bases and one-hot feature layout
  /// change). `base` itself is never mutated — holders of the old
  /// partition keep a consistent snapshot.
  static std::shared_ptr<const ConfounderPartition> ExtendFor(
      const ConfounderPartition& base, const DataFrame& df);

  /// Copy-free variant of ExtendFor for the quiescent append path:
  /// interns rows [rows_covered(), df.num_rows()) into this partition
  /// directly. Returns false — leaving the partition untouched — under
  /// the same non-extendable conditions as ExtendFor. Every holder of
  /// the partition observes the extension, so the caller must guarantee
  /// no estimation queries are in flight (the IncrementalSession::Append
  /// contract). This is what keeps a 1% append at delta cost: ExtendFor
  /// pays an O(N) copy of the per-row arrays per adjustment set before
  /// interning a single delta row.
  bool ExtendInPlace(const DataFrame& df);

  const std::vector<Feature>& features() const { return features_; }
  /// For numeric feature j (j-th numeric confounder): its index into
  /// features().
  const std::vector<uint32_t>& numeric_features() const {
    return numeric_features_;
  }
  size_t num_numeric() const { return numeric_features_.size(); }
  /// Cell index per row; -1 where the outcome is null (row excluded from
  /// every estimator).
  const std::vector<int32_t>& cell_of_row() const { return cell_of_row_; }
  const std::vector<Cell>& cells() const { return cells_; }
  /// Cells with stratum_id >= 0, ascending by stratum_id — the iteration
  /// order of the legacy stratified combine (a std::map over ids).
  const std::vector<uint32_t>& cells_by_stratum() const {
    return cells_by_stratum_;
  }
  /// Outcome value per row (unspecified where null).
  const std::vector<double>& outcome() const { return outcome_; }
  /// True iff every outcome value is integer-valued with |y| <= 2^31 - 1
  /// — the precondition of the engine's exact int64 accumulation path.
  bool outcome_is_integer() const { return outcome_integer_; }
  /// Integer outcome cache (nulls as 0); empty unless outcome_is_integer.
  const std::vector<int64_t>& outcome_i64() const { return outcome_i64_; }
  /// Overflow guard for the integer path: the largest row count for which
  /// every per-slot partial |Σy| and Σy² stays below 2^53 given this
  /// column's max |y| — below it the int64 totals, their double
  /// conversions, AND the legacy ascending-row FP sums are all exact, so
  /// the two paths are bit-identical. 0 unless outcome_is_integer.
  uint64_t safe_int_rows() const { return safe_int_rows_; }
  /// Cached numeric confounder column per numeric feature, with nulls as
  /// 0.0 — exactly the value the legacy design-matrix build would use.
  const std::vector<std::vector<double>>& numeric_values() const {
    return numeric_values_;
  }
  /// numeric_values() as a raw pointer span, precomputed at build so the
  /// per-shard accumulation passes need no per-call heap allocation.
  const double* const* numeric_value_ptrs() const {
    return numeric_value_ptrs_.data();
  }

  /// Heap bytes held (row arrays + cell table), for cache budgeting.
  size_t bytes() const { return bytes_; }

  /// Rows of the source table this partition covers (its num_rows at
  /// Build/ExtendFor time). After an append the table outgrows this and
  /// the partition is stale until extended or rebuilt.
  size_t rows_covered() const { return rows_covered_; }

  /// Identity of this partition's cell numbering: fresh per Build, kept
  /// by ExtendFor. Two partitions with the same lineage assign identical
  /// cell ids to their common row prefix, so sufficient statistics
  /// accumulated against the older one merge soundly with deltas
  /// accumulated against the newer (core/incremental.h relies on this; a
  /// cold rebuild gets a new lineage and invalidates such caches).
  uint64_t lineage_id() const { return lineage_id_; }

 private:
  ConfounderPartition() = default;

  /// Per-confounder layout persisted from Build: design feature span,
  /// the radix base of the legacy stratum id, and (numeric) the quantile
  /// edges — everything InternRows needs to intern further rows with the
  /// exact signatures Build used.
  struct ConfLayout {
    size_t attr = 0;
    bool categorical = false;
    int64_t base = 0;
    uint32_t feature_base = 0;
    /// Category count at build (0 for numeric): extension is only sound
    /// while the column still has exactly this many categories.
    size_t num_categories = 0;
    std::vector<double> edges;  ///< numeric confounders only
  };

  /// Shared tail of Build and ExtendFor: interns rows [row_begin, n) into
  /// the cell table and outcome caches, then re-derives the sorted
  /// stratum order, integer-outcome budget, and byte accounting. The
  /// feature layout (confs_), numeric caches, and rows [0, row_begin)
  /// must already be in place.
  void InternRows(const DataFrame& df, size_t row_begin);

  std::vector<Feature> features_;
  std::vector<uint32_t> numeric_features_;
  std::vector<int32_t> cell_of_row_;
  std::vector<Cell> cells_;
  std::vector<uint32_t> cells_by_stratum_;
  std::vector<double> outcome_;
  bool outcome_integer_ = false;
  std::vector<int64_t> outcome_i64_;
  uint64_t safe_int_rows_ = 0;
  std::vector<std::vector<double>> numeric_values_;
  std::vector<const double*> numeric_value_ptrs_;
  size_t bytes_ = 0;

  // Build-time inputs and intern state persisted so ExtendFor can resume
  // the interning where Build stopped (same radix bases, same map) and
  // verify extendability against the post-append table.
  size_t outcome_attr_ = 0;
  std::vector<ConfLayout> confs_;
  /// Joint-signature -> cell index intern map (lookup/insert only — never
  /// iterated, so the unordered order cannot leak into results).
  std::unordered_map<std::string, int32_t> cell_ids_;
  /// Largest |y| seen (integer outcomes only) — re-derives safe_int_rows_
  /// when delta rows widen the range.
  int64_t max_abs_y_ = 0;
  size_t rows_covered_ = 0;
  uint64_t lineage_id_ = 0;
};

/// The per-treatment engine: treated mask + confounder partition +
/// options. Immutable after construction, so concurrent subgroup queries
/// need no locking; the estimator caches engines per treatment with the
/// same shared-ownership/LRU discipline the PredicateIndex uses for
/// conjunction masks.
class CateStatsEngine {
 public:
  /// `df` must outlive the engine. `treated` and `partition` are shared
  /// (the mask typically lives in the table's PredicateIndex; the
  /// partition in the estimator's per-adjustment cache).
  CateStatsEngine(const DataFrame* df, CateOptions options,
                  std::vector<size_t> adjustment,
                  std::shared_ptr<const Bitmap> treated,
                  std::shared_ptr<const ConfounderPartition> partition);

  /// One pass over `group` rows answers all requested subgroups. When
  /// `protected_mask` is non-null the accumulation is split on the
  /// protected bit, yielding group ∩ protected and group ∩ ¬protected
  /// without materializing either bitmap. `min_group_size` floors the
  /// overall estimate's arms, `min_subgroup_size` the subgroup ones.
  /// With `skip_subgroups_unless_positive`, the subgroup systems are only
  /// solved when the overall estimate succeeded with CATE > 0 (the
  /// Section 5.2 lattice prunes on the overall sign, so subgroup solves
  /// for non-positive treatments would be wasted work).
  CateSubgroupEstimates EstimateSubgroups(
      const Bitmap& group, const Bitmap* protected_mask,
      size_t min_group_size, size_t min_subgroup_size,
      bool skip_subgroups_unless_positive = false) const;

  /// Sharded variant: the accumulation pass fans out as child tasks of
  /// `tasks` (one per shard of `plan`), each walking only its word-aligned
  /// word range; shard partials merge by addition in ascending shard
  /// order before the solves. Because TaskGroup::Wait() helps (executes
  /// pending tasks instead of blocking), this is legal from inside
  /// another task on the same scheduler — the Step-2 pattern x shard
  /// graph nests exactly this call under each pattern task. The merge
  /// order is fixed by the plan — not by thread scheduling — so a run is
  /// deterministic for a given shard count, and all integer statistics
  /// (arm counts, support) are exactly the unsharded values regardless
  /// of shard count. With a null/schedulerless group or a single-shard
  /// plan this is the unsharded path, bit for bit. `tasks` must be
  /// quiescent (no pending tasks): the call uses it as its completion
  /// barrier.
  CateSubgroupEstimates EstimateSubgroups(
      const Bitmap& group, const Bitmap* protected_mask,
      size_t min_group_size, size_t min_subgroup_size,
      bool skip_subgroups_unless_positive, const ShardPlan* plan,
      TaskGroup* tasks) const;

  /// Single-subgroup slice (the batch path with no protected split).
  Result<CateEstimate> EstimateSubgroup(const Bitmap& group,
                                        size_t min_group_size) const;

  /// Per-subgroup sufficient statistics, indexed cell-major with two arms
  /// (idx = 2*cell + arm; arm 1 = treated). Numeric moment blocks are
  /// allocated only for the regression method with numeric confounders.
  /// The stat arrays carry two scratch slots past 2C that the integer
  /// kernels' branchless dense loop steers excluded rows into; solvers
  /// and merges never read them. Public so the incremental-mining layer
  /// can cache accumulated stats across appends and merge deltas in
  /// (core/incremental.h); treat as opaque outside this class.
  struct Accum {
    size_t rows = 0;  ///< subgroup rows with non-null outcome
    size_t n_treated = 0;
    size_t n_control = 0;
    std::vector<uint32_t> n;    ///< [2C + 2]
    std::vector<double> sy;     ///< [2C + 2]
    std::vector<double> syy;    ///< [2C + 2]
    std::vector<double> zsum;   ///< [2C * m]   Σ z_j
    std::vector<double> zysum;  ///< [2C * m]   Σ z_j y
    std::vector<double> zzsum;  ///< [2C * mm]  Σ z_i z_j, upper-tri packed
    /// Int64 staging for the exact fast path, [2C + 2]; allocated only
    /// when the engine enables it. int_valid marks isy/isyy (not sy/syy)
    /// as the authoritative outcome sums — cleared when the overflow
    /// guard flushed them into the FP arrays mid-range.
    std::vector<int64_t> isy;
    std::vector<int64_t> isyy;
    bool int_valid = false;
  };

  /// The overall / protected / non-protected accumulation triple for one
  /// group bitmap — the cacheable unit of the incremental path. When
  /// `split` is false the protected/nonprotected accums are untouched
  /// (no protected mask was supplied). `rows_covered` records the table
  /// size the accumulation has seen; after an append, AccumulateDelta
  /// over [rows_covered, num_rows) merged in brings it current.
  struct SubgroupAccums {
    Accum overall;
    Accum prot;
    Accum nonprot;
    bool split = false;
    size_t rows_covered = 0;
  };

  /// Full accumulation pass over `group` (optionally sharded across
  /// `plan` via `tasks`, partials merged in ascending shard order — the
  /// same pass EstimateSubgroups runs before its solves). The protected
  /// split is always filled when `protected_mask` is non-null, so a
  /// cached result can serve later solves regardless of which subgroups
  /// they request.
  SubgroupAccums AccumulateSubgroups(const Bitmap& group,
                                     const Bitmap* protected_mask,
                                     const ShardPlan* plan,
                                     TaskGroup* tasks) const;

  /// Accumulates ONLY rows >= row_begin of `group` — the delta tail of an
  /// append. Because delta rows are strictly after all resident rows,
  /// merging this into an accumulation that covered [0, row_begin)
  /// reproduces the full-table pass: exactly on the int64 path, and to
  /// shard-merge precision (the PR-4 contract) on the FP path.
  SubgroupAccums AccumulateDelta(const Bitmap& group,
                                 const Bitmap* protected_mask,
                                 size_t row_begin) const;

  /// `into += from` over all three accums (shard-merge semantics; exact
  /// while the combined counts stay under the int64 budget). Advances
  /// into->rows_covered to from's.
  void MergeSubgroupAccums(SubgroupAccums* into,
                           const SubgroupAccums& from) const;

  /// Solves the overall / protected / non-protected estimates from
  /// already-accumulated stats, byte-identical to EstimateSubgroups over
  /// the same group. Works on copies of the accums: the caller's stats
  /// stay int-valid and mergeable (EnsureFp is destructive). `group` /
  /// `protected_mask` are needed only by the IPW row-fallback re-walk.
  CateSubgroupEstimates SolveFromAccums(
      const SubgroupAccums& accums, const Bitmap& group,
      const Bitmap* protected_mask, size_t min_group_size,
      size_t min_subgroup_size,
      bool skip_subgroups_unless_positive = false) const;

  const Bitmap& treated() const { return *treated_; }
  const ConfounderPartition& partition() const { return *partition_; }
  const std::vector<size_t>& adjustment() const { return adjustment_; }
  const CateOptions& options() const { return options_; }

  /// Engine-held bytes excluding the shared partition and treated mask.
  size_t bytes() const;

 private:
  /// Which rows a solve refers to (needed only by the IPW row-level
  /// fallback, which must re-walk the subgroup).
  struct Slice {
    const Bitmap* group = nullptr;
    const Bitmap* protected_mask = nullptr;  ///< null: no protected filter
    bool protected_member = false;           ///< filter polarity
  };

  void Accumulate(const Bitmap& group, const Bitmap* protected_mask,
                  Accum* overall, Accum* prot, Accum* nonprot) const;

  /// Accumulation restricted to bitmap words [word_begin, word_end) — the
  /// per-shard view. Accumulate() is exactly the full-range call, so the
  /// single-shard plan reproduces the unsharded pass bit for bit.
  void AccumulateRange(const Bitmap& group, const Bitmap* protected_mask,
                       size_t word_begin, size_t word_end, Accum* overall,
                       Accum* prot, Accum* nonprot) const;

  /// Element-wise `into += from` over every statistic (counts, outcome
  /// sums, numeric moments) — the shard-merge step. Integer partials
  /// merge in int64 while the combined row count stays under the
  /// partition's safe_int_rows budget; past it (or when either side
  /// already fell back) both sides are converted exactly to FP first,
  /// which reproduces the pure-FP merge bit for bit.
  void MergeAccum(Accum* into, const Accum& from) const;

  /// Resize an accum that predates delta-interned cells up to the current
  /// partition slot count, zeroing the relocated kernel scratch slots.
  void GrowAccum(Accum* acc) const;

  /// Converts an int-valid accum's outcome sums into its FP arrays (an
  /// exact conversion under the safe_int_rows guard) and clears
  /// int_valid. No-op on FP-valid accums. Solvers read only sy/syy, so
  /// every accum is funneled through this before SolveSubgroups/Solve.
  static void EnsureFp(Accum* acc);

  /// The shared triple-solve tail of both EstimateSubgroups overloads.
  CateSubgroupEstimates SolveSubgroups(
      const Accum& overall, const Accum& prot, const Accum& nonprot,
      const Bitmap& group, const Bitmap* protected_mask,
      size_t min_group_size, size_t min_subgroup_size,
      bool skip_subgroups_unless_positive) const;

  Result<CateEstimate> Solve(const Accum& acc, const Slice& slice,
                             size_t min_group_size) const;
  Result<CateEstimate> SolveRegression(const Accum& acc,
                                       size_t min_group_size) const;
  Result<CateEstimate> SolveStratified(const Accum& acc,
                                       size_t min_group_size) const;
  Result<CateEstimate> SolveIpw(const Accum& acc, const Slice& slice,
                                size_t min_group_size) const;
  /// Legacy-identical per-row IPW (numeric confounders vary within a
  /// cell, so the propensity design is not cell-constant); still serves
  /// features from the partition's cached columns.
  Result<CateEstimate> SolveIpwRows(const Slice& slice,
                                    size_t min_group_size) const;

  bool need_moments() const {
    return options_.method == CateMethod::kRegression &&
           partition_->num_numeric() > 0;
  }
  /// The exact int64 accumulation path applies when the outcome column is
  /// integer-valued and no FP moment blocks ride along in the same pass.
  bool int_path_enabled() const {
    return partition_->outcome_is_integer() && !need_moments() &&
           !options_.disable_int_fast_path;
  }
  Accum MakeAccum() const;

  const DataFrame* df_;
  CateOptions options_;
  std::vector<size_t> adjustment_;
  std::shared_ptr<const Bitmap> treated_;
  std::shared_ptr<const ConfounderPartition> partition_;
};

}  // namespace faircap

#endif  // FAIRCAP_CAUSAL_CATE_STATS_ENGINE_H_
