#include "causal/cate_stats_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include <cassert>

#include "causal/linear_model.h"
#include "causal/logistic.h"
#include "mining/shard_plan.h"
#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/simd/simd.h"
#include "util/task_scheduler.h"

namespace faircap {

std::vector<double> QuantileBinEdges(const Column& col, size_t bins) {
  std::vector<double> values;
  values.reserve(col.size());
  for (size_t r = 0; r < col.size(); ++r) {
    if (!col.IsNull(r)) values.push_back(col.numeric(r));
  }
  // Partial selection per edge instead of a full sort: the edge positions
  // are ascending, so each nth_element works on the suffix the previous
  // one left behind (everything before `prev` is already <= that edge).
  // O(n * bins) expected vs O(n log n), and identical edge values.
  std::vector<double> edges;
  size_t prev = 0;
  for (size_t b = 1; b < bins && !values.empty(); ++b) {
    const size_t pos = values.size() * b / bins;
    std::nth_element(values.begin() + prev, values.begin() + pos,
                     values.end());
    edges.push_back(values[pos]);
    prev = pos;
  }
  return edges;
}

Result<CateEstimate> HajekIpwFromRows(
    const std::vector<double>& design, size_t n, size_t p,
    const std::vector<double>& labels, const std::vector<double>& outcomes,
    const std::vector<uint8_t>& is_treated_row, double propensity_clip) {
  FAIRCAP_ASSIGN_OR_RETURN(const LogisticFit propensity,
                           FitLogistic(design, n, p, labels));

  // Hajek (self-normalized) IPW with clipped propensities.
  const double clip = propensity_clip;
  double sum_w1 = 0.0, sum_w1y = 0.0, sum_w0 = 0.0, sum_w0y = 0.0;
  std::vector<double> w1_values, w0_values;  // for the variance estimate
  std::vector<double> y1_values, y0_values;
  size_t n_treated = 0, n_control = 0;
  for (size_t r = 0; r < n; ++r) {
    const double e = std::clamp(
        PredictLogistic(propensity.beta, &design[r * p]), clip, 1.0 - clip);
    if (is_treated_row[r] != 0) {
      const double w = 1.0 / e;
      sum_w1 += w;
      sum_w1y += w * outcomes[r];
      w1_values.push_back(w);
      y1_values.push_back(outcomes[r]);
      ++n_treated;
    } else {
      const double w = 1.0 / (1.0 - e);
      sum_w0 += w;
      sum_w0y += w * outcomes[r];
      w0_values.push_back(w);
      y0_values.push_back(outcomes[r]);
      ++n_control;
    }
  }
  // An empty arm would divide by a zero weight sum below and return a
  // NaN estimate that poisons every downstream comparison; fail loudly
  // instead (callers floor arm sizes, but the guard must not rely on it).
  if (n_treated == 0 || n_control == 0) {
    return Status::FailedPrecondition(
        "IPW requires both arms non-empty: " + std::to_string(n_treated) +
        " treated / " + std::to_string(n_control) + " control rows");
  }
  const double mean1 = sum_w1y / sum_w1;
  const double mean0 = sum_w0y / sum_w0;

  // Approximate variance of each weighted mean via the weighted residual
  // sum of squares (Hajek linearization).
  const auto weighted_mean_var = [](const std::vector<double>& weights,
                                    const std::vector<double>& values,
                                    double mean, double weight_sum) {
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      const double d = weights[i] * (values[i] - mean);
      acc += d * d;
    }
    return acc / (weight_sum * weight_sum);
  };

  CateEstimate est;
  est.cate = mean1 - mean0;
  est.std_error =
      std::sqrt(weighted_mean_var(w1_values, y1_values, mean1, sum_w1) +
                weighted_mean_var(w0_values, y0_values, mean0, sum_w0));
  est.n_treated = n_treated;
  est.n_control = n_control;
  return est;
}

std::shared_ptr<const ConfounderPartition> ConfounderPartition::Build(
    const DataFrame& df, size_t outcome_attr,
    const std::vector<size_t>& adjustment, const CateOptions& options) {
  std::shared_ptr<ConfounderPartition> part(new ConfounderPartition());
  const size_t n = df.num_rows();
  part->outcome_attr_ = outcome_attr;
  // Fresh cell-numbering identity; ExtendFor inherits it via the copy.
  static std::atomic<uint64_t> next_lineage{1};
  part->lineage_id_ = next_lineage.fetch_add(1, std::memory_order_relaxed);

  // Per-confounder layout: design feature span (legacy enumeration order)
  // and the radix base of the legacy stratum id. Persisted so ExtendFor
  // can intern appended rows with the exact same signatures.
  part->confs_.reserve(adjustment.size());
  for (size_t attr : adjustment) {
    const Column& col = df.column(attr);
    ConfLayout info;
    info.attr = attr;
    info.categorical = col.type() == AttrType::kCategorical;
    info.feature_base = static_cast<uint32_t>(part->features_.size());
    if (info.categorical) {
      // Drop the first level as the reference category.
      for (size_t code = 1; code < col.num_categories(); ++code) {
        part->features_.push_back({attr, true, static_cast<int32_t>(code)});
      }
      info.num_categories = col.num_categories();
      info.base = static_cast<int64_t>(col.num_categories() + 1);
    } else {
      part->numeric_features_.push_back(
          static_cast<uint32_t>(part->features_.size()));
      part->features_.push_back({attr, false, 0});
      info.edges = QuantileBinEdges(
          col, std::max<size_t>(1, options.numeric_confounder_bins));
      info.base = static_cast<int64_t>(info.edges.size() + 2);
    }
    part->confs_.push_back(std::move(info));
  }

  // Cache the numeric confounder columns with nulls as 0.0 — exactly the
  // value the legacy design-matrix build substitutes.
  part->numeric_values_.resize(part->numeric_features_.size());
  for (size_t j = 0; j < part->numeric_features_.size(); ++j) {
    const Column& col =
        df.column(part->features_[part->numeric_features_[j]].attr);
    std::vector<double>& vals = part->numeric_values_[j];
    vals.resize(n);
    for (size_t r = 0; r < n; ++r) {
      vals[r] = col.IsNull(r) ? 0.0 : col.numeric(r);
    }
  }
  // Raw pointer span over the cached columns (stable: the column vectors
  // are never resized after this point) — accumulation passes read it
  // directly instead of rebuilding a pointer array per call.
  part->numeric_value_ptrs_.reserve(part->numeric_values_.size());
  for (const auto& vals : part->numeric_values_) {
    part->numeric_value_ptrs_.push_back(vals.data());
  }

  part->InternRows(df, /*row_begin=*/0);
  return part;
}

std::shared_ptr<const ConfounderPartition> ConfounderPartition::ExtendFor(
    const ConfounderPartition& base, const DataFrame& df) {
  if (df.num_rows() < base.rows_covered_) return nullptr;  // not an append
  // Numeric confounders are never extendable: their quantile edges (and
  // with them every row's bin signature) shift with the new rows.
  if (!base.numeric_features_.empty()) return nullptr;
  // A categorical confounder that gained categories changes the radix
  // bases and the one-hot feature layout — cold rebuild required.
  for (const ConfLayout& info : base.confs_) {
    if (df.column(info.attr).num_categories() != info.num_categories) {
      return nullptr;
    }
  }
  // Copy-and-extend: holders of `base` keep a consistent snapshot. The
  // default copy is sound here because numeric_value_ptrs_ (the only
  // self-referential member) is empty on the extendable path.
  std::shared_ptr<ConfounderPartition> part(new ConfounderPartition(base));
  part->InternRows(df, base.rows_covered_);
  return part;
}

bool ConfounderPartition::ExtendInPlace(const DataFrame& df) {
  if (df.num_rows() < rows_covered_) return false;  // not an append
  if (!numeric_features_.empty()) return false;
  for (const ConfLayout& info : confs_) {
    if (df.column(info.attr).num_categories() != info.num_categories) {
      return false;
    }
  }
  InternRows(df, rows_covered_);
  return true;
}

void ConfounderPartition::InternRows(const DataFrame& df, size_t row_begin) {
  const size_t n = df.num_rows();

  // Intern each row's joint signature (code / quantile bin / null flag per
  // confounder) into a dense cell id. Rows with a null outcome stay at
  // cell -1: every estimator excludes them. New cells are appended in
  // first-appearance order, which for an extension (row_begin > 0) is the
  // order a cold build over the concatenated table would discover them.
  const Column& outcome = df.column(outcome_attr_);
  // Reserve ~12.5% headroom past the current table whenever the per-row
  // caches must grow: an append of up to that fraction then extends in
  // place with no O(N) reallocation copy — the same amortized-reserve
  // policy Column::AppendRow uses. (resize alone would also amortize via
  // capacity doubling, but doubling touches 2N fresh pages exactly on
  // the latency-sensitive first append.)
  if (outcome_.capacity() < n) outcome_.reserve(n + n / 8);
  if (cell_of_row_.capacity() < n) cell_of_row_.reserve(n + n / 8);
  outcome_.resize(n);
  cell_of_row_.resize(n, -1);
  std::vector<int32_t> sig(confs_.size());
  std::string key;
  for (size_t r = row_begin; r < n; ++r) {
    const bool outcome_null = outcome.IsNull(r);
    outcome_[r] = outcome_null ? 0.0 : outcome.numeric(r);
    cell_of_row_[r] = -1;
    if (outcome_null) continue;
    for (size_t a = 0; a < confs_.size(); ++a) {
      const ConfLayout& info = confs_[a];
      const Column& col = df.column(info.attr);
      if (col.IsNull(r)) {
        sig[a] = -1;
      } else if (info.categorical) {
        sig[a] = col.code(r);
      } else {
        sig[a] = static_cast<int32_t>(
            std::upper_bound(info.edges.begin(), info.edges.end(),
                             col.numeric(r)) -
            info.edges.begin());
      }
    }
    key.assign(reinterpret_cast<const char*>(sig.data()),
               sig.size() * sizeof(int32_t));
    const auto [it, inserted] =
        cell_ids_.emplace(key, static_cast<int32_t>(cells_.size()));
    if (inserted) {
      Cell cell;
      int64_t id = 0;
      bool any_null = false;
      for (size_t a = 0; a < confs_.size(); ++a) {
        if (sig[a] < 0) {
          any_null = true;
          continue;
        }
        id = id * confs_[a].base + sig[a];
        if (confs_[a].categorical && sig[a] >= 1) {
          cell.onehot.push_back(confs_[a].feature_base +
                                static_cast<uint32_t>(sig[a] - 1));
        }
      }
      cell.stratum_id = any_null ? -1 : id;
      cells_.push_back(std::move(cell));
    }
    cell_of_row_[r] = it->second;
  }

  // Detect integer-valued outcomes (the german/stackoverflow binary
  // outcomes and integer synthetic knobs) once per partition: the batch
  // engine then accumulates {Σy, Σy²} in int64 — exact, so vector tiers
  // may reassociate freely — and converts to double only at solve time.
  // The 2^31 magnitude cap keeps y² inside int64; safe_int_rows_ bounds
  // how many rows any partial may absorb before |Σy| or Σy² could reach
  // 2^53, past which the double conversion (and the legacy FP sum itself)
  // would stop being exact. Nulls sit at 0.0 in outcome_, which is
  // integer, so scanning the whole cache is equivalent to scanning the
  // non-null rows. On an extension only the delta rows are scanned: the
  // persisted max_abs_y_ already covers [0, row_begin), and a base that
  // was already non-integer stays so (exactly what a cold scan over the
  // concatenated rows would conclude).
  if (row_begin == 0) {
    outcome_integer_ = true;
    max_abs_y_ = 0;
  }
  if (outcome_integer_) {
    for (size_t r = row_begin; r < n; ++r) {
      const double v = outcome_[r];
      if (!(v >= -2147483647.0 && v <= 2147483647.0) ||
          static_cast<double>(static_cast<int64_t>(v)) != v) {
        outcome_integer_ = false;
        break;
      }
      const int64_t iv = static_cast<int64_t>(v);
      max_abs_y_ = std::max(max_abs_y_, iv < 0 ? -iv : iv);
    }
  }
  if (outcome_integer_) {
    if (outcome_i64_.capacity() < n) outcome_i64_.reserve(n + n / 8);
    outcome_i64_.resize(n);
    for (size_t r = row_begin; r < n; ++r) {
      outcome_i64_[r] = static_cast<int64_t>(outcome_[r]);
    }
    const int64_t max_mag = std::max(max_abs_y_, max_abs_y_ * max_abs_y_);
    safe_int_rows_ =
        max_mag > 0 ? ((uint64_t{1} << 53) - 1) / static_cast<uint64_t>(max_mag)
                    : ~uint64_t{0};
  } else {
    // A delta row with a fractional outcome demotes an integer base: the
    // engine's int64 path is off for the combined table, exactly as a
    // cold build would decide.
    outcome_i64_.clear();
    safe_int_rows_ = 0;
  }

  // Re-derive the sorted stratum order over the (possibly grown) cell
  // table. Stratum ids are unique across cells (the radix encoding is
  // injective for non-null signatures), so the sort is deterministic and
  // matches a cold build's order.
  cells_by_stratum_.clear();
  cells_by_stratum_.reserve(cells_.size());
  for (uint32_t c = 0; c < cells_.size(); ++c) {
    if (cells_[c].stratum_id >= 0) cells_by_stratum_.push_back(c);
  }
  std::sort(cells_by_stratum_.begin(), cells_by_stratum_.end(),
            [&](uint32_t a, uint32_t b) {
              return cells_[a].stratum_id < cells_[b].stratum_id;
            });

  size_t bytes = cell_of_row_.size() * sizeof(int32_t) +
                 outcome_.size() * sizeof(double) +
                 outcome_i64_.size() * sizeof(int64_t) +
                 cells_by_stratum_.size() * sizeof(uint32_t);
  for (const auto& vals : numeric_values_) {
    bytes += vals.size() * sizeof(double);
  }
  for (const Cell& cell : cells_) {
    bytes += sizeof(Cell) + cell.onehot.size() * sizeof(uint32_t);
  }
  // Approximate intern-map footprint (key bytes + node overhead); kept in
  // the budgeted total now that the map persists for extension.
  bytes += cell_ids_.size() * (confs_.size() * sizeof(int32_t) + 64);
  bytes_ = bytes;
  rows_covered_ = n;
}

CateStatsEngine::CateStatsEngine(
    const DataFrame* df, CateOptions options, std::vector<size_t> adjustment,
    std::shared_ptr<const Bitmap> treated,
    std::shared_ptr<const ConfounderPartition> partition)
    : df_(df),
      options_(options),
      adjustment_(std::move(adjustment)),
      treated_(std::move(treated)),
      partition_(std::move(partition)) {}

size_t CateStatsEngine::bytes() const {
  // The treated mask is pinned by this engine via shared ownership (the
  // PredicateIndex may have evicted its own copy), so its words count
  // against whoever budgets the engine.
  const size_t mask_bytes = ((treated_->size() + 63) / 64) * sizeof(uint64_t);
  return sizeof(CateStatsEngine) + adjustment_.size() * sizeof(size_t) +
         mask_bytes;
}

CateStatsEngine::Accum CateStatsEngine::MakeAccum() const {
  Accum acc;
  const size_t slots = partition_->cells().size() * 2;
  // Two write-only scratch slots past the real ones absorb the integer
  // kernels' branchless excluded-row stores (simd.h, CateSink).
  acc.n.assign(slots + 2, 0);
  acc.sy.assign(slots + 2, 0.0);
  acc.syy.assign(slots + 2, 0.0);
  if (need_moments()) {
    const size_t m = partition_->num_numeric();
    acc.zsum.assign(slots * m, 0.0);
    acc.zysum.assign(slots * m, 0.0);
    acc.zzsum.assign(slots * (m * (m + 1) / 2), 0.0);
  }
  if (int_path_enabled()) {
    acc.isy.assign(slots + 2, 0);
    acc.isyy.assign(slots + 2, 0);
  }
  return acc;
}

void CateStatsEngine::Accumulate(const Bitmap& group,
                                 const Bitmap* protected_mask, Accum* overall,
                                 Accum* prot, Accum* nonprot) const {
  AccumulateRange(group, protected_mask, 0, group.num_words(), overall, prot,
                  nonprot);
}

void CateStatsEngine::AccumulateRange(const Bitmap& group,
                                      const Bitmap* protected_mask,
                                      size_t word_begin, size_t word_end,
                                      Accum* overall, Accum* prot,
                                      Accum* nonprot) const {
  // All three bitmaps are walked in lockstep over one word range; a
  // mismatched universe (a shard-view bug) would otherwise read out of
  // bounds of the shorter mask.
  assert(group.size() == treated_->size());
  assert(protected_mask == nullptr || protected_mask->size() == group.size());
  assert(word_end <= group.num_words());

  // The treated mask drives the arm bit and the group (plus optional
  // protected) masks the rows — three bitmaps walked word-at-a-time, 64
  // rows per load, through the runtime-dispatched accumulation kernel.
  // Integer-valued outcomes take the exact int64 path (associative, so
  // tiers reassociate freely); real-valued outcomes keep every float add
  // in the same ascending-row order per sink. Either way the result is
  // bit-identical at every SIMD level.
  const auto sink_of = [](Accum* acc) {
    simd::CateSink sink;
    sink.rows = &acc->rows;
    sink.n_treated = &acc->n_treated;
    sink.n_control = &acc->n_control;
    sink.n = acc->n.data();
    sink.sy = acc->sy.data();
    sink.syy = acc->syy.data();
    sink.zsum = acc->zsum.empty() ? nullptr : acc->zsum.data();
    sink.zysum = acc->zysum.empty() ? nullptr : acc->zysum.data();
    sink.zzsum = acc->zzsum.empty() ? nullptr : acc->zzsum.data();
    sink.isy = acc->isy.empty() ? nullptr : acc->isy.data();
    sink.isyy = acc->isyy.empty() ? nullptr : acc->isyy.data();
    return sink;
  };
  simd::CateAccumArgs args;
  args.group_words = group.words();
  args.treated_words = treated_->words();
  args.protected_words =
      protected_mask != nullptr ? protected_mask->words() : nullptr;
  args.cell_of_row = partition_->cell_of_row().data();
  args.outcome = partition_->outcome().data();
  args.num_numeric = partition_->num_numeric();
  args.moments = need_moments();
  args.zcols = args.moments ? partition_->numeric_value_ptrs() : nullptr;
  args.word_begin = word_begin;
  args.word_end = word_end;
  args.num_slots = partition_->cells().size() * 2;
  size_t dense_words = 0, sparse_words = 0;
  args.dense_words = &dense_words;
  args.sparse_words = &sparse_words;
  args.overall = sink_of(overall);
  if (protected_mask != nullptr) {
    args.prot = sink_of(prot);
    args.nonprot = sink_of(nonprot);
  }

  const bool int_path = int_path_enabled();
  const size_t rows_before = overall->rows;
  bool stayed_int = false;
  if (int_path) {
    args.outcome_i64 = partition_->outcome_i64().data();
    args.safe_rows = partition_->safe_int_rows();
    stayed_int = simd::ActiveKernels().cate_accumulate_int(args);
    overall->int_valid = stayed_int;
    if (protected_mask != nullptr) {
      prot->int_valid = stayed_int;
      nonprot->int_valid = stayed_int;
    }
  } else {
    simd::ActiveKernels().cate_accumulate(args);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& rows_counter =
      registry.GetCounter("simd.cate_accumulate_rows");
  rows_counter.Add(overall->rows - rows_before);
  if (stayed_int) {
    static obs::Counter& int_passes =
        registry.GetCounter("estimation.accumulate_path_int");
    int_passes.Increment();
    return;
  }
  if (int_path) {
    static obs::Counter& fallbacks =
        registry.GetCounter("estimation.accumulate_int_fallbacks");
    fallbacks.Increment();
  }
  if (dense_words >= sparse_words && dense_words > 0) {
    static obs::Counter& staged_passes =
        registry.GetCounter("estimation.accumulate_path_fp_staged");
    staged_passes.Increment();
  } else {
    static obs::Counter& sparse_passes =
        registry.GetCounter("estimation.accumulate_path_sparse");
    sparse_passes.Increment();
  }
}

Result<CateEstimate> CateStatsEngine::Solve(const Accum& acc,
                                            const Slice& slice,
                                            size_t min_group_size) const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  switch (options_.method) {
    case CateMethod::kRegression: {
      static obs::Counter& solves =
          registry.GetCounter("estimation.solve_regression");
      solves.Increment();
      return SolveRegression(acc, min_group_size);
    }
    case CateMethod::kStratified: {
      static obs::Counter& solves =
          registry.GetCounter("estimation.solve_stratified");
      solves.Increment();
      return SolveStratified(acc, min_group_size);
    }
    case CateMethod::kIpw:
      // The cell/row split is counted inside SolveIpw — only there is it
      // known whether the grouped-cell fit applies or the per-row
      // fallback runs.
      return SolveIpw(acc, slice, min_group_size);
  }
  return Status::Internal("unknown CATE method");
}

Result<CateEstimate> CateStatsEngine::SolveRegression(
    const Accum& acc, size_t min_group_size) const {
  if (acc.n_treated < min_group_size || acc.n_control < min_group_size) {
    return Status::FailedPrecondition(
        "insufficient overlap: " + std::to_string(acc.n_treated) +
        " treated / " + std::to_string(acc.n_control) + " control rows");
  }
  const auto& cells = partition_->cells();
  const auto& nf = partition_->numeric_features();
  const size_t m = partition_->num_numeric();
  const size_t mm = m * (m + 1) / 2;
  const size_t p = 2 + partition_->features().size();

  // Assemble X'X / X'y / y'y from the cell stats: within a cell the
  // design row is [1, arm, one-hot(c), z], with only z varying by row —
  // so every X'X entry is a weighted count, a z-moment, or a z-product
  // moment of the cell.
  std::vector<double> xtx(p * p, 0.0);
  std::vector<double> xty(p, 0.0);
  double yty = 0.0;
  for (size_t c = 0; c < cells.size(); ++c) {
    const auto& onehot = cells[c].onehot;
    for (int arm = 0; arm < 2; ++arm) {
      const size_t idx = c * 2 + static_cast<size_t>(arm);
      const uint32_t cnt = acc.n[idx];
      if (cnt == 0) continue;
      const double nd = static_cast<double>(cnt);
      const double sy = acc.sy[idx];
      xtx[0] += nd;
      if (arm != 0) {
        xtx[1] += nd;          // (0, T)
        xtx[p + 1] += nd;      // (T, T)
      }
      xty[0] += sy;
      if (arm != 0) xty[1] += sy;
      yty += acc.syy[idx];
      for (const uint32_t f : onehot) {
        const size_t col = 2 + f;
        xtx[col] += nd;                   // (0, f)
        if (arm != 0) xtx[p + col] += nd; // (T, f)
        xty[col] += sy;
      }
      for (size_t i = 0; i < onehot.size(); ++i) {
        for (size_t j = i; j < onehot.size(); ++j) {
          xtx[(2 + onehot[i]) * p + (2 + onehot[j])] += nd;
        }
      }
      if (m > 0) {
        const size_t zbase = idx * m;
        for (size_t j = 0; j < m; ++j) {
          const double sz = acc.zsum[zbase + j];
          const size_t colj = 2 + nf[j];
          xtx[colj] += sz;                   // (0, z_j)
          if (arm != 0) xtx[p + colj] += sz; // (T, z_j)
          for (const uint32_t f : onehot) {
            const size_t a = 2 + f;
            if (a <= colj) {
              xtx[a * p + colj] += sz;
            } else {
              xtx[colj * p + a] += sz;
            }
          }
          xty[colj] += acc.zysum[zbase + j];
        }
        const size_t zzbase = idx * mm;
        for (size_t i = 0, t = 0; i < m; ++i) {
          for (size_t j = i; j < m; ++j, ++t) {
            xtx[(2 + nf[i]) * p + (2 + nf[j])] += acc.zzsum[zzbase + t];
          }
        }
      }
    }
  }
  FAIRCAP_ASSIGN_OR_RETURN(
      const OlsFit fit,
      SolveNormalEquations(xtx, xty, yty, acc.rows, p, options_.ridge));
  CateEstimate est;
  est.cate = fit.beta[1];
  est.std_error = fit.std_errors[1];
  est.n_treated = acc.n_treated;
  est.n_control = acc.n_control;
  return est;
}

Result<CateEstimate> CateStatsEngine::SolveStratified(
    const Accum& acc, size_t min_group_size) const {
  // The exact legacy combine (same arithmetic, same std::map-ascending
  // stratum order), fed from the sliced cell stats — bit-for-bit equal.
  double weighted_effect = 0.0;
  double weighted_var = 0.0;
  size_t n_used = 0, n_treated = 0, n_control = 0;
  for (const uint32_t c : partition_->cells_by_stratum()) {
    const size_t i1 = static_cast<size_t>(c) * 2 + 1;
    const size_t i0 = static_cast<size_t>(c) * 2;
    const size_t nt = acc.n[i1];
    const size_t nc = acc.n[i0];
    if (nt + nc == 0) continue;  // cell untouched by this subgroup
    if (nt < options_.min_stratum_arm || nc < options_.min_stratum_arm) {
      continue;  // no overlap in this stratum (positivity violation)
    }
    const size_t n_s = nt + nc;
    const double m1 = acc.sy[i1] / static_cast<double>(nt);
    const double m0 = acc.sy[i0] / static_cast<double>(nc);
    weighted_effect += static_cast<double>(n_s) * (m1 - m0);
    const auto arm_var = [](size_t n, double sum, double sum_sq) {
      if (n < 2) return 0.0;
      const double mean = sum / static_cast<double>(n);
      return std::max(0.0,
                      (sum_sq - sum * mean) / static_cast<double>(n - 1));
    };
    const double v1 =
        arm_var(nt, acc.sy[i1], acc.syy[i1]) / static_cast<double>(nt);
    const double v0 =
        arm_var(nc, acc.sy[i0], acc.syy[i0]) / static_cast<double>(nc);
    weighted_var += static_cast<double>(n_s) * static_cast<double>(n_s) *
                    (v1 + v0);
    n_used += n_s;
    n_treated += nt;
    n_control += nc;
  }
  if (n_treated < min_group_size || n_control < min_group_size) {
    return Status::FailedPrecondition(
        "insufficient overlap after stratification: " +
        std::to_string(n_treated) + " treated / " +
        std::to_string(n_control) + " control rows");
  }
  CateEstimate est;
  est.cate = weighted_effect / static_cast<double>(n_used);
  est.std_error = std::sqrt(weighted_var) / static_cast<double>(n_used);
  est.n_treated = n_treated;
  est.n_control = n_control;
  return est;
}

Result<CateEstimate> CateStatsEngine::SolveIpw(const Accum& acc,
                                               const Slice& slice,
                                               size_t min_group_size) const {
  if (acc.n_treated < min_group_size || acc.n_control < min_group_size) {
    return Status::FailedPrecondition(
        "insufficient overlap: " + std::to_string(acc.n_treated) +
        " treated / " + std::to_string(acc.n_control) + " control rows");
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (partition_->num_numeric() > 0) {
    // The propensity design varies within a cell; replay the legacy
    // per-row path (design served from the partition's cached columns).
    static obs::Counter& row_solves =
        registry.GetCounter("estimation.solve_ipw_rows");
    row_solves.Increment();
    return SolveIpwRows(slice, min_group_size);
  }
  static obs::Counter& cell_solves =
      registry.GetCounter("estimation.solve_ipw_cells");
  cell_solves.Increment();

  // Categorical-only confounders: the propensity design is constant per
  // cell, so the logistic fit runs on grouped counts and the Hajek sums
  // come straight from the cell stats.
  const auto& cells = partition_->cells();
  const size_t p = 1 + partition_->features().size();
  std::vector<double> x;
  std::vector<double> trials, successes;
  std::vector<uint32_t> touched;
  for (uint32_t c = 0; c < cells.size(); ++c) {
    const uint32_t n1 = acc.n[static_cast<size_t>(c) * 2 + 1];
    const uint32_t n0 = acc.n[static_cast<size_t>(c) * 2];
    if (n1 + n0 == 0) continue;
    const size_t base = x.size();
    x.resize(base + p, 0.0);
    x[base] = 1.0;
    for (const uint32_t f : cells[c].onehot) x[base + 1 + f] = 1.0;
    trials.push_back(static_cast<double>(n1 + n0));
    successes.push_back(static_cast<double>(n1));
    touched.push_back(c);
  }
  const Result<LogisticFit> propensity =
      FitLogisticGrouped(x, touched.size(), p, trials, successes);
  if (!propensity.ok()) return propensity.status();

  const double clip = options_.propensity_clip;
  double sum_w1 = 0.0, sum_w1y = 0.0, sum_w0 = 0.0, sum_w0y = 0.0;
  std::vector<double> e_of(touched.size());
  for (size_t i = 0; i < touched.size(); ++i) {
    const double e = std::clamp(
        PredictLogistic(propensity->beta, &x[i * p]), clip, 1.0 - clip);
    e_of[i] = e;
    const size_t c2 = static_cast<size_t>(touched[i]) * 2;
    const double n1 = static_cast<double>(acc.n[c2 + 1]);
    const double n0 = static_cast<double>(acc.n[c2]);
    sum_w1 += n1 / e;
    sum_w1y += acc.sy[c2 + 1] / e;
    sum_w0 += n0 / (1.0 - e);
    sum_w0y += acc.sy[c2] / (1.0 - e);
  }
  const double mean1 = sum_w1y / sum_w1;
  const double mean0 = sum_w0y / sum_w0;

  // Per-arm Hajek variance: within a cell the weight is constant, so
  // Σ_r (w (y_r - mean))² = w² (Σy² - 2 mean Σy + n mean²).
  double var1_acc = 0.0, var0_acc = 0.0;
  for (size_t i = 0; i < touched.size(); ++i) {
    const double e = e_of[i];
    const size_t c2 = static_cast<size_t>(touched[i]) * 2;
    const double n1 = static_cast<double>(acc.n[c2 + 1]);
    const double n0 = static_cast<double>(acc.n[c2]);
    const double w1 = 1.0 / e;
    const double w0 = 1.0 / (1.0 - e);
    const double ssd1 = std::max(
        0.0, acc.syy[c2 + 1] - 2.0 * mean1 * acc.sy[c2 + 1] +
                 n1 * mean1 * mean1);
    const double ssd0 = std::max(
        0.0, acc.syy[c2] - 2.0 * mean0 * acc.sy[c2] + n0 * mean0 * mean0);
    var1_acc += w1 * w1 * ssd1;
    var0_acc += w0 * w0 * ssd0;
  }
  CateEstimate est;
  est.cate = mean1 - mean0;
  est.std_error = std::sqrt(var1_acc / (sum_w1 * sum_w1) +
                            var0_acc / (sum_w0 * sum_w0));
  est.n_treated = acc.n_treated;
  est.n_control = acc.n_control;
  return est;
}

Result<CateEstimate> CateStatsEngine::SolveIpwRows(
    const Slice& slice, size_t min_group_size) const {
  (void)min_group_size;  // overlap already checked on the accumulated counts
  const auto& cells = partition_->cells();
  const int32_t* cell_of_row = partition_->cell_of_row().data();
  const double* y = partition_->outcome().data();
  const size_t m = partition_->num_numeric();
  const auto& nf = partition_->numeric_features();
  const size_t p = 1 + partition_->features().size();

  std::vector<double> design;
  std::vector<double> labels;
  std::vector<double> outcomes;
  std::vector<uint8_t> is_treated_row;
  const uint64_t* gw = slice.group->words();
  const uint64_t* tw = treated_->words();
  const uint64_t* pw =
      slice.protected_mask != nullptr ? slice.protected_mask->words() : nullptr;
  const size_t num_words = slice.group->num_words();
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t bits = gw[w];
    if (pw != nullptr) bits &= slice.protected_member ? pw[w] : ~pw[w];
    if (bits == 0) continue;
    const uint64_t tword = tw[w];
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t r = w * 64 + static_cast<size_t>(b);
      const int32_t c = cell_of_row[r];
      if (c < 0) continue;
      const size_t base = design.size();
      design.resize(base + p, 0.0);
      design[base] = 1.0;
      for (const uint32_t f : cells[c].onehot) design[base + 1 + f] = 1.0;
      for (size_t j = 0; j < m; ++j) {
        design[base + 1 + nf[j]] = partition_->numeric_values()[j][r];
      }
      const bool t = ((tword >> b) & 1) != 0;
      labels.push_back(t ? 1.0 : 0.0);
      outcomes.push_back(y[r]);
      is_treated_row.push_back(t ? 1 : 0);
    }
  }
  // Same ascending row order, same design values as the legacy loop —
  // HajekIpwFromRows is the one shared implementation.
  return HajekIpwFromRows(design, labels.size(), p, labels, outcomes,
                          is_treated_row, options_.propensity_clip);
}

void CateStatsEngine::EnsureFp(Accum* acc) {
  if (!acc->int_valid) return;
  // Exact by the safe_int_rows guard: every |Σy| and Σy² is below 2^53.
  // The FP arrays are all-zero while int_valid, so this is an assignment.
  for (size_t i = 0; i < acc->isy.size(); ++i) {
    acc->sy[i] = static_cast<double>(acc->isy[i]);
    acc->syy[i] = static_cast<double>(acc->isyy[i]);
  }
  acc->int_valid = false;
}

void CateStatsEngine::MergeAccum(Accum* into, const Accum& from) const {
  into->rows += from.rows;
  into->n_treated += from.n_treated;
  into->n_control += from.n_control;
  assert(into->n.size() == from.n.size());
  for (size_t i = 0; i < from.n.size(); ++i) into->n[i] += from.n[i];
  // Keep merging in int64 while the combined rows provably stay under the
  // exactness budget. Past it — or when either side already fell back to
  // FP — convert the int partials exactly (each is under the budget on
  // its own) and merge in FP, which is what the pure-FP path would have
  // summed, in the same ascending-shard slot order.
  if (into->int_valid && from.int_valid &&
      into->rows <= partition_->safe_int_rows()) {
    for (size_t i = 0; i < from.isy.size(); ++i) into->isy[i] += from.isy[i];
    for (size_t i = 0; i < from.isyy.size(); ++i) {
      into->isyy[i] += from.isyy[i];
    }
  } else {
    EnsureFp(into);
    if (from.int_valid) {
      for (size_t i = 0; i < from.isy.size(); ++i) {
        into->sy[i] += static_cast<double>(from.isy[i]);
        into->syy[i] += static_cast<double>(from.isyy[i]);
      }
    } else {
      for (size_t i = 0; i < from.sy.size(); ++i) into->sy[i] += from.sy[i];
      for (size_t i = 0; i < from.syy.size(); ++i) {
        into->syy[i] += from.syy[i];
      }
    }
  }
  for (size_t i = 0; i < from.zsum.size(); ++i) into->zsum[i] += from.zsum[i];
  for (size_t i = 0; i < from.zysum.size(); ++i) {
    into->zysum[i] += from.zysum[i];
  }
  for (size_t i = 0; i < from.zzsum.size(); ++i) {
    into->zzsum[i] += from.zzsum[i];
  }
}

CateSubgroupEstimates CateStatsEngine::SolveSubgroups(
    const Accum& overall, const Accum& prot, const Accum& nonprot,
    const Bitmap& group, const Bitmap* protected_mask, size_t min_group_size,
    size_t min_subgroup_size, bool skip_subgroups_unless_positive) const {
  CateSubgroupEstimates out;
  const Slice whole{&group, nullptr, false};
  out.overall = Solve(overall, whole, min_group_size);
  if (protected_mask == nullptr) return out;
  if (skip_subgroups_unless_positive &&
      (!out.overall.ok() || out.overall->cate <= 0.0)) {
    return out;
  }
  const Slice prot_slice{&group, protected_mask, true};
  const Slice nonprot_slice{&group, protected_mask, false};
  out.protected_group = Solve(prot, prot_slice, min_subgroup_size);
  out.nonprotected = Solve(nonprot, nonprot_slice, min_subgroup_size);
  return out;
}

CateStatsEngine::SubgroupAccums CateStatsEngine::AccumulateSubgroups(
    const Bitmap& group, const Bitmap* protected_mask, const ShardPlan* plan,
    TaskGroup* tasks) const {
  SubgroupAccums out;
  out.split = protected_mask != nullptr;
  out.rows_covered = df_->num_rows();

  if (plan == nullptr || plan->num_shards() <= 1) {
    out.overall = MakeAccum();
    if (out.split) {
      out.prot = MakeAccum();
      out.nonprot = MakeAccum();
    }
    Accumulate(group, protected_mask, &out.overall, &out.prot, &out.nonprot);
    return out;
  }
  assert(plan->num_rows() == group.size());
  const size_t shards = plan->num_shards();
  const bool split = out.split;

  // Per-shard partials, accumulated independently over each shard's word
  // range. The IPW row-level fallback (numeric confounders) re-walks the
  // whole group inside Solve and is row-order deterministic either way.
  std::vector<Accum> overall_parts(shards);
  std::vector<Accum> prot_parts(split ? shards : 0);
  std::vector<Accum> nonprot_parts(split ? shards : 0);
  auto accumulate_shard = [&](size_t s) {
    const obs::TraceSpan shard_span("shard", static_cast<int64_t>(s));
    const ShardPlan::Shard& shard = plan->shard(s);
    overall_parts[s] = MakeAccum();
    if (split) {
      prot_parts[s] = MakeAccum();
      nonprot_parts[s] = MakeAccum();
    }
    AccumulateRange(group, protected_mask, shard.word_begin, shard.word_end,
                    &overall_parts[s], split ? &prot_parts[s] : nullptr,
                    split ? &nonprot_parts[s] : nullptr);
  };
  if (tasks == nullptr) {
    for (size_t s = 0; s < shards; ++s) accumulate_shard(s);
  } else {
    // Child tasks of the caller's group; Wait() inside ParallelFor helps
    // (executes pending shard tasks) so this nests freely under a
    // pattern task on the same scheduler.
    tasks->ParallelFor(shards, accumulate_shard);
  }

  // Merge in ascending shard order — fixed by the plan, not by thread
  // scheduling — so the result is deterministic for this shard count.
  out.overall = std::move(overall_parts[0]);
  if (split) {
    out.prot = std::move(prot_parts[0]);
    out.nonprot = std::move(nonprot_parts[0]);
  }
  for (size_t s = 1; s < shards; ++s) {
    MergeAccum(&out.overall, overall_parts[s]);
    if (split) {
      MergeAccum(&out.prot, prot_parts[s]);
      MergeAccum(&out.nonprot, nonprot_parts[s]);
    }
  }
  return out;
}

CateStatsEngine::SubgroupAccums CateStatsEngine::AccumulateDelta(
    const Bitmap& group, const Bitmap* protected_mask,
    size_t row_begin) const {
  assert(group.size() == treated_->size());
  assert(row_begin <= group.size());
  SubgroupAccums out;
  out.split = protected_mask != nullptr;
  out.rows_covered = df_->num_rows();
  out.overall = MakeAccum();
  if (out.split) {
    out.prot = MakeAccum();
    out.nonprot = MakeAccum();
  }
  // Scratch view of `group` restricted to the delta tail: only the words
  // at and past the boundary are copied (the kernel never reads words
  // below word_begin, so the resident words may stay zero), and the
  // boundary word's resident bits are cleared. Walking words ascending
  // accumulates the delta rows in ascending row order — the order a cold
  // pass would reach them after all resident rows.
  const size_t word_begin = row_begin / 64;
  const size_t num_words = group.num_words();
  Bitmap scratch(group.size(), /*value=*/false);
  uint64_t* sw = scratch.mutable_words();
  const uint64_t* gw = group.words();
  for (size_t w = word_begin; w < num_words; ++w) sw[w] = gw[w];
  const size_t boundary_bit = row_begin % 64;
  if (boundary_bit != 0) {
    sw[word_begin] &= ~((uint64_t{1} << boundary_bit) - 1);
  }
  AccumulateRange(scratch, protected_mask, word_begin, num_words,
                  &out.overall, out.split ? &out.prot : nullptr,
                  out.split ? &out.nonprot : nullptr);
  return out;
}

void CateStatsEngine::MergeSubgroupAccums(SubgroupAccums* into,
                                          const SubgroupAccums& from) const {
  assert(into->split == from.split);
  GrowAccum(&into->overall);
  MergeAccum(&into->overall, from.overall);
  if (into->split) {
    GrowAccum(&into->prot);
    GrowAccum(&into->nonprot);
    MergeAccum(&into->prot, from.prot);
    MergeAccum(&into->nonprot, from.nonprot);
  }
  into->rows_covered = std::max(into->rows_covered, from.rows_covered);
}

void CateStatsEngine::GrowAccum(Accum* acc) const {
  // A cached accum may predate cells the delta interned: grow it to the
  // current slot count. New cells append at the end, so resident slot
  // indices are unchanged — but the two kernel scratch slots sat at the
  // OLD end, which is now inside the real slot range, so their garbage
  // must be zeroed (they are write-only and never merged or solved).
  const size_t slots = partition_->cells().size() * 2;
  if (acc->n.empty() || acc->n.size() >= slots + 2) return;
  const size_t old_slots = acc->n.size() - 2;
  const auto grow_sinked = [&](auto& v) {
    if (v.empty()) return;
    v.resize(slots + 2, 0);
    v[old_slots] = 0;
    v[old_slots + 1] = 0;
  };
  grow_sinked(acc->n);
  grow_sinked(acc->sy);
  grow_sinked(acc->syy);
  grow_sinked(acc->isy);
  grow_sinked(acc->isyy);
  // Moment blocks have no scratch slots; the per-slot layout appends.
  const size_t m = partition_->num_numeric();
  if (!acc->zsum.empty()) acc->zsum.resize(slots * m, 0.0);
  if (!acc->zysum.empty()) acc->zysum.resize(slots * m, 0.0);
  if (!acc->zzsum.empty()) acc->zzsum.resize(slots * (m * (m + 1) / 2), 0.0);
}

CateSubgroupEstimates CateStatsEngine::SolveFromAccums(
    const SubgroupAccums& accums, const Bitmap& group,
    const Bitmap* protected_mask, size_t min_group_size,
    size_t min_subgroup_size, bool skip_subgroups_unless_positive) const {
  // EnsureFp is destructive (it clears int_valid), so solve from copies:
  // the caller's cached stats stay int-exact and mergeable with future
  // delta accumulations. The engine's own estimation paths keep the
  // zero-copy in-place funnel below.
  Accum overall = accums.overall;
  Accum prot = accums.prot;
  Accum nonprot = accums.nonprot;
  GrowAccum(&overall);
  GrowAccum(&prot);
  GrowAccum(&nonprot);
  EnsureFp(&overall);
  EnsureFp(&prot);
  EnsureFp(&nonprot);
  return SolveSubgroups(overall, prot, nonprot, group, protected_mask,
                        min_group_size, min_subgroup_size,
                        skip_subgroups_unless_positive);
}

CateSubgroupEstimates CateStatsEngine::EstimateSubgroups(
    const Bitmap& group, const Bitmap* protected_mask, size_t min_group_size,
    size_t min_subgroup_size, bool skip_subgroups_unless_positive) const {
  return EstimateSubgroups(group, protected_mask, min_group_size,
                           min_subgroup_size, skip_subgroups_unless_positive,
                           /*plan=*/nullptr, /*tasks=*/nullptr);
}

CateSubgroupEstimates CateStatsEngine::EstimateSubgroups(
    const Bitmap& group, const Bitmap* protected_mask, size_t min_group_size,
    size_t min_subgroup_size, bool skip_subgroups_unless_positive,
    const ShardPlan* plan, TaskGroup* tasks) const {
  SubgroupAccums acc = AccumulateSubgroups(group, protected_mask, plan, tasks);
  EnsureFp(&acc.overall);
  EnsureFp(&acc.prot);
  EnsureFp(&acc.nonprot);
  return SolveSubgroups(acc.overall, acc.prot, acc.nonprot, group,
                        protected_mask, min_group_size, min_subgroup_size,
                        skip_subgroups_unless_positive);
}

Result<CateEstimate> CateStatsEngine::EstimateSubgroup(
    const Bitmap& group, size_t min_group_size) const {
  Accum acc = MakeAccum();
  Accum unused_prot, unused_nonprot;
  Accumulate(group, nullptr, &acc, &unused_prot, &unused_nonprot);
  EnsureFp(&acc);
  const Slice whole{&group, nullptr, false};
  return Solve(acc, whole, min_group_size);
}

}  // namespace faircap
