// CausalDag: Pearl-style causal DAG over named variables (Section 3).
// Nodes correspond to dataset attributes by name; edges encode direct
// causal influence. The DAG is validated acyclic at construction.

#ifndef FAIRCAP_CAUSAL_DAG_H_
#define FAIRCAP_CAUSAL_DAG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace faircap {

/// Directed acyclic graph over named variables.
class CausalDag {
 public:
  CausalDag() = default;

  /// Builds a DAG from node names and (from, to) edges; fails on unknown
  /// names, duplicate names/edges, self-loops, or cycles.
  static Result<CausalDag> Create(
      std::vector<std::string> node_names,
      const std::vector<std::pair<std::string, std::string>>& edges);

  size_t num_nodes() const { return names_.size(); }
  size_t num_edges() const { return num_edges_; }
  const std::vector<std::string>& node_names() const { return names_; }
  const std::string& name(size_t v) const { return names_[v]; }

  /// Node index by name, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return index_.count(name) != 0;
  }

  bool HasEdge(size_t from, size_t to) const;
  const std::vector<size_t>& Parents(size_t v) const { return parents_[v]; }
  const std::vector<size_t>& Children(size_t v) const { return children_[v]; }

  /// Adds an edge; fails if it would create a cycle or already exists.
  Status AddEdge(const std::string& from, const std::string& to);

  /// Removes an edge; fails if absent.
  Status RemoveEdge(const std::string& from, const std::string& to);

  /// Topological order (parents before children). Deterministic.
  std::vector<size_t> TopologicalOrder() const;

  /// All ancestors of `v` (excluding `v`).
  std::vector<size_t> Ancestors(size_t v) const;

  /// All descendants of `v` (excluding `v`).
  std::vector<size_t> Descendants(size_t v) const;

  /// True if a directed path from `from` to `to` exists (length >= 1).
  bool HasDirectedPath(size_t from, size_t to) const;

  /// Renders as "A -> B; A -> C; ..." for debugging.
  std::string ToString() const;

 private:
  bool WouldCreateCycle(size_t from, size_t to) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::vector<size_t>> parents_;
  std::vector<std::vector<size_t>> children_;
  size_t num_edges_ = 0;
};

}  // namespace faircap

#endif  // FAIRCAP_CAUSAL_DAG_H_
