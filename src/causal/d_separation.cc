#include "causal/d_separation.h"

#include <array>
#include <utility>

namespace faircap {

namespace {

// Reachability with direction-of-travel state (Koller & Friedman,
// Algorithm 3.1 "Reachable"). A node is visited in one of two modes:
// arriving "from a child" (travelling up) or "from a parent" (down).
enum class Dir { kUp, kDown };

}  // namespace

bool DSeparated(const CausalDag& dag, const std::vector<size_t>& x,
                const std::vector<size_t>& y, const std::vector<size_t>& z) {
  const size_t n = dag.num_nodes();
  std::vector<bool> observed(n, false);
  for (size_t v : z) observed[v] = true;

  // Ancestors of Z (including Z): needed to decide whether a collider is
  // "opened" by conditioning.
  std::vector<bool> ancestor_of_z(n, false);
  {
    std::vector<size_t> stack(z.begin(), z.end());
    for (size_t v : z) ancestor_of_z[v] = true;
    while (!stack.empty()) {
      const size_t v = stack.back();
      stack.pop_back();
      for (size_t p : dag.Parents(v)) {
        if (!ancestor_of_z[p]) {
          ancestor_of_z[p] = true;
          stack.push_back(p);
        }
      }
    }
  }

  std::vector<bool> is_target(n, false);
  for (size_t v : y) is_target[v] = true;

  // visited[v][dir]
  std::vector<std::array<bool, 2>> visited(n, {false, false});
  std::vector<std::pair<size_t, Dir>> stack;
  for (size_t v : x) stack.emplace_back(v, Dir::kUp);

  while (!stack.empty()) {
    const auto [v, dir] = stack.back();
    stack.pop_back();
    const size_t dir_idx = dir == Dir::kUp ? 0 : 1;
    if (visited[v][dir_idx]) continue;
    visited[v][dir_idx] = true;

    if (!observed[v] && is_target[v]) return false;  // active path reaches Y

    if (dir == Dir::kUp) {
      // Arrived from a child. If v is unobserved, the trail may continue to
      // v's parents (chain) and to v's children (fork).
      if (!observed[v]) {
        for (size_t p : dag.Parents(v)) stack.emplace_back(p, Dir::kUp);
        for (size_t c : dag.Children(v)) stack.emplace_back(c, Dir::kDown);
      }
    } else {
      // Arrived from a parent. If v is unobserved the chain continues to
      // children. If v is a collider whose descendants include Z (i.e. v is
      // an ancestor of Z) the trail may turn back up to v's parents.
      if (!observed[v]) {
        for (size_t c : dag.Children(v)) stack.emplace_back(c, Dir::kDown);
      }
      if (ancestor_of_z[v]) {
        for (size_t p : dag.Parents(v)) stack.emplace_back(p, Dir::kUp);
      }
    }
  }
  return true;
}

bool DSeparated(const CausalDag& dag, size_t x, size_t y,
                const std::vector<size_t>& z) {
  return DSeparated(dag, std::vector<size_t>{x}, std::vector<size_t>{y}, z);
}

}  // namespace faircap
