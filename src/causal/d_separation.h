// d-separation: graphical test of conditional independence in a causal DAG
// (Pearl 2009). Used to verify backdoor adjustment sets and inside PC-style
// structure tests.

#ifndef FAIRCAP_CAUSAL_D_SEPARATION_H_
#define FAIRCAP_CAUSAL_D_SEPARATION_H_

#include <vector>

#include "causal/dag.h"

namespace faircap {

/// True iff X and Y are d-separated given Z in `dag`. Sets may overlap;
/// a node in both X (or Y) and Z is treated as observed, making the pair
/// trivially d-separated only through other paths. Implements the
/// reachability ("Bayes-ball") algorithm in O(V + E).
bool DSeparated(const CausalDag& dag, const std::vector<size_t>& x,
                const std::vector<size_t>& y, const std::vector<size_t>& z);

/// Convenience overload for singleton X and Y.
bool DSeparated(const CausalDag& dag, size_t x, size_t y,
                const std::vector<size_t>& z);

}  // namespace faircap

#endif  // FAIRCAP_CAUSAL_D_SEPARATION_H_
