#include "causal/linear_model.h"

#include <cmath>

namespace faircap {

namespace {

// In-place Cholesky factorization A = L L'. Returns false if A is not
// positive definite. Lower triangle of `a` receives L.
bool Cholesky(std::vector<double>& a, size_t p) {
  for (size_t j = 0; j < p; ++j) {
    double d = a[j * p + j];
    for (size_t k = 0; k < j; ++k) d -= a[j * p + k] * a[j * p + k];
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double l_jj = std::sqrt(d);
    a[j * p + j] = l_jj;
    for (size_t i = j + 1; i < p; ++i) {
      double s = a[i * p + j];
      for (size_t k = 0; k < j; ++k) s -= a[i * p + k] * a[j * p + k];
      a[i * p + j] = s / l_jj;
    }
  }
  return true;
}

// Solves L L' x = b given the Cholesky factor in the lower triangle.
void CholeskySolve(const std::vector<double>& l, size_t p,
                   std::vector<double>& b) {
  // Forward: L z = b.
  for (size_t i = 0; i < p; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l[i * p + k] * b[k];
    b[i] = s / l[i * p + i];
  }
  // Backward: L' x = z.
  for (size_t i = p; i-- > 0;) {
    double s = b[i];
    for (size_t k = i + 1; k < p; ++k) s -= l[k * p + i] * b[k];
    b[i] = s / l[i * p + i];
  }
}

}  // namespace

Result<std::vector<double>> SolveSpd(std::vector<double> a, size_t p,
                                     std::vector<double> b) {
  if (a.size() != p * p || b.size() != p) {
    return Status::InvalidArgument("SolveSpd: dimension mismatch");
  }
  if (!Cholesky(a, p)) {
    return Status::FailedPrecondition("matrix is not positive definite");
  }
  CholeskySolve(a, p, b);
  return b;
}

Result<std::vector<double>> InvertSpd(std::vector<double> a, size_t p) {
  if (a.size() != p * p) {
    return Status::InvalidArgument("InvertSpd: dimension mismatch");
  }
  if (!Cholesky(a, p)) {
    return Status::FailedPrecondition("matrix is not positive definite");
  }
  std::vector<double> inv(p * p, 0.0);
  std::vector<double> e(p);
  for (size_t col = 0; col < p; ++col) {
    std::fill(e.begin(), e.end(), 0.0);
    e[col] = 1.0;
    CholeskySolve(a, p, e);
    for (size_t row = 0; row < p; ++row) inv[row * p + col] = e[row];
  }
  return inv;
}

OlsAccumulator::OlsAccumulator(size_t p)
    : p_(p), xtx_(p * p, 0.0), xty_(p, 0.0) {}

void OlsAccumulator::AddRow(const double* x, double y) {
  for (size_t i = 0; i < p_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;  // design rows are sparse one-hots
    for (size_t j = i; j < p_; ++j) {
      xtx_[i * p_ + j] += xi * x[j];
    }
    xty_[i] += xi * y;
  }
  yty_ += y * y;
  ++n_;
}

Result<OlsFit> SolveNormalEquations(const std::vector<double>& xtx,
                                    const std::vector<double>& xty,
                                    double yty, size_t n, size_t p,
                                    double ridge) {
  if (xtx.size() != p * p || xty.size() != p) {
    return Status::InvalidArgument("SolveNormalEquations: dimension mismatch");
  }
  if (n < p) {
    return Status::FailedPrecondition(
        "OLS needs at least as many rows as features (" +
        std::to_string(n) + " < " + std::to_string(p) + ")");
  }
  // Mirror the upper triangle and add the ridge.
  std::vector<double> a(p * p);
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < p; ++j) {
      a[i * p + j] = i <= j ? xtx[i * p + j] : xtx[j * p + i];
    }
    a[i * p + i] += ridge;
  }
  FAIRCAP_ASSIGN_OR_RETURN(std::vector<double> inv, InvertSpd(a, p));

  OlsFit fit;
  fit.n = n;
  fit.beta.assign(p, 0.0);
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < p; ++j) {
      fit.beta[i] += inv[i * p + j] * xty[j];
    }
  }
  // Residual sum of squares: y'y - 2 beta'X'y + beta'X'X beta, folded as
  // y'y - beta'X'y (valid at the normal-equation solution up to ridge).
  double beta_xty = 0.0;
  for (size_t i = 0; i < p; ++i) beta_xty += fit.beta[i] * xty[i];
  const double rss = std::max(0.0, yty - beta_xty);
  const size_t dof = n > p ? n - p : 1;
  fit.sigma2 = rss / static_cast<double>(dof);
  fit.std_errors.resize(p);
  for (size_t i = 0; i < p; ++i) {
    fit.std_errors[i] = std::sqrt(std::max(0.0, fit.sigma2 * inv[i * p + i]));
  }
  return fit;
}

Result<OlsFit> OlsAccumulator::Solve(double ridge) const {
  return SolveNormalEquations(xtx_, xty_, yty_, n_, p_, ridge);
}

}  // namespace faircap
