// Text serialization of causal DAGs in a DOT-like edge-list dialect:
//
//   # comments and blank lines are ignored
//   Age -> Education;
//   Education -> Income; Age -> Income
//   Orphan;                       # node with no edges
//
// Semicolons or newlines separate statements; "A -> B -> C" chains are
// allowed. Node names are collected from statements in order of first
// appearance.

#ifndef FAIRCAP_CAUSAL_DAG_IO_H_
#define FAIRCAP_CAUSAL_DAG_IO_H_

#include <string>

#include "causal/dag.h"
#include "util/result.h"

namespace faircap {

/// Parses the edge-list dialect above. Fails on malformed statements,
/// self-loops, duplicate edges, or cycles.
Result<CausalDag> ParseDag(const std::string& text);

/// Reads a DAG from a file.
Result<CausalDag> ReadDagFile(const std::string& path);

/// Serializes a DAG in the same dialect (one edge per line; isolated
/// nodes emitted as bare statements).
std::string DagToText(const CausalDag& dag);

}  // namespace faircap

#endif  // FAIRCAP_CAUSAL_DAG_IO_H_
