#include "causal/stats.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace faircap {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return std::nan("");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return std::nan("");
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  const size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return std::nan("");
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return std::nan("");
  return sxy / std::sqrt(sxx * syy);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

namespace {

// Lanczos approximation of log-gamma.
double LogGamma(double x) {
  static const double kCoef[] = {76.18009172947146,  -86.50532032941677,
                                 24.01409824083091,  -1.231739572450155,
                                 0.1208650973866179e-2, -0.5395239384953e-5};
  double y = x;
  double tmp = x + 5.5;
  tmp -= (x + 0.5) * std::log(tmp);
  double ser = 1.000000000190015;
  for (double c : kCoef) ser += c / ++y;
  return -tmp + std::log(2.5066282746310005 * ser / x);
}

// Regularized lower incomplete gamma P(s, x) via series expansion
// (converges fast for x < s + 1).
double GammaPSeries(double s, double x) {
  double ap = s;
  double sum = 1.0 / s;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-14) break;
  }
  return sum * std::exp(-x + s * std::log(x) - LogGamma(s));
}

// Regularized upper incomplete gamma Q(s, x) via continued fraction
// (converges fast for x >= s + 1).
double GammaQContinuedFraction(double s, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - s;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - s);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-14) break;
  }
  return std::exp(-x + s * std::log(x) - LogGamma(s)) * h;
}

}  // namespace

double GammaQ(double s, double x) {
  if (x < 0.0 || s <= 0.0) return std::nan("");
  if (x == 0.0) return 1.0;
  if (x < s + 1.0) return 1.0 - GammaPSeries(s, x);
  return GammaQContinuedFraction(s, x);
}

double ChiSquarePValue(double statistic, size_t dof) {
  if (dof == 0) return 1.0;
  if (statistic <= 0.0) return 1.0;
  return GammaQ(static_cast<double>(dof) / 2.0, statistic / 2.0);
}

IndependenceTest ChiSquareIndependence(const std::vector<double>& counts,
                                       size_t r, size_t c) {
  IndependenceTest out;
  if (r < 2 || c < 2 || counts.size() != r * c) {
    out.informative = false;
    return out;
  }
  std::vector<double> row_sum(r, 0.0), col_sum(c, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < c; ++j) {
      const double v = counts[i * c + j];
      row_sum[i] += v;
      col_sum[j] += v;
      total += v;
    }
  }
  if (total <= 0.0) {
    out.informative = false;
    return out;
  }
  // Degrees of freedom use only rows/columns with mass.
  size_t nonzero_rows = 0, nonzero_cols = 0;
  for (double v : row_sum) nonzero_rows += v > 0.0 ? 1 : 0;
  for (double v : col_sum) nonzero_cols += v > 0.0 ? 1 : 0;
  if (nonzero_rows < 2 || nonzero_cols < 2) {
    out.informative = false;
    return out;
  }
  double stat = 0.0;
  for (size_t i = 0; i < r; ++i) {
    if (row_sum[i] <= 0.0) continue;
    for (size_t j = 0; j < c; ++j) {
      if (col_sum[j] <= 0.0) continue;
      const double expected = row_sum[i] * col_sum[j] / total;
      const double diff = counts[i * c + j] - expected;
      stat += diff * diff / expected;
    }
  }
  out.statistic = stat;
  out.dof = (nonzero_rows - 1) * (nonzero_cols - 1);
  out.p_value = ChiSquarePValue(stat, out.dof);
  return out;
}

IndependenceTest ConditionalChiSquare(const std::vector<int32_t>& x,
                                      size_t x_card,
                                      const std::vector<int32_t>& y,
                                      size_t y_card,
                                      const std::vector<int64_t>& strata) {
  IndependenceTest out;
  if (x.size() != y.size() || x.size() != strata.size() || x_card < 2 ||
      y_card < 2) {
    out.informative = false;
    return out;
  }
  // Bucket rows by stratum, then run a chi-square per stratum and sum.
  std::map<int64_t, std::vector<double>> tables;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0 || y[i] < 0) continue;  // skip nulls
    auto [it, inserted] =
        tables.try_emplace(strata[i], std::vector<double>(x_card * y_card));
    it->second[static_cast<size_t>(x[i]) * y_card +
               static_cast<size_t>(y[i])] += 1.0;
  }
  double stat = 0.0;
  size_t dof = 0;
  for (const auto& [stratum, counts] : tables) {
    const IndependenceTest t = ChiSquareIndependence(counts, x_card, y_card);
    if (!t.informative) continue;
    stat += t.statistic;
    dof += t.dof;
  }
  if (dof == 0) {
    out.informative = false;
    return out;
  }
  out.statistic = stat;
  out.dof = dof;
  out.p_value = ChiSquarePValue(stat, dof);
  return out;
}

double FisherZPValue(double r, size_t n, size_t k) {
  if (n <= k + 3) return 1.0;
  r = std::clamp(r, -0.999999, 0.999999);
  const double z = 0.5 * std::log((1.0 + r) / (1.0 - r));
  const double se = 1.0 / std::sqrt(static_cast<double>(n - k - 3));
  const double stat = std::abs(z) / se;
  return 2.0 * (1.0 - NormalCdf(stat));
}

}  // namespace faircap
