// Statistical primitives: moments, correlation, chi-square / G² and
// Fisher-z independence tests. Used by the CATE estimators and the PC
// causal-discovery algorithm.

#ifndef FAIRCAP_CAUSAL_STATS_H_
#define FAIRCAP_CAUSAL_STATS_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace faircap {

/// Arithmetic mean; NaN for empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance; NaN for n < 2.
double Variance(const std::vector<double>& xs);

/// Pearson correlation; NaN when either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Standard normal CDF.
double NormalCdf(double x);

/// Regularized upper incomplete gamma Q(s, x); used for chi-square tails.
double GammaQ(double s, double x);

/// Upper-tail p-value of a chi-square statistic with `dof` degrees of
/// freedom.
double ChiSquarePValue(double statistic, size_t dof);

/// Result of an independence test.
struct IndependenceTest {
  double statistic = 0.0;
  size_t dof = 0;
  double p_value = 1.0;
  /// False when the test had no power (e.g. empty strata everywhere);
  /// callers should treat that as "independent" for pruning purposes.
  bool informative = true;
};

/// Pearson chi-square test of independence on an r x c contingency table
/// (row-major `counts`, dimensions r, c).
IndependenceTest ChiSquareIndependence(const std::vector<double>& counts,
                                       size_t r, size_t c);

/// Conditional independence test of two categorical variables given a set
/// of categorical variables: chi-square within each stratum of the
/// conditioning set, statistics and dof summed across strata.
/// `x`, `y` are code vectors (non-negative; same length); `strata` is a
/// parallel vector of stratum ids. `x_card`, `y_card` are the number of
/// distinct codes.
IndependenceTest ConditionalChiSquare(const std::vector<int32_t>& x,
                                      size_t x_card,
                                      const std::vector<int32_t>& y,
                                      size_t y_card,
                                      const std::vector<int64_t>& strata);

/// Fisher z-test of zero partial correlation: given sample partial
/// correlation `r`, sample size `n`, and conditioning-set size `k`,
/// returns the two-sided p-value.
double FisherZPValue(double r, size_t n, size_t k);

}  // namespace faircap

#endif  // FAIRCAP_CAUSAL_STATS_H_
