// CATE estimation on observational data (Section 3). Given a causal DAG,
// an outcome O, an intervention pattern P_int and a subpopulation B, we
// estimate
//
//   CATE(T, O | B) = E_Z[ E[O | T=1, B, Z=z] - E[O | T=0, B, Z=z] ]
//
// where T = 1 iff the row satisfies P_int, and Z is a backdoor adjustment
// set derived from the DAG (parents of the treatment attributes).
// Two estimators are provided:
//   * regression: O ~ alpha + beta*T + gamma' one-hot(Z); beta is the CATE
//     (the default, mirroring DoWhy's linear-regression estimator);
//   * stratified: exact matching over joint Z cells with overlap filtering.

#ifndef FAIRCAP_CAUSAL_ESTIMATOR_H_
#define FAIRCAP_CAUSAL_ESTIMATOR_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "causal/dag.h"
#include "dataframe/dataframe.h"
#include "mining/pattern.h"
#include "util/result.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace faircap {

class CateStatsEngine;       // causal/cate_stats_engine.h
class ConfounderPartition;   // causal/cate_stats_engine.h
class ShardPlan;             // mining/shard_plan.h
class TaskGroup;             // util/task_scheduler.h

/// Estimation method.
enum class CateMethod {
  kRegression,  ///< linear adjustment (default)
  kStratified,  ///< exact matching over confounder cells
  kIpw,         ///< inverse propensity weighting (Hajek estimator)
};

/// Tuning knobs for CATE estimation.
struct CateOptions {
  CateMethod method = CateMethod::kRegression;
  /// Minimum number of treated and of control rows for a valid estimate.
  size_t min_group_size = 10;
  /// Strata smaller than this (on either arm) are dropped (stratified).
  size_t min_stratum_arm = 1;
  /// Ridge added to the normal equations (regression).
  double ridge = 1e-6;
  /// Quantile bins for numeric confounders (stratified method).
  size_t numeric_confounder_bins = 4;
  /// Propensity clipping bounds (IPW method).
  double propensity_clip = 0.02;
  /// Disables the exact int64 accumulation fast path the batch engine
  /// selects for integer-valued outcome columns. The two paths are
  /// bit-identical (pinned by cate_stats_engine_test); this knob exists
  /// so those tests can produce the FP-path reference on integer data.
  bool disable_int_fast_path = false;
};

/// One CATE estimate.
struct CateEstimate {
  double cate = 0.0;
  double std_error = 0.0;
  size_t n_treated = 0;
  size_t n_control = 0;
  /// |cate| / std_error; 0 when std_error is 0.
  double t_statistic() const {
    return std_error > 0.0 ? cate / std_error : 0.0;
  }
};

/// Result of one batch estimation: the same intervention's effect within
/// the full group and within its protected / non-protected split, served
/// by a single sufficient-statistics pass. Individual fields carry their
/// own Status (e.g. insufficient overlap in one subgroup does not void
/// the others); fields that were not requested (or were skipped by
/// lattice-style short-circuiting) stay FailedPrecondition("not
/// computed").
struct CateSubgroupEstimates {
  Result<CateEstimate> overall{Status::FailedPrecondition("not computed")};
  Result<CateEstimate> protected_group{
      Status::FailedPrecondition("not computed")};
  Result<CateEstimate> nonprotected{
      Status::FailedPrecondition("not computed")};
};

/// Estimates CATE values for intervention patterns over subpopulations of
/// a fixed DataFrame under a fixed causal DAG. Thread-safe: internal
/// caches (adjustment sets, stratum ids, per-treatment engines) are
/// mutex-guarded so the mining phase can fan out across grouping
/// patterns. The table must not be mutated while the estimator lives.
class CateEstimator {
 public:
  /// `df` and `dag` must outlive the estimator. DAG node names are matched
  /// to schema attribute names; attributes absent from the DAG contribute
  /// no confounders.
  static Result<CateEstimator> Create(const DataFrame* df,
                                      const CausalDag* dag,
                                      CateOptions options = {});

  /// Estimates the effect of `intervention` (T=1 iff the pattern matches)
  /// on the outcome within the rows selected by `group`.
  /// Fails (FailedPrecondition) when either arm is smaller than
  /// `min_group_size` or no stratum has overlap.
  Result<CateEstimate> Estimate(const Pattern& intervention,
                                const Bitmap& group) const;

  /// Same, with a per-call overlap floor (used for protected /
  /// non-protected subgroup estimates, which are smaller than the full
  /// group). `min_group_size` == 0 falls back to the configured floor.
  Result<CateEstimate> Estimate(const Pattern& intervention,
                                const Bitmap& group,
                                size_t min_group_size) const;

  /// Batch sufficient-statistics path: estimates the intervention's
  /// effect within `group` and, when `protected_mask` is non-null, within
  /// group ∩ protected and group ∩ ¬protected — one word-driven pass over
  /// the table (CateStatsEngine) instead of three design-matrix rebuilds,
  /// and no non-protected bitmap is ever materialized. Engines are cached
  /// per treatment and confounder partitions per adjustment set (LRU +
  /// shared ownership, like the PredicateIndex conjunction cache).
  /// `min_subgroup_size` floors the two subgroup estimates (0 = the
  /// configured min_group_size). With `skip_subgroups_unless_positive`
  /// the subgroup systems are solved only when the overall CATE came out
  /// positive (the lattice prunes on the overall sign). The legacy
  /// Estimate() path is kept verbatim as the pinning oracle.
  Result<CateSubgroupEstimates> EstimateSubgroups(
      const Pattern& intervention, const Bitmap& group,
      const Bitmap* protected_mask, size_t min_subgroup_size = 0,
      bool skip_subgroups_unless_positive = false) const;

  /// Sharded batch path: the engine's accumulation pass fans out as
  /// child tasks of `tasks`, one per word-aligned shard of `plan`, with
  /// shard partials merged in ascending shard order before the solves
  /// (see CateStatsEngine::EstimateSubgroups). Legal from inside another
  /// task on the same scheduler — Wait() helps instead of blocking.
  /// Null `plan`/`tasks` (or a single-shard plan) is exactly the
  /// unsharded batch path. `tasks` must be quiescent: the call uses it
  /// as its completion barrier.
  Result<CateSubgroupEstimates> EstimateSubgroups(
      const Pattern& intervention, const Bitmap& group,
      const Bitmap* protected_mask, size_t min_subgroup_size,
      bool skip_subgroups_unless_positive, const ShardPlan* plan,
      TaskGroup* tasks) const;

  /// The cached sufficient-statistics engine for `intervention`, built on
  /// first use. Shared ownership: the engine stays valid for the holder
  /// even if the budgeted LRU cache evicts it mid-use.
  Result<std::shared_ptr<const CateStatsEngine>> EngineFor(
      const Pattern& intervention) const;

  /// Caps the bytes held by cached engines and confounder partitions
  /// (mirrors PredicateIndex::SetMemoryBudget). 0 = unlimited (default).
  /// Evicts least-recently-used engines immediately when shrinking;
  /// partitions are freed when the last engine referencing them goes.
  void SetEngineMemoryBudget(size_t max_bytes);

  /// What an append-refresh did to the cached state (tests and the
  /// append.* run-report counters).
  struct AppendRefreshStats {
    size_t partitions_extended = 0;  ///< copy-extended by whole delta rows
    size_t partitions_rebuilt = 0;   ///< not extendable; dropped for cold rebuild
    size_t engines_refreshed = 0;    ///< rebuilt onto extended partition + mask
    size_t engines_dropped = 0;      ///< erased (their partition was dropped)
  };

  /// Brings the cached state current after rows were appended to the
  /// table (DataFrame::AppendFrame). Per-row stratum ids are dropped
  /// (cheap to rebuild); adjustment sets are kept (schema/DAG-only).
  /// Every live confounder partition is copy-extended over the delta
  /// rows where possible (purely categorical confounders with no new
  /// categories — see ConfounderPartition::ExtendFor) and each cached
  /// engine is re-pointed at the extended partition and the lazily
  /// extended treated mask; engines whose partition could not be
  /// extended are evicted and rebuilt cold on next use. Must not run
  /// concurrently with estimation calls — call it between mining runs,
  /// right after the append.
  AppendRefreshStats NotifyAppend();

  /// Engine-cache observability (tests and benchmarks).
  struct EngineCacheStats {
    size_t engines = 0;     ///< cached engines
    size_t partitions = 0;  ///< alive confounder partitions
    size_t bytes = 0;       ///< partition + engine bytes held
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
  };
  EngineCacheStats GetEngineStats() const;

  /// Backdoor adjustment set (as DataFrame column indices) for the given
  /// intervention's treatment attributes.
  Result<std::vector<size_t>> AdjustmentAttrs(
      const Pattern& intervention) const;

  /// Bitmap of rows satisfying `intervention` over the full DataFrame,
  /// served from the DataFrame's shared PredicateIndex (memoized across
  /// calls, call sites, and estimators over the same table). Shared
  /// ownership: the mask stays valid for the holder even if a
  /// budget-capped index evicts it mid-estimate.
  std::shared_ptr<const Bitmap> TreatedMask(const Pattern& intervention) const;

  const DataFrame& data() const { return *df_; }
  size_t outcome_attr() const { return outcome_attr_; }
  const CateOptions& options() const { return options_; }

 private:
  CateEstimator(const DataFrame* df, const CausalDag* dag,
                CateOptions options, size_t outcome_attr, size_t outcome_node);

  Result<CateEstimate> EstimateRegression(
      const Bitmap& treated, const Bitmap& group,
      const std::vector<size_t>& adjustment, size_t min_group_size) const;
  Result<CateEstimate> EstimateStratified(
      const Bitmap& treated, const Bitmap& group,
      const std::vector<size_t>& adjustment, size_t min_group_size) const;
  Result<CateEstimate> EstimateIpw(const Bitmap& treated, const Bitmap& group,
                                   const std::vector<size_t>& adjustment,
                                   size_t min_group_size) const;

  /// Joint stratum id per row over `adjustment` attrs (numeric attrs are
  /// quantile-binned); -1 where any confounder is null.
  std::vector<int64_t> StratumIds(const std::vector<size_t>& adjustment) const;

  /// Memoized StratumIds, keyed by the adjustment attr list. The ids
  /// depend only on (table, adjustment, binning options), so every
  /// Estimate call for a treatment over the same attributes shares one
  /// computation; mutex-guarded like the adjustment cache.
  std::shared_ptr<const std::vector<int64_t>> StratumIdsCached(
      const std::vector<size_t>& adjustment) const;

  /// Confounder partition for `adjustment`, built once and shared across
  /// every treatment with the same attributes (weak-cached: alive as long
  /// as some engine holds it).
  std::shared_ptr<const ConfounderPartition> PartitionFor(
      const std::vector<size_t>& adjustment) const;

  /// Evicts LRU engines while over the engine budget. Caller holds mu_.
  void EnforceEngineBudgetLocked() const REQUIRES(*mu_);
  size_t EngineBytesLocked() const REQUIRES(*mu_);

  const DataFrame* df_;
  const CausalDag* dag_;
  CateOptions options_;
  size_t outcome_attr_;
  size_t outcome_node_;

  // Behind unique_ptr so the estimator stays movable (mutex is not); the
  // guards dereference it (GUARDED_BY(*mu_)), which the analysis resolves.
  // Treatment masks are NOT cached here: they come from the DataFrame's
  // PredicateIndex, shared with the mining layer.
  std::unique_ptr<Mutex> mu_;
  mutable std::unordered_map<std::string, std::vector<size_t>>
      adjustment_cache_ GUARDED_BY(*mu_);
  mutable std::unordered_map<std::string,
                             std::shared_ptr<const std::vector<int64_t>>>
      stratum_cache_ GUARDED_BY(*mu_);

  // Per-treatment engine cache: Pattern::Key() -> engine, with an LRU
  // list (most-recent first) driving byte-budget eviction. Partitions are
  // weak-cached per adjustment key: they stay alive exactly as long as
  // some engine (cached or handed out) references them.
  struct EngineEntry {
    std::shared_ptr<const CateStatsEngine> engine;
    std::list<std::string>::iterator lru_pos;
    /// The intervention the engine serves — NotifyAppend re-evaluates it
    /// to refresh the treated mask over the appended rows.
    Pattern pattern;
  };
  mutable std::unordered_map<std::string, EngineEntry> engines_
      GUARDED_BY(*mu_);
  mutable std::list<std::string> engine_lru_ GUARDED_BY(*mu_);
  mutable std::unordered_map<std::string,
                             std::weak_ptr<const ConfounderPartition>>
      partitions_ GUARDED_BY(*mu_);
  mutable size_t engine_budget_ GUARDED_BY(*mu_) = 0;  // 0 = unlimited
  mutable size_t engine_hits_ GUARDED_BY(*mu_) = 0;
  mutable size_t engine_misses_ GUARDED_BY(*mu_) = 0;
  mutable size_t engine_evictions_ GUARDED_BY(*mu_) = 0;
};

}  // namespace faircap

#endif  // FAIRCAP_CAUSAL_ESTIMATOR_H_
