#include "causal/logistic.h"

#include <cmath>

#include "causal/linear_model.h"

namespace faircap {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

double PredictLogistic(const std::vector<double>& beta, const double* x) {
  double z = 0.0;
  for (size_t i = 0; i < beta.size(); ++i) z += beta[i] * x[i];
  return Sigmoid(z);
}

Result<LogisticFit> FitLogistic(const std::vector<double>& x, size_t n,
                                size_t p, const std::vector<double>& y,
                                const LogisticOptions& options) {
  if (x.size() != n * p || y.size() != n) {
    return Status::InvalidArgument("FitLogistic: dimension mismatch");
  }
  if (n < p) {
    return Status::FailedPrecondition(
        "logistic regression needs at least as many rows as features");
  }
  LogisticFit fit;
  fit.beta.assign(p, 0.0);

  std::vector<double> hessian(p * p);
  std::vector<double> gradient(p);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(hessian.begin(), hessian.end(), 0.0);
    std::fill(gradient.begin(), gradient.end(), 0.0);
    // Newton step: H = X'WX + ridge I, g = X'(y - mu) - ridge*beta.
    for (size_t r = 0; r < n; ++r) {
      const double* row = &x[r * p];
      const double mu = PredictLogistic(fit.beta, row);
      const double w = std::max(mu * (1.0 - mu), 1e-10);
      const double resid = y[r] - mu;
      for (size_t i = 0; i < p; ++i) {
        gradient[i] += row[i] * resid;
        for (size_t j = i; j < p; ++j) {
          hessian[i * p + j] += w * row[i] * row[j];
        }
      }
    }
    for (size_t i = 0; i < p; ++i) {
      gradient[i] -= options.ridge * fit.beta[i];
      hessian[i * p + i] += options.ridge;
      for (size_t j = 0; j < i; ++j) hessian[i * p + j] = hessian[j * p + i];
    }
    FAIRCAP_ASSIGN_OR_RETURN(const std::vector<double> delta,
                             SolveSpd(hessian, p, gradient));
    double max_step = 0.0;
    for (size_t i = 0; i < p; ++i) {
      fit.beta[i] += delta[i];
      max_step = std::max(max_step, std::abs(delta[i]));
    }
    fit.iterations = iter + 1;
    if (max_step < options.tolerance) {
      fit.converged = true;
      break;
    }
  }
  return fit;
}

Result<LogisticFit> FitLogisticGrouped(const std::vector<double>& x, size_t g,
                                       size_t p,
                                       const std::vector<double>& trials,
                                       const std::vector<double>& successes,
                                       const LogisticOptions& options) {
  if (x.size() != g * p || trials.size() != g || successes.size() != g) {
    return Status::InvalidArgument("FitLogisticGrouped: dimension mismatch");
  }
  double n = 0.0;
  for (double t : trials) n += t;
  if (n < static_cast<double>(p)) {
    return Status::FailedPrecondition(
        "logistic regression needs at least as many rows as features");
  }
  LogisticFit fit;
  fit.beta.assign(p, 0.0);

  std::vector<double> hessian(p * p);
  std::vector<double> gradient(p);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(hessian.begin(), hessian.end(), 0.0);
    std::fill(gradient.begin(), gradient.end(), 0.0);
    // Newton step over groups: every observation in group r shares the
    // design row and mu, so H += trials*w x x' and g += (succ - trials*mu) x.
    for (size_t r = 0; r < g; ++r) {
      const double* row = &x[r * p];
      if (trials[r] == 0.0) continue;
      const double mu = PredictLogistic(fit.beta, row);
      const double w = std::max(mu * (1.0 - mu), 1e-10) * trials[r];
      const double resid = successes[r] - trials[r] * mu;
      for (size_t i = 0; i < p; ++i) {
        gradient[i] += row[i] * resid;
        for (size_t j = i; j < p; ++j) {
          hessian[i * p + j] += w * row[i] * row[j];
        }
      }
    }
    for (size_t i = 0; i < p; ++i) {
      gradient[i] -= options.ridge * fit.beta[i];
      hessian[i * p + i] += options.ridge;
      for (size_t j = 0; j < i; ++j) hessian[i * p + j] = hessian[j * p + i];
    }
    FAIRCAP_ASSIGN_OR_RETURN(const std::vector<double> delta,
                             SolveSpd(hessian, p, gradient));
    double max_step = 0.0;
    for (size_t i = 0; i < p; ++i) {
      fit.beta[i] += delta[i];
      max_step = std::max(max_step, std::abs(delta[i]));
    }
    fit.iterations = iter + 1;
    if (max_step < options.tolerance) {
      fit.converged = true;
      break;
    }
  }
  return fit;
}

}  // namespace faircap
