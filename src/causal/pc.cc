#include "causal/pc.h"

#include <algorithm>
#include <cstdint>
#include <functional>

#include "causal/stats.h"

namespace faircap {

namespace {

// Discretized view of the data: every variable becomes integer codes in
// [0, card), with -1 for nulls.
struct CodedData {
  std::vector<std::vector<int32_t>> codes;  // [var][row]
  std::vector<size_t> cards;
  std::vector<std::string> names;
  size_t num_rows = 0;
};

CodedData Encode(const DataFrame& df, const PcOptions& options) {
  CodedData data;
  const size_t n_all = df.num_rows();
  const size_t n = options.max_rows > 0 && options.max_rows < n_all
                       ? options.max_rows
                       : n_all;
  data.num_rows = n;
  for (size_t attr = 0; attr < df.num_columns(); ++attr) {
    const AttributeSpec& spec = df.schema().attribute(attr);
    if (spec.role == AttrRole::kIgnored) continue;
    const Column& col = df.column(attr);
    std::vector<int32_t> codes(n, -1);
    size_t card = 0;
    if (col.type() == AttrType::kCategorical) {
      for (size_t r = 0; r < n; ++r) codes[r] = col.code(r);
      card = col.num_categories();
    } else {
      // Quantile-bin numeric variables.
      std::vector<double> values;
      values.reserve(n);
      for (size_t r = 0; r < n; ++r) {
        if (!col.IsNull(r)) values.push_back(col.numeric(r));
      }
      std::sort(values.begin(), values.end());
      const size_t bins = std::max<size_t>(2, options.numeric_bins);
      std::vector<double> edges;
      for (size_t b = 1; b < bins && !values.empty(); ++b) {
        edges.push_back(values[values.size() * b / bins]);
      }
      for (size_t r = 0; r < n; ++r) {
        if (col.IsNull(r)) continue;
        codes[r] = static_cast<int32_t>(
            std::upper_bound(edges.begin(), edges.end(), col.numeric(r)) -
            edges.begin());
      }
      card = edges.size() + 1;
    }
    if (card < 2) continue;  // constant column: no edges possible
    data.codes.push_back(std::move(codes));
    data.cards.push_back(card);
    data.names.push_back(spec.name);
  }
  return data;
}

// Joint stratum ids over the conditioning set.
std::vector<int64_t> StrataOf(const CodedData& data,
                              const std::vector<size_t>& cond) {
  std::vector<int64_t> strata(data.num_rows, 0);
  for (size_t r = 0; r < data.num_rows; ++r) {
    int64_t id = 0;
    for (size_t v : cond) {
      const int32_t c = data.codes[v][r];
      if (c < 0) {
        id = -1;
        break;
      }
      id = id * static_cast<int64_t>(data.cards[v] + 1) + c;
    }
    strata[r] = id;
  }
  return strata;
}

bool Independent(const CodedData& data, size_t x, size_t y,
                 const std::vector<size_t>& cond, double alpha) {
  std::vector<int64_t> strata = StrataOf(data, cond);
  // Rows with null in the conditioning set carry stratum -1; drop them by
  // marking x as null there (ConditionalChiSquare skips nulls).
  std::vector<int32_t> xs = data.codes[x];
  for (size_t r = 0; r < data.num_rows; ++r) {
    if (strata[r] < 0) xs[r] = -1;
  }
  const IndependenceTest t = ConditionalChiSquare(
      xs, data.cards[x], data.codes[y], data.cards[y], strata);
  if (!t.informative) return true;  // no power: treat as independent
  return t.p_value > alpha;
}

// Enumerates size-k subsets of `pool` (excluding `skip`), invoking fn;
// returns true if fn returned true for some subset (early exit).
bool ForEachSubset(const std::vector<size_t>& pool, size_t k,
                   const std::function<bool(const std::vector<size_t>&)>& fn) {
  if (k > pool.size()) return false;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<size_t> subset(k);
  for (;;) {
    for (size_t i = 0; i < k; ++i) subset[i] = pool[idx[i]];
    if (fn(subset)) return true;
    // Next combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + pool.size() - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return false;
    }
    if (k == 0) return false;
  }
}

}  // namespace

Result<CausalDag> RunPc(const DataFrame& df, const PcOptions& options) {
  const CodedData data = Encode(df, options);
  const size_t v = data.codes.size();
  if (v == 0) {
    return Status::FailedPrecondition("no usable attributes for PC");
  }

  // --- Skeleton search ---------------------------------------------------
  std::vector<std::vector<bool>> adjacent(v, std::vector<bool>(v, true));
  for (size_t i = 0; i < v; ++i) adjacent[i][i] = false;
  // sepsets[i][j]: witness conditioning set that separated i and j.
  std::vector<std::vector<std::vector<size_t>>> sepsets(
      v, std::vector<std::vector<size_t>>(v));
  std::vector<std::vector<bool>> has_sepset(v, std::vector<bool>(v, false));

  for (size_t level = 0; level <= options.max_condition_size; ++level) {
    bool any_tested = false;
    for (size_t i = 0; i < v; ++i) {
      for (size_t j = i + 1; j < v; ++j) {
        if (!adjacent[i][j]) continue;
        // Pool: neighbors of i or of j, excluding i and j.
        std::vector<size_t> pool;
        for (size_t k = 0; k < v; ++k) {
          if (k == i || k == j) continue;
          if (adjacent[i][k] || adjacent[j][k]) pool.push_back(k);
        }
        if (pool.size() < level) continue;
        any_tested = true;
        const bool separated = ForEachSubset(
            pool, level, [&](const std::vector<size_t>& cond) {
              if (Independent(data, i, j, cond, options.alpha)) {
                sepsets[i][j] = cond;
                sepsets[j][i] = cond;
                has_sepset[i][j] = has_sepset[j][i] = true;
                return true;
              }
              return false;
            });
        if (separated) {
          adjacent[i][j] = adjacent[j][i] = false;
        }
      }
    }
    if (!any_tested) break;
  }

  // --- Orientation -------------------------------------------------------
  // directed[i][j] == true means i -> j has been decided.
  std::vector<std::vector<bool>> directed(v, std::vector<bool>(v, false));
  auto is_undirected = [&](size_t i, size_t j) {
    return adjacent[i][j] && !directed[i][j] && !directed[j][i];
  };

  // V-structures: i - k - j with i,j non-adjacent and k not in sepset(i,j).
  for (size_t k = 0; k < v; ++k) {
    for (size_t i = 0; i < v; ++i) {
      if (i == k || !adjacent[i][k]) continue;
      for (size_t j = i + 1; j < v; ++j) {
        if (j == k || !adjacent[j][k] || adjacent[i][j]) continue;
        const auto& sep = sepsets[i][j];
        const bool k_in_sep =
            std::find(sep.begin(), sep.end(), k) != sep.end();
        if (has_sepset[i][j] && !k_in_sep) {
          if (is_undirected(i, k)) directed[i][k] = true;
          if (is_undirected(j, k)) directed[j][k] = true;
        }
      }
    }
  }

  // Meek rules 1 and 2 to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < v; ++i) {
      for (size_t j = 0; j < v; ++j) {
        if (!is_undirected(i, j)) continue;
        // Rule 1: exists k with k -> i and k,j non-adjacent  =>  i -> j.
        for (size_t k = 0; k < v; ++k) {
          if (k == i || k == j) continue;
          if (directed[k][i] && !adjacent[k][j]) {
            directed[i][j] = true;
            changed = true;
            break;
          }
        }
        if (!is_undirected(i, j)) continue;
        // Rule 2: i -> k -> j and i - j  =>  i -> j.
        for (size_t k = 0; k < v; ++k) {
          if (k == i || k == j) continue;
          if (directed[i][k] && directed[k][j]) {
            directed[i][j] = true;
            changed = true;
            break;
          }
        }
      }
    }
  }

  // Outcome sink constraint + deterministic completion.
  const Result<size_t> outcome_attr = df.schema().OutcomeIndex();
  std::string outcome_name;
  if (outcome_attr.ok()) {
    outcome_name = df.schema().attribute(*outcome_attr).name;
  }
  size_t outcome_var = v;
  for (size_t i = 0; i < v; ++i) {
    if (data.names[i] == outcome_name) outcome_var = i;
  }

  // Build edges, skipping anything that would create a cycle (possible
  // with conflicting v-structures on finite data).
  Result<CausalDag> dag_result = CausalDag::Create(data.names, {});
  CausalDag dag = std::move(dag_result).ValueOrDie();
  auto try_add = [&](size_t from, size_t to) {
    (void)dag.AddEdge(data.names[from], data.names[to]);
  };
  // First the decided orientations (outcome edges forced inward).
  for (size_t i = 0; i < v; ++i) {
    for (size_t j = 0; j < v; ++j) {
      if (!adjacent[i][j] || i == j) continue;
      if (directed[i][j] && !directed[j][i]) {
        if (i == outcome_var) continue;  // outcome is a sink
        if (i < j || !directed[j][i]) try_add(i, j);
      }
    }
  }
  // Then the leftovers: orient toward the outcome when incident to it,
  // otherwise from the lower to the higher index.
  for (size_t i = 0; i < v; ++i) {
    for (size_t j = i + 1; j < v; ++j) {
      if (!is_undirected(i, j)) continue;
      size_t from = i, to = j;
      if (i == outcome_var) {
        from = j;
        to = i;
      }
      try_add(from, to);
    }
  }
  return dag;
}

}  // namespace faircap
