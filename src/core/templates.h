// Natural-language rendering of prescription rules (Section 7.1: "The
// generated rules were translated into natural language using simple,
// manually constructed templates"). Produces sentences like
//
//   "For individuals with AgeGroup 25-34 and Dependents yes, set Role to
//    frontend (expected gain 44009; protected 13000, non-protected 46000,
//    applies to 1090 individuals)."

#ifndef FAIRCAP_CORE_TEMPLATES_H_
#define FAIRCAP_CORE_TEMPLATES_H_

#include <string>

#include "core/rule.h"

namespace faircap {

/// Options controlling the rendering.
struct TemplateOptions {
  /// Unit printed before utilities (e.g. "$"); empty for probabilities.
  std::string utility_unit;
  /// Include the per-group utilities in the sentence.
  bool include_group_utilities = true;
  /// Include the number of covered individuals.
  bool include_support = true;
};

/// Renders one rule as an English sentence.
std::string RuleToNaturalLanguage(const PrescriptionRule& rule,
                                  const Schema& schema,
                                  const TemplateOptions& options = {});

/// Renders a whole ruleset as a numbered list.
std::string RulesetToNaturalLanguage(
    const std::vector<PrescriptionRule>& rules, const Schema& schema,
    const TemplateOptions& options = {});

}  // namespace faircap

#endif  // FAIRCAP_CORE_TEMPLATES_H_
