// Incremental append + delta-aware re-mining (perf optimization): after
// rows are appended to the table (DataFrame::AppendFrame), a re-mine
// should pay only for what the delta touched — appending 1% of the rows
// should cost ~1% of a cold run. Two reuse levels, both self-validating:
//
//   * Accum-level (always on): per-(grouping, intervention) sufficient
//     statistics (CateStatsEngine::SubgroupAccums) are cached across
//     runs. On a hit whose partition lineage still matches, only the
//     delta rows [rows_covered, num_rows) are accumulated and merged in
//     — exactly the shard-merge contract, so integer statistics match a
//     cold accumulation bit for bit and FP statistics to shard-merge
//     precision. A partition rebuilt cold gets a fresh lineage id, so a
//     stale accum can never be merged against re-numbered cells.
//
//   * Group-level (gated): a grouping pattern whose support did not
//     change gained no delta rows, so every estimate over its coverage
//     is untouched — its cached candidate rules are re-emitted without
//     re-running the intervention lattice. Sound only while no numeric
//     attribute could enter an adjustment set (numeric quantile edges
//     shift under appends, silently re-binning resident rows) — the
//     gate is computed once from the schema. Any categorical column
//     gaining categories voids everything (cell numbering, one-hot
//     layouts and the intervention atom set all change): the caches are
//     cleared and the next run is a full re-mine.
//
// IncrementalSession packages the pattern: it owns the table, DAG and a
// single long-lived FairCap wired to a shared IncrementalState, so
// Run / Append / Run sequences reuse everything the append left valid.
// All reuse decisions surface as append.* counters in the run report.

#ifndef FAIRCAP_CORE_INCREMENTAL_H_
#define FAIRCAP_CORE_INCREMENTAL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "causal/cate_stats_engine.h"
#include "core/faircap.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace faircap {

/// Cross-run reuse state for delta-aware re-mining. Thread-safe for the
/// Step-2 pattern fan-out (each grouping pattern is mined by exactly one
/// task per run; the maps are mutex-guarded, entries are pointer-stable).
/// Runs must not overlap each other or OnAppend.
class IncrementalState {
 public:
  IncrementalState() = default;

  /// Records the schema snapshot reuse soundness is judged against
  /// (per-column category counts, the numeric-attribute gate). Called by
  /// FairCap::Create when the options carry this state; idempotent for
  /// the same table.
  void Attach(const DataFrame& df);

  /// Brings the state current after DataFrame::AppendFrame. If any
  /// categorical column gained categories, every cache is cleared and
  /// `append.full_remines` is incremented (the next run re-mines cold);
  /// otherwise the caches stay valid and the next run reuses them.
  void OnAppend(const DataFrame& df);

  /// Group-level reuse: when sound (see header comment) and the group's
  /// support matches the cached run, re-materializes the cached candidate
  /// rules (coverage bitmaps are rebuilt from `group.coverage`, which the
  /// Apriori re-run already extended) and returns true. Counts
  /// `append.patterns_reused` on a hit, `append.patterns_rechecked` on a
  /// miss.
  bool TryReuseGroup(const FrequentPattern& group,
                     const Bitmap& protected_mask,
                     std::vector<PrescriptionRule>* rules,
                     size_t* num_evaluated);

  /// Stores a mined group's candidate rules for the next run. Coverage
  /// bitmaps are dropped (they are re-materialized on reuse).
  void StoreGroup(const FrequentPattern& group,
                  const std::vector<PrescriptionRule>& rules,
                  size_t num_evaluated);

  /// Accum-level reuse: the drop-in replacement for
  /// CateEstimator::EstimateSubgroups on the batch path. Accumulation is
  /// always split on `protected_mask` so one cached shape serves both
  /// the fairness-aware evaluator and rule costing; `want_subgroups`
  /// controls which solves run. Cache hit with matching partition
  /// lineage: accumulate only the delta rows and merge
  /// (`append.evals_delta`), or solve straight from the cache when
  /// already current (`append.evals_cached`). Miss or stale lineage:
  /// full (optionally sharded) pass, cached for next time
  /// (`append.evals_full`).
  Result<CateSubgroupEstimates> EstimateWithCache(
      const CateEstimator& estimator, const std::string& group_key,
      const Pattern& intervention, const Bitmap& group,
      const Bitmap& protected_mask, bool want_subgroups,
      size_t min_subgroup_size, bool skip_subgroups_unless_positive,
      const ShardPlan* plan, TaskGroup* tasks);

  /// Cache observability (tests, bench_append).
  struct CacheStats {
    size_t accum_entries = 0;
    size_t group_entries = 0;
    size_t accum_bytes = 0;  ///< approximate
    bool group_reuse_sound = false;
  };
  CacheStats GetCacheStats() const;

 private:
  struct AccumEntry {
    CateStatsEngine::SubgroupAccums accums;
    uint64_t lineage = 0;  ///< partition lineage the cell slots refer to
  };
  struct GroupEntry {
    size_t support = 0;
    std::vector<PrescriptionRule> rules;  ///< coverage bitmaps empty
    size_t num_evaluated = 0;
  };

  static size_t AccumBytes(const CateStatsEngine::SubgroupAccums& accums);

  mutable Mutex mu_;
  bool attached_ GUARDED_BY(mu_) = false;
  /// False once any non-outcome numeric attribute exists: appended rows
  /// shift quantile edges, re-binning resident rows, so support-unchanged
  /// no longer implies estimates-unchanged.
  bool numeric_ok_ GUARDED_BY(mu_) = false;
  std::vector<size_t> category_counts_ GUARDED_BY(mu_);
  /// Pointer-valued so entries stay stable across rehash; an entry is
  /// mutated outside the lock only by the one pattern task mining its
  /// group this run.
  std::unordered_map<std::string, std::unique_ptr<AccumEntry>> accums_
      GUARDED_BY(mu_);
  std::unordered_map<std::string, GroupEntry> groups_ GUARDED_BY(mu_);
  size_t accum_bytes_ GUARDED_BY(mu_) = 0;
};

/// Owns a dataset and one long-lived FairCap wired for incremental
/// re-mining: Run / Append / Run sequences reuse index masks, confounder
/// partitions, engines, sufficient statistics and (when sound) whole
/// mined groups across the appends.
class IncrementalSession {
 public:
  /// Takes ownership of the table and DAG (pinned behind unique_ptr so
  /// the borrowed references inside FairCap stay stable).
  static Result<IncrementalSession> Create(DataFrame df, CausalDag dag,
                                           Pattern protected_pattern,
                                           FairCapOptions options = {});

  /// Full pipeline run over the current table; warm after an Append.
  Result<FairCapResult> Run();

  /// Appends `delta`'s rows (same schema) to the table and refreshes all
  /// cached state: predicate-index masks extend lazily, confounder
  /// partitions and engines are copy-extended where possible, and the
  /// incremental caches are validated (or cleared when the delta voids
  /// them). Counts append.rows_appended / append.batches.
  Status Append(const DataFrame& delta);

  const DataFrame& df() const { return *df_; }
  FairCap& faircap() { return *faircap_; }
  IncrementalState& state() { return *state_; }

 private:
  IncrementalSession() = default;

  std::unique_ptr<DataFrame> df_;
  std::unique_ptr<CausalDag> dag_;
  std::shared_ptr<IncrementalState> state_;
  std::unique_ptr<FairCap> faircap_;
};

}  // namespace faircap

#endif  // FAIRCAP_CORE_INCREMENTAL_H_
