// PrescriptionRule: (grouping pattern, intervention pattern) plus its
// estimated utilities (Definitions 4.3 / 4.4). Utilities are CATE values:
// overall on Coverage(P_grp), and separately on the protected and
// non-protected parts of the coverage.

#ifndef FAIRCAP_CORE_RULE_H_
#define FAIRCAP_CORE_RULE_H_

#include <string>

#include "dataframe/bitmap.h"
#include "mining/pattern.h"

namespace faircap {

/// One prescription rule with cached coverage and utilities.
struct PrescriptionRule {
  Pattern grouping;      ///< over immutable attributes (P_grp)
  Pattern intervention;  ///< over mutable attributes (P_int)

  Bitmap coverage;            ///< Coverage(P_grp) over the full DataFrame
  Bitmap coverage_protected;  ///< coverage ∩ protected group
  size_t support = 0;             ///< |coverage|
  size_t support_protected = 0;   ///< |coverage_protected|

  /// CATE(P_int, O | P_grp) — Definition 4.4 (1). Zero if coverage empty.
  double utility = 0.0;
  /// CATE on the protected part — Definition 4.4 (2). Zero if empty.
  double utility_protected = 0.0;
  /// CATE on the non-protected part — Definition 4.4 (3). Zero if empty.
  double utility_nonprotected = 0.0;

  /// Fairness-aware selection score (Section 5.2); filled during mining.
  double benefit = 0.0;

  /// Standard error of the overall CATE (0 when unavailable).
  double std_error = 0.0;

  /// False when the respective subgroup is non-empty but its CATE could
  /// not be estimated (no overlap). Definition 4.4 sets the utility of an
  /// *empty* subgroup to 0; an inestimable non-empty subgroup instead
  /// makes the rule unusable under an active fairness constraint because
  /// its fairness cannot be certified.
  bool utility_protected_estimable = true;
  bool utility_nonprotected_estimable = true;

  /// True when both subgroup utilities are usable for fairness reasoning.
  bool GroupUtilitiesEstimable() const {
    return utility_protected_estimable && utility_nonprotected_estimable;
  }

  /// |utility_nonprotected - utility_protected| — per-rule SP gap.
  double FairnessGap() const;

  /// Renders "IF <grouping> THEN <intervention> (utility=..., p=..., np=...)".
  std::string ToString(const Schema& schema) const;
};

}  // namespace faircap

#endif  // FAIRCAP_CORE_RULE_H_
