// Greedy ruleset selection (Section 5.3). At each iteration the rule with
// the highest marginal score — coverage gain (until coverage constraints
// are met) + benefit + expected-utility gain — is added. Matroid
// constraints (rule coverage, individual fairness; Appendix 9.1) are
// enforced by pre-filtering candidates; group constraints are enforced
// during selection and by a final trim pass.

#ifndef FAIRCAP_CORE_GREEDY_H_
#define FAIRCAP_CORE_GREEDY_H_

#include <vector>

#include "core/coverage.h"
#include "core/fairness.h"
#include "core/rule.h"
#include "core/ruleset.h"
#include "util/result.h"

namespace faircap {

/// Tuning knobs for greedy selection.
struct GreedyOptions {
  /// Weights of the three score terms. The paper sums raw coverage,
  /// benefit, and expected utility; we normalize each term to a common
  /// scale (fractions of population / of the best candidate utility) and
  /// keep the same argmax structure.
  double weight_coverage = 1.0;
  double weight_benefit = 1.0;
  double weight_utility = 1.0;
  /// Stop when the marginal (normalized) score falls below this.
  double min_marginal_gain = 1e-3;
  /// Hard cap on ruleset size (Table 4/5 saturate at 20).
  size_t max_rules = 20;
  /// Total intervention budget (0 = unlimited). Requires per-candidate
  /// costs; selection then maximizes marginal score per unit cost and
  /// never exceeds the budget (Section 8 extension).
  double budget = 0.0;
  /// Workers for the per-iteration candidate-trial evaluation (0 =
  /// hardware, 1 = sequential). Trials are independent reads of the
  /// selection state and the argmax scan stays sequential in candidate
  /// order, so the selected ruleset is identical at every thread count.
  size_t num_threads = 1;
};

/// Outcome of a greedy run.
struct GreedyResult {
  std::vector<size_t> selected;  ///< indices into the candidate vector
  RulesetStats stats;
  /// True when both group-scope constraints hold for the final set.
  bool constraints_satisfied = false;
  /// Total cost of the selection (0 unless costs were supplied).
  double total_cost = 0.0;
};

/// Selects a ruleset from `candidates`. Candidates violating matroid
/// constraints (rule coverage / individual fairness) are never selected.
/// `candidate_costs` (parallel to `candidates`) enables the budget in
/// GreedyOptions; pass nullptr for unit-free selection.
GreedyResult GreedySelect(const std::vector<PrescriptionRule>& candidates,
                          const Bitmap& protected_mask,
                          const FairnessConstraint& fairness,
                          const CoverageConstraint& coverage,
                          const GreedyOptions& options = {},
                          const std::vector<double>* candidate_costs = nullptr);

}  // namespace faircap

#endif  // FAIRCAP_CORE_GREEDY_H_
