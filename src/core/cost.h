// Intervention cost model — the Section 8 ("Considering constraints,
// costs, and resources") extension. Each intervention atom (attribute =
// value) can carry a cost (e.g. "move to the US" is costlier than "learn
// Python"); a rule's per-individual cost is the sum of its atoms' costs,
// and its total cost scales with the individuals it covers. A budget then
// bounds the total cost of the selected ruleset.

#ifndef FAIRCAP_CORE_COST_H_
#define FAIRCAP_CORE_COST_H_

#include <string>
#include <unordered_map>

#include "core/rule.h"

namespace faircap {

/// Per-atom intervention costs with attribute-level and model-level
/// defaults.
class InterventionCostModel {
 public:
  /// Cost used when neither the atom nor its attribute has an override.
  explicit InterventionCostModel(double default_atom_cost = 1.0)
      : default_atom_cost_(default_atom_cost) {}

  /// Sets the cost of prescribing `attr = value`.
  void SetAtomCost(const std::string& attr, const std::string& value,
                   double cost);

  /// Sets the default cost for any prescription touching `attr`.
  void SetAttributeCost(const std::string& attr, double cost);

  double default_atom_cost() const { return default_atom_cost_; }

  /// Cost of one atom, honoring atom > attribute > model precedence.
  double AtomCost(const std::string& attr, const std::string& value) const;

  /// Per-individual cost of an intervention pattern (sum over atoms).
  double PatternCost(const Pattern& pattern, const Schema& schema) const;

  /// Total cost of prescribing `rule` to everyone it covers.
  double RuleTotalCost(const PrescriptionRule& rule,
                       const Schema& schema) const;

 private:
  double default_atom_cost_;
  std::unordered_map<std::string, double> attribute_costs_;
  std::unordered_map<std::string, double> atom_costs_;  // "attr=value"
};

}  // namespace faircap

#endif  // FAIRCAP_CORE_COST_H_
