// Table formatting of solution metrics: the columns reported in Tables
// 4/5/6 of the paper (#rules, coverage, coverage protected, expected
// utilities, unfairness).

#ifndef FAIRCAP_CORE_METRICS_H_
#define FAIRCAP_CORE_METRICS_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/ruleset.h"

namespace faircap {

/// One labeled row of a results table.
struct SolutionRow {
  std::string label;
  RulesetStats stats;
  double runtime_seconds = -1.0;  ///< negative = omit
};

/// Renders the Table-4-style header.
std::string MetricsHeader(bool with_runtime = false);

/// Renders one row: label, #rules, coverage%, coverage-protected%,
/// exp-utility, exp-utility non-protected, exp-utility protected,
/// unfairness [, runtime].
std::string MetricsRow(const SolutionRow& row, bool with_runtime = false);

/// Prints a full table to `os`.
void PrintMetricsTable(std::ostream& os, const std::string& title,
                       const std::vector<SolutionRow>& rows,
                       bool with_runtime = false);

}  // namespace faircap

#endif  // FAIRCAP_CORE_METRICS_H_
