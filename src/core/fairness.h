// Fairness constraints (Section 4.6): statistical parity (SP) and bounded
// group loss (BGL), each at group or individual scope — four constraint
// families, plus "none".
//
//   SP  group:      |ExpUtility_p(R) - ExpUtility_p̄(R)| <= epsilon
//   SP  individual: for every rule, |utility_p(r) - utility_p̄(r)| <= epsilon
//   BGL group:      ExpUtility_p(R) >= tau
//   BGL individual: for every rule, utility_p(r) >= tau

#ifndef FAIRCAP_CORE_FAIRNESS_H_
#define FAIRCAP_CORE_FAIRNESS_H_

#include <string>

#include "core/rule.h"

namespace faircap {

struct RulesetStats;  // core/ruleset.h

/// Which fairness definition applies.
enum class FairnessKind { kNone, kStatisticalParity, kBoundedGroupLoss };

/// Group-level (on the ruleset) or individual-level (on every rule).
enum class FairnessScope { kGroup, kIndividual };

/// A fairness constraint instance.
struct FairnessConstraint {
  FairnessKind kind = FairnessKind::kNone;
  FairnessScope scope = FairnessScope::kGroup;
  /// SP threshold (same unit as the outcome).
  double epsilon = 0.0;
  /// BGL threshold (minimum protected utility).
  double tau = 0.0;

  static FairnessConstraint None() { return {}; }
  static FairnessConstraint GroupSP(double epsilon);
  static FairnessConstraint IndividualSP(double epsilon);
  static FairnessConstraint GroupBGL(double tau);
  static FairnessConstraint IndividualBGL(double tau);

  bool active() const { return kind != FairnessKind::kNone; }
  bool individual() const {
    return active() && scope == FairnessScope::kIndividual;
  }
  bool group() const { return active() && scope == FairnessScope::kGroup; }

  /// Individual-scope test for one rule (always true for group scope or
  /// no constraint, since those do not restrict single rules).
  bool RuleSatisfies(const PrescriptionRule& rule) const;

  /// Group-scope test on ruleset statistics (always true for individual
  /// scope or no constraint).
  bool StatsSatisfy(const RulesetStats& stats) const;

  /// Amount by which `stats` violates the group constraint (0 when
  /// satisfied or not applicable). Used by greedy to steer selection.
  double GroupViolation(const RulesetStats& stats) const;

  std::string ToString() const;
};

}  // namespace faircap

#endif  // FAIRCAP_CORE_FAIRNESS_H_
