#include "core/coverage.h"

#include <algorithm>
#include <cmath>

#include "core/ruleset.h"
#include "util/string_util.h"

namespace faircap {

CoverageConstraint CoverageConstraint::Group(double theta,
                                             double theta_protected) {
  CoverageConstraint c;
  c.kind = CoverageKind::kGroup;
  c.theta = theta;
  c.theta_protected = theta_protected;
  return c;
}

CoverageConstraint CoverageConstraint::Rule(double theta,
                                            double theta_protected) {
  CoverageConstraint c = Group(theta, theta_protected);
  c.kind = CoverageKind::kRule;
  return c;
}

bool CoverageConstraint::RuleSatisfies(const PrescriptionRule& rule,
                                       size_t population,
                                       size_t population_protected) const {
  if (kind != CoverageKind::kRule) return true;
  const double need = theta * static_cast<double>(population);
  const double need_p =
      theta_protected * static_cast<double>(population_protected);
  return static_cast<double>(rule.support) >= need &&
         static_cast<double>(rule.support_protected) >= need_p;
}

bool CoverageConstraint::StatsSatisfy(const RulesetStats& stats) const {
  return GroupShortfall(stats) <= 0.0;
}

double CoverageConstraint::GroupShortfall(const RulesetStats& stats) const {
  if (kind != CoverageKind::kGroup) return 0.0;
  const double shortfall =
      std::max(0.0, theta - stats.coverage_fraction) +
      std::max(0.0, theta_protected - stats.coverage_protected_fraction);
  return shortfall;
}

std::string CoverageConstraint::ToString() const {
  switch (kind) {
    case CoverageKind::kNone:
      return "no coverage constraint";
    case CoverageKind::kGroup:
      return "group coverage (theta=" + FormatDouble(theta) +
             ", theta_p=" + FormatDouble(theta_protected) + ")";
    case CoverageKind::kRule:
      return "rule coverage (theta=" + FormatDouble(theta) +
             ", theta_p=" + FormatDouble(theta_protected) + ")";
  }
  return "?";
}

}  // namespace faircap
