#include "core/greedy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>

#include "core/benefit.h"
#include "util/task_scheduler.h"

namespace faircap {

namespace {

// Normalized score of a ruleset (higher is better). `coverage_active` keeps
// the coverage term in play until the coverage constraint is satisfied
// (Section 5.3: "once the coverage constraints are met, the focus shifts
// to maximizing benefit and utility"). With no coverage constraint the
// coverage term stays active — the paper's unconstrained objective still
// rewards broadly applicable rules through ExpUtility, and retaining the
// term reproduces its high-coverage unconstrained solutions.
// The benefit term uses the ruleset *mean* benefit (benefit(R) read as a
// set-level score): a redundant or low-benefit addition drags the mean
// down, which is what lets the marginal-gain stopping rule fire before
// max_rules.
double ScoreOf(const RulesetStats& stats, double benefit_sum,
               double utility_scale, bool coverage_active,
               const GreedyOptions& options) {
  double score = 0.0;
  if (coverage_active) {
    score += options.weight_coverage *
             (stats.coverage_fraction + stats.coverage_protected_fraction);
  }
  const double mean_benefit =
      stats.num_rules == 0
          ? 0.0
          : benefit_sum / static_cast<double>(stats.num_rules);
  score += options.weight_benefit * mean_benefit / utility_scale;
  score += options.weight_utility * stats.exp_utility / utility_scale;
  return score;
}

// Incremental trial evaluation for the greedy loop. Recomputing
// RulesetStats from scratch for every candidate trial costs
// O((|selected|+1) * N) plus three N-sized allocations per trial — at
// scale that made Step-3 selection the dominant phase of the whole
// pipeline (and the floor under the incremental-append ratio, since a
// warm re-mine pays it in full).
//
// The key structure: each of the selected set's per-row aggregates
// (max utility over covering rules; min protected-side utility; max
// nonprotected-side utility) takes at most one distinct value per
// selected rule. Covered rows are therefore kept as *region bitmaps*,
// one per distinct aggregate value, and a candidate's trial delta is a
// handful of fused AndCounts against those regions — word-level bitmap
// work instead of a per-row scan of the candidate's coverage. Accepting
// a rule migrates the rows it improves into its value's region with
// word-level bitmap algebra. Trials and accepts share the same delta
// arithmetic and the same (deterministic, acceptance-order) region
// iteration order, so a trial's stats and the post-accept stats are
// bitwise equal.
class SelectionState {
 public:
  SelectionState(const std::vector<PrescriptionRule>& candidates,
                 const Bitmap& protected_mask)
      : candidates_(candidates),
        protected_mask_(protected_mask),
        n_(protected_mask.size()),
        population_protected_(protected_mask.Count()),
        covered_(n_),
        covered_protected_(n_),
        support_(candidates.size(), 0),
        support_protected_(candidates.size(), 0) {
    // Per-candidate coverage totals are state-independent; computing
    // them once keeps every trial at pure AndCount cost.
    for (size_t i = 0; i < candidates.size(); ++i) {
      support_[i] = candidates[i].coverage.Count();
      support_protected_[i] = candidates[i].coverage.AndCount(protected_mask);
    }
  }

  /// Stats of selected-so-far plus `candidates_[idx]`.
  RulesetStats TrialAdd(size_t idx) const {
    return Assemble(num_rules_ + 1, ComputeDelta(idx));
  }

  /// Folds `candidates_[idx]` into the selected set.
  void Accept(size_t idx) {
    const Delta d = ComputeDelta(idx);
    const PrescriptionRule& rule = candidates_[idx];
    const Bitmap& cov = rule.coverage;
    Bitmap fresh = cov;
    fresh.AndNot(covered_);

    // Overall: rows whose best covering utility rises to rule.utility —
    // fresh rows plus rows sitting in regions of strictly lower value.
    Bitmap gained = std::move(fresh);
    for (auto& [v, region] : overall_) {
      if (v < rule.utility) {
        gained |= region & cov;
        region.AndNot(cov);
      }
    }
    Bitmap gained_protected = gained & protected_mask_;
    RegionFor(&overall_, rule.utility) |= gained;

    // Protected side: min over covering rules, so regions of strictly
    // higher value drain into this rule's.
    for (auto& [v, region] : protected_regions_) {
      if (v > rule.utility_protected) {
        gained_protected |= region & cov;
        region.AndNot(cov);
      }
    }
    RegionFor(&protected_regions_, rule.utility_protected) |= gained_protected;

    // Nonprotected side: max again, over non-protected covered rows.
    Bitmap gained_nonprotected = cov;
    gained_nonprotected.AndNot(covered_);
    gained_nonprotected.AndNot(protected_mask_);
    for (auto& [v, region] : nonprotected_regions_) {
      if (v < rule.utility_nonprotected) {
        gained_nonprotected |= region & cov;
        region.AndNot(cov);
      }
    }
    RegionFor(&nonprotected_regions_, rule.utility_nonprotected) |=
        gained_nonprotected;

    covered_ |= cov;
    covered_protected_ |= cov & protected_mask_;
    sum_overall_ += d.sum_overall;
    sum_protected_ += d.sum_protected;
    sum_nonprotected_ += d.sum_nonprotected;
    covered_count_ += d.covered;
    covered_protected_count_ += d.covered_protected;
    ++num_rules_;
  }

  RulesetStats Current() const { return Assemble(num_rules_, Delta{}); }

 private:
  // Region list: (aggregate value, rows holding it). Insertion order —
  // the acceptance order — fixes the FP summation order of every later
  // trial, keeping results deterministic and thread-count-invariant.
  using Regions = std::vector<std::pair<double, Bitmap>>;

  struct Delta {
    double sum_overall = 0.0;
    double sum_protected = 0.0;
    double sum_nonprotected = 0.0;
    size_t covered = 0;
    size_t covered_protected = 0;
  };

  Bitmap& RegionFor(Regions* regions, double value) {
    for (auto& [v, region] : *regions) {
      if (v == value) return region;
    }
    regions->emplace_back(value, Bitmap(n_));
    return regions->back().second;
  }

  Delta ComputeDelta(size_t idx) const {
    Delta d;
    const PrescriptionRule& rule = candidates_[idx];
    const Bitmap& cov = rule.coverage;
    const double u = rule.utility;
    const double up = rule.utility_protected;
    const double unp = rule.utility_nonprotected;
    d.covered = support_[idx] - cov.AndCount(covered_);
    d.covered_protected =
        support_protected_[idx] - cov.AndCount(covered_protected_);
    const size_t fresh_nonprotected = d.covered - d.covered_protected;
    d.sum_overall = u * static_cast<double>(d.covered);
    for (const auto& [v, region] : overall_) {
      if (u > v) {
        d.sum_overall += (u - v) * static_cast<double>(cov.AndCount(region));
      }
    }
    d.sum_protected = up * static_cast<double>(d.covered_protected);
    for (const auto& [v, region] : protected_regions_) {
      if (up < v) {
        d.sum_protected += (up - v) * static_cast<double>(cov.AndCount(region));
      }
    }
    d.sum_nonprotected = unp * static_cast<double>(fresh_nonprotected);
    for (const auto& [v, region] : nonprotected_regions_) {
      if (unp > v) {
        d.sum_nonprotected +=
            (unp - v) * static_cast<double>(cov.AndCount(region));
      }
    }
    return d;
  }

  RulesetStats Assemble(size_t num_rules, const Delta& d) const {
    RulesetStats stats;
    stats.num_rules = num_rules;
    stats.population = n_;
    stats.population_protected = population_protected_;
    if (n_ == 0) return stats;
    stats.covered = covered_count_ + d.covered;
    stats.covered_protected = covered_protected_count_ + d.covered_protected;
    const size_t covered_nonprotected =
        stats.covered - stats.covered_protected;
    stats.coverage_fraction =
        static_cast<double>(stats.covered) / static_cast<double>(n_);
    stats.coverage_protected_fraction =
        population_protected_ == 0
            ? 0.0
            : static_cast<double>(stats.covered_protected) /
                  static_cast<double>(population_protected_);
    stats.exp_utility =
        (sum_overall_ + d.sum_overall) / static_cast<double>(n_);
    stats.exp_utility_protected =
        stats.covered_protected == 0
            ? 0.0
            : (sum_protected_ + d.sum_protected) /
                  static_cast<double>(stats.covered_protected);
    stats.exp_utility_nonprotected =
        covered_nonprotected == 0
            ? 0.0
            : (sum_nonprotected_ + d.sum_nonprotected) /
                  static_cast<double>(covered_nonprotected);
    stats.unfairness =
        stats.exp_utility_nonprotected - stats.exp_utility_protected;
    return stats;
  }

  const std::vector<PrescriptionRule>& candidates_;
  const Bitmap& protected_mask_;
  const size_t n_;
  const size_t population_protected_;
  Bitmap covered_;
  Bitmap covered_protected_;
  std::vector<size_t> support_;
  std::vector<size_t> support_protected_;
  Regions overall_;
  Regions protected_regions_;
  Regions nonprotected_regions_;
  double sum_overall_ = 0.0;
  double sum_protected_ = 0.0;
  double sum_nonprotected_ = 0.0;
  size_t covered_count_ = 0;
  size_t covered_protected_count_ = 0;
  size_t num_rules_ = 0;
};

}  // namespace

GreedyResult GreedySelect(const std::vector<PrescriptionRule>& candidates,
                          const Bitmap& protected_mask,
                          const FairnessConstraint& fairness,
                          const CoverageConstraint& coverage,
                          const GreedyOptions& options,
                          const std::vector<double>* candidate_costs) {
  GreedyResult result;
  const bool budgeted = options.budget > 0.0 && candidate_costs != nullptr;
  const size_t population = protected_mask.size();
  const size_t population_protected = protected_mask.Count();

  // Matroid pre-filter: rule coverage and individual fairness restrict
  // single rules, so infeasible candidates can never enter any solution.
  std::vector<size_t> eligible;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const PrescriptionRule& rule = candidates[i];
    if (rule.utility <= 0.0) continue;  // only improving rules (Section 4.3)
    if (!coverage.RuleSatisfies(rule, population, population_protected)) {
      continue;
    }
    if (!fairness.RuleSatisfies(rule)) continue;
    eligible.push_back(i);
  }
  if (eligible.empty()) {
    result.stats = ComputeRulesetStats(candidates, {}, protected_mask);
    result.constraints_satisfied =
        fairness.StatsSatisfy(result.stats) &&
        coverage.StatsSatisfy(result.stats);
    return result;
  }

  // Scale so the benefit/utility terms are comparable with coverage
  // fractions regardless of outcome units (dollars vs probabilities).
  double utility_scale = 0.0;
  for (size_t i : eligible) {
    utility_scale = std::max(utility_scale, candidates[i].utility);
  }
  if (utility_scale <= 0.0) utility_scale = 1.0;

  std::vector<size_t> selected;
  std::vector<bool> taken(candidates.size(), false);
  SelectionState state(candidates, protected_mask);
  RulesetStats current_stats = state.Current();
  double current_benefit_sum = 0.0;
  double current_score = 0.0;

  // Candidate trials are independent reads of the selection state, so
  // each iteration fans them out across workers and only the argmax scan
  // below stays sequential (in eligible order, exactly as before) — the
  // selected ruleset is identical at every thread count.
  const size_t threads =
      options.num_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : options.num_threads;
  std::unique_ptr<TaskScheduler> scheduler;
  if (threads > 1 && eligible.size() > 1) {
    scheduler = std::make_unique<TaskScheduler>(threads);
  }
  std::vector<RulesetStats> trials(eligible.size());

  while (selected.size() < options.max_rules) {
    const bool coverage_met = coverage.StatsSatisfy(current_stats);
    const bool coverage_active =
        !coverage.active() || !coverage_met;

    const auto trial_one = [&](size_t k) {
      if (!taken[eligible[k]]) trials[k] = state.TrialAdd(eligible[k]);
    };
    if (scheduler != nullptr) {
      scheduler->ParallelFor(eligible.size(), trial_one);
    } else {
      for (size_t k = 0; k < eligible.size(); ++k) trial_one(k);
    }

    double best_gain = -std::numeric_limits<double>::infinity();
    double best_ranking = -std::numeric_limits<double>::infinity();
    size_t best_idx = candidates.size();
    RulesetStats best_stats;
    double best_benefit_sum = 0.0;

    for (size_t k = 0; k < eligible.size(); ++k) {
      const size_t i = eligible[k];
      if (taken[i]) continue;
      if (budgeted &&
          result.total_cost + (*candidate_costs)[i] > options.budget) {
        continue;
      }
      const RulesetStats& trial_stats = trials[k];

      // Group-fairness steering: once coverage is in hand, do not accept a
      // rule that makes the group constraint (more) violated.
      if (coverage_met || !coverage.active()) {
        const double violation_now = fairness.GroupViolation(current_stats);
        const double violation_after = fairness.GroupViolation(trial_stats);
        if (violation_after > violation_now && violation_after > 0.0) {
          continue;
        }
      }

      const double benefit_i = RuleBenefit(candidates[i], fairness);
      const double trial_benefit_sum = current_benefit_sum + benefit_i;
      const double trial_score = ScoreOf(trial_stats, trial_benefit_sum,
                                         utility_scale, coverage_active,
                                         options);
      const double gain = trial_score - current_score;
      // Under a budget, rank by gain per unit cost (budgeted max-coverage
      // heuristic); otherwise by raw gain.
      const double ranking =
          budgeted ? gain / std::max((*candidate_costs)[i], 1e-12) : gain;
      if (ranking > best_ranking) {
        best_ranking = ranking;
        best_gain = gain;
        best_idx = i;
        best_stats = trial_stats;
        best_benefit_sum = trial_benefit_sum;
      }
    }

    if (best_idx == candidates.size()) break;
    // Stop on negligible marginal gain — but never before coverage
    // constraints are met if they still can be improved.
    if (best_gain < options.min_marginal_gain && coverage_met) break;
    if (best_gain <= 0.0 && !coverage.active()) break;

    taken[best_idx] = true;
    selected.push_back(best_idx);
    if (budgeted) result.total_cost += (*candidate_costs)[best_idx];
    // Accept applies the same delta arithmetic TrialAdd used, so
    // state.Current() now equals best_stats bitwise.
    state.Accept(best_idx);
    current_stats = best_stats;
    current_benefit_sum = best_benefit_sum;
    current_score = ScoreOf(current_stats, current_benefit_sum, utility_scale,
                            !coverage.active() ||
                                !coverage.StatsSatisfy(current_stats),
                            options);
  }

  // Final trim: while the group fairness constraint is violated, drop the
  // rule whose removal shrinks the violation most, as long as coverage
  // stays satisfied (or was never satisfied anyway).
  bool changed = true;
  while (changed && fairness.GroupViolation(current_stats) > 0.0 &&
         selected.size() > 1) {
    changed = false;
    double best_violation = fairness.GroupViolation(current_stats);
    size_t drop_pos = selected.size();
    RulesetStats best_stats;
    const bool coverage_was_met = coverage.StatsSatisfy(current_stats);
    for (size_t pos = 0; pos < selected.size(); ++pos) {
      std::vector<size_t> trial = selected;
      trial.erase(trial.begin() + static_cast<ptrdiff_t>(pos));
      const RulesetStats trial_stats =
          ComputeRulesetStats(candidates, trial, protected_mask);
      if (coverage_was_met && !coverage.StatsSatisfy(trial_stats)) continue;
      const double v = fairness.GroupViolation(trial_stats);
      if (v < best_violation) {
        best_violation = v;
        drop_pos = pos;
        best_stats = trial_stats;
      }
    }
    if (drop_pos < selected.size()) {
      current_benefit_sum -=
          RuleBenefit(candidates[selected[drop_pos]], fairness);
      if (budgeted) {
        result.total_cost -= (*candidate_costs)[selected[drop_pos]];
      }
      selected.erase(selected.begin() + static_cast<ptrdiff_t>(drop_pos));
      current_stats = best_stats;
      changed = true;
    }
  }

  result.selected = std::move(selected);
  // Externally visible stats come from the canonical full recompute: the
  // incremental sums can differ from it in the last ulp (association
  // order), and callers compare reported stats across runs.
  result.stats =
      ComputeRulesetStats(candidates, result.selected, protected_mask);
  result.constraints_satisfied = fairness.StatsSatisfy(result.stats) &&
                                 coverage.StatsSatisfy(result.stats);
  return result;
}

}  // namespace faircap
