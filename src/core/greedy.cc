#include "core/greedy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/benefit.h"

namespace faircap {

namespace {

// Normalized score of a ruleset (higher is better). `coverage_active` keeps
// the coverage term in play until the coverage constraint is satisfied
// (Section 5.3: "once the coverage constraints are met, the focus shifts
// to maximizing benefit and utility"). With no coverage constraint the
// coverage term stays active — the paper's unconstrained objective still
// rewards broadly applicable rules through ExpUtility, and retaining the
// term reproduces its high-coverage unconstrained solutions.
// The benefit term uses the ruleset *mean* benefit (benefit(R) read as a
// set-level score): a redundant or low-benefit addition drags the mean
// down, which is what lets the marginal-gain stopping rule fire before
// max_rules.
double ScoreOf(const RulesetStats& stats, double benefit_sum,
               double utility_scale, bool coverage_active,
               const GreedyOptions& options) {
  double score = 0.0;
  if (coverage_active) {
    score += options.weight_coverage *
             (stats.coverage_fraction + stats.coverage_protected_fraction);
  }
  const double mean_benefit =
      stats.num_rules == 0
          ? 0.0
          : benefit_sum / static_cast<double>(stats.num_rules);
  score += options.weight_benefit * mean_benefit / utility_scale;
  score += options.weight_utility * stats.exp_utility / utility_scale;
  return score;
}

}  // namespace

GreedyResult GreedySelect(const std::vector<PrescriptionRule>& candidates,
                          const Bitmap& protected_mask,
                          const FairnessConstraint& fairness,
                          const CoverageConstraint& coverage,
                          const GreedyOptions& options,
                          const std::vector<double>* candidate_costs) {
  GreedyResult result;
  const bool budgeted = options.budget > 0.0 && candidate_costs != nullptr;
  const size_t population = protected_mask.size();
  const size_t population_protected = protected_mask.Count();

  // Matroid pre-filter: rule coverage and individual fairness restrict
  // single rules, so infeasible candidates can never enter any solution.
  std::vector<size_t> eligible;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const PrescriptionRule& rule = candidates[i];
    if (rule.utility <= 0.0) continue;  // only improving rules (Section 4.3)
    if (!coverage.RuleSatisfies(rule, population, population_protected)) {
      continue;
    }
    if (!fairness.RuleSatisfies(rule)) continue;
    eligible.push_back(i);
  }
  if (eligible.empty()) {
    result.stats = ComputeRulesetStats(candidates, {}, protected_mask);
    result.constraints_satisfied =
        fairness.StatsSatisfy(result.stats) &&
        coverage.StatsSatisfy(result.stats);
    return result;
  }

  // Scale so the benefit/utility terms are comparable with coverage
  // fractions regardless of outcome units (dollars vs probabilities).
  double utility_scale = 0.0;
  for (size_t i : eligible) {
    utility_scale = std::max(utility_scale, candidates[i].utility);
  }
  if (utility_scale <= 0.0) utility_scale = 1.0;

  std::vector<size_t> selected;
  std::vector<bool> taken(candidates.size(), false);
  RulesetStats current_stats =
      ComputeRulesetStats(candidates, selected, protected_mask);
  double current_benefit_sum = 0.0;
  double current_score = 0.0;

  while (selected.size() < options.max_rules) {
    const bool coverage_met = coverage.StatsSatisfy(current_stats);
    const bool coverage_active =
        !coverage.active() || !coverage_met;

    double best_gain = -std::numeric_limits<double>::infinity();
    double best_ranking = -std::numeric_limits<double>::infinity();
    size_t best_idx = candidates.size();
    RulesetStats best_stats;
    double best_benefit_sum = 0.0;

    for (size_t i : eligible) {
      if (taken[i]) continue;
      if (budgeted &&
          result.total_cost + (*candidate_costs)[i] > options.budget) {
        continue;
      }
      std::vector<size_t> trial = selected;
      trial.push_back(i);
      const RulesetStats trial_stats =
          ComputeRulesetStats(candidates, trial, protected_mask);

      // Group-fairness steering: once coverage is in hand, do not accept a
      // rule that makes the group constraint (more) violated.
      if (coverage_met || !coverage.active()) {
        const double violation_now = fairness.GroupViolation(current_stats);
        const double violation_after = fairness.GroupViolation(trial_stats);
        if (violation_after > violation_now && violation_after > 0.0) {
          continue;
        }
      }

      const double benefit_i = RuleBenefit(candidates[i], fairness);
      const double trial_benefit_sum = current_benefit_sum + benefit_i;
      const double trial_score = ScoreOf(trial_stats, trial_benefit_sum,
                                         utility_scale, coverage_active,
                                         options);
      const double gain = trial_score - current_score;
      // Under a budget, rank by gain per unit cost (budgeted max-coverage
      // heuristic); otherwise by raw gain.
      const double ranking =
          budgeted ? gain / std::max((*candidate_costs)[i], 1e-12) : gain;
      if (ranking > best_ranking) {
        best_ranking = ranking;
        best_gain = gain;
        best_idx = i;
        best_stats = trial_stats;
        best_benefit_sum = trial_benefit_sum;
      }
    }

    if (best_idx == candidates.size()) break;
    // Stop on negligible marginal gain — but never before coverage
    // constraints are met if they still can be improved.
    if (best_gain < options.min_marginal_gain && coverage_met) break;
    if (best_gain <= 0.0 && !coverage.active()) break;

    taken[best_idx] = true;
    selected.push_back(best_idx);
    if (budgeted) result.total_cost += (*candidate_costs)[best_idx];
    current_stats = best_stats;
    current_benefit_sum = best_benefit_sum;
    current_score = ScoreOf(current_stats, current_benefit_sum, utility_scale,
                            !coverage.active() ||
                                !coverage.StatsSatisfy(current_stats),
                            options);
  }

  // Final trim: while the group fairness constraint is violated, drop the
  // rule whose removal shrinks the violation most, as long as coverage
  // stays satisfied (or was never satisfied anyway).
  bool changed = true;
  while (changed && fairness.GroupViolation(current_stats) > 0.0 &&
         selected.size() > 1) {
    changed = false;
    double best_violation = fairness.GroupViolation(current_stats);
    size_t drop_pos = selected.size();
    RulesetStats best_stats;
    const bool coverage_was_met = coverage.StatsSatisfy(current_stats);
    for (size_t pos = 0; pos < selected.size(); ++pos) {
      std::vector<size_t> trial = selected;
      trial.erase(trial.begin() + static_cast<ptrdiff_t>(pos));
      const RulesetStats trial_stats =
          ComputeRulesetStats(candidates, trial, protected_mask);
      if (coverage_was_met && !coverage.StatsSatisfy(trial_stats)) continue;
      const double v = fairness.GroupViolation(trial_stats);
      if (v < best_violation) {
        best_violation = v;
        drop_pos = pos;
        best_stats = trial_stats;
      }
    }
    if (drop_pos < selected.size()) {
      current_benefit_sum -=
          RuleBenefit(candidates[selected[drop_pos]], fairness);
      if (budgeted) {
        result.total_cost -= (*candidate_costs)[selected[drop_pos]];
      }
      selected.erase(selected.begin() + static_cast<ptrdiff_t>(drop_pos));
      current_stats = best_stats;
      changed = true;
    }
  }

  result.selected = std::move(selected);
  result.stats = current_stats;
  result.constraints_satisfied = fairness.StatsSatisfy(current_stats) &&
                                 coverage.StatsSatisfy(current_stats);
  return result;
}

}  // namespace faircap
