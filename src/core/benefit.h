// Benefit: the fairness-aware treatment score used during intervention
// mining (Sections 5.2 and 5.4). Without fairness, benefit == utility.
// With SP fairness the score penalizes the gap between non-protected and
// protected utility; with BGL it penalizes shortfall below tau.

#ifndef FAIRCAP_CORE_BENEFIT_H_
#define FAIRCAP_CORE_BENEFIT_H_

#include "core/fairness.h"
#include "core/rule.h"

namespace faircap {

/// Benefit of a rule given per-group utilities:
///   SP:   utility / (1 + utility_p̄ - utility_p)  when utility_p̄ >= utility_p
///         utility                                  otherwise
///   BGL:  utility / (1 + tau - utility_p)          when tau >= utility_p
///         utility                                  otherwise
///   none: utility
double RuleBenefit(double utility, double utility_protected,
                   double utility_nonprotected,
                   const FairnessConstraint& fairness);

/// Overload reading the utilities off a rule.
double RuleBenefit(const PrescriptionRule& rule,
                   const FairnessConstraint& fairness);

}  // namespace faircap

#endif  // FAIRCAP_CORE_BENEFIT_H_
