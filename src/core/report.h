// JSON export of FairCap solutions: rules (patterns, utilities, coverage),
// ruleset statistics, and step timings. Intended for downstream dashboards
// and for archiving experiment outputs; the format is stable and documented
// here.
//
// {
//   "stats": { "num_rules": 3, "coverage_fraction": 0.97, ... },
//   "timings": { "group_mining_seconds": ..., ... },
//   "rules": [
//     { "grouping": [ {"attr": "Age", "op": "=", "value": "25-34"} ],
//       "intervention": [ ... ],
//       "utility": 44009.0, "utility_protected": ..., ... }, ... ]
// }

#ifndef FAIRCAP_CORE_REPORT_H_
#define FAIRCAP_CORE_REPORT_H_

#include <string>

#include "core/faircap.h"

namespace faircap {

/// Serializes a pattern as a JSON array of {attr, op, value} objects.
std::string PatternToJson(const Pattern& pattern, const Schema& schema);

/// Serializes one rule as a JSON object.
std::string RuleToJson(const PrescriptionRule& rule, const Schema& schema);

/// Serializes ruleset statistics as a JSON object.
std::string StatsToJson(const RulesetStats& stats);

/// Serializes a full FairCapResult as a JSON document.
std::string ResultToJson(const FairCapResult& result, const Schema& schema);

/// Writes ResultToJson to a file.
Status WriteResultJson(const FairCapResult& result, const Schema& schema,
                       const std::string& path);

}  // namespace faircap

#endif  // FAIRCAP_CORE_REPORT_H_
