// Coverage constraints (Section 4.5): group coverage (the ruleset as a
// whole must reach a θ fraction of the population and a θ_p fraction of
// the protected group) and rule coverage (every selected rule must).

#ifndef FAIRCAP_CORE_COVERAGE_H_
#define FAIRCAP_CORE_COVERAGE_H_

#include <string>

#include "core/rule.h"

namespace faircap {

struct RulesetStats;  // core/ruleset.h

/// Which coverage definition applies.
enum class CoverageKind { kNone, kGroup, kRule };

/// A coverage constraint instance.
struct CoverageConstraint {
  CoverageKind kind = CoverageKind::kNone;
  /// Minimum fraction of the whole population.
  double theta = 0.0;
  /// Minimum fraction of the protected subpopulation.
  double theta_protected = 0.0;

  static CoverageConstraint None() { return {}; }
  static CoverageConstraint Group(double theta, double theta_protected);
  static CoverageConstraint Rule(double theta, double theta_protected);

  bool active() const { return kind != CoverageKind::kNone; }

  /// Rule-scope test (always true unless kind == kRule).
  /// `population` / `population_protected` are |D| and |P_p(D)|.
  bool RuleSatisfies(const PrescriptionRule& rule, size_t population,
                     size_t population_protected) const;

  /// Group-scope test on ruleset statistics (always true unless
  /// kind == kGroup).
  bool StatsSatisfy(const RulesetStats& stats) const;

  /// Shortfall of `stats` w.r.t. the group constraint, as a fraction in
  /// [0, 2]; 0 when satisfied or not applicable.
  double GroupShortfall(const RulesetStats& stats) const;

  std::string ToString() const;
};

}  // namespace faircap

#endif  // FAIRCAP_CORE_COVERAGE_H_
