#include "core/incremental.h"

#include <utility>

#include "util/logging.h"
#include "util/obs/metrics.h"
#include "util/obs/trace.h"

namespace faircap {
namespace {

// append.* reuse counters (registered once; see util/obs/run_report.cc
// for the report floor).
struct IncMetrics {
  obs::Counter& rows_appended;
  obs::Counter& batches;
  obs::Counter& patterns_reused;
  obs::Counter& patterns_rechecked;
  obs::Counter& evals_cached;
  obs::Counter& evals_delta;
  obs::Counter& evals_full;
  obs::Counter& full_remines;
};

IncMetrics& Metrics() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static IncMetrics m{
      registry.GetCounter("append.rows_appended"),
      registry.GetCounter("append.batches"),
      registry.GetCounter("append.patterns_reused"),
      registry.GetCounter("append.patterns_rechecked"),
      registry.GetCounter("append.evals_cached"),
      registry.GetCounter("append.evals_delta"),
      registry.GetCounter("append.evals_full"),
      registry.GetCounter("append.full_remines"),
  };
  return m;
}

std::vector<size_t> CategoryCounts(const DataFrame& df) {
  std::vector<size_t> counts(df.schema().num_attributes(), 0);
  for (size_t i = 0; i < counts.size(); ++i) {
    if (df.column(i).type() == AttrType::kCategorical) {
      counts[i] = df.column(i).num_categories();
    }
  }
  return counts;
}

}  // namespace

void IncrementalState::Attach(const DataFrame& df) {
  MutexLock lock(mu_);
  if (attached_) return;
  attached_ = true;
  category_counts_ = CategoryCounts(df);
  // Group-level reuse is sound only while no numeric attribute can land
  // in an adjustment set: delta rows shift its quantile edges, silently
  // re-binning resident rows, so "support unchanged" would no longer
  // imply "estimates unchanged". The outcome itself is never a
  // confounder, so a numeric outcome does not disable the gate.
  numeric_ok_ = true;
  for (size_t i = 0; i < df.schema().num_attributes(); ++i) {
    const AttributeSpec& spec = df.schema().attribute(i);
    if (spec.type == AttrType::kNumeric && spec.role != AttrRole::kOutcome) {
      numeric_ok_ = false;
      break;
    }
  }
}

void IncrementalState::OnAppend(const DataFrame& df) {
  MutexLock lock(mu_);
  FAIRCAP_CHECK(attached_);
  std::vector<size_t> counts = CategoryCounts(df);
  bool new_categories = counts.size() != category_counts_.size();
  if (!new_categories) {
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != category_counts_[i]) {
        new_categories = true;
        break;
      }
    }
  }
  category_counts_ = std::move(counts);
  if (new_categories) {
    // Cell numbering, one-hot layouts and the intervention atom set all
    // depend on the category universe: nothing cached survives.
    accums_.clear();
    groups_.clear();
    accum_bytes_ = 0;
    Metrics().full_remines.Increment();
  }
}

bool IncrementalState::TryReuseGroup(const FrequentPattern& group,
                                     const Bitmap& protected_mask,
                                     std::vector<PrescriptionRule>* rules,
                                     size_t* num_evaluated) {
  const std::string key = group.pattern.Key();
  MutexLock lock(mu_);
  if (numeric_ok_) {
    const auto it = groups_.find(key);
    if (it != groups_.end() && it->second.support == group.support) {
      // No delta row entered this coverage, so every cached estimate is
      // exactly what a cold re-mine would produce; only the bitmaps need
      // re-materializing (support counts were stored with the rules).
      rules->clear();
      rules->reserve(it->second.rules.size());
      for (const PrescriptionRule& cached : it->second.rules) {
        PrescriptionRule rule = cached;
        rule.coverage = group.coverage;
        rule.coverage_protected = rule.coverage & protected_mask;
        rules->push_back(std::move(rule));
      }
      *num_evaluated = it->second.num_evaluated;
      Metrics().patterns_reused.Increment();
      return true;
    }
  }
  Metrics().patterns_rechecked.Increment();
  return false;
}

void IncrementalState::StoreGroup(const FrequentPattern& group,
                                  const std::vector<PrescriptionRule>& rules,
                                  size_t num_evaluated) {
  GroupEntry entry;
  entry.support = group.support;
  entry.num_evaluated = num_evaluated;
  entry.rules.reserve(rules.size());
  for (const PrescriptionRule& rule : rules) {
    PrescriptionRule stored = rule;
    stored.coverage = Bitmap();
    stored.coverage_protected = Bitmap();
    entry.rules.push_back(std::move(stored));
  }
  MutexLock lock(mu_);
  groups_[group.pattern.Key()] = std::move(entry);
}

size_t IncrementalState::AccumBytes(
    const CateStatsEngine::SubgroupAccums& accums) {
  const auto one = [](const CateStatsEngine::Accum& acc) {
    return acc.n.size() * sizeof(uint32_t) +
           (acc.sy.size() + acc.syy.size() + acc.zsum.size() +
            acc.zysum.size() + acc.zzsum.size()) *
               sizeof(double) +
           (acc.isy.size() + acc.isyy.size()) * sizeof(int64_t);
  };
  return one(accums.overall) + one(accums.prot) + one(accums.nonprot);
}

Result<CateSubgroupEstimates> IncrementalState::EstimateWithCache(
    const CateEstimator& estimator, const std::string& group_key,
    const Pattern& intervention, const Bitmap& group,
    const Bitmap& protected_mask, bool want_subgroups,
    size_t min_subgroup_size, bool skip_subgroups_unless_positive,
    const ShardPlan* plan, TaskGroup* tasks) {
  FAIRCAP_ASSIGN_OR_RETURN(
      const std::shared_ptr<const CateStatsEngine> engine,
      estimator.EngineFor(intervention));
  const size_t min_group = estimator.options().min_group_size;
  const size_t min_sub =
      min_subgroup_size != 0 ? min_subgroup_size : min_group;
  const size_t num_rows = engine->treated().size();
  const uint64_t lineage = engine->partition().lineage_id();
  const Bitmap* mask = want_subgroups ? &protected_mask : nullptr;
  const std::string key = group_key + "|" + intervention.Key();

  AccumEntry* entry = nullptr;
  {
    MutexLock lock(mu_);
    const auto it = accums_.find(key);
    if (it != accums_.end()) entry = it->second.get();
  }
  // A hit is serveable only against the exact cell numbering it was
  // accumulated under: the lineage id changes whenever a partition is
  // rebuilt cold (copy-extension inherits it), so a stale accum can
  // never be merged against re-numbered cells.
  if (entry != nullptr && entry->lineage == lineage &&
      entry->accums.rows_covered <= num_rows) {
    FAIRCAP_CHECK(entry->accums.split);
    if (entry->accums.rows_covered < num_rows) {
      const size_t old_bytes = AccumBytes(entry->accums);
      const CateStatsEngine::SubgroupAccums delta = engine->AccumulateDelta(
          group, &protected_mask, entry->accums.rows_covered);
      engine->MergeSubgroupAccums(&entry->accums, delta);
      Metrics().evals_delta.Increment();
      MutexLock lock(mu_);
      accum_bytes_ += AccumBytes(entry->accums) - old_bytes;
    } else {
      Metrics().evals_cached.Increment();
    }
    return engine->SolveFromAccums(entry->accums, group, mask, min_group,
                                   min_sub, skip_subgroups_unless_positive);
  }

  // Miss (or stale lineage): full pass — sharded exactly like the
  // non-caching path, so a cold-cache run is bit-identical to one with
  // no IncrementalState at all. The accumulation is always split on the
  // protected mask so one cached shape serves both the fairness-aware
  // evaluator and rule costing.
  auto fresh = std::make_unique<AccumEntry>();
  fresh->lineage = lineage;
  fresh->accums =
      engine->AccumulateSubgroups(group, &protected_mask, plan, tasks);
  const CateSubgroupEstimates out =
      engine->SolveFromAccums(fresh->accums, group, mask, min_group, min_sub,
                              skip_subgroups_unless_positive);
  Metrics().evals_full.Increment();
  const size_t bytes = AccumBytes(fresh->accums);
  {
    MutexLock lock(mu_);
    auto& slot = accums_[key];
    if (slot != nullptr) accum_bytes_ -= AccumBytes(slot->accums);
    slot = std::move(fresh);
    accum_bytes_ += bytes;
  }
  return out;
}

IncrementalState::CacheStats IncrementalState::GetCacheStats() const {
  MutexLock lock(mu_);
  CacheStats stats;
  stats.accum_entries = accums_.size();
  stats.group_entries = groups_.size();
  stats.accum_bytes = accum_bytes_;
  stats.group_reuse_sound = numeric_ok_;
  return stats;
}

Result<IncrementalSession> IncrementalSession::Create(
    DataFrame df, CausalDag dag, Pattern protected_pattern,
    FairCapOptions options) {
  IncrementalSession session;
  session.df_ = std::make_unique<DataFrame>(std::move(df));
  session.dag_ = std::make_unique<CausalDag>(std::move(dag));
  session.state_ = options.incremental_state != nullptr
                       ? options.incremental_state
                       : std::make_shared<IncrementalState>();
  options.incremental_state = session.state_;
  FAIRCAP_ASSIGN_OR_RETURN(
      FairCap faircap,
      FairCap::Create(session.df_.get(), session.dag_.get(),
                      std::move(protected_pattern), std::move(options)));
  session.faircap_ = std::make_unique<FairCap>(std::move(faircap));
  return session;
}

Result<FairCapResult> IncrementalSession::Run() { return faircap_->Run(); }

Status IncrementalSession::Append(const DataFrame& delta) {
  const obs::TraceSpan span("append_ingest");
  const size_t rows = delta.num_rows();
  FAIRCAP_RETURN_NOT_OK(df_->AppendFrame(delta));
  Metrics().rows_appended.Add(rows);
  Metrics().batches.Increment();
  // Refresh order matters: the estimator extends partitions/engines and
  // the predicate index re-stamps before the incremental caches judge
  // what survived.
  faircap_->NotifyAppend();
  return Status::OK();
}

}  // namespace faircap
