#include "core/rule.h"

#include <cmath>

#include "util/string_util.h"

namespace faircap {

double PrescriptionRule::FairnessGap() const {
  return std::abs(utility_nonprotected - utility_protected);
}

std::string PrescriptionRule::ToString(const Schema& schema) const {
  std::string out = "IF ";
  out += grouping.ToString(schema);
  out += " THEN ";
  out += intervention.ToString(schema);
  out += " (utility=" + FormatDouble(utility);
  out += ", protected=" + FormatDouble(utility_protected);
  out += ", non-protected=" + FormatDouble(utility_nonprotected);
  out += ", support=" + std::to_string(support) + ")";
  return out;
}

}  // namespace faircap
