#include "core/fairness.h"

#include <algorithm>
#include <cmath>

#include "core/ruleset.h"
#include "util/string_util.h"

namespace faircap {

FairnessConstraint FairnessConstraint::GroupSP(double epsilon) {
  FairnessConstraint c;
  c.kind = FairnessKind::kStatisticalParity;
  c.scope = FairnessScope::kGroup;
  c.epsilon = epsilon;
  return c;
}

FairnessConstraint FairnessConstraint::IndividualSP(double epsilon) {
  FairnessConstraint c = GroupSP(epsilon);
  c.scope = FairnessScope::kIndividual;
  return c;
}

FairnessConstraint FairnessConstraint::GroupBGL(double tau) {
  FairnessConstraint c;
  c.kind = FairnessKind::kBoundedGroupLoss;
  c.scope = FairnessScope::kGroup;
  c.tau = tau;
  return c;
}

FairnessConstraint FairnessConstraint::IndividualBGL(double tau) {
  FairnessConstraint c = GroupBGL(tau);
  c.scope = FairnessScope::kIndividual;
  return c;
}

bool FairnessConstraint::RuleSatisfies(const PrescriptionRule& rule) const {
  if (!individual()) return true;
  if (kind == FairnessKind::kStatisticalParity) {
    return rule.FairnessGap() <= epsilon;
  }
  return rule.utility_protected >= tau;
}

bool FairnessConstraint::StatsSatisfy(const RulesetStats& stats) const {
  return GroupViolation(stats) <= 0.0;
}

double FairnessConstraint::GroupViolation(const RulesetStats& stats) const {
  if (!group()) return 0.0;
  if (kind == FairnessKind::kStatisticalParity) {
    return std::max(0.0, std::abs(stats.exp_utility_protected -
                                  stats.exp_utility_nonprotected) -
                             epsilon);
  }
  return std::max(0.0, tau - stats.exp_utility_protected);
}

std::string FairnessConstraint::ToString() const {
  switch (kind) {
    case FairnessKind::kNone:
      return "no fairness constraint";
    case FairnessKind::kStatisticalParity:
      return std::string(scope == FairnessScope::kGroup ? "group" :
                                                          "individual") +
             " SP (epsilon=" + FormatDouble(epsilon) + ")";
    case FairnessKind::kBoundedGroupLoss:
      return std::string(scope == FairnessScope::kGroup ? "group" :
                                                          "individual") +
             " BGL (tau=" + FormatDouble(tau) + ")";
  }
  return "?";
}

}  // namespace faircap
