// Ruleset-level statistics (Definition 4.5). Coverage is the union of rule
// coverages; expected utility assigns each covered tuple the utility of
// one covering rule: the best for the overall population and the
// non-protected group, the worst for the protected group (conservative
// worst-case analysis, Section 4.3).
//
// Note on semantics: Definition 4.5 writes utility(r) inside all three
// sums, but Definition 4.4, the individual-fairness constraints, and every
// reported rule in the paper's case study use the group-specific utilities
// utility_p / utility_p̄ for the protected / non-protected populations. We
// follow that reading: protected tuples receive min_r utility_p(r),
// non-protected tuples max_r utility_p̄(r).

#ifndef FAIRCAP_CORE_RULESET_H_
#define FAIRCAP_CORE_RULESET_H_

#include <vector>

#include "core/rule.h"
#include "dataframe/bitmap.h"

namespace faircap {

/// Aggregate metrics of a ruleset — the columns of Table 4 in the paper.
struct RulesetStats {
  size_t num_rules = 0;

  size_t population = 0;           ///< |D|
  size_t population_protected = 0; ///< |P_p(D)|

  size_t covered = 0;              ///< |Coverage(R)|
  size_t covered_protected = 0;    ///< |Coverage_p(R)|

  double coverage_fraction = 0.0;            ///< covered / population
  double coverage_protected_fraction = 0.0;  ///< covered_p / population_p

  double exp_utility = 0.0;               ///< Eq. (5)
  double exp_utility_protected = 0.0;     ///< Eq. (6), worst-case rule
  double exp_utility_nonprotected = 0.0;  ///< Eq. (7), best-case rule

  /// exp_utility_nonprotected - exp_utility_protected (the paper's
  /// "unfairness" column; may be negative when protected do better).
  double unfairness = 0.0;
};

/// Computes Definition 4.5 statistics for the rules indexed by `selected`
/// within `candidates`. `protected_mask` marks protected rows; all rule
/// coverage bitmaps must be over the same row universe.
RulesetStats ComputeRulesetStats(
    const std::vector<PrescriptionRule>& candidates,
    const std::vector<size_t>& selected, const Bitmap& protected_mask);

/// Convenience overload over a whole vector of rules.
RulesetStats ComputeRulesetStats(const std::vector<PrescriptionRule>& rules,
                                 const Bitmap& protected_mask);

/// The optimization objective of Definition 4.6:
///   lambda1 * (l - |R|) + lambda2 * ExpUtility(R)
/// where `l` is the number of candidate rules.
double RulesetObjective(const RulesetStats& stats, size_t num_candidates,
                        double lambda1, double lambda2);

}  // namespace faircap

#endif  // FAIRCAP_CORE_RULESET_H_
