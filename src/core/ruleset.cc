#include "core/ruleset.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace faircap {

RulesetStats ComputeRulesetStats(
    const std::vector<PrescriptionRule>& candidates,
    const std::vector<size_t>& selected, const Bitmap& protected_mask) {
  RulesetStats stats;
  stats.num_rules = selected.size();
  stats.population = protected_mask.size();
  stats.population_protected = protected_mask.Count();
  if (stats.population == 0) return stats;

  const size_t n = stats.population;
  constexpr double kUnset = -std::numeric_limits<double>::infinity();
  // Per-tuple best (overall / non-protected) and worst (protected) rule
  // utilities across covering rules.
  std::vector<double> best_overall(n, kUnset);
  std::vector<double> best_nonprotected(n, kUnset);
  std::vector<double> worst_protected(n, -kUnset);
  Bitmap covered(n);

  for (size_t idx : selected) {
    const PrescriptionRule& rule = candidates[idx];
    rule.coverage.ForEach([&](size_t row) {
      covered.Set(row);
      best_overall[row] = std::max(best_overall[row], rule.utility);
      if (protected_mask.Get(row)) {
        worst_protected[row] =
            std::min(worst_protected[row], rule.utility_protected);
      } else {
        best_nonprotected[row] =
            std::max(best_nonprotected[row], rule.utility_nonprotected);
      }
    });
  }

  double sum_overall = 0.0, sum_protected = 0.0, sum_nonprotected = 0.0;
  size_t covered_protected = 0, covered_nonprotected = 0;
  covered.ForEach([&](size_t row) {
    sum_overall += best_overall[row];
    if (protected_mask.Get(row)) {
      ++covered_protected;
      sum_protected += worst_protected[row];
    } else {
      ++covered_nonprotected;
      sum_nonprotected += best_nonprotected[row];
    }
  });

  stats.covered = covered.Count();
  stats.covered_protected = covered_protected;
  stats.coverage_fraction =
      static_cast<double>(stats.covered) / static_cast<double>(n);
  stats.coverage_protected_fraction =
      stats.population_protected == 0
          ? 0.0
          : static_cast<double>(covered_protected) /
                static_cast<double>(stats.population_protected);

  // Eq. (5): normalized by |D|. Eqs. (6)/(7): by the covered group sizes.
  stats.exp_utility = sum_overall / static_cast<double>(n);
  stats.exp_utility_protected =
      covered_protected == 0
          ? 0.0
          : sum_protected / static_cast<double>(covered_protected);
  stats.exp_utility_nonprotected =
      covered_nonprotected == 0
          ? 0.0
          : sum_nonprotected / static_cast<double>(covered_nonprotected);
  stats.unfairness =
      stats.exp_utility_nonprotected - stats.exp_utility_protected;
  return stats;
}

RulesetStats ComputeRulesetStats(const std::vector<PrescriptionRule>& rules,
                                 const Bitmap& protected_mask) {
  std::vector<size_t> all(rules.size());
  std::iota(all.begin(), all.end(), 0);
  return ComputeRulesetStats(rules, all, protected_mask);
}

double RulesetObjective(const RulesetStats& stats, size_t num_candidates,
                        double lambda1, double lambda2) {
  return lambda1 * (static_cast<double>(num_candidates) -
                    static_cast<double>(stats.num_rules)) +
         lambda2 * stats.exp_utility;
}

}  // namespace faircap
