// FairCap: the end-to-end three-step algorithm (Section 5).
//   Step 1 — mine grouping patterns with Apriori over immutable attributes;
//   Step 2 — per grouping pattern, lattice-traverse intervention patterns,
//            scoring treatments by the fairness-aware benefit;
//   Step 3 — greedily select a ruleset under fairness and coverage
//            constraints.
// All 18 problem variants (3 coverage x 6 fairness choices) are expressed
// through FairCapOptions.

#ifndef FAIRCAP_CORE_FAIRCAP_H_
#define FAIRCAP_CORE_FAIRCAP_H_

#include <memory>
#include <vector>

#include "causal/dag.h"
#include "causal/estimator.h"
#include "core/coverage.h"
#include "core/fairness.h"
#include "core/cost.h"
#include "core/greedy.h"
#include "core/rule.h"
#include "core/ruleset.h"
#include "dataframe/dataframe.h"
#include "mining/apriori.h"
#include "mining/lattice.h"
#include "util/result.h"

namespace faircap {

class IncrementalState;  // core/incremental.h

/// All tuning knobs of the pipeline.
struct FairCapOptions {
  AprioriOptions apriori;
  LatticeOptions lattice;
  CateOptions cate;
  GreedyOptions greedy;
  FairnessConstraint fairness;
  CoverageConstraint coverage;
  /// Worker threads for Step-2 mining (0 = hardware concurrency,
  /// 1 = sequential). All parallelism of a run — grouping patterns AND
  /// the per-evaluation shard fan-out — shares this one work-stealing
  /// scheduler (util/task_scheduler.h): pattern tasks submit their
  /// treatment evaluations' sharded sufficient-statistics passes as
  /// child tasks on the same workers, so both axes saturate the pool no
  /// matter how the work is skewed.
  size_t num_threads = 0;
  /// Row-universe shards for Step-2 treatment mining (1 = unsharded
  /// oracle; 0 = match the resolved thread count). With more than one
  /// shard each treatment evaluation's sufficient-statistics pass fans
  /// out across word-aligned row shards as child tasks of its pattern
  /// task — one hot grouping pattern saturates every core instead of
  /// serializing on one, while many small patterns still spread across
  /// workers through the pattern axis (the old either/or restriction —
  /// sequential patterns when sharded, and the implicit
  /// "only shard when groups < threads" heuristic — is gone: the
  /// work-stealing scheduler runs both axes at once). Shard partials
  /// merge in ascending shard order (deterministic for a fixed shard
  /// count regardless of thread count); all integer statistics match the
  /// unsharded path exactly. Requires use_batch_estimator; the unsharded
  /// path (num_shards=1) is the pinning oracle. Caveat of the 0 default:
  /// the resolved shard count follows the machine's core count, and
  /// different shard counts reassociate floating-point sums (<=1e-9
  /// relative on continuous outcomes) — runs that must be
  /// bit-reproducible across machines should pin an explicit shard
  /// count (or 1).
  size_t num_shards = 0;
  /// Byte cap for the estimator's per-treatment engine cache
  /// (CateEstimator::SetEngineMemoryBudget). 0 = unlimited.
  size_t engine_memory_budget = 0;
  /// Drop mutable attributes with no directed path to the outcome in the
  /// DAG (optimization (i) of Section 5.2).
  bool prune_non_causal_attrs = true;
  /// Overlap floor for the protected / non-protected subgroup CATEs
  /// (smaller than the full-group floor because subgroups are smaller;
  /// estimates stay unbiased, just noisier).
  size_t min_subgroup_arm = 5;
  /// Keep, per grouping pattern, every feasible positive treatment as a
  /// candidate rather than only the best one. More candidates give greedy
  /// more room; the paper keeps the best treatment per group.
  bool keep_all_treatments = false;
  /// Serve the three per-rule CATEs (overall / protected / non-protected)
  /// from the batch sufficient-statistics engine — one pass per treatment
  /// evaluation instead of three design-matrix rebuilds, with engines
  /// cached per treatment. Disable to run the legacy per-call estimator
  /// path (the pinning oracle used by tests and benchmarks).
  bool use_batch_estimator = true;
  /// Optional intervention cost model (Section 8 extension). When set and
  /// greedy.budget > 0, selection maximizes marginal score per unit cost
  /// and the total ruleset cost never exceeds the budget.
  std::shared_ptr<const InterventionCostModel> cost_model;
  /// Cross-run reuse state for delta-aware re-mining (core/incremental.h).
  /// When set (requires use_batch_estimator), Step-2 caches sufficient
  /// statistics per (grouping, intervention) across runs — after an
  /// append, only the delta rows are accumulated — and re-emits whole
  /// groups whose support the delta left untouched. A cold-cache run is
  /// bit-identical to one without the state; after appends, integer
  /// outcomes stay exact and FP matches to shard-merge precision.
  /// Typically owned by an IncrementalSession.
  std::shared_ptr<IncrementalState> incremental_state;
};

/// Execution counters of the Step-2 task scheduler (observability: the
/// CLI logs these after a run so skew and idle workers are visible, and
/// the same numbers land in the metrics registry — util/obs/metrics.h —
/// for the machine-readable run report).
struct SchedulerStats {
  bool collected = false;        ///< false = the run never filled this in
  bool inline_execution = false; ///< true = single-threaded, no scheduler
  size_t workers = 0;    ///< scheduler worker threads (0 when inline)
  size_t tasks = 0;      ///< tasks executed (pattern + shard + warm-up);
                         ///< on the inline path, the grouping patterns run
  size_t stolen = 0;     ///< tasks a worker took from another's deque
  size_t helped = 0;     ///< tasks run inline by a waiting thread
};

/// Wall-clock seconds per pipeline step (Figure 3).
struct StepTimings {
  double group_mining_seconds = 0.0;
  double treatment_mining_seconds = 0.0;
  double selection_seconds = 0.0;
  double total() const {
    return group_mining_seconds + treatment_mining_seconds +
           selection_seconds;
  }
};

/// Output of a full pipeline run.
struct FairCapResult {
  std::vector<PrescriptionRule> rules;  ///< the selected ruleset
  RulesetStats stats;
  StepTimings timings;
  bool constraints_satisfied = false;
  /// Total intervention cost (0 unless a cost model and budget were set).
  double total_cost = 0.0;
  size_t num_grouping_patterns = 0;
  size_t num_candidate_rules = 0;
  size_t num_treatment_evaluations = 0;
  SchedulerStats scheduler;
};

/// The FairCap solver. Holds borrowed references to the data and DAG; both
/// must outlive the solver.
class FairCap {
 public:
  /// Validates inputs and prepares the estimator. `protected_pattern`
  /// defines P_p over immutable attributes (it may reference any
  /// attribute, but must not reference the outcome).
  static Result<FairCap> Create(const DataFrame* df, const CausalDag* dag,
                                Pattern protected_pattern,
                                FairCapOptions options = {});

  /// Runs all three steps and returns the selected ruleset with metrics.
  Result<FairCapResult> Run() const;

  /// Step 1 only: grouping patterns over immutable attributes.
  Result<std::vector<FrequentPattern>> MineGroupingPatterns() const;

  /// Step 2 only: candidate prescription rules for the given grouping
  /// patterns. Runs the pattern x shard task graph on one work-stealing
  /// scheduler: pattern tasks fan out across workers, and each treatment
  /// evaluation's sharded sufficient-statistics pass nests as child
  /// tasks of its pattern task. Also usable with externally supplied
  /// grouping patterns (baseline adapters, Section 7.1).
  /// `scheduler_stats`, when non-null, receives the run's execution
  /// counters.
  Result<std::vector<PrescriptionRule>> MineCandidateRules(
      const std::vector<FrequentPattern>& groups,
      size_t* num_evaluations = nullptr,
      SchedulerStats* scheduler_stats = nullptr) const;

  /// Builds a fully-costed PrescriptionRule from explicit patterns: CATE
  /// estimates for overall / protected / non-protected plus coverage.
  /// Utilities default to 0 where the paper defines them so (empty
  /// coverage) or where estimation is impossible (no overlap).
  PrescriptionRule CostRule(const Pattern& grouping,
                            const Pattern& intervention) const;

  /// Same, reusing a lattice evaluation of this (grouping, intervention)
  /// pair: when `eval` carries the subgroup utilities (fairness-aware
  /// mining estimated them against the grouping's coverage — the exact
  /// bitmap the rule covers), the rule is costed without re-estimating
  /// anything. Falls back to full estimation otherwise.
  PrescriptionRule CostRule(const Pattern& grouping,
                            const Pattern& intervention,
                            const TreatmentEval* eval) const;

  /// Brings cached state current after rows were appended to the table
  /// (DataFrame::AppendFrame): re-evaluates the protected mask over the
  /// grown table, refreshes the estimator's partitions/engines
  /// (CateEstimator::NotifyAppend) and revalidates the incremental
  /// caches when options carry an IncrementalState. Must not run
  /// concurrently with Run/Mine calls — call it right after the append.
  CateEstimator::AppendRefreshStats NotifyAppend();

  const Bitmap& protected_mask() const { return protected_mask_; }
  const CateEstimator& estimator() const { return estimator_; }
  const FairCapOptions& options() const { return options_; }

  /// Mutable attributes that survive DAG pruning (optimization (i)).
  const std::vector<size_t>& mutable_attrs() const { return mutable_attrs_; }

 private:
  FairCap(const DataFrame* df, const CausalDag* dag, Pattern protected_pattern,
          Bitmap protected_mask, CateEstimator estimator,
          std::vector<size_t> mutable_attrs, FairCapOptions options);

  const DataFrame* df_;
  const CausalDag* dag_;
  Pattern protected_pattern_;
  Bitmap protected_mask_;
  CateEstimator estimator_;
  std::vector<size_t> mutable_attrs_;
  FairCapOptions options_;
};

}  // namespace faircap

#endif  // FAIRCAP_CORE_FAIRCAP_H_
