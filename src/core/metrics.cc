#include "core/metrics.h"

#include <cstdio>
#include <ostream>

namespace faircap {

namespace {

std::string FormatCell(double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

std::string MetricsHeader(bool with_runtime) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-42s %7s %9s %9s %12s %12s %12s %12s",
                "setting", "#rules", "coverage", "cov-prot", "exp-util",
                "util-nonpro", "util-pro", "unfairness");
  out = buf;
  if (with_runtime) out += "      time(s)";
  return out;
}

std::string MetricsRow(const SolutionRow& row, bool with_runtime) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf), "%-42s %7zu %8.2f%% %8.2f%% %12.2f %12.2f %12.2f %12.2f",
      row.label.c_str(), row.stats.num_rules,
      100.0 * row.stats.coverage_fraction,
      100.0 * row.stats.coverage_protected_fraction, row.stats.exp_utility,
      row.stats.exp_utility_nonprotected, row.stats.exp_utility_protected,
      row.stats.unfairness);
  std::string out = buf;
  if (with_runtime && row.runtime_seconds >= 0.0) {
    out += "   " + FormatCell(row.runtime_seconds, "%10.2f");
  }
  return out;
}

void PrintMetricsTable(std::ostream& os, const std::string& title,
                       const std::vector<SolutionRow>& rows,
                       bool with_runtime) {
  os << "== " << title << " ==\n";
  os << MetricsHeader(with_runtime) << "\n";
  for (const SolutionRow& row : rows) {
    os << MetricsRow(row, with_runtime) << "\n";
  }
  os << "\n";
}

}  // namespace faircap
