#include "core/report.h"

#include <cmath>
#include <fstream>

#include "util/string_util.h"

namespace faircap {

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return FormatDouble(v);
}

}  // namespace

std::string PatternToJson(const Pattern& pattern, const Schema& schema) {
  std::string out = "[";
  const auto& preds = pattern.predicates();
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"attr\":\"";
    out += JsonEscape(schema.attribute(preds[i].attr).name);
    out += "\",\"op\":\"";
    out += CompareOpName(preds[i].op);
    out += "\",\"value\":";
    if (preds[i].value.is_numeric()) {
      out += JsonNumber(preds[i].value.numeric());
    } else {
      out += '"';
      out += JsonEscape(preds[i].value.ToString());
      out += '"';
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string RuleToJson(const PrescriptionRule& rule, const Schema& schema) {
  std::string out = "{";
  out += "\"grouping\":" + PatternToJson(rule.grouping, schema);
  out += ",\"intervention\":" + PatternToJson(rule.intervention, schema);
  out += ",\"utility\":" + JsonNumber(rule.utility);
  out += ",\"utility_protected\":" + JsonNumber(rule.utility_protected);
  out += ",\"utility_nonprotected\":" + JsonNumber(rule.utility_nonprotected);
  out += ",\"std_error\":" + JsonNumber(rule.std_error);
  out += ",\"support\":" + std::to_string(rule.support);
  out += ",\"support_protected\":" + std::to_string(rule.support_protected);
  out += "}";
  return out;
}

std::string StatsToJson(const RulesetStats& stats) {
  std::string out = "{";
  out += "\"num_rules\":" + std::to_string(stats.num_rules);
  out += ",\"population\":" + std::to_string(stats.population);
  out += ",\"population_protected\":" +
         std::to_string(stats.population_protected);
  out += ",\"covered\":" + std::to_string(stats.covered);
  out += ",\"covered_protected\":" + std::to_string(stats.covered_protected);
  out += ",\"coverage_fraction\":" + JsonNumber(stats.coverage_fraction);
  out += ",\"coverage_protected_fraction\":" +
         JsonNumber(stats.coverage_protected_fraction);
  out += ",\"exp_utility\":" + JsonNumber(stats.exp_utility);
  out += ",\"exp_utility_protected\":" +
         JsonNumber(stats.exp_utility_protected);
  out += ",\"exp_utility_nonprotected\":" +
         JsonNumber(stats.exp_utility_nonprotected);
  out += ",\"unfairness\":" + JsonNumber(stats.unfairness);
  out += "}";
  return out;
}

std::string ResultToJson(const FairCapResult& result, const Schema& schema) {
  std::string out = "{";
  out += "\"stats\":" + StatsToJson(result.stats);
  out += ",\"timings\":{";
  out += "\"group_mining_seconds\":" +
         JsonNumber(result.timings.group_mining_seconds);
  out += ",\"treatment_mining_seconds\":" +
         JsonNumber(result.timings.treatment_mining_seconds);
  out += ",\"selection_seconds\":" +
         JsonNumber(result.timings.selection_seconds);
  out += "}";
  out += ",\"constraints_satisfied\":";
  out += result.constraints_satisfied ? "true" : "false";
  out += ",\"total_cost\":" + JsonNumber(result.total_cost);
  out += ",\"rules\":[";
  for (size_t i = 0; i < result.rules.size(); ++i) {
    if (i > 0) out += ",";
    out += RuleToJson(result.rules[i], schema);
  }
  out += "]}";
  return out;
}

Status WriteResultJson(const FairCapResult& result, const Schema& schema,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ResultToJson(result, schema) << "\n";
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace faircap
