#include "core/benefit.h"

namespace faircap {

double RuleBenefit(double utility, double utility_protected,
                   double utility_nonprotected,
                   const FairnessConstraint& fairness) {
  switch (fairness.kind) {
    case FairnessKind::kNone:
      return utility;
    case FairnessKind::kStatisticalParity:
      if (utility_nonprotected >= utility_protected) {
        // Denominator >= 1 by the branch condition.
        return utility /
               (1.0 + utility_nonprotected - utility_protected);
      }
      return utility;
    case FairnessKind::kBoundedGroupLoss:
      if (fairness.tau >= utility_protected) {
        return utility / (1.0 + fairness.tau - utility_protected);
      }
      return utility;
  }
  return utility;
}

double RuleBenefit(const PrescriptionRule& rule,
                   const FairnessConstraint& fairness) {
  return RuleBenefit(rule.utility, rule.utility_protected,
                     rule.utility_nonprotected, fairness);
}

}  // namespace faircap
