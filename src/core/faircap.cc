#include "core/faircap.h"

#include <algorithm>
#include <mutex>

#include <thread>

#include "core/benefit.h"
#include "core/incremental.h"
#include "dataframe/predicate_index.h"
#include "mining/shard_plan.h"
#include "util/obs/metrics.h"
#include "util/obs/run_report.h"
#include "util/obs/trace.h"
#include "util/task_scheduler.h"
#include "util/timer.h"

namespace faircap {

Result<FairCap> FairCap::Create(const DataFrame* df, const CausalDag* dag,
                                Pattern protected_pattern,
                                FairCapOptions options) {
  if (df == nullptr || dag == nullptr) {
    return Status::InvalidArgument("df and dag must be non-null");
  }
  FAIRCAP_RETURN_NOT_OK(protected_pattern.Validate(*df));
  FAIRCAP_ASSIGN_OR_RETURN(const size_t outcome_attr,
                           df->schema().OutcomeIndex());
  if (protected_pattern.ConstrainsAttr(outcome_attr)) {
    return Status::InvalidArgument(
        "protected pattern must not reference the outcome");
  }
  if (options.incremental_state != nullptr && !options.use_batch_estimator) {
    return Status::InvalidArgument(
        "incremental_state requires use_batch_estimator (the sufficient-"
        "statistics engine is what gets cached across appends)");
  }
  FAIRCAP_ASSIGN_OR_RETURN(CateEstimator estimator,
                           CateEstimator::Create(df, dag, options.cate));
  if (options.engine_memory_budget > 0) {
    estimator.SetEngineMemoryBudget(options.engine_memory_budget);
  }
  if (options.incremental_state != nullptr) {
    options.incremental_state->Attach(*df);
  }

  // Optimization (i): mutable attributes with no causal path to the
  // outcome cannot have a treatment effect; drop them up front.
  std::vector<size_t> mutable_attrs =
      df->schema().IndicesWithRole(AttrRole::kMutable);
  if (options.prune_non_causal_attrs) {
    const std::string& outcome_name =
        df->schema().attribute(outcome_attr).name;
    const Result<size_t> outcome_node = dag->IndexOf(outcome_name);
    std::vector<size_t> kept;
    for (size_t attr : mutable_attrs) {
      const Result<size_t> node = dag->IndexOf(df->schema().attribute(attr).name);
      if (!node.ok() || !outcome_node.ok()) {
        kept.push_back(attr);  // unknown to the DAG: keep conservatively
        continue;
      }
      if (dag->HasDirectedPath(*node, *outcome_node)) kept.push_back(attr);
    }
    mutable_attrs = std::move(kept);
  }

  Bitmap protected_mask = protected_pattern.Evaluate(*df);
  return FairCap(df, dag, std::move(protected_pattern),
                 std::move(protected_mask), std::move(estimator),
                 std::move(mutable_attrs), std::move(options));
}

FairCap::FairCap(const DataFrame* df, const CausalDag* dag,
                 Pattern protected_pattern, Bitmap protected_mask,
                 CateEstimator estimator, std::vector<size_t> mutable_attrs,
                 FairCapOptions options)
    : df_(df),
      dag_(dag),
      protected_pattern_(std::move(protected_pattern)),
      protected_mask_(std::move(protected_mask)),
      estimator_(std::move(estimator)),
      mutable_attrs_(std::move(mutable_attrs)),
      options_(std::move(options)) {}

CateEstimator::AppendRefreshStats FairCap::NotifyAppend() {
  // The protected pattern constrains only non-appended-value semantics —
  // resident rows keep their bits; the re-evaluation extends the mask
  // over the delta rows (warm: the PredicateIndex extends its atom masks
  // by whole words instead of rescanning).
  protected_mask_ = protected_pattern_.Evaluate(*df_);
  const CateEstimator::AppendRefreshStats stats = estimator_.NotifyAppend();
  if (options_.incremental_state != nullptr) {
    options_.incremental_state->OnAppend(*df_);
  }
  return stats;
}

Result<std::vector<FrequentPattern>> FairCap::MineGroupingPatterns() const {
  const std::vector<size_t> immutable =
      df_->schema().IndicesWithRole(AttrRole::kImmutable);
  // Only categorical immutable attributes participate (numeric grouping
  // attributes must be discretized by the caller).
  std::vector<size_t> usable;
  for (size_t attr : immutable) {
    if (df_->column(attr).type() == AttrType::kCategorical) {
      usable.push_back(attr);
    }
  }
  AprioriOptions apriori = options_.apriori;
  // Section 5.4: under a rule-coverage constraint every rule must cover a
  // theta fraction of the population, so raise the Apriori threshold to
  // theta — low-coverage grouping patterns can never yield a feasible
  // rule and pruning them up front is what makes this the cheapest
  // setting (Figure 3).
  if (options_.coverage.kind == CoverageKind::kRule) {
    apriori.min_support_fraction =
        std::max(apriori.min_support_fraction, options_.coverage.theta);
  }
  FAIRCAP_ASSIGN_OR_RETURN(std::vector<FrequentPattern> groups,
                           MineFrequentPatterns(*df_, usable, apriori));
  // Same argument for the protected-coverage floor theta_p.
  if (options_.coverage.kind == CoverageKind::kRule &&
      options_.coverage.theta_protected > 0.0) {
    const double need_protected = options_.coverage.theta_protected *
                                  static_cast<double>(protected_mask_.Count());
    std::vector<FrequentPattern> kept;
    kept.reserve(groups.size());
    for (auto& group : groups) {
      const size_t covered_protected =
          group.coverage.AndCount(protected_mask_);
      if (static_cast<double>(covered_protected) >= need_protected) {
        kept.push_back(std::move(group));
      }
    }
    groups = std::move(kept);
  }
  return groups;
}

PrescriptionRule FairCap::CostRule(const Pattern& grouping,
                                   const Pattern& intervention) const {
  return CostRule(grouping, intervention, /*eval=*/nullptr);
}

PrescriptionRule FairCap::CostRule(const Pattern& grouping,
                                   const Pattern& intervention,
                                   const TreatmentEval* eval) const {
  PrescriptionRule rule;
  rule.grouping = grouping;
  rule.intervention = intervention;
  rule.coverage = grouping.Evaluate(*df_);
  rule.coverage_protected = rule.coverage & protected_mask_;
  rule.support = rule.coverage.Count();
  rule.support_protected = rule.coverage_protected.Count();

  if (rule.support == 0 || intervention.empty()) return rule;

  // A fairness-aware lattice evaluation already holds the three CATEs
  // for exactly this coverage; reuse them instead of re-estimating.
  if (eval != nullptr && eval->has_subgroup_utilities &&
      eval->subgroups_estimable) {
    rule.utility = eval->cate;
    rule.std_error = eval->std_error;
    rule.utility_protected = eval->utility_protected;
    rule.utility_nonprotected = eval->utility_nonprotected;
    rule.benefit = RuleBenefit(rule, options_.fairness);
    return rule;
  }

  const size_t support_nonprotected = rule.support - rule.support_protected;
  if (options_.use_batch_estimator) {
    // One sufficient-statistics pass answers all three subgroups; the
    // non-protected slice comes from the accumulation split, so its
    // bitmap is never materialized. With an incremental state the pass
    // is served from the cross-run accum cache (delta-only after an
    // append).
    const Result<CateSubgroupEstimates> batch =
        options_.incremental_state != nullptr
            ? options_.incremental_state->EstimateWithCache(
                  estimator_, grouping.Key(), intervention, rule.coverage,
                  protected_mask_, /*want_subgroups=*/true,
                  options_.min_subgroup_arm,
                  /*skip_subgroups_unless_positive=*/false,
                  /*plan=*/nullptr, /*tasks=*/nullptr)
            : estimator_.EstimateSubgroups(intervention, rule.coverage,
                                           &protected_mask_,
                                           options_.min_subgroup_arm);
    if (batch.ok()) {
      if (batch->overall.ok()) {
        rule.utility = batch->overall->cate;
        rule.std_error = batch->overall->std_error;
      }
      if (rule.support_protected > 0) {
        if (batch->protected_group.ok()) {
          rule.utility_protected = batch->protected_group->cate;
        } else {
          rule.utility_protected_estimable = false;
        }
      }
      if (support_nonprotected > 0) {
        if (batch->nonprotected.ok()) {
          rule.utility_nonprotected = batch->nonprotected->cate;
        } else {
          rule.utility_nonprotected_estimable = false;
        }
      }
    } else {
      // An outright failure (e.g. the intervention does not validate)
      // means no subgroup could be estimated — mirror the legacy oracle,
      // whose per-subgroup calls would each have failed.
      if (rule.support_protected > 0) rule.utility_protected_estimable = false;
      if (support_nonprotected > 0) rule.utility_nonprotected_estimable = false;
    }
  } else {
    // Legacy per-call oracle: three independent estimator passes.
    const Result<CateEstimate> overall =
        estimator_.Estimate(intervention, rule.coverage);
    if (overall.ok()) {
      rule.utility = overall->cate;
      rule.std_error = overall->std_error;
    }
    if (rule.support_protected > 0) {
      const Result<CateEstimate> prot = estimator_.Estimate(
          intervention, rule.coverage_protected, options_.min_subgroup_arm);
      if (prot.ok()) {
        rule.utility_protected = prot->cate;
      } else {
        rule.utility_protected_estimable = false;
      }
    }
    Bitmap nonprotected = rule.coverage;
    nonprotected.AndNot(protected_mask_);
    if (nonprotected.Count() > 0) {
      const Result<CateEstimate> nonprot = estimator_.Estimate(
          intervention, nonprotected, options_.min_subgroup_arm);
      if (nonprot.ok()) {
        rule.utility_nonprotected = nonprot->cate;
      } else {
        rule.utility_nonprotected_estimable = false;
      }
    }
  }
  rule.benefit = RuleBenefit(rule, options_.fairness);
  return rule;
}

Result<std::vector<PrescriptionRule>> FairCap::MineCandidateRules(
    const std::vector<FrequentPattern>& groups, size_t* num_evaluations,
    SchedulerStats* scheduler_stats) const {
  const obs::TraceSpan step_span("treatment_mining");
  StopWatch mining_watch;
  const bool needs_group_utilities = options_.fairness.active();
  std::vector<std::vector<PrescriptionRule>> per_group(groups.size());
  std::vector<size_t> evals(groups.size(), 0);

  // One work-stealing scheduler runs the whole two-level task graph:
  // grouping patterns fan out as top-level tasks, and each treatment
  // evaluation's sharded sufficient-statistics pass fans out as child
  // tasks of its pattern task (TaskGroup::Wait helps, so the nesting is
  // deadlock-free). Both axes share the same workers — a lone hot
  // pattern saturates the pool through its shard tasks while many small
  // patterns saturate it through the pattern axis, with stealing
  // balancing any skew in between. Determinism is unaffected by which
  // worker runs what: per-pattern results land in per_group[g] and shard
  // partials merge in ascending shard order fixed by the plan.
  const size_t threads =
      options_.num_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : options_.num_threads;
  const size_t requested_shards =
      options_.num_shards == 0 ? threads : options_.num_shards;
  const bool want_sharding =
      options_.use_batch_estimator && requested_shards > 1;
  const ShardPlan plan =
      ShardPlan::Create(df_->num_rows(), want_sharding ? requested_shards : 1);
  const bool sharded = plan.num_shards() > 1;
  std::unique_ptr<TaskScheduler> scheduler;
  if (threads > 1) scheduler = std::make_unique<TaskScheduler>(threads);
  const ShardPlan* eval_plan = sharded ? &plan : nullptr;

  if (sharded) {
    const obs::TraceSpan warm_span("warm_start_masks");
    // Warm the treatment-atom masks up front with sharded columnar scans
    // (each worker scans only its word range; per-shard results merge by
    // word-level OR into the table's shared PredicateIndex), so the
    // lattice's first touch of each atom never serializes on one core.
    const PredicateIndex& index = df_->predicate_index();
    for (size_t attr : mutable_attrs_) {
      const Column& col = df_->column(attr);
      if (col.type() != AttrType::kCategorical || col.num_categories() == 0 ||
          col.num_categories() > PredicateIndex::kBatchBuildMaxCategories) {
        continue;
      }
      // Already warm (streaming ingest, or an earlier run over this
      // table): rebuilding masks the index would discard is pure waste.
      if (index.CategoryMasksCached(*df_, attr)) continue;
      index.WarmStartCategoryMasks(
          *df_, attr,
          BuildCategoryMasksSharded(*df_, attr, plan, scheduler.get()));
    }
  }

  IncrementalState* const inc = options_.incremental_state.get();

  auto mine_one = [&](size_t g) {
    // One span per grouping pattern ("args":{"v":g}); the nested "eval"
    // and "shard" spans beneath it give the trace its pattern -> shard
    // hierarchy on each worker track.
    const obs::TraceSpan pattern_span("pattern",
                                      static_cast<int64_t>(g));
    const FrequentPattern& group = groups[g];
    // Delta-aware short-circuit: a group whose support the append left
    // unchanged gained no delta rows, so its cached candidate rules are
    // exactly what this lattice traversal would re-derive.
    if (inc != nullptr &&
        inc->TryReuseGroup(group, protected_mask_, &per_group[g], &evals[g])) {
      return;
    }
    const std::string group_key =
        inc != nullptr ? group.pattern.Key() : std::string();
    // Subgroup cardinalities come from fused word-level counts; the
    // protected / non-protected coverage bitmaps are only materialized on
    // the legacy pinning path (the batch engine splits the accumulation
    // on the protected bit instead).
    const size_t protected_count = group.coverage.AndCount(protected_mask_);
    const size_t nonprotected_count =
        group.coverage.AndNotCount(protected_mask_);
    Bitmap coverage_protected;
    Bitmap coverage_nonprotected;
    if (!options_.use_batch_estimator) {
      coverage_protected = group.coverage & protected_mask_;
      coverage_nonprotected = group.coverage;
      coverage_nonprotected.AndNot(protected_mask_);
    }

    TreatmentEvaluator evaluator =
        [&](const Pattern& intervention) -> std::optional<TreatmentEval> {
      const obs::TraceSpan eval_span("eval", static_cast<int64_t>(g));
      // Gather the overall estimate (and, on the batch path, the
      // protected / non-protected slice from the same one-pass engine).
      CateSubgroupEstimates ests;
      if (options_.use_batch_estimator) {
        // Each evaluation gets its own TaskGroup as the barrier for its
        // shard fan-out — child tasks of this pattern task, executed by
        // whichever workers are free (Wait helps, so this is legal from
        // inside the pattern task).
        TaskGroup shard_tasks(scheduler.get());
        Result<CateSubgroupEstimates> batch =
            inc != nullptr
                ? inc->EstimateWithCache(
                      estimator_, group_key, intervention, group.coverage,
                      protected_mask_,
                      /*want_subgroups=*/needs_group_utilities,
                      options_.min_subgroup_arm,
                      /*skip_subgroups_unless_positive=*/true, eval_plan,
                      eval_plan != nullptr ? &shard_tasks : nullptr)
                : estimator_.EstimateSubgroups(
                      intervention, group.coverage,
                      needs_group_utilities ? &protected_mask_ : nullptr,
                      options_.min_subgroup_arm,
                      /*skip_subgroups_unless_positive=*/true, eval_plan,
                      eval_plan != nullptr ? &shard_tasks : nullptr);
        if (!batch.ok()) return std::nullopt;
        ests = std::move(batch).ValueOrDie();
      } else {
        ests.overall = estimator_.Estimate(intervention, group.coverage);
      }
      if (!ests.overall.ok()) return std::nullopt;
      const CateEstimate& overall = *ests.overall;
      TreatmentEval eval;
      eval.cate = overall.cate;
      eval.std_error = overall.std_error;
      // Non-positive treatments are never selectable (Section 4.3) and the
      // lattice prunes on the overall CATE only, so their subgroup
      // estimates would be wasted work.
      if (overall.cate <= 0.0) {
        eval.score = overall.cate;
        eval.feasible = false;
        return eval;
      }
      if (needs_group_utilities) {
        if (!options_.use_batch_estimator) {
          // Legacy oracle: two further design-matrix passes.
          if (protected_count > 0) {
            ests.protected_group = estimator_.Estimate(
                intervention, coverage_protected, options_.min_subgroup_arm);
          }
          if (nonprotected_count > 0) {
            ests.nonprotected = estimator_.Estimate(
                intervention, coverage_nonprotected,
                options_.min_subgroup_arm);
          }
        }
        double utility_protected = 0.0;
        double utility_nonprotected = 0.0;
        bool estimable = true;
        if (protected_count > 0) {
          if (ests.protected_group.ok()) {
            utility_protected = ests.protected_group->cate;
          } else {
            estimable = false;
          }
        }
        if (nonprotected_count > 0) {
          if (ests.nonprotected.ok()) {
            utility_nonprotected = ests.nonprotected->cate;
          } else {
            estimable = false;
          }
        }
        eval.utility_protected = utility_protected;
        eval.utility_nonprotected = utility_nonprotected;
        eval.subgroups_estimable = estimable;
        eval.has_subgroup_utilities = true;
        eval.score = RuleBenefit(overall.cate, utility_protected,
                                 utility_nonprotected, options_.fairness);
        // A treatment whose subgroup effects cannot be estimated cannot
        // have its fairness certified; under an active fairness
        // constraint it is not selectable.
        if (!estimable) eval.feasible = false;
        // Individual-scope constraints restrict which treatments are
        // selectable for this group (Section 5.4).
        if (eval.feasible && options_.fairness.individual()) {
          PrescriptionRule probe;
          probe.utility = overall.cate;
          probe.utility_protected = utility_protected;
          probe.utility_nonprotected = utility_nonprotected;
          eval.feasible = options_.fairness.RuleSatisfies(probe);
        }
      } else {
        eval.score = overall.cate;
      }
      return eval;
    };

    const LatticeResult lattice = TraverseInterventionLattice(
        *df_, mutable_attrs_, evaluator, options_.lattice);
    evals[g] = lattice.num_evaluated;

    auto emit = [&](const Pattern& intervention, const TreatmentEval& eval) {
      PrescriptionRule rule = CostRule(group.pattern, intervention, &eval);
      if (rule.utility <= 0.0) return;
      if (options_.fairness.active() && !rule.GroupUtilitiesEstimable()) {
        return;
      }
      if (options_.fairness.individual() &&
          !options_.fairness.RuleSatisfies(rule)) {
        return;
      }
      per_group[g].push_back(std::move(rule));
    };

    if (options_.keep_all_treatments) {
      for (const auto& [pattern, eval] : lattice.positive) {
        if (eval.feasible) emit(pattern, eval);
      }
    } else if (lattice.best.has_value()) {
      emit(*lattice.best, lattice.best_eval);
    }
    if (inc != nullptr) inc->StoreGroup(group, per_group[g], evals[g]);
  };

  if (scheduler == nullptr) {
    for (size_t g = 0; g < groups.size(); ++g) mine_one(g);
  } else {
    // Top level of the task graph: one chunked fan-out over the grouping
    // patterns. Each pattern task spawns its evaluations' shard tasks as
    // children on the same workers — no axis ever idles the pool.
    scheduler->ParallelFor(groups.size(), mine_one);
  }
  if (scheduler_stats != nullptr) {
    *scheduler_stats = SchedulerStats{};
    scheduler_stats->collected = true;
    if (scheduler != nullptr) {
      const TaskScheduler::Stats stats = scheduler->GetStats();
      scheduler_stats->workers = scheduler->num_threads();
      scheduler_stats->tasks = stats.executed;
      scheduler_stats->stolen = stats.stolen;
      scheduler_stats->helped = stats.helped;
    } else {
      // Inline execution is a real run, not "stats missing": every
      // grouping pattern executed on the calling thread.
      scheduler_stats->inline_execution = true;
      scheduler_stats->tasks = groups.size();
    }
  }

  std::vector<PrescriptionRule> candidates;
  size_t total_evals = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    total_evals += evals[g];
    for (auto& rule : per_group[g]) candidates.push_back(std::move(rule));
  }
  if (num_evaluations != nullptr) *num_evaluations = total_evals;

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& pattern_tasks =
      registry.GetCounter("mining.pattern_tasks");
  pattern_tasks.Add(groups.size());
  // Set here (not only in Run) so direct callers — bench_schedule, the
  // baseline adapters — get a populated run report too.
  registry.GetGauge(obs::kPhaseTreatmentMining)
      .Set(mining_watch.ElapsedSeconds());
  return candidates;
}

Result<FairCapResult> FairCap::Run() const {
  FairCapResult result;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  StopWatch total_watch;
  StopWatch watch;

  // Step 1: grouping patterns.
  std::vector<FrequentPattern> groups;
  {
    const obs::TraceSpan step_span("group_mining");
    FAIRCAP_ASSIGN_OR_RETURN(groups, MineGroupingPatterns());
  }
  result.num_grouping_patterns = groups.size();
  result.timings.group_mining_seconds = watch.ElapsedSeconds();
  registry.GetGauge(obs::kPhaseGroupMining)
      .Set(result.timings.group_mining_seconds);

  // Step 2: intervention patterns.
  watch.Restart();
  FAIRCAP_ASSIGN_OR_RETURN(
      const std::vector<PrescriptionRule> candidates,
      MineCandidateRules(groups, &result.num_treatment_evaluations,
                         &result.scheduler));
  result.num_candidate_rules = candidates.size();
  result.timings.treatment_mining_seconds = watch.ElapsedSeconds();
  registry.GetGauge(obs::kPhaseTreatmentMining)
      .Set(result.timings.treatment_mining_seconds);

  // Step 3: greedy selection (budget-aware when a cost model is set).
  watch.Restart();
  const obs::TraceSpan selection_span("selection");
  std::vector<double> costs;
  const std::vector<double>* costs_ptr = nullptr;
  if (options_.cost_model != nullptr && options_.greedy.budget > 0.0) {
    costs.reserve(candidates.size());
    for (const PrescriptionRule& rule : candidates) {
      costs.push_back(
          options_.cost_model->RuleTotalCost(rule, df_->schema()));
    }
    costs_ptr = &costs;
  }
  GreedyOptions greedy_options = options_.greedy;
  // Selection shares the pipeline's thread budget; the greedy result is
  // thread-count-invariant (see GreedyOptions::num_threads).
  greedy_options.num_threads = options_.num_threads;
  const GreedyResult greedy =
      GreedySelect(candidates, protected_mask_, options_.fairness,
                   options_.coverage, greedy_options, costs_ptr);
  result.timings.selection_seconds = watch.ElapsedSeconds();
  registry.GetGauge(obs::kPhaseSelection)
      .Set(result.timings.selection_seconds);
  registry.GetGauge(obs::kPhaseTotal).Set(total_watch.ElapsedSeconds());

  result.stats = greedy.stats;
  result.constraints_satisfied = greedy.constraints_satisfied;
  result.total_cost = greedy.total_cost;
  result.rules.reserve(greedy.selected.size());
  for (size_t idx : greedy.selected) {
    result.rules.push_back(candidates[idx]);
  }
  return result;
}

}  // namespace faircap
