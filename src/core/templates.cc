#include "core/templates.h"

#include "util/string_util.h"

namespace faircap {

namespace {

std::string DescribePredicate(const Predicate& p, const Schema& schema,
                              bool as_condition) {
  const std::string& attr = schema.attribute(p.attr).name;
  const std::string value = p.value.ToString();
  if (as_condition) {
    switch (p.op) {
      case CompareOp::kEq: return attr + " " + value;
      case CompareOp::kNe: return attr + " other than " + value;
      case CompareOp::kLt: return attr + " below " + value;
      case CompareOp::kGt: return attr + " above " + value;
      case CompareOp::kLe: return attr + " at most " + value;
      case CompareOp::kGe: return attr + " at least " + value;
    }
  } else {
    // Imperative form for interventions.
    switch (p.op) {
      case CompareOp::kEq: return "set " + attr + " to " + value;
      case CompareOp::kNe: return "move " + attr + " away from " + value;
      case CompareOp::kLt: return "bring " + attr + " below " + value;
      case CompareOp::kGt: return "raise " + attr + " above " + value;
      case CompareOp::kLe: return "keep " + attr + " at most " + value;
      case CompareOp::kGe: return "keep " + attr + " at least " + value;
    }
  }
  return attr;
}

std::string JoinClauses(const std::vector<std::string>& clauses) {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += i + 1 == clauses.size() ? " and " : ", ";
    out += clauses[i];
  }
  return out;
}

}  // namespace

std::string RuleToNaturalLanguage(const PrescriptionRule& rule,
                                  const Schema& schema,
                                  const TemplateOptions& options) {
  std::string out;
  if (rule.grouping.empty()) {
    out += "For everyone, ";
  } else {
    std::vector<std::string> conditions;
    for (const Predicate& p : rule.grouping.predicates()) {
      conditions.push_back(DescribePredicate(p, schema, /*as_condition=*/true));
    }
    out += "For individuals with " + JoinClauses(conditions) + ", ";
  }

  std::vector<std::string> actions;
  for (const Predicate& p : rule.intervention.predicates()) {
    actions.push_back(DescribePredicate(p, schema, /*as_condition=*/false));
  }
  out += actions.empty() ? "no action is prescribed" : JoinClauses(actions);

  out += " (expected gain " + options.utility_unit +
         FormatDouble(rule.utility);
  if (options.include_group_utilities) {
    out += "; protected " + options.utility_unit +
           FormatDouble(rule.utility_protected) + ", non-protected " +
           options.utility_unit + FormatDouble(rule.utility_nonprotected);
  }
  if (options.include_support) {
    out += ", applies to " + std::to_string(rule.support) + " individuals";
  }
  out += ").";
  return out;
}

std::string RulesetToNaturalLanguage(
    const std::vector<PrescriptionRule>& rules, const Schema& schema,
    const TemplateOptions& options) {
  std::string out;
  for (size_t i = 0; i < rules.size(); ++i) {
    out += std::to_string(i + 1) + ". " +
           RuleToNaturalLanguage(rules[i], schema, options) + "\n";
  }
  return out;
}

}  // namespace faircap
