#include "core/cost.h"

namespace faircap {

namespace {

std::string AtomKey(const std::string& attr, const std::string& value) {
  return attr + "=" + value;
}

}  // namespace

void InterventionCostModel::SetAtomCost(const std::string& attr,
                                        const std::string& value,
                                        double cost) {
  atom_costs_[AtomKey(attr, value)] = cost;
}

void InterventionCostModel::SetAttributeCost(const std::string& attr,
                                             double cost) {
  attribute_costs_[attr] = cost;
}

double InterventionCostModel::AtomCost(const std::string& attr,
                                       const std::string& value) const {
  const auto atom_it = atom_costs_.find(AtomKey(attr, value));
  if (atom_it != atom_costs_.end()) return atom_it->second;
  const auto attr_it = attribute_costs_.find(attr);
  if (attr_it != attribute_costs_.end()) return attr_it->second;
  return default_atom_cost_;
}

double InterventionCostModel::PatternCost(const Pattern& pattern,
                                          const Schema& schema) const {
  double cost = 0.0;
  for (const Predicate& p : pattern.predicates()) {
    cost += AtomCost(schema.attribute(p.attr).name, p.value.ToString());
  }
  return cost;
}

double InterventionCostModel::RuleTotalCost(const PrescriptionRule& rule,
                                            const Schema& schema) const {
  return PatternCost(rule.intervention, schema) *
         static_cast<double>(rule.support);
}

}  // namespace faircap
