// Baseline adapters (Section 7.1). IDS/FRL emit prediction rules, not
// prescriptions, so the paper evaluates them two ways:
//   (1) IF clause as grouping pattern — keep the antecedent's immutable
//       predicates as P_grp, then run FairCap step 2 to find P_int;
//   (2) IF clause as intervention pattern — keep the antecedent's mutable
//       predicates as P_int, with the whole dataset as the group.
// Either way the resulting prescription rules are costed with the causal
// estimator so they are comparable in Table 4.

#ifndef FAIRCAP_BASELINES_ADAPTERS_H_
#define FAIRCAP_BASELINES_ADAPTERS_H_

#include <vector>

#include "core/faircap.h"
#include "mining/pattern.h"

namespace faircap {

/// How to interpret a baseline rule's IF clause.
enum class IfClauseTreatment {
  kAsGroupingPattern,
  kAsInterventionPattern,
};

/// Converts baseline antecedents into costed prescription rules using
/// `solver`'s data, DAG, and estimator. Antecedents that become empty
/// after the role filter are dropped; duplicates are merged.
Result<std::vector<PrescriptionRule>> AdaptBaselineRules(
    const FairCap& solver, const std::vector<Pattern>& antecedents,
    IfClauseTreatment treatment);

/// Projects a pattern onto attributes with the given role.
Pattern ProjectPattern(const Pattern& pattern, const Schema& schema,
                       AttrRole role);

}  // namespace faircap

#endif  // FAIRCAP_BASELINES_ADAPTERS_H_
