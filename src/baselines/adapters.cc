#include "baselines/adapters.h"

#include <unordered_set>

namespace faircap {

Pattern ProjectPattern(const Pattern& pattern, const Schema& schema,
                       AttrRole role) {
  std::vector<Predicate> kept;
  for (const Predicate& p : pattern.predicates()) {
    if (schema.attribute(p.attr).role == role) kept.push_back(p);
  }
  return Pattern(std::move(kept));
}

Result<std::vector<PrescriptionRule>> AdaptBaselineRules(
    const FairCap& solver, const std::vector<Pattern>& antecedents,
    IfClauseTreatment treatment) {
  const DataFrame& df = solver.estimator().data();
  std::vector<PrescriptionRule> rules;
  std::unordered_set<std::string> seen;

  if (treatment == IfClauseTreatment::kAsGroupingPattern) {
    // Project to immutable predicates, then let FairCap's step 2 find the
    // best intervention for each group.
    std::vector<FrequentPattern> groups;
    for (const Pattern& antecedent : antecedents) {
      Pattern grouping =
          ProjectPattern(antecedent, df.schema(), AttrRole::kImmutable);
      if (!seen.insert(grouping.Key()).second) continue;
      FrequentPattern fp;
      fp.coverage = grouping.Evaluate(df);
      fp.support = fp.coverage.Count();
      fp.pattern = std::move(grouping);
      if (fp.support == 0) continue;
      groups.push_back(std::move(fp));
    }
    return solver.MineCandidateRules(groups);
  }

  // IF clause as intervention: group = whole dataset.
  for (const Pattern& antecedent : antecedents) {
    Pattern intervention =
        ProjectPattern(antecedent, df.schema(), AttrRole::kMutable);
    if (intervention.empty()) continue;
    if (!seen.insert(intervention.Key()).second) continue;
    PrescriptionRule rule = solver.CostRule(Pattern::Empty(), intervention);
    if (rule.utility <= 0.0) continue;
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace faircap
