// IDS baseline: Interpretable Decision Sets (Lakkaraju, Bach & Leskovec,
// KDD 2016), simplified. IDS learns an unordered set of if-then
// *prediction* rules for a binary outcome by greedily optimizing a
// submodular trade-off between coverage, precision, and conciseness.
// The rules are association-based (non-causal); Section 7.1 of the paper
// adapts their IF clauses into grouping or intervention patterns.

#ifndef FAIRCAP_BASELINES_IDS_H_
#define FAIRCAP_BASELINES_IDS_H_

#include <vector>

#include "dataframe/dataframe.h"
#include "mining/apriori.h"
#include "util/result.h"

namespace faircap {

/// One learned prediction rule: IF antecedent THEN outcome-class.
struct IdsRule {
  Pattern antecedent;
  bool positive = true;      ///< predicted class (outcome above mean)
  double confidence = 0.0;   ///< empirical P(class | antecedent)
  Bitmap coverage;
  size_t support = 0;
};

/// Tuning knobs.
struct IdsOptions {
  /// Candidate antecedent mining.
  AprioriOptions apriori;
  /// Cap on the number of selected rules (the paper assigns FairCap's cap).
  size_t max_rules = 16;
  /// Candidates below this confidence are not considered.
  double min_confidence = 0.55;
  /// Submodular objective weights: coverage, precision, overlap penalty,
  /// conciseness penalty per rule. Precision outweighs overlap so strongly
  /// predictive rules still enter after the data is covered (mirroring the
  /// IDS objective's accuracy terms).
  double weight_coverage = 1.0;
  double weight_precision = 2.0;
  double weight_overlap = 0.1;
  double weight_conciseness = 0.01;
};

/// Learns a decision set predicting whether the outcome is above its mean.
/// Antecedents range over all categorical non-outcome attributes
/// (IDS does not distinguish mutable from immutable — Section 7.3).
Result<std::vector<IdsRule>> FitIds(const DataFrame& df,
                                    const IdsOptions& options = {});

}  // namespace faircap

#endif  // FAIRCAP_BASELINES_IDS_H_
