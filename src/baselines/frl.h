// FRL baseline: Falling Rule Lists (Chen & Rudin, AISTATS 2018),
// simplified. An FRL is an *ordered* list of if-then rules whose
// positive-outcome probabilities are monotonically non-increasing; a tuple
// is scored by the first rule it matches. Rules are association-based
// (non-causal). The original uses Bayesian joint optimization; we use the
// standard greedy construction (pick the highest-probability candidate on
// the not-yet-covered rows, enforce monotonicity), which preserves the
// baseline's behavioural role at far lower cost — the paper itself notes
// FRL is an order of magnitude slower than IDS for this reason.

#ifndef FAIRCAP_BASELINES_FRL_H_
#define FAIRCAP_BASELINES_FRL_H_

#include <vector>

#include "dataframe/dataframe.h"
#include "mining/apriori.h"
#include "util/result.h"

namespace faircap {

/// One rule in the falling list.
struct FrlRule {
  Pattern antecedent;
  /// Empirical P(outcome above mean | antecedent, not covered earlier).
  double probability = 0.0;
  /// Rows matched by this rule and no earlier rule.
  size_t support = 0;
};

/// Tuning knobs.
struct FrlOptions {
  AprioriOptions apriori;
  size_t max_rules = 16;
  /// A rule must newly cover at least this many rows.
  size_t min_new_coverage = 50;
  /// Stop once the best candidate probability drops below the base rate.
  bool stop_at_base_rate = true;
};

/// Learns a falling rule list for "outcome above its mean".
Result<std::vector<FrlRule>> FitFrl(const DataFrame& df,
                                    const FrlOptions& options = {});

}  // namespace faircap

#endif  // FAIRCAP_BASELINES_FRL_H_
