#include "baselines/causumx.h"

namespace faircap {

Result<FairCapResult> RunCauSumX(const DataFrame* df, const CausalDag* dag,
                                 const Pattern& protected_pattern,
                                 const CauSumXOptions& options) {
  FairCapOptions fc_options;
  fc_options.apriori = options.apriori;
  fc_options.lattice = options.lattice;
  fc_options.cate = options.cate;
  fc_options.greedy = options.greedy;
  fc_options.fairness = FairnessConstraint::None();
  // Overall coverage only: theta_protected = 0.
  fc_options.coverage =
      CoverageConstraint::Group(options.coverage_theta, 0.0);
  fc_options.num_threads = options.num_threads;
  FAIRCAP_ASSIGN_OR_RETURN(
      const FairCap solver,
      FairCap::Create(df, dag, protected_pattern, fc_options));
  return solver.Run();
}

}  // namespace faircap
