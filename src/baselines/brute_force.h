// Exhaustive ruleset search over candidate subsets. Exponential — only for
// small candidate pools. Used in tests to validate the greedy heuristic
// and in the Section 7.3 discussion of why brute force is impractical.

#ifndef FAIRCAP_BASELINES_BRUTE_FORCE_H_
#define FAIRCAP_BASELINES_BRUTE_FORCE_H_

#include <vector>

#include "core/coverage.h"
#include "core/fairness.h"
#include "core/rule.h"
#include "core/ruleset.h"
#include "util/result.h"

namespace faircap {

/// Optimal subset under the Definition 4.6 objective.
struct BruteForceResult {
  std::vector<size_t> selected;
  RulesetStats stats;
  double objective = 0.0;
  bool found_valid = false;  ///< false if no subset satisfies constraints
};

/// Options for the exhaustive search.
struct BruteForceOptions {
  double lambda1 = 0.0;  ///< size term weight
  double lambda2 = 1.0;  ///< expected-utility term weight
  size_t max_rules = 20;
  /// Hard cap on candidate count (2^n subsets).
  size_t max_candidates = 22;
};

/// Enumerates every subset of `candidates` (up to `max_rules` in size),
/// keeps those satisfying the fairness + coverage constraints, and returns
/// the objective maximizer. Fails if candidates exceed `max_candidates`.
Result<BruteForceResult> BruteForceSelect(
    const std::vector<PrescriptionRule>& candidates,
    const Bitmap& protected_mask, const FairnessConstraint& fairness,
    const CoverageConstraint& coverage, const BruteForceOptions& options = {});

}  // namespace faircap

#endif  // FAIRCAP_BASELINES_BRUTE_FORCE_H_
