#include "baselines/brute_force.h"

namespace faircap {

Result<BruteForceResult> BruteForceSelect(
    const std::vector<PrescriptionRule>& candidates,
    const Bitmap& protected_mask, const FairnessConstraint& fairness,
    const CoverageConstraint& coverage, const BruteForceOptions& options) {
  if (candidates.size() > options.max_candidates) {
    return Status::InvalidArgument(
        "brute force limited to " + std::to_string(options.max_candidates) +
        " candidates; got " + std::to_string(candidates.size()));
  }
  const size_t population = protected_mask.size();
  const size_t population_protected = protected_mask.Count();
  const size_t l = candidates.size();

  BruteForceResult best;
  best.objective = -1e300;

  std::vector<size_t> subset;
  for (uint64_t mask = 0; mask < (1ULL << l); ++mask) {
    if (static_cast<size_t>(__builtin_popcountll(mask)) > options.max_rules) {
      continue;
    }
    subset.clear();
    bool matroid_ok = true;
    for (size_t i = 0; i < l; ++i) {
      if ((mask >> i) & 1ULL) {
        const PrescriptionRule& rule = candidates[i];
        if (rule.utility <= 0.0 ||
            !coverage.RuleSatisfies(rule, population, population_protected) ||
            !fairness.RuleSatisfies(rule)) {
          matroid_ok = false;
          break;
        }
        subset.push_back(i);
      }
    }
    if (!matroid_ok) continue;
    const RulesetStats stats =
        ComputeRulesetStats(candidates, subset, protected_mask);
    if (!fairness.StatsSatisfy(stats) || !coverage.StatsSatisfy(stats)) {
      continue;
    }
    const double objective =
        RulesetObjective(stats, l, options.lambda1, options.lambda2);
    if (objective > best.objective) {
      best.objective = objective;
      best.selected = subset;
      best.stats = stats;
      best.found_valid = true;
    }
  }
  return best;
}

}  // namespace faircap
