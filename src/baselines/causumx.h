// CauSumX baseline (Youngmann et al. 2024). When applied to prescription
// mining it behaves like FairCap with no fairness constraint: per grouping
// pattern it keeps the treatment with the highest CATE, then greedily
// selects by coverage + utility (Section 7.1: "it can be viewed as a
// solution to our problem with only an overall coverage constraint").

#ifndef FAIRCAP_BASELINES_CAUSUMX_H_
#define FAIRCAP_BASELINES_CAUSUMX_H_

#include "core/faircap.h"

namespace faircap {

/// Options: same shape as FairCap's, minus fairness (always none).
struct CauSumXOptions {
  AprioriOptions apriori;
  LatticeOptions lattice;
  CateOptions cate;
  GreedyOptions greedy;
  /// CauSumX targets overall coverage only.
  double coverage_theta = 0.5;
  size_t num_threads = 0;
};

/// Runs the CauSumX-style pipeline. Fairness is disabled; utilities for
/// protected / non-protected groups are still reported so the unfairness
/// of the result can be measured.
Result<FairCapResult> RunCauSumX(const DataFrame* df, const CausalDag* dag,
                                 const Pattern& protected_pattern,
                                 const CauSumXOptions& options = {});

}  // namespace faircap

#endif  // FAIRCAP_BASELINES_CAUSUMX_H_
