#include "baselines/frl.h"

#include <cmath>
#include <limits>

namespace faircap {

Result<std::vector<FrlRule>> FitFrl(const DataFrame& df,
                                    const FrlOptions& options) {
  FAIRCAP_ASSIGN_OR_RETURN(const size_t outcome, df.schema().OutcomeIndex());
  const double mean = df.Mean(outcome);
  if (std::isnan(mean)) {
    return Status::FailedPrecondition("outcome column has no values");
  }
  const size_t n = df.num_rows();
  Bitmap positive(n);
  const Column& col = df.column(outcome);
  for (size_t r = 0; r < n; ++r) {
    if (!col.IsNull(r) && col.numeric(r) >= mean) positive.Set(r);
  }
  const double base_rate =
      n == 0 ? 0.0
             : static_cast<double>(positive.Count()) / static_cast<double>(n);

  std::vector<size_t> attrs;
  for (size_t i = 0; i < df.num_columns(); ++i) {
    const AttributeSpec& spec = df.schema().attribute(i);
    if (spec.role == AttrRole::kOutcome || spec.role == AttrRole::kIgnored) {
      continue;
    }
    if (spec.type == AttrType::kCategorical) attrs.push_back(i);
  }
  FAIRCAP_ASSIGN_OR_RETURN(const std::vector<FrequentPattern> frequent,
                           MineFrequentPatterns(df, attrs, options.apriori));

  std::vector<FrlRule> list;
  Bitmap remaining = df.AllRows();
  std::vector<bool> taken(frequent.size(), false);
  double previous_probability = std::numeric_limits<double>::infinity();

  while (list.size() < options.max_rules) {
    double best_probability = -1.0;
    size_t best = frequent.size();
    size_t best_support = 0;
    for (size_t i = 0; i < frequent.size(); ++i) {
      if (taken[i]) continue;
      Bitmap fresh = frequent[i].coverage & remaining;
      const size_t support = fresh.Count();
      if (support < options.min_new_coverage) continue;
      const double probability =
          static_cast<double>(fresh.AndCount(positive)) /
          static_cast<double>(support);
      // Monotonicity: the list must be "falling".
      if (probability > previous_probability) continue;
      if (probability > best_probability ||
          (probability == best_probability && support > best_support)) {
        best_probability = probability;
        best = i;
        best_support = support;
      }
    }
    if (best == frequent.size()) break;
    if (options.stop_at_base_rate && best_probability < base_rate) break;
    taken[best] = true;
    FrlRule rule;
    rule.antecedent = frequent[best].pattern;
    rule.probability = best_probability;
    rule.support = best_support;
    list.push_back(std::move(rule));
    remaining.AndNot(frequent[best].coverage);
    previous_probability = best_probability;
  }
  return list;
}

}  // namespace faircap
