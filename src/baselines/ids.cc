#include "baselines/ids.h"

#include <algorithm>
#include <cmath>

namespace faircap {

namespace {

// Rows whose outcome is >= the outcome mean.
Result<Bitmap> PositiveMask(const DataFrame& df) {
  FAIRCAP_ASSIGN_OR_RETURN(const size_t outcome, df.schema().OutcomeIndex());
  const double mean = df.Mean(outcome);
  if (std::isnan(mean)) {
    return Status::FailedPrecondition("outcome column has no values");
  }
  Bitmap positive(df.num_rows());
  const Column& col = df.column(outcome);
  for (size_t r = 0; r < df.num_rows(); ++r) {
    if (!col.IsNull(r) && col.numeric(r) >= mean) positive.Set(r);
  }
  return positive;
}

std::vector<size_t> CandidateAttrs(const DataFrame& df) {
  std::vector<size_t> attrs;
  for (size_t i = 0; i < df.num_columns(); ++i) {
    const AttributeSpec& spec = df.schema().attribute(i);
    if (spec.role == AttrRole::kOutcome || spec.role == AttrRole::kIgnored) {
      continue;
    }
    if (spec.type == AttrType::kCategorical) attrs.push_back(i);
  }
  return attrs;
}

}  // namespace

Result<std::vector<IdsRule>> FitIds(const DataFrame& df,
                                    const IdsOptions& options) {
  FAIRCAP_ASSIGN_OR_RETURN(const Bitmap positive, PositiveMask(df));
  FAIRCAP_ASSIGN_OR_RETURN(
      const std::vector<FrequentPattern> frequent,
      MineFrequentPatterns(df, CandidateAttrs(df), options.apriori));

  // Build both-class candidates with their confidence.
  struct Candidate {
    IdsRule rule;
    size_t correct = 0;  // rows where predicted class matches
  };
  std::vector<Candidate> candidates;
  candidates.reserve(frequent.size());
  for (const FrequentPattern& fp : frequent) {
    if (fp.support == 0) continue;
    const size_t pos = fp.coverage.AndCount(positive);
    const size_t neg = fp.support - pos;
    Candidate c;
    c.rule.antecedent = fp.pattern;
    c.rule.coverage = fp.coverage;
    c.rule.support = fp.support;
    if (pos >= neg) {
      c.rule.positive = true;
      c.rule.confidence =
          static_cast<double>(pos) / static_cast<double>(fp.support);
      c.correct = pos;
    } else {
      c.rule.positive = false;
      c.rule.confidence =
          static_cast<double>(neg) / static_cast<double>(fp.support);
      c.correct = neg;
    }
    if (c.rule.confidence < options.min_confidence) continue;
    candidates.push_back(std::move(c));
  }

  // Greedy submodular selection: marginal gain of adding rule r to set S is
  //   w_cov * |cover(r) \ cover(S)| / n
  // + w_prec * (confidence(r) - 0.5) * |cover(r)| / n
  // - w_overlap * |cover(r) ∩ cover(S)| / n
  // - w_concise
  const size_t n = df.num_rows();
  const double dn = static_cast<double>(std::max<size_t>(n, 1));
  std::vector<IdsRule> selected;
  Bitmap covered(n);
  std::vector<bool> taken(candidates.size(), false);
  while (selected.size() < options.max_rules) {
    double best_gain = 0.0;
    size_t best = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      const Candidate& c = candidates[i];
      Bitmap fresh = c.rule.coverage;
      fresh.AndNot(covered);
      const double new_cov = static_cast<double>(fresh.Count()) / dn;
      const double overlap =
          static_cast<double>(c.rule.support - fresh.Count()) / dn;
      const double gain =
          options.weight_coverage * new_cov +
          options.weight_precision * (c.rule.confidence - 0.5) *
              static_cast<double>(c.rule.support) / dn -
          options.weight_overlap * overlap - options.weight_conciseness;
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == candidates.size()) break;
    taken[best] = true;
    covered |= candidates[best].rule.coverage;
    selected.push_back(candidates[best].rule);
  }
  return selected;
}

}  // namespace faircap
