#include "ingest/repository.h"

#include "causal/dag_io.h"
#include "data/german.h"
#include "data/stackoverflow.h"
#include "ingest/synthetic.h"
#include "util/string_util.h"

namespace faircap {

namespace {

Result<Dataset> MakeGermanDataset(const DatasetRequest& request) {
  GermanConfig config;
  if (request.rows != 0) config.num_rows = request.rows;
  if (request.seed != 0) config.seed = request.seed;
  FAIRCAP_ASSIGN_OR_RETURN(
      config.protected_attenuation,
      request.ParamDouble("attenuation", config.protected_attenuation));
  FAIRCAP_ASSIGN_OR_RETURN(GermanData data, MakeGerman(config));
  return Dataset{"german", std::move(data.df), std::move(data.dag),
                 std::move(data.protected_pattern)};
}

Result<Dataset> MakeStackOverflowDataset(const DatasetRequest& request) {
  StackOverflowConfig config;
  if (request.rows != 0) config.num_rows = request.rows;
  if (request.seed != 0) config.seed = request.seed;
  FAIRCAP_ASSIGN_OR_RETURN(
      config.protected_attenuation,
      request.ParamDouble("attenuation", config.protected_attenuation));
  FAIRCAP_ASSIGN_OR_RETURN(StackOverflowData data, MakeStackOverflow(config));
  return Dataset{"stackoverflow", std::move(data.df), std::move(data.dag),
                 std::move(data.protected_pattern)};
}

Result<Dataset> MakeSyntheticDataset(const DatasetRequest& request) {
  SyntheticConfig config;
  if (request.rows != 0) config.num_rows = request.rows;
  if (request.seed != 0) config.seed = request.seed;
  FAIRCAP_ASSIGN_OR_RETURN(
      double immutable,
      request.ParamDouble("immutable",
                          static_cast<double>(config.num_immutable)));
  config.num_immutable = static_cast<size_t>(immutable);
  FAIRCAP_ASSIGN_OR_RETURN(
      double mutable_attrs,
      request.ParamDouble("mutable", static_cast<double>(config.num_mutable)));
  config.num_mutable = static_cast<size_t>(mutable_attrs);
  FAIRCAP_ASSIGN_OR_RETURN(
      double categories,
      request.ParamDouble("categories",
                          static_cast<double>(config.categories_per_attr)));
  config.categories_per_attr = static_cast<size_t>(categories);
  FAIRCAP_ASSIGN_OR_RETURN(
      config.protected_fraction,
      request.ParamDouble("protected-fraction", config.protected_fraction));
  FAIRCAP_ASSIGN_OR_RETURN(config.group_skew,
                           request.ParamDouble("skew", config.group_skew));
  FAIRCAP_ASSIGN_OR_RETURN(
      config.protected_attenuation,
      request.ParamDouble("attenuation", config.protected_attenuation));
  FAIRCAP_ASSIGN_OR_RETURN(
      config.effect_heterogeneity,
      request.ParamDouble("heterogeneity", config.effect_heterogeneity));
  FAIRCAP_ASSIGN_OR_RETURN(
      config.noise_stddev,
      request.ParamDouble("noise", config.noise_stddev));
  FAIRCAP_ASSIGN_OR_RETURN(
      const double integer_outcome,
      request.ParamDouble("integer-outcome",
                          config.integer_outcome ? 1.0 : 0.0));
  config.integer_outcome = integer_outcome != 0.0;
  FAIRCAP_ASSIGN_OR_RETURN(SyntheticData data, MakeSynthetic(config));
  return Dataset{"synthetic", std::move(data.df), std::move(data.dag),
                 std::move(data.protected_pattern)};
}

Result<Dataset> MakeFileDataset(const DatasetRequest& request) {
  CsvDatasetSpec spec;
  spec.csv_path = request.ParamString("path");
  spec.dag_path = request.ParamString("dag");
  spec.outcome = request.ParamString("outcome");
  if (spec.csv_path.empty() || spec.dag_path.empty() ||
      spec.outcome.empty()) {
    return Status::InvalidArgument(
        "file dataset needs params: path=FILE.csv, dag=FILE.dag, "
        "outcome=ATTR [mutable=A,B] [protected=Attr=value,Attr2=v2]");
  }
  for (const std::string& name :
       Split(request.ParamString("mutable"), ',')) {
    const std::string trimmed = std::string(Trim(name));
    if (!trimmed.empty()) spec.mutable_attrs.push_back(trimmed);
  }
  for (const std::string& clause :
       Split(request.ParamString("protected"), ',')) {
    if (std::string(Trim(clause)).empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed protected clause '" + clause +
                                     "' (want Attr=value)");
    }
    spec.protected_clauses.emplace_back(
        std::string(Trim(clause.substr(0, eq))),
        std::string(Trim(clause.substr(eq + 1))));
  }
  return LoadCsvDataset(spec);
}

}  // namespace

Result<double> DatasetRequest::ParamDouble(const std::string& key,
                                           double fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  double v = 0.0;
  if (!ParseDouble(it->second, &v)) {
    return Status::InvalidArgument("param '" + key + "' value '" +
                                   it->second + "' is not numeric");
  }
  return v;
}

std::string DatasetRequest::ParamString(const std::string& key,
                                        const std::string& fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

DatasetRepository::DatasetRepository() {
  // Registration of compiled-in factories cannot collide.
  (void)Register("german",
                 "synthetic German credit (1K rows default; SCM of the "
                 "paper's Table 4 German workload)",
                 MakeGermanDataset);
  (void)Register("stackoverflow",
                 "synthetic StackOverflow survey (38K rows default; SCM of "
                 "the paper's Table 4 SO workload)",
                 MakeStackOverflowDataset);
  (void)Register("synthetic",
                 "parameterized scale workload (rows/seed plus params: "
                 "immutable, mutable, categories, protected-fraction, skew, "
                 "attenuation, heterogeneity, noise)",
                 MakeSyntheticDataset);
  (void)Register("file",
                 "CSV + DAG from disk via streaming ingest (params: path, "
                 "dag, outcome, mutable, protected)",
                 MakeFileDataset);
}

Status DatasetRepository::Register(const std::string& name,
                                   std::string description, Factory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("dataset factory must be callable");
  }
  MutexLock lock(mu_);
  const auto inserted = entries_.emplace(
      name, Entry{std::move(description), std::move(factory)});
  if (!inserted.second) {
    return Status::AlreadyExists("dataset '" + name + "' already registered");
  }
  return Status::OK();
}

bool DatasetRepository::Contains(const std::string& name) const {
  MutexLock lock(mu_);
  return entries_.count(name) != 0;
}

Result<Dataset> DatasetRepository::Load(const DatasetRequest& request) const {
  Factory factory;
  {
    MutexLock lock(mu_);
    const auto it = entries_.find(request.name);
    if (it == entries_.end()) {
      std::string known;
      for (const auto& [name, entry] : entries_) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      return Status::NotFound("no dataset '" + request.name +
                              "' registered (known: " + known + ")");
    }
    factory = it->second.factory;
  }
  // Run the factory outside the lock: generators take seconds at scale.
  FAIRCAP_ASSIGN_OR_RETURN(Dataset dataset, factory(request));
  dataset.name = request.name;
  return dataset;
}

Result<Dataset> DatasetRepository::Load(const std::string& name) const {
  DatasetRequest request;
  request.name = name;
  return Load(request);
}

std::vector<std::pair<std::string, std::string>> DatasetRepository::List()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.emplace_back(name, entry.description);
  }
  return out;
}

DatasetRepository& DatasetRepository::Global() {
  static DatasetRepository* instance = new DatasetRepository();
  return *instance;
}

namespace {

// Shared tail of the delta-parse paths: the delta is parsed against the
// RESIDENT schema (so roles carry over and category codes intern in the
// resident dictionaries' first-appearance order on append), and its own
// index is never warmed — the resident table's index extends lazily.
IngestOptions DeltaOptions(IngestOptions options) {
  options.warm_start_index = false;
  return options;
}

void FillAppendStats(const IngestStats& ingest,
                     DatasetRepository::AppendStats* stats) {
  if (stats == nullptr) return;
  stats->rows = ingest.rows;
  stats->bytes = ingest.bytes;
  stats->seconds = ingest.seconds;
}

}  // namespace

Result<DataFrame> DatasetRepository::ParseDelta(const Schema& schema,
                                                const std::string& csv_path,
                                                const IngestOptions& options,
                                                AppendStats* stats) {
  IngestStats ingest;
  FAIRCAP_ASSIGN_OR_RETURN(
      DataFrame delta, StreamCsv(csv_path, schema, DeltaOptions(options),
                                 &ingest));
  FillAppendStats(ingest, stats);
  return delta;
}

Result<DataFrame> DatasetRepository::ParseDeltaFromString(
    const Schema& schema, const std::string& content,
    const IngestOptions& options, AppendStats* stats) {
  IngestStats ingest;
  FAIRCAP_ASSIGN_OR_RETURN(
      DataFrame delta,
      StreamCsvFromString(content, schema, DeltaOptions(options), &ingest));
  FillAppendStats(ingest, stats);
  return delta;
}

Status DatasetRepository::Append(Dataset* dataset, const std::string& csv_path,
                                 const IngestOptions& options,
                                 AppendStats* stats) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset must be non-null");
  }
  FAIRCAP_ASSIGN_OR_RETURN(
      const DataFrame delta,
      ParseDelta(dataset->df.schema(), csv_path, options, stats));
  return dataset->df.AppendFrame(delta);
}

Status DatasetRepository::AppendFromString(Dataset* dataset,
                                           const std::string& content,
                                           const IngestOptions& options,
                                           AppendStats* stats) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset must be non-null");
  }
  FAIRCAP_ASSIGN_OR_RETURN(
      const DataFrame delta,
      ParseDeltaFromString(dataset->df.schema(), content, options, stats));
  return dataset->df.AppendFrame(delta);
}

Result<Dataset> LoadCsvDataset(const CsvDatasetSpec& spec) {
  FAIRCAP_ASSIGN_OR_RETURN(DataFrame df,
                           StreamCsvInferSchema(spec.csv_path, spec.ingest));
  FAIRCAP_RETURN_NOT_OK(df.SetRole(spec.outcome, AttrRole::kOutcome));
  for (const std::string& name : spec.mutable_attrs) {
    FAIRCAP_RETURN_NOT_OK(df.SetRole(name, AttrRole::kMutable));
  }
  FAIRCAP_ASSIGN_OR_RETURN(CausalDag dag, ReadDagFile(spec.dag_path));
  std::vector<Predicate> predicates;
  predicates.reserve(spec.protected_clauses.size());
  for (const auto& [attr, value] : spec.protected_clauses) {
    FAIRCAP_ASSIGN_OR_RETURN(const size_t idx, df.schema().IndexOf(attr));
    predicates.emplace_back(idx, CompareOp::kEq, Value(value));
  }
  return Dataset{"file", std::move(df), std::move(dag),
                 Pattern(std::move(predicates))};
}

}  // namespace faircap
