#include "ingest/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace faircap {

namespace {

constexpr char kGroupAttr[] = "Group";
constexpr char kProtectedLevel[] = "protected";
constexpr char kGeneralLevel[] = "general";
constexpr char kOutcomeAttr[] = "Outcome";

constexpr char kLevelPrefix[] = "level_";
constexpr size_t kLevelPrefixLen = sizeof(kLevelPrefix) - 1;

std::string ImmutableName(size_t i) { return "I" + std::to_string(i + 1); }
std::string MutableName(size_t t) { return "M" + std::to_string(t + 1); }

// Word-length level names ("level_0", ...): real categorical data carries
// words, not single characters, and loader benchmarks should see
// realistic cell widths.
std::string LevelName(size_t j) { return kLevelPrefix + std::to_string(j); }

std::vector<std::string> Levels(size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t j = 0; j < n; ++j) out.push_back(LevelName(j));
  return out;
}

// Level index encoded in the name ("level_3" -> 3).
size_t LevelOf(const ScmRow& row, const std::string& attr) {
  const std::string& v = row.at(attr).str();
  return static_cast<size_t>(std::stoul(v.substr(kLevelPrefixLen)));
}

bool IsProtected(const ScmRow& row) {
  return row.at(kGroupAttr).str() == kProtectedLevel;
}

Status ValidateConfig(const SyntheticConfig& config) {
  if (config.num_rows == 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  if (config.categories_per_attr < 2) {
    return Status::InvalidArgument("categories_per_attr must be >= 2");
  }
  if (config.num_mutable == 0) {
    return Status::InvalidArgument(
        "num_mutable must be >= 1 (no treatments to mine otherwise)");
  }
  if (config.protected_fraction <= 0.0 || config.protected_fraction >= 1.0) {
    return Status::InvalidArgument(
        "protected_fraction must be in (0, 1)");
  }
  if (config.group_skew < 0.0 || config.group_skew > 1.0) {
    return Status::InvalidArgument("group_skew must be in [0, 1]");
  }
  if (config.effect_heterogeneity < 0.0 || config.effect_heterogeneity > 1.0) {
    return Status::InvalidArgument("effect_heterogeneity must be in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Result<Scm> MakeSyntheticScm(const SyntheticConfig& config) {
  FAIRCAP_RETURN_NOT_OK(ValidateConfig(config));
  const size_t cats = config.categories_per_attr;

  Scm scm;
  FAIRCAP_RETURN_NOT_OK(scm.AddCategoricalRoot(
      kGroupAttr, AttrRole::kImmutable, {kProtectedLevel, kGeneralLevel},
      {config.protected_fraction, 1.0 - config.protected_fraction}));

  // Immutable grouping attributes: each level distribution tilts one way
  // for the general population and the other way inside the protected
  // group, with `group_skew` interpolating between identical and reversed
  // distributions.
  for (size_t i = 0; i < config.num_immutable; ++i) {
    std::vector<double> general(cats);
    for (size_t j = 0; j < cats; ++j) {
      general[j] = 1.0 + 0.25 * static_cast<double>((i + j) % cats);
    }
    std::vector<double> protected_w(cats);
    for (size_t j = 0; j < cats; ++j) {
      protected_w[j] = (1.0 - config.group_skew) * general[j] +
                       config.group_skew * general[cats - 1 - j];
    }
    ScmAttribute attr;
    attr.spec = {ImmutableName(i), AttrType::kCategorical,
                 AttrRole::kImmutable};
    attr.parents = {kGroupAttr};
    attr.sampler = [levels = Levels(cats), general = std::move(general),
                    protected_w = std::move(protected_w)](const ScmRow& row,
                                                          Rng& rng) {
      const std::vector<double>& w = IsProtected(row) ? protected_w : general;
      return Value(levels[rng.NextCategorical(w)]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(attr)));
  }

  // Mutable treatment attributes, each confounded by the protected root
  // and (when present) one immutable attribute: higher confounder levels
  // shift mass toward higher treatment levels, so backdoor adjustment is
  // exercised at scale.
  for (size_t t = 0; t < config.num_mutable; ++t) {
    ScmAttribute attr;
    attr.spec = {MutableName(t), AttrType::kCategorical, AttrRole::kMutable};
    attr.parents = {kGroupAttr};
    std::string confounder;
    if (config.num_immutable > 0) {
      confounder = ImmutableName(t % config.num_immutable);
      attr.parents.push_back(confounder);
    }
    attr.sampler = [levels = Levels(cats), cats, confounder](
                       const ScmRow& row, Rng& rng) {
      const size_t parent_level =
          confounder.empty() ? 0 : LevelOf(row, confounder);
      const double tilt =
          0.35 * (static_cast<double>(parent_level + 1) /
                  static_cast<double>(cats)) +
          (IsProtected(row) ? -0.1 : 0.1);
      std::vector<double> w(cats);
      for (size_t j = 0; j < cats; ++j) {
        w[j] = std::max(0.05, 1.0 + tilt * static_cast<double>(j));
      }
      return Value(levels[rng.NextCategorical(w)]);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(attr)));
  }

  // Outcome: planted positive effects per treatment level, attenuated for
  // the protected group and modulated by the first immutable attribute
  // (the heterogeneity driver), plus a small non-attenuated contribution
  // of that immutable attribute and Gaussian noise.
  {
    ScmAttribute outcome;
    outcome.spec = {kOutcomeAttr, AttrType::kNumeric, AttrRole::kOutcome};
    outcome.parents = {kGroupAttr};
    std::string het_driver;
    if (config.num_immutable > 0) {
      het_driver = ImmutableName(0);
      outcome.parents.push_back(het_driver);
    }
    for (size_t t = 0; t < config.num_mutable; ++t) {
      outcome.parents.push_back(MutableName(t));
    }
    const size_t num_mutable = config.num_mutable;
    const double attenuation = config.protected_attenuation;
    const double heterogeneity = config.effect_heterogeneity;
    const double effect_scale = config.effect_scale;
    const double noise = config.noise_stddev;
    const bool integer_outcome = config.integer_outcome;
    outcome.sampler = [cats, num_mutable, het_driver, attenuation,
                       heterogeneity, effect_scale, noise,
                       integer_outcome](const ScmRow& row, Rng& rng) {
      const double het_level =
          het_driver.empty()
              ? 0.5
              : static_cast<double>(LevelOf(row, het_driver)) /
                    static_cast<double>(cats - 1);
      const double het_mult = 1.0 + heterogeneity * (het_level - 0.5);
      const double group_mult = IsProtected(row) ? attenuation : 1.0;
      double effect = 0.0;
      for (size_t t = 0; t < num_mutable; ++t) {
        const double level =
            static_cast<double>(LevelOf(row, MutableName(t))) /
            static_cast<double>(cats - 1);
        const double attr_weight =
            0.5 + 0.5 * static_cast<double>(t + 1) /
                      static_cast<double>(num_mutable);
        effect += effect_scale * level * attr_weight;
      }
      const double base = 50.0 + 0.2 * effect_scale * het_level;
      const double y = base + group_mult * het_mult * effect +
                       rng.NextGaussian(0.0, noise);
      return Value(integer_outcome ? std::round(y) : y);
    };
    FAIRCAP_RETURN_NOT_OK(scm.Add(std::move(outcome)));
  }
  return scm;
}

Result<SyntheticData> MakeSynthetic(const SyntheticConfig& config) {
  FAIRCAP_ASSIGN_OR_RETURN(const Scm scm, MakeSyntheticScm(config));
  FAIRCAP_ASSIGN_OR_RETURN(DataFrame df,
                           scm.Generate(config.num_rows, config.seed));
  FAIRCAP_ASSIGN_OR_RETURN(CausalDag dag, scm.Dag());
  FAIRCAP_ASSIGN_OR_RETURN(const size_t group_attr,
                           df.schema().IndexOf(kGroupAttr));
  Pattern protected_pattern(
      {Predicate(group_attr, CompareOp::kEq, Value(kProtectedLevel))});
  SyntheticData data{std::move(df), std::move(dag),
                     std::move(protected_pattern)};
  return data;
}

}  // namespace faircap
