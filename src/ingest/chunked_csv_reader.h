// Streaming columnar CSV ingestion. The legacy loader (dataframe/csv.h)
// parses line by line into row-oriented Values and appends them one row at
// a time; every cell allocates a Value and every row re-validates types
// and invalidates the predicate index. This reader instead consumes the
// input in fixed-size chunks and parses fields straight into
// dictionary-encoded columnar storage (zero-copy string_view fields for
// the unquoted common case), assembles the DataFrame wholesale, and
// warm-starts its PredicateIndex with the per-category bitmap masks built
// from the still-hot column codes — so Apriori, the intervention lattice,
// and treatment-mask evaluation never pay a first-touch column scan.
//
// Semantics are identical to the legacy loader (a test pins bit-for-bit
// DataFrame equality, including dictionary code assignment order):
// RFC-4180 quoting, quoted fields may contain delimiters / CRLF / record
// separators, CRLF line endings, trailing empty columns, and the same
// null-token handling.

#ifndef FAIRCAP_INGEST_CHUNKED_CSV_READER_H_
#define FAIRCAP_INGEST_CHUNKED_CSV_READER_H_

#include <cstddef>
#include <string>

#include "dataframe/csv.h"
#include "dataframe/dataframe.h"
#include "dataframe/predicate_index.h"
#include "util/result.h"

namespace faircap {

class TaskScheduler;  // util/task_scheduler.h

/// Knobs for streaming ingestion.
struct IngestOptions {
  char delimiter = ',';
  /// Cells equal to this literal (after trimming) become nulls, in
  /// addition to empty cells (same contract as CsvOptions).
  std::string null_token = "NA";
  /// Bytes read from the source per chunk.
  size_t chunk_bytes = 1 << 20;
  /// Verify that the header matches the schema attribute names.
  bool check_header = true;
  /// Build per-category bitmap masks during ingest and install them into
  /// the DataFrame's PredicateIndex.
  bool warm_start_index = true;
  /// Columns with more categories than this get no warm masks (the
  /// index's own batch-build cap: rare categories of high-cardinality
  /// columns should stay on-demand).
  size_t warm_max_categories = PredicateIndex::kBatchBuildMaxCategories;
  /// Parse threads (1 = the sequential streaming reader; 0 = hardware
  /// concurrency). With more than one thread the input is split into
  /// record-aligned segments of ~chunk_bytes each, every segment is
  /// SWAR-parsed into segment-local columns on the work-stealing
  /// scheduler, and the segment columns concatenate in file order with
  /// their dictionaries merged in first-appearance order — bit-for-bit
  /// the sequential result (same codes, same values, same nulls).
  /// Parallel mode buffers the whole input in memory (the sequential
  /// reader streams in chunk_bytes windows).
  size_t num_threads = 1;
  /// Run the parallel parse on this scheduler instead of spawning one
  /// (borrowed; e.g. the pipeline's own Step-2 scheduler). Null with
  /// num_threads > 1 spawns a scheduler for the duration of the call.
  TaskScheduler* scheduler = nullptr;
};

/// Observability for benchmarks and the CLI `ingest` verb.
struct IngestStats {
  size_t rows = 0;
  size_t bytes = 0;
  size_t chunks = 0;           ///< read chunks (sequential) or parse segments
  size_t parse_threads = 1;    ///< scheduler workers used (1 = sequential)
  size_t warm_atom_masks = 0;  ///< category masks installed into the index
  double seconds = 0.0;        ///< wall time inside the ingest call
  double RowsPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(rows) / seconds : 0.0;
  }
};

/// Streams a CSV file into a columnar DataFrame whose header must match
/// `schema` (same names, same order) unless options.check_header is off.
Result<DataFrame> StreamCsv(const std::string& path, const Schema& schema,
                            const IngestOptions& options = {},
                            IngestStats* stats = nullptr);

/// Streams a CSV file, inferring the schema first (one extra pass, shared
/// with the legacy loader via InferCsvSchema so both agree on types).
Result<DataFrame> StreamCsvInferSchema(const std::string& path,
                                       const IngestOptions& options = {},
                                       IngestStats* stats = nullptr);

/// Streams CSV content held in memory (tests and small inputs).
Result<DataFrame> StreamCsvFromString(const std::string& content,
                                      const Schema& schema,
                                      const IngestOptions& options = {},
                                      IngestStats* stats = nullptr);

}  // namespace faircap

#endif  // FAIRCAP_INGEST_CHUNKED_CSV_READER_H_
