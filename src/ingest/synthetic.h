// SCM-driven synthetic workload generator. The two paper datasets top out
// at 38K rows; the scale experiments (ingest throughput, warm-index
// pipelines, future sharded mining) need paper-shaped data at 100K–5M
// rows. This generator builds a parameterized structural causal model with
// the same anatomy as the German / StackOverflow SCMs — a protected root,
// skewed immutable grouping attributes, confounded mutable treatment
// attributes, and a numeric outcome with planted positive effects — but
// every dimension is a knob: row count, attribute counts, cardinality,
// protected-group prevalence and skew, effect attenuation for the
// protected group, and cross-subgroup effect heterogeneity.

#ifndef FAIRCAP_INGEST_SYNTHETIC_H_
#define FAIRCAP_INGEST_SYNTHETIC_H_

#include "data/scm.h"
#include "mining/pattern.h"

namespace faircap {

/// Knobs for the generator. Defaults produce a small-schema dataset whose
/// pipeline cost is dominated by row count, which is what the scale
/// benchmarks want.
struct SyntheticConfig {
  size_t num_rows = 100000;
  uint64_t seed = 1;

  /// Immutable grouping attributes (besides the protected root "Group").
  size_t num_immutable = 3;
  /// Mutable treatment attributes.
  size_t num_mutable = 3;
  /// Categories per generated attribute (>= 2).
  size_t categories_per_attr = 3;

  /// P(Group = protected); the protected pattern is `Group = protected`.
  double protected_fraction = 0.2;
  /// How differently the immutable attributes distribute inside the
  /// protected group (0 = identical distributions, 1 = strongly skewed).
  double group_skew = 0.5;
  /// Multiplier on treatment effects for protected rows (1 = fair world).
  double protected_attenuation = 0.5;
  /// Cross-subgroup variation of treatment effects: each immutable
  /// attribute level scales the planted effects by up to this fraction
  /// (0 = homogeneous effects everywhere).
  double effect_heterogeneity = 0.5;

  /// Outcome scale: the strongest treatment level adds about this much.
  double effect_scale = 100.0;
  double noise_stddev = 25.0;
  /// Round the outcome to the nearest integer (a score/count-style
  /// outcome). Integer-valued outcome columns take the estimation
  /// engine's exact int64 accumulation path, so this knob is how benches
  /// and tests exercise that path at scale.
  bool integer_outcome = false;
};

/// A generated dataset with its ground truth.
struct SyntheticData {
  DataFrame df;
  CausalDag dag;
  Pattern protected_pattern;  ///< Group = protected
};

/// Builds the SCM (inspectable ground truth for tests).
Result<Scm> MakeSyntheticScm(const SyntheticConfig& config = {});

/// Generates the dataset, DAG, and protected pattern.
Result<SyntheticData> MakeSynthetic(const SyntheticConfig& config = {});

}  // namespace faircap

#endif  // FAIRCAP_INGEST_SYNTHETIC_H_
