#include "ingest/chunked_csv_reader.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "dataframe/predicate_index.h"
#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/string_util.h"
#include "util/task_scheduler.h"
#include "util/timer.h"

namespace faircap {

namespace {

constexpr size_t kNoRecord = static_cast<size_t>(-1);

// Index of the '\n' terminating the record that starts at `pos`, honoring
// RFC-4180 quoting (a newline inside quotes is field data, and escaped ""
// flips the quote state twice). kNoRecord when the record is incomplete.
size_t FindRecordEnd(std::string_view buf, size_t pos) {
  bool in_quotes = false;
  for (size_t i = pos; i < buf.size(); ++i) {
    const char c = buf[i];
    if (c == '"') {
      in_quotes = !in_quotes;
    } else if (c == '\n' && !in_quotes) {
      return i;
    }
  }
  return kNoRecord;
}

bool QuoteOpen(std::string_view record) {
  size_t quotes = 0;
  for (const char c : record) quotes += (c == '"');
  return (quotes % 2) != 0;
}

constexpr uint64_t kSwarOnes = 0x0101010101010101ULL;
constexpr uint64_t kSwarHighs = 0x8080808080808080ULL;

// SWAR byte search: the high bit of each byte of the result is set iff
// that byte of `v` equals the byte replicated through `pattern8`.
__attribute__((always_inline)) inline uint64_t MatchBytes(uint64_t v,
                                                          uint64_t pattern8) {
  const uint64_t x = v ^ pattern8;
  return (x - kSwarOnes) & ~x & kSwarHighs;
}

// isspace over the ASCII set Trim uses: ' ' plus \t \n \v \f \r.
__attribute__((always_inline)) inline bool IsSpaceAscii(unsigned char c) {
  return c == ' ' || (c >= '\t' && c <= '\r');
}

// Local always-inlined trim (the util::Trim call showed up in profiles at
// one call per cell). The `> ' '` pre-test exits in one compare for the
// overwhelmingly common untrimmed cell.
__attribute__((always_inline)) inline std::string_view TrimView(
    std::string_view s) {
  while (!s.empty()) {
    const unsigned char c = static_cast<unsigned char>(s.front());
    if (c > ' ' || !IsSpaceAscii(c)) break;
    s.remove_prefix(1);
  }
  while (!s.empty()) {
    const unsigned char c = static_cast<unsigned char>(s.back());
    if (c > ' ' || !IsSpaceAscii(c)) break;
    s.remove_suffix(1);
  }
  return s;
}

// Exact powers of ten: 10^k is representable exactly for k <= 22.
constexpr double kPow10[] = {1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,
                             1e8,  1e9,  1e10, 1e11, 1e12, 1e13, 1e14, 1e15,
                             1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22};

// strtod-compatible double parse; `s` must already be trimmed. Fast path:
// plain decimal with <= 15 significant digits and a decimal exponent
// within +-22 — there the classic mantissa-times-exact-power evaluation
// is a single IEEE operation, hence correctly rounded and bit-identical
// to strtod. Everything else (long mantissas, E notation, hex floats,
// inf/nan, leading '+') falls through to std::from_chars and then the
// shared ParseDouble, so the accepted language matches the legacy
// loader's.
bool FastParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  // The shared ParseDouble rejects cells that overflow its strtod buffer;
  // delegate so both loaders reject the same (absurdly long) inputs.
  if (s.size() >= 64) return ParseDouble(s, out);
  const char* p = s.data();
  const char* end = p + s.size();
  bool negative = false;
  if (*p == '-') {
    negative = true;
    ++p;
  }
  uint64_t mantissa = 0;
  int digits = 0;
  int frac_digits = 0;
  bool seen_point = false;
  bool any_digit = false;
  bool fast_ok = p != end;
  for (; p != end; ++p) {
    const char c = *p;
    if (c >= '0' && c <= '9') {
      any_digit = true;
      if (digits >= 15) {
        fast_ok = false;
        break;
      }
      // Skip redundant leading zeros ("0.25" keeps digits low).
      if (mantissa != 0 || c != '0' || seen_point) {
        mantissa = mantissa * 10 + static_cast<uint64_t>(c - '0');
        if (mantissa != 0) ++digits;
      }
      if (seen_point) ++frac_digits;
    } else if (c == '.' && !seen_point) {
      seen_point = true;
    } else {
      fast_ok = false;  // exponent notation or junk: slow path decides
      break;
    }
  }
  if (fast_ok && any_digit && frac_digits <= 22) {
    const double value =
        static_cast<double>(mantissa) / kPow10[frac_digits];
    *out = negative ? -value : value;
    return true;
  }
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  if (ec == std::errc() && ptr == s.data() + s.size()) return true;
  return ParseDouble(s, out);
}

// First-4 + last-4 bytes packed into one integer. Together with the
// length this is *exact* for strings of <= 8 bytes (the two overlapping
// windows cover every byte), and a strong prefilter beyond (real-world
// category names share prefixes — "level_3" vs "level_7" — so the tail
// bytes discriminate where a prefix key cannot).
__attribute__((always_inline)) inline uint64_t PackKey(std::string_view s) {
  const size_t len = s.size();
  if (len >= 4) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, s.data(), 4);
    std::memcpy(&hi, s.data() + len - 4, 4);
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }
  uint64_t v = 0;
  for (size_t i = 0; i < len; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(s[i])) << (8 * i);
  }
  return v;
}

// One column's storage under construction. The dictionary probe is the
// per-cell hot operation: for the small cardinalities mining actually
// uses, a linear scan over packed (length, prefix) keys beats any tree or
// hash (no allocation, no pointer chasing, one integer compare per
// entry). Columns that outgrow the linear window migrate to a
// transparent std::map.
struct ColumnBuilder {
  static constexpr size_t kLinearProbeMax = 32;

  explicit ColumnBuilder(AttrType type_in) : type(type_in) {}

  struct DictKey {
    uint64_t packed;
    uint32_t len;
  };
  static constexpr size_t kHashSlots = 128;  // power of two, > 2x entries

  AttrType type;
  std::vector<int32_t> codes;
  std::deque<std::string> dict_storage;  // deque: views stay stable
  std::vector<std::string_view> dict_views;  // by code
  std::vector<DictKey> packed_keys;          // by code
  /// Direct-mapped probe table: slot -> code + 1 (0 = empty). One
  /// multiplicative hash, one load, one key compare for the usual hit; a
  /// displaced entry (collision) falls back to the linear scan.
  std::array<int32_t, kHashSlots> hash_slots{};
  std::map<std::string, int32_t, std::less<>> big_index;
  bool use_big_index = false;
  std::vector<double> values;

  static __attribute__((always_inline)) inline size_t SlotOf(uint64_t packed,
                                                             uint32_t len) {
    return static_cast<size_t>(
               ((packed ^ len) * 0x2545F4914F6CDD1DULL) >> 57) &
           (kHashSlots - 1);
  }

  __attribute__((always_inline)) inline bool KeyMatches(
      size_t code, uint64_t packed, uint32_t len,
      std::string_view category) const {
    const DictKey& k = packed_keys[code];
    if (k.packed != packed || k.len != len) return false;
    // (packed, len) is exact up to 8 bytes; longer strings memcmp the
    // middle the two 4-byte windows did not cover.
    return len <= 8 || std::memcmp(dict_views[code].data() + 4,
                                   category.data() + 4, len - 8) == 0;
  }

  /// Probe-only lookup; -1 when `category` is not in the dictionary.
  /// Probed with the *raw* cell first (dictionary entries are trimmed, so
  /// a raw hit is always correct) — the common case then skips the trim
  /// and null-token work entirely.
  __attribute__((always_inline)) inline int32_t FindCategory(
      std::string_view category) const {
    if (!use_big_index) {
      const uint64_t key = PackKey(category);
      const uint32_t len = static_cast<uint32_t>(category.size());
      const int32_t slot = hash_slots[SlotOf(key, len)];
      if (slot != 0 &&
          KeyMatches(static_cast<size_t>(slot - 1), key, len, category)) {
        return slot - 1;
      }
      // Displaced by a hash collision (or absent): linear scan decides.
      const size_t n = packed_keys.size();
      for (size_t i = 0; i < n; ++i) {
        if (KeyMatches(i, key, len, category)) return static_cast<int32_t>(i);
      }
      return -1;
    }
    const auto it = big_index.find(category);
    return it != big_index.end() ? it->second : -1;
  }

  int32_t GetOrAddCategory(std::string_view category) {
    const int32_t found = FindCategory(category);
    if (found >= 0) return found;
    if (!use_big_index) {
      if (packed_keys.size() < kLinearProbeMax) return AddCategory(category);
      for (size_t i = 0; i < dict_views.size(); ++i) {
        big_index.emplace(std::string(dict_views[i]),
                          static_cast<int32_t>(i));
      }
      use_big_index = true;
    }
    const int32_t code = AddCategory(category);
    big_index.emplace(std::string(category), code);
    return code;
  }

  int32_t AddCategory(std::string_view category) {
    const int32_t code = static_cast<int32_t>(dict_views.size());
    dict_storage.emplace_back(category);
    dict_views.push_back(dict_storage.back());
    const DictKey key{PackKey(category),
                      static_cast<uint32_t>(category.size())};
    packed_keys.push_back(key);
    // First writer keeps the slot; displaced entries rely on the scan.
    int32_t& slot = hash_slots[SlotOf(key.packed, key.len)];
    if (slot == 0) slot = code + 1;
    return code;
  }

  std::vector<std::string> TakeDictionary() {
    return std::vector<std::string>(dict_storage.begin(), dict_storage.end());
  }

  void Reserve(size_t rows) {
    if (type == AttrType::kCategorical) {
      codes.reserve(rows);
    } else {
      values.reserve(rows);
    }
  }
};

// Builds the per-category equality masks from the (cache-hot) code
// vectors and installs them into the table's PredicateIndex. Shared by
// the sequential and parallel assembly paths.
void WarmStartIndex(const DataFrame& df, const IngestOptions& options,
                    IngestStats* stats) {
  for (size_t attr = 0; attr < df.num_columns(); ++attr) {
    const Column& col = df.column(attr);
    if (col.type() != AttrType::kCategorical) continue;
    const size_t num_categories = col.num_categories();
    if (num_categories == 0 || num_categories > options.warm_max_categories) {
      continue;
    }
    df.predicate_index().WarmStartCategoryMasks(
        df, attr, PredicateIndex::BuildCategoryMasks(df, attr));
    if (stats != nullptr) stats->warm_atom_masks += num_categories;
  }
}

// Chunk-driven CSV parser: feed it complete records, then Finish().
class StreamParser {
 public:
  /// `skip_header` pre-marks the header as consumed — the parallel path
  /// hands every segment after the first a headerless slice of the file.
  StreamParser(const Schema& schema, const IngestOptions& options,
               bool skip_header = false)
      : schema_(schema), options_(options), null_token_(options.null_token) {
    header_done_ = skip_header;
    builders_.reserve(schema.num_attributes());
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      builders_.emplace_back(schema.attribute(i).type);
    }
  }

  /// Splits `record` into fields and appends one row (or checks the
  /// header on first call). `record` must be a complete logical record
  /// with the terminating newline and CR already stripped.
  Status ProcessRecord(std::string_view record) {
    ++record_no_;
    if (!SplitRecordView(record)) {
      return Status::IOError("unterminated quote at record " +
                             std::to_string(record_no_));
    }
    if (!header_done_) {
      header_done_ = true;
      if (!options_.check_header) return Status::OK();
      if (fields_.size() != schema_.num_attributes()) {
        return Status::InvalidArgument(
            "CSV header arity does not match schema");
      }
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (Trim(fields_[i]) != schema_.attribute(i).name) {
          return Status::InvalidArgument(
              "CSV header column '" + std::string(fields_[i]) +
              "' does not match schema attribute '" +
              schema_.attribute(i).name + "'");
        }
      }
      return Status::OK();
    }
    if (fields_.size() != schema_.num_attributes()) {
      return Status::InvalidArgument(
          "record " + std::to_string(record_no_) + " has " +
          std::to_string(fields_.size()) + " cells, expected " +
          std::to_string(schema_.num_attributes()));
    }
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (!AppendCell(i, fields_[i])) return std::move(error_);
    }
    ++rows_;
    return Status::OK();
  }

  Status TakeError() { return std::move(error_); }

  /// Parses every complete row of `buf` and returns the offset of the
  /// first unconsumed byte (the start of an incomplete trailing record).
  ///
  /// One SWAR pass (8 bytes per step) finds delimiters, newlines, and
  /// quotes together; quote-free rows — the overwhelmingly common case —
  /// append cells straight into the column builders with zero copies and
  /// no per-record rescan. The scan is bounded by the buffer's last
  /// newline, so it never parses a partial row; a quote rolls the
  /// current row's cells back and re-drives that record through the
  /// escape-aware splitter (which also handles record separators inside
  /// quoted fields).
  Result<size_t> Consume(std::string_view buf) {
    const char* p = buf.data();
    const size_t size = buf.size();
    size_t pos = 0;
    while (!header_done_) {
      const size_t end = FindRecordEnd(buf, pos);
      if (end == kNoRecord) return pos;
      std::string_view record(p + pos, end - pos);
      if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
      FAIRCAP_RETURN_NOT_OK(ProcessRecord(record));
      pos = end + 1;
    }

    const void* last_nl = memrchr(p + pos, '\n', size - pos);
    if (last_nl == nullptr) return pos;
    const size_t scan_end =
        static_cast<size_t>(static_cast<const char*>(last_nl) - p) + 1;

    const size_t arity = schema_.num_attributes();
    const char delim = options_.delimiter;
    const uint64_t delim8 = kSwarOnes * static_cast<unsigned char>(delim);
    const uint64_t quote8 = kSwarOnes * static_cast<uint64_t>('"');
    const uint64_t nl8 = kSwarOnes * static_cast<uint64_t>('\n');

    size_t row_start = pos;  // current row's first byte
    size_t start = pos;      // current field's first byte
    size_t col = 0;
    size_t i = pos;

    enum class Act { kNext, kMoved, kNeedMore, kFail };

    // Handles the special byte at `idx`.
    auto handle = [&](size_t idx) -> Act {
      const char c = p[idx];
      if (c == delim) {
        if (col + 1 >= arity) {
          error_ = Status::InvalidArgument(
              "record " + std::to_string(record_no_ + 1) +
              " has more than the expected " + std::to_string(arity) +
              " cells");
          return Act::kFail;
        }
        if (!AppendCell(col, std::string_view(p + start, idx - start))) {
          return Act::kFail;
        }
        ++col;
        start = idx + 1;
        return Act::kNext;
      }
      if (c == '\n') {
        size_t cell_end = idx;
        if (cell_end > start && p[cell_end - 1] == '\r') --cell_end;
        if (col == 0 && cell_end == start) {
          // Blank line (or lone CR): skipped, like the legacy loader.
        } else {
          ++record_no_;
          if (col + 1 != arity) {
            error_ = Status::InvalidArgument(
                "record " + std::to_string(record_no_) + " has " +
                std::to_string(col + 1) + " cells, expected " +
                std::to_string(arity));
            return Act::kFail;
          }
          if (!AppendCell(col, std::string_view(p + start,
                                                cell_end - start))) {
            return Act::kFail;
          }
          ++rows_;
        }
        col = 0;
        start = idx + 1;
        row_start = idx + 1;
        return Act::kNext;
      }
      // Quote: undo this row's partial appends and re-drive the record
      // through the escape-aware splitter. Pre-quote cells re-parse to
      // identical values, so the dictionaries stay in first-appearance
      // order.
      for (size_t b = 0; b < col; ++b) {
        ColumnBuilder& builder = builders_[b];
        if (builder.type == AttrType::kCategorical) {
          builder.codes.pop_back();
        } else {
          builder.values.pop_back();
        }
      }
      col = 0;
      start = row_start;
      const size_t end = FindRecordEnd(buf, row_start);
      if (end == kNoRecord) {
        // Quoted record runs past the buffer; resume here next chunk.
        return Act::kNeedMore;
      }
      std::string_view record(p + row_start, end - row_start);
      if (!record.empty() && record.back() == '\r') record.remove_suffix(1);
      if (!record.empty()) {
        const Status st = ProcessRecord(record);
        if (!st.ok()) {
          error_ = st;
          return Act::kFail;
        }
      }
      i = end + 1;
      start = i;
      row_start = i;
      return Act::kMoved;  // scan position jumped; restart the word loop
    };

    while (i < scan_end) {
      if (i + 8 <= scan_end) {
        uint64_t v;
        std::memcpy(&v, p + i, 8);
        uint64_t hits = MatchBytes(v, delim8) | MatchBytes(v, quote8) |
                        MatchBytes(v, nl8);
        bool advance = true;
        while (hits != 0) {
          const size_t idx =
              i + (static_cast<size_t>(__builtin_ctzll(hits)) >> 3);
          hits &= hits - 1;
          const Act act = handle(idx);
          if (act == Act::kNext) continue;
          if (act == Act::kFail) return TakeError();
          if (act == Act::kNeedMore) return row_start;
          advance = false;  // kMoved: i was repositioned past the record
          break;
        }
        if (advance) i += 8;
      } else {
        const char c = p[i];
        if (c == delim || c == '\n' || c == '"') {
          const Act act = handle(i);
          if (act == Act::kFail) return TakeError();
          if (act == Act::kNeedMore) return row_start;
          if (act == Act::kMoved) continue;  // i repositioned
        }
        ++i;
      }
    }
    return scan_end;
  }

  /// Pre-sizes the column vectors once the average record size is known.
  void ReserveRows(size_t rows) {
    for (ColumnBuilder& b : builders_) b.Reserve(rows);
  }

  size_t rows() const { return rows_; }
  bool header_done() const { return header_done_; }

  /// Segment-local column storage (the parallel path's merge input).
  std::vector<ColumnBuilder>& builders() { return builders_; }

  /// Drives a complete record-aligned segment through the parser: the
  /// SWAR scan over every newline-terminated record, then the tail
  /// record (last segment of a file without a trailing newline).
  Status ParseSegment(std::string_view segment) {
    FAIRCAP_ASSIGN_OR_RETURN(const size_t consumed, Consume(segment));
    std::string_view record = segment.substr(consumed);
    if (record.empty()) return Status::OK();
    // Same dangling-record handling as the streaming tail: the CR guard
    // needs the quote-parity check because the record may be an
    // unterminated quote (which ProcessRecord rejects).
    if (record.back() == '\r' && QuoteOpen(record)) {
      // keep the CR: it is quoted field data of a malformed record
    } else if (record.back() == '\r') {
      record.remove_suffix(1);
    }
    if (record.empty() && header_done_) return Status::OK();
    return ProcessRecord(record);
  }

  /// Assembles the DataFrame and (optionally) warm-starts its index.
  Result<DataFrame> Finish(IngestStats* stats) {
    if (!header_done_) {
      return Status::IOError("CSV input is empty (no header)");
    }
    std::vector<Column> columns;
    columns.reserve(builders_.size());
    for (ColumnBuilder& b : builders_) {
      if (b.type == AttrType::kCategorical) {
        // The builder minted every code from its own dictionary, so the
        // per-code range validation is skippable.
        FAIRCAP_ASSIGN_OR_RETURN(
            Column col,
            Column::FromCodes(std::move(b.codes), b.TakeDictionary(),
                              /*trusted=*/true));
        columns.push_back(std::move(col));
      } else {
        columns.push_back(Column::FromNumeric(std::move(b.values)));
      }
    }
    FAIRCAP_ASSIGN_OR_RETURN(DataFrame df, DataFrame::FromColumns(
                                               schema_, std::move(columns)));
    if (options_.warm_start_index) WarmStartIndex(df, options_, stats);
    return df;
  }

 private:
  /// Mirrors csv.cc's SplitRecord, but fields without quoting are
  /// zero-copy views into `record`; only fields containing quotes are
  /// unescaped, into per-field scratch slots (a deque, so views into
  /// earlier slots stay valid while later fields are parsed).
  bool SplitRecordView(std::string_view record) {
    fields_.clear();
    size_t scratch_used = 0;
    size_t field_start = 0;
    bool in_quotes = false;
    std::string* current = nullptr;  // non-null once the field hit a quote
    auto emit = [&](size_t end) {
      if (current != nullptr) {
        fields_.push_back(*current);
        ++scratch_used;
        current = nullptr;
      } else {
        fields_.push_back(record.substr(field_start, end - field_start));
      }
    };
    for (size_t i = 0; i < record.size(); ++i) {
      const char c = record[i];
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < record.size() && record[i + 1] == '"') {
            current->push_back('"');
            ++i;
          } else {
            in_quotes = false;
          }
        } else {
          current->push_back(c);
        }
      } else if (c == '"') {
        if (current == nullptr) {
          if (scratch_.size() <= scratch_used) scratch_.emplace_back();
          current = &scratch_[scratch_used];
          current->assign(record.data() + field_start, i - field_start);
        }
        in_quotes = true;
      } else if (c == options_.delimiter) {
        emit(i);
        field_start = i + 1;
      } else if (current != nullptr) {
        current->push_back(c);
      }
    }
    if (in_quotes) return false;
    emit(record.size());
    return true;
  }

  /// Parses one cell into its column. Returns false with error_ set on a
  /// malformed numeric cell (bool keeps Status construction off the hot
  /// path).
  __attribute__((always_inline)) inline bool AppendCell(
      size_t col, std::string_view cell) {
    ColumnBuilder& b = builders_[col];
    if (b.type == AttrType::kCategorical) {
      // Raw-cell probe first: dictionary entries are trimmed non-null
      // values, so a hit needs no trim or null-token check.
      const int32_t code = b.FindCategory(cell);
      if (code >= 0) {
        b.codes.push_back(code);
        return true;
      }
      const std::string_view trimmed = TrimView(cell);
      if (trimmed.empty() || trimmed == null_token_) {
        b.codes.push_back(Column::kNullCode);
      } else {
        b.codes.push_back(b.GetOrAddCategory(trimmed));
      }
      return true;
    }
    const std::string_view trimmed = TrimView(cell);
    if (trimmed.empty() || trimmed == null_token_) {
      b.values.push_back(std::nan(""));
      return true;
    }
    double v = 0.0;
    if (!FastParseDouble(trimmed, &v)) {
      error_ = Status::InvalidArgument(
          "cell '" + std::string(cell) + "' at record " +
          std::to_string(record_no_) + " is not numeric (attribute '" +
          schema_.attribute(col).name + "')");
      return false;
    }
    b.values.push_back(v);
    return true;
  }

  const Schema& schema_;
  const IngestOptions& options_;
  const std::string_view null_token_;  ///< hot-path view of the option
  std::vector<ColumnBuilder> builders_;
  std::vector<std::string_view> fields_;
  std::deque<std::string> scratch_;
  Status error_;
  size_t record_no_ = 0;
  size_t rows_ = 0;
  bool header_done_ = false;
};

/// Flushes one completed ingest's totals into the global registry (the
/// run report's "ingest" section). Called once per ingest, off any hot
/// loop.
void PublishIngestStats(const IngestStats& local, size_t segments) {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  r.GetCounter("ingest.runs").Increment();
  r.GetCounter("ingest.rows").Add(local.rows);
  r.GetCounter("ingest.bytes").Add(local.bytes);
  r.GetCounter("ingest.chunks").Add(local.chunks);
  r.GetCounter("ingest.segments").Add(segments);
}

/// `size_hint` (total input bytes, 0 = unknown) drives a one-shot reserve
/// of the column vectors once the average record size is known.
Result<DataFrame> StreamFrom(std::istream& in, const Schema& schema,
                             const IngestOptions& options,
                             IngestStats* stats, size_t size_hint) {
  const obs::TraceSpan span("ingest_stream");
  StopWatch watch;
  IngestStats local;
  StreamParser parser(schema, options);
  const size_t chunk_bytes = std::max<size_t>(options.chunk_bytes, 1);
  // Reusable read buffer: each chunk is read after the carried-over
  // partial record; the (small) unconsumed tail is memmoved to the front.
  // No per-chunk string append, no multi-megabyte copies.
  std::vector<char> buf(2 * chunk_bytes);
  size_t carry = 0;

  while (in) {
    if (buf.size() < carry + chunk_bytes) {
      buf.resize(carry + chunk_bytes);  // a quoted record spans chunks
    }
    in.read(buf.data() + carry, static_cast<std::streamsize>(chunk_bytes));
    const size_t got = static_cast<size_t>(in.gcount());
    if (got == 0) break;
    local.bytes += got;
    ++local.chunks;
    const size_t total = carry + got;
    FAIRCAP_ASSIGN_OR_RETURN(
        const size_t consumed,
        parser.Consume(std::string_view(buf.data(), total)));
    carry = total - consumed;
    if (consumed != 0 && carry != 0) {
      std::memmove(buf.data(), buf.data() + consumed, carry);
    }
    if (size_hint != 0 && parser.rows() > 0) {
      // One-shot reserve from the observed bytes-per-row, with 5% slack
      // so a slightly long sample never forces a full-table realloc.
      const size_t done = local.bytes - carry;
      if (done > 0) {
        parser.ReserveRows(1 + parser.rows() * size_hint / done * 21 / 20);
      }
      size_hint = 0;
    }
  }
  if (carry != 0) {
    // Final record without a trailing newline (or a dangling quote, which
    // ProcessRecord rejects). The CR guard needs the quote-parity check
    // here: the record may be unterminated.
    std::string_view record(buf.data(), carry);
    if (!record.empty() && record.back() == '\r' && QuoteOpen(record)) {
      // keep the CR: it is quoted field data of a malformed record
    } else if (!record.empty() && record.back() == '\r') {
      record.remove_suffix(1);
    }
    if (!(record.empty() && parser.header_done())) {
      FAIRCAP_RETURN_NOT_OK(parser.ProcessRecord(record));
    }
  }

  local.rows = parser.rows();
  FAIRCAP_ASSIGN_OR_RETURN(DataFrame df, parser.Finish(&local));
  local.seconds = watch.ElapsedSeconds();
  PublishIngestStats(local, /*segments=*/0);
  if (stats != nullptr) *stats = local;
  return df;
}

// ---------------------------------------------------------------------------
// Parallel (segmented) ingestion: record-aligned split, per-segment SWAR
// parse into segment-local columns, ordered concat with dictionary merge.

/// Record-aligned segment start offsets over `content` (offset 0 always
/// included; segment i spans [starts[i], starts[i+1]), the last one runs
/// to the end). Boundaries sit immediately past a record-terminating
/// '\n' — one preceded by an even number of quotes since the start of
/// the input — so a newline inside a quoted field never splits a record.
/// Segments target `target_bytes` each, capped at `max_segments`.
std::vector<size_t> SegmentStarts(std::string_view content,
                                  size_t target_bytes, size_t max_segments) {
  std::vector<size_t> starts{0};
  if (max_segments <= 1 || content.size() <= target_bytes) return starts;
  const size_t segments = std::min(
      max_segments, (content.size() + target_bytes - 1) / target_bytes);
  const uint64_t quote8 = kSwarOnes * static_cast<uint64_t>('"');
  const char* p = content.data();
  bool parity = false;  // quote parity of [0, cursor)
  size_t cursor = 0;
  for (size_t b = 1; b < segments; ++b) {
    const size_t naive = content.size() * b / segments;
    if (naive <= cursor) continue;
    // Advance the running parity to the naive split point (SWAR quote
    // count, 8 bytes per step — a popcount pass, far cheaper than the
    // parse it unblocks).
    size_t quotes = 0;
    size_t i = cursor;
    for (; i + 8 <= naive; i += 8) {
      uint64_t v;
      std::memcpy(&v, p + i, 8);
      quotes +=
          static_cast<size_t>(__builtin_popcountll(MatchBytes(v, quote8)));
    }
    for (; i < naive; ++i) quotes += (p[i] == '"');
    if (quotes % 2 != 0) parity = !parity;
    cursor = naive;
    // First record-terminating newline at or after the split point.
    size_t j = cursor;
    bool par = parity;
    for (; j < content.size(); ++j) {
      const char c = p[j];
      if (c == '"') {
        par = !par;
      } else if (c == '\n' && !par) {
        break;
      }
    }
    if (j >= content.size()) break;  // no further record boundary
    parity = par;
    cursor = j + 1;
    if (cursor >= content.size()) break;
    starts.push_back(cursor);
  }
  return starts;
}

/// One parallel ingest pass over in-memory content. Bit-for-bit the
/// sequential result: segments are record-aligned, segment columns
/// concatenate in file order, and dictionaries merge in first-appearance
/// order — which IS the sequential code-assignment order, because every
/// row of segment s precedes every row of segment s+1.
Result<DataFrame> ParseSegmented(std::string_view content,
                                 const Schema& schema,
                                 const IngestOptions& options,
                                 IngestStats* stats,
                                 TaskScheduler* scheduler) {
  const obs::TraceSpan span("ingest_segmented");
  StopWatch watch;
  IngestStats local;
  const size_t target = std::max<size_t>(options.chunk_bytes, 1);
  const size_t fanout =
      scheduler != nullptr ? scheduler->num_threads() * 4 : 1;
  const std::vector<size_t> starts = SegmentStarts(content, target, fanout);
  const size_t num_segments = starts.size();

  std::vector<std::unique_ptr<StreamParser>> parsers;
  parsers.reserve(num_segments);
  for (size_t s = 0; s < num_segments; ++s) {
    parsers.push_back(std::make_unique<StreamParser>(
        schema, options, /*skip_header=*/s != 0));
  }
  std::vector<Status> segment_status(num_segments);
  TaskGroup tasks(scheduler);
  tasks.ParallelFor(num_segments, [&](size_t s) {
    const obs::TraceSpan segment_span("segment", static_cast<int64_t>(s));
    const size_t end = s + 1 < num_segments ? starts[s + 1] : content.size();
    segment_status[s] =
        parsers[s]->ParseSegment(content.substr(starts[s], end - starts[s]));
  });
  for (const Status& st : segment_status) {
    FAIRCAP_RETURN_NOT_OK(st);
  }
  if (!parsers[0]->header_done()) {
    return Status::IOError("CSV input is empty (no header)");
  }

  size_t total_rows = 0;
  for (const auto& parser : parsers) total_rows += parser->rows();
  std::vector<Column> columns;
  columns.reserve(schema.num_attributes());
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (schema.attribute(c).type == AttrType::kCategorical) {
      std::vector<std::string> dict;
      // Transparent comparator: segment dictionary views probe without a
      // per-lookup string copy. Keyed by owned strings so `dict`'s
      // reallocation cannot invalidate anything.
      std::map<std::string, int32_t, std::less<>> index;
      std::vector<int32_t> codes;
      codes.reserve(total_rows);
      for (const auto& parser : parsers) {
        ColumnBuilder& b = parser->builders()[c];
        std::vector<int32_t> remap(b.dict_views.size());
        for (size_t k = 0; k < b.dict_views.size(); ++k) {
          const std::string_view name = b.dict_views[k];
          const auto it = index.find(name);
          if (it != index.end()) {
            remap[k] = it->second;
          } else {
            const int32_t code = static_cast<int32_t>(dict.size());
            dict.emplace_back(name);
            index.emplace(dict.back(), code);
            remap[k] = code;
          }
        }
        for (const int32_t code : b.codes) {
          codes.push_back(code < 0 ? Column::kNullCode
                                   : remap[static_cast<size_t>(code)]);
        }
      }
      FAIRCAP_ASSIGN_OR_RETURN(
          Column col, Column::FromCodes(std::move(codes), std::move(dict),
                                        /*trusted=*/true));
      columns.push_back(std::move(col));
    } else {
      std::vector<double> values;
      values.reserve(total_rows);
      for (const auto& parser : parsers) {
        ColumnBuilder& b = parser->builders()[c];
        values.insert(values.end(), b.values.begin(), b.values.end());
      }
      columns.push_back(Column::FromNumeric(std::move(values)));
    }
  }
  FAIRCAP_ASSIGN_OR_RETURN(DataFrame df,
                           DataFrame::FromColumns(schema, std::move(columns)));
  if (options.warm_start_index) WarmStartIndex(df, options, &local);

  local.rows = total_rows;
  local.bytes = content.size();
  local.chunks = num_segments;
  local.parse_threads = scheduler != nullptr ? scheduler->num_threads() : 1;
  local.seconds = watch.ElapsedSeconds();
  PublishIngestStats(local, num_segments);
  if (stats != nullptr) *stats = local;
  return df;
}

/// Resolved parse-thread count for the options (1 = sequential reader).
size_t ResolveParseThreads(const IngestOptions& options) {
  if (options.scheduler != nullptr) {
    return std::max<size_t>(1, options.scheduler->num_threads());
  }
  if (options.num_threads != 0) return options.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Parallel entry point over in-memory content; on a parse error the
/// content is re-driven through the sequential reader so error messages
/// (record numbers) are exactly the legacy ones.
Result<DataFrame> IngestSegmented(std::string_view content,
                                  const Schema& schema,
                                  const IngestOptions& options,
                                  IngestStats* stats, size_t workers) {
  std::unique_ptr<TaskScheduler> owned;
  TaskScheduler* scheduler = options.scheduler;
  if (scheduler == nullptr && workers > 1) {
    owned = std::make_unique<TaskScheduler>(workers);
    scheduler = owned.get();
  }
  Result<DataFrame> df =
      ParseSegmented(content, schema, options, stats, scheduler);
  if (df.ok()) return df;
  std::istringstream in{std::string(content)};
  return StreamFrom(in, schema, options, stats, content.size());
}

}  // namespace

Result<DataFrame> StreamCsv(const std::string& path, const Schema& schema,
                            const IngestOptions& options,
                            IngestStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  const size_t workers = ResolveParseThreads(options);
  if (workers > 1 && size > 0) {
    // Parallel mode buffers the file (the segment parsers need random
    // access); the sequential reader below streams in bounded windows.
    std::string content(static_cast<size_t>(size), '\0');
    in.read(content.data(), size);
    content.resize(static_cast<size_t>(in.gcount()));
    return IngestSegmented(content, schema, options, stats, workers);
  }
  return StreamFrom(in, schema, options, stats,
                    size > 0 ? static_cast<size_t>(size) : 0);
}

Result<DataFrame> StreamCsvInferSchema(const std::string& path,
                                       const IngestOptions& options,
                                       IngestStats* stats) {
  CsvOptions csv;
  csv.delimiter = options.delimiter;
  csv.null_token = options.null_token;
  FAIRCAP_ASSIGN_OR_RETURN(const Schema schema, InferCsvSchema(path, csv));
  return StreamCsv(path, schema, options, stats);
}

Result<DataFrame> StreamCsvFromString(const std::string& content,
                                      const Schema& schema,
                                      const IngestOptions& options,
                                      IngestStats* stats) {
  const size_t workers = ResolveParseThreads(options);
  if (workers > 1) {
    return IngestSegmented(content, schema, options, stats, workers);
  }
  std::istringstream in(content);
  return StreamFrom(in, schema, options, stats, content.size());
}

}  // namespace faircap
