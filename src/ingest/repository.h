// DatasetRepository: one front door for every dataset the system can run
// on. The paper generators (german, stackoverflow), the scalable synthetic
// workload, and file-backed CSV+DAG datasets all register here as named
// factories, so tools, benches, and tests request data by name + knobs
// instead of hard-wiring a loader. File-backed datasets come in through
// the streaming columnar ingest path (chunked_csv_reader.h), so their
// PredicateIndex starts warm.

#ifndef FAIRCAP_INGEST_REPOSITORY_H_
#define FAIRCAP_INGEST_REPOSITORY_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "causal/dag.h"
#include "dataframe/dataframe.h"
#include "ingest/chunked_csv_reader.h"
#include "mining/pattern.h"
#include "util/result.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace faircap {

/// A loaded dataset with its causal ground truth.
struct Dataset {
  std::string name;
  DataFrame df;
  CausalDag dag;
  Pattern protected_pattern;
};

/// A by-name load request. `rows`/`seed` = 0 means the dataset default;
/// everything else rides in `params` (generator-specific knobs, file
/// paths, role assignments), parsed by the factory.
struct DatasetRequest {
  std::string name;
  size_t rows = 0;
  uint64_t seed = 0;
  std::map<std::string, std::string> params;

  /// params[key] as a double, or `fallback` when absent. Malformed values
  /// error.
  Result<double> ParamDouble(const std::string& key, double fallback) const;
  /// params[key] as a string, or `fallback` when absent.
  std::string ParamString(const std::string& key,
                          const std::string& fallback = "") const;
};

/// Named dataset registry.
class DatasetRepository {
 public:
  using Factory = std::function<Result<Dataset>(const DatasetRequest&)>;

  /// Starts with the built-ins registered: "german", "stackoverflow",
  /// "synthetic", and "file" (CSV + DAG via params: path, dag, outcome,
  /// mutable, protected).
  DatasetRepository();

  /// Registers a factory; fails on duplicate names.
  Status Register(const std::string& name, std::string description,
                  Factory factory);

  bool Contains(const std::string& name) const;

  Result<Dataset> Load(const DatasetRequest& request) const;
  Result<Dataset> Load(const std::string& name) const;

  /// (name, description) pairs, sorted by name.
  std::vector<std::pair<std::string, std::string>> List() const;

  /// Process-wide instance (built-ins registered once).
  static DatasetRepository& Global();

  /// Observability for a delta append (CLI `append` verb, bench_append).
  struct AppendStats {
    size_t rows = 0;     ///< delta rows appended
    size_t bytes = 0;    ///< delta CSV bytes parsed
    double seconds = 0.0;
  };

  /// Parses a delta CSV against the dataset's RESIDENT schema (same
  /// columns, same order; the streaming SWAR reader does the parsing)
  /// and appends its rows to `dataset->df` in place: dictionary-encoded
  /// columns extend with new categories interned in first-appearance
  /// order — exactly the codes a cold parse of the concatenated file
  /// would assign — the dataset's generation counter bumps, and the
  /// shared PredicateIndex extends its masks lazily by whole words on
  /// next touch instead of rebuilding.
  static Status Append(Dataset* dataset, const std::string& csv_path,
                       const IngestOptions& options = {},
                       AppendStats* stats = nullptr);

  /// Same, from CSV content held in memory (tests and small deltas).
  static Status AppendFromString(Dataset* dataset, const std::string& content,
                                 const IngestOptions& options = {},
                                 AppendStats* stats = nullptr);

  /// Parses a delta CSV against a resident schema WITHOUT appending —
  /// the IncrementalSession path, which must append through the
  /// session's own Append so every cached layer refreshes.
  static Result<DataFrame> ParseDelta(const Schema& schema,
                                      const std::string& csv_path,
                                      const IngestOptions& options = {},
                                      AppendStats* stats = nullptr);
  static Result<DataFrame> ParseDeltaFromString(
      const Schema& schema, const std::string& content,
      const IngestOptions& options = {}, AppendStats* stats = nullptr);

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

/// Spec for a file-backed dataset: CSV ingested through the streaming
/// reader (schema inferred), DAG from the dag_io edge-list dialect, roles
/// assigned from the outcome / mutable names, protected group from
/// attr=value equality clauses.
struct CsvDatasetSpec {
  std::string csv_path;
  std::string dag_path;
  std::string outcome;
  std::vector<std::string> mutable_attrs;
  /// Conjunction of attr=value equalities defining the protected group.
  std::vector<std::pair<std::string, std::string>> protected_clauses;
  IngestOptions ingest;
};

/// Loads a file-backed dataset through the streaming ingest path.
Result<Dataset> LoadCsvDataset(const CsvDatasetSpec& spec);

}  // namespace faircap

#endif  // FAIRCAP_INGEST_REPOSITORY_H_
