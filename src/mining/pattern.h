// Pattern: a conjunction of predicates (Definition 4.1). Grouping patterns
// range over immutable attributes; intervention patterns over mutable
// attributes (Definition 4.3). Patterns are kept in canonical (sorted)
// form so structurally equal patterns compare equal.

#ifndef FAIRCAP_MINING_PATTERN_H_
#define FAIRCAP_MINING_PATTERN_H_

#include <memory>
#include <string>
#include <vector>

#include "mining/predicate.h"

namespace faircap {

/// Conjunction of predicates over a DataFrame's attributes.
class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(std::vector<Predicate> predicates);

  /// The always-true pattern (covers every row).
  static Pattern Empty() { return Pattern(); }

  bool empty() const { return predicates_.empty(); }
  size_t size() const { return predicates_.size(); }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  /// Returns a new pattern with `p` appended (canonicalized).
  Pattern With(Predicate p) const;

  /// Conjunction of two patterns (duplicates removed).
  Pattern And(const Pattern& other) const;

  /// True if some predicate constrains attribute `attr`.
  bool ConstrainsAttr(size_t attr) const;

  /// Attribute indices referenced by this pattern (sorted, deduplicated).
  std::vector<size_t> Attributes() const;

  /// Validates every predicate against `df`.
  Status Validate(const DataFrame& df) const;

  /// Rows of `df` covered by the pattern (Definition 4.2). The empty
  /// pattern covers all rows. Served from the DataFrame's shared
  /// PredicateIndex: atom masks are memoized columnar scans, the
  /// conjunction is word-level AND composition, and the composed mask is
  /// memoized too.
  Bitmap Evaluate(const DataFrame& df) const;

  /// Like Evaluate but returns the cached mask itself; the reference is
  /// valid until the DataFrame is mutated (or, under a PredicateIndex
  /// memory budget, until the mask is evicted).
  const Bitmap& EvaluateCached(const DataFrame& df) const;

  /// Shared-ownership variant of EvaluateCached: the mask stays alive for
  /// the holder even if a budget-capped PredicateIndex evicts it. Use when
  /// the mask is held across further pattern evaluations (e.g. the CATE
  /// estimators). Row mutation still invalidates single-predicate (and
  /// empty) patterns' masks — see ConjunctionMaskShared.
  std::shared_ptr<const Bitmap> EvaluateShared(const DataFrame& df) const;

  /// Uncached per-row reference scan — the semantics Evaluate must
  /// reproduce bit for bit (used by property tests and benchmarks).
  Bitmap EvaluateNaive(const DataFrame& df) const;

  /// True if row `row` satisfies every predicate.
  bool Matches(const DataFrame& df, size_t row) const;

  /// Renders e.g. "Age = 25-34 AND Dependents = yes" ("TRUE" when empty).
  std::string ToString(const Schema& schema) const;

  /// Canonical key usable in hash maps (attribute indices + op + value).
  std::string Key() const;

  bool operator==(const Pattern& other) const {
    return predicates_ == other.predicates_;
  }

 private:
  void Canonicalize();

  std::vector<Predicate> predicates_;
};

}  // namespace faircap

#endif  // FAIRCAP_MINING_PATTERN_H_
