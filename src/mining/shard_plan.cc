#include "mining/shard_plan.h"

#include <algorithm>

#include "dataframe/dataframe.h"
#include "util/task_scheduler.h"

namespace faircap {

ShardPlan ShardPlan::Create(size_t num_rows, size_t num_shards) {
  ShardPlan plan;
  plan.num_rows_ = num_rows;
  const size_t num_words = (num_rows + 63) / 64;
  const size_t shards =
      std::max<size_t>(1, std::min(num_shards, std::max<size_t>(1, num_words)));
  plan.shards_.reserve(shards);
  const size_t base = num_words / shards;
  const size_t extra = num_words % shards;  // first `extra` shards get +1 word
  size_t word = 0;
  for (size_t s = 0; s < shards; ++s) {
    Shard shard;
    shard.word_begin = word;
    shard.word_end = word + base + (s < extra ? 1 : 0);
    shard.row_begin = shard.word_begin * 64;
    shard.row_end = std::min(num_rows, shard.word_end * 64);
    word = shard.word_end;
    plan.shards_.push_back(shard);
  }
  return plan;
}

std::vector<Bitmap> BuildCategoryMasksSharded(const DataFrame& df, size_t attr,
                                              const ShardPlan& plan,
                                              TaskScheduler* scheduler) {
  const Column& col = df.column(attr);
  const size_t num_categories = col.num_categories();
  std::vector<Bitmap> masks(num_categories);
  for (Bitmap& m : masks) m = Bitmap(df.num_rows());
  if (num_categories == 0 || df.num_rows() == 0) return masks;

  // One task per shard: scan the shard's rows into shard-local word
  // buffers, then OR them into the shared masks. The shards own disjoint
  // word ranges, so the concurrent merges write different words of each
  // mask — no synchronization needed beyond the pool's completion barrier.
  auto build_shard = [&](size_t s) {
    const ShardPlan::Shard& shard = plan.shard(s);
    if (shard.empty()) return;
    const size_t words = shard.word_end - shard.word_begin;
    std::vector<std::vector<uint64_t>> local(
        num_categories, std::vector<uint64_t>(words, 0));
    for (size_t r = shard.row_begin; r < shard.row_end; ++r) {
      const int32_t c = col.code(r);
      if (c == Column::kNullCode) continue;
      local[static_cast<size_t>(c)][(r / 64) - shard.word_begin] |=
          1ULL << (r % 64);
    }
    for (size_t c = 0; c < num_categories; ++c) {
      masks[c].OrWordsAt(shard.word_begin, local[c].data(), words);
    }
  };

  if (scheduler == nullptr || plan.num_shards() <= 1) {
    for (size_t s = 0; s < plan.num_shards(); ++s) build_shard(s);
  } else {
    scheduler->ParallelFor(plan.num_shards(), build_shard);
  }
  return masks;
}

}  // namespace faircap
