// ShardPlan: word-aligned partition of a row universe for sharded Step-2
// mining. One hot grouping pattern serializes treatment mining on a single
// core when parallelism only spans *patterns*; the shard plan instead
// splits the rows into contiguous ranges whose boundaries sit at multiples
// of 64, so every shard owns a whole `uint64_t` word range of every Bitmap
// over the same universe. That alignment is the invariant the fan-out
// leans on:
//
//   * per-shard scans write disjoint words of a shared bitmap, so shard
//     results merge by word-level OR (and concurrent writes touch
//     different vector elements — race-free without locks);
//   * per-shard sufficient-statistics accumulation walks only its word
//     range, and partials merge by addition in ascending shard order, so
//     a run is deterministic for a fixed shard count regardless of how
//     many threads execute it.

#ifndef FAIRCAP_MINING_SHARD_PLAN_H_
#define FAIRCAP_MINING_SHARD_PLAN_H_

#include <cstddef>
#include <vector>

#include "dataframe/bitmap.h"

namespace faircap {

class DataFrame;
class TaskScheduler;  // util/task_scheduler.h

/// Immutable word-aligned shard layout over [0, num_rows).
class ShardPlan {
 public:
  /// One contiguous shard. Rows [row_begin, row_end) are exactly the rows
  /// of bitmap words [word_begin, word_end); only the last shard's
  /// row_end may be unaligned (the tail of the universe).
  struct Shard {
    size_t word_begin = 0;
    size_t word_end = 0;
    size_t row_begin = 0;
    size_t row_end = 0;

    size_t num_rows() const { return row_end - row_begin; }
    bool empty() const { return row_begin >= row_end; }
  };

  /// Splits `num_rows` into at most `num_shards` contiguous word-aligned
  /// shards of near-equal word count. `num_shards` is clamped to
  /// [1, number of words], so no shard is ever empty (except the single
  /// shard of an empty universe).
  static ShardPlan Create(size_t num_rows, size_t num_shards);

  size_t num_rows() const { return num_rows_; }
  size_t num_shards() const { return shards_.size(); }
  const Shard& shard(size_t i) const { return shards_[i]; }
  const std::vector<Shard>& shards() const { return shards_; }

 private:
  ShardPlan() = default;

  size_t num_rows_ = 0;
  std::vector<Shard> shards_;
};

/// Sharded sibling of PredicateIndex::BuildCategoryMasks: materializes
/// every category's equality mask of categorical `attr` by fanning the
/// columnar scan across `scheduler`, one task per shard. Each task scans
/// only its shard's rows into a shard-local word buffer and merges it
/// into the shared masks by word-level OR over its own (disjoint) word
/// range, so the result is bit-identical to the single-threaded build.
/// With a null scheduler (or a single shard) the scan runs inline.
/// Reentrant: legal from inside another task of the same scheduler.
std::vector<Bitmap> BuildCategoryMasksSharded(const DataFrame& df,
                                              size_t attr,
                                              const ShardPlan& plan,
                                              TaskScheduler* scheduler);

}  // namespace faircap

#endif  // FAIRCAP_MINING_SHARD_PLAN_H_
