// Apriori frequent-pattern mining (Agrawal & Srikant 1994), used by FairCap
// step 1 to mine grouping patterns over the immutable attributes
// (Section 5.1). Items are (attribute = category) predicates; a pattern
// constrains each attribute at most once.

#ifndef FAIRCAP_MINING_APRIORI_H_
#define FAIRCAP_MINING_APRIORI_H_

#include <vector>

#include "mining/pattern.h"
#include "util/result.h"

namespace faircap {

/// A mined pattern together with its coverage.
struct FrequentPattern {
  Pattern pattern;
  Bitmap coverage;
  size_t support = 0;  ///< == coverage.Count()
};

/// Tuning knobs for Apriori.
struct AprioriOptions {
  /// Patterns must cover at least this fraction of rows (the paper's τ,
  /// default 0.1 per Section 6).
  double min_support_fraction = 0.1;
  /// Maximum number of predicates per pattern.
  size_t max_pattern_length = 3;
  /// Safety cap on the total number of emitted patterns.
  size_t max_patterns = 100000;
  /// If true, also emit the empty pattern (covers everything).
  bool include_empty_pattern = false;
};

/// Mines all frequent equality-conjunctions over the given categorical
/// attributes. Numeric attributes in `attrs` are rejected (discretize
/// first). Patterns are emitted level by level (singletons first).
Result<std::vector<FrequentPattern>> MineFrequentPatterns(
    const DataFrame& df, const std::vector<size_t>& attrs,
    const AprioriOptions& options = {});

}  // namespace faircap

#endif  // FAIRCAP_MINING_APRIORI_H_
