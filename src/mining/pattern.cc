#include "mining/pattern.h"

#include <algorithm>

namespace faircap {

Pattern::Pattern(std::vector<Predicate> predicates)
    : predicates_(std::move(predicates)) {
  Canonicalize();
}

Pattern Pattern::With(Predicate p) const {
  std::vector<Predicate> preds = predicates_;
  preds.push_back(std::move(p));
  return Pattern(std::move(preds));
}

Pattern Pattern::And(const Pattern& other) const {
  std::vector<Predicate> preds = predicates_;
  preds.insert(preds.end(), other.predicates_.begin(),
               other.predicates_.end());
  return Pattern(std::move(preds));
}

bool Pattern::ConstrainsAttr(size_t attr) const {
  return std::any_of(predicates_.begin(), predicates_.end(),
                     [attr](const Predicate& p) { return p.attr == attr; });
}

std::vector<size_t> Pattern::Attributes() const {
  std::vector<size_t> attrs;
  for (const Predicate& p : predicates_) attrs.push_back(p.attr);
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

Status Pattern::Validate(const DataFrame& df) const {
  for (const Predicate& p : predicates_) {
    FAIRCAP_RETURN_NOT_OK(p.Validate(df));
  }
  return Status::OK();
}

Bitmap Pattern::Evaluate(const DataFrame& df) const {
  // Copy out of the shared handle, not the raw cached reference: under a
  // PredicateIndex memory budget another thread's insertion could evict
  // (and free) the mask mid-copy.
  return *EvaluateShared(df);
}

const Bitmap& Pattern::EvaluateCached(const DataFrame& df) const {
  std::vector<PredicateAtom> atoms;
  atoms.reserve(predicates_.size());
  for (const Predicate& p : predicates_) atoms.push_back(p.Atom());
  return df.predicate_index().ConjunctionMask(df, atoms);
}

std::shared_ptr<const Bitmap> Pattern::EvaluateShared(
    const DataFrame& df) const {
  std::vector<PredicateAtom> atoms;
  atoms.reserve(predicates_.size());
  for (const Predicate& p : predicates_) atoms.push_back(p.Atom());
  return df.predicate_index().ConjunctionMaskShared(df, atoms);
}

Bitmap Pattern::EvaluateNaive(const DataFrame& df) const {
  Bitmap out(df.num_rows());
  for (size_t row = 0; row < df.num_rows(); ++row) {
    if (Matches(df, row)) out.Set(row);
  }
  return out;
}

bool Pattern::Matches(const DataFrame& df, size_t row) const {
  return std::all_of(
      predicates_.begin(), predicates_.end(),
      [&df, row](const Predicate& p) { return p.Matches(df, row); });
}

std::string Pattern::ToString(const Schema& schema) const {
  if (predicates_.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += predicates_[i].ToString(schema);
  }
  return out;
}

std::string Pattern::Key() const {
  std::string key;
  for (const Predicate& p : predicates_) {
    key += std::to_string(p.attr);
    key += CompareOpName(p.op);
    key += p.value.ToString();
    key += '|';
  }
  return key;
}

void Pattern::Canonicalize() {
  std::sort(predicates_.begin(), predicates_.end());
  predicates_.erase(std::unique(predicates_.begin(), predicates_.end()),
                    predicates_.end());
}

}  // namespace faircap
