#include "mining/lattice.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "util/obs/metrics.h"
#include "util/obs/trace.h"

namespace faircap {

namespace {

/// Registry mirror of the per-result num_evaluated count, bumped once per
/// traversal (not per evaluation — the hot loop stays untouched).
void PublishEvaluations(size_t n) {
  static obs::Counter& evaluations =
      obs::MetricsRegistry::Global().GetCounter("mining.lattice_evaluations");
  evaluations.Add(n);
}

/// Counts traversal exits on every return path so the published total
/// always matches result.num_evaluated, including the max_evaluations
/// early returns.
struct EvaluationPublisher {
  const LatticeResult* result;
  ~EvaluationPublisher() { PublishEvaluations(result->num_evaluated); }
};

}  // namespace

std::vector<Predicate> EnumerateInterventionAtoms(
    const DataFrame& df, const std::vector<size_t>& mutable_attrs) {
  std::vector<Predicate> atoms;
  for (size_t attr : mutable_attrs) {
    const Column& col = df.column(attr);
    if (col.type() != AttrType::kCategorical) continue;
    for (size_t code = 0; code < col.num_categories(); ++code) {
      atoms.emplace_back(attr, CompareOp::kEq,
                         Value(col.CategoryName(static_cast<int32_t>(code))));
    }
  }
  return atoms;
}

LatticeResult TraverseInterventionLattice(
    const DataFrame& df, const std::vector<size_t>& mutable_attrs,
    const TreatmentEvaluator& evaluator, const LatticeOptions& options) {
  const obs::TraceSpan lattice_span("lattice");
  LatticeResult result;
  const EvaluationPublisher publish{&result};
  const std::vector<Predicate> atoms =
      EnumerateInterventionAtoms(df, mutable_attrs);

  struct Node {
    std::vector<uint32_t> atom_ids;  // sorted, one per attribute
    Pattern pattern;
  };

  auto consider = [&](const Pattern& pattern, const TreatmentEval& eval) {
    if (!eval.feasible || eval.cate <= 0.0) return;
    if (!result.best.has_value() || eval.score > result.best_eval.score) {
      result.best = pattern;
      result.best_eval = eval;
    }
  };

  // Level 1: every atom.
  std::vector<Node> level;
  for (uint32_t i = 0; i < atoms.size(); ++i) {
    if (result.num_evaluated >= options.max_evaluations) return result;
    Pattern pattern = Pattern().With(atoms[i]);
    const auto eval = evaluator(pattern);
    ++result.num_evaluated;
    if (!eval.has_value()) continue;
    consider(pattern, *eval);
    if (eval->cate > 0.0) {
      result.positive.emplace_back(pattern, *eval);
    }
    if (eval->cate > 0.0 || !options.require_positive_parents) {
      level.push_back({{i}, std::move(pattern)});
    }
  }

  // Track which atom-id sets had positive CATE so children can check that
  // every parent was positive before materializing.
  auto key_of = [](const std::vector<uint32_t>& ids) {
    std::string key;
    for (uint32_t id : ids) {
      key += std::to_string(id);
      key += ',';
    }
    return key;
  };
  std::unordered_set<std::string> positive_keys;
  for (const Node& node : level) positive_keys.insert(key_of(node.atom_ids));

  for (size_t k = 2; k <= options.max_predicates && level.size() > 1; ++k) {
    std::vector<Node> next;
    std::unordered_set<std::string> next_keys;
    for (size_t a = 0; a < level.size(); ++a) {
      for (size_t b = a + 1; b < level.size(); ++b) {
        const auto& ia = level[a].atom_ids;
        const auto& ib = level[b].atom_ids;
        if (!std::equal(ia.begin(), ia.end() - 1, ib.begin())) continue;
        const uint32_t last_a = ia.back();
        const uint32_t last_b = ib.back();
        if (last_a >= last_b) continue;
        // One predicate per attribute: conflicting assignments to the same
        // attribute cannot both hold.
        if (atoms[last_a].attr == atoms[last_b].attr) continue;

        std::vector<uint32_t> candidate = ia;
        candidate.push_back(last_b);

        // Materialize only if all parents had positive CATE (Section 5.2).
        if (options.require_positive_parents) {
          bool all_parents_positive = true;
          for (size_t drop = 0; drop + 2 < candidate.size(); ++drop) {
            std::vector<uint32_t> parent;
            for (size_t i = 0; i < candidate.size(); ++i) {
              if (i != drop) parent.push_back(candidate[i]);
            }
            if (positive_keys.count(key_of(parent)) == 0) {
              all_parents_positive = false;
              break;
            }
          }
          if (!all_parents_positive) continue;
        }

        if (result.num_evaluated >= options.max_evaluations) return result;
        Pattern pattern = level[a].pattern.With(atoms[last_b]);
        const auto eval = evaluator(pattern);
        ++result.num_evaluated;
        if (!eval.has_value()) continue;
        consider(pattern, *eval);
        if (eval->cate > 0.0) {
          result.positive.emplace_back(pattern, *eval);
          next_keys.insert(key_of(candidate));
        }
        if (eval->cate > 0.0 || !options.require_positive_parents) {
          next.push_back({std::move(candidate), std::move(pattern)});
        }
      }
    }
    level = std::move(next);
    positive_keys = std::move(next_keys);
  }
  return result;
}

}  // namespace faircap
