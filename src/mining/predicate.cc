#include "mining/predicate.h"

#include <cmath>
#include <tuple>

namespace faircap {

Status Predicate::Validate(const DataFrame& df) const {
  if (attr >= df.num_columns()) {
    return Status::OutOfRange("predicate attribute index out of range");
  }
  const Column& col = df.column(attr);
  if (value.is_null()) {
    return Status::InvalidArgument("predicate value must not be null");
  }
  const bool col_categorical = col.type() == AttrType::kCategorical;
  if (col_categorical != value.is_string()) {
    return Status::InvalidArgument(
        "predicate value type does not match column '" +
        df.schema().attribute(attr).name + "'");
  }
  const bool ordered = op != CompareOp::kEq && op != CompareOp::kNe;
  if (ordered && col_categorical) {
    return Status::InvalidArgument(
        "ordered comparison on categorical attribute '" +
        df.schema().attribute(attr).name + "'");
  }
  return Status::OK();
}

bool Predicate::Matches(const DataFrame& df, size_t row) const {
  const Column& col = df.column(attr);
  if (col.IsNull(row)) return false;
  if (col.type() == AttrType::kCategorical) {
    const Result<int32_t> code = col.CodeOf(value.str());
    // A category absent from the dictionary matches nothing under kEq and
    // everything non-null under kNe.
    if (!code.ok()) return op == CompareOp::kNe;
    if (op == CompareOp::kEq) return col.code(row) == *code;
    return col.code(row) != *code;
  }
  return CompareNumeric(col.numeric(row), op, value.numeric());
}

Bitmap Predicate::Evaluate(const DataFrame& df) const {
  // Copy out of the shared handle: the pin lives for the whole copy
  // expression, so a concurrent budget eviction of the atom cannot free
  // the mask mid-read (EvaluateCached's raw reference could).
  return *df.predicate_index().AtomMaskShared(df, attr, op, value);
}

const Bitmap& Predicate::EvaluateCached(const DataFrame& df) const {
  return df.predicate_index().AtomMask(df, attr, op, value);
}

Bitmap Predicate::EvaluateNaive(const DataFrame& df) const {
  Bitmap out(df.num_rows());
  for (size_t row = 0; row < df.num_rows(); ++row) {
    if (Matches(df, row)) out.Set(row);
  }
  return out;
}

std::string Predicate::ToString(const Schema& schema) const {
  return schema.attribute(attr).name + " " + CompareOpName(op) + " " +
         value.ToString();
}

bool Predicate::operator<(const Predicate& other) const {
  return std::make_tuple(attr, static_cast<int>(op), value.ToString()) <
         std::make_tuple(other.attr, static_cast<int>(other.op),
                         other.value.ToString());
}

bool Predicate::operator==(const Predicate& other) const {
  return attr == other.attr && op == other.op && value == other.value;
}

}  // namespace faircap
