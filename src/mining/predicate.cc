#include "mining/predicate.h"

#include <cmath>
#include <tuple>

namespace faircap {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kGt: return ">";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

namespace {

inline bool CompareNumeric(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGe: return lhs >= rhs;
  }
  return false;
}

}  // namespace

Status Predicate::Validate(const DataFrame& df) const {
  if (attr >= df.num_columns()) {
    return Status::OutOfRange("predicate attribute index out of range");
  }
  const Column& col = df.column(attr);
  if (value.is_null()) {
    return Status::InvalidArgument("predicate value must not be null");
  }
  const bool col_categorical = col.type() == AttrType::kCategorical;
  if (col_categorical != value.is_string()) {
    return Status::InvalidArgument(
        "predicate value type does not match column '" +
        df.schema().attribute(attr).name + "'");
  }
  const bool ordered = op != CompareOp::kEq && op != CompareOp::kNe;
  if (ordered && col_categorical) {
    return Status::InvalidArgument(
        "ordered comparison on categorical attribute '" +
        df.schema().attribute(attr).name + "'");
  }
  return Status::OK();
}

bool Predicate::Matches(const DataFrame& df, size_t row) const {
  const Column& col = df.column(attr);
  if (col.IsNull(row)) return false;
  if (col.type() == AttrType::kCategorical) {
    const Result<int32_t> code = col.CodeOf(value.str());
    // A category absent from the dictionary matches nothing under kEq and
    // everything non-null under kNe.
    if (!code.ok()) return op == CompareOp::kNe;
    if (op == CompareOp::kEq) return col.code(row) == *code;
    return col.code(row) != *code;
  }
  return CompareNumeric(col.numeric(row), op, value.numeric());
}

Bitmap Predicate::Evaluate(const DataFrame& df) const {
  Bitmap out(df.num_rows());
  const Column& col = df.column(attr);
  if (col.type() == AttrType::kCategorical) {
    const Result<int32_t> code_result = col.CodeOf(value.str());
    if (!code_result.ok()) {
      if (op == CompareOp::kNe) {
        for (size_t row = 0; row < df.num_rows(); ++row) {
          if (!col.IsNull(row)) out.Set(row);
        }
      }
      return out;
    }
    const int32_t code = *code_result;
    if (op == CompareOp::kEq) {
      for (size_t row = 0; row < df.num_rows(); ++row) {
        if (col.code(row) == code) out.Set(row);
      }
    } else {
      for (size_t row = 0; row < df.num_rows(); ++row) {
        const int32_t c = col.code(row);
        if (c != Column::kNullCode && c != code) out.Set(row);
      }
    }
    return out;
  }
  const double rhs = value.numeric();
  for (size_t row = 0; row < df.num_rows(); ++row) {
    const double v = col.numeric(row);
    if (!std::isnan(v) && CompareNumeric(v, op, rhs)) out.Set(row);
  }
  return out;
}

std::string Predicate::ToString(const Schema& schema) const {
  return schema.attribute(attr).name + " " + CompareOpName(op) + " " +
         value.ToString();
}

bool Predicate::operator<(const Predicate& other) const {
  return std::make_tuple(attr, static_cast<int>(op), value.ToString()) <
         std::make_tuple(other.attr, static_cast<int>(other.op),
                         other.value.ToString());
}

bool Predicate::operator==(const Predicate& other) const {
  return attr == other.attr && op == other.op && value == other.value;
}

}  // namespace faircap
